package simnet

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// TestZeroByteTransferIsLatencyOnly: an empty message pays exactly the
// per-message cost on every link model — no bandwidth, serialization, or
// copy terms may leak in at size zero.
func TestZeroByteTransferIsLatencyOnly(t *testing.T) {
	for name, l := range map[string]Link{"rdma": RDMALink(), "tcp": TCPLink()} {
		det := l
		det.JitterSigma = 0
		if got := det.TransferTime(0, nil); got != l.LatencySec {
			t.Fatalf("%s: zero-byte transfer %v, want latency %v", name, got, l.LatencySec)
		}
		if got := det.MeanTransferTime(0); l.JitterSigma == 0 && got != l.LatencySec {
			t.Fatalf("%s: zero-byte mean %v, want latency %v", name, got, l.LatencySec)
		}
	}
	// A jittered zero-byte message still jitters the latency term.
	l := TCPLink()
	got := l.TransferTime(0, rng.New(1))
	if got <= 0 || math.IsNaN(got) {
		t.Fatalf("jittered zero-byte transfer %v", got)
	}
}

// TestGatherSingleRank: one sender is the degenerate tree — exactly one
// stage — and the closed form must hold for zero and non-zero payloads.
func TestGatherSingleRank(t *testing.T) {
	c := DefaultCollective()
	if got, want := c.Gather(1, 0), c.Alpha+c.Beta; math.Abs(got-want) > 1e-15 {
		t.Fatalf("1-rank zero-byte gather %v, want alpha+beta = %v", got, want)
	}
	const b = 1 << 20
	if got, want := c.Gather(1, b), c.Alpha+c.Beta+float64(b)/c.BW; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("1-rank gather %v, want %v", got, want)
	}
}

// TestJitterDeterministicUnderFixedSeed: identical seeds must reproduce
// the jittered transfer series bit for bit, and distinct seeds must not.
func TestJitterDeterministicUnderFixedSeed(t *testing.T) {
	l := TCPLink()
	series := func(seed uint64) []float64 {
		r := rng.New(seed)
		out := make([]float64, 64)
		for i := range out {
			out[i] = l.TransferTime(1<<16, r)
		}
		return out
	}
	a, b, c := series(42), series(42), series(43)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed produced %v then %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical jitter series")
	}
}

// TestCalibrationRatiosTable pins the RDMA/TCP calibration against the
// paper's two headline relations across the payload range the experiments
// use, so a recalibration of either link silently breaking Fig. 4 is
// caught: the cumulative (expected) gRPC/MPI ratio must stay ~10×, and
// the jittered per-round spread must stay ~30× over a 203-round series.
func TestCalibrationRatiosTable(t *testing.T) {
	mpi, grpc := RDMALink(), TCPLink()
	cases := []struct {
		name    string
		bytes   int
		loRatio float64
		hiRatio float64
	}{
		// Small control messages are latency-bound: the gap is the raw
		// latency ratio (~10×).
		{"4KB-control", 4 << 10, 5, 20},
		// The FEMNIST CNN model (~600k params, 8B each) is the payload the
		// paper's Fig. 4 measures.
		{"4.8MB-model", 4_800_000, 5, 20},
		// Large payloads stay bandwidth+serialization bound.
		{"38MB-batch", 38 << 20, 5, 20},
	}
	cumMPI, cumGRPC := 0.0, 0.0
	for _, tc := range cases {
		rm := mpi.MeanTransferTime(tc.bytes)
		rg := grpc.MeanTransferTime(tc.bytes)
		cumMPI += rm
		cumGRPC += rg
		if ratio := rg / rm; ratio < tc.loRatio || ratio > tc.hiRatio {
			t.Fatalf("%s: gRPC/MPI mean ratio %.2f outside [%v,%v]", tc.name, ratio, tc.loRatio, tc.hiRatio)
		}
	}
	if cum := cumGRPC / cumMPI; cum < 5 || cum > 20 {
		t.Fatalf("cumulative gRPC/MPI ratio %.2f, want ~10 (5..20)", cum)
	}

	// Spread: 203 jittered rounds of the model payload, fixed seed.
	r := rng.New(11)
	xs := make([]float64, 203)
	for i := range xs {
		xs[i] = grpc.TransferTime(4_800_000, r)
	}
	spread := metrics.BoxStats(xs).Spread()
	if spread < 10 || spread > 300 {
		t.Fatalf("203-round gRPC spread %.1f×, want ~30× (10..300)", spread)
	}
	// The RDMA link is jitter-free by construction: its spread is exactly 1.
	det := make([]float64, 203)
	for i := range det {
		det[i] = mpi.TransferTime(4_800_000, nil)
	}
	if s := metrics.BoxStats(det).Spread(); s != 1 {
		t.Fatalf("RDMA spread %v, want exactly 1", s)
	}
}
