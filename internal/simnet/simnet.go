// Package simnet models communication costs for the paper's two transport
// regimes: RDMA-enabled MPI on a cluster interconnect (InfiniBand, direct
// GPU-to-GPU transfers, Section IV-C) and gRPC-style RPC over TCP with
// protobuf serialization and traffic-dependent jitter (Section IV-D).
//
// The models are analytic — latency + size/bandwidth (+ serialization)
// scaled by optional lognormal jitter — with constants calibrated so the
// qualitative relations the paper reports hold: MPI roughly 10× faster
// cumulative communication than gRPC, gRPC round times spread by a factor
// of ≈30 between rounds, and MPI gather cost that shrinks far more slowly
// than the per-rank payload (factor ≈8 vs 40). Absolute values are
// documented estimates, not measurements of Summit.
package simnet

import (
	"math"

	"repro/internal/rng"
)

// Link models one network path.
type Link struct {
	// LatencySec is the fixed per-message cost (network latency plus
	// per-call software overhead).
	LatencySec float64
	// BandwidthBps is the sustained transfer rate in bytes per second.
	BandwidthBps float64
	// SerializeBps, when positive, adds 2·size/SerializeBps per message for
	// serialization + deserialization (the protobuf cost gRPC pays and RDMA
	// does not). Zero disables it.
	SerializeBps float64
	// CopyBps, when positive, adds 2·size/CopyBps for the GPU→CPU and
	// CPU→GPU copies that non-RDMA transports require. Zero disables it.
	CopyBps float64
	// JitterSigma is the σ of a lognormal multiplier applied to the whole
	// message time, modeling shared-network traffic. Zero disables jitter.
	JitterSigma float64
}

// TransferTime returns the modelled time in seconds to move a message of
// the given size across the link. r supplies jitter and may be nil when
// JitterSigma is zero.
func (l Link) TransferTime(bytes int, r *rng.RNG) float64 {
	if bytes < 0 {
		panic("simnet: negative message size")
	}
	t := l.LatencySec + float64(bytes)/l.BandwidthBps
	if l.SerializeBps > 0 {
		t += 2 * float64(bytes) / l.SerializeBps
	}
	if l.CopyBps > 0 {
		t += 2 * float64(bytes) / l.CopyBps
	}
	if l.JitterSigma > 0 {
		if r == nil {
			panic("simnet: jittered link needs an RNG")
		}
		t *= r.LogNormal(0, l.JitterSigma)
	}
	return t
}

// MeanTransferTime returns the expected transfer time (lognormal mean
// multiplier applied analytically), useful for deterministic projections.
func (l Link) MeanTransferTime(bytes int) float64 {
	t := (Link{
		LatencySec:   l.LatencySec,
		BandwidthBps: l.BandwidthBps,
		SerializeBps: l.SerializeBps,
		CopyBps:      l.CopyBps,
	}).TransferTime(bytes, nil)
	if l.JitterSigma > 0 {
		t *= math.Exp(l.JitterSigma * l.JitterSigma / 2)
	}
	return t
}

// RDMALink returns the MPI-over-InfiniBand model: direct GPU-to-GPU
// transfers (no serialization, no host copies, no traffic jitter), low
// latency, high bandwidth.
func RDMALink() Link {
	return Link{
		LatencySec:   50e-6,
		BandwidthBps: 2.0e9,
	}
}

// TCPLink returns the gRPC model: TCP latency, lower effective bandwidth,
// protobuf serialization on both ends, host staging copies, and lognormal
// traffic jitter. The defaults yield ≈10× the RDMA cumulative time with a
// ≈30× spread between the fastest and slowest rounds, matching Fig. 4.
func TCPLink() Link {
	return Link{
		LatencySec:   500e-6,
		BandwidthBps: 0.6e9,
		SerializeBps: 1.2e9,
		CopyBps:      4.0e9,
		JitterSigma:  0.85,
	}
}

// Collective models the per-rank cost of an MPI collective over nRanks
// participants. MPI gathers are tree-structured: a fixed software cost, a
// per-stage cost growing with ⌈log₂(n+1)⌉, and a bandwidth term on the
// rank's own payload. The fixed and stage terms are why gather time shrinks
// by only ≈8× when the payload shrinks 40× (Fig. 3b).
type Collective struct {
	Alpha float64 // fixed per-call cost (s)
	Beta  float64 // per-tree-stage cost (s)
	BW    float64 // per-rank drain bandwidth (B/s)
}

// DefaultCollective returns gather constants calibrated for Fig. 3. They
// are *effective* constants that fold in the software overheads the paper's
// Summit measurements include (Python, mpi4py, GPU staging), not raw link
// speeds: with the FEMNIST sweep's per-rank payloads (41→1 clients/rank ×
// ≈4.8 MB model) and per-client compute of 6.96 s, they produce a gather
// fraction rising from ≈5% at 5 ranks to ≈30% at 203 ranks while gather
// time shrinks by only ≈5× as the payload shrinks 41×.
func DefaultCollective() Collective {
	return Collective{
		Alpha: 2.55,
		Beta:  0.05,
		BW:    16e6,
	}
}

// Gather returns the modelled per-rank time of MPI.gather() with nRanks
// senders contributing bytesPerRank each.
func (c Collective) Gather(nRanks, bytesPerRank int) float64 {
	if nRanks <= 0 {
		panic("simnet: Gather needs nRanks > 0")
	}
	stages := math.Ceil(math.Log2(float64(nRanks) + 1))
	return c.Alpha + c.Beta*stages + float64(bytesPerRank)/c.BW
}

// Clock is a virtual clock for discrete-event style accounting. Simulated
// experiments advance it analytically instead of sleeping.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds (panics on negative dt).
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic("simnet: cannot advance clock backwards")
	}
	c.now += dt
}

// AdvanceTo moves the clock to t if t is later than now.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}
