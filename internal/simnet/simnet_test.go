package simnet

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestTransferTimeComponents(t *testing.T) {
	l := Link{LatencySec: 1e-3, BandwidthBps: 1e6}
	// 1000 bytes over 1 MB/s = 1 ms, plus 1 ms latency.
	got := l.TransferTime(1000, nil)
	if math.Abs(got-2e-3) > 1e-12 {
		t.Fatalf("transfer time %v, want 2ms", got)
	}
}

func TestSerializationAndCopyCosts(t *testing.T) {
	base := Link{LatencySec: 0, BandwidthBps: 1e9}
	withSer := base
	withSer.SerializeBps = 1e9
	withCopy := base
	withCopy.CopyBps = 1e9
	n := 1 << 20
	tb := base.TransferTime(n, nil)
	ts := withSer.TransferTime(n, nil)
	tc := withCopy.TransferTime(n, nil)
	if math.Abs(ts-3*tb) > 1e-12 {
		t.Fatalf("serialization should add 2x payload time: %v vs base %v", ts, tb)
	}
	if math.Abs(tc-3*tb) > 1e-12 {
		t.Fatalf("copies should add 2x payload time: %v vs base %v", tc, tb)
	}
}

func TestJitterRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for jitter without RNG")
		}
	}()
	Link{LatencySec: 1, BandwidthBps: 1, JitterSigma: 0.5}.TransferTime(1, nil)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RDMALink().TransferTime(-1, nil)
}

func TestJitterMedianMatchesDeterministic(t *testing.T) {
	l := TCPLink()
	det := l
	det.JitterSigma = 0
	want := det.TransferTime(1<<20, nil)
	r := rng.New(1)
	xs := make([]float64, 20001)
	for i := range xs {
		xs[i] = l.TransferTime(1<<20, r)
	}
	med := metrics.Quantile(xs, 0.5)
	if math.Abs(med-want)/want > 0.05 {
		t.Fatalf("jitter median %v, deterministic %v", med, want)
	}
}

func TestMeanTransferTime(t *testing.T) {
	l := TCPLink()
	r := rng.New(2)
	var s metrics.Stream
	for i := 0; i < 200000; i++ {
		s.Add(l.TransferTime(1<<20, r))
	}
	want := l.MeanTransferTime(1 << 20)
	if math.Abs(s.Mean()-want)/want > 0.05 {
		t.Fatalf("empirical mean %v vs analytic %v", s.Mean(), want)
	}
}

// TestPaperCommRelations checks the two calibrated relations of Fig. 4:
// gRPC ≈10× slower than MPI in expectation, with a ≈30× spread.
func TestPaperCommRelations(t *testing.T) {
	const msg = 800 << 10 // ~100k doubles
	mpi := RDMALink()
	grpc := TCPLink()
	ratio := grpc.MeanTransferTime(msg) / mpi.MeanTransferTime(msg)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("gRPC/MPI mean ratio %v, want ~10 (5..20)", ratio)
	}
	r := rng.New(3)
	xs := make([]float64, 49)
	for i := range xs {
		xs[i] = grpc.TransferTime(msg, r)
	}
	spread := metrics.BoxStats(xs).Spread()
	if spread < 5 {
		t.Fatalf("gRPC round spread %v, want >= 5 (paper reports ~30 over many clients)", spread)
	}
}

func TestGatherMonotoneInPayload(t *testing.T) {
	c := DefaultCollective()
	if c.Gather(8, 1000) >= c.Gather(8, 1000000) {
		t.Fatal("gather must grow with payload")
	}
}

func TestGatherFloorDominatesSmallPayloads(t *testing.T) {
	// The paper: payload shrinks ~41x (5→203 ranks) but gather time shrinks
	// only ~8x. With our constants the ratio must be far below 41.
	c := DefaultCollective()
	const modelBytes = 4_800_000 // ≈600k-parameter FEMNIST CNN
	ratio := c.Gather(5, 41*modelBytes) / c.Gather(203, modelBytes)
	if ratio > 15 || ratio < 2 {
		t.Fatalf("gather shrink ratio %v, want ~5-8 (2..15)", ratio)
	}
}

// TestGatherFractionMatchesFig3b reproduces the calibration target: the
// percentage of gather in total local-update time rises from ≈5% to ≈30%
// across the paper's rank sweep.
func TestGatherFractionMatchesFig3b(t *testing.T) {
	c := DefaultCollective()
	const modelBytes = 4_800_000
	const perClientCompute = 6.96 // V100 seconds
	frac := func(ranks int) float64 {
		clientsPerRank := (203 + ranks - 1) / ranks
		compute := float64(clientsPerRank) * perClientCompute
		g := c.Gather(ranks, clientsPerRank*modelBytes)
		return g / (g + compute)
	}
	f5, f203 := frac(5), frac(203)
	if f5 < 0.02 || f5 > 0.10 {
		t.Fatalf("gather fraction at 5 ranks = %.3f, want ~0.05", f5)
	}
	if f203 < 0.20 || f203 > 0.40 {
		t.Fatalf("gather fraction at 203 ranks = %.3f, want ~0.30", f203)
	}
	if f203 <= f5 {
		t.Fatal("gather fraction must increase with rank count")
	}
}

func TestGatherPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultCollective().Gather(0, 10)
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.AdvanceTo(1.0) // no-op, earlier
	if c.Now() != 1.5 {
		t.Fatalf("clock %v", c.Now())
	}
	c.AdvanceTo(3)
	if c.Now() != 3 {
		t.Fatalf("clock %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	c.Advance(-1)
}
