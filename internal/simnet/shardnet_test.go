package simnet

import (
	"testing"

	"repro/internal/rng"
)

func shardClients(n int) []uint32 {
	cs := make([]uint32, n)
	for i := range cs {
		cs[i] = uint32(i)
	}
	return cs
}

func TestDefaultShardNetValidates(t *testing.T) {
	if _, err := DefaultShardNet(0); err == nil {
		t.Error("zero-shard net accepted")
	}
	n, err := DefaultShardNet(8)
	if err != nil || n.Shards != 8 {
		t.Fatalf("DefaultShardNet(8) = %+v, %v", n, err)
	}
}

// TestShardNetRoundTimeDeterministic: the same seed reproduces the same
// modelled round bit for bit — the property that makes the scale
// harness's latency percentiles machine-independent.
func TestShardNetRoundTimeDeterministic(t *testing.T) {
	n, _ := DefaultShardNet(8)
	cs := shardClients(256)
	t1, u1, r1 := n.RoundTime(cs, 1<<16, 1<<14, rng.New(42))
	t2, u2, r2 := n.RoundTime(cs, 1<<16, 1<<14, rng.New(42))
	if t1 != t2 || u1 != u2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%v,%v,%v) vs (%v,%v,%v)", t1, u1, r1, t2, u2, r2)
	}
	if t1 != u1+r1 {
		t.Fatalf("total %v != upload %v + reduce %v", t1, u1, r1)
	}
	if u1 <= 0 || r1 <= 0 {
		t.Fatalf("degenerate decomposition: upload %v, reduce %v", u1, r1)
	}
}

// TestShardNetWiderTierDrainsFaster: with the same cohort, more ingress
// shards shorten the upload phase (the queues drain in parallel) while
// the reduce only grows logarithmically — the tier's scaling argument.
func TestShardNetWiderTierDrainsFaster(t *testing.T) {
	cs := shardClients(512)
	narrow, _ := DefaultShardNet(2)
	wide, _ := DefaultShardNet(16)
	// Jitter off for a clean comparison: queue shares should shrink ~8×.
	narrow.Uplink.JitterSigma, wide.Uplink.JitterSigma = 0, 0
	_, uNarrow, rNarrow := narrow.RoundTime(cs, 1<<16, 1<<14, nil)
	_, uWide, rWide := wide.RoundTime(cs, 1<<16, 1<<14, nil)
	if uWide >= uNarrow {
		t.Fatalf("16-shard upload %v not faster than 2-shard %v", uWide, uNarrow)
	}
	if rWide <= rNarrow {
		t.Fatalf("16-shard reduce %v should cost more stages than 2-shard %v", rWide, rNarrow)
	}
	if frac := uNarrow / uWide; frac < 4 || frac > 16 {
		t.Fatalf("upload speedup %v outside the 8×-ish band for 8× more shards", frac)
	}
}

// TestShardNetSingleShard: a one-shard tier has no reduce phase.
func TestShardNetSingleShard(t *testing.T) {
	n, _ := DefaultShardNet(1)
	total, upload, reduce := n.RoundTime(shardClients(16), 1024, 1024, rng.New(1))
	if reduce != 0 {
		t.Fatalf("single shard paid %v reduce time", reduce)
	}
	if total != upload {
		t.Fatalf("total %v != upload %v with no reduce", total, upload)
	}
}

// TestShardNetEmptyRound: no admitted clients → only the reduce phase.
func TestShardNetEmptyRound(t *testing.T) {
	n, _ := DefaultShardNet(4)
	total, upload, reduce := n.RoundTime(nil, 1024, 1024, rng.New(1))
	if upload != 0 {
		t.Fatalf("empty round uploaded for %v", upload)
	}
	if total != reduce {
		t.Fatalf("total %v != reduce %v on an empty round", total, reduce)
	}
}
