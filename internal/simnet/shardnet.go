package simnet

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/rng"
)

// ShardNet models the network of the hierarchical aggregation tier: a
// cross-device federation's clients upload over wide-area TCP links to N
// ingress aggregator shards, which tree-reduce their partial aggregates
// over a fast inter-shard interconnect. The model is analytic like the
// rest of the package — per-message latency + size/bandwidth with
// seeded jitter — so a 100k–1M-client round is a few arithmetic
// operations per admitted client, not a packet simulation.
type ShardNet struct {
	// Uplink is the client→shard path (wide-area TCP).
	Uplink Link
	// Inter is the shard→shard reduce path (datacenter interconnect).
	Inter Link
	// Shards is the tier width.
	Shards int
}

// DefaultShardNet returns the calibrated tier model: gRPC-style client
// uplinks (TCPLink) into `shards` ingress shards joined by an
// RDMA-class interconnect.
func DefaultShardNet(shards int) (ShardNet, error) {
	if shards < 1 {
		return ShardNet{}, fmt.Errorf("simnet: shard net needs >= 1 shard, got %d", shards)
	}
	return ShardNet{Uplink: TCPLink(), Inter: RDMALink(), Shards: shards}, nil
}

// RoundTime returns the modelled wall time of one sharded aggregation
// round: every admitted client uploads updateBytes to its shard
// (comm.ShardOf routing), each shard's uplink drains its own queue
// serially while the shards drain in parallel (upload = the slowest
// shard's queue), and the shards then tree-reduce partials of
// partialBytes over ⌈log₂ N⌉ stages of the interconnect. The
// decomposition (total, upload, reduce) lets the harness report where a
// configuration's time goes. Deterministic for a given seeded r.
func (n ShardNet) RoundTime(clients []uint32, updateBytes, partialBytes int, r *rng.RNG) (total, upload, reduce float64) {
	if n.Shards < 1 {
		panic("simnet: ShardNet with no shards")
	}
	// Per-shard upload queues: clients mapped to the same ingress shard
	// share its uplink serially; distinct shards ingest concurrently.
	queues := make([]float64, n.Shards)
	for _, c := range clients {
		s := comm.ShardOf(c, n.Shards)
		queues[s] += n.Uplink.TransferTime(updateBytes, r)
	}
	for _, q := range queues {
		if q > upload {
			upload = q
		}
	}
	// Tree-reduce: each stage merges adjacent partial pairs concurrently,
	// so a stage costs one inter-shard transfer; merged partials cover
	// twice the range, doubling the payload per stage (the concatenation
	// reduce moves ranges, not fixed-size sums).
	depth := comm.ReduceDepth(n.Shards)
	for stage := 0; stage < depth; stage++ {
		reduce += n.Inter.TransferTime(partialBytes<<stage, r)
	}
	return upload + reduce, upload, reduce
}
