package hetero

import (
	"math"
	"testing"
)

func TestPaperCalibration(t *testing.T) {
	// One work unit = one paper-scale local update. V100: 6.96 s, A100: 4.24 s.
	if got := V100.Seconds(1); math.Abs(got-6.96) > 1e-9 {
		t.Fatalf("V100 local update %v s, want 6.96", got)
	}
	if got := A100.Seconds(1); math.Abs(got-6.96/1.64) > 1e-9 {
		t.Fatalf("A100 local update %v s, want %v", got, 6.96/1.64)
	}
	if r := A100.SpeedupOver(V100); math.Abs(r-1.64) > 1e-12 {
		t.Fatalf("A100/V100 speedup %v, want 1.64", r)
	}
}

func TestSecondsScalesLinearly(t *testing.T) {
	if V100.Seconds(2) != 2*V100.Seconds(1) {
		t.Fatal("Seconds not linear in work")
	}
}

func TestSecondsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative work")
		}
	}()
	V100.Seconds(-1)
}

func TestLocalUpdateWork(t *testing.T) {
	// Reference workload is 1 unit.
	if w := LocalUpdateWork(180, 10, 180); w != 1 {
		t.Fatalf("reference work %v, want 1", w)
	}
	// Double the samples → double the work; half the steps → half the work.
	if w := LocalUpdateWork(360, 10, 180); w != 2 {
		t.Fatalf("work %v, want 2", w)
	}
	if w := LocalUpdateWork(180, 5, 180); w != 0.5 {
		t.Fatalf("work %v, want 0.5", w)
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	devs := Placement(5, []Device{A100, V100})
	if devs[0].Name != "A100" || devs[1].Name != "V100" || devs[4].Name != "A100" {
		t.Fatalf("placement wrong: %v", devs)
	}
}

func TestMaxCompletionLoadImbalance(t *testing.T) {
	// Two clients, same work, one per device: makespan = V100 time.
	works := []float64{1, 1}
	devs := []Device{A100, V100}
	got := MaxCompletion(works, devs)
	if math.Abs(got-6.96) > 1e-9 {
		t.Fatalf("makespan %v, want 6.96 (V100 bound)", got)
	}
}

func TestMaxCompletionIndependentDevices(t *testing.T) {
	// Two clients each on their own V100: round time is one update, not two.
	works := []float64{1, 1}
	devs := []Device{V100, V100}
	got := MaxCompletion(works, devs)
	if math.Abs(got-6.96) > 1e-9 {
		t.Fatalf("independent makespan %v, want %v", got, 6.96)
	}
}

func TestQueueMakespan(t *testing.T) {
	// One V100 runs two clients back to back; one A100 runs one.
	got := QueueMakespan([][]float64{{1, 1}, {1}}, []Device{V100, A100})
	if math.Abs(got-2*6.96) > 1e-9 {
		t.Fatalf("queue makespan %v, want %v", got, 2*6.96)
	}
}

func TestQueueMakespanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	QueueMakespan([][]float64{{1}}, nil)
}

func TestMaxCompletionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MaxCompletion([]float64{1}, nil)
}
