// Package hetero models heterogeneous computing devices, reproducing the
// paper's Section IV-E observation: a cross-silo federation mixing NVIDIA
// A100 machines (Argonne's Swing) and V100 machines (Oak Ridge's Summit)
// suffers load imbalance because the same local update runs 1.64× faster
// on the A100 (4.24 s vs 6.96 s).
//
// A device converts abstract work units into seconds through its
// throughput. One work unit is defined as one FEMNIST-scale local update on
// a V100, so V100 throughput is 1/6.96 units per second.
package hetero

import "fmt"

// Device is a compute element with a fixed sustained throughput.
type Device struct {
	Name string
	// Throughput in work units per second. One work unit = one paper-scale
	// FEMNIST local update (L=10 epochs) on a V100.
	Throughput float64
}

// Paper-calibrated devices. The A100/V100 ratio is the measured 1.64; the
// CPU figure is a nominal order-of-magnitude estimate used only by examples.
var (
	V100 = Device{Name: "V100", Throughput: 1.0 / 6.96}
	A100 = Device{Name: "A100", Throughput: 1.64 / 6.96}
	CPU  = Device{Name: "CPU", Throughput: 0.1 / 6.96}
)

// Seconds returns the time to execute the given work on d.
func (d Device) Seconds(work float64) float64 {
	if d.Throughput <= 0 {
		panic(fmt.Sprintf("hetero: device %q has non-positive throughput", d.Name))
	}
	if work < 0 {
		panic("hetero: negative work")
	}
	return work / d.Throughput
}

// SpeedupOver returns how much faster d is than other for identical work.
func (d Device) SpeedupOver(other Device) float64 {
	return d.Throughput / other.Throughput
}

// LocalUpdateWork converts a client's workload into work units.
// samples is the client's local dataset size, localSteps the number of
// passes (L in Algorithm 1). The reference workload (refSamples at L=10)
// defines one unit.
func LocalUpdateWork(samples, localSteps, refSamples int) float64 {
	if refSamples <= 0 {
		panic("hetero: refSamples must be positive")
	}
	return float64(samples) * float64(localSteps) / (float64(refSamples) * 10.0)
}

// Placement assigns clients to devices round-robin, the layout used by the
// paper's simulations (each MPI rank owns one GPU and a contiguous block of
// clients).
func Placement(numClients int, devices []Device) []Device {
	if len(devices) == 0 {
		panic("hetero: empty device list")
	}
	out := make([]Device, numClients)
	for i := range out {
		out[i] = devices[i%len(devices)]
	}
	return out
}

// MaxCompletion returns the synchronous-round makespan when client i runs
// its work on its own physical device devices[i]: the slowest client's
// time. This is the load-imbalance quantity of Section IV-E.
func MaxCompletion(works []float64, devices []Device) float64 {
	if len(works) != len(devices) {
		panic("hetero: works and devices length mismatch")
	}
	max := 0.0
	for i, w := range works {
		if t := devices[i].Seconds(w); t > max {
			max = t
		}
	}
	return max
}

// QueueMakespan returns the makespan when device i sequentially executes
// the work list assignments[i] — the regime of the paper's MPI simulations,
// where one GPU hosts several clients back to back.
func QueueMakespan(assignments [][]float64, devices []Device) float64 {
	if len(assignments) != len(devices) {
		panic("hetero: assignments and devices length mismatch")
	}
	max := 0.0
	for i, list := range assignments {
		total := 0.0
		for _, w := range list {
			total += devices[i].Seconds(w)
		}
		if total > max {
			max = total
		}
	}
	return max
}
