package tenant

import (
	"sync"

	"repro/internal/core"
)

// Arbiter shares the process-wide aggregation capacity of a multi-tenant
// host across its tenants by weighted fair queueing. Each tenant's round
// loop acquires its gate before an admitted batch's decode+fold starts,
// with the batch size as the cost; when demand exceeds the configured
// fold slots, waiting tenants are served in order of weighted virtual
// time — a start-time-fair-queueing discipline — so a tenant folding
// 10k-update batches cannot starve a tenant folding 10-update batches:
// the small tenant waits out at most the fold in flight, never the big
// tenant's backlog.
//
// The arbiter is timing-only (see core.AdmissionGate): it decides when a
// tenant's fold begins, never how the batch folds, so every tenant's
// trajectory stays bit-identical to its dedicated-server run.
type Arbiter struct {
	mu      sync.Mutex
	slots   int
	inUse   int
	weights []float64
	vt      []float64 // virtual finish time per tenant
	floor   float64   // start tag of the most recently admitted fold
	waiting []*waiter
}

// waiter is one tenant's queued fold request. A tenant's round loop is
// sequential, so at most one waiter per tenant is queued at a time.
type waiter struct {
	tenant int
	cost   float64
	ready  chan struct{}
}

// NewArbiter builds an arbiter with the given number of concurrent fold
// slots (values < 1 mean 1: strict one-fold-at-a-time fairness) and one
// weight per tenant (values < 1 mean 1). A tenant's long-run share of
// contended fold capacity is proportional to its weight.
func NewArbiter(slots int, weights []int) *Arbiter {
	if slots < 1 {
		slots = 1
	}
	a := &Arbiter{
		slots:   slots,
		weights: make([]float64, len(weights)),
		vt:      make([]float64, len(weights)),
	}
	for i, w := range weights {
		if w < 1 {
			w = 1
		}
		a.weights[i] = float64(w)
	}
	return a
}

// Gate returns tenant t's admission gate, to be installed as that
// tenant's core.RunOptions.Gate.
func (a *Arbiter) Gate(t int) core.AdmissionGate { return gate{a: a, tenant: t} }

type gate struct {
	a      *Arbiter
	tenant int
}

// Acquire implements core.AdmissionGate.
func (g gate) Acquire(cost int) func() { return g.a.acquire(g.tenant, cost) }

func (a *Arbiter) acquire(tenant, cost int) func() {
	c := float64(cost)
	if c < 1 {
		c = 1
	}
	w := &waiter{tenant: tenant, cost: c, ready: make(chan struct{})}
	a.mu.Lock()
	a.waiting = append(a.waiting, w)
	a.admitLocked()
	a.mu.Unlock()
	<-w.ready
	var once sync.Once
	return func() { once.Do(a.release) }
}

func (a *Arbiter) release() {
	a.mu.Lock()
	a.inUse--
	a.admitLocked()
	a.mu.Unlock()
}

// admitLocked fills free slots with the waiting folds whose effective
// start tags are smallest — the weighted-fair order.
func (a *Arbiter) admitLocked() {
	for a.inUse < a.slots && len(a.waiting) > 0 {
		best := 0
		bestTag := a.startTag(a.waiting[0].tenant)
		for i := 1; i < len(a.waiting); i++ {
			if tag := a.startTag(a.waiting[i].tenant); tag < bestTag {
				best, bestTag = i, tag
			}
		}
		w := a.waiting[best]
		a.waiting = append(a.waiting[:best], a.waiting[best+1:]...)
		// A tenant returning from idle starts at the current floor rather
		// than its stale virtual time: idleness earns no banked credit it
		// could later burn in an unfair burst.
		a.vt[w.tenant] = bestTag + w.cost/a.weights[w.tenant]
		a.floor = bestTag
		a.inUse++
		close(w.ready)
	}
}

// startTag returns the tenant's effective virtual start time.
func (a *Arbiter) startTag(tenant int) float64 {
	if a.vt[tenant] < a.floor {
		return a.floor
	}
	return a.vt[tenant]
}
