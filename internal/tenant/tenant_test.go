package tenant

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/journal"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Host test geometry: two small federations, big enough that quorum and
// buffered releases actually exercise the machinery.
const (
	ttClients  = 6
	ttRounds   = 4
	ttWatchdog = 120 * time.Second
)

func ttFed(dataSeed uint64) *dataset.Federated {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 72, Test: 24, Seed: dataSeed})
	return &dataset.Federated{Clients: dataset.PartitionIID(tr, ttClients, rng.New(dataSeed+1)), Test: te}
}

func ttFactory() nn.Module { return nn.NewMLP(28*28, []int{4}, 10, rng.New(9)) }

func syncCfg() core.Config {
	return core.Config{
		Algorithm:  core.AlgoFedAvg,
		Scheduler:  core.SchedSyncAll,
		Rounds:     ttRounds,
		LocalSteps: 1,
		BatchSize:  16,
		Seed:       9,
	}
}

func bufCfg() core.Config {
	cfg := syncCfg()
	cfg.Scheduler = core.SchedBuffered
	// K = P: every release folds the whole federation, so only the float
	// fold order is timing-dependent, keeping the buffered trajectory
	// tolerance-comparable across hosts.
	cfg.BufferK = ttClients
	return cfg
}

// hostRun drives a Host under a deadlock watchdog.
func hostRun(t *testing.T, h *Host) ([]*core.Result, error) {
	t.Helper()
	type out struct {
		res []*core.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := h.Run()
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(ttWatchdog):
		t.Fatalf("deadlock: host run did not finish within %v", ttWatchdog)
		return nil, nil
	}
}

// dedicatedRun executes one tenant's config on its own dedicated server.
func dedicatedRun(t *testing.T, cfg core.Config, dataSeed uint64, opts core.RunOptions) *core.Result {
	t.Helper()
	type out struct {
		res *core.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := core.Run(cfg, ttFed(dataSeed), ttFactory, opts)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("dedicated run: %v", o.err)
		}
		return o.res
	case <-time.After(ttWatchdog):
		t.Fatalf("deadlock: dedicated run did not finish within %v", ttWatchdog)
		return nil
	}
}

func assertBitIdentical(t *testing.T, got, want *core.Result, label string) {
	t.Helper()
	if len(got.Rounds) != len(want.Rounds) {
		t.Fatalf("%s: %d rounds, dedicated run had %d", label, len(got.Rounds), len(want.Rounds))
	}
	for i := range want.Rounds {
		if got.Rounds[i].TestLoss != want.Rounds[i].TestLoss {
			t.Fatalf("%s: round %d loss %v differs from dedicated %v",
				label, i+1, got.Rounds[i].TestLoss, want.Rounds[i].TestLoss)
		}
		if got.Rounds[i].CohortSize != want.Rounds[i].CohortSize {
			t.Fatalf("%s: round %d cohort %d differs from dedicated %d",
				label, i+1, got.Rounds[i].CohortSize, want.Rounds[i].CohortSize)
		}
	}
}

// TestTenantHostBitIdentical is the tentpole acceptance anchor: a syncall
// tenant and a buffered tenant share one server process, and each
// reproduces its dedicated-server run — bit-identically for the barrier
// scheduler, within a float-fold-order tolerance for the buffered one.
func TestTenantHostBitIdentical(t *testing.T) {
	for _, tr := range []core.Transport{core.TransportRPC, core.TransportPubSub} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			baseSync := dedicatedRun(t, syncCfg(), 5, core.RunOptions{Transport: tr})
			baseBuf := dedicatedRun(t, bufCfg(), 11, core.RunOptions{Transport: tr})

			h, err := NewHost([]Spec{
				{Name: "sync", Config: syncCfg(), Fed: ttFed(5), Factory: ttFactory},
				{Name: "buf", Config: bufCfg(), Fed: ttFed(11), Factory: ttFactory},
			}, Options{Transport: tr})
			if err != nil {
				t.Fatalf("NewHost: %v", err)
			}
			results, err := hostRun(t, h)
			if err != nil {
				t.Fatalf("host run: %v", err)
			}
			assertBitIdentical(t, results[0], baseSync, "sync tenant")
			if len(results[1].Rounds) != len(baseBuf.Rounds) {
				t.Fatalf("buffered tenant: %d releases, dedicated had %d",
					len(results[1].Rounds), len(baseBuf.Rounds))
			}
			// The buffered trajectory is arrival-order-dependent even on a
			// dedicated server (a fast client can fill two slots of one
			// release), so cross-host equality is a convergence band around
			// the dedicated run, not near-bit-identity; the strict claims are
			// the release count above and the sync tenant's bit identity.
			if d := math.Abs(results[1].FinalLoss - baseBuf.FinalLoss); d > 0.5 {
				t.Fatalf("buffered tenant final loss %v vs dedicated %v (|Δ|=%v exceeds tolerance)",
					results[1].FinalLoss, baseBuf.FinalLoss, d)
			}
		})
	}
}

// TestTenantHostRecovery kills the shared server's per-tenant round loops
// mid-round (kill -9 semantics) and checks each tenant recovers from its
// own journal directory independently: the syncall tenant's trajectory
// stays bit-identical to its kill-free dedicated run, the buffered tenant
// completes every release, and RecoverHost replays both journals.
func TestTenantHostRecovery(t *testing.T) {
	baseSync := dedicatedRun(t, syncCfg(), 5, core.RunOptions{Transport: core.TransportRPC})

	root := t.TempDir()
	h, err := NewHost([]Spec{
		{
			Name: "sync", Config: syncCfg(), Fed: ttFed(5), Factory: ttFactory,
			Kills: []core.ServerKill{
				{Round: 2, Window: core.KillBetweenRounds},
				{Round: 3, Window: core.KillAfterDispatch},
				{Round: 4, Window: core.KillBeforeCommit},
			},
		},
		{
			Name: "buf", Config: bufCfg(), Fed: ttFed(11), Factory: ttFactory,
			Kills: []core.ServerKill{
				{Round: 2, Window: core.KillAfterDispatch},
				{Round: 3, Window: core.KillBeforeCommit},
			},
		},
	}, Options{
		Transport:       core.TransportRPC,
		JournalRoot:     root,
		JournalNoSync:   true,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	results, err := hostRun(t, h)
	if err != nil {
		t.Fatalf("host run: %v", err)
	}
	for i, want := range []int{3, 2} {
		soak := results[i].Soak
		if soak == nil {
			t.Fatalf("tenant %d: journaled run reported no SoakStats", i)
		}
		if soak.Kills != want || soak.Recoveries != want {
			t.Fatalf("tenant %d: kills %d recoveries %d, want %d each", i, soak.Kills, soak.Recoveries, want)
		}
	}
	// Recovery neither lost nor double-counted an update in either tenant.
	assertBitIdentical(t, results[0], baseSync, "sync tenant after kills")
	if len(results[1].Rounds) != ttRounds {
		t.Fatalf("buffered tenant completed %d releases, want %d", len(results[1].Rounds), ttRounds)
	}
	for i, rs := range results[1].Rounds {
		if rs.Round != i+1 {
			t.Fatalf("buffered tenant release %d recorded as %d", i+1, rs.Round)
		}
		if math.IsNaN(rs.TestLoss) || math.IsInf(rs.TestLoss, 0) {
			t.Fatalf("buffered tenant release %d loss %v", rs.Round, rs.TestLoss)
		}
	}
	// The journal root holds one independently replayable journal per
	// tenant, each carrying that tenant's full committed history.
	recs, err := journal.RecoverHost(root)
	if err != nil {
		t.Fatalf("RecoverHost: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("RecoverHost found %d tenants, want 2", len(recs))
	}
	for id, rec := range recs {
		if rec.Empty() {
			t.Fatalf("tenant %d recovered empty journal after a journaled run", id)
		}
	}
}

// TestTenantFaultIsolation runs one tenant whose configuration fails at
// run time next to a healthy one: the failure is attributed to the broken
// tenant by name, and the healthy tenant's trajectory is untouched —
// bit-identical to its dedicated run.
func TestTenantFaultIsolation(t *testing.T) {
	base := dedicatedRun(t, syncCfg(), 5, core.RunOptions{Transport: core.TransportRPC})

	broken := syncCfg()
	// StreamChunk and journaling cannot combine; the broken tenant dies in
	// its own run-time validation, after transports are up.
	broken.StreamChunk = 128
	h, err := NewHost([]Spec{
		{Name: "broken", Config: broken, Fed: ttFed(11), Factory: ttFactory},
		{Name: "healthy", Config: syncCfg(), Fed: ttFed(5), Factory: ttFactory},
	}, Options{
		Transport:     core.TransportRPC,
		JournalRoot:   t.TempDir(),
		JournalNoSync: true,
	})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	results, err := hostRun(t, h)
	if err == nil {
		t.Fatal("host run with a broken tenant reported no error")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error %q does not name the broken tenant", err)
	}
	if strings.Contains(err.Error(), "healthy") {
		t.Fatalf("error %q blames the healthy tenant", err)
	}
	if results[0] != nil {
		t.Fatal("broken tenant produced a result")
	}
	if results[1] == nil {
		t.Fatal("healthy tenant produced no result")
	}
	assertBitIdentical(t, results[1], base, "healthy tenant")
}

// TestHostRejectsMultiTenantMPI pins the loud validation error: the mpi
// transport's in-process ranks carry no TenantID header, so it stays
// single-tenant.
func TestHostRejectsMultiTenantMPI(t *testing.T) {
	specs := []Spec{
		{Config: syncCfg(), Fed: ttFed(5), Factory: ttFactory},
		{Config: syncCfg(), Fed: ttFed(11), Factory: ttFactory},
	}
	if _, err := NewHost(specs, Options{Transport: core.TransportMPI}); err == nil ||
		!strings.Contains(err.Error(), "single-tenant") {
		t.Fatalf("multi-tenant mpi host accepted (err = %v)", err)
	}
	// One tenant over mpi is the degenerate single-tenant host and works.
	h, err := NewHost(specs[:1], Options{Transport: core.TransportMPI})
	if err != nil {
		t.Fatalf("single-tenant mpi host rejected: %v", err)
	}
	results, err := hostRun(t, h)
	if err != nil {
		t.Fatalf("single-tenant mpi host run: %v", err)
	}
	if len(results[0].Rounds) != ttRounds {
		t.Fatalf("single-tenant mpi host completed %d rounds, want %d", len(results[0].Rounds), ttRounds)
	}
}

// TestHostValidation covers the remaining NewHost rejections.
func TestHostValidation(t *testing.T) {
	if _, err := NewHost(nil, Options{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := NewHost([]Spec{{Config: syncCfg(), Fed: ttFed(5), Factory: ttFactory,
		Kills: []core.ServerKill{{Round: 1}}}}, Options{Transport: core.TransportRPC}); err == nil {
		t.Fatal("kills without a journal root accepted")
	}
	bad := syncCfg()
	bad.Rounds = -1
	if _, err := NewHost([]Spec{{Config: bad, Fed: ttFed(5), Factory: ttFactory}},
		Options{Transport: core.TransportRPC}); err == nil {
		t.Fatal("invalid tenant config accepted")
	}
}
