package tenant

import (
	"sync"
	"testing"
	"time"
)

// bigCost/smallCost model a 10k-client tenant and a 10-client tenant
// sharing the host's aggregation workers: fold cost is the batch size,
// and hold time scales with it.
const (
	bigCost   = 10000
	smallCost = 10
	bigHold   = 4 * time.Millisecond
	smallHold = 40 * time.Microsecond
)

// TestArbiterStarvation is the fairness satellite: with a 10k-client
// tenant saturating the shared pool, the 10-client tenant's per-round
// latency stays within a bounded factor of its dedicated-server latency.
// The bound is structural — each small round waits out at most the one
// big fold in flight, never the big tenant's backlog — so the asserted
// factor is the worst case (bigHold+smallHold)/smallHold with scheduling
// slack, not a tuning constant.
func TestArbiterStarvation(t *testing.T) {
	const smallRounds = 20

	// Dedicated baseline: the small tenant alone on an uncontended gate.
	dedicated := func() time.Duration {
		a := NewArbiter(1, []int{1})
		g := a.Gate(0)
		start := time.Now()
		for i := 0; i < smallRounds; i++ {
			release := g.Acquire(smallCost)
			time.Sleep(smallHold)
			release()
		}
		return time.Since(start)
	}()

	// Shared: the big tenant folds continuously; the small tenant runs its
	// rounds through the same arbiter.
	a := NewArbiter(1, []int{1, 1})
	stop := make(chan struct{})
	var bigWG sync.WaitGroup
	bigWG.Add(1)
	go func() {
		defer bigWG.Done()
		g := a.Gate(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			release := g.Acquire(bigCost)
			time.Sleep(bigHold)
			release()
		}
	}()

	g := a.Gate(1)
	var worst time.Duration
	start := time.Now()
	for i := 0; i < smallRounds; i++ {
		r0 := time.Now()
		release := g.Acquire(smallCost)
		time.Sleep(smallHold)
		release()
		if d := time.Since(r0); d > worst {
			worst = d
		}
	}
	shared := time.Since(start)
	close(stop)
	bigWG.Wait()

	// Worst per-round latency: the big fold in flight plus own work, with
	// generous slack for scheduler noise. The starvation failure mode this
	// guards against is queueing behind MANY big folds (per-round latency
	// growing with the big tenant's backlog, here >10x this bound).
	if bound := 8 * (bigHold + smallHold); worst > bound {
		t.Fatalf("small tenant worst round latency %v exceeds bound %v (starved by the big tenant)", worst, bound)
	}
	// And in aggregate: bounded factor of the dedicated-server total.
	perRound := bigHold + smallHold
	if bound := dedicated + time.Duration(smallRounds)*perRound*4; shared > bound {
		t.Fatalf("small tenant total %v vs dedicated %v exceeds bounded factor (bound %v)", shared, dedicated, bound)
	}
	t.Logf("fairness: dedicated=%v shared=%v worst-round=%v", dedicated, shared, worst)
}

// TestArbiterWeightedShare checks the long-run fold-capacity split tracks
// the configured weights. The arbiter is work-conserving, so weights only
// bite when the weighted tenant actually has work queued at decision time:
// here the weight-2 tenant keeps two fold requests in flight (a busy
// tenant's backlog) against two weight-1 tenants with one each, and should
// win about half the slot instead of a round-robin third.
func TestArbiterWeightedShare(t *testing.T) {
	a := NewArbiter(1, []int{2, 1, 1})
	var admitted [3]int64 // folds admitted per tenant
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(tenant int) {
		defer wg.Done()
		g := a.Gate(tenant)
		for {
			select {
			case <-stop:
				return
			default:
			}
			release := g.Acquire(100)
			time.Sleep(200 * time.Microsecond)
			release()
			mu.Lock()
			admitted[tenant]++
			mu.Unlock()
		}
	}
	for _, tenant := range []int{0, 0, 1, 2} {
		wg.Add(1)
		go worker(tenant)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	a0, a1, a2 := admitted[0], admitted[1], admitted[2]
	mu.Unlock()
	if a1 == 0 || a2 == 0 {
		t.Fatalf("a weight-1 tenant was starved: %d/%d/%d", a0, a1, a2)
	}
	ratio := 2 * float64(a0) / float64(a1+a2)
	if ratio < 1.4 || ratio > 3 {
		t.Fatalf("capacity ratio %.2f for weights 2:1:1, want ~2 (within [1.4, 3]); admitted %d/%d/%d",
			ratio, a0, a1, a2)
	}
	t.Logf("weighted share: %d/%d/%d (ratio %.2f)", a0, a1, a2, ratio)
}

// TestArbiterNilSafety pins the degenerate shapes: zero cost, weight and
// slot clamping, and release idempotence.
func TestArbiterNilSafety(t *testing.T) {
	a := NewArbiter(0, []int{0, -3})
	g := a.Gate(0)
	release := g.Acquire(0)
	release()
	release() // double release must not free a second slot
	done := make(chan struct{})
	go func() {
		r1 := a.Gate(1).Acquire(5)
		r1()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("arbiter deadlocked after double release")
	}
}
