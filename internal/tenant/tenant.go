// Package tenant turns one appfl-server process into an FL-as-a-service
// host: N independent federations (tenants) multiplexed over one shared
// transport, one shared aggregation worker pool, and one journal root.
//
// Each tenant keeps its own core.Config, scheduler, aggregator,
// membership, obligation ledger, and journal directory; the only shared
// resources are the process (listener/broker, CPU) and the fold-capacity
// arbiter. Isolation is structural: tenant routing is keyed off the
// TenantID carried in wire.Join/wire.LocalUpdate and validated at the
// transport edge, so one tenant's faults, benching backoff, round
// timeouts, and quorum failures never touch another tenant's state.
// Fairness is the Arbiter's weighted fair queueing over fold admissions,
// which bounds a small tenant's round latency by the fold in flight
// rather than a big tenant's backlog.
//
// Both mechanisms are timing-only, so every tenant's trajectory is
// bit-identical (barrier schedulers) or tolerance-equal (buffered, whose
// arrival order is inherently timing-dependent) to the same config run on
// a dedicated server.
package tenant

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"repro/internal/comm"
	mpicomm "repro/internal/comm/mpi"
	"repro/internal/comm/pubsub"
	"repro/internal/comm/rpc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/journal"
	"repro/internal/nn"
)

// Spec is one tenant: its federation, model, run configuration, and its
// slice of the host's shared resources.
type Spec struct {
	Name    string // display name ("" = tenant-<id>)
	Config  core.Config
	Fed     *dataset.Federated
	Factory nn.Factory
	// Weight is the tenant's fairness weight in the shared fold arbiter
	// (values < 1 mean 1).
	Weight int
	// Kills schedules in-process server deaths for this tenant's round
	// loop (see core.RunOptions.Kills). Requires Options.JournalRoot.
	Kills []core.ServerKill
}

// Options configures the host.
type Options struct {
	// Transport selects the shared backend. rpc and pubsub are
	// multi-tenant; mpi is single-tenant only and Validate rejects it for
	// more than one tenant.
	Transport core.Transport
	// JournalRoot, when non-empty, makes every tenant durable: tenant t
	// journals under JournalRoot/tenant-<t>, and a host restarted over
	// the same root recovers every tenant independently.
	JournalRoot string
	// JournalNoSync skips per-append fsyncs (in-process kill tests only).
	JournalNoSync bool
	// CheckpointEvery compacts each tenant's journal every k commits.
	CheckpointEvery int
	// Slots is the number of concurrent fold admissions across all
	// tenants (values < 1 mean 1: strict one-fold-at-a-time fairness).
	Slots int
	// ValidateEvery/MaxParallel/Progress mirror core.RunOptions.
	ValidateEvery int
	MaxParallel   int
	Progress      io.Writer
}

// Host multiplexes the tenants of one FL-as-a-service process.
type Host struct {
	specs []Spec
	opts  Options
}

// JournalDir returns tenant t's journal directory under root.
func JournalDir(root string, t int) string {
	return filepath.Join(root, fmt.Sprintf("tenant-%d", t))
}

// NewHost validates the tenant set and returns a host ready to Run.
func NewHost(specs []Spec, opts Options) (*Host, error) {
	if len(specs) == 0 {
		return nil, errors.New("tenant: host needs at least one tenant")
	}
	if (opts.Transport == core.TransportMPI || opts.Transport == "") && len(specs) > 1 {
		return nil, fmt.Errorf("tenant: the mpi transport is single-tenant (in-process ranks carry no TenantID header); "+
			"%d tenants need the rpc or pubsub transport", len(specs))
	}
	for t := range specs {
		s := &specs[t]
		if s.Name == "" {
			s.Name = fmt.Sprintf("tenant-%d", t)
		}
		if s.Fed == nil || s.Fed.NumClients() == 0 {
			return nil, fmt.Errorf("tenant: %s has no clients", s.Name)
		}
		if s.Factory == nil {
			return nil, fmt.Errorf("tenant: %s has no model factory", s.Name)
		}
		cfg := s.Config.WithDefaults()
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", s.Name, err)
		}
		s.Config = cfg
		if len(s.Kills) > 0 && opts.JournalRoot == "" {
			return nil, fmt.Errorf("tenant: %s schedules kills without Options.JournalRoot", s.Name)
		}
	}
	return &Host{specs: specs, opts: opts}, nil
}

// transports builds the shared backend and hands each tenant its server
// view and client transports. closeFn tears the shared backend down.
func (h *Host) transports() (sts []comm.ServerTransport, cts [][]comm.ClientTransport, closeFn func(), err error) {
	n := len(h.specs)
	sts = make([]comm.ServerTransport, n)
	cts = make([][]comm.ClientTransport, n)
	switch h.opts.Transport {
	case core.TransportPubSub:
		sizes := make([]int, n)
		for t, s := range h.specs {
			sizes[t] = s.Fed.NumClients()
		}
		b, servers, clients, err := pubsub.NewTenantFLBroker(sizes)
		if err != nil {
			return nil, nil, nil, err
		}
		for t := range h.specs {
			sts[t] = servers[t]
			cts[t] = make([]comm.ClientTransport, len(clients[t]))
			for i, c := range clients[t] {
				cts[t][i] = c
			}
		}
		return sts, cts, b.Close, nil
	case core.TransportRPC:
		tspecs := make([]rpc.TenantSpec, n)
		for t, s := range h.specs {
			tspecs[t] = rpc.TenantSpec{
				NumClients: s.Fed.NumClients(),
				Rounds:     s.Config.Rounds,
				ModelSize:  len(nn.FlattenParams(s.Factory(), nil)),
			}
		}
		srv, err := rpc.Listen("127.0.0.1:0", rpc.ServerConfig{Tenants: tspecs})
		if err != nil {
			return nil, nil, nil, err
		}
		acceptErr := make(chan error, 1)
		go func() { acceptErr <- srv.Accept() }()
		var dialWG sync.WaitGroup
		var dialMu sync.Mutex
		var dialErr error
		for t, s := range h.specs {
			cts[t] = make([]comm.ClientTransport, s.Fed.NumClients())
			for i := range cts[t] {
				dialWG.Add(1)
				go func(t, i int) {
					defer dialWG.Done()
					c, err := rpc.DialTenant(srv.Addr(), uint32(t), uint32(i),
						fmt.Sprintf("%s-client-%d", h.specs[t].Name, i))
					dialMu.Lock()
					defer dialMu.Unlock()
					if err != nil {
						dialErr = err
						return
					}
					cts[t][i] = c
				}(t, i)
			}
		}
		dialWG.Wait()
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, nil, nil, fmt.Errorf("tenant: accepting clients: %w", err)
		}
		if dialErr != nil {
			srv.Close()
			return nil, nil, nil, fmt.Errorf("tenant: dialing clients: %w", dialErr)
		}
		for t := range h.specs {
			sts[t] = srv.Tenant(t)
		}
		return sts, cts, func() { srv.Close() }, nil
	case core.TransportMPI, "":
		s, cs := mpicomm.NewFLWorld(h.specs[0].Fed.NumClients())
		sts[0] = s
		cts[0] = make([]comm.ClientTransport, len(cs))
		for i, c := range cs {
			cts[0][i] = c
		}
		return sts, cts, func() { s.Close() }, nil
	default:
		return nil, nil, nil, fmt.Errorf("tenant: unknown transport %q", h.opts.Transport)
	}
}

// Run drives every tenant's federation concurrently over the shared
// backend and returns per-tenant results in spec order. A tenant that
// fails does not interrupt its neighbors: the survivors run to
// completion, and the joined error names each failed tenant.
func (h *Host) Run() ([]*core.Result, error) {
	sts, cts, closeFn, err := h.transports()
	if err != nil {
		return nil, err
	}
	defer closeFn()

	weights := make([]int, len(h.specs))
	for t, s := range h.specs {
		weights[t] = s.Weight
	}
	arb := NewArbiter(h.opts.Slots, weights)

	results := make([]*core.Result, len(h.specs))
	errs := make([]error, len(h.specs))
	var wg sync.WaitGroup
	for t := range h.specs {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			s := h.specs[t]
			ropts := core.RunOptions{
				ValidateEvery: h.opts.ValidateEvery,
				MaxParallel:   h.opts.MaxParallel,
				Progress:      h.opts.Progress,
				Gate:          arb.Gate(t),
				Kills:         s.Kills,
			}
			if h.opts.JournalRoot != "" {
				j, err := journal.Open(JournalDir(h.opts.JournalRoot, t))
				if err != nil {
					errs[t] = fmt.Errorf("tenant: %s: %w", s.Name, err)
					return
				}
				j.NoSync = h.opts.JournalNoSync
				defer j.Close()
				ropts.Journal = j
				ropts.CheckpointEvery = h.opts.CheckpointEvery
			}
			res, err := core.RunWithTransport(s.Config, s.Fed, s.Factory, ropts, sts[t], cts[t])
			if err != nil {
				errs[t] = fmt.Errorf("tenant: %s: %w", s.Name, err)
				return
			}
			results[t] = res
		}(t)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
