// Package attack implements the two privacy attacks the paper cites as the
// motivation for differential privacy in federated learning: gradient
// inversion (Geiping et al. 2020, the paper's [14]: "one can recover an
// original image with high accuracy using only gradients") and membership
// inference (Shokri et al. 2017, the paper's [26]). They serve as the
// adversary in tests and examples showing that the Laplace output
// perturbation of Section III-B actually blunts both attacks.
package attack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// InvertLinearGradient reconstructs the training input of a *single-sample*
// cross-entropy step on a linear model from the weight and bias gradients
// alone — the closed-form core of gradient-inversion attacks.
//
// For logits = W·x + b and label y, the gradients are
//
//	∂L/∂W = (p − e_y)·xᵀ,   ∂L/∂b = (p − e_y),
//
// so every row k of ∂L/∂W is a scalar multiple of x, and dividing by
// (∂L/∂b)_k recovers x exactly. The most confident row (largest |∂L/∂b|)
// is used for numerical stability. It also recovers the label: the one
// coordinate of ∂L/∂b that is negative is the true class.
func InvertLinearGradient(gradW, gradB *tensor.Tensor) (x []float64, label int, err error) {
	if gradW.Rank() != 2 || gradB.Rank() != 1 || gradW.Dim(0) != gradB.Dim(0) {
		return nil, 0, fmt.Errorf("attack: need gradW [K,D] and gradB [K], got %v and %v", gradW.Shape(), gradB.Shape())
	}
	k := gradB.Dim(0)
	best, bestAbs := -1, 0.0
	label = -1
	labelVal := 0.0
	for i := 0; i < k; i++ {
		v := gradB.At(i)
		if a := math.Abs(v); a > bestAbs {
			best, bestAbs = i, a
		}
		// The true class is the unique coordinate with p_y − 1 < 0.
		if v < labelVal {
			labelVal = v
			label = i
		}
	}
	if best < 0 || bestAbs == 0 {
		return nil, 0, fmt.Errorf("attack: bias gradient is zero; nothing to invert")
	}
	row := gradW.Row(best)
	x = make([]float64, row.Size())
	scale := gradB.At(best)
	for i := range x {
		x[i] = row.Data()[i] / scale
	}
	return x, label, nil
}

// GradientsOf runs one forward/backward pass of model on a single sample
// and returns the last Linear layer's weight and bias gradients — what a
// curious server observes when a client of a linear model uploads its
// one-step update. The model must end in an nn.Linear.
func GradientsOf(model *nn.Sequential, x *tensor.Tensor, label int) (gradW, gradB *tensor.Tensor, err error) {
	var last *nn.Linear
	for _, l := range model.Layers {
		if lin, ok := l.(*nn.Linear); ok {
			last = lin
		}
	}
	if last == nil {
		return nil, nil, fmt.Errorf("attack: model has no Linear layer")
	}
	nn.ZeroGrad(model)
	batch := x.Reshape(append([]int{1}, x.Shape()...)...)
	logits := model.Forward(batch)
	_, d := nn.CrossEntropy(logits, []int{label})
	model.Backward(d)
	return last.Weight.Grad, last.Bias.Grad, nil
}

// ReconstructionError returns the normalized root-mean-square error
// between the original input and its reconstruction: 0 is a perfect
// recovery; ~1 means the reconstruction carries no signal beyond scale.
func ReconstructionError(original, reconstructed []float64) float64 {
	if len(original) != len(reconstructed) {
		panic("attack: length mismatch")
	}
	var se, ref float64
	for i := range original {
		d := original[i] - reconstructed[i]
		se += d * d
		ref += original[i] * original[i]
	}
	if ref == 0 {
		return math.Sqrt(se)
	}
	return math.Sqrt(se / ref)
}

// MembershipResult summarizes a loss-threshold membership-inference attack.
type MembershipResult struct {
	Threshold float64 // loss threshold that maximizes advantage
	TPR       float64 // members correctly identified
	FPR       float64 // non-members wrongly identified
	Advantage float64 // TPR − FPR; 0 means the attack learned nothing
}

// MembershipInference mounts the classic loss-threshold attack: samples
// whose loss under the model falls below a threshold are declared training
// members. memberLosses and nonMemberLosses are the per-sample losses of
// known members and non-members; the attack picks the threshold that
// maximizes its advantage, which is what an adversary with calibration
// data would do.
func MembershipInference(memberLosses, nonMemberLosses []float64) MembershipResult {
	if len(memberLosses) == 0 || len(nonMemberLosses) == 0 {
		panic("attack: need losses for both populations")
	}
	// Candidate thresholds: all observed losses.
	cands := make([]float64, 0, len(memberLosses)+len(nonMemberLosses))
	cands = append(cands, memberLosses...)
	cands = append(cands, nonMemberLosses...)
	sort.Float64s(cands)
	best := MembershipResult{}
	for _, thr := range cands {
		tp, fp := 0, 0
		for _, l := range memberLosses {
			if l <= thr {
				tp++
			}
		}
		for _, l := range nonMemberLosses {
			if l <= thr {
				fp++
			}
		}
		tpr := float64(tp) / float64(len(memberLosses))
		fpr := float64(fp) / float64(len(nonMemberLosses))
		if adv := tpr - fpr; adv > best.Advantage {
			best = MembershipResult{Threshold: thr, TPR: tpr, FPR: fpr, Advantage: adv}
		}
	}
	return best
}

// PerSampleLosses evaluates the model's loss on each sample of the given
// inputs, one forward pass per sample.
func PerSampleLosses(model nn.Module, xs []*tensor.Tensor, labels []int) []float64 {
	if len(xs) != len(labels) {
		panic("attack: inputs and labels length mismatch")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		batch := x.Reshape(append([]int{1}, x.Shape()...)...)
		logits := model.Forward(batch)
		l, _ := nn.CrossEntropy(logits, []int{labels[i]})
		out[i] = l
	}
	return out
}
