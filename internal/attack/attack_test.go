package attack

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestGradientInversionRecoversInputExactly is the paper's [14] in
// miniature: from one gradient of a linear model, the attacker recovers
// the private training image (and its label) essentially exactly.
func TestGradientInversionRecoversInputExactly(t *testing.T) {
	r := rng.New(1)
	model := nn.NewLinearModel(28*28, 10, r)
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 4, Test: 1, Seed: 2})
	x, y := train.Sample(0)

	gradW, gradB, err := GradientsOf(model, x, y)
	if err != nil {
		t.Fatal(err)
	}
	rec, recLabel, err := InvertLinearGradient(gradW, gradB)
	if err != nil {
		t.Fatal(err)
	}
	if recLabel != y {
		t.Fatalf("label recovered as %d, want %d", recLabel, y)
	}
	errNorm := ReconstructionError(x.Data(), rec)
	if errNorm > 1e-8 {
		t.Fatalf("reconstruction error %v, want ~0 (exact recovery)", errNorm)
	}
}

// TestDPDefeatsGradientInversion shows the defense: with Laplace noise at
// a strong privacy level on the gradients, the reconstruction degrades by
// orders of magnitude.
func TestDPDefeatsGradientInversion(t *testing.T) {
	r := rng.New(3)
	model := nn.NewLinearModel(28*28, 10, r)
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 4, Test: 1, Seed: 4})
	x, y := train.Sample(1)

	gradW, gradB, err := GradientsOf(model, x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Clean attack first.
	clean, _, err := InvertLinearGradient(gradW, gradB)
	if err != nil {
		t.Fatal(err)
	}
	cleanErr := ReconstructionError(x.Data(), clean)

	// Perturb what the adversary sees, as the output-perturbation method
	// does before anything leaves the client.
	mech, err := dp.NewLaplace(1.0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	noisyW := gradW.Clone()
	noisyB := gradB.Clone()
	mech.Perturb(noisyW.Data(), 0.1)
	mech.Perturb(noisyB.Data(), 0.1)
	noisy, _, err := InvertLinearGradient(noisyW, noisyB)
	if err != nil {
		t.Fatal(err)
	}
	noisyErr := ReconstructionError(x.Data(), noisy)
	if noisyErr < 100*cleanErr && noisyErr < 0.5 {
		t.Fatalf("DP did not degrade inversion: clean %v, noisy %v", cleanErr, noisyErr)
	}
}

func TestInvertLinearGradientValidation(t *testing.T) {
	if _, _, err := InvertLinearGradient(tensor.New(3, 4), tensor.New(2)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, _, err := InvertLinearGradient(tensor.New(3, 4), tensor.New(3)); err == nil {
		t.Fatal("zero gradient accepted")
	}
}

func TestGradientsOfRequiresLinear(t *testing.T) {
	model := nn.NewSequential(nn.NewReLU())
	if _, _, err := GradientsOf(model, tensor.New(1, 2, 2), 0); err == nil {
		t.Fatal("model without Linear accepted")
	}
}

func TestReconstructionErrorProperties(t *testing.T) {
	a := []float64{1, 2, 3}
	if e := ReconstructionError(a, []float64{1, 2, 3}); e != 0 {
		t.Fatalf("identical vectors error %v", e)
	}
	if e := ReconstructionError(a, []float64{0, 0, 0}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("zero reconstruction error %v, want 1", e)
	}
}

func TestMembershipInferencePerfectSeparation(t *testing.T) {
	res := MembershipInference([]float64{0.1, 0.2}, []float64{1.0, 2.0})
	if res.Advantage != 1 || res.TPR != 1 || res.FPR != 0 {
		t.Fatalf("separable populations: %+v", res)
	}
}

func TestMembershipInferenceNoSignal(t *testing.T) {
	same := []float64{0.5, 0.5, 0.5}
	res := MembershipInference(same, same)
	if res.Advantage > 1e-12 {
		t.Fatalf("identical populations should give ~0 advantage: %+v", res)
	}
}

// TestMembershipAttackOnOverfitModel trains a model to overfit a tiny
// member set and verifies the loss-threshold attack gains real advantage —
// then that the advantage shrinks when the model is trained under strong
// DP noise.
func TestMembershipAttackOnOverfitModel(t *testing.T) {
	train, holdout := dataset.MNIST(dataset.SynthConfig{Train: 32, Test: 32, Seed: 6, Noise: 0.4})
	r := rng.New(7)

	fit := func(noiseEps float64) float64 {
		model := nn.NewMLP(28*28, []int{32}, 10, rng.New(8))
		opt := optim.NewSGD(model, 0.1, 0.9, false)
		loader := dataset.NewLoader(train, 8, true, r.Split())
		var mech dp.Mechanism = dp.None{}
		if !math.IsInf(noiseEps, 1) {
			lap, err := dp.NewLaplace(noiseEps, r.Split())
			if err != nil {
				t.Fatal(err)
			}
			mech = lap
		}
		for epoch := 0; epoch < 60; epoch++ {
			loader.Reset()
			for {
				b, ok := loader.Next()
				if !ok {
					break
				}
				nn.ZeroGrad(model)
				logits := model.Forward(b.X)
				_, d := nn.CrossEntropy(logits, b.Labels)
				model.Backward(d)
				// DP-style noisy training: perturb gradients before the step.
				for _, p := range model.Params() {
					mech.Perturb(p.Grad.Data(), 0.05)
				}
				opt.Step()
			}
		}
		memberX := make([]*tensor.Tensor, train.Len())
		memberY := make([]int, train.Len())
		for i := 0; i < train.Len(); i++ {
			memberX[i], memberY[i] = train.Sample(i)
		}
		nonX := make([]*tensor.Tensor, holdout.Len())
		nonY := make([]int, holdout.Len())
		for i := 0; i < holdout.Len(); i++ {
			nonX[i], nonY[i] = holdout.Sample(i)
		}
		res := MembershipInference(
			PerSampleLosses(model, memberX, memberY),
			PerSampleLosses(model, nonX, nonY),
		)
		return res.Advantage
	}

	overfit := fit(math.Inf(1))
	if overfit < 0.2 {
		t.Fatalf("overfit model should leak membership: advantage %v", overfit)
	}
	private := fit(0.5)
	if private >= overfit {
		t.Fatalf("DP training should reduce membership advantage: %v (DP) vs %v (clean)", private, overfit)
	}
}

func TestMembershipInferenceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty populations")
		}
	}()
	MembershipInference(nil, []float64{1})
}

func BenchmarkGradientInversion(b *testing.B) {
	r := rng.New(1)
	model := nn.NewLinearModel(28*28, 10, r)
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 2, Test: 1, Seed: 2})
	x, y := train.Sample(0)
	gradW, gradB, err := GradientsOf(model, x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := InvertLinearGradient(gradW, gradB); err != nil {
			b.Fatal(err)
		}
	}
}
