// Package dataset provides the training and testing data substrate of the
// APPFL reproduction: a Dataset abstraction mirroring PyTorch's Dataset, a
// shuffling mini-batch Loader mirroring DataLoader, client partitioners
// (IID and non-IID), and procedural generators that stand in for the four
// corpora used in the paper's evaluation — MNIST, CIFAR-10, FEMNIST, and
// CoronaHack. The generators produce class-conditional structured images so
// models genuinely learn; shapes, class counts, and client distributions
// match the originals.
package dataset

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is a finite collection of labeled tensors, the analog of
// torch.utils.data.Dataset.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th image and its label. The returned tensor must
	// not be mutated.
	Sample(i int) (x *tensor.Tensor, label int)
	// Shape returns the per-sample shape [C, H, W].
	Shape() []int
	// Classes returns the number of distinct labels.
	Classes() int
}

// InMemory is a materialized dataset backed by one contiguous tensor.
type InMemory struct {
	shape   []int // per-sample [C,H,W]
	classes int
	images  *tensor.Tensor // [N, C, H, W]
	labels  []int
}

// NewInMemory wraps pre-built storage. images must be [N, C, H, W] with N
// equal to len(labels).
func NewInMemory(images *tensor.Tensor, labels []int, classes int) *InMemory {
	if images.Rank() != 4 {
		panic(fmt.Sprintf("dataset: images must be [N,C,H,W], got %v", images.Shape()))
	}
	if images.Dim(0) != len(labels) {
		panic(fmt.Sprintf("dataset: %d images but %d labels", images.Dim(0), len(labels)))
	}
	return &InMemory{
		shape:   images.Shape()[1:],
		classes: classes,
		images:  images,
		labels:  labels,
	}
}

// Len returns the number of samples.
func (d *InMemory) Len() int { return len(d.labels) }

// Sample returns the i-th image view and label.
func (d *InMemory) Sample(i int) (*tensor.Tensor, int) {
	return d.images.Slice(i), d.labels[i]
}

// Shape returns the per-sample [C, H, W] shape.
func (d *InMemory) Shape() []int { return d.shape }

// Classes returns the label count.
func (d *InMemory) Classes() int { return d.classes }

// Labels returns the label slice (not a copy; do not mutate).
func (d *InMemory) Labels() []int { return d.labels }

// Subset is a view of a parent dataset restricted to an index list.
type Subset struct {
	Parent  Dataset
	Indices []int
}

// NewSubset builds a subset view; indices must be valid for parent.
func NewSubset(parent Dataset, indices []int) *Subset {
	for _, i := range indices {
		if i < 0 || i >= parent.Len() {
			panic(fmt.Sprintf("dataset: subset index %d out of range [0,%d)", i, parent.Len()))
		}
	}
	return &Subset{Parent: parent, Indices: indices}
}

// Len returns the subset size.
func (s *Subset) Len() int { return len(s.Indices) }

// Sample maps through the index list.
func (s *Subset) Sample(i int) (*tensor.Tensor, int) { return s.Parent.Sample(s.Indices[i]) }

// Shape returns the parent's sample shape.
func (s *Subset) Shape() []int { return s.Parent.Shape() }

// Classes returns the parent's class count.
func (s *Subset) Classes() int { return s.Parent.Classes() }

// Batch is one mini-batch: a stacked input tensor and parallel label slice.
type Batch struct {
	X      *tensor.Tensor // [B, C, H, W]
	Labels []int
}

// Collate stacks the given samples of ds into a Batch.
func Collate(ds Dataset, indices []int) Batch {
	shape := ds.Shape()
	b := len(indices)
	out := tensor.New(append([]int{b}, shape...)...)
	labels := make([]int, b)
	for bi, i := range indices {
		x, y := ds.Sample(i)
		copy(out.Slice(bi).Data(), x.Data())
		labels[bi] = y
	}
	return Batch{X: out, Labels: labels}
}

// Loader iterates a dataset in shuffled mini-batches, the analog of
// torch.utils.data.DataLoader.
type Loader struct {
	ds        Dataset
	batchSize int
	shuffle   bool
	r         *rng.RNG

	order []int
	pos   int
}

// NewLoader builds a loader. batchSize must be positive; when shuffle is
// true a fresh permutation is drawn from r at every Reset.
func NewLoader(ds Dataset, batchSize int, shuffle bool, r *rng.RNG) *Loader {
	if batchSize <= 0 {
		panic("dataset: batch size must be positive")
	}
	l := &Loader{ds: ds, batchSize: batchSize, shuffle: shuffle, r: r}
	l.Reset()
	return l
}

// Reset starts a new epoch (reshuffling when enabled).
func (l *Loader) Reset() {
	n := l.ds.Len()
	if cap(l.order) < n {
		l.order = make([]int, n)
	}
	l.order = l.order[:n]
	for i := range l.order {
		l.order[i] = i
	}
	if l.shuffle && l.r != nil {
		l.r.Shuffle(l.order)
	}
	l.pos = 0
}

// Next returns the next batch of the epoch; ok is false once exhausted.
// The final batch of an epoch may be smaller than the batch size.
func (l *Loader) Next() (Batch, bool) {
	if l.pos >= len(l.order) {
		return Batch{}, false
	}
	end := l.pos + l.batchSize
	if end > len(l.order) {
		end = len(l.order)
	}
	b := Collate(l.ds, l.order[l.pos:end])
	l.pos = end
	return b, true
}

// Batches returns the number of batches per epoch.
func (l *Loader) Batches() int {
	return (l.ds.Len() + l.batchSize - 1) / l.batchSize
}

// Federated is a dataset already partitioned over clients, with a shared
// held-out test set used by the server-side validation routine.
type Federated struct {
	Clients []Dataset
	Test    Dataset
}

// NumClients returns the number of client shards.
func (f *Federated) NumClients() int { return len(f.Clients) }

// TotalTrain returns the total number of training samples across clients.
func (f *Federated) TotalTrain() int {
	n := 0
	for _, c := range f.Clients {
		n += c.Len()
	}
	return n
}
