package dataset

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// SynthConfig controls the size and difficulty of the procedural corpora.
// The zero value of a field selects the documented default.
type SynthConfig struct {
	Train int     // number of training samples (default per corpus)
	Test  int     // number of test samples (default per corpus)
	Noise float64 // per-pixel Gaussian noise stddev (default 0.15)
	Shift int     // maximum spatial jitter in pixels (default 2)
	Seed  uint64  // master seed (default 1)
}

func (c SynthConfig) withDefaults(train, test int) SynthConfig {
	if c.Train == 0 {
		c.Train = train
	}
	if c.Test == 0 {
		c.Test = test
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	if c.Shift == 0 {
		c.Shift = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// smoothTemplate draws a low-frequency pattern: a coarse grid of values is
// sampled from r and bilinearly upsampled to h×w. Low-frequency class
// templates are what make the synthetic corpora learnable by a CNN.
func smoothTemplate(r *rng.RNG, h, w, coarse int) []float64 {
	g := make([]float64, coarse*coarse)
	r.FillUniform(g, -1, 1)
	out := make([]float64, h*w)
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h-1) * float64(coarse-1)
		y0 := int(fy)
		y1 := y0 + 1
		if y1 >= coarse {
			y1 = coarse - 1
		}
		ty := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) / float64(w-1) * float64(coarse-1)
			x0 := int(fx)
			x1 := x0 + 1
			if x1 >= coarse {
				x1 = coarse - 1
			}
			tx := fx - float64(x0)
			v00 := g[y0*coarse+x0]
			v01 := g[y0*coarse+x1]
			v10 := g[y1*coarse+x0]
			v11 := g[y1*coarse+x1]
			out[y*w+x] = (1-ty)*((1-tx)*v00+tx*v01) + ty*((1-tx)*v10+tx*v11)
		}
	}
	return out
}

// classTemplates builds one [C,H,W] template per class.
func classTemplates(r *rng.RNG, classes, c, h, w, coarse int) [][]float64 {
	ts := make([][]float64, classes)
	for k := range ts {
		t := make([]float64, c*h*w)
		for ch := 0; ch < c; ch++ {
			copy(t[ch*h*w:(ch+1)*h*w], smoothTemplate(r, h, w, coarse))
		}
		ts[k] = t
	}
	return ts
}

// renderSample writes template k, shifted by (dy,dx) with wraparound and
// perturbed by Gaussian noise, into dst ([C,H,W] flat).
func renderSample(dst, template []float64, c, h, w, dy, dx int, noise float64, r *rng.RNG) {
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := ((y+dy)%h + h) % h
			for x := 0; x < w; x++ {
				sx := ((x+dx)%w + w) % w
				dst[base+y*w+x] = template[base+sy*w+sx] + r.Normal(0, noise)
			}
		}
	}
}

// generate materializes a synthetic corpus with the given geometry.
// labelBias, when non-nil, maps a sample index to its class; otherwise
// classes are drawn uniformly.
func generate(r *rng.RNG, n, classes, c, h, w, coarse, shift int, noise float64, templates [][]float64) *InMemory {
	images := tensor.New(n, c, h, w)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := r.Intn(classes)
		labels[i] = k
		dy := r.Intn(2*shift+1) - shift
		dx := r.Intn(2*shift+1) - shift
		renderSample(images.Slice(i).Data(), templates[k], c, h, w, dy, dx, noise, r)
	}
	return NewInMemory(images, labels, classes)
}

// MNIST generates the MNIST stand-in: 1×28×28 grayscale, 10 classes.
// Defaults: 2000 train / 500 test.
func MNIST(cfg SynthConfig) (train, test *InMemory) {
	cfg = cfg.withDefaults(2000, 500)
	r := rng.New(cfg.Seed ^ 0x6d6e697374) // "mnist"
	templates := classTemplates(r, 10, 1, 28, 28, 5)
	train = generate(r.Split(), cfg.Train, 10, 1, 28, 28, 5, cfg.Shift, cfg.Noise, templates)
	test = generate(r.Split(), cfg.Test, 10, 1, 28, 28, 5, cfg.Shift, cfg.Noise, templates)
	return train, test
}

// CIFAR10 generates the CIFAR-10 stand-in: 3×32×32 color, 10 classes.
// Defaults: 2000 train / 500 test. Color corpora are harder: templates have
// higher spatial frequency and more noise, mirroring the lower accuracies
// the paper reports on CIFAR-10 relative to MNIST.
func CIFAR10(cfg SynthConfig) (train, test *InMemory) {
	cfg = cfg.withDefaults(2000, 500)
	if cfg.Noise == 0.15 {
		cfg.Noise = 0.35
	}
	r := rng.New(cfg.Seed ^ 0x636966617231) // "cifar1"
	templates := classTemplates(r, 10, 3, 32, 32, 8)
	train = generate(r.Split(), cfg.Train, 10, 3, 32, 32, 8, cfg.Shift, cfg.Noise, templates)
	test = generate(r.Split(), cfg.Test, 10, 3, 32, 32, 8, cfg.Shift, cfg.Noise, templates)
	return train, test
}

// CoronaHack generates the CoronaHack chest-X-ray stand-in: 1×64×64
// grayscale, 3 classes (normal / bacterial / viral pneumonia). The base
// image is a synthetic lung field; class-dependent opacity blobs are
// superimposed. Defaults: 1200 train / 300 test.
func CoronaHack(cfg SynthConfig) (train, test *InMemory) {
	cfg = cfg.withDefaults(1200, 300)
	r := rng.New(cfg.Seed ^ 0x636f726f6e61) // "corona"
	const size = 64
	// The lung field: two dark elliptical regions on a brighter background.
	lung := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0.8
			for _, cx := range []float64{0.32, 0.68} {
				dx := (float64(x)/size - cx) / 0.18
				dy := (float64(y)/size - 0.5) / 0.32
				if dx*dx+dy*dy < 1 {
					v = 0.25
				}
			}
			lung[y*size+x] = v
		}
	}
	// Class templates: lung field plus class-specific opacity texture.
	templates := make([][]float64, 3)
	for k := 0; k < 3; k++ {
		t := make([]float64, size*size)
		tex := smoothTemplate(r, size, size, 4+2*k)
		for i := range t {
			t[i] = lung[i]
			if k > 0 {
				// Pneumonia classes add opacities inside the lung field.
				if lung[i] < 0.5 {
					t[i] += 0.5 * float64(k) * maxf(tex[i], 0)
				}
			}
		}
		templates[k] = t
	}
	train = generate(r.Split(), cfg.Train, 3, 1, size, size, 4, cfg.Shift, cfg.Noise, templates)
	test = generate(r.Split(), cfg.Test, 3, 1, size, size, 4, cfg.Shift, cfg.Noise, templates)
	return train, test
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FEMNISTConfig extends SynthConfig with the federated geometry of the LEAF
// FEMNIST benchmark: samples are naturally partitioned by writer.
type FEMNISTConfig struct {
	SynthConfig
	Writers          int // number of writers = clients (paper: 203)
	SamplesPerWriter int // mean samples per writer (paper: ~180 at 5% sampling)
}

// FEMNIST generates the FEMNIST stand-in: 1×28×28 grayscale, 62 classes
// (10 digits + 52 letters), non-IID across writers. Each writer has a
// personal style — an affine intensity distortion and a slant shift — and a
// skewed class distribution, mirroring handwriting heterogeneity. Defaults:
// 203 writers × 24 samples, 1000 test samples.
func FEMNIST(cfg FEMNISTConfig) *Federated {
	if cfg.Writers == 0 {
		cfg.Writers = 203
	}
	if cfg.SamplesPerWriter == 0 {
		cfg.SamplesPerWriter = 24
	}
	c := cfg.SynthConfig.withDefaults(0, 1000)
	r := rng.New(c.Seed ^ 0x66656d6e697374) // "femnist"
	const classes = 62
	templates := classTemplates(r, classes, 1, 28, 28, 5)

	clients := make([]Dataset, cfg.Writers)
	writerRngs := r.SplitN(cfg.Writers)
	for wtr := 0; wtr < cfg.Writers; wtr++ {
		wr := writerRngs[wtr]
		n := cfg.SamplesPerWriter
		images := tensor.New(n, 1, 28, 28)
		labels := make([]int, n)
		// Writer style: gain/offset and a constant slant shift.
		gain := 0.7 + 0.6*wr.Float64()
		offset := 0.3 * (wr.Float64() - 0.5)
		slant := wr.Intn(5) - 2
		// Class skew: the writer uses a contiguous band of 12 classes.
		bandStart := wr.Intn(classes)
		for i := 0; i < n; i++ {
			k := (bandStart + wr.Intn(12)) % classes
			labels[i] = k
			dy := wr.Intn(2*c.Shift+1) - c.Shift
			dx := wr.Intn(2*c.Shift+1) - c.Shift + slant
			dst := images.Slice(i).Data()
			renderSample(dst, templates[k], 1, 28, 28, dy, dx, c.Noise, wr)
			for j := range dst {
				dst[j] = gain*dst[j] + offset
			}
		}
		clients[wtr] = NewInMemory(images, labels, classes)
	}
	test := generate(r.Split(), c.Test, classes, 1, 28, 28, 5, c.Shift, c.Noise, templates)
	return &Federated{Clients: clients, Test: test}
}
