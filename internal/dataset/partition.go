package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// PartitionIID splits ds into p near-equal shards after a global shuffle,
// as the paper does for MNIST, CIFAR-10, and CoronaHack ("we split the
// entire training datasets into four").
func PartitionIID(ds Dataset, p int, r *rng.RNG) []Dataset {
	if p <= 0 {
		panic("dataset: PartitionIID needs p > 0")
	}
	perm := r.Perm(ds.Len())
	shards := make([]Dataset, p)
	for i := 0; i < p; i++ {
		lo := i * len(perm) / p
		hi := (i + 1) * len(perm) / p
		idx := make([]int, hi-lo)
		copy(idx, perm[lo:hi])
		shards[i] = NewSubset(ds, idx)
	}
	return shards
}

// PartitionLabelSkew produces a non-IID split in which each client draws
// samples from only classesPerClient of the label space, the standard
// label-skew protocol for simulating federated heterogeneity. Every sample
// is assigned to exactly one client.
func PartitionLabelSkew(ds Dataset, p, classesPerClient int, r *rng.RNG) []Dataset {
	k := ds.Classes()
	if classesPerClient <= 0 || classesPerClient > k {
		panic(fmt.Sprintf("dataset: classesPerClient %d invalid for %d classes", classesPerClient, k))
	}
	// Group sample indices by label.
	byClass := make([][]int, k)
	for i := 0; i < ds.Len(); i++ {
		_, y := ds.Sample(i)
		byClass[y] = append(byClass[y], i)
	}
	for _, idx := range byClass {
		r.Shuffle(idx)
	}
	// Assign each client a set of classes (round-robin over a shuffled class
	// list so every class is covered when p*cpc >= k).
	clientClasses := make([][]int, p)
	order := r.Perm(k)
	pos := 0
	for c := 0; c < p; c++ {
		for j := 0; j < classesPerClient; j++ {
			clientClasses[c] = append(clientClasses[c], order[pos%k])
			pos++
		}
	}
	// Count how many clients hold each class, then split that class's
	// samples evenly among them.
	holders := make([][]int, k)
	for c, classes := range clientClasses {
		for _, cls := range classes {
			holders[cls] = append(holders[cls], c)
		}
	}
	clientIdx := make([][]int, p)
	for cls := 0; cls < k; cls++ {
		hs := holders[cls]
		if len(hs) == 0 {
			// No client drew this class; give it to a random client so no
			// sample is dropped.
			hs = []int{r.Intn(p)}
		}
		samples := byClass[cls]
		for i, h := range hs {
			lo := i * len(samples) / len(hs)
			hi := (i + 1) * len(samples) / len(hs)
			clientIdx[h] = append(clientIdx[h], samples[lo:hi]...)
		}
	}
	shards := make([]Dataset, p)
	for c := 0; c < p; c++ {
		shards[c] = NewSubset(ds, clientIdx[c])
	}
	return shards
}

// SampleFraction returns a subset of ds holding approximately frac of its
// samples, selected uniformly (the paper samples 5% of FEMNIST).
func SampleFraction(ds Dataset, frac float64, r *rng.RNG) Dataset {
	if frac <= 0 || frac > 1 {
		panic("dataset: fraction must be in (0,1]")
	}
	n := int(float64(ds.Len()) * frac)
	if n < 1 {
		n = 1
	}
	perm := r.Perm(ds.Len())
	idx := make([]int, n)
	copy(idx, perm[:n])
	return NewSubset(ds, idx)
}
