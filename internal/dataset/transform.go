package dataset

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Normalized wraps a dataset and standardizes every sample per channel:
// x' = (x − mean[c]) / std[c], the torchvision.transforms.Normalize analog.
type Normalized struct {
	Parent    Dataset
	Mean, Std []float64

	scratch *tensor.Tensor
}

// Normalize wraps parent with per-channel standardization. mean and std
// must have one entry per channel; std entries must be positive.
func Normalize(parent Dataset, mean, std []float64) *Normalized {
	c := parent.Shape()[0]
	if len(mean) != c || len(std) != c {
		panic(fmt.Sprintf("dataset: Normalize needs %d channel stats, got %d/%d", c, len(mean), len(std)))
	}
	for _, s := range std {
		if s <= 0 {
			panic("dataset: Normalize std must be positive")
		}
	}
	return &Normalized{Parent: parent, Mean: mean, Std: std}
}

// Len returns the parent length.
func (n *Normalized) Len() int { return n.Parent.Len() }

// Shape returns the parent sample shape.
func (n *Normalized) Shape() []int { return n.Parent.Shape() }

// Classes returns the parent class count.
func (n *Normalized) Classes() int { return n.Parent.Classes() }

// Sample returns the standardized sample. The returned tensor is reused
// across calls (matching the Dataset contract that samples are read-only
// and consumed before the next call in a loader pass).
func (n *Normalized) Sample(i int) (*tensor.Tensor, int) {
	x, y := n.Parent.Sample(i)
	if n.scratch == nil || !n.scratch.SameShape(x) {
		n.scratch = x.Clone()
	} else {
		copy(n.scratch.Data(), x.Data())
	}
	sh := x.Shape()
	c, plane := sh[0], sh[1]*sh[2]
	d := n.scratch.Data()
	for ch := 0; ch < c; ch++ {
		m, s := n.Mean[ch], n.Std[ch]
		seg := d[ch*plane : (ch+1)*plane]
		for j := range seg {
			seg[j] = (seg[j] - m) / s
		}
	}
	return n.scratch, y
}

// ChannelStats computes the per-channel mean and standard deviation of a
// dataset, the inputs Normalize typically receives.
func ChannelStats(ds Dataset) (mean, std []float64) {
	c := ds.Shape()[0]
	mean = make([]float64, c)
	m2 := make([]float64, c)
	count := make([]float64, c)
	for i := 0; i < ds.Len(); i++ {
		x, _ := ds.Sample(i)
		sh := x.Shape()
		plane := sh[1] * sh[2]
		d := x.Data()
		for ch := 0; ch < c; ch++ {
			seg := d[ch*plane : (ch+1)*plane]
			for _, v := range seg {
				mean[ch] += v
				m2[ch] += v * v
				count[ch]++
			}
		}
	}
	std = make([]float64, c)
	for ch := 0; ch < c; ch++ {
		mean[ch] /= count[ch]
		variance := m2[ch]/count[ch] - mean[ch]*mean[ch]
		if variance < 0 {
			variance = 0
		}
		std[ch] = math.Sqrt(variance)
		if std[ch] == 0 {
			std[ch] = 1
		}
	}
	return mean, std
}
