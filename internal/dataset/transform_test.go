package dataset

import (
	"math"
	"testing"
)

func TestChannelStats(t *testing.T) {
	train, _ := MNIST(SynthConfig{Train: 100, Test: 10, Seed: 31})
	mean, std := ChannelStats(train)
	if len(mean) != 1 || len(std) != 1 {
		t.Fatalf("stats per channel: %v %v", mean, std)
	}
	if std[0] <= 0 {
		t.Fatalf("std %v", std[0])
	}
}

func TestNormalizeStandardizes(t *testing.T) {
	train, _ := MNIST(SynthConfig{Train: 100, Test: 10, Seed: 32})
	mean, std := ChannelStats(train)
	norm := Normalize(train, mean, std)
	nm, ns := ChannelStats(norm)
	if math.Abs(nm[0]) > 1e-9 {
		t.Fatalf("normalized mean %v, want ~0", nm[0])
	}
	if math.Abs(ns[0]-1) > 1e-9 {
		t.Fatalf("normalized std %v, want ~1", ns[0])
	}
	// Metadata passthrough.
	if norm.Len() != train.Len() || norm.Classes() != train.Classes() {
		t.Fatal("normalize changed metadata")
	}
	_, y0 := train.Sample(0)
	_, y1 := norm.Sample(0)
	if y0 != y1 {
		t.Fatal("normalize changed labels")
	}
}

func TestNormalizeValidation(t *testing.T) {
	train, _ := MNIST(SynthConfig{Train: 4, Test: 1, Seed: 33})
	for _, f := range []func(){
		func() { Normalize(train, []float64{0, 0}, []float64{1, 1}) }, // wrong channels
		func() { Normalize(train, []float64{0}, []float64{0}) },       // zero std
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalizeCIFARThreeChannels(t *testing.T) {
	train, _ := CIFAR10(SynthConfig{Train: 20, Test: 5, Seed: 34})
	mean, std := ChannelStats(train)
	if len(mean) != 3 {
		t.Fatalf("CIFAR channels %d", len(mean))
	}
	norm := Normalize(train, mean, std)
	x, _ := norm.Sample(0)
	if x.Rank() != 3 || x.Dim(0) != 3 {
		t.Fatalf("normalized sample shape %v", x.Shape())
	}
}
