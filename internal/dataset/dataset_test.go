package dataset

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func tinyDataset(n, classes int) *InMemory {
	images := tensor.New(n, 1, 4, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % classes
		images.Slice(i).Fill(float64(i))
	}
	return NewInMemory(images, labels, classes)
}

func TestInMemoryBasics(t *testing.T) {
	d := tinyDataset(10, 3)
	if d.Len() != 10 || d.Classes() != 3 {
		t.Fatalf("Len/Classes wrong: %d %d", d.Len(), d.Classes())
	}
	x, y := d.Sample(7)
	if y != 1 {
		t.Fatalf("label = %d, want 1", y)
	}
	if x.At(0, 0, 0) != 7 {
		t.Fatalf("sample content wrong: %v", x.At(0, 0, 0))
	}
	if got := d.Shape(); got[0] != 1 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("Shape = %v", got)
	}
}

func TestNewInMemoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label count mismatch")
		}
	}()
	NewInMemory(tensor.New(3, 1, 2, 2), []int{0, 1}, 2)
}

func TestSubset(t *testing.T) {
	d := tinyDataset(10, 2)
	s := NewSubset(d, []int{9, 0, 5})
	if s.Len() != 3 {
		t.Fatalf("subset Len = %d", s.Len())
	}
	x, _ := s.Sample(0)
	if x.At(0, 0, 0) != 9 {
		t.Fatal("subset does not map indices")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad index")
		}
	}()
	NewSubset(d, []int{10})
}

func TestCollate(t *testing.T) {
	d := tinyDataset(6, 2)
	b := Collate(d, []int{1, 3, 5})
	if b.X.Dim(0) != 3 || b.X.Dim(2) != 4 {
		t.Fatalf("batch shape %v", b.X.Shape())
	}
	if b.Labels[0] != 1 || b.Labels[1] != 1 || b.Labels[2] != 1 {
		t.Fatalf("batch labels %v", b.Labels)
	}
	if b.X.Slice(1).At(0, 0, 0) != 3 {
		t.Fatal("collate copied wrong sample")
	}
}

func TestLoaderCoversEpochExactlyOnce(t *testing.T) {
	d := tinyDataset(10, 2)
	l := NewLoader(d, 3, true, rng.New(1))
	if l.Batches() != 4 {
		t.Fatalf("Batches = %d, want 4", l.Batches())
	}
	seen := map[float64]int{}
	total := 0
	for {
		b, ok := l.Next()
		if !ok {
			break
		}
		if b.X.Dim(0) > 3 {
			t.Fatalf("oversized batch %d", b.X.Dim(0))
		}
		for i := 0; i < b.X.Dim(0); i++ {
			seen[b.X.Slice(i).At(0, 0, 0)]++
			total++
		}
	}
	if total != 10 || len(seen) != 10 {
		t.Fatalf("epoch covered %d samples, %d unique", total, len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("sample %v appeared %d times", v, c)
		}
	}
}

func TestLoaderShuffleChangesOrder(t *testing.T) {
	d := tinyDataset(32, 2)
	l := NewLoader(d, 32, true, rng.New(7))
	b1, _ := l.Next()
	l.Reset()
	b2, _ := l.Next()
	diff := false
	for i := 0; i < 32; i++ {
		if b1.X.Slice(i).At(0, 0, 0) != b2.X.Slice(i).At(0, 0, 0) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("two shuffled epochs had identical order (astronomically unlikely)")
	}
}

func TestLoaderNoShuffleIsSequential(t *testing.T) {
	d := tinyDataset(5, 2)
	l := NewLoader(d, 2, false, nil)
	b, _ := l.Next()
	if b.X.Slice(0).At(0, 0, 0) != 0 || b.X.Slice(1).At(0, 0, 0) != 1 {
		t.Fatal("unshuffled loader not sequential")
	}
}

// Property: IID partition preserves every sample exactly once.
func TestPartitionIIDPreservesSamples(t *testing.T) {
	f := func(seed uint64, rawN, rawP uint8) bool {
		n := int(rawN%50) + 10
		p := int(rawP%5) + 1
		d := tinyDataset(n, 2)
		shards := PartitionIID(d, p, rng.New(seed))
		if len(shards) != p {
			return false
		}
		seen := map[float64]int{}
		for _, s := range shards {
			for i := 0; i < s.Len(); i++ {
				x, _ := s.Sample(i)
				seen[x.At(0, 0, 0)]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionIIDBalanced(t *testing.T) {
	d := tinyDataset(103, 2)
	shards := PartitionIID(d, 4, rng.New(3))
	for _, s := range shards {
		if s.Len() < 25 || s.Len() > 26 {
			t.Fatalf("unbalanced shard of size %d", s.Len())
		}
	}
}

func TestPartitionLabelSkewPreservesSamples(t *testing.T) {
	d := tinyDataset(100, 10)
	shards := PartitionLabelSkew(d, 5, 2, rng.New(4))
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 100 {
		t.Fatalf("label-skew lost/duplicated samples: %d", total)
	}
}

func TestPartitionLabelSkewLimitsClasses(t *testing.T) {
	d := tinyDataset(200, 10)
	shards := PartitionLabelSkew(d, 5, 2, rng.New(5))
	for ci, s := range shards {
		classes := map[int]bool{}
		for i := 0; i < s.Len(); i++ {
			_, y := s.Sample(i)
			classes[y] = true
		}
		if len(classes) > 2 {
			t.Fatalf("client %d holds %d classes, want <= 2", ci, len(classes))
		}
	}
}

func TestSampleFraction(t *testing.T) {
	d := tinyDataset(100, 2)
	s := SampleFraction(d, 0.05, rng.New(6))
	if s.Len() != 5 {
		t.Fatalf("5%% of 100 = %d", s.Len())
	}
}

func TestMNISTGeometry(t *testing.T) {
	train, test := MNIST(SynthConfig{Train: 50, Test: 20})
	if train.Len() != 50 || test.Len() != 20 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	sh := train.Shape()
	if sh[0] != 1 || sh[1] != 28 || sh[2] != 28 {
		t.Fatalf("MNIST shape %v", sh)
	}
	if train.Classes() != 10 {
		t.Fatalf("MNIST classes %d", train.Classes())
	}
}

func TestCIFAR10Geometry(t *testing.T) {
	train, _ := CIFAR10(SynthConfig{Train: 10, Test: 5})
	sh := train.Shape()
	if sh[0] != 3 || sh[1] != 32 || sh[2] != 32 {
		t.Fatalf("CIFAR shape %v", sh)
	}
	if train.Classes() != 10 {
		t.Fatalf("CIFAR classes %d", train.Classes())
	}
}

func TestCoronaHackGeometry(t *testing.T) {
	train, _ := CoronaHack(SynthConfig{Train: 10, Test: 5})
	sh := train.Shape()
	if sh[0] != 1 || sh[1] != 64 || sh[2] != 64 {
		t.Fatalf("CoronaHack shape %v", sh)
	}
	if train.Classes() != 3 {
		t.Fatalf("CoronaHack classes %d", train.Classes())
	}
}

func TestFEMNISTFederatedGeometry(t *testing.T) {
	fed := FEMNIST(FEMNISTConfig{Writers: 11, SamplesPerWriter: 6, SynthConfig: SynthConfig{Test: 30}})
	if fed.NumClients() != 11 {
		t.Fatalf("writers %d", fed.NumClients())
	}
	if fed.TotalTrain() != 66 {
		t.Fatalf("total train %d", fed.TotalTrain())
	}
	if fed.Test.Len() != 30 {
		t.Fatalf("test %d", fed.Test.Len())
	}
	if fed.Clients[0].Classes() != 62 {
		t.Fatalf("classes %d", fed.Clients[0].Classes())
	}
}

func TestFEMNISTIsNonIID(t *testing.T) {
	fed := FEMNIST(FEMNISTConfig{Writers: 20, SamplesPerWriter: 20})
	// Each writer uses a 12-class band of the 62 classes; label supports of
	// two distant writers should differ.
	support := func(d Dataset) map[int]bool {
		s := map[int]bool{}
		for i := 0; i < d.Len(); i++ {
			_, y := d.Sample(i)
			s[y] = true
		}
		return s
	}
	s0 := support(fed.Clients[0])
	if len(s0) > 12 {
		t.Fatalf("writer 0 has %d classes, want <= 12", len(s0))
	}
	distinct := false
	for c := 1; c < fed.NumClients(); c++ {
		sc := support(fed.Clients[c])
		same := len(sc) == len(s0)
		if same {
			for k := range sc {
				if !s0[k] {
					same = false
					break
				}
			}
		}
		if !same {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("all writers share an identical label support; partition is not non-IID")
	}
}

func TestSyntheticReproducibility(t *testing.T) {
	a, _ := MNIST(SynthConfig{Train: 20, Test: 5, Seed: 42})
	b, _ := MNIST(SynthConfig{Train: 20, Test: 5, Seed: 42})
	for i := 0; i < 20; i++ {
		xa, ya := a.Sample(i)
		xb, yb := b.Sample(i)
		if ya != yb || !xa.EqualWithin(xb, 0) {
			t.Fatalf("same seed produced different corpus at sample %d", i)
		}
	}
	c, _ := MNIST(SynthConfig{Train: 20, Test: 5, Seed: 43})
	xa, _ := a.Sample(0)
	xc, _ := c.Sample(0)
	if xa.EqualWithin(xc, 0) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestSyntheticIsLearnable verifies that a small model beats chance by a
// wide margin after brief training — the property Figure 2 depends on.
func TestSyntheticIsLearnable(t *testing.T) {
	train, test := MNIST(SynthConfig{Train: 400, Test: 200, Seed: 9})
	r := rng.New(10)
	m := nn.NewMLP(28*28, []int{32}, 10, r)
	opt := optim.NewSGD(m, 0.1, 0.9, false)
	loader := NewLoader(train, 32, true, r.Split())
	for epoch := 0; epoch < 8; epoch++ {
		loader.Reset()
		for {
			b, ok := loader.Next()
			if !ok {
				break
			}
			nn.ZeroGrad(m)
			logits := m.Forward(b.X)
			_, d := nn.CrossEntropy(logits, b.Labels)
			m.Backward(d)
			opt.Step()
		}
	}
	tb := Collate(test, rng.New(1).Perm(test.Len()))
	acc := nn.Accuracy(m.Forward(tb.X), tb.Labels)
	if acc < 0.5 {
		t.Fatalf("synthetic MNIST not learnable: accuracy %.3f (chance 0.1)", acc)
	}
}

func BenchmarkLoaderEpoch(b *testing.B) {
	train, _ := MNIST(SynthConfig{Train: 256, Test: 1})
	l := NewLoader(train, 64, true, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Reset()
		for {
			if _, ok := l.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkMNISTGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MNIST(SynthConfig{Train: 100, Test: 10})
	}
}
