package faults

import (
	"testing"
)

// FuzzPlanParse pins the robustness contract of the fault-plan grammar
// (mirroring the pipeline spec's fuzz discipline): adversarial specs must
// error — never panic — and every accepted plan must round-trip through
// String() to an equal plan, so a logged plan can always be replayed.
func FuzzPlanParse(f *testing.F) {
	seeds := []string{
		"",
		"crash:2@3",
		"crash:20%@3",
		"rejoin:1@2+3",
		"drop:0:0.3",
		"drop:33.3%:0.25",
		"delay:4:10:5",
		"delay:4:0.125",
		"reorder",
		"reorder:0.5",
		"killserver:@3",
		"killserver:@2+1,killserver:@5",
		"killserver:@99999999999",
		"crash:20%@3,drop:0:0.3,delay:1:10:5,rejoin:2@2+3,reorder",
		"crash:1@9999999999999",
		"drop:1:1e-300",
		"delay:1:3600000",
		"crash:0.0001%@1",
		"crash:1@3,,drop:1:0.5",
		"crash:１@3", // full-width digit
		"delay:0:NaN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted plan %q rendered to unparseable %q: %v", spec, rendered, err)
		}
		if !p.Equal(p2) {
			t.Fatalf("plan %q round-tripped to a different plan:\n  first:  %+v\n  second: %+v", spec, p.Events, p2.Events)
		}
		if r2 := p2.String(); r2 != rendered {
			t.Fatalf("String not canonical: %q then %q", rendered, r2)
		}
		// An accepted plan must also resolve over a federation without
		// panicking (selectors may still reject out-of-range IDs).
		if _, err := NewInjector(p, 8, 1); err != nil {
			return
		}
	})
}
