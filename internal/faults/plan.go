// Package faults is the deterministic fault-injection layer: it wraps any
// comm.ServerTransport / comm.ClientTransport pair and executes a scripted
// Plan — per-client crash-at-round, transient upload loss, delay/jitter,
// disconnect-then-rejoin, and server-side batch reorder. Every random
// decision (who a percentage picks, whether an upload drops, how much
// jitter a delay gets, whether a batch is permuted) is drawn from streams
// derived deterministically from one seed, so a faulted run replays
// bit-identically: the same seed and the same plan provoke exactly the
// same failure story, which is what makes chaos scenarios assertable in
// tests.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrPlan tags every plan-spec parse or validation failure.
var ErrPlan = fmt.Errorf("faults: bad plan")

// Event kinds of a fault plan.
const (
	KindCrash   = "crash"   // stop replying on receipt of the round-R model
	KindRejoin  = "rejoin"  // goodbye at round R, lease a return K rounds later
	KindDrop    = "drop"    // lose each upload with probability P
	KindDelay   = "delay"   // delay each upload by MS ms (± uniform jitter)
	KindReorder = "reorder" // server-side: permute a gathered batch with probability P
	// KindKillServer kills the *server* process at round R (kill -9: no
	// flush, no goodbye) and restarts it K rounds of downtime later from
	// its journal. Requires a journaled run; the runner cycles the precise
	// kill window (between rounds, after dispatch, before commit) across
	// successive kills so a soak exercises every recovery path.
	KindKillServer = "killserver"
)

// Who selects the clients an event applies to: one explicit ID, or a
// percentage of the federation resolved deterministically from the seed.
type Who struct {
	// Client is the explicit 0-based client ID; -1 when Pct selects.
	Client int
	// Pct is the percentage of the federation in (0,100], kept as parsed
	// so the spec round-trips through String bit for bit; 0 when Client
	// selects.
	Pct float64
}

// String renders the selector back to its spec form.
func (w Who) String() string {
	if w.Client >= 0 {
		return strconv.Itoa(w.Client)
	}
	return strconv.FormatFloat(w.Pct, 'g', -1, 64) + "%"
}

// Event is one parsed element of a fault plan.
type Event struct {
	Kind  string
	Who   Who           // crash/rejoin/drop/delay
	Round int           // crash/rejoin: 1-based trigger round
	Gap   int           // rejoin: rounds away before the lease expires
	Prob  float64       // drop/reorder probability
	Delay time.Duration // delay: mean upload delay
	Jit   time.Duration // delay: uniform jitter half-width
}

// String renders the event back to its canonical spec form.
func (e Event) String() string {
	switch e.Kind {
	case KindCrash:
		return fmt.Sprintf("crash:%s@%d", e.Who, e.Round)
	case KindRejoin:
		return fmt.Sprintf("rejoin:%s@%d+%d", e.Who, e.Round, e.Gap)
	case KindDrop:
		return fmt.Sprintf("drop:%s:%s", e.Who, trimFloat(e.Prob))
	case KindDelay:
		s := fmt.Sprintf("delay:%s:%s", e.Who, trimFloat(float64(e.Delay)/float64(time.Millisecond)))
		if e.Jit > 0 {
			s += ":" + trimFloat(float64(e.Jit)/float64(time.Millisecond))
		}
		return s
	case KindReorder:
		if e.Prob != 1 {
			return fmt.Sprintf("reorder:%s", trimFloat(e.Prob))
		}
		return "reorder"
	case KindKillServer:
		if e.Gap > 0 {
			return fmt.Sprintf("killserver:@%d+%d", e.Round, e.Gap)
		}
		return fmt.Sprintf("killserver:@%d", e.Round)
	}
	return e.Kind
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Plan is an ordered fault script, parsed from a spec string such as
//
//	crash:20%@3,drop:0:0.3,delay:1:10:5,rejoin:2@2+3,reorder
//
// See Parse for the grammar.
type Plan struct {
	Events []Event
}

// String renders the plan back to its canonical spec string; the result
// re-parses to an equal plan.
func (p *Plan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse parses a fault-plan spec string. Grammar: comma-separated events,
// each `kind:args`:
//
//	crash:WHO@R        WHO crashes on receiving the round-R model: it
//	                   never uploads again and drains further models in
//	                   silence (the ungraceful failure a barrier hangs on)
//	rejoin:WHO@R+K     WHO announces a goodbye at round R leasing a return
//	                   at round R+K, then disconnects and resumes (a real
//	                   reconnect on transports that support one)
//	drop:WHO:P         each upload from WHO is lost in transit with
//	                   probability P in (0,1]
//	delay:WHO:MS[:J]   each upload from WHO is delayed MS milliseconds,
//	                   plus uniform jitter in [0,J) ms
//	reorder[:P]        the server permutes each arrival-ordered batch with
//	                   probability P (default 1)
//	killserver:@R[+K]  the server is killed without warning at round R and
//	                   restarted from its journal after K rounds of downtime
//	                   (default 0); requires a journaled run
//
// WHO is a 0-based client ID, or `F%` selecting ceil(F/100 · n) clients
// pseudorandomly (deterministic in the injector seed). An empty string
// parses to the empty (fault-free) plan. Every failure wraps ErrPlan;
// adversarial inputs error, never panic.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &Plan{}, nil
	}
	p := &Plan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty event in %q", ErrPlan, spec)
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

// parseEvent parses one `kind:args` element.
func parseEvent(part string) (Event, error) {
	kind, rest, _ := strings.Cut(part, ":")
	kind = strings.TrimSpace(kind)
	switch kind {
	case KindCrash:
		who, at, err := parseWhoAt(kind, rest)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindCrash, Who: who, Round: at}, nil
	case KindRejoin:
		atSpec, gapSpec, ok := strings.Cut(rest, "+")
		if !ok {
			return Event{}, fmt.Errorf("%w: rejoin needs WHO@R+K, got %q", ErrPlan, part)
		}
		who, at, err := parseWhoAt(kind, atSpec)
		if err != nil {
			return Event{}, err
		}
		gap, err := parsePositiveInt(kind, "gap", gapSpec)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindRejoin, Who: who, Round: at, Gap: gap}, nil
	case KindDrop:
		whoSpec, pSpec, ok := strings.Cut(rest, ":")
		if !ok {
			return Event{}, fmt.Errorf("%w: drop needs WHO:P, got %q", ErrPlan, part)
		}
		who, err := parseWho(kind, whoSpec)
		if err != nil {
			return Event{}, err
		}
		prob, err := parseProb(kind, pSpec)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindDrop, Who: who, Prob: prob}, nil
	case KindDelay:
		fields := strings.Split(rest, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return Event{}, fmt.Errorf("%w: delay needs WHO:MS[:J], got %q", ErrPlan, part)
		}
		who, err := parseWho(kind, fields[0])
		if err != nil {
			return Event{}, err
		}
		ms, err := parseMillis(kind, "delay", fields[1])
		if err != nil {
			return Event{}, err
		}
		ev := Event{Kind: KindDelay, Who: who, Delay: ms}
		if len(fields) == 3 {
			jit, err := parseMillis(kind, "jitter", fields[2])
			if err != nil {
				return Event{}, err
			}
			ev.Jit = jit
		}
		return ev, nil
	case KindReorder:
		prob := 1.0
		if rest != "" {
			var err error
			if prob, err = parseProb(kind, rest); err != nil {
				return Event{}, err
			}
		}
		return Event{Kind: KindReorder, Prob: prob}, nil
	case KindKillServer:
		atSpec, ok := strings.CutPrefix(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("%w: killserver needs @R[+K], got %q", ErrPlan, part)
		}
		ev := Event{Kind: KindKillServer}
		if roundSpec, gapSpec, split := strings.Cut(atSpec, "+"); split {
			gap, err := parsePositiveInt(kind, "downtime", gapSpec)
			if err != nil {
				return Event{}, err
			}
			ev.Gap = gap
			atSpec = roundSpec
		}
		at, err := parsePositiveInt(kind, "round", atSpec)
		if err != nil {
			return Event{}, err
		}
		ev.Round = at
		return ev, nil
	default:
		return Event{}, fmt.Errorf("%w: unknown event %q (want crash, rejoin, drop, delay, reorder, or killserver)", ErrPlan, kind)
	}
}

// parseWhoAt parses the `WHO@R` form shared by crash and rejoin.
func parseWhoAt(kind, spec string) (Who, int, error) {
	whoSpec, atSpec, ok := strings.Cut(spec, "@")
	if !ok {
		return Who{}, 0, fmt.Errorf("%w: %s needs WHO@R, got %q", ErrPlan, kind, spec)
	}
	who, err := parseWho(kind, whoSpec)
	if err != nil {
		return Who{}, 0, err
	}
	at, err := parsePositiveInt(kind, "round", atSpec)
	if err != nil {
		return Who{}, 0, err
	}
	return who, at, nil
}

// parseWho parses a client selector: an ID or a percentage.
func parseWho(kind, spec string) (Who, error) {
	spec = strings.TrimSpace(spec)
	if pct, ok := strings.CutSuffix(spec, "%"); ok {
		v, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
		if err != nil || math.IsNaN(v) || v <= 0 || v > 100 {
			return Who{}, fmt.Errorf("%w: %s percentage %q must be in (0,100]", ErrPlan, kind, spec)
		}
		return Who{Client: -1, Pct: v}, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil || id < 0 {
		return Who{}, fmt.Errorf("%w: %s client %q must be a non-negative ID or a percentage", ErrPlan, kind, spec)
	}
	return Who{Client: id}, nil
}

func parsePositiveInt(kind, what, spec string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(spec))
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%w: %s %s %q must be a positive integer", ErrPlan, kind, what, spec)
	}
	return v, nil
}

func parseProb(kind, spec string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(spec), 64)
	if err != nil || math.IsNaN(v) || v <= 0 || v > 1 {
		return 0, fmt.Errorf("%w: %s probability %q must be in (0,1]", ErrPlan, kind, spec)
	}
	return v, nil
}

func parseMillis(kind, what, spec string) (time.Duration, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(spec), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 3.6e6 {
		return 0, fmt.Errorf("%w: %s %s %q must be milliseconds in [0, 3.6e6]", ErrPlan, kind, what, spec)
	}
	// Round, don't truncate: rounding makes the ms⇄Duration conversion a
	// fixed point, so a parsed plan re-parses from its String identically.
	return time.Duration(math.Round(v * float64(time.Millisecond))), nil
}

// Equal reports whether two plans script the same events in the same
// order — the round-trip invariant FuzzPlanParse pins.
func (p *Plan) Equal(q *Plan) bool {
	if len(p.Events) != len(q.Events) {
		return false
	}
	for i := range p.Events {
		if p.Events[i] != q.Events[i] {
			return false
		}
	}
	return true
}

// expand resolves a selector to concrete client IDs over n clients. A
// percentage picks ceil(frac·n) clients by ranking a per-event hash score,
// the same style as core.SampledCohort, so the choice is deterministic in
// (seed, event index). An explicit ID beyond the federation is an error.
func (w Who) expand(n int, seed uint64, event int) ([]int, error) {
	if w.Client >= 0 {
		if w.Client >= n {
			return nil, fmt.Errorf("%w: client %d out of range [0,%d)", ErrPlan, w.Client, n)
		}
		return []int{w.Client}, nil
	}
	k := int(math.Ceil(w.Pct / 100 * float64(n)))
	if k > n {
		k = n
	}
	type scored struct {
		score uint64
		id    int
	}
	ranked := make([]scored, n)
	for id := 0; id < n; id++ {
		ranked[id] = scored{score: faultScore(seed, event, id), id: id}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score < ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = ranked[i].id
	}
	sort.Ints(ids)
	return ids, nil
}

// faultScore hashes (seed, event, client) with a splitmix64 finalizer.
func faultScore(seed uint64, event, client int) uint64 {
	x := seed ^ (uint64(event+1) * 0x9e3779b97f4a7c15) ^ (uint64(client)+1)*0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
