package faults

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	mpicomm "repro/internal/comm/mpi"
	"repro/internal/wire"
)

func TestParseRoundTripsCanonicalSpecs(t *testing.T) {
	specs := []string{
		"crash:2@3",
		"crash:20%@3",
		"rejoin:1@2+3",
		"drop:0:0.3",
		"drop:50%:0.25",
		"delay:4:10",
		"delay:4:10:5",
		"reorder",
		"reorder:0.5",
		"killserver:@3",
		"killserver:@3+2",
		"crash:20%@3,drop:0:0.3,delay:1:10:5,rejoin:2@2+3,reorder",
		"killserver:@2+1,killserver:@5",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Fatalf("%q round-tripped to %q", spec, got)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if !p.Equal(p2) {
			t.Fatalf("%q: re-parsed plan differs", spec)
		}
	}
}

func TestParseRejectsAdversarialSpecs(t *testing.T) {
	bad := []string{
		"crash", "crash:", "crash:x@3", "crash:1@0", "crash:1@-2", "crash:-1@3",
		"crash:101%@3", "crash:0%@1", "crash:NaN%@1",
		"rejoin:1@2", "rejoin:1@2+0", "rejoin:1@2+x",
		"drop:1", "drop:1:0", "drop:1:1.5", "drop:1:NaN",
		"delay:1", "delay:1:-5", "delay:1:1:2:3", "delay:1:Inf",
		"reorder:2", "reorder:0",
		"killserver", "killserver:", "killserver:@", "killserver:@0",
		"killserver:@-1", "killserver:@2+", "killserver:@2+0", "killserver:@x",
		"killserver:3", "killserver:@2+1+1",
		"unknown:1", ",", "crash:1@3,,drop:1:0.5", "crash:1@1e99",
	}
	for _, spec := range bad {
		p, err := Parse(spec)
		if err == nil {
			t.Fatalf("%q accepted as %+v", spec, p)
		}
		if !errors.Is(err, ErrPlan) {
			t.Fatalf("%q: error %v does not wrap ErrPlan", spec, err)
		}
	}
}

func TestParseEmptyIsFaultFree(t *testing.T) {
	p, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 0 || p.String() != "" {
		t.Fatalf("empty spec parsed to %+v", p)
	}
	inj, err := NewInjector(p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Quiet() {
		t.Fatal("fault-free injector reports faults")
	}
}

func TestPercentageSelectionDeterministicInSeed(t *testing.T) {
	p, err := Parse("crash:25%@2")
	if err != nil {
		t.Fatal(err)
	}
	a := MustInjector(p, 20, 7).Crashes()
	b := MustInjector(p, 20, 7).Crashes()
	c := MustInjector(p, 20, 8).Crashes()
	if len(a) != 5 { // ceil(0.25*20)
		t.Fatalf("25%% of 20 selected %d clients", len(a))
	}
	for id, r := range a {
		if b[id] != r {
			t.Fatalf("same seed picked different clients: %v vs %v", a, b)
		}
	}
	same := true
	for id := range a {
		if _, ok := c[id]; !ok {
			same = false
		}
	}
	if same {
		t.Logf("note: seeds 7 and 8 picked the same 5 of 20 clients (possible but unlikely)")
	}
}

func TestInjectorRejectsOutOfRangeClient(t *testing.T) {
	p, err := Parse("crash:9@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInjector(p, 4, 1); err == nil {
		t.Fatal("client 9 of 4 accepted")
	}
	if _, err := NewInjector(&Plan{}, 0, 1); err == nil {
		t.Fatal("zero-client injector accepted")
	}
}

func TestEarliestCrashWinsOnConflict(t *testing.T) {
	p, err := Parse("crash:0@5,rejoin:0@2+3,crash:0@7")
	if err != nil {
		t.Fatal(err)
	}
	inj := MustInjector(p, 2, 1)
	if inj.crashAt[0] != 2 || inj.rejoinAt[0] != 5 {
		t.Fatalf("conflict resolution crashAt=%d rejoinAt=%d, want the round-2 rejoin", inj.crashAt[0], inj.rejoinAt[0])
	}
}

// TestCrashWrapperSwallowsRoundsAfterTrigger drives the client wrapper
// over a real transport: after the crash round it must drain silently and
// still exit on Final.
func TestCrashWrapperSwallowsRoundsAfterTrigger(t *testing.T) {
	p, err := Parse("crash:0@2")
	if err != nil {
		t.Fatal(err)
	}
	inj := MustInjector(p, 1, 3)
	srv, raw := mpicomm.NewFLWorld(1)
	ct := inj.WrapClient(0, raw[0])

	var wg sync.WaitGroup
	wg.Add(1)
	seen := make(chan uint32, 8)
	go func() {
		defer wg.Done()
		for {
			gm, err := ct.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			seen <- gm.Round
			ct.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{1}})
		}
	}()

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherFrom([]int{0}); err != nil {
		t.Fatal(err)
	}
	// Round 2 triggers the crash: the wrapper swallows it and every later
	// model; the server times out.
	for round := 2; round <= 4; round++ {
		if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: uint32(round), Weights: []float64{1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.GatherUntil(1, 50*time.Millisecond); err == nil {
			t.Fatalf("round %d: crashed client replied", round)
		}
		srv.Forgive([]int{0})
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(seen)
	var rounds []uint32
	for r := range seen {
		rounds = append(rounds, r)
	}
	if len(rounds) != 1 || rounds[0] != 1 {
		t.Fatalf("client loop saw rounds %v, want only round 1", rounds)
	}
}

// TestRejoinWrapperGoodbyesAndReturns: the disconnect flavor answers its
// trigger round with a goodbye leasing the rejoin round, swallows the
// leased-out span, and returns the first model at or past the lease.
func TestRejoinWrapperGoodbyesAndReturns(t *testing.T) {
	p, err := Parse("rejoin:0@2+2")
	if err != nil {
		t.Fatal(err)
	}
	inj := MustInjector(p, 1, 3)
	srv, raw := mpicomm.NewFLWorld(1)
	ct := inj.WrapClient(0, raw[0])

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			gm, err := ct.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			ct.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{1}})
		}
	}()

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherFrom([]int{0}); err != nil {
		t.Fatal(err)
	}
	// Round 2: the obligation is answered by the goodbye itself — no
	// timeout needed.
	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherFrom([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Control != wire.ControlGoodbye || got[0].RejoinRound != 4 {
		t.Fatalf("expected goodbye leasing round 4, got %+v", got[0])
	}
	// Round 4: the lease has expired; the client answers with data again.
	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 4, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.GatherFrom([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Control != wire.ControlNone || got[0].Round != 4 {
		t.Fatalf("post-rejoin reply %+v, want a round-4 data update", got[0])
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestDropAndDelayDeterministicPerSeed: the per-client fault streams must
// replay identically across injector reuses.
func TestDropAndDelayDeterministicPerSeed(t *testing.T) {
	p, err := Parse("drop:0:0.5")
	if err != nil {
		t.Fatal(err)
	}
	decisions := func() []bool {
		inj := MustInjector(p, 1, 11)
		ct := inj.WrapClient(0, nopClient{}).(*clientTransport)
		out := make([]bool, 32)
		for i := range out {
			out[i] = ct.r.Float64() < ct.dropP
		}
		return out
	}
	a, b := decisions(), decisions()
	anyDrop, anyKeep := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d differs across identical injectors", i)
		}
		anyDrop = anyDrop || a[i]
		anyKeep = anyKeep || !a[i]
	}
	if !anyDrop || !anyKeep {
		t.Fatalf("drop:0.5 produced a degenerate stream (drop=%v keep=%v)", anyDrop, anyKeep)
	}
}

// TestReorderWrapperPermutesDeterministically: the server wrapper's
// permutation must be seed-stable.
func TestReorderWrapperPermutesDeterministically(t *testing.T) {
	p, err := Parse("reorder")
	if err != nil {
		t.Fatal(err)
	}
	permute := func() []uint32 {
		inj := MustInjector(p, 4, 5)
		st := inj.WrapServer(nopServer{}).(*serverTransport)
		batch := []*wire.LocalUpdate{{ClientID: 0}, {ClientID: 1}, {ClientID: 2}, {ClientID: 3}}
		st.maybeReorder(batch)
		out := make([]uint32, len(batch))
		for i, u := range batch {
			out[i] = u.ClientID
		}
		return out
	}
	a, b := permute(), permute()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reorder permutation differs across identical injectors: %v vs %v", a, b)
		}
	}
	identity := true
	for i, id := range a {
		if int(id) != i {
			identity = false
		}
	}
	if identity {
		t.Logf("note: seeded permutation happened to be the identity")
	}
}

// nopClient/nopServer are inert transports for wrapper-internals tests.
type nopClient struct{}

func (nopClient) RecvGlobal() (*wire.GlobalModel, error) { return &wire.GlobalModel{Final: true}, nil }
func (nopClient) SendUpdate(*wire.LocalUpdate) error     { return nil }
func (nopClient) Stats() comm.Snapshot                   { return comm.Snapshot{} }
func (nopClient) Close() error                           { return nil }

type nopServer struct{}

func (nopServer) Broadcast(*wire.GlobalModel) error             { return nil }
func (nopServer) SendTo([]int, *wire.GlobalModel) error         { return nil }
func (nopServer) Gather() ([]*wire.LocalUpdate, error)          { return nil, nil }
func (nopServer) GatherFrom([]int) ([]*wire.LocalUpdate, error) { return nil, nil }
func (nopServer) GatherAny(int) ([]*wire.LocalUpdate, error)    { return nil, nil }
func (nopServer) GatherUntil(int, time.Duration) ([]*wire.LocalUpdate, error) {
	return nil, nil
}
func (nopServer) Forgive([]int)        {}
func (nopServer) Outstanding() []int   { return nil }
func (nopServer) Stats() comm.Snapshot { return comm.Snapshot{} }
func (nopServer) Close() error         { return nil }

// TestServerKillsSortedAndDetachedFromClients pins the killserver verb's
// injector surface: kills come back round-sorted regardless of spec
// order, carry their downtime, and touch no client wrapper.
func TestServerKillsSortedAndDetachedFromClients(t *testing.T) {
	p, err := Parse("killserver:@7,killserver:@2+3,crash:1@4")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	kills := inj.ServerKills()
	if len(kills) != 2 || kills[0].Round != 2 || kills[0].Gap != 3 || kills[1].Round != 7 || kills[1].Gap != 0 {
		t.Fatalf("server kills %+v", kills)
	}
	// The returned slice is a copy: mutating it must not corrupt the plan.
	kills[0].Round = 99
	if again := inj.ServerKills(); again[0].Round != 2 {
		t.Fatalf("ServerKills leaked internal state: %+v", again)
	}
	if crashes := inj.Crashes(); len(crashes) != 1 || crashes[1] != 4 {
		t.Fatalf("client crash schedule disturbed: %+v", crashes)
	}
}
