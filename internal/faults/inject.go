package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Injector resolves a Plan over a concrete federation and wraps transports
// so the scripted faults actually happen. It holds only the resolved,
// immutable schedule: every WrapClient/WrapServer call derives fresh RNG
// streams from the seed, so one Injector can drive any number of runs and
// each replays identically.
type Injector struct {
	numClients int
	seed       uint64
	plan       *Plan

	crashAt  []int // round at which client i goes silent (0 = never)
	rejoinAt []int // lease round at which it returns (0 = permanent crash)
	dropP    []float64
	delay    []time.Duration
	jit      []time.Duration
	reorderP float64

	serverKills []ServerKill
}

// ServerKill schedules one ungraceful server death: the process dies at
// Round and is restarted from its journal after Gap rounds of downtime.
// The runner derives its in-process kill schedule from these.
type ServerKill struct {
	Round int // 1-based round at which the server dies
	Gap   int // rounds of downtime before the restart (0 = immediate)
}

// NewInjector resolves plan over numClients clients. Percentage selectors
// pick their clients here, deterministically in seed; when several
// crash/rejoin events hit one client, the earliest round wins (a client
// only fails once). The plan may be nil or empty for a fault-free
// injector.
func NewInjector(plan *Plan, numClients int, seed uint64) (*Injector, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("%w: injector needs at least one client, got %d", ErrPlan, numClients)
	}
	inj := &Injector{
		numClients: numClients,
		seed:       seed,
		plan:       plan,
		crashAt:    make([]int, numClients),
		rejoinAt:   make([]int, numClients),
		dropP:      make([]float64, numClients),
		delay:      make([]time.Duration, numClients),
		jit:        make([]time.Duration, numClients),
	}
	if plan == nil {
		return inj, nil
	}
	for i, ev := range plan.Events {
		switch ev.Kind {
		case KindReorder:
			if inj.reorderP < ev.Prob {
				inj.reorderP = ev.Prob
			}
			continue
		case KindKillServer:
			inj.serverKills = append(inj.serverKills, ServerKill{Round: ev.Round, Gap: ev.Gap})
			continue
		}
		ids, err := ev.Who.expand(numClients, seed, i)
		if err != nil {
			return nil, err
		}
		for _, c := range ids {
			switch ev.Kind {
			case KindCrash:
				if inj.crashAt[c] == 0 || ev.Round < inj.crashAt[c] {
					inj.crashAt[c] = ev.Round
					inj.rejoinAt[c] = 0
				}
			case KindRejoin:
				if inj.crashAt[c] == 0 || ev.Round < inj.crashAt[c] {
					inj.crashAt[c] = ev.Round
					inj.rejoinAt[c] = ev.Round + ev.Gap
				}
			case KindDrop:
				if inj.dropP[c] < ev.Prob {
					inj.dropP[c] = ev.Prob
				}
			case KindDelay:
				if inj.delay[c] < ev.Delay {
					inj.delay[c] = ev.Delay
					inj.jit[c] = ev.Jit
				}
			}
		}
	}
	return inj, nil
}

// MustInjector is NewInjector for callers with a statically valid plan.
func MustInjector(plan *Plan, numClients int, seed uint64) *Injector {
	inj, err := NewInjector(plan, numClients, seed)
	if err != nil {
		panic(err)
	}
	return inj
}

// ServerKills returns the scripted server deaths in round order — the
// runner turns them into its in-process kill-and-recover schedule.
func (inj *Injector) ServerKills() []ServerKill {
	out := append([]ServerKill(nil), inj.serverKills...)
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// Crashes reports the clients scheduled to crash or disconnect, with their
// trigger rounds — what a test asserts the scheduler recovered from.
func (inj *Injector) Crashes() map[int]int {
	out := map[int]int{}
	for c, r := range inj.crashAt {
		if r > 0 {
			out[c] = r
		}
	}
	return out
}

// clientStream derives the deterministic RNG stream of client c's faults.
func (inj *Injector) clientStream(c int) *rng.RNG {
	return rng.New(inj.seed ^ (uint64(c)+2)*0x9e3779b97f4a7c15)
}

// WrapClient wraps client c's transport with its scripted faults. Safe to
// call once per run per client; each call starts a fresh deterministic
// fault stream.
func (inj *Injector) WrapClient(c int, ct comm.ClientTransport) comm.ClientTransport {
	if c < 0 || c >= inj.numClients {
		panic(fmt.Sprintf("faults: wrapping unknown client %d", c))
	}
	return &clientTransport{
		inner:    ct,
		id:       c,
		crashAt:  inj.crashAt[c],
		rejoinAt: inj.rejoinAt[c],
		dropP:    inj.dropP[c],
		delay:    inj.delay[c],
		jit:      inj.jit[c],
		r:        inj.clientStream(c),
	}
}

// WrapServer wraps the server transport with the plan's server-side
// faults (batch reorder). Pass-through when the plan has none.
func (inj *Injector) WrapServer(st comm.ServerTransport) comm.ServerTransport {
	if inj.reorderP == 0 {
		return st
	}
	return &serverTransport{
		ServerTransport: st,
		p:               inj.reorderP,
		r:               rng.New(inj.seed ^ 0xa0761d6478bd642f),
	}
}

// clientTransport executes the per-client fault script around the real
// transport. The crash and rejoin behaviors live entirely inside
// RecvGlobal: a crashed client parks here draining models in silence (so
// transport queues never back up) until its lease expires or the run
// ends, exactly like a dead device that keeps being addressed.
type clientTransport struct {
	inner    comm.ClientTransport
	id       int
	crashAt  int
	rejoinAt int
	dropP    float64
	delay    time.Duration
	jit      time.Duration
	r        *rng.RNG

	dead bool
}

// RecvGlobal receives the next model, executing crash/goodbye/rejoin
// transitions scripted for this client.
func (t *clientTransport) RecvGlobal() (*wire.GlobalModel, error) {
	for {
		m, err := t.inner.RecvGlobal()
		if err != nil || m.Final {
			return m, err
		}
		round := int(m.Round)
		if t.dead {
			if t.rejoinAt > 0 && round >= t.rejoinAt {
				// Lease expired: live again, and disarm the trigger so the
				// client doesn't re-crash on its next model.
				t.dead = false
				t.crashAt, t.rejoinAt = 0, 0
				return m, nil
			}
			continue // dead: drain and ignore
		}
		if t.crashAt > 0 && round >= t.crashAt {
			t.dead = true
			if t.rejoinAt > 0 {
				// Graceful departure: answer the obligation with a goodbye
				// leasing the rejoin round, then (where the transport
				// supports it) actually drop and resume the connection.
				if err := t.inner.SendUpdate(wire.Goodbye(uint32(t.id), m.Round, uint32(t.rejoinAt))); err != nil {
					return nil, err
				}
				if rc, ok := t.inner.(comm.SessionResumer); ok {
					if err := rc.Resume(); err != nil {
						return nil, fmt.Errorf("faults: client %d resume: %w", t.id, err)
					}
				}
			}
			continue
		}
		return m, nil
	}
}

// SendUpdate uploads the update, subject to the scripted delay and
// transient-loss faults. RNG draws happen in a fixed order (drop decision,
// then jitter) so the stream is identical across runs.
func (t *clientTransport) SendUpdate(m *wire.LocalUpdate) error {
	if t.dead {
		return nil // a dead client's upload goes nowhere
	}
	if t.dropP > 0 && t.r.Float64() < t.dropP {
		return nil // lost in transit
	}
	if t.delay > 0 || t.jit > 0 {
		d := t.delay
		if t.jit > 0 {
			d += time.Duration(t.r.Float64() * float64(t.jit))
		}
		time.Sleep(d)
	}
	return t.inner.SendUpdate(m)
}

// Stats returns the inner transport's traffic snapshot.
func (t *clientTransport) Stats() comm.Snapshot { return t.inner.Stats() }

// Close closes the inner transport.
func (t *clientTransport) Close() error { return t.inner.Close() }

// serverTransport permutes arrival-ordered batches — the message-reorder
// fault. Cohort-ordered gathers (GatherFrom) re-sort by client anyway, so
// only the arrival-ordered paths are touched.
type serverTransport struct {
	comm.ServerTransport
	p float64

	mu sync.Mutex
	r  *rng.RNG
}

// GatherAny collects n updates and maybe permutes them.
func (s *serverTransport) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	batch, err := s.ServerTransport.GatherAny(n)
	s.maybeReorder(batch)
	return batch, err
}

// GatherUntil collects up to n updates and maybe permutes the batch; the
// permutation draw happens whether or not the deadline cut the gather
// short, keeping the RNG stream aligned across runs.
func (s *serverTransport) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	batch, err := s.ServerTransport.GatherUntil(n, timeout)
	s.maybeReorder(batch)
	return batch, err
}

// maybeReorder applies a seeded Fisher-Yates shuffle with probability p.
func (s *serverTransport) maybeReorder(batch []*wire.LocalUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.r.Float64() >= s.p || len(batch) < 2 {
		return
	}
	for i := len(batch) - 1; i > 0; i-- {
		j := s.r.Intn(i + 1)
		batch[i], batch[j] = batch[j], batch[i]
	}
}

// Interface conformance checks.
var (
	_ comm.ClientTransport = (*clientTransport)(nil)
	_ comm.ServerTransport = (*serverTransport)(nil)
)

// Quiet reports whether the injector scripts no faults at all — used by
// callers that want to skip wrapping entirely.
func (inj *Injector) Quiet() bool {
	if inj.reorderP > 0 {
		return false
	}
	for c := 0; c < inj.numClients; c++ {
		if inj.crashAt[c] != 0 || inj.dropP[c] != 0 || inj.delay[c] != 0 || inj.jit[c] != 0 {
			return false
		}
	}
	return true
}
