package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	// The state must not be all zeros and must produce varied output.
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero seed produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children matched on %d/100 draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at %d", i)
		}
	}
}

func TestSplitN(t *testing.T) {
	kids := New(3).SplitN(5)
	if len(kids) != 5 {
		t.Fatalf("want 5 children, got %d", len(kids))
	}
	v := map[uint64]bool{}
	for _, k := range kids {
		v[k.Uint64()] = true
	}
	if len(v) != 5 {
		t.Fatalf("children not distinct: %d unique first draws", len(v))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		mean += x
		m2 += x * x
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("normal mean %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("normal variance %v, want ~9", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(29)
	const n = 300000
	b := 1.5
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Laplace(0, b)
		mean += x
		m2 += x * x
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("laplace mean %v, want ~0", mean)
	}
	// Var(Laplace(0,b)) = 2 b^2 = 4.5
	if math.Abs(variance-2*b*b) > 0.25 {
		t.Fatalf("laplace variance %v, want ~%v", variance, 2*b*b)
	}
}

func TestLaplaceMedianAbsoluteDeviation(t *testing.T) {
	// P(|X| <= b ln 2) = 1/2 for Laplace(0, b).
	r := New(31)
	b := 2.0
	const n = 100000
	inside := 0
	thr := b * math.Ln2
	for i := 0; i < n; i++ {
		if math.Abs(r.Laplace(0, b)) <= thr {
			inside++
		}
	}
	frac := float64(inside) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(|X|<=b ln2) = %v, want ~0.5", frac)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplace with scale 0 did not panic")
		}
	}()
	New(1).Laplace(0, 0)
}

func TestExponentialMean(t *testing.T) {
	r := New(37)
	const n = 200000
	rate := 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("exponential produced negative %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("exponential mean %v, want ~%v", mean, 1/rate)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	// Median of LogNormal(mu, sigma) is exp(mu).
	r := New(43)
	mu := 0.7
	const n = 100000
	below := 0
	med := math.Exp(mu)
	for i := 0; i < n; i++ {
		if r.LogNormal(mu, 0.9) < med {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestFillers(t *testing.T) {
	r := New(47)
	n := 512
	u := make([]float64, n)
	r.FillUniform(u, -1, 1)
	for _, v := range u {
		if v < -1 || v >= 1 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	g := make([]float64, n)
	r.FillNormal(g, 0, 1)
	l := make([]float64, n)
	r.FillLaplace(l, 0, 1)
	varied := 0
	for i := 1; i < n; i++ {
		if g[i] != g[0] || l[i] != l[0] {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("fillers produced constant output")
	}
}

// Property: shuffling preserves the multiset of elements.
func TestShufflePreservesElements(t *testing.T) {
	f := func(seed uint64, raw []int8) bool {
		r := New(seed)
		p := make([]int, len(raw))
		for i, v := range raw {
			p[i] = int(v)
		}
		counts := map[int]int{}
		for _, v := range p {
			counts[v]++
		}
		r.Shuffle(p)
		for _, v := range p {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkLaplace(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Laplace(0, 1)
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal(0, 1)
	}
	_ = sink
}
