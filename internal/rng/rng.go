// Package rng provides a deterministic, splittable pseudo-random number
// generator with the distribution samplers needed across the framework:
// uniform, normal, Laplace, log-normal, and exponential variates.
//
// Every federated client, dataset generator, and privacy mechanism owns an
// independent stream derived from a master seed, so simulations are exactly
// reproducible regardless of goroutine scheduling. The core generator is
// xoshiro256** seeded through splitmix64, following Blackman & Vigna.
package rng

import "math"

// RNG is a deterministic pseudo-random generator. It is not safe for
// concurrent use; derive one stream per goroutine with Split.
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand seeds into full xoshiro state and to derive child streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a child generator whose stream is statistically independent
// of the parent's subsequent outputs. The parent is advanced once.
func (r *RNG) Split() *RNG {
	// Use the parent's next output as the child's seed material.
	seed := r.Uint64()
	return New(seed ^ 0xa0761d6478bd642f)
}

// SplitN derives n child generators in one call.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster; the
	// simple modulo of a 64-bit draw has negligible bias for the n used here.
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Normal returns a variate from N(mean, stddev^2) via Box-Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + stddev*u*f
}

// Laplace returns a variate from the Laplace distribution with the given
// location and scale b > 0 (density 1/(2b) * exp(-|x-loc|/b)). This is the
// noise distribution of the paper's output-perturbation mechanism.
func (r *RNG) Laplace(loc, scale float64) float64 {
	if scale <= 0 {
		panic("rng: Laplace scale must be positive")
	}
	// Inverse CDF on u in (-1/2, 1/2].
	u := r.Float64() - 0.5
	if u == -0.5 {
		u = 0.5 // avoid log(0) on the open endpoint
	}
	if u < 0 {
		return loc + scale*math.Log(1+2*u)
	}
	return loc - scale*math.Log(1-2*u)
}

// Exponential returns a variate from Exp(rate).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / rate
}

// LogNormal returns a variate X with ln X ~ N(mu, sigma^2). Used by the
// network simulator to model heavy-tailed per-round traffic jitter.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// FillNormal fills dst with N(mean, stddev^2) variates.
func (r *RNG) FillNormal(dst []float64, mean, stddev float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, stddev)
	}
}

// FillUniform fills dst with uniform variates in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	span := hi - lo
	for i := range dst {
		dst[i] = lo + span*r.Float64()
	}
}

// FillLaplace fills dst with Laplace(loc, scale) variates.
func (r *RNG) FillLaplace(dst []float64, loc, scale float64) {
	for i := range dst {
		dst[i] = r.Laplace(loc, scale)
	}
}
