package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// StageSpec is one parsed element of a pipeline spec string.
type StageSpec struct {
	Kind string    // clip | laplace | gaussian | topk | quantize | f16
	Args []float64 // numeric arguments, already range-checked by Parse
}

// Specs is an ordered pipeline specification — the form Config carries and
// both sides of the wire build from.
type Specs []StageSpec

// needsRNG reports whether building the stage consumes an RNG stream.
// Build splits the client RNG once per such stage, in stack order, so a
// given spec consumes a deterministic, reproducible slice of the stream.
func (s StageSpec) needsRNG() bool {
	switch s.Kind {
	case "laplace", "gaussian", "quantize":
		return true
	}
	return false
}

// Parse parses an ordered pipeline spec string such as
//
//	clip:1.0,laplace:0.5,topk:0.1
//
// Grammar: comma-separated stages, each `name` or `name:arg[:arg]`.
//
//	clip:C          gradient L2 clip bound C > 0
//	laplace:EPS     Laplace output perturbation, ε̄ = EPS > 0
//	gaussian:EPS[:DELTA]  Gaussian (ε,δ)-DP; DELTA defaults to 1e-5
//	topk:FRAC       keep the ceil(FRAC·dim) largest-|v| coordinates
//	quantize[:BITS] stochastic affine quantization; BITS defaults to 8
//	f16             IEEE-754 half-precision cast
//
// Parse validates arguments and the stage ordering (see New); every
// failure wraps ErrSpec. An empty string parses to the empty (identity)
// pipeline.
func Parse(spec string) (Specs, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out Specs
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty stage in %q", ErrSpec, spec)
		}
		fields := strings.Split(part, ":")
		kind := strings.TrimSpace(fields[0])
		args := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: stage %q has non-numeric argument %q", ErrSpec, kind, f)
			}
			args = append(args, v)
		}
		ss := StageSpec{Kind: kind, Args: args}
		if err := ss.check(); err != nil {
			return nil, err
		}
		out = append(out, ss)
	}
	// Dry-build (no RNG) so ordering violations surface at parse time,
	// where Config.Validate can report them.
	if _, err := out.Build(nil); err != nil {
		return nil, err
	}
	return out, nil
}

// arity bounds per stage kind: min and max argument counts.
var stageArity = map[string][2]int{
	"clip":     {1, 1},
	"laplace":  {1, 1},
	"gaussian": {1, 2},
	"topk":     {1, 1},
	"quantize": {0, 1},
	"f16":      {0, 0},
}

// check validates the stage name and argument count; value ranges are
// checked by the stage constructors during Build.
func (s StageSpec) check() error {
	ar, ok := stageArity[s.Kind]
	if !ok {
		return fmt.Errorf("%w: unknown stage %q (want clip, laplace, gaussian, topk, quantize, or f16)", ErrSpec, s.Kind)
	}
	if len(s.Args) < ar[0] || len(s.Args) > ar[1] {
		return fmt.Errorf("%w: stage %q takes %d–%d arguments, got %d", ErrSpec, s.Kind, ar[0], ar[1], len(s.Args))
	}
	return nil
}

// String renders the specs back to the canonical spec string.
func (s Specs) String() string {
	parts := make([]string, len(s))
	for i, ss := range s {
		p := ss.Kind
		for _, a := range ss.Args {
			p += ":" + strconv.FormatFloat(a, 'g', -1, 64)
		}
		parts[i] = p
	}
	return strings.Join(parts, ",")
}

// ClipBound returns the clip stage's bound C, or 0 when the spec has none.
func (s Specs) ClipBound() float64 {
	for _, ss := range s {
		if ss.Kind == "clip" {
			return ss.Args[0]
		}
	}
	return 0
}

// Build assembles the pipeline. r is the owning client's RNG: each
// randomized stage receives its own r.Split() stream, in stack order, so
// runs are reproducible. Pass r == nil to build the server-side form,
// which can only Invert (randomized stages refuse to Apply).
func (s Specs) Build(r *rng.RNG) (*Pipeline, error) {
	stages := make([]Stage, 0, len(s))
	for _, ss := range s {
		var sr *rng.RNG
		if r != nil && ss.needsRNG() {
			sr = r.Split()
		}
		var (
			st  Stage
			err error
		)
		switch ss.Kind {
		case "clip":
			st, err = NewClipL2(ss.Args[0])
		case "laplace":
			st, err = NewLaplaceNoise(ss.Args[0], sr)
		case "gaussian":
			delta := 1e-5
			if len(ss.Args) == 2 {
				delta = ss.Args[1]
			}
			st, err = NewGaussianNoise(ss.Args[0], delta, sr)
		case "topk":
			st, err = NewTopKSparsify(ss.Args[0])
		case "quantize":
			bits := 8
			if len(ss.Args) == 1 {
				if ss.Args[0] != float64(int(ss.Args[0])) {
					return nil, fmt.Errorf("%w: quantize bits must be an integer, got %v", ErrSpec, ss.Args[0])
				}
				bits = int(ss.Args[0])
			}
			st, err = NewStochasticQuantize(bits, sr)
		case "f16":
			st, err = NewFloat16Cast()
		default:
			err = fmt.Errorf("%w: unknown stage %q", ErrSpec, ss.Kind)
		}
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
	}
	return New(stages...)
}
