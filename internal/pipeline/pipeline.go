// Package pipeline implements the composable update pipeline: an Update
// value (a model vector in one of the wire encodings) flows through an
// ordered stack of Stages on its way from a client's local solver to the
// server's Aggregator. Privacy stages (gradient clipping, Laplace/Gaussian
// output perturbation) and compression stages (top-k sparsification,
// stochastic quantization, float16 casting) compose in one stack, the
// refactor "Advances in APPFL" (arXiv:2409.11585) makes a first-class
// framework layer.
//
// Every stage has a server-side Inverse: the server runs the stack in
// reverse over the received payload before the Aggregator sees the update.
// Privacy stages invert to the identity — noise is deliberately not
// removable — while compression stages reconstruct a dense vector. An
// empty pipeline is the exact identity: the update crosses the wire in the
// legacy dense encoding, bit for bit.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Update is the value flowing through the stack: a model vector in one of
// the wire payload encodings. Client-side stages transform it in order
// (dense in, possibly compressed out); the server inverts it back to dense.
type Update = wire.Payload

// NewDense wraps a dense vector as an Update about to enter the stack.
// The slice is adopted, not copied; stages may transform it in place.
func NewDense(v []float64) *Update {
	return &Update{Enc: wire.EncDense, Dim: uint32(len(v)), Dense: v}
}

// ErrSpec is the sentinel wrapped by every pipeline specification error:
// unknown stage names, bad arguments, or an invalid stage ordering.
var ErrSpec = errors.New("pipeline: invalid spec")

// ErrNeedRNG is returned by Apply when a randomized stage was built
// without an RNG — the server-side (inverse-only) form of the pipeline.
var ErrNeedRNG = errors.New("pipeline: randomized stage built without an RNG cannot Apply")

// Stage is one transform of the update stack. Apply runs on the client on
// the outbound update; Invert runs on the server, in reverse stack order,
// to reconstruct the dense vector the Aggregator consumes.
type Stage interface {
	// Name is the stage's spec identifier (e.g. "clip", "laplace", "topk").
	Name() string
	// Spec renders the stage back to its spec form (e.g. "clip:1").
	Spec() string
	// Apply transforms the outbound update in place. sens is the DP
	// sensitivity Δ̄ supplied by the algorithm's sensitivity rule; only
	// noise stages consume it.
	Apply(u *Update, sens float64) error
	// Invert reconstructs the update server-side. Privacy stages are the
	// identity; compression stages densify and must find their own
	// encoding on the incoming update (a mismatch is a protocol error).
	Invert(u *Update) error
}

// gradStage is implemented by stages that act during local training rather
// than on the release: ClipL2 bounds every gradient (that is where the DP
// sensitivity bound comes from), and in objective-perturbation mode the
// noise stages contribute a per-round gradient offset.
type gradStage interface {
	// gradHook transforms one local gradient in place.
	gradHook(g []float64)
}

// noiseStage is implemented by the DP noise stages.
type noiseStage interface {
	// epsilon is the per-release privacy budget the stage consumes.
	epsilon() float64
	// roundNoise draws the objective-perturbation vector for one round
	// (the ⟨b, z⟩ linear term), consuming the stage's RNG.
	roundNoise(dim int, sens float64) []float64
	// setObjective switches the stage between output perturbation (noise
	// on the release) and objective perturbation (noise via roundNoise).
	setObjective(bool)
}

// Pipeline is an ordered stack of stages plus the per-round state of the
// objective-perturbation mode. One Pipeline serves one client (stages own
// client-specific RNG streams); the server builds its own inverse-only
// Pipeline from the same spec.
type Pipeline struct {
	stages []Stage

	objective bool      // objective-perturbation mode for this client
	objNoise  []float64 // per-round gradient offset drawn in BeginRound
}

// New assembles and validates a pipeline. The ordering rules:
//
//   - at most one clip stage, and it must precede any noise stage (the
//     clip bound is what makes the noise sensitivity finite);
//   - noise stages require a clip stage somewhere before them;
//   - at most one compression stage (topk/quantize/f16), and it must be
//     the last stage — noise must enter before the update leaves the
//     dense encoding.
func New(stages ...Stage) (*Pipeline, error) {
	seenClip := false
	seenEnc := false
	for _, s := range stages {
		switch s.(type) {
		case *ClipL2:
			if seenClip {
				return nil, fmt.Errorf("%w: duplicate clip stage", ErrSpec)
			}
			if seenEnc {
				return nil, fmt.Errorf("%w: clip must precede compression", ErrSpec)
			}
			seenClip = true
		case *LaplaceNoise, *GaussianNoise:
			if !seenClip {
				return nil, fmt.Errorf("%w: noise stage %q requires a preceding clip stage to bound sensitivity", ErrSpec, s.Name())
			}
			if seenEnc {
				return nil, fmt.Errorf("%w: noise must precede compression", ErrSpec)
			}
		case *TopKSparsify, *StochasticQuantize, *Float16Cast:
			if seenEnc {
				return nil, fmt.Errorf("%w: at most one compression stage (%q is the second)", ErrSpec, s.Name())
			}
			seenEnc = true
		default:
			return nil, fmt.Errorf("%w: unknown stage type %T", ErrSpec, s)
		}
	}
	return &Pipeline{stages: stages}, nil
}

// Empty reports whether the pipeline has no stages (the exact identity).
func (p *Pipeline) Empty() bool { return p == nil || len(p.stages) == 0 }

// Stages returns the ordered stage stack (read-only view).
func (p *Pipeline) Stages() []Stage {
	if p == nil {
		return nil
	}
	return p.stages
}

// String renders the pipeline back to its spec form.
func (p *Pipeline) String() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.stages))
	for i, s := range p.stages {
		parts[i] = s.Spec()
	}
	return strings.Join(parts, ",")
}

// ClipBound returns the gradient clip bound C of the clip stage, or 0 when
// the pipeline does not clip. The per-algorithm sensitivity rules derive
// Δ̄ from this bound.
func (p *Pipeline) ClipBound() float64 {
	if p == nil {
		return 0
	}
	for _, s := range p.stages {
		if c, ok := s.(*ClipL2); ok {
			return c.C
		}
	}
	return 0
}

// Epsilon returns the total per-release privacy budget consumed by the
// noise stages under sequential composition, or +Inf when the pipeline
// adds no noise — the value reported in LocalUpdate.Epsilon.
func (p *Pipeline) Epsilon() float64 {
	total := 0.0
	if p != nil {
		for _, s := range p.stages {
			if n, ok := s.(noiseStage); ok {
				total += n.epsilon()
			}
		}
	}
	if total == 0 {
		return inf
	}
	return total
}

// SetObjective switches the pipeline's noise stages between output
// perturbation (default: noise added to the release by Apply) and
// objective perturbation (noise drawn once per round by BeginRound and
// added to every gradient instead).
func (p *Pipeline) SetObjective(objective bool) {
	p.objective = objective
	for _, s := range p.stages {
		if n, ok := s.(noiseStage); ok {
			n.setObjective(objective)
		}
	}
}

// BeginRound prepares per-round state: in objective mode it draws the
// round's perturbation vector b from the noise stages, which GradHook then
// adds to every gradient (the ⟨b, z⟩ term of the perturbed objective).
func (p *Pipeline) BeginRound(dim int, sens float64) {
	if !p.objective {
		p.objNoise = nil
		return
	}
	p.objNoise = nil
	for _, s := range p.stages {
		if n, ok := s.(noiseStage); ok {
			v := n.roundNoise(dim, sens)
			if p.objNoise == nil {
				p.objNoise = v
				continue
			}
			for i := range p.objNoise {
				p.objNoise[i] += v[i]
			}
		}
	}
}

// GradHook post-processes one local gradient in place: the clip stage
// bounds its norm, and in objective mode the round's noise vector is
// added. This is the training-time half of the pipeline; Apply is the
// release-time half.
func (p *Pipeline) GradHook(g []float64) {
	if p == nil {
		return
	}
	for _, s := range p.stages {
		if gs, ok := s.(gradStage); ok {
			gs.gradHook(g)
		}
	}
	if p.objNoise != nil {
		for i := range g {
			g[i] += p.objNoise[i]
		}
	}
}

// Apply runs the outbound stack in order over u. sens is the release's DP
// sensitivity Δ̄ from the algorithm's sensitivity rule.
func (p *Pipeline) Apply(u *Update, sens float64) error {
	if p == nil {
		return nil
	}
	for _, s := range p.stages {
		if err := s.Apply(u, sens); err != nil {
			return fmt.Errorf("pipeline: stage %s: %w", s.Name(), err)
		}
	}
	return nil
}

// Invert runs the stack in reverse over a received update, reconstructing
// the dense vector the Aggregator consumes. The incoming encoding must
// match what the stack produces — a client cannot smuggle an encoding the
// server did not configure.
func (p *Pipeline) Invert(u *Update) error {
	if p != nil {
		for i := len(p.stages) - 1; i >= 0; i-- {
			s := p.stages[i]
			if err := s.Invert(u); err != nil {
				return fmt.Errorf("pipeline: invert %s: %w", s.Name(), err)
			}
		}
	}
	if u.Enc != wire.EncDense {
		return fmt.Errorf("pipeline: update arrived %s-encoded but the configured stack produces no such encoding: %w", u.Enc, ErrSpec)
	}
	return nil
}
