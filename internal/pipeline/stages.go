package pipeline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dp"
	"repro/internal/rng"
	"repro/internal/wire"
)

var inf = math.Inf(1)

// ---------------------------------------------------------------------------
// ClipL2 — the training-time privacy stage.

// ClipL2 bounds the L2 norm of every local gradient at C. It is a
// training-time stage: clipping is what makes the DP sensitivity of the
// release finite, so it acts on gradients via GradHook, not on the
// released vector (matching Eq. (6): the release itself is not renormed).
// Apply and Invert are the identity.
type ClipL2 struct {
	C float64
}

// NewClipL2 builds the stage; c must be positive.
func NewClipL2(c float64) (*ClipL2, error) {
	if math.IsNaN(c) || c <= 0 {
		return nil, fmt.Errorf("%w: clip bound must be positive, got %v", ErrSpec, c)
	}
	return &ClipL2{C: c}, nil
}

// Name returns "clip".
func (s *ClipL2) Name() string { return "clip" }

// Spec renders the stage.
func (s *ClipL2) Spec() string { return fmt.Sprintf("clip:%g", s.C) }

// Apply is the identity: clipping happens during training.
func (s *ClipL2) Apply(u *Update, sens float64) error { return nil }

// Invert is the identity.
func (s *ClipL2) Invert(u *Update) error { return nil }

// gradHook clips one gradient in place.
func (s *ClipL2) gradHook(g []float64) { dp.ClipL2(g, s.C) }

// ---------------------------------------------------------------------------
// Noise stages — Laplace and Gaussian output/objective perturbation.

// noiseCore holds everything the DP noise stages share: the mechanism,
// its finite budget, whether an RNG was attached at build time, and the
// per-client objective-perturbation flag. LaplaceNoise and GaussianNoise
// are thin typed wrappers that only differ in Name/Spec rendering.
type noiseCore struct {
	mech      dp.Mechanism
	eps       float64 // finite per-release budget (+Inf = noise disabled)
	hasRNG    bool
	objective bool
}

// apply perturbs the dense release, unless the noise already entered
// through the objective this round. Invert is the identity — noise is
// deliberately not removable; that is the privacy guarantee.
func (n *noiseCore) apply(u *Update, sens float64) error {
	if n.objective {
		return nil
	}
	if u.Enc != wire.EncDense {
		return fmt.Errorf("%w: noise requires a dense update, got %s", ErrSpec, u.Enc)
	}
	if !n.hasRNG && !math.IsInf(n.eps, 1) && sens != 0 {
		return ErrNeedRNG
	}
	n.mech.Perturb(u.Dense, sens)
	return nil
}

func (n *noiseCore) epsilon() float64 {
	if math.IsInf(n.eps, 1) {
		return 0
	}
	return n.eps
}

func (n *noiseCore) roundNoise(dim int, sens float64) []float64 {
	return dp.ObjectiveNoise(n.mech, dim, sens)
}

func (n *noiseCore) setObjective(v bool) { n.objective = v }

// Mechanism exposes the underlying dp mechanism (for accounting).
func (n *noiseCore) Mechanism() dp.Mechanism { return n.mech }

// LaplaceNoise is the ε̄-DP output-perturbation stage of Eq. (6): each
// coordinate of the release receives independent Laplace(0, Δ̄/ε̄) noise.
// In objective mode the noise instead enters the local objective once per
// round.
type LaplaceNoise struct {
	noiseCore
	lap *dp.Laplace
}

// NewLaplaceNoise builds the stage. r may be nil for a server-side
// (inverse-only) pipeline; such a stage cannot Apply.
func NewLaplaceNoise(eps float64, r *rng.RNG) (*LaplaceNoise, error) {
	m, err := dp.NewLaplace(eps, r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return &LaplaceNoise{noiseCore: noiseCore{mech: m, eps: m.Eps, hasRNG: r != nil}, lap: m}, nil
}

// Name returns "laplace".
func (s *LaplaceNoise) Name() string { return "laplace" }

// Spec renders the stage.
func (s *LaplaceNoise) Spec() string { return fmt.Sprintf("laplace:%g", s.lap.Eps) }

// Apply perturbs the dense release (output mode only).
func (s *LaplaceNoise) Apply(u *Update, sens float64) error { return s.apply(u, sens) }

// Invert is the identity: the noise is the privacy guarantee.
func (s *LaplaceNoise) Invert(u *Update) error { return nil }

// GaussianNoise is the (ε, δ)-DP Gaussian analog of LaplaceNoise.
type GaussianNoise struct {
	noiseCore
	gauss *dp.Gaussian
}

// NewGaussianNoise builds the stage; r may be nil for inverse-only use.
func NewGaussianNoise(eps, delta float64, r *rng.RNG) (*GaussianNoise, error) {
	m, err := dp.NewGaussian(eps, delta, r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return &GaussianNoise{noiseCore: noiseCore{mech: m, eps: m.Eps, hasRNG: r != nil}, gauss: m}, nil
}

// Name returns "gaussian".
func (s *GaussianNoise) Name() string { return "gaussian" }

// Spec renders the stage.
func (s *GaussianNoise) Spec() string {
	return fmt.Sprintf("gaussian:%g:%g", s.gauss.Eps, s.gauss.Delta)
}

// Apply perturbs the dense release (output mode only).
func (s *GaussianNoise) Apply(u *Update, sens float64) error { return s.apply(u, sens) }

// Invert is the identity.
func (s *GaussianNoise) Invert(u *Update) error { return nil }

// ---------------------------------------------------------------------------
// TopKSparsify — magnitude sparsification.

// TopKSparsify keeps only the k = ceil(Frac·dim) coordinates of largest
// magnitude and ships them as (index, value) pairs — the classic
// bandwidth/accuracy trade: upload shrinks to roughly 1.5·Frac of the
// dense size (4-byte index + 8-byte value per survivor vs 8 bytes per
// coordinate). Invert scatters the survivors into a zero vector.
// Selection is deterministic; ties break toward the lower index.
type TopKSparsify struct {
	Frac float64

	// order is the selection scratch, reused across rounds. It never
	// escapes Apply, unlike the produced Indices/Values, which ride the
	// wire and must be fresh per release.
	order []int
}

// NewTopKSparsify builds the stage; frac must be in (0,1].
func NewTopKSparsify(frac float64) (*TopKSparsify, error) {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("%w: topk fraction must be in (0,1], got %v", ErrSpec, frac)
	}
	return &TopKSparsify{Frac: frac}, nil
}

// Name returns "topk".
func (s *TopKSparsify) Name() string { return "topk" }

// Spec renders the stage.
func (s *TopKSparsify) Spec() string { return fmt.Sprintf("topk:%g", s.Frac) }

// Apply converts a dense update to the sparse encoding.
func (s *TopKSparsify) Apply(u *Update, sens float64) error {
	if u.Enc != wire.EncDense {
		return fmt.Errorf("%w: topk requires a dense update, got %s", ErrSpec, u.Enc)
	}
	n := len(u.Dense)
	k := int(math.Ceil(s.Frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	order := s.order[:n]
	for i := range order {
		order[i] = i
	}
	v := u.Dense
	sort.Slice(order, func(a, b int) bool {
		ma, mb := math.Abs(v[order[a]]), math.Abs(v[order[b]])
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	keep := order[:k]
	sort.Ints(keep)
	u.Indices = make([]uint32, k)
	u.Values = make([]float64, k)
	for i, idx := range keep {
		u.Indices[i] = uint32(idx)
		u.Values[i] = v[idx]
	}
	u.Enc = wire.EncSparse
	u.Dense = nil
	return nil
}

// Invert scatters the sparse survivors into a zero dense vector.
func (s *TopKSparsify) Invert(u *Update) error {
	if u.Enc != wire.EncSparse {
		return fmt.Errorf("%w: expected sparse encoding, got %s", ErrSpec, u.Enc)
	}
	dense, err := u.Densify(nil)
	if err != nil {
		return err
	}
	u.Enc = wire.EncDense
	u.Dense = dense
	u.Indices, u.Values = nil, nil
	return nil
}

// ---------------------------------------------------------------------------
// StochasticQuantize — affine quantization with stochastic rounding.

// StochasticQuantize maps each coordinate to one of 2^Bits−1 evenly spaced
// levels between the vector's min and max, rounding stochastically so the
// quantizer is unbiased (E[dequant] = value). Codes pack one per byte for
// Bits ≤ 8 and one per two bytes above, so quantize:8 cuts upload ~8×.
// Invert dequantizes deterministically from (Scale, Offset, Codes).
type StochasticQuantize struct {
	Bits uint8
	r    *rng.RNG
}

// NewStochasticQuantize builds the stage; bits must be in [1,16]. r may be
// nil for a server-side (inverse-only) pipeline; such a stage cannot Apply.
func NewStochasticQuantize(bits int, r *rng.RNG) (*StochasticQuantize, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: quantize bits must be in [1,16], got %d", ErrSpec, bits)
	}
	return &StochasticQuantize{Bits: uint8(bits), r: r}, nil
}

// Name returns "quantize".
func (s *StochasticQuantize) Name() string { return "quantize" }

// Spec renders the stage.
func (s *StochasticQuantize) Spec() string { return fmt.Sprintf("quantize:%d", s.Bits) }

// Apply converts a dense update to the quantized encoding.
func (s *StochasticQuantize) Apply(u *Update, sens float64) error {
	if u.Enc != wire.EncDense {
		return fmt.Errorf("%w: quantize requires a dense update, got %s", ErrSpec, u.Enc)
	}
	if s.r == nil {
		return ErrNeedRNG
	}
	v := u.Dense
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, x := range v {
		// A NaN/Inf coordinate means local training diverged. Refuse to
		// quantize it: uint16(NaN) is implementation-defined, so encoding
		// would silently launder the divergence into plausible values.
		// The dense path ships such vectors visibly; surface an error here.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: quantize requires finite values, coordinate %d is %v", ErrSpec, i, x)
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) { // empty vector: degenerate to zeros
		lo = 0
	}
	levels := float64(uint32(1)<<s.Bits - 1)
	scale := 0.0
	if hi > lo {
		scale = (hi - lo) / levels
	}
	width := 1
	if s.Bits > 8 {
		width = 2
	}
	codes := make([]byte, width*len(v))
	for i, x := range v {
		var code uint16
		if scale > 0 {
			q := (x - lo) / scale
			fl := math.Floor(q)
			frac := q - fl
			c := fl
			// Stochastic rounding: round up with probability frac, so the
			// quantizer is unbiased.
			if s.r.Float64() < frac {
				c++
			}
			if c < 0 {
				c = 0
			}
			if c > levels {
				c = levels
			}
			code = uint16(c)
		}
		if width == 1 {
			codes[i] = byte(code)
		} else {
			codes[2*i] = byte(code)
			codes[2*i+1] = byte(code >> 8)
		}
	}
	u.Enc = wire.EncQuant
	u.Scale = scale
	u.Offset = lo
	u.Bits = s.Bits
	u.Codes = codes
	u.Dense = nil
	return nil
}

// Invert dequantizes back to a dense vector.
func (s *StochasticQuantize) Invert(u *Update) error {
	if u.Enc != wire.EncQuant {
		return fmt.Errorf("%w: expected quant encoding, got %s", ErrSpec, u.Enc)
	}
	if u.Bits != s.Bits {
		return fmt.Errorf("%w: quantized at %d bits, stack configured for %d", ErrSpec, u.Bits, s.Bits)
	}
	dense, err := u.Densify(nil)
	if err != nil {
		return err
	}
	u.Enc = wire.EncDense
	u.Dense = dense
	u.Scale, u.Offset, u.Bits, u.Codes = 0, 0, 0, nil
	return nil
}

// ---------------------------------------------------------------------------
// Float16Cast — half-precision casting.

// Float16Cast ships each coordinate as an IEEE-754 binary16 — a 4×
// reduction with ~3 decimal digits of precision, the cheapest lossy
// compressor. Deterministic (round-to-nearest-even) in both directions.
type Float16Cast struct{}

// NewFloat16Cast builds the stage.
func NewFloat16Cast() (*Float16Cast, error) { return &Float16Cast{}, nil }

// Name returns "f16".
func (s *Float16Cast) Name() string { return "f16" }

// Spec renders the stage.
func (s *Float16Cast) Spec() string { return "f16" }

// maxFloat16 is the largest finite binary16 value.
const maxFloat16 = 65504

// EncodeFloat16 packs v as little-endian half floats into codes, reusing
// its capacity when it suffices, and returns the (possibly grown) buffer.
// Values binary16 cannot represent finitely — NaN, Inf, or magnitude
// above 65504 — are rejected rather than saturated: shipping a diverged
// vector as plausible-looking (or infinite) codes would launder the
// failure into the aggregate instead of surfacing it.
func EncodeFloat16(v []float64, codes []byte) ([]byte, error) {
	need := 2 * len(v)
	if cap(codes) < need {
		codes = make([]byte, need)
	}
	codes = codes[:need]
	for i, x := range v {
		if math.IsNaN(x) || math.Abs(x) > maxFloat16 {
			return codes, fmt.Errorf("%w: f16 cannot represent coordinate %d = %v (max magnitude %v)", ErrSpec, i, x, float64(maxFloat16))
		}
		h := wire.Float16FromFloat64(x)
		codes[2*i] = byte(h)
		codes[2*i+1] = byte(h >> 8)
	}
	return codes, nil
}

// Apply converts a dense update to packed half floats; see EncodeFloat16
// for the rejection rule on unrepresentable values.
func (s *Float16Cast) Apply(u *Update, sens float64) error {
	if u.Enc != wire.EncDense {
		return fmt.Errorf("%w: f16 requires a dense update, got %s", ErrSpec, u.Enc)
	}
	codes, err := EncodeFloat16(u.Dense, nil)
	if err != nil {
		return err
	}
	u.Enc = wire.EncFloat16
	u.Codes = codes
	u.Dense = nil
	return nil
}

// Invert expands the half floats back to float64.
func (s *Float16Cast) Invert(u *Update) error {
	if u.Enc != wire.EncFloat16 {
		return fmt.Errorf("%w: expected float16 encoding, got %s", ErrSpec, u.Enc)
	}
	dense, err := u.Densify(nil)
	if err != nil {
		return err
	}
	u.Enc = wire.EncDense
	u.Dense = dense
	u.Codes = nil
	return nil
}
