package pipeline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/wire"
)

func mustParse(t *testing.T, spec string) Specs {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return s
}

func mustBuild(t *testing.T, spec string, r *rng.RNG) *Pipeline {
	t.Helper()
	p, err := mustParse(t, spec).Build(r)
	if err != nil {
		t.Fatalf("Build(%q): %v", spec, err)
	}
	return p
}

func TestParseValidSpecs(t *testing.T) {
	for spec, wantStages := range map[string]int{
		"":                            0,
		"clip:1":                      1,
		"clip:1.0,laplace:0.5":        2,
		"clip:2,gaussian:1:1e-6":      2,
		"clip:1,laplace:0.5,topk:0.1": 3,
		"quantize:8":                  1,
		"quantize":                    1,
		"f16":                         1,
		" clip:1 , topk:0.5 ":         2,
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if len(s) != wantStages {
			t.Fatalf("Parse(%q): %d stages, want %d", spec, len(s), wantStages)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"unknown:1",            // unknown stage
		"clip",                 // missing required arg
		"clip:x",               // non-numeric arg
		"clip:0",               // non-positive bound
		"clip:-1",              // negative bound
		"laplace:0.5",          // noise without clip
		"topk:0.1,laplace:0.5", // noise after compression
		"clip:1,clip:2",        // duplicate clip
		"topk:0.1,f16",         // two compression stages
		"topk:0",               // fraction out of range
		"topk:1.5",             // fraction out of range
		"quantize:0",           // bits out of range
		"quantize:17",          // bits out of range
		"quantize:3.5",         // non-integer bits
		"gaussian:1:2",         // delta out of range
		"clip:1,,topk:0.1",     // empty stage
		"f16:2",                // arity violation
	} {
		if _, err := Parse(spec); !errors.Is(err, ErrSpec) {
			t.Fatalf("Parse(%q): want ErrSpec, got %v", spec, err)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	in := "clip:1.5,laplace:0.5,topk:0.1"
	s := mustParse(t, in)
	if got := s.String(); got != in {
		t.Fatalf("Specs.String() = %q, want %q", got, in)
	}
	p := mustBuild(t, in, rng.New(1))
	if got := p.String(); got != in {
		t.Fatalf("Pipeline.String() = %q, want %q", got, in)
	}
}

func TestClipBoundAndEpsilon(t *testing.T) {
	p := mustBuild(t, "clip:2.5,laplace:0.5", rng.New(1))
	if p.ClipBound() != 2.5 {
		t.Fatalf("ClipBound %v, want 2.5", p.ClipBound())
	}
	if p.Epsilon() != 0.5 {
		t.Fatalf("Epsilon %v, want 0.5", p.Epsilon())
	}
	empty := mustBuild(t, "", nil)
	if !empty.Empty() || empty.ClipBound() != 0 || !math.IsInf(empty.Epsilon(), 1) {
		t.Fatal("empty pipeline must report no clip and +Inf epsilon")
	}
	two := mustBuild(t, "clip:1,laplace:0.5,gaussian:0.25", rng.New(2))
	if two.Epsilon() != 0.75 {
		t.Fatalf("sequential composition epsilon %v, want 0.75", two.Epsilon())
	}
}

func TestGradHookClips(t *testing.T) {
	p := mustBuild(t, "clip:1", nil)
	g := []float64{3, 4} // norm 5
	p.GradHook(g)
	if n := math.Hypot(g[0], g[1]); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-hook norm %v, want 1", n)
	}
}

func TestEmptyPipelineIsIdentity(t *testing.T) {
	p := mustBuild(t, "", nil)
	v := []float64{1, -2, 3}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 1); err != nil {
		t.Fatal(err)
	}
	if u.Enc != wire.EncDense {
		t.Fatalf("identity changed encoding to %v", u.Enc)
	}
	for i := range v {
		if u.Dense[i] != v[i] {
			t.Fatal("identity modified values")
		}
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
}

func TestTopKRoundTrip(t *testing.T) {
	p := mustBuild(t, "topk:0.4", nil)
	v := []float64{0.1, -5, 0.2, 3, -0.05, 0.5, 0, 2, -1, 0.3}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if u.Enc != wire.EncSparse {
		t.Fatalf("encoding %v, want sparse", u.Enc)
	}
	if len(u.Values) != 4 { // ceil(0.4·10)
		t.Fatalf("kept %d values, want 4", len(u.Values))
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
	// The four largest magnitudes survive (−5, 3, 2, −1); the rest are 0.
	want := []float64{0, -5, 0, 3, 0, 0, 0, 2, -1, 0}
	for i := range want {
		if u.Dense[i] != want[i] {
			t.Fatalf("coordinate %d: %v, want %v", i, u.Dense[i], want[i])
		}
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	p := mustBuild(t, "topk:0.5", nil)
	v := []float64{1, -1, 1, -1}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if u.Indices[0] != 0 || u.Indices[1] != 1 {
		t.Fatalf("tie-break kept indices %v, want the lowest [0 1]", u.Indices)
	}
}

func TestQuantizeRoundTripAndUnbiasedness(t *testing.T) {
	r := rng.New(7)
	p := mustBuild(t, "quantize:8", r)
	const n = 4000
	src := rng.New(8)
	v := make([]float64, n)
	for i := range v {
		v[i] = src.Normal(0, 1)
	}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if u.Enc != wire.EncQuant || u.Bits != 8 || len(u.Codes) != n {
		t.Fatalf("quant payload wrong: enc=%v bits=%d codes=%d", u.Enc, u.Bits, len(u.Codes))
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
	// Per-coordinate error is bounded by one quantization step, and
	// stochastic rounding keeps the mean error near zero.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	step := (hi - lo) / 255
	meanErr := 0.0
	for i := range v {
		e := u.Dense[i] - v[i]
		if math.Abs(e) > step+1e-12 {
			t.Fatalf("coordinate %d error %v exceeds one step %v", i, e, step)
		}
		meanErr += e
	}
	meanErr /= n
	if math.Abs(meanErr) > step/4 {
		t.Fatalf("mean quantization error %v not near zero (step %v); stochastic rounding should be unbiased", meanErr, step)
	}
}

func TestQuantizeSixteenBitUsesTwoByteCodes(t *testing.T) {
	p := mustBuild(t, "quantize:16", rng.New(3))
	v := []float64{0, 0.25, 0.5, 0.75, 1}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if len(u.Codes) != 2*len(v) {
		t.Fatalf("16-bit codes use %d bytes, want %d", len(u.Codes), 2*len(v))
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Abs(u.Dense[i]-v[i]) > 1.0/65535+1e-9 {
			t.Fatalf("16-bit round trip error at %d: %v vs %v", i, u.Dense[i], v[i])
		}
	}
}

func TestQuantizeConstantVector(t *testing.T) {
	p := mustBuild(t, "quantize:8", rng.New(3))
	v := []float64{2.5, 2.5, 2.5}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if u.Dense[i] != 2.5 {
			t.Fatalf("constant vector reconstructed to %v", u.Dense[i])
		}
	}
}

func TestFloat16RoundTrip(t *testing.T) {
	p := mustBuild(t, "f16", nil)
	v := []float64{0, 1, -1, 0.5, 65504, -65504, 1e-8, math.Pi}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 0); err != nil {
		t.Fatal(err)
	}
	if u.Enc != wire.EncFloat16 || len(u.Codes) != 2*len(v) {
		t.Fatalf("f16 payload wrong: enc=%v codes=%d", u.Enc, len(u.Codes))
	}
	if err := p.Invert(u); err != nil {
		t.Fatal(err)
	}
	// Exactly representable values survive bit for bit; the rest within
	// half-precision relative error (2^-11).
	for i, want := range []float64{0, 1, -1, 0.5, 65504, -65504} {
		if u.Dense[i] != want {
			t.Fatalf("exact value %v reconstructed as %v", want, u.Dense[i])
		}
	}
	if rel := math.Abs(u.Dense[7]-math.Pi) / math.Pi; rel > math.Pow(2, -11) {
		t.Fatalf("pi relative error %v exceeds 2^-11", rel)
	}
}

func TestFloat16Specials(t *testing.T) {
	cases := []struct{ in, out float64 }{
		{math.Inf(1), math.Inf(1)},
		{math.Inf(-1), math.Inf(-1)},
		{1e300, math.Inf(1)}, // overflow saturates
		{1e-300, 0},          // underflow flushes
		{6.0e-8, 6.0e-8},     // subnormal half survives approximately
	}
	for _, c := range cases {
		got := wire.Float16ToFloat64(wire.Float16FromFloat64(c.in))
		if math.IsInf(c.out, 0) || c.out == 0 {
			if got != c.out {
				t.Fatalf("f16(%v) -> %v, want %v", c.in, got, c.out)
			}
			continue
		}
		if math.Abs(got-c.out)/math.Abs(c.out) > 0.01 {
			t.Fatalf("f16(%v) -> %v, want ≈%v", c.in, got, c.out)
		}
	}
	if !math.IsNaN(wire.Float16ToFloat64(wire.Float16FromFloat64(math.NaN()))) {
		t.Fatal("NaN must survive the f16 round trip")
	}
}

func TestNoisePerturbsAndObjectiveModeSkipsRelease(t *testing.T) {
	p := mustBuild(t, "clip:1,laplace:0.5", rng.New(5))
	v := []float64{1, 2, 3, 4}
	u := NewDense(append([]float64(nil), v...))
	if err := p.Apply(u, 1.0); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range v {
		if u.Dense[i] != v[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("output perturbation left the release untouched")
	}

	// Objective mode: the release is untouched, the round noise is drawn.
	po := mustBuild(t, "clip:1,laplace:0.5", rng.New(5))
	po.SetObjective(true)
	po.BeginRound(4, 1.0)
	u2 := NewDense(append([]float64(nil), v...))
	if err := po.Apply(u2, 1.0); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if u2.Dense[i] != v[i] {
			t.Fatal("objective mode must not perturb the release")
		}
	}
	g := make([]float64, 4)
	po.GradHook(g)
	nonzero := 0
	for _, x := range g {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("objective mode must add round noise to gradients")
	}
}

func TestServerBuildInvertsButRefusesApply(t *testing.T) {
	// Build(nil) is the server-side form: randomized stages refuse Apply.
	srv := mustBuild(t, "clip:1,laplace:0.5,topk:0.5", nil)
	u := NewDense([]float64{1, 2, 3, 4})
	if err := srv.Apply(u, 1.0); !errors.Is(err, ErrNeedRNG) {
		t.Fatalf("server-side Apply: want ErrNeedRNG, got %v", err)
	}

	cli := mustBuild(t, "clip:1,laplace:0.5,topk:0.5", rng.New(9))
	u2 := NewDense([]float64{1, 2, 3, 4})
	if err := cli.Apply(u2, 1.0); err != nil {
		t.Fatal(err)
	}
	if u2.Enc != wire.EncSparse {
		t.Fatalf("client stack produced %v, want sparse", u2.Enc)
	}
	if err := srv.Invert(u2); err != nil {
		t.Fatal(err)
	}
	if u2.Enc != wire.EncDense || len(u2.Dense) != 4 {
		t.Fatal("server inversion did not reconstruct a dense vector")
	}
}

func TestInvertRejectsUnconfiguredEncoding(t *testing.T) {
	// A dense-only stack must reject a sparse payload (and vice versa): a
	// client cannot smuggle an encoding the server did not configure.
	plain := mustBuild(t, "clip:1", nil)
	sparse := &Update{Enc: wire.EncSparse, Dim: 3, Indices: []uint32{1}, Values: []float64{2}}
	if err := plain.Invert(sparse); !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for unconfigured sparse payload, got %v", err)
	}
	topk := mustBuild(t, "topk:0.5", nil)
	dense := NewDense([]float64{1, 2})
	if err := topk.Invert(dense); !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for dense payload on a topk stack, got %v", err)
	}
	quant := mustBuild(t, "quantize:8", nil)
	if err := quant.Invert(&Update{Enc: wire.EncSparse, Dim: 3, Indices: []uint32{0}, Values: []float64{1}}); !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for sparse payload on a quant stack, got %v", err)
	}
}

func TestBuildSplitsRNGPerRandomizedStage(t *testing.T) {
	// Two identical specs built from identically seeded RNGs must produce
	// identical noise streams (reproducibility), and the build must not
	// consume splits for deterministic stages.
	r1, r2 := rng.New(42), rng.New(42)
	p1 := mustBuild(t, "clip:1,laplace:1", r1)
	p2 := mustBuild(t, "clip:1,laplace:1", r2)
	u1 := NewDense([]float64{0, 0, 0})
	u2 := NewDense([]float64{0, 0, 0})
	if err := p1.Apply(u1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p2.Apply(u2, 1); err != nil {
		t.Fatal(err)
	}
	for i := range u1.Dense {
		if u1.Dense[i] != u2.Dense[i] {
			t.Fatal("identically seeded pipelines diverged")
		}
	}
	// Deterministic stacks leave the RNG untouched.
	r3 := rng.New(7)
	before := *r3
	mustBuild(t, "clip:1,topk:0.1", r3)
	if *r3 != before {
		t.Fatal("building a deterministic stack consumed RNG state")
	}
}

func TestFloat16RejectsUnrepresentableValues(t *testing.T) {
	p := mustBuild(t, "f16", nil)
	for _, bad := range [][]float64{
		{1, math.NaN()},
		{70000}, // above the largest finite half (65504)
		{-70000},
	} {
		u := NewDense(append([]float64(nil), bad...))
		if err := p.Apply(u, 0); !errors.Is(err, ErrSpec) {
			t.Fatalf("f16 accepted unrepresentable %v (err %v)", bad, err)
		}
	}
	// Inf is above maxFloat16 in magnitude and must be rejected too.
	u := NewDense([]float64{math.Inf(1)})
	if err := p.Apply(u, 0); !errors.Is(err, ErrSpec) {
		t.Fatalf("f16 accepted Inf (err %v)", err)
	}
}
