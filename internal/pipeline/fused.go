package pipeline

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// Fused invert+fold.
//
// The server-side two-pass path inverts each payload to a dense vector
// (one full write + read of dim·8 bytes per update) and then folds the
// dense vector into the accumulator. For the deterministic decode-only
// compressions — f16 and affine quantization — the inversion is a pure
// per-coordinate map, so it can run inside the fold kernel's inner loop
// instead: the payload's codes stream through registers straight into
// the accumulator and the densified intermediate never exists.
//
// Fusing the whole stack this way is sound because of the pipeline
// ordering rules: at most one compression stage, always last, and every
// non-compression stage (clip, noise) inverts to the identity. The
// stack's inverse therefore IS the compression stage's decode. Top-k
// sparsification is excluded — its inverse scatters into a zero vector,
// which is not a per-coordinate map over a contiguous code stream.

// FusedStage is implemented by compression stages whose Invert is a pure
// per-coordinate decode, allowing the server to fold the still-encoded
// payload directly into the aggregation accumulator.
type FusedStage interface {
	Stage
	// FusedEnc is the wire encoding the stage's Apply produces — the only
	// encoding FoldSrc accepts.
	FusedEnc() wire.Encoding
	// FoldSrc views a received update as a fold source decoding on the
	// fly. The update must carry FusedEnc and be Validate-clean; the
	// returned source aliases the update's code buffer. The fold
	// coefficient (FoldSrc.W) is left zero for the caller to set.
	FoldSrc(u *Update) (tensor.FoldSrc, error)
}

// Fused returns the pipeline's compression stage if the whole server-side
// inverse can be fused into the fold — i.e. the stack compresses with a
// stage implementing FusedStage. A pipeline with no compression stage
// returns false: its inverse is the identity and the dense payload
// already folds without any intermediate copy.
func (p *Pipeline) Fused() (FusedStage, bool) {
	if p == nil {
		return nil, false
	}
	for _, s := range p.stages {
		if fs, ok := s.(FusedStage); ok {
			return fs, true
		}
	}
	return nil, false
}

// FusedEnc returns the half-float encoding.
func (s *Float16Cast) FusedEnc() wire.Encoding { return wire.EncFloat16 }

// FoldSrc views a received f16 update as a fold source.
func (s *Float16Cast) FoldSrc(u *Update) (tensor.FoldSrc, error) {
	if u.Enc != wire.EncFloat16 {
		return tensor.FoldSrc{}, fmt.Errorf("%w: expected float16 encoding, got %s", ErrSpec, u.Enc)
	}
	return tensor.FoldSrc{Kind: tensor.SrcF16, Codes: u.Codes}, nil
}

// FusedEnc returns the quantized encoding.
func (s *StochasticQuantize) FusedEnc() wire.Encoding { return wire.EncQuant }

// FoldSrc views a received quantized update as a fold source. The
// update's bit width must match the stack's, mirroring Invert.
func (s *StochasticQuantize) FoldSrc(u *Update) (tensor.FoldSrc, error) {
	if u.Enc != wire.EncQuant {
		return tensor.FoldSrc{}, fmt.Errorf("%w: expected quant encoding, got %s", ErrSpec, u.Enc)
	}
	if u.Bits != s.Bits {
		return tensor.FoldSrc{}, fmt.Errorf("%w: quantized at %d bits, stack configured for %d", ErrSpec, u.Bits, s.Bits)
	}
	kind := tensor.SrcQuant8
	if s.Bits > 8 {
		kind = tensor.SrcQuant16
	}
	return tensor.FoldSrc{Kind: kind, Codes: u.Codes, Scale: u.Scale, Offset: u.Offset}, nil
}

// EncodeFloat16From32 is EncodeFloat16 for a float32 source vector. The
// two produce identical codes for any v32 and its float64 widening,
// because Float16FromFloat64 rounds through float32 first — this is what
// lets the f32 aggregation path encode the downlink without a widening
// sweep.
func EncodeFloat16From32(v []float32, codes []byte) ([]byte, error) {
	need := 2 * len(v)
	if cap(codes) < need {
		codes = make([]byte, need)
	}
	codes = codes[:need]
	for i, x := range v {
		if x != x || x > maxFloat16 || x < -maxFloat16 {
			return codes, fmt.Errorf("%w: f16 cannot represent coordinate %d = %v (max magnitude %v)", ErrSpec, i, x, float64(maxFloat16))
		}
		h := wire.Float16FromFloat32(x)
		codes[2*i] = byte(h)
		codes[2*i+1] = byte(h >> 8)
	}
	return codes, nil
}
