package core

import (
	"fmt"

	"repro/internal/journal"
	"repro/internal/wire"
)

// PendingRound is a round the crashed server had opened but not committed.
// For a barrier scheduler it is the dispatched round: Cohort is who got the
// model and Admitted the updates whose dense primals made it into the
// journal before the crash (possibly none, possibly all). For the buffered
// scheduler it is an admitted-but-uncommitted release batch.
type PendingRound struct {
	Round  int
	Cohort []int
	// Admitted holds the journaled admits reconstructed as decoded local
	// updates, in journal (= pre-crash batch) order.
	Admitted []*wire.LocalUpdate
}

// AdmittedSet returns the admitted client IDs for dedup: a client in this
// set must not be re-gathered or re-journaled for this round.
func (p *PendingRound) AdmittedSet() map[int]bool {
	set := make(map[int]bool, len(p.Admitted))
	for _, u := range p.Admitted {
		set[int(u.ClientID)] = true
	}
	return set
}

// RecoveredServer is the replayed state of a journaled server: everything
// a restarted process needs to resume the run where the crashed one died.
type RecoveredServer struct {
	// Weights and Version are the last committed global model; Weights is
	// nil when the journal held no commit (resume from w0).
	Weights []float64
	Version int
	// NextRound is the first round not yet committed.
	NextRound int
	// Pending, when non-nil, is the in-flight round to complete before
	// NextRound advances past it.
	Pending *PendingRound
	// Inflight counts open dispatch obligations (buffered scheduler).
	Inflight int
	// Replayed counts the WAL records replayed.
	Replayed int
	// Fresh reports an empty journal: nothing to recover, run from scratch.
	Fresh bool

	mem *membership
}

// Apply loads the recovered model into a freshly constructed aggregator.
// A fresh recovery (no commits journaled) leaves the aggregator at w0.
func (r *RecoveredServer) Apply(agg Aggregator) error {
	if r.Weights == nil {
		return nil
	}
	return restoreAggregator(agg, r.Weights, r.Version)
}

// RecoverServer replays a journal's checkpoint + WAL tail into the state
// Run (or a serving loop) resumes from. barrier selects the scheduler
// family the journal was written under — barrier rounds reopen from their
// RoundStart record, buffered releases from their admitted batch. Replay
// is pure: no transport, no clients, no aggregation arithmetic — committed
// weights are restored from the last commit record, not recomputed.
func RecoverServer(rec *journal.Recovered, numClients int, barrier bool) (*RecoveredServer, error) {
	rs := &RecoveredServer{NextRound: 1, mem: newMembership(numClients)}
	if rec == nil || rec.Empty() {
		rs.Fresh = true
		return rs, nil
	}
	if cp := rec.Checkpoint; cp != nil {
		if len(cp.Weights) > 0 {
			rs.Weights = append([]float64(nil), cp.Weights...)
		}
		rs.Version = int(cp.Version)
		rs.NextRound = int(cp.NextRound)
		rs.Inflight = int(cp.Inflight)
		if err := rs.mem.restore(cp); err != nil {
			return nil, err
		}
	}
	// open is the barrier round currently dispatched but uncommitted;
	// admits collects the buffered path's uncommitted release batch.
	var open *PendingRound
	var admits []*wire.LocalUpdate
	admitRound := 0
	for _, r := range rec.Records {
		switch r.Op {
		case wire.JournalRoundStart:
			if barrier {
				open = &PendingRound{Round: int(r.Round)}
				for _, c := range r.Cohort {
					open.Cohort = append(open.Cohort, int(c))
				}
			} else {
				rs.Inflight += len(r.Cohort)
			}
		case wire.JournalAdmit:
			u := &wire.LocalUpdate{
				ClientID:    r.ClientID,
				NumSamples:  r.NumSamples,
				BaseVersion: r.BaseVersion,
				Primal:      r.Primal,
				InCohort:    true,
			}
			if barrier {
				if open == nil || open.Round != int(r.Round) {
					return nil, fmt.Errorf("%w: admit for round %d outside an open round", journal.ErrCorrupt, r.Round)
				}
				open.Admitted = append(open.Admitted, u)
			} else {
				if admitRound != 0 && admitRound != int(r.Round) {
					return nil, fmt.Errorf("%w: admits for releases %d and %d both uncommitted", journal.ErrCorrupt, admitRound, r.Round)
				}
				admitRound = int(r.Round)
				admits = append(admits, u)
				rs.Inflight--
			}
		case wire.JournalLedger:
			m := rs.mem
			c := int(r.ClientID)
			if c < 0 || c >= numClients {
				return nil, fmt.Errorf("%w: ledger record for client %d of %d", journal.ErrCorrupt, c, numClients)
			}
			switch r.LedgerOp {
			case wire.LedgerStrike:
				m.strike(c, int(r.Round))
				if r.Param == 1 {
					rs.Inflight--
				}
			case wire.LedgerDepart:
				m.depart(c, int(r.Param))
				if !barrier {
					// A buffered goodbye only ever arrives through a gathered
					// batch, so it always settles a dispatch obligation.
					rs.Inflight--
				}
			case wire.LedgerReport:
				m.reported(c)
			case wire.LedgerRejoin:
				m.rejoin(c)
			}
		case wire.JournalCommit:
			rs.Weights = append(rs.Weights[:0], r.Weights...)
			rs.Version = int(r.Version)
			rs.NextRound = int(r.Round) + 1
			open = nil
			admits, admitRound = nil, 0
		}
	}
	if barrier {
		if open != nil && open.Round >= rs.NextRound {
			rs.Pending = open
		}
	} else if len(admits) > 0 {
		rs.Pending = &PendingRound{Round: admitRound, Admitted: admits}
	}
	if rs.Inflight < 0 {
		return nil, fmt.Errorf("%w: replay yields %d in-flight obligations", journal.ErrCorrupt, rs.Inflight)
	}
	rs.Replayed = len(rec.Records)
	return rs, nil
}
