package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// parallelTestFed builds a small IID MNIST federation for the run-level
// determinism sweep.
func parallelTestFed(clients, trainN, testN int, seed uint64) *dataset.Federated {
	train, test := dataset.MNIST(dataset.SynthConfig{Train: trainN, Test: testN, Seed: seed})
	return &dataset.Federated{
		Clients: dataset.PartitionIID(train, clients, rng.New(seed+1)),
		Test:    test,
	}
}

func parallelTestFactory(seed uint64) nn.Factory {
	return func() nn.Module { return nn.NewMLP(28*28, []int{16}, 10, rng.New(seed)) }
}

// testVec builds a deterministic pseudorandom vector.
func testVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	r.FillNormal(v, 0, 1)
	return v
}

// testBatch builds a full-federation batch of dense updates.
func testBatch(clients, dim int, seed uint64) []*wire.LocalUpdate {
	batch := make([]*wire.LocalUpdate, clients)
	for i := range batch {
		batch[i] = &wire.LocalUpdate{
			ClientID:   uint32(i),
			NumSamples: uint64(16 + 7*i),
			Primal:     testVec(dim, seed+uint64(i)),
			Dual:       testVec(dim, seed+100+uint64(i)),
		}
	}
	return batch
}

// aggWidths is the satellite's required sweep.
var aggWidths = []int{1, 2, 8}

// TestShardedAggregationBitIdentical: for every scheduler's aggregator
// (FedAvg behind syncall and sampled, the staleness-weighted rule behind
// buffered) and every algorithm server, AggWorkers ∈ {1,2,8} produce
// byte-for-byte identical weights over multiple rounds. The dimension is
// chosen well above minShard so the parallel path really shards.
func TestShardedAggregationBitIdentical(t *testing.T) {
	const (
		clients = 3
		dim     = 3*minShard + 17 // odd tail exercises the last partial chunk
		rounds  = 4
	)
	type mk func(workers int) Aggregator

	cases := map[string]mk{
		"syncall/fedavg": func(workers int) Aggregator {
			cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedSyncAll, AggWorkers: workers}.WithDefaults()
			a, err := NewAggregator(cfg, testVec(dim, 1), clients)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"sampled/fedavg": func(workers int) Aggregator {
			cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedSampled, CohortFraction: 0.5, AggWorkers: workers}.WithDefaults()
			a, err := NewAggregator(cfg, testVec(dim, 1), clients)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"buffered/staleness": func(workers int) Aggregator {
			cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: 2, AggWorkers: workers}.WithDefaults()
			a, err := NewAggregator(cfg, testVec(dim, 1), clients)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"iceadmm": func(workers int) Aggregator {
			s := NewICEADMMServer(testVec(dim, 1), clients, 2)
			s.Workers = workers
			return s
		},
		"iiadmm": func(workers int) Aggregator {
			s := NewIIADMMServer(testVec(dim, 1), clients, 2)
			s.Workers = workers
			return s
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			var ref []float64
			for _, workers := range aggWidths {
				agg := build(workers)
				for round := 0; round < rounds; round++ {
					if err := agg.Aggregate(testBatch(clients, dim, uint64(50+round))); err != nil {
						t.Fatalf("workers=%d round %d: %v", workers, round, err)
					}
				}
				got := agg.Weights()
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
						t.Fatalf("workers=%d: weight[%d] = %x, serial %x — not bit-identical",
							workers, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
					}
				}
			}
		})
	}
}

// TestRunBitIdenticalAcrossAggWorkers runs full barrier-scheduled
// federations (transport, training, pipeline, aggregation) at each width
// and requires identical per-round losses. Buffered runs are excluded:
// their arrival order is scheduling-dependent, so even two serial runs
// are not comparable round-by-round.
func TestRunBitIdenticalAcrossAggWorkers(t *testing.T) {
	fed := parallelTestFed(4, 256, 64, 5)
	for _, sched := range []string{SchedSyncAll, SchedSampled} {
		t.Run(sched, func(t *testing.T) {
			var ref []float64
			for _, workers := range aggWidths {
				cfg := Config{
					Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32,
					Seed: 5, Scheduler: sched, AggWorkers: workers,
				}
				if sched == SchedSampled {
					cfg.CohortFraction = 0.5
				}
				res, err := Run(cfg, fed, parallelTestFactory(5), RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				losses := make([]float64, len(res.Rounds))
				for i, r := range res.Rounds {
					losses[i] = r.TestLoss
				}
				if ref == nil {
					ref = losses
					continue
				}
				for i := range ref {
					if math.Float64bits(ref[i]) != math.Float64bits(losses[i]) {
						t.Fatalf("workers=%d: round %d loss %v, serial %v", workers, i+1, losses[i], ref[i])
					}
				}
			}
		})
	}
}

// TestDecodeUpdatesParallelMatchesSerial: the fan-out decode produces the
// same dense primals and, on a poisoned batch, the same (lowest-index)
// error as the serial path at every width.
func TestDecodeUpdatesParallelMatchesSerial(t *testing.T) {
	const dim = 512
	cfg := Config{Algorithm: AlgoFedAvg, Pipeline: "clip:1,topk:0.25"}.WithDefaults()
	mkBatch := func() []*wire.LocalUpdate {
		master := rng.New(9)
		batch := make([]*wire.LocalUpdate, 6)
		for i := range batch {
			pipe, err := NewClientPipeline(cfg, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			u := &wire.LocalUpdate{ClientID: uint32(i), NumSamples: 8}
			upd := wire.Payload{Enc: wire.EncDense, Dim: dim, Dense: testVec(dim, uint64(70+i))}
			if err := pipe.Apply(&upd, 0); err != nil {
				t.Fatal(err)
			}
			u.PrimalP = &upd
			batch[i] = u
		}
		return batch
	}

	var ref []*wire.LocalUpdate
	for _, workers := range aggWidths {
		inv, err := NewServerPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := mkBatch()
		if err := DecodeUpdates(batch, inv, dim, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = batch
			continue
		}
		for i, u := range batch {
			if u.PrimalP != nil || len(u.Primal) != dim {
				t.Fatalf("workers=%d: update %d not densified", workers, i)
			}
			for j := range u.Primal {
				if math.Float64bits(u.Primal[j]) != math.Float64bits(ref[i].Primal[j]) {
					t.Fatalf("workers=%d: update %d coord %d differs", workers, i, j)
				}
			}
		}
	}

	// Poison two updates; every width must report the lowest-index one.
	var refErr string
	for _, workers := range aggWidths {
		inv, err := NewServerPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := mkBatch()
		batch[2].PrimalP = &wire.Payload{Enc: wire.EncQuant, Dim: dim, Bits: 8, Codes: make([]byte, dim)}
		batch[4].PrimalP = &wire.Payload{Enc: wire.EncFloat16, Dim: dim, Codes: make([]byte, 2*dim)}
		err = DecodeUpdates(batch, inv, dim, workers)
		if err == nil {
			t.Fatalf("workers=%d: poisoned batch decoded", workers)
		}
		if refErr == "" {
			refErr = err.Error()
		} else if err.Error() != refErr {
			t.Fatalf("workers=%d: error %q, serial %q", workers, err, refErr)
		}
	}
}

// TestShardedFoldZeroAllocs pins the steady-state allocation count of the
// sharded hot path at zero — for the buffered fold and the FedAvg batch
// average, at serial and parallel widths. The op closures are pre-bound
// at construction and the pool workers are long-lived, so an aggregation
// costs arithmetic, not garbage.
func TestShardedFoldZeroAllocs(t *testing.T) {
	const dim = 8 * minShard
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("buffered/workers=%d", workers), func(t *testing.T) {
			agg, err := NewBufferedAggregator(testVec(dim, 1), 0.5, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			agg.Workers = workers
			batch := []*wire.LocalUpdate{{NumSamples: 8, Primal: testVec(dim, 2)}}
			agg.Aggregate(batch) // warm-up: starts pool workers
			if avg := testing.AllocsPerRun(20, func() {
				if err := agg.Aggregate(batch); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("buffered fold allocates %.1f objects/op at %d workers, want 0", avg, workers)
			}
		})
		t.Run(fmt.Sprintf("fedavg/workers=%d", workers), func(t *testing.T) {
			srv := NewFedAvgServer(testVec(dim, 1), 4)
			srv.Workers = workers
			batch := testBatch(4, dim, 30)
			srv.Aggregate(batch)
			if avg := testing.AllocsPerRun(20, func() {
				if err := srv.Aggregate(batch); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("fedavg aggregate allocates %.1f objects/op at %d workers, want 0", avg, workers)
			}
		})
	}
}

// TestWeightsIntoReusesCapacity: WeightsInto must never reallocate when
// the destination's capacity suffices — including when its *length*
// differs, the trap the flatten helpers used to fall into.
func TestWeightsIntoReusesCapacity(t *testing.T) {
	const dim = 257
	aggs := map[string]Aggregator{
		"fedavg":   NewFedAvgServer(testVec(dim, 1), 2),
		"iceadmm":  NewICEADMMServer(testVec(dim, 1), 2, 2),
		"iiadmm":   NewIIADMMServer(testVec(dim, 1), 2, 2),
		"buffered": mustBuffered(t, testVec(dim, 1)),
	}
	for name, agg := range aggs {
		for _, length := range []int{0, 3, dim} {
			dst := make([]float64, length, dim)
			got := agg.WeightsInto(dst)
			if len(got) != dim {
				t.Fatalf("%s: WeightsInto returned length %d, want %d", name, len(got), dim)
			}
			if &got[0] != &dst[:1][0] {
				t.Fatalf("%s: WeightsInto reallocated for dst len=%d cap=%d", name, length, dim)
			}
		}
	}
}

func mustBuffered(t *testing.T, w0 []float64) *BufferedAggregator {
	t.Helper()
	b, err := NewBufferedAggregator(w0, 0.5, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
