package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestAsyncServerValidation(t *testing.T) {
	if _, err := NewAsyncServer([]float64{0}, 0, 1); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewAsyncServer([]float64{0}, 1.5, 1); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := NewAsyncServer([]float64{0}, 0.5, -1); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestAsyncPushFreshUpdate(t *testing.T) {
	s, err := NewAsyncServer([]float64{0, 0}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, v := s.Pull()
	a, err := s.Push([]float64{4, 8}, v)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0.5 {
		t.Fatalf("fresh update weight %v, want alpha", a)
	}
	w := s.Weights()
	if w[0] != 2 || w[1] != 4 {
		t.Fatalf("weights %v, want [2 4]", w)
	}
}

func TestAsyncStalenessDiscount(t *testing.T) {
	s, _ := NewAsyncServer([]float64{0}, 0.8, 1)
	_, v0 := s.Pull()
	// Two fresh updates advance the version to 2.
	s.Push([]float64{1}, v0)
	s.Push([]float64{1}, 1)
	// A straggler trained from version 0 has staleness 2 → weight α/3.
	a, err := s.Push([]float64{1}, v0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 / 3
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("stale weight %v, want %v", a, want)
	}
}

func TestAsyncRejectsFutureVersion(t *testing.T) {
	s, _ := NewAsyncServer([]float64{0}, 0.5, 1)
	if _, err := s.Push([]float64{1}, 5); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := s.Push([]float64{1, 2}, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestAsyncConcurrentPushes(t *testing.T) {
	dim := 16
	s, _ := NewAsyncServer(make([]float64, dim), 0.5, 0.5)
	var wg sync.WaitGroup
	const workers = 8
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w, v := s.Pull()
				for j := range w {
					w[j] += 0.01
				}
				if _, err := s.Push(w, v); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Version() != workers*50 {
		t.Fatalf("version %d, want %d", s.Version(), workers*50)
	}
}

// TestAsyncConvergesOnTinyProblem trains a model through the async path
// with simulated heterogeneous client speeds and checks it learns.
func TestAsyncConvergesOnTinyProblem(t *testing.T) {
	fed := tinyFed(t, 3, 240, 90)
	factory := tinyFactory()
	ref := factory()
	w0 := nn.FlattenParams(ref, nil)
	srv, _ := NewAsyncServer(w0, 0.6, 0.5)

	cfg := Config{Algorithm: AlgoFedAvg, LocalSteps: 1, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rounds: 1}.WithDefaults()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := factory()
			nn.SetParams(m, w0)
			client := NewFedAvgClient(i, m, fed.Clients[i], cfg, testPipe(t, cfg, nil), rng.New(uint64(i)+10))
			// Slower clients do fewer pushes, mimicking V100 vs A100 speed.
			pushes := 6 - 2*i
			for k := 0; k < pushes; k++ {
				w, v := srv.Pull()
				u, err := client.LocalUpdate(k, w)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if _, err := srv.Push(u.Primal, v); err != nil {
					t.Errorf("client %d push: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	_, acc := EvaluateWeights(ref, srv.Weights(), fed.Test, 64)
	if acc < 0.2 {
		t.Fatalf("async training accuracy %.3f did not beat chance", acc)
	}
}

func TestAdaptiveRhoIncreasesOnPrimalDominance(t *testing.T) {
	a := NewAdaptiveRho(1)
	rho := a.Step(100, 1)
	if rho != 2 {
		t.Fatalf("rho %v, want doubled", rho)
	}
}

func TestAdaptiveRhoDecreasesOnDualDominance(t *testing.T) {
	a := NewAdaptiveRho(1)
	rho := a.Step(1, 100)
	if rho != 0.5 {
		t.Fatalf("rho %v, want halved", rho)
	}
}

func TestAdaptiveRhoStableWhenBalanced(t *testing.T) {
	a := NewAdaptiveRho(3)
	if rho := a.Step(5, 5); rho != 3 {
		t.Fatalf("rho %v, want unchanged", rho)
	}
}

func TestAdaptiveRhoClamps(t *testing.T) {
	a := NewAdaptiveRho(1)
	for i := 0; i < 100; i++ {
		a.Step(1e12, 1)
	}
	if a.Rho > a.MaxRho {
		t.Fatalf("rho %v exceeded clamp %v", a.Rho, a.MaxRho)
	}
	for i := 0; i < 200; i++ {
		a.Step(1, 1e12)
	}
	if a.Rho < a.MinRho {
		t.Fatalf("rho %v under clamp %v", a.Rho, a.MinRho)
	}
}

func TestResiduals(t *testing.T) {
	w := []float64{1, 1}
	wPrev := []float64{0, 0}
	primals := [][]float64{{1, 1}, {1, 3}}
	p, d := Residuals(w, wPrev, primals, 2)
	// primal = sqrt(0 + 4) = 2; dual = 2 * sqrt(2) * sqrt(2) = 4.
	if math.Abs(p-2) > 1e-12 || math.Abs(d-4) > 1e-12 {
		t.Fatalf("residuals %v %v, want 2 4", p, d)
	}
}
