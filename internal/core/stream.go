package core

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// This file implements the streaming aggregation engine: a StreamSession
// folds a round's uplink into the global model chunk by chunk, so the
// server's transient state per round is O(chunk), not O(dim). The fold
// arithmetic is exactly FedAvgServer.Aggregate's — the same weights
// (float64(n)/total, the division kept verbatim), the same batched
// zero-then-accumulate kernel (tensor.FoldKSrc) over each contributor in
// batch order, the same sharded dispatch — applied to one coordinate
// window [lo, hi) at a time. Every rule involved is element-wise with a
// fixed per-element fold order, so neither the chunk tiling nor the
// worker width can change a single bit relative to the monolithic path
// (the same argument as parallel.go and shard.go, pinned by the sweep in
// stream_test.go).

// StreamSession aggregates one round of chunked uploads into a
// FedAvgServer. Usage per round:
//
//	ss, _ := NewStreamSession(agg)
//	ss.Begin(samples)              // per-contributor counts, batch order
//	for each chunk c in order:
//	    ss.FoldPayloads(lo, hi, payloads)  // contributor payloads, batch order
//	ss.Finish()                    // version bump, exactly one Aggregate's
//
// The session is not safe for concurrent use; chunks must arrive in
// ascending coordinate order only in the sense that every chunk is folded
// exactly once — disjoint windows commute, so the fold order across
// chunks is immaterial to the result.
type StreamSession struct {
	srv     *FedAvgServer
	weights []float64 // per-contributor coefficient, batch order
	total   float64
	active  bool

	// Pre-bound window op and fold-source scratch (no per-chunk closure or
	// slice allocation; the FedAvgServer pattern).
	win  []float64
	srcs []tensor.FoldSrc
	op   func(lo, hi int)
}

// NewStreamSession wraps an aggregator for chunked folding. Only the
// plain FedAvg server qualifies: the f32 accumulator and the sharded tier
// own their accumulator state in ways a rotating chunk window cannot
// mirror bit-exactly (Config.Validate rejects those combinations before a
// run starts; this check is the engine-level backstop).
func NewStreamSession(agg Aggregator) (*StreamSession, error) {
	s, ok := agg.(*FedAvgServer)
	if !ok {
		return nil, fmt.Errorf("core: streaming aggregation requires the FedAvg server, got %T", agg)
	}
	if s.prec32 {
		return nil, fmt.Errorf("core: streaming aggregation cannot use the f32 accumulator")
	}
	if s.tier != nil {
		return nil, fmt.Errorf("core: streaming aggregation cannot combine with the sharded tier")
	}
	ss := &StreamSession{srv: s}
	ss.op = ss.foldWin
	return ss, nil
}

// foldWin folds the staged batch over one sub-range of the chunk window.
func (ss *StreamSession) foldWin(lo, hi int) { tensor.FoldKSrc(ss.win, lo, hi, ss.srcs) }

// Dim returns the model dimension the session streams.
func (ss *StreamSession) Dim() int { return len(ss.srv.W) }

// Begin opens a round with the contributors' sample counts in batch
// order. The counts must be known before the first chunk folds — that is
// why wire.ModelChunk repeats NumSamples on every chunk — because the
// FedAvg weight of each contributor is float64(n)/total over the whole
// cohort. Zero-count contributors carry zero weight, exactly as in
// Aggregate; a round where nobody trained still folds (to a no-op) and
// still bumps the version on Finish.
func (ss *StreamSession) Begin(samples []uint64) error {
	if ss.active {
		return fmt.Errorf("core: stream session already has an open round")
	}
	if len(samples) == 0 {
		return fmt.Errorf("core: aggregate on an empty batch")
	}
	total := 0.0
	for _, n := range samples {
		total += float64(n)
	}
	ss.weights = ss.weights[:0]
	for _, n := range samples {
		w := 0.0
		if n > 0 && total > 0 {
			// The division (not a hoisted reciprocal) keeps the weight the
			// exact bits of the monolithic Aggregate path.
			w = float64(n) / total
		}
		ss.weights = append(ss.weights, w)
	}
	ss.total = total
	ss.active = true
	return nil
}

// FoldChunk folds one coordinate window [lo, hi) of every contributor
// into the model. srcs[i] is contributor i's window-relative fold source
// (indices 0..hi-lo cover model coordinates lo..hi); its W field is
// overwritten with the session weight. Zero-weight contributors are
// skipped, matching Aggregate's batch construction, so their src may be
// the zero value.
func (ss *StreamSession) FoldChunk(lo, hi int, srcs []tensor.FoldSrc) error {
	if !ss.active {
		return fmt.Errorf("core: FoldChunk outside an open round")
	}
	if lo < 0 || hi < lo || hi > len(ss.srv.W) {
		return fmt.Errorf("core: chunk window [%d,%d) escapes model dimension %d", lo, hi, len(ss.srv.W))
	}
	if len(srcs) != len(ss.weights) {
		return fmt.Errorf("core: chunk carries %d sources for %d contributors", len(srcs), len(ss.weights))
	}
	if ss.total == 0 {
		return nil
	}
	batch := ss.srcs[:0]
	for i := range srcs {
		if ss.weights[i] == 0 {
			continue
		}
		src := srcs[i]
		src.W = ss.weights[i]
		batch = append(batch, src)
	}
	ss.srcs = batch
	ss.win = ss.srv.W[lo:hi:hi]
	shardRun(hi-lo, ss.srv.Workers, ss.op)
	ss.win = nil
	clearSrcs(ss.srcs)
	return nil
}

// FoldPayloads folds one window of still-encoded contributor payloads in
// batch order. Dense payloads fold directly; element-wise compressed
// encodings (float16, quantized) decode on the fly through the fold
// source, the chunked mirror of the fused invert+fold path — per element
// the decode+fold sequence is identical to decoding the whole vector
// first, so compression does not break bit-identity. A nil payload is a
// zero-weight contributor's empty slot.
func (ss *StreamSession) FoldPayloads(lo, hi int, payloads []*wire.Payload) error {
	if len(payloads) != len(ss.weights) {
		return fmt.Errorf("core: chunk carries %d payloads for %d contributors", len(payloads), len(ss.weights))
	}
	srcs := make([]tensor.FoldSrc, len(payloads))
	for i, p := range payloads {
		if p == nil || ss.weights[i] == 0 {
			continue
		}
		src, err := chunkFoldSrc(p, hi-lo)
		if err != nil {
			return fmt.Errorf("core: contributor %d: %w", i, err)
		}
		srcs[i] = src
	}
	return ss.FoldChunk(lo, hi, srcs)
}

// chunkFoldSrc views a chunk payload as a window-relative fold source.
func chunkFoldSrc(p *wire.Payload, width int) (tensor.FoldSrc, error) {
	if int(p.Dim) != width {
		return tensor.FoldSrc{}, fmt.Errorf("core: payload spans %d coordinates, window is %d", p.Dim, width)
	}
	switch p.Enc {
	case wire.EncDense:
		return tensor.FoldSrc{Kind: tensor.SrcDense, Dense: p.Dense}, nil
	case wire.EncFloat16:
		return tensor.FoldSrc{Kind: tensor.SrcF16, Codes: p.Codes}, nil
	default:
		return tensor.FoldSrc{}, fmt.Errorf("core: %s payloads cannot stream chunk-wise", p.Enc)
	}
}

// Finish closes the round, bumping the model version exactly as one
// Aggregate call would (including the nobody-trained case, which bumps
// without touching the model).
func (ss *StreamSession) Finish() error {
	if !ss.active {
		return fmt.Errorf("core: Finish outside an open round")
	}
	ss.srv.version++
	ss.active = false
	return nil
}
