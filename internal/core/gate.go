package core

// AdmissionGate throttles when a run's server-side aggregation work — the
// decode+fold of one admitted batch — may start. A multi-tenant host
// installs one gate per tenant, all draining a shared arbiter, so tenants
// share the process-wide aggregation worker pool fairly: a large tenant's
// huge batches cannot starve a small tenant's rounds.
//
// The gate is timing-only. It decides WHEN a batch's fold begins, never
// how the batch is ordered or split, so a gated run's trajectory is
// bit-identical to the same run ungated — the fairness layer cannot
// perturb the math.
type AdmissionGate interface {
	// Acquire blocks until the caller may fold a batch of the given cost
	// (update count), returning the release to call when the fold ends.
	Acquire(cost int) (release func())
}

// gateAcquire acquires g for cost, tolerating a nil gate (ungated runs
// pay only a nil check).
func gateAcquire(g AdmissionGate, cost int) func() {
	if g == nil {
		return func() {}
	}
	return g.Acquire(cost)
}
