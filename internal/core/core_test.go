package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/wire"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Algorithm != AlgoIIADMM || c.Rounds != 10 || c.LocalSteps != 10 || c.BatchSize != 64 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Rho != 2 || c.Zeta != 14 {
		t.Fatalf("IADMM defaults wrong: %+v", c)
	}
	if math.Abs(c.LR-1.0/16.0) > 1e-15 {
		t.Fatalf("LR default %v, want 1/(rho+zeta)", c.LR)
	}
	if !math.IsInf(c.Epsilon, 1) {
		t.Fatalf("epsilon default %v, want +Inf", c.Epsilon)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Algorithm: "nope"},
		{Algorithm: AlgoFedAvg, Rounds: -1},
		{Algorithm: AlgoFedAvg, Momentum: 1.0},
		{Algorithm: AlgoIIADMM, Rho: -1},
		{Algorithm: AlgoIIADMM, Epsilon: -3},
	}
	for i, c := range bad {
		c = c.WithDefaults()
		// Re-break the field that WithDefaults may have fixed.
		switch i {
		case 0:
			c.Algorithm = "nope"
		case 1:
			c.Rounds = -1
		case 2:
			c.Momentum = 1.0
		case 3:
			c.Rho = -1
		case 4:
			c.Epsilon = -3
		}
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestCommunicatesDual(t *testing.T) {
	if (Config{Algorithm: AlgoICEADMM}).CommunicatesDual() != true {
		t.Fatal("ICEADMM must communicate duals")
	}
	if (Config{Algorithm: AlgoIIADMM}).CommunicatesDual() {
		t.Fatal("IIADMM must not communicate duals")
	}
	if (Config{Algorithm: AlgoFedAvg}).CommunicatesDual() {
		t.Fatal("FedAvg must not communicate duals")
	}
}

func upd(id int, n uint64, primal, dual []float64) *wire.LocalUpdate {
	return &wire.LocalUpdate{ClientID: uint32(id), NumSamples: n, Primal: primal, Dual: dual}
}

func TestFedAvgServerWeightedAverage(t *testing.T) {
	s := NewFedAvgServer([]float64{0, 0}, 2)
	// Client 0 has 3x the samples of client 1.
	err := s.Update([]*wire.LocalUpdate{
		upd(0, 300, []float64{1, 2}, nil),
		upd(1, 100, []float64{5, 6}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := s.GlobalWeights()
	if math.Abs(w[0]-2) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Fatalf("weighted average %v, want [2 3]", w)
	}
}

func TestFedAvgServerRejectsBadBatches(t *testing.T) {
	s := NewFedAvgServer([]float64{0}, 2)
	if err := s.Update([]*wire.LocalUpdate{upd(0, 1, []float64{1}, nil)}); err == nil {
		t.Fatal("short batch accepted")
	}
	if err := s.Update([]*wire.LocalUpdate{upd(0, 1, []float64{1}, nil), nil}); err == nil {
		t.Fatal("nil update accepted")
	}
	if err := s.Update([]*wire.LocalUpdate{upd(0, 1, []float64{1, 2}, nil), upd(1, 1, []float64{1}, nil)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestFedAvgServerZeroSampleRoundIsNoop(t *testing.T) {
	s := NewFedAvgServer([]float64{7}, 2)
	if err := s.Update([]*wire.LocalUpdate{upd(0, 0, []float64{1}, nil), upd(1, 0, []float64{2}, nil)}); err != nil {
		t.Fatal(err)
	}
	if s.GlobalWeights()[0] != 7 {
		t.Fatal("all-skip round must leave the model unchanged")
	}
}

func TestFedAvgServerIgnoresZeroWeightEchoes(t *testing.T) {
	s := NewFedAvgServer([]float64{0}, 2)
	if err := s.Update([]*wire.LocalUpdate{upd(0, 100, []float64{4}, nil), upd(1, 0, []float64{-999}, nil)}); err != nil {
		t.Fatal(err)
	}
	if s.GlobalWeights()[0] != 4 {
		t.Fatalf("echo update contaminated the average: %v", s.GlobalWeights())
	}
}

func TestParticipatesDeterministicAndProportional(t *testing.T) {
	// Same inputs → same decision.
	for round := 1; round <= 3; round++ {
		for id := 0; id < 5; id++ {
			if Participates(9, round, id, 0.3) != Participates(9, round, id, 0.3) {
				t.Fatal("participation not deterministic")
			}
		}
	}
	// Edge fractions: 0 and 1 mean everyone.
	if !Participates(1, 1, 1, 0) || !Participates(1, 1, 1, 1) {
		t.Fatal("fraction 0/1 must include everyone")
	}
	// Long-run rate approximates the fraction.
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Participates(5, i, i%17, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("participation rate %v, want ~0.3", rate)
	}
}

func TestPartialParticipationRun(t *testing.T) {
	fed := tinyFed(t, 4, 256, 64)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32, ClientFraction: 0.5, Seed: 6}
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
}

func TestPartialParticipationRequiresFedAvg(t *testing.T) {
	cfg := Config{Algorithm: AlgoIIADMM, ClientFraction: 0.5}.WithDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("IADMM with partial participation accepted")
	}
}

func TestAdaptiveRhoRequiresIADMM(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, AdaptiveRho: true}.WithDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("FedAvg with AdaptiveRho accepted")
	}
}

// TestAdaptiveRhoKeepsDualMirrorExact re-runs the mirror-consistency
// invariant with the adaptive-penalty controller active: the broadcast ρ
// must keep server and client duals bit-identical even as ρ changes.
func TestAdaptiveRhoKeepsDualMirrorExact(t *testing.T) {
	cfg := Config{Algorithm: AlgoIIADMM, Rounds: 1, LocalSteps: 1, BatchSize: 16, AdaptiveRho: true, Seed: 2}.WithDefaults()
	fed := tinyFed(t, 2, 64, 16)
	factory := tinyFactory()
	ref := factory()
	w0 := nn.FlattenParams(ref, nil)

	srvAlgo, err := NewServer(cfg, w0, 2)
	if err != nil {
		t.Fatal(err)
	}
	server := srvAlgo.(*IIADMMServer)
	// Make the controller eager so rho actually moves during the test.
	server.Adaptive.Mu = 1.01

	clients := make([]*IIADMMClient, 2)
	master := rng.New(2)
	for i := range clients {
		m := factory()
		nn.SetParams(m, w0)
		cr := master.Split()
		clients[i] = NewIIADMMClient(i, m, fed.Clients[i], cfg, testPipe(t, cfg, cr), cr)
	}
	rhoSeen := map[float64]bool{}
	for round := 1; round <= 4; round++ {
		rho := server.CurrentRho()
		rhoSeen[rho] = true
		w := append([]float64(nil), server.GlobalWeights()...)
		ups := make([]*wire.LocalUpdate, 2)
		for i, c := range clients {
			c.SetRho(rho)
			u, err := c.LocalUpdate(round, w)
			if err != nil {
				t.Fatal(err)
			}
			ups[i] = u
		}
		if err := server.Update(ups); err != nil {
			t.Fatal(err)
		}
		for i, c := range clients {
			sd, cd := server.Dual(i), c.Lambda()
			for j := range sd {
				if sd[j] != cd[j] {
					t.Fatalf("round %d client %d: adaptive-rho broke the dual mirror at %d", round, i, j)
				}
			}
		}
	}
	if len(rhoSeen) < 2 {
		t.Fatal("adaptive controller never changed rho; test exercised nothing")
	}
}

func TestAdaptiveRhoEndToEndRun(t *testing.T) {
	fed := tinyFed(t, 2, 128, 32)
	cfg := Config{Algorithm: AlgoICEADMM, Rounds: 3, LocalSteps: 1, BatchSize: 64, AdaptiveRho: true, Seed: 8}
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
}

func TestICEADMMServerClosedForm(t *testing.T) {
	rho := 2.0
	s := NewICEADMMServer([]float64{0}, 2, rho)
	err := s.Update([]*wire.LocalUpdate{
		upd(0, 1, []float64{4}, []float64{2}),  // z - λ/ρ = 4 - 1 = 3
		upd(1, 1, []float64{2}, []float64{-2}), // 2 + 1 = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GlobalWeights()[0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("w = %v, want 3", got)
	}
}

func TestICEADMMServerRequiresDual(t *testing.T) {
	s := NewICEADMMServer([]float64{0}, 1, 1)
	if err := s.Update([]*wire.LocalUpdate{upd(0, 1, []float64{1}, nil)}); err == nil {
		t.Fatal("missing dual accepted")
	}
}

func TestIIADMMServerDualMirrorAndGlobalUpdate(t *testing.T) {
	rho := 2.0
	w0 := []float64{1}
	s := NewIIADMMServer(w0, 2, rho)
	// Round 1: w = 1, clients upload z = 3 and z = -1.
	err := s.Update([]*wire.LocalUpdate{
		upd(0, 1, []float64{3}, nil),
		upd(1, 1, []float64{-1}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dual update (line 6): λ_p = 0 + ρ(w − z_p) → λ0 = 2(1−3) = −4, λ1 = 2(1+1) = 4.
	if got := s.Dual(0)[0]; got != -4 {
		t.Fatalf("dual0 = %v, want -4", got)
	}
	if got := s.Dual(1)[0]; got != 4 {
		t.Fatalf("dual1 = %v, want 4", got)
	}
	// Global update (line 3): w = ½[(3 − (−4)/2) + (−1 − 4/2)] = ½[5 + (−3)] = 1.
	if got := s.GlobalWeights()[0]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("w = %v, want 1", got)
	}
}

// tinyFed builds a small learnable federated problem.
func tinyFed(t *testing.T, clients, trainN, testN int) *dataset.Federated {
	t.Helper()
	train, test := dataset.MNIST(dataset.SynthConfig{Train: trainN, Test: testN, Seed: 7})
	shards := dataset.PartitionIID(train, clients, rng.New(3))
	return &dataset.Federated{Clients: shards, Test: test}
}

func tinyFactory() nn.Factory {
	return func() nn.Module {
		return nn.NewMLP(28*28, []int{16}, 10, rng.New(99))
	}
}

// TestIIADMMDualMirrorConsistencyUnderDP is the invariant that justifies
// dropping dual communication: after every round, the server's mirror λ_p
// must equal the client's λ_p bit-for-bit, even with Laplace noise on.
func TestIIADMMDualMirrorConsistencyUnderDP(t *testing.T) {
	cfg := Config{Algorithm: AlgoIIADMM, Rounds: 1, LocalSteps: 2, BatchSize: 16, Epsilon: 5}.WithDefaults()
	fed := tinyFed(t, 2, 64, 16)
	factory := tinyFactory()
	ref := factory()
	w0 := nn.FlattenParams(ref, nil)

	server := NewIIADMMServer(w0, 2, cfg.Rho)
	clients := make([]*IIADMMClient, 2)
	master := rng.New(1)
	for i := range clients {
		m := factory()
		nn.SetParams(m, w0)
		cr := master.Split()
		clients[i] = NewIIADMMClient(i, m, fed.Clients[i], cfg, testPipe(t, cfg, cr), cr)
	}
	for round := 1; round <= 3; round++ {
		w := append([]float64(nil), server.GlobalWeights()...)
		ups := make([]*wire.LocalUpdate, 2)
		for i, c := range clients {
			u, err := c.LocalUpdate(round, w)
			if err != nil {
				t.Fatal(err)
			}
			ups[i] = u
		}
		if err := server.Update(ups); err != nil {
			t.Fatal(err)
		}
		for i, c := range clients {
			sd, cd := server.Dual(i), c.Lambda()
			for j := range sd {
				if sd[j] != cd[j] {
					t.Fatalf("round %d client %d: dual mirror diverged at %d: server %v client %v", round, i, j, sd[j], cd[j])
				}
			}
		}
	}
}

// TestFedAvgEqualsICEADMMSpecialCase verifies the paper's claim that FedAvg
// is the λt=0, ζt=0, ρt=1/η special case of the IADMM family (Section
// III-A): with one client, one full-batch local step per round, frozen
// duals, no momentum, no clipping pressure, and no noise, the two clients
// generate identical primal sequences.
func TestFedAvgEqualsICEADMMSpecialCase(t *testing.T) {
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 32, Test: 8, Seed: 5})
	eta := 0.05
	base := Config{
		Rounds:     1,
		LocalSteps: 1,
		BatchSize:  1000, // full batch
		Clip:       1e9,  // clipping never binds
		Momentum:   0,    // plain SGD
		Seed:       1,
	}
	fa := base
	fa.Algorithm = AlgoFedAvg
	fa.LR = eta
	fa.Momentum = 0
	ice := base
	ice.Algorithm = AlgoICEADMM
	ice.Rho = 1 / eta
	ice.Zeta = 1e-12 // Validate requires ζ >= 0; effectively zero
	ice.FreezeDual = true

	factory := tinyFactory()
	mA := factory()
	mB := factory()
	w0 := nn.FlattenParams(mA, nil)
	nn.SetParams(mB, w0)

	ca := NewFedAvgClient(0, mA, train, fa, testPipe(t, fa, nil), rng.New(2))
	cb := NewICEADMMClient(0, mB, train, ice, w0, testPipe(t, ice, nil), rng.New(2))

	w := append([]float64(nil), w0...)
	for round := 1; round <= 4; round++ {
		ua, err := ca.LocalUpdate(round, w)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := cb.LocalUpdate(round, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ua.Primal {
			if math.Abs(ua.Primal[i]-ub.Primal[i]) > 1e-8 {
				t.Fatalf("round %d: primal diverged at %d: fedavg %v iceadmm %v", round, i, ua.Primal[i], ub.Primal[i])
			}
		}
		// Next round's w: single client, FedAvg server = its primal.
		copy(w, ua.Primal)
	}
}

// TestIIADMMSingleStepClosedForm checks line 16 of Algorithm 1 directly:
// with L=1, one batch, λ=0, the new iterate is w − g(w)/(ρ+ζ) where g is
// the clipped batch gradient at w.
func TestIIADMMSingleStepClosedForm(t *testing.T) {
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 16, Test: 8, Seed: 11})
	cfg := Config{
		Algorithm:  AlgoIIADMM,
		Rounds:     1,
		LocalSteps: 1,
		BatchSize:  1000,
		Rho:        2,
		Zeta:       6,
		Clip:       1e9,
		Seed:       1,
	}.WithDefaults()
	factory := tinyFactory()
	m := factory()
	w0 := nn.FlattenParams(m, nil)

	// Reference gradient at w0 over the full dataset (deterministic batch).
	ref := factory()
	nn.SetParams(ref, w0)
	nn.ZeroGrad(ref)
	all := dataset.Collate(train, seq(train.Len()))
	logits := ref.Forward(all.X)
	_, d := nn.CrossEntropy(logits, all.Labels)
	ref.Backward(d)
	g := nn.FlattenGrads(ref, nil)

	c := NewIIADMMClient(0, m, train, cfg, testPipe(t, cfg, nil), rng.New(4))
	u, err := c.LocalUpdate(1, w0)
	if err != nil {
		t.Fatal(err)
	}
	step := 1.0 / (cfg.Rho + cfg.Zeta)
	for i := range w0 {
		want := w0[i] - step*g[i] // z starts at w so the ρ(w−z) term is zero
		if math.Abs(u.Primal[i]-want) > 1e-9 {
			t.Fatalf("closed-form mismatch at %d: got %v want %v", i, u.Primal[i], want)
		}
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestEvaluateZeroModelUniformLogits(t *testing.T) {
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 64, Test: 8, Seed: 13})
	m := nn.NewLinearModel(28*28, 10, rng.New(1))
	// Zero all parameters: logits uniform, argmax = class 0.
	zero := make([]float64, nn.NumParams(m))
	loss, acc := EvaluateWeights(m, zero, train, 32)
	if math.Abs(loss-math.Log(10)) > 1e-9 {
		t.Fatalf("uniform loss %v, want ln10", loss)
	}
	class0 := 0
	for i := 0; i < train.Len(); i++ {
		if _, y := train.Sample(i); y == 0 {
			class0++
		}
	}
	want := float64(class0) / float64(train.Len())
	if math.Abs(acc-want) > 1e-12 {
		t.Fatalf("accuracy %v, want class-0 frequency %v", acc, want)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	m := nn.NewLinearModel(4, 2, rng.New(1))
	empty := dataset.NewInMemory(tensor.New(0, 1, 2, 2), []int{}, 2)
	loss, acc := Evaluate(m, empty, 8)
	if loss != 0 || acc != 0 {
		t.Fatal("empty dataset must evaluate to zeros")
	}
}

func TestRunIntegrationAllAlgorithms(t *testing.T) {
	fed := tinyFed(t, 4, 320, 120)
	for _, algo := range []string{AlgoFedAvg, AlgoICEADMM, AlgoIIADMM} {
		cfg := Config{Algorithm: algo, Rounds: 4, LocalSteps: 2, BatchSize: 32, Seed: 3}
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Rounds) != 4 {
			t.Fatalf("%s: %d rounds recorded", algo, len(res.Rounds))
		}
		if res.FinalAcc < 0.2 { // chance is 0.1
			t.Fatalf("%s: final accuracy %.3f did not beat chance meaningfully", algo, res.FinalAcc)
		}
		if res.UploadsB == 0 || res.DownloadsB == 0 {
			t.Fatalf("%s: traffic accounting empty: %+v", algo, res)
		}
	}
}

// TestCommunicationVolumeRatio verifies the headline claim: ICEADMM's
// client→server traffic is ~2× IIADMM's for the same model and rounds.
func TestCommunicationVolumeRatio(t *testing.T) {
	fed := tinyFed(t, 2, 64, 16)
	run := func(algo string) uint64 {
		cfg := Config{Algorithm: algo, Rounds: 2, LocalSteps: 1, BatchSize: 64, Seed: 3}
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.UploadsB
	}
	ice := run(AlgoICEADMM)
	iia := run(AlgoIIADMM)
	ratio := float64(ice) / float64(iia)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("ICEADMM/IIADMM upload ratio %v, want ~2", ratio)
	}
	fa := run(AlgoFedAvg)
	if fa != iia {
		t.Fatalf("FedAvg and IIADMM should upload identical volume: %d vs %d", fa, iia)
	}
}

func TestRunDeterminism(t *testing.T) {
	fed := tinyFed(t, 2, 96, 32)
	cfg := Config{Algorithm: AlgoIIADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 42, Epsilon: 10}
	a, err := Run(cfg, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Fatalf("same seed, different results: %v/%v vs %v/%v", a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
}

func TestRunOverPubSubTransport(t *testing.T) {
	fed := tinyFed(t, 3, 120, 30)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5}
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{Transport: TransportPubSub})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
}

func TestRunRejectsUnknownTransport(t *testing.T) {
	fed := tinyFed(t, 2, 32, 8)
	_, err := Run(Config{Algorithm: AlgoFedAvg}, fed, tinyFactory(), RunOptions{Transport: "carrier-pigeon"})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestRunRejectsEmptyFederation(t *testing.T) {
	_, err := Run(Config{}, &dataset.Federated{}, tinyFactory(), RunOptions{})
	if err == nil {
		t.Fatal("empty federation accepted")
	}
}

// TestDPNoiseDegradesAccuracy reproduces the qualitative privacy/utility
// trade-off of Fig. 2: very strong privacy (tiny ε̄) must hurt accuracy
// relative to the non-private run.
func TestDPNoiseDegradesAccuracy(t *testing.T) {
	fed := tinyFed(t, 2, 320, 120)
	run := func(eps float64) float64 {
		cfg := Config{Algorithm: AlgoIIADMM, Rounds: 4, LocalSteps: 2, BatchSize: 32, Seed: 3, Epsilon: eps}
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAcc
	}
	private := run(0.05) // extremely noisy
	open := run(math.Inf(1))
	if open-private < 0.1 {
		t.Fatalf("eps=0.05 accuracy %.3f not clearly below non-private %.3f", private, open)
	}
}

// TestObjectivePerturbationMode verifies the Chaudhuri-style alternative:
// noise enters through the objective (a constant vector added to every
// gradient) and the release carries no output noise, yet differs from the
// noise-free trajectory.
func TestObjectivePerturbationMode(t *testing.T) {
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 64, Test: 16, Seed: 21})
	mk := func(mode string, eps float64) []float64 {
		cfg := Config{
			Algorithm:  AlgoIIADMM,
			Rounds:     1,
			LocalSteps: 1,
			BatchSize:  64,
			DPMode:     mode,
			Seed:       1,
		}.WithDefaults()
		cfg.Epsilon = eps
		factory := tinyFactory()
		m := factory()
		w0 := nn.FlattenParams(m, nil)
		c := NewIIADMMClient(0, m, train, cfg, testPipe(t, cfg, rng.New(55)), rng.New(44))
		u, err := c.LocalUpdate(1, w0)
		if err != nil {
			t.Fatal(err)
		}
		return u.Primal
	}
	clean := mk(DPModeObjective, math.Inf(1))
	objective := mk(DPModeObjective, 1.0)
	output := mk(DPModeOutput, 1.0)
	diff := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	if diff(clean, objective) == 0 {
		t.Fatal("objective perturbation had no effect on the trajectory")
	}
	if diff(clean, output) == 0 {
		t.Fatal("output perturbation had no effect")
	}
	// With a single proximal step, objective noise passes through the
	// 1/(ρ+ζ) contraction while output noise lands at full scale, so the
	// objective-perturbed release must sit closer to the clean one — the
	// accuracy advantage [27] proves for the convex regime.
	if diff(clean, objective) >= diff(clean, output) {
		t.Fatalf("objective noise (%v) should distort less than output noise (%v)",
			diff(clean, objective), diff(clean, output))
	}
}

func TestDPModeValidation(t *testing.T) {
	cfg := Config{DPMode: "subgradient"}.WithDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown DPMode accepted")
	}
}

// TestRunOverRPCTransport runs the full simulation over loopback TCP: the
// gRPC-substitute path of Section IV-D, end to end through core.Run.
func TestRunOverRPCTransport(t *testing.T) {
	fed := tinyFed(t, 3, 120, 30)
	cfg := Config{Algorithm: AlgoIIADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 12}
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{Transport: TransportRPC})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	if res.UploadsB == 0 || res.DownloadsB == 0 {
		t.Fatalf("rpc traffic accounting empty: %+v", res)
	}
}

// TestTransportsAgreeOnResult trains the identical configuration over all
// three backends; the learning outcome must be transport-invariant.
func TestTransportsAgreeOnResult(t *testing.T) {
	fed := tinyFed(t, 2, 96, 32)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 13}
	accs := map[Transport]float64{}
	for _, tr := range []Transport{TransportMPI, TransportPubSub, TransportRPC} {
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{Transport: tr})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		accs[tr] = res.FinalAcc
	}
	if accs[TransportMPI] != accs[TransportPubSub] || accs[TransportMPI] != accs[TransportRPC] {
		t.Fatalf("transports disagree on the result: %v", accs)
	}
}

// testPipe builds the client update pipeline for cfg. r seeds the
// randomized stages (nil is fine for stacks without noise/quantization).
func testPipe(t testing.TB, cfg Config, r *rng.RNG) *pipeline.Pipeline {
	t.Helper()
	p, err := NewClientPipeline(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
