package core

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

// streamChunkSizes is the chunk-size matrix of the streaming bit-identity
// sweep: a single-coordinate stream, odd sizes that misalign with the
// kernel block, the worker grain itself, and chunks at/past the model
// dimension (one-chunk degenerate stream).
var streamChunkSizes = []int{1, 17, 1000, minShard, 3*minShard + 17, 1 << 20}

// chunkPayloads slices one contributor's full-model payload into the
// window [lo, hi) — the client-side cut StreamUpload performs.
func chunkPayload(t *testing.T, u *wire.LocalUpdate, lo, hi int) *wire.Payload {
	t.Helper()
	if u.PrimalP != nil {
		p := u.PrimalP
		switch p.Enc {
		case wire.EncFloat16:
			return &wire.Payload{Enc: wire.EncFloat16, Dim: uint32(hi - lo), Codes: p.Codes[2*lo : 2*hi]}
		case wire.EncDense:
			return &wire.Payload{Enc: wire.EncDense, Dim: uint32(hi - lo), Dense: p.Dense[lo:hi]}
		default:
			t.Fatalf("cannot chunk %s payload", p.Enc)
		}
	}
	return &wire.Payload{Enc: wire.EncDense, Dim: uint32(hi - lo), Dense: u.Primal[lo:hi]}
}

// streamRound drives one full round through a StreamSession: Begin with
// the batch's sample counts, fold every chunk of the tiling in order,
// Finish.
func streamRound(t *testing.T, ss *StreamSession, batch []*wire.LocalUpdate, chunk int) {
	t.Helper()
	samples := make([]uint64, len(batch))
	for i, u := range batch {
		samples[i] = u.NumSamples
	}
	if err := ss.Begin(samples); err != nil {
		t.Fatal(err)
	}
	dim := ss.Dim()
	payloads := make([]*wire.Payload, len(batch))
	for c := 0; c < wire.ChunkPlan(dim, chunk); c++ {
		lo, hi := wire.ChunkRange(dim, chunk, c)
		for i, u := range batch {
			if u.NumSamples == 0 {
				payloads[i] = nil
				continue
			}
			payloads[i] = chunkPayload(t, u, lo, hi)
		}
		if err := ss.FoldPayloads(lo, hi, payloads); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBitIdenticalToMonolithic pins the tentpole invariant: for
// every chunk size, worker width, and covered uplink encoding (dense and
// the fused f16 fold), the chunk-by-chunk streamed trajectory is
// byte-for-byte the monolithic Aggregate one over multiple rounds. The
// fold is element-wise with a fixed per-element order (zero, then += in
// batch order), so the chunk tiling is invisible to the arithmetic — this
// sweep keeps it that way.
func TestStreamBitIdenticalToMonolithic(t *testing.T) {
	const (
		clients = 4
		dim     = 3*minShard + 17
		rounds  = 3
	)
	encodings := map[string]string{
		"dense": "",
		"f16":   "clip:1,f16",
	}
	widths := aggWidths
	sizes := streamChunkSizes
	if testing.Short() {
		widths = []int{2}
		sizes = []int{17, minShard}
	}
	for name, pipe := range encodings {
		t.Run(name, func(t *testing.T) {
			for _, chunk := range sizes {
				for _, workers := range widths {
					cfg := Config{Algorithm: AlgoFedAvg, Pipeline: pipe, AggWorkers: workers}.WithDefaults()
					mono := NewFedAvgServer(testVec(dim, 1), clients)
					mono.Workers = workers
					streamed := NewFedAvgServer(testVec(dim, 1), clients)
					streamed.Workers = workers
					ss, err := NewStreamSession(streamed)
					if err != nil {
						t.Fatal(err)
					}

					fused := pipe != ""
					if fused {
						inv, err := NewServerPipeline(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if _, ok := EnableFusedFold(mono, inv); !ok {
							t.Fatalf("pipeline %q did not fuse", pipe)
						}
					}

					for round := 0; round < rounds; round++ {
						seed := uint64(300 + round)
						var a, b []*wire.LocalUpdate
						if fused {
							a = encodedBatch(t, cfg, clients, dim, seed, nil)
							b = encodedBatch(t, cfg, clients, dim, seed, nil)
						} else {
							a = testBatch(clients, dim, seed)
							b = testBatch(clients, dim, seed)
						}
						// One zero-weight straggler per round: monolithic skips
						// it, the stream must too.
						a[2].NumSamples, b[2].NumSamples = 0, 0
						if fused {
							if err := DecodeUpdatesFused(a, mono.fused, dim); err != nil {
								t.Fatal(err)
							}
						}
						if err := mono.Aggregate(a); err != nil {
							t.Fatal(err)
						}
						streamRound(t, ss, b, chunk)
					}
					requireBitEqual(t, fmt.Sprintf("%s chunk=%d workers=%d", name, chunk, workers),
						mono.Weights(), streamed.Weights())
					if mono.Version() != streamed.Version() {
						t.Fatalf("versions diverged: %d vs %d", mono.Version(), streamed.Version())
					}
				}
			}
		})
	}
}

// TestStreamSessionLifecycle covers the session's state machine and edge
// rounds: empty cohorts are rejected, zero-mass rounds fold to a no-op
// but still advance the version (Aggregate's contract), folds outside a
// round and double Begins are errors, and only the plain FedAvg server
// qualifies for streaming.
func TestStreamSessionLifecycle(t *testing.T) {
	srv := NewFedAvgServer(testVec(64, 5), 2)
	ss, err := NewStreamSession(srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.FoldPayloads(0, 64, make([]*wire.Payload, 2)); err == nil {
		t.Error("fold outside an open round accepted")
	}
	if err := ss.Finish(); err == nil {
		t.Error("Finish outside an open round accepted")
	}
	if err := ss.Begin(nil); err == nil {
		t.Error("empty cohort accepted")
	}

	// Zero-mass round: weights untouched, version bumped.
	before := srv.Weights()
	if err := ss.Begin([]uint64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ss.Begin([]uint64{1, 1}); err == nil {
		t.Error("double Begin accepted")
	}
	if err := ss.FoldPayloads(0, 64, make([]*wire.Payload, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Finish(); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "zero-mass round", before, srv.Weights())
	if srv.Version() != 1 {
		t.Fatalf("version %d after a zero-mass round, want 1", srv.Version())
	}

	// Window and batch-shape validation.
	if err := ss.Begin([]uint64{3, 5}); err != nil {
		t.Fatal(err)
	}
	if err := ss.FoldPayloads(0, 65, make([]*wire.Payload, 2)); err == nil {
		t.Error("window past the model dimension accepted")
	}
	if err := ss.FoldPayloads(0, 32, make([]*wire.Payload, 3)); err == nil {
		t.Error("payload count mismatch accepted")
	}
	bad := []*wire.Payload{
		{Enc: wire.EncDense, Dim: 16, Dense: make([]float64, 16)},
		{Enc: wire.EncDense, Dim: 32, Dense: make([]float64, 32)},
	}
	if err := ss.FoldPayloads(0, 32, bad); err == nil {
		t.Error("payload narrower than the window accepted")
	}
	sub := []*wire.Payload{
		{Enc: wire.EncSubset, Dim: 32, Indices: []uint32{1}, Values: []float64{1}},
		{Enc: wire.EncDense, Dim: 32, Dense: make([]float64, 32)},
	}
	if err := ss.FoldPayloads(0, 32, sub); err == nil {
		t.Error("subset payload folded chunk-wise")
	}

	// Ineligible servers.
	f32 := NewFedAvgServer(testVec(8, 1), 2)
	f32.usePrecision32()
	if _, err := NewStreamSession(f32); err == nil {
		t.Error("f32 accumulator accepted for streaming")
	}
	tiered := NewFedAvgServer(testVec(8, 1), 2)
	tiered.useShards(2)
	defer closeAggregator(tiered)
	if _, err := NewStreamSession(tiered); err == nil {
		t.Error("sharded tier accepted for streaming")
	}
	if _, err := NewStreamSession(NewIIADMMServer(testVec(8, 1), 2, 2)); err == nil {
		t.Error("ADMM server accepted for streaming")
	}
}
