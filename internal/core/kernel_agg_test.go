package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/wire"
)

// encodedBatch builds a batch of pipeline-compressed updates. Rebuilding
// with the same seed reproduces identical payloads (the quantizer's
// stochastic rounding draws from the seeded client streams), so the
// two-pass and fused paths can consume independent but equal copies.
func encodedBatch(t *testing.T, cfg Config, clients, dim int, seed uint64, baseVersions []uint64) []*wire.LocalUpdate {
	t.Helper()
	master := rng.New(seed)
	batch := make([]*wire.LocalUpdate, clients)
	for i := range batch {
		pipe, err := NewClientPipeline(cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		upd := pipeline.NewDense(testVec(dim, seed+uint64(10*i)))
		if err := pipe.Apply(upd, 0); err != nil {
			t.Fatal(err)
		}
		u := &wire.LocalUpdate{ClientID: uint32(i), NumSamples: uint64(16 + 7*i), PrimalP: upd}
		if baseVersions != nil {
			u.BaseVersion = baseVersions[i]
		}
		batch[i] = u
	}
	return batch
}

// TestFusedFoldBitIdenticalToTwoPass pins the tentpole invariant: for
// every fusable encoding, every scheduler's aggregation rule, and every
// worker width, folding still-encoded payloads (DecodeUpdatesFused +
// fused kernels) produces byte-for-byte the weights of the two-pass path
// (DecodeUpdates densify, then fold).
func TestFusedFoldBitIdenticalToTwoPass(t *testing.T) {
	const (
		clients = 4
		dim     = 3*minShard + 17
		rounds  = 3
	)
	schedCases := map[string]Config{
		"syncall/fedavg":     {Algorithm: AlgoFedAvg, Scheduler: SchedSyncAll},
		"sampled/fedavg":     {Algorithm: AlgoFedAvg, Scheduler: SchedSampled, CohortFraction: 0.5},
		"buffered/staleness": {Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: 2},
	}
	for _, spec := range []string{"clip:1,f16", "clip:1,quantize:8", "clip:1,quantize:12"} {
		for name, base := range schedCases {
			t.Run(fmt.Sprintf("%s/%s", spec, name), func(t *testing.T) {
				for _, workers := range aggWidths {
					cfg := base
					cfg.Pipeline = spec
					cfg.AggWorkers = workers
					cfg = cfg.WithDefaults()
					inv, err := NewServerPipeline(cfg)
					if err != nil {
						t.Fatal(err)
					}

					twoPass, err := NewAggregator(cfg, testVec(dim, 1), clients)
					if err != nil {
						t.Fatal(err)
					}
					fusedAgg, err := NewAggregator(cfg, testVec(dim, 1), clients)
					if err != nil {
						t.Fatal(err)
					}
					fs, ok := EnableFusedFold(fusedAgg, inv)
					if !ok {
						t.Fatalf("pipeline %q did not fuse", spec)
					}

					for round := 0; round < rounds; round++ {
						// Buffered rounds replay earlier base versions so some
						// folds carry staleness > 0.
						var bases []uint64
						if cfg.Scheduler == SchedBuffered && round > 0 {
							bases = make([]uint64, clients)
							for i := range bases {
								bases[i] = uint64(round - 1 + i%2)
							}
						}
						seed := uint64(40 + round)
						a := encodedBatch(t, cfg, clients, dim, seed, bases)
						b := encodedBatch(t, cfg, clients, dim, seed, bases)

						if err := DecodeUpdates(a, inv, dim, workers); err != nil {
							t.Fatal(err)
						}
						if err := twoPass.Aggregate(a); err != nil {
							t.Fatal(err)
						}
						if err := DecodeUpdatesFused(b, fs, dim); err != nil {
							t.Fatal(err)
						}
						if err := fusedAgg.Aggregate(b); err != nil {
							t.Fatal(err)
						}
					}
					want, got := twoPass.Weights(), fusedAgg.Weights()
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
							t.Fatalf("workers=%d: weight[%d] fused %x, two-pass %x — not bit-identical",
								workers, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
						}
					}
				}
			})
		}
	}
}

// TestFusedFoldGating: fusion must engage only when both the stack and
// the aggregator support it.
func TestFusedFoldGating(t *testing.T) {
	const dim = 64
	mkPipe := func(spec string) *pipeline.Pipeline {
		cfg := Config{Algorithm: AlgoFedAvg, Pipeline: spec}.WithDefaults()
		inv, err := NewServerPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return inv
	}
	fedavg := NewFedAvgServer(testVec(dim, 1), 2)
	if _, ok := EnableFusedFold(fedavg, mkPipe("clip:1")); ok {
		t.Error("dense pipeline fused — there is nothing to fuse")
	}
	if _, ok := EnableFusedFold(fedavg, mkPipe("clip:1,topk:0.5")); ok {
		t.Error("topk pipeline fused — scatter is not a per-coordinate decode")
	}
	if _, ok := EnableFusedFold(fedavg, mkPipe("clip:1,f16")); !ok {
		t.Error("f16 pipeline did not fuse for FedAvg")
	}
	ice := NewICEADMMServer(testVec(dim, 1), 2, 2)
	if _, ok := EnableFusedFold(ice, mkPipe("clip:1,f16")); ok {
		t.Error("ADMM server fused — it has no encoded-source fold")
	}
}

// TestDecodeUpdatesFusedRejects: the fused screen must enforce the same
// anti-smuggling and anti-DoS rules as the two-pass path.
func TestDecodeUpdatesFusedRejects(t *testing.T) {
	const dim = 64
	cfg := Config{Algorithm: AlgoFedAvg, Pipeline: "clip:1,f16"}.WithDefaults()
	inv, err := NewServerPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := inv.Fused()
	if !ok {
		t.Fatal("f16 stack did not fuse")
	}
	mk := func(p *wire.Payload) []*wire.LocalUpdate {
		return []*wire.LocalUpdate{{ClientID: 3, NumSamples: 8, PrimalP: p}}
	}
	if err := DecodeUpdatesFused(mk(&wire.Payload{Enc: wire.EncFloat16, Dim: 1 << 30, Codes: nil}), fs, dim); err == nil {
		t.Error("oversized payload dimension accepted")
	}
	if err := DecodeUpdatesFused(mk(&wire.Payload{Enc: wire.EncQuant, Dim: dim, Bits: 8, Codes: make([]byte, dim)}), fs, dim); err == nil {
		t.Error("smuggled quant encoding accepted by an f16 stack")
	}
	if err := DecodeUpdatesFused(mk(&wire.Payload{Enc: wire.EncFloat16, Dim: dim, Codes: make([]byte, 3)}), fs, dim); err == nil {
		t.Error("structurally invalid payload accepted")
	}
	good := mk(&wire.Payload{Enc: wire.EncFloat16, Dim: dim, Codes: make([]byte, 2*dim)})
	if err := DecodeUpdatesFused(good, fs, dim); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
	if good[0].PrimalP == nil {
		t.Error("fused screen densified the payload — it must stay encoded")
	}
}

// TestAggPrecisionF32ErrorBound is the documented property test of the
// f32 path: at dim 1e6 and K=8, the single-precision aggregate must stay
// within 1e-5 relative L2 error of the double-precision aggregate, for
// both the FedAvg batch average and the buffered staleness-weighted rule.
func TestAggPrecisionF32ErrorBound(t *testing.T) {
	const (
		dim = 1_000_000
		k   = 8
	)
	relErr := func(f64w, f32w []float64) float64 {
		var num, den float64
		for i := range f64w {
			d := f32w[i] - f64w[i]
			num += d * d
			den += f64w[i] * f64w[i]
		}
		return math.Sqrt(num / den)
	}
	w0 := testVec(dim, 1)
	batch := testBatch(k, dim, 60)

	t.Run("fedavg", func(t *testing.T) {
		mk := func(prec string) Aggregator {
			cfg := Config{Algorithm: AlgoFedAvg, AggPrecision: prec}.WithDefaults()
			a, err := NewAggregator(cfg, w0, k)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		a64, a32 := mk(AggF64), mk(AggF32)
		if err := a64.Aggregate(batch); err != nil {
			t.Fatal(err)
		}
		if err := a32.Aggregate(batch); err != nil {
			t.Fatal(err)
		}
		if rel := relErr(a64.Weights(), a32.Weights()); rel > 1e-5 {
			t.Fatalf("f32 FedAvg aggregate relative error %v > 1e-5 at dim %d", rel, dim)
		}
	})
	t.Run("buffered", func(t *testing.T) {
		mk := func(prec string) Aggregator {
			cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: k, AggPrecision: prec}.WithDefaults()
			a, err := NewAggregator(cfg, w0, k)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		a64, a32 := mk(AggF64), mk(AggF32)
		if err := a64.Aggregate(batch); err != nil {
			t.Fatal(err)
		}
		if err := a32.Aggregate(batch); err != nil {
			t.Fatal(err)
		}
		if rel := relErr(a64.Weights(), a32.Weights()); rel > 1e-5 {
			t.Fatalf("f32 buffered aggregate relative error %v > 1e-5 at dim %d", rel, dim)
		}
	})
}

// TestAggPrecisionDefaultsToF64: the flag must be opt-in.
func TestAggPrecisionDefaultsToF64(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg}.WithDefaults()
	if cfg.AggPrecision != AggF64 {
		t.Fatalf("default AggPrecision = %q, want %q", cfg.AggPrecision, AggF64)
	}
	if err := (Config{Algorithm: AlgoIIADMM, AggPrecision: AggF32}).WithDefaults().Validate(); err == nil {
		t.Fatal("f32 accepted for an ADMM algorithm")
	}
	if err := (Config{Algorithm: AlgoFedAvg, AggPrecision: "f128"}).WithDefaults().Validate(); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

// TestF32DownlinkEncodeMatchesWiden: the f16 downlink fed straight from
// the f32 accumulator must produce the exact codes of widening to f64
// first — the bit-equivalence that justifies skipping the widening sweep.
func TestF32DownlinkEncodeMatchesWiden(t *testing.T) {
	const dim = 4096
	w64 := testVec(dim, 5)
	w32 := make([]float32, dim)
	for i, v := range w64 {
		w32[i] = float32(v)
	}
	widened := make([]float64, dim)
	for i, v := range w32 {
		widened[i] = float64(v)
	}
	gmA := &wire.GlobalModel{Weights: widened}
	if _, err := EncodeDownlinkF16Into(gmA, nil); err != nil {
		t.Fatal(err)
	}
	gmB := &wire.GlobalModel{}
	if _, err := EncodeDownlinkF16From32(gmB, w32, nil); err != nil {
		t.Fatal(err)
	}
	if len(gmA.WeightsP.Codes) != len(gmB.WeightsP.Codes) {
		t.Fatal("code lengths differ")
	}
	for i := range gmA.WeightsP.Codes {
		if gmA.WeightsP.Codes[i] != gmB.WeightsP.Codes[i] {
			t.Fatalf("code byte %d differs", i)
		}
	}
}

// TestRunWithF32AndFusedPipeline: the full runner path with the f32
// accumulator, a fused f16 upload stack, and the f16 downlink completes
// and produces a finite model.
func TestRunWithF32AndFusedPipeline(t *testing.T) {
	fed := parallelTestFed(3, 96, 32, 21)
	cfg := Config{
		Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 21,
		Pipeline: "clip:1,f16", DownlinkF16: true, AggPrecision: AggF32,
	}
	res, err := Run(cfg, fed, parallelTestFactory(21), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(res.Rounds))
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("f32 run produced loss %v", res.FinalLoss)
	}
}

// TestFusedAggregateZeroAllocs extends the steady-state allocation pin to
// the fused path: folding still-encoded f16 payloads must not allocate.
func TestFusedAggregateZeroAllocs(t *testing.T) {
	const dim = 8 * minShard
	cfg := Config{Algorithm: AlgoFedAvg, Pipeline: "clip:1,f16"}.WithDefaults()
	inv, err := NewServerPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		srv := NewFedAvgServer(testVec(dim, 1), 4)
		srv.Workers = workers
		fs, ok := EnableFusedFold(srv, inv)
		if !ok {
			t.Fatal("f16 stack did not fuse")
		}
		batch := encodedBatch(t, cfg, 4, dim, 31, nil)
		if err := DecodeUpdatesFused(batch, fs, dim); err != nil {
			t.Fatal(err)
		}
		srv.Aggregate(batch) // warm-up: starts pool workers, sizes scratch
		if avg := testing.AllocsPerRun(20, func() {
			if err := srv.Aggregate(batch); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("fused aggregate allocates %.1f objects/op at %d workers, want 0", avg, workers)
		}
	}
}
