package core

import "math"

// AdaptiveRho implements residual balancing (Boyd et al. 2011, §3.4.1; the
// "adaptive penalty" the paper plans in Section V, item 2, citing adaptive
// consensus ADMM): after each round, ρ is increased when the primal
// residual dominates the dual residual and decreased in the opposite case,
// keeping the two within a factor μ of each other.
//
//	r_t = sqrt(Σ_p ‖w − z_p‖²)   (primal residual)
//	d_t = ρ · sqrt(P) · ‖w − w_prev‖   (dual residual proxy)
type AdaptiveRho struct {
	Rho    float64 // current penalty
	Mu     float64 // imbalance tolerance (default 10)
	Tau    float64 // multiplicative step (default 2)
	MinRho float64 // lower clamp
	MaxRho float64 // upper clamp
}

// NewAdaptiveRho builds the controller with the standard constants.
func NewAdaptiveRho(rho0 float64) *AdaptiveRho {
	return &AdaptiveRho{Rho: rho0, Mu: 10, Tau: 2, MinRho: rho0 / 64, MaxRho: rho0 * 64}
}

// Residuals computes the primal and dual residuals from the new global
// model, the previous global model, and the gathered client primals.
func Residuals(w, wPrev []float64, primals [][]float64, rho float64) (primal, dual float64) {
	for _, z := range primals {
		s := 0.0
		for i := range w {
			d := w[i] - z[i]
			s += d * d
		}
		primal += s
	}
	primal = math.Sqrt(primal)
	s := 0.0
	for i := range w {
		d := w[i] - wPrev[i]
		s += d * d
	}
	dual = rho * math.Sqrt(float64(len(primals))) * math.Sqrt(s)
	return primal, dual
}

// Step updates ρ from the residual pair and returns the new value.
func (a *AdaptiveRho) Step(primal, dual float64) float64 {
	switch {
	case primal > a.Mu*dual:
		a.Rho *= a.Tau
	case dual > a.Mu*primal:
		a.Rho /= a.Tau
	}
	if a.Rho < a.MinRho {
		a.Rho = a.MinRho
	}
	if a.Rho > a.MaxRho {
		a.Rho = a.MaxRho
	}
	return a.Rho
}
