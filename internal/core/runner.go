package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	mpicomm "repro/internal/comm/mpi"
	"repro/internal/comm/pubsub"
	"repro/internal/comm/rpc"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Transport selects the communication backend of a simulated run.
type Transport string

// Supported transports.
const (
	TransportMPI    Transport = "mpi"    // in-process collectives (RDMA stand-in)
	TransportPubSub Transport = "pubsub" // topic broker (MQTT stand-in)
	TransportRPC    Transport = "rpc"    // loopback TCP RPC (gRPC stand-in)
)

// RoundStats records one communication round of a run. Under the buffered
// scheduler a "round" is one buffer release (K arrivals aggregated).
type RoundStats struct {
	Round      int
	TestLoss   float64
	TestAcc    float64
	ComputeSec float64 // slowest client's local update time (wall clock)
	WallSec    float64 // end-to-end round time at the server
	CohortSize int     // clients scheduled (barrier) or aggregated (buffered)
}

// Result aggregates a full run.
type Result struct {
	Config     Config
	Rounds     []RoundStats
	FinalAcc   float64
	FinalLoss  float64
	Server     comm.Snapshot // server-side traffic totals
	UploadsB   uint64        // client→server bytes (sum over clients)
	DownloadsB uint64        // server→client bytes
	ModelDim   int
	// Stale counts buffered updates that were folded with staleness > 0;
	// Dropped counts those discarded for exceeding MaxStaleness.
	Stale, Dropped int
	// Echoes counts zero-weight echo updates from the legacy client-side
	// partial-participation path (LocalUpdate.InCohort == false).
	Echoes int
}

// RunOptions tunes the runner.
type RunOptions struct {
	Transport     Transport
	ValidateEvery int       // validate every k rounds (0 = every round)
	Progress      io.Writer // optional per-round progress lines
	MaxParallel   int       // cap on concurrently training clients (0 = NumCPU)
	// ClientDelay, when non-nil, injects a per-update artificial delay for
	// the given client before its upload — the straggler model used by the
	// scheduler benchmarks (a slow device or link, without burning CPU).
	ClientDelay func(client, round int) time.Duration
}

// newServerTransport builds the server and client transports for a run.
func newServerTransport(tr Transport, P, dim, rounds int) (comm.ServerTransport, []comm.ClientTransport, error) {
	switch tr {
	case TransportPubSub:
		s, cs, err := pubsub.NewFLBroker(P)
		if err != nil {
			return nil, nil, err
		}
		cts := make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
		return s, cts, nil
	case TransportRPC:
		srv, err := rpc.Listen("127.0.0.1:0", rpc.ServerConfig{
			NumClients: P,
			Rounds:     rounds,
			ModelSize:  dim,
		})
		if err != nil {
			return nil, nil, err
		}
		acceptErr := make(chan error, 1)
		go func() { acceptErr <- srv.Accept() }()
		cts := make([]comm.ClientTransport, P)
		dialErrs := make([]error, P)
		var dialWG sync.WaitGroup
		for i := 0; i < P; i++ {
			dialWG.Add(1)
			go func(i int) {
				defer dialWG.Done()
				c, err := rpc.Dial(srv.Addr(), uint32(i), fmt.Sprintf("sim-client-%d", i))
				if err != nil {
					dialErrs[i] = err
					return
				}
				cts[i] = c
			}(i)
		}
		dialWG.Wait()
		for i, err := range dialErrs {
			if err != nil {
				srv.Close()
				return nil, nil, fmt.Errorf("core: dialing client %d: %w", i, err)
			}
		}
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, nil, fmt.Errorf("core: accepting clients: %w", err)
		}
		return srv, cts, nil
	case TransportMPI, "":
		s, cs := mpicomm.NewFLWorld(P)
		cts := make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
		return s, cts, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown transport %q", tr)
	}
}

// Run executes a federated simulation of cfg over fed using model replicas
// from factory, and returns per-round statistics. All clients run as
// goroutines against a real transport backend, exactly as APPFL's MPI
// simulation runs one process per client. The round structure is decided
// by the configured Scheduler (which clients participate, when a batch is
// released) and the model update by the matching Aggregator.
func Run(cfg Config, fed *dataset.Federated, factory nn.Factory, opts RunOptions) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := fed.NumClients()
	if P == 0 {
		return nil, fmt.Errorf("core: no clients in federated dataset")
	}

	// Shared initial model: one replica defines w0 for everyone.
	refModel := factory()
	w0 := nn.FlattenParams(refModel, nil)
	dim := len(w0)

	master := rng.New(cfg.Seed)
	sched, err := NewScheduler(cfg, P)
	if err != nil {
		return nil, err
	}
	agg, err := NewAggregator(cfg, w0, P)
	if err != nil {
		return nil, err
	}

	st, cts, err := newServerTransport(opts.Transport, P, dim, cfg.Rounds)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// The server's inverse-only pipeline undoes the compression stages of
	// every received payload before a batch reaches the Aggregator.
	serverPipe, err := NewServerPipeline(cfg)
	if err != nil {
		return nil, err
	}

	// Clients: own replica, own RNG stream, own update pipeline.
	clients := make([]ClientAlgorithm, P)
	for i := 0; i < P; i++ {
		cr := master.Split()
		pipe, err := NewClientPipeline(cfg, cr)
		if err != nil {
			return nil, err
		}
		model := factory()
		nn.SetParams(model, w0)
		c, err := NewClient(cfg, i, model, fed.Clients[i], w0, pipe, cr)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	// Client loop goroutines. A semaphore bounds concurrent training to the
	// machine's parallelism so 203-client runs don't thrash. Each received
	// non-final model obliges exactly one uploaded update, stamped with the
	// model version it was trained from.
	maxPar := opts.MaxParallel
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	clientErrs := make([]error, P)
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ct := cts[i]
			defer ct.Close()
			for {
				gm, err := ct.RecvGlobal()
				if err != nil {
					clientErrs[i] = err
					return
				}
				if gm.Final {
					return
				}
				if derr := DecodeGlobal(gm); derr != nil {
					clientErrs[i] = derr
					return
				}
				if gm.Rho > 0 {
					if rs, ok := clients[i].(interface{ SetRho(float64) }); ok {
						rs.SetRho(gm.Rho)
					}
				}
				sem <- struct{}{}
				up, err := clients[i].LocalUpdate(int(gm.Round), gm.Weights)
				<-sem
				if err != nil {
					clientErrs[i] = err
					return
				}
				up.BaseVersion = gm.Version
				if opts.ClientDelay != nil {
					if d := opts.ClientDelay(i, int(gm.Round)); d > 0 {
						time.Sleep(d)
					}
				}
				if err := ct.SendUpdate(up); err != nil {
					clientErrs[i] = err
					return
				}
			}
		}(i)
	}

	res := &Result{Config: cfg, ModelDim: dim}
	validateEvery := opts.ValidateEvery
	if validateEvery <= 0 {
		validateEvery = 1
	}

	loop := runBarrierRounds
	if !sched.Barrier() {
		loop = runBufferedReleases
	}
	runErr := loop(cfg, sched, agg, serverPipe, st, refModel, fed, res, validateEvery, opts.Progress)
	if runErr != nil {
		return nil, runErr
	}

	// Shut clients down and surface any client error.
	if err := st.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		return nil, fmt.Errorf("core: final broadcast: %w", err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", i, err)
		}
	}

	snap := st.Stats()
	res.Server = snap
	res.UploadsB = snap.BytesRecv
	res.DownloadsB = snap.BytesSent
	if n := len(res.Rounds); n > 0 {
		res.FinalAcc = res.Rounds[n-1].TestAcc
		res.FinalLoss = res.Rounds[n-1].TestLoss
	}
	return res, nil
}

// recordRound finalizes one round's statistics, validating on cadence.
func recordRound(res *Result, rs RoundStats, agg Aggregator, evalModel nn.Module, fed *dataset.Federated,
	rounds, validateEvery int, start time.Time, wbuf []float64, progress io.Writer) {
	if fed.Test != nil && (rs.Round%validateEvery == 0 || rs.Round == rounds) {
		rs.TestLoss, rs.TestAcc = EvaluateWeights(evalModel, agg.WeightsInto(wbuf), fed.Test, 256)
	}
	rs.WallSec = time.Since(start).Seconds()
	res.Rounds = append(res.Rounds, rs)
	if progress != nil {
		fmt.Fprintf(progress, "round %3d  cohort %3d  acc %.4f  loss %.4f  compute %.3fs  wall %.3fs\n",
			rs.Round, rs.CohortSize, rs.TestAcc, rs.TestLoss, rs.ComputeSec, rs.WallSec)
	}
}

// runBarrierRounds drives the classic synchronous structure: each round
// the scheduler picks a cohort, the server sends the model to exactly that
// cohort, blocks until the whole cohort reports, and aggregates. With the
// SyncAll schedule this reproduces the pre-refactor loop bit for bit.
func runBarrierRounds(cfg Config, sched Scheduler, agg Aggregator, serverPipe *pipeline.Pipeline, st comm.ServerTransport,
	evalModel nn.Module, fed *dataset.Federated, res *Result, validateEvery int, progress io.Writer) error {
	rhoReporter, _ := agg.(interface{ CurrentRho() float64 })
	var wbuf []float64
	for t := 1; t <= cfg.Rounds; t++ {
		roundStart := time.Now()
		cohort := sched.Cohort(t)
		wbuf = agg.WeightsInto(wbuf)
		gm := &wire.GlobalModel{
			Round:      uint32(t),
			Weights:    wbuf,
			Version:    uint64(agg.Version()),
			CohortSize: uint32(len(cohort)),
		}
		if cfg.AdaptiveRho && rhoReporter != nil {
			gm.Rho = rhoReporter.CurrentRho()
		}
		if cfg.DownlinkF16 {
			if err := EncodeDownlinkF16(gm); err != nil {
				return fmt.Errorf("core: downlink round %d: %w", t, err)
			}
		}
		if err := st.SendTo(cohort, gm); err != nil {
			return fmt.Errorf("core: send round %d: %w", t, err)
		}
		updates, err := st.GatherFrom(cohort)
		if err != nil {
			return fmt.Errorf("core: gather round %d: %w", t, err)
		}
		if err := DecodeUpdates(updates, serverPipe, agg.Dim()); err != nil {
			return fmt.Errorf("core: decode round %d: %w", t, err)
		}
		maxCompute := 0.0
		for _, u := range updates {
			if u.ComputeSec > maxCompute {
				maxCompute = u.ComputeSec
			}
			if !u.InCohort {
				res.Echoes++
			}
		}
		if err := agg.Aggregate(updates); err != nil {
			return fmt.Errorf("core: aggregate round %d: %w", t, err)
		}
		rs := RoundStats{Round: t, ComputeSec: maxCompute, CohortSize: len(cohort)}
		recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, roundStart, wbuf, progress)
	}
	return nil
}

// runBufferedReleases drives the FedBuff-style semi-asynchronous
// structure: every client trains continuously against the freshest model
// it has; the server releases an aggregation as soon as K updates arrive
// (in arrival order, regardless of origin) and immediately re-dispatches
// the new model to exactly the clients that contributed. Stragglers never
// block a release; their updates arrive with positive staleness and are
// down-weighted or dropped by the BufferedAggregator.
func runBufferedReleases(cfg Config, sched Scheduler, agg Aggregator, serverPipe *pipeline.Pipeline, st comm.ServerTransport,
	evalModel nn.Module, fed *dataset.Federated, res *Result, validateEvery int, progress io.Writer) error {
	quorum := sched.Quorum()
	var wbuf []float64
	dispatch := func(ids []int, round int) error {
		wbuf = agg.WeightsInto(wbuf)
		gm := &wire.GlobalModel{
			Round:      uint32(round),
			Weights:    wbuf,
			Version:    uint64(agg.Version()),
			CohortSize: uint32(len(ids)),
		}
		if cfg.DownlinkF16 {
			if err := EncodeDownlinkF16(gm); err != nil {
				return fmt.Errorf("core: downlink release %d: %w", round, err)
			}
		}
		return st.SendTo(ids, gm)
	}
	all := sched.Cohort(1)
	if err := dispatch(all, 1); err != nil {
		return fmt.Errorf("core: initial dispatch: %w", err)
	}
	outstanding := len(all)

	buffered, _ := agg.(*BufferedAggregator)
	for rel := 1; rel <= cfg.Rounds; rel++ {
		relStart := time.Now()
		batch, err := st.GatherAny(quorum)
		if err != nil {
			return fmt.Errorf("core: release %d: %w", rel, err)
		}
		if err := DecodeUpdates(batch, serverPipe, agg.Dim()); err != nil {
			return fmt.Errorf("core: decode release %d: %w", rel, err)
		}
		outstanding -= len(batch)
		maxCompute := 0.0
		for _, u := range batch {
			if u.ComputeSec > maxCompute {
				maxCompute = u.ComputeSec
			}
		}
		// The aggregator is the authority on what was actually folded vs
		// dropped; read its counters rather than re-deriving staleness here.
		prevStale, prevDropped := 0, 0
		if buffered != nil {
			prevStale, prevDropped = buffered.StaleApplied, buffered.Dropped
		}
		if err := agg.Aggregate(batch); err != nil {
			return fmt.Errorf("core: aggregate release %d: %w", rel, err)
		}
		if buffered != nil {
			res.Stale += buffered.StaleApplied - prevStale
			res.Dropped += buffered.Dropped - prevDropped
		}
		// Hand the contributors the fresh model so they keep training —
		// unless the run is over, in which case they wait for Final.
		if rel < cfg.Rounds {
			ids := make([]int, len(batch))
			for i, u := range batch {
				ids[i] = int(u.ClientID)
			}
			if err := dispatch(ids, rel+1); err != nil {
				return fmt.Errorf("core: re-dispatch after release %d: %w", rel, err)
			}
			outstanding += len(ids)
		}
		rs := RoundStats{Round: rel, ComputeSec: maxCompute, CohortSize: len(batch)}
		recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, relStart, wbuf, progress)
	}
	// Drain in-flight stragglers so their uploads don't block shutdown.
	if outstanding > 0 {
		if _, err := st.GatherAny(outstanding); err != nil {
			return fmt.Errorf("core: draining %d stragglers: %w", outstanding, err)
		}
	}
	return nil
}
