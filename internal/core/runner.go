package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	mpicomm "repro/internal/comm/mpi"
	"repro/internal/comm/pubsub"
	"repro/internal/comm/rpc"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Transport selects the communication backend of a simulated run.
type Transport string

// Supported transports.
const (
	TransportMPI    Transport = "mpi"    // in-process collectives (RDMA stand-in)
	TransportPubSub Transport = "pubsub" // topic broker (MQTT stand-in)
	TransportRPC    Transport = "rpc"    // loopback TCP RPC (gRPC stand-in)
)

// RoundStats records one communication round of a run.
type RoundStats struct {
	Round      int
	TestLoss   float64
	TestAcc    float64
	ComputeSec float64 // slowest client's local update time (wall clock)
	WallSec    float64 // end-to-end round time at the server
}

// Result aggregates a full run.
type Result struct {
	Config     Config
	Rounds     []RoundStats
	FinalAcc   float64
	FinalLoss  float64
	Server     comm.Snapshot // server-side traffic totals
	UploadsB   uint64        // client→server bytes (sum over clients)
	DownloadsB uint64        // server→client bytes
	ModelDim   int
}

// RunOptions tunes the runner.
type RunOptions struct {
	Transport     Transport
	ValidateEvery int       // validate every k rounds (0 = every round)
	Progress      io.Writer // optional per-round progress lines
	MaxParallel   int       // cap on concurrently training clients (0 = NumCPU)
}

// Run executes a synchronous federated simulation of cfg over fed using
// model replicas from factory, and returns per-round statistics. All
// clients run as goroutines against a real transport backend, exactly as
// APPFL's MPI simulation runs one process per client.
func Run(cfg Config, fed *dataset.Federated, factory nn.Factory, opts RunOptions) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := fed.NumClients()
	if P == 0 {
		return nil, fmt.Errorf("core: no clients in federated dataset")
	}

	// Shared initial model: one replica defines w0 for everyone.
	refModel := factory()
	w0 := nn.FlattenParams(refModel, nil)
	dim := len(w0)

	master := rng.New(cfg.Seed)
	server, err := NewServer(cfg, w0, P)
	if err != nil {
		return nil, err
	}

	// Transports.
	var st comm.ServerTransport
	var cts []comm.ClientTransport
	switch opts.Transport {
	case TransportPubSub:
		s, cs, err := pubsub.NewFLBroker(P)
		if err != nil {
			return nil, err
		}
		st = s
		cts = make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
	case TransportRPC:
		srv, err := rpc.Listen("127.0.0.1:0", rpc.ServerConfig{
			NumClients: P,
			Rounds:     cfg.Rounds,
			ModelSize:  dim,
		})
		if err != nil {
			return nil, err
		}
		acceptErr := make(chan error, 1)
		go func() { acceptErr <- srv.Accept() }()
		cts = make([]comm.ClientTransport, P)
		dialErrs := make([]error, P)
		var dialWG sync.WaitGroup
		for i := 0; i < P; i++ {
			dialWG.Add(1)
			go func(i int) {
				defer dialWG.Done()
				c, err := rpc.Dial(srv.Addr(), uint32(i), fmt.Sprintf("sim-client-%d", i))
				if err != nil {
					dialErrs[i] = err
					return
				}
				cts[i] = c
			}(i)
		}
		dialWG.Wait()
		for i, err := range dialErrs {
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("core: dialing client %d: %w", i, err)
			}
		}
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, fmt.Errorf("core: accepting clients: %w", err)
		}
		st = srv
	case TransportMPI, "":
		s, cs := mpicomm.NewFLWorld(P)
		st = s
		cts = make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
	default:
		return nil, fmt.Errorf("core: unknown transport %q", opts.Transport)
	}
	defer st.Close()

	// Clients: own replica, own RNG stream, own DP mechanism.
	clients := make([]ClientAlgorithm, P)
	for i := 0; i < P; i++ {
		cr := master.Split()
		var mech dp.Mechanism = dp.None{}
		if !math.IsInf(cfg.Epsilon, 1) {
			mech = dp.NewLaplace(cfg.Epsilon, cr.Split())
		}
		model := factory()
		nn.SetParams(model, w0)
		c, err := NewClient(cfg, i, model, fed.Clients[i], w0, mech, cr)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	// Client loop goroutines. A semaphore bounds concurrent training to the
	// machine's parallelism so 203-client runs don't thrash.
	maxPar := opts.MaxParallel
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	clientErrs := make([]error, P)
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ct := cts[i]
			defer ct.Close()
			for {
				gm, err := ct.RecvGlobal()
				if err != nil {
					clientErrs[i] = err
					return
				}
				if gm.Final {
					return
				}
				if gm.Rho > 0 {
					if rs, ok := clients[i].(interface{ SetRho(float64) }); ok {
						rs.SetRho(gm.Rho)
					}
				}
				sem <- struct{}{}
				up, err := clients[i].LocalUpdate(int(gm.Round), gm.Weights)
				<-sem
				if err != nil {
					clientErrs[i] = err
					return
				}
				if err := ct.SendUpdate(up); err != nil {
					clientErrs[i] = err
					return
				}
			}
		}(i)
	}

	res := &Result{Config: cfg, ModelDim: dim}
	validateEvery := opts.ValidateEvery
	if validateEvery <= 0 {
		validateEvery = 1
	}
	evalModel := refModel

	rhoReporter, _ := server.(interface{ CurrentRho() float64 })
	for t := 1; t <= cfg.Rounds; t++ {
		roundStart := time.Now()
		gm := &wire.GlobalModel{Round: uint32(t), Weights: server.GlobalWeights()}
		if cfg.AdaptiveRho && rhoReporter != nil {
			gm.Rho = rhoReporter.CurrentRho()
		}
		if err := st.Broadcast(gm); err != nil {
			return nil, fmt.Errorf("core: broadcast round %d: %w", t, err)
		}
		updates, err := st.Gather()
		if err != nil {
			return nil, fmt.Errorf("core: gather round %d: %w", t, err)
		}
		maxCompute := 0.0
		for _, u := range updates {
			if u.ComputeSec > maxCompute {
				maxCompute = u.ComputeSec
			}
		}
		if err := server.Update(updates); err != nil {
			return nil, fmt.Errorf("core: server update round %d: %w", t, err)
		}
		rs := RoundStats{Round: t, ComputeSec: maxCompute}
		if fed.Test != nil && (t%validateEvery == 0 || t == cfg.Rounds) {
			rs.TestLoss, rs.TestAcc = EvaluateWeights(evalModel, server.GlobalWeights(), fed.Test, 256)
		}
		rs.WallSec = time.Since(roundStart).Seconds()
		res.Rounds = append(res.Rounds, rs)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "round %3d  acc %.4f  loss %.4f  compute %.3fs  wall %.3fs\n",
				t, rs.TestAcc, rs.TestLoss, rs.ComputeSec, rs.WallSec)
		}
	}

	// Shut clients down and surface any client error.
	if err := st.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		return nil, fmt.Errorf("core: final broadcast: %w", err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", i, err)
		}
	}

	snap := st.Stats()
	res.Server = snap
	res.UploadsB = snap.BytesRecv
	res.DownloadsB = snap.BytesSent
	if n := len(res.Rounds); n > 0 {
		res.FinalAcc = res.Rounds[n-1].TestAcc
		res.FinalLoss = res.Rounds[n-1].TestLoss
	}
	return res, nil
}
