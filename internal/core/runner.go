package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	mpicomm "repro/internal/comm/mpi"
	"repro/internal/comm/pubsub"
	"repro/internal/comm/rpc"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Transport selects the communication backend of a simulated run.
type Transport string

// Supported transports.
const (
	TransportMPI    Transport = "mpi"    // in-process collectives (RDMA stand-in)
	TransportPubSub Transport = "pubsub" // topic broker (MQTT stand-in)
	TransportRPC    Transport = "rpc"    // loopback TCP RPC (gRPC stand-in)
)

// RoundStats records one communication round of a run. Under the buffered
// scheduler a "round" is one buffer release (K arrivals aggregated).
type RoundStats struct {
	Round      int
	TestLoss   float64
	TestAcc    float64
	ComputeSec float64 // slowest client's local update time (wall clock)
	WallSec    float64 // end-to-end round time at the server
	CohortSize int     // clients scheduled (barrier) or aggregated (buffered)
}

// Result aggregates a full run.
type Result struct {
	Config     Config
	Rounds     []RoundStats
	FinalAcc   float64
	FinalLoss  float64
	Server     comm.Snapshot // server-side traffic totals
	UploadsB   uint64        // client→server bytes (sum over clients)
	DownloadsB uint64        // server→client bytes
	ModelDim   int
	// Stale counts buffered updates that were folded with staleness > 0;
	// Dropped counts those discarded for exceeding MaxStaleness.
	Stale, Dropped int
	// Echoes counts zero-weight echo updates from the legacy client-side
	// partial-participation path (LocalUpdate.InCohort == false).
	Echoes int
	// Crashed counts the clients presumed dead when the run ended:
	// permanent goodbyes plus clients whose last scheduled round timed out
	// unresolved. Rejoined counts departures that came back (goodbye with a
	// rejoin lease, honored). TimedOut counts timed-out update obligations
	// over the whole run — how often the server gave up waiting.
	Crashed, Rejoined, TimedOut int
	// Soak accounts the crash-and-recover history of a journaled run
	// (RunOptions.Journal); nil otherwise.
	Soak *SoakStats
}

// RunOptions tunes the runner.
type RunOptions struct {
	Transport     Transport
	ValidateEvery int       // validate every k rounds (0 = every round)
	Progress      io.Writer // optional per-round progress lines
	MaxParallel   int       // cap on concurrently training clients (0 = NumCPU)
	// ClientDelay, when non-nil, injects a per-update artificial delay for
	// the given client before its upload — the straggler model used by the
	// scheduler benchmarks (a slow device or link, without burning CPU).
	ClientDelay func(client, round int) time.Duration
	// Faults, when non-nil, wraps every transport endpoint with the
	// deterministic fault-injection layer so the run executes the
	// injector's scripted plan (crashes, drops, delays, rejoins, reorder).
	// Pair it with Config.RoundTimeout, or a crashed client hangs a
	// barrier round exactly as an unprotected deployment would.
	Faults *faults.Injector

	// Journal, when non-nil, makes the run durable: every recovery-relevant
	// transition (round start, admitted update, roster mutation, commit) is
	// journaled before it takes effect, and a run started over a non-empty
	// journal resumes exactly where the crashed one died — completing its
	// in-flight round from the journaled admits — instead of starting over.
	// FedAvg-family flat-accumulator configurations only; see
	// validateJournalConfig.
	Journal *journal.Journal
	// CheckpointEvery compacts the journal into a checkpoint every k
	// commits (0 = never; the WAL then grows for the whole run).
	CheckpointEvery int
	// Kills schedules in-process server deaths (kill -9 semantics: the
	// scheduler/aggregator/membership state is discarded mid-round with no
	// cleanup and rebuilt from the journal; the transports survive, playing
	// the role of the listening socket plus session resumption). Scripted
	// killserver events from Faults are appended to this schedule with the
	// kill window cycled per event. Requires Journal.
	Kills []ServerKill
	// Gate, when non-nil, throttles when each admitted batch's server-side
	// decode+fold may start — the hook a multi-tenant host uses to share
	// the process-wide aggregation workers fairly across tenants. Timing
	// only: a gated run's trajectory is bit-identical to the ungated run.
	Gate AdmissionGate
}

// newServerTransport builds the server and client transports for a run.
func newServerTransport(tr Transport, P, dim, rounds int) (comm.ServerTransport, []comm.ClientTransport, error) {
	switch tr {
	case TransportPubSub:
		s, cs, err := pubsub.NewFLBroker(P)
		if err != nil {
			return nil, nil, err
		}
		cts := make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
		return s, cts, nil
	case TransportRPC:
		srv, err := rpc.Listen("127.0.0.1:0", rpc.ServerConfig{
			NumClients: P,
			Rounds:     rounds,
			ModelSize:  dim,
		})
		if err != nil {
			return nil, nil, err
		}
		acceptErr := make(chan error, 1)
		go func() { acceptErr <- srv.Accept() }()
		cts := make([]comm.ClientTransport, P)
		dialErrs := make([]error, P)
		var dialWG sync.WaitGroup
		for i := 0; i < P; i++ {
			dialWG.Add(1)
			go func(i int) {
				defer dialWG.Done()
				c, err := rpc.Dial(srv.Addr(), uint32(i), fmt.Sprintf("sim-client-%d", i))
				if err != nil {
					dialErrs[i] = err
					return
				}
				cts[i] = c
			}(i)
		}
		dialWG.Wait()
		for i, err := range dialErrs {
			if err != nil {
				srv.Close()
				return nil, nil, fmt.Errorf("core: dialing client %d: %w", i, err)
			}
		}
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, nil, fmt.Errorf("core: accepting clients: %w", err)
		}
		return srv, cts, nil
	case TransportMPI, "":
		s, cs := mpicomm.NewFLWorld(P)
		cts := make([]comm.ClientTransport, P)
		for i := range cs {
			cts[i] = cs[i]
		}
		return s, cts, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown transport %q", tr)
	}
}

// Run executes a federated simulation of cfg over fed using model replicas
// from factory, and returns per-round statistics. All clients run as
// goroutines against a real transport backend, exactly as APPFL's MPI
// simulation runs one process per client. The round structure is decided
// by the configured Scheduler (which clients participate, when a batch is
// released) and the model update by the matching Aggregator.
func Run(cfg Config, fed *dataset.Federated, factory nn.Factory, opts RunOptions) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := fed.NumClients()
	if P == 0 {
		return nil, fmt.Errorf("core: no clients in federated dataset")
	}
	refModel := factory()
	dim := len(nn.FlattenParams(refModel, nil))
	st, cts, err := newServerTransport(opts.Transport, P, dim, cfg.Rounds)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return RunWithTransport(cfg, fed, factory, opts, st, cts)
}

// RunWithTransport is Run over caller-supplied transports: st serves the
// run's server side and cts[i] client i. The caller keeps ownership of st
// (it is NOT closed here — a multi-tenant host passes per-tenant views of
// one shared server and closes that server itself); client transports are
// closed as their goroutines exit, as in Run. opts.Transport is ignored.
func RunWithTransport(cfg Config, fed *dataset.Federated, factory nn.Factory, opts RunOptions,
	st comm.ServerTransport, cts []comm.ClientTransport) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := fed.NumClients()
	if P == 0 {
		return nil, fmt.Errorf("core: no clients in federated dataset")
	}
	if len(cts) != P {
		return nil, fmt.Errorf("core: %d client transports for %d clients", len(cts), P)
	}

	// Shared initial model: one replica defines w0 for everyone.
	refModel := factory()
	w0 := nn.FlattenParams(refModel, nil)
	dim := len(w0)

	master := rng.New(cfg.Seed)
	sched, err := NewScheduler(cfg, P)
	if err != nil {
		return nil, err
	}
	agg, err := NewAggregator(cfg, w0, P)
	if err != nil {
		return nil, err
	}
	// The closure closes whatever aggregator is current at exit — recovery
	// replaces agg, and the discarded one is closed at the kill site.
	defer func() { closeAggregator(agg) }()

	// The fault layer wraps both ends of every link; the wrappers execute
	// the injector's deterministic script and the unwrapped path is
	// untouched when no injector is configured.
	if opts.Faults != nil {
		st = opts.Faults.WrapServer(st)
		for i := range cts {
			cts[i] = opts.Faults.WrapClient(i, cts[i])
		}
	}

	// The server's inverse-only pipeline undoes the compression stages of
	// every received payload before a batch reaches the Aggregator.
	serverPipe, err := NewServerPipeline(cfg)
	if err != nil {
		return nil, err
	}

	// Clients: own replica, own RNG stream, own update pipeline.
	clients := make([]ClientAlgorithm, P)
	for i := 0; i < P; i++ {
		cr := master.Split()
		pipe, err := NewClientPipeline(cfg, cr)
		if err != nil {
			return nil, err
		}
		model := factory()
		nn.SetParams(model, w0)
		c, err := NewClient(cfg, i, model, fed.Clients[i], w0, pipe, cr)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	// Client loop goroutines. A semaphore bounds concurrent training to the
	// machine's parallelism so 203-client runs don't thrash. Each received
	// non-final model obliges exactly one uploaded update, stamped with the
	// model version it was trained from.
	maxPar := opts.MaxParallel
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	clientErrs := make([]error, P)
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ct := cts[i]
			defer ct.Close()
			// wscratch recycles the downlink densify buffer across rounds
			// (gm is dropped at the end of each iteration, so the weights
			// it aliases are dead by the next receive) and across runs via
			// the shared scratch pool — clients copy w before returning
			// from LocalUpdate, so nothing aliases it at goroutine exit.
			wscratch := tensor.GetF64(0)
			defer func() { tensor.PutF64(wscratch) }()
			for {
				gm, err := ct.RecvGlobal()
				if err != nil {
					clientErrs[i] = err
					return
				}
				if gm.Final {
					return
				}
				var derr error
				if wscratch, derr = DecodeGlobalInto(gm, wscratch); derr != nil {
					clientErrs[i] = derr
					return
				}
				if gm.Rho > 0 {
					if rs, ok := clients[i].(interface{ SetRho(float64) }); ok {
						rs.SetRho(gm.Rho)
					}
				}
				sem <- struct{}{}
				up, err := clients[i].LocalUpdate(int(gm.Round), gm.Weights)
				<-sem
				if err != nil {
					clientErrs[i] = err
					return
				}
				up.BaseVersion = gm.Version
				if opts.ClientDelay != nil {
					if d := opts.ClientDelay(i, int(gm.Round)); d > 0 {
						time.Sleep(d)
					}
				}
				if cfg.SubsetFrac > 0 && len(up.Primal) > 0 {
					// LoRA-style partial upload: only the leading subset of
					// the trained vector leaves the client.
					up.PrimalP = BuildSubsetPayload(up.Primal, cfg.SubsetFrac)
					up.Primal = nil
				}
				if cfg.StreamChunk > 0 {
					cs, ok := ct.(comm.ChunkSender)
					if !ok {
						clientErrs[i] = fmt.Errorf("core: transport %T cannot stream chunked uploads", ct)
						return
					}
					if err := comm.StreamUpload(cs, up, cfg.StreamChunk, comm.UploadOptions{}); err != nil {
						clientErrs[i] = err
						return
					}
					// The chunks carried the vector; a slim update settles
					// the round's obligation through the ordinary gather.
					up.Primal, up.PrimalP = nil, nil
				}
				if err := ct.SendUpdate(up); err != nil {
					clientErrs[i] = err
					return
				}
			}
		}(i)
	}

	res := &Result{Config: cfg, ModelDim: dim}
	validateEvery := opts.ValidateEvery
	if validateEvery <= 0 {
		validateEvery = 1
	}

	mem := newMembership(P)
	var jw *journalWriter
	var resume *RecoveredServer
	if opts.Journal != nil {
		if err := validateJournalConfig(cfg); err != nil {
			return nil, err
		}
		kills := append([]ServerKill(nil), opts.Kills...)
		if opts.Faults != nil {
			// Scripted killserver events cycle through the kill windows so a
			// soak plan exercises every recovery path.
			for i, k := range opts.Faults.ServerKills() {
				kills = append(kills, ServerKill{Round: k.Round, Window: KillWindow(i % int(numKillWindows)), Gap: k.Gap})
			}
		}
		jw = newJournalWriter(opts.Journal, opts.CheckpointEvery, kills)
		res.Soak = &SoakStats{}
		resume, err = RecoverServer(opts.Journal.Recovered(), P, sched.Barrier())
		if err != nil {
			return nil, err
		}
		if err := resume.Apply(agg); err != nil {
			return nil, err
		}
		if !resume.Fresh {
			// Cold-start resume: the journal Run opened already held state.
			res.Soak.Recoveries++
			res.Soak.ReplayedRecords += resume.Replayed
		}
		mem = resume.mem
		mem.onLedger = jw.ledger
	} else if len(opts.Kills) > 0 {
		return nil, fmt.Errorf("core: RunOptions.Kills requires a Journal (an unjournaled kill is just a lost run)")
	}
	loop := runBarrierRounds
	if !sched.Barrier() {
		loop = runBufferedReleases
	}
	var runErr error
	for {
		runErr = loop(cfg, sched, agg, serverPipe, st, refModel, fed, res, mem, validateEvery, opts.Progress, jw, resume, opts.Gate)
		if !errors.Is(runErr, errServerKilled) {
			break
		}
		// The scripted kill -9: everything the loop held is discarded with
		// no flush or goodbye, the scheduler/aggregator/membership are
		// rebuilt from scratch, and the journal decides where to resume.
		res.Soak.Kills++
		if jw.gap > 0 {
			time.Sleep(time.Duration(jw.gap) * 5 * time.Millisecond)
		}
		t0 := time.Now()
		closeAggregator(agg)
		recd, rerr := opts.Journal.Recover()
		if rerr != nil {
			return nil, fmt.Errorf("core: recovering journal after kill %d: %w", res.Soak.Kills, rerr)
		}
		if agg, err = NewAggregator(cfg, w0, P); err != nil {
			return nil, err
		}
		if resume, err = RecoverServer(recd, P, sched.Barrier()); err != nil {
			return nil, err
		}
		if err := resume.Apply(agg); err != nil {
			return nil, err
		}
		mem = resume.mem
		mem.onLedger = jw.ledger
		res.Soak.Recoveries++
		res.Soak.ReplayedRecords += resume.Replayed
		res.Soak.RecoverySec = append(res.Soak.RecoverySec, time.Since(t0).Seconds())
	}
	res.Rejoined = mem.rejoined
	res.TimedOut = mem.timedOut
	res.Crashed = mem.presumedDead()
	if runErr != nil {
		return nil, runErr
	}

	// Shut clients down and surface any client error.
	if err := st.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		return nil, fmt.Errorf("core: final broadcast: %w", err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", i, err)
		}
	}

	snap := st.Stats()
	res.Server = snap
	res.UploadsB = snap.BytesRecv
	res.DownloadsB = snap.BytesSent
	if n := len(res.Rounds); n > 0 {
		res.FinalAcc = res.Rounds[n-1].TestAcc
		res.FinalLoss = res.Rounds[n-1].TestLoss
	}
	return res, nil
}

// recordRound finalizes one round's statistics, validating on cadence.
func recordRound(res *Result, rs RoundStats, agg Aggregator, evalModel nn.Module, fed *dataset.Federated,
	rounds, validateEvery int, start time.Time, wbuf []float64, progress io.Writer) {
	if fed.Test != nil && (rs.Round%validateEvery == 0 || rs.Round == rounds) {
		rs.TestLoss, rs.TestAcc = EvaluateWeights(evalModel, agg.WeightsInto(wbuf), fed.Test, 256)
	}
	rs.WallSec = time.Since(start).Seconds()
	res.Rounds = append(res.Rounds, rs)
	if progress != nil {
		fmt.Fprintf(progress, "round %3d  cohort %3d  acc %.4f  loss %.4f  compute %.3fs  wall %.3fs\n",
			rs.Round, rs.CohortSize, rs.TestAcc, rs.TestLoss, rs.ComputeSec, rs.WallSec)
	}
}

// runBarrierRounds drives the classic synchronous structure: each round
// the scheduler picks a cohort, the server sends the model to exactly that
// cohort, blocks until the whole cohort reports, and aggregates. With the
// SyncAll schedule and no RoundTimeout this reproduces the pre-refactor
// loop bit for bit.
//
// With a RoundTimeout the round is fault-tolerant: the gather gives up at
// the deadline, the round completes with whoever reported (quorum
// permitting — FedAvg renormalizes the sample weights over the survivors),
// the silent clients are forgiven and benched with backoff, and goodbye
// announcements are honored by excluding the client until its rejoin
// lease expires.
func runBarrierRounds(cfg Config, sched Scheduler, agg Aggregator, serverPipe *pipeline.Pipeline, st comm.ServerTransport,
	evalModel nn.Module, fed *dataset.Federated, res *Result, mem *membership, validateEvery int, progress io.Writer,
	jw *journalWriter, resume *RecoveredServer, gate AdmissionGate) error {
	rhoReporter, _ := agg.(interface{ CurrentRho() float64 })
	// Fast paths of the kernel layer: fold still-encoded payloads when the
	// stack's inverse fuses, and feed the f16 downlink straight from the
	// f32 accumulator when one exists. Both are bit-identical to the
	// two-pass/widening paths they replace. Journaled runs skip the fused
	// fold: an admit record needs the dense decoded primal in hand before
	// anything folds, so the inverse must run as its own pass.
	var fusedStage pipeline.FusedStage
	fused := false
	if jw == nil {
		fusedStage, fused = EnableFusedFold(agg, serverPipe)
	}
	w32agg, _ := agg.(Weights32Provider)
	// Streaming mode: chunked uplinks fold through a StreamSession window
	// instead of a gathered batch; the transport must speak the chunk
	// protocol. Config.Validate has already pinned the compatible shape
	// (FedAvg, barrier scheduler, flat f64 accumulator, no RoundTimeout).
	var stream *StreamSession
	var chunkSrc comm.ChunkGatherer
	if cfg.StreamChunk > 0 {
		cg, ok := st.(comm.ChunkGatherer)
		if !ok {
			return fmt.Errorf("core: transport %T cannot gather streamed chunks", st)
		}
		ss, err := NewStreamSession(agg)
		if err != nil {
			return err
		}
		stream, chunkSrc = ss, cg
	}
	minCohort := cfg.MinCohort
	if minCohort <= 0 {
		minCohort = 1
	}
	var wbuf []float64
	var f16buf []byte
	if cfg.DownlinkF16 {
		// Pooled downlink scratch: every transport serializes inside
		// SendTo, so one code buffer serves all rounds.
		f16buf = tensor.GetBytes(2 * agg.Dim())
		defer func() { tensor.PutBytes(f16buf) }()
	}
	start := 1
	if resume != nil {
		start = resume.NextRound
		if p := resume.Pending; p != nil {
			// The crashed process died with this round in flight: finish it
			// from the journaled admits (plus a re-gather of whatever the
			// journal missed) before any new round is scheduled.
			if err := completeBarrierRound(cfg, agg, serverPipe, st, evalModel, fed, res, mem, validateEvery, progress, jw, p); err != nil {
				return err
			}
			start = p.Round + 1
		}
	}
	for t := start; t <= cfg.Rounds; t++ {
		if jw.shouldKill(KillBetweenRounds, t) {
			return errServerKilled
		}
		roundStart := time.Now()
		cohort := mem.filter(sched.Cohort(t), t)
		if cfg.RoundTimeout > 0 {
			cohort = dropUnreachable(st, mem, cohort, t)
		}
		if len(cohort) < minCohort {
			return fmt.Errorf("core: round %d cohort has %d schedulable clients, quorum is %d: %w",
				t, len(cohort), minCohort, ErrQuorum)
		}
		var w32 []float32
		if cfg.DownlinkF16 && w32agg != nil {
			w32 = w32agg.Weights32()
		}
		gm := &wire.GlobalModel{
			Round:      uint32(t),
			Version:    uint64(agg.Version()),
			CohortSize: uint32(len(cohort)),
		}
		if w32 == nil {
			wbuf = agg.WeightsInto(wbuf)
			gm.Weights = wbuf
		}
		if cfg.AdaptiveRho && rhoReporter != nil {
			gm.Rho = rhoReporter.CurrentRho()
		}
		if cfg.DownlinkF16 {
			var err error
			if w32 != nil {
				f16buf, err = EncodeDownlinkF16From32(gm, w32, f16buf)
			} else {
				f16buf, err = EncodeDownlinkF16Into(gm, f16buf)
			}
			if err != nil {
				return fmt.Errorf("core: downlink round %d: %w", t, err)
			}
		}
		if err := st.SendTo(cohort, gm); err != nil {
			return fmt.Errorf("core: send round %d: %w", t, err)
		}
		jw.roundStart(t, cohort, gm.Version)
		if jw.shouldKill(KillAfterDispatch, t) {
			return errServerKilled
		}
		if stream != nil {
			// The cohort streams its vectors chunk by chunk into the
			// session's O(chunk) window; the slim updates gathered below
			// settle the obligations but carry no payload.
			if _, err := comm.StreamGather(chunkSrc, cohort, uint32(t), agg.Dim(), cfg.StreamChunk,
				stream.Begin, stream.FoldPayloads); err != nil {
				return fmt.Errorf("core: stream round %d: %w", t, err)
			}
			if err := stream.Finish(); err != nil {
				return fmt.Errorf("core: stream round %d: %w", t, err)
			}
		}
		var updates []*wire.LocalUpdate
		var err error
		if cfg.RoundTimeout > 0 {
			got, gerr := st.GatherUntil(len(cohort), cfg.RoundTimeout)
			if gerr != nil && !errors.Is(gerr, comm.ErrRoundTimeout) {
				return fmt.Errorf("core: gather round %d: %w", t, gerr)
			}
			if gerr != nil {
				// Deadline cut the gather: forgive and bench the silent
				// clients; the survivors carry the round.
				missing := comm.Missing(cohort, got)
				st.Forgive(missing)
				for _, c := range missing {
					mem.strike(c, t)
				}
			}
			updates, err = comm.OrderSubset(cohort, got)
		} else {
			updates, err = st.GatherFrom(cohort)
		}
		if err != nil {
			return fmt.Errorf("core: gather round %d: %w", t, err)
		}
		data := splitControl(updates, mem)
		if len(data) < minCohort {
			return fmt.Errorf("core: round %d completed with %d of %d clients, quorum is %d: %w",
				t, len(data), len(cohort), minCohort, ErrQuorum)
		}
		// The admission gate spans decode through fold: the expensive part
		// of a round's server-side work, and the part that contends for the
		// shared aggregation workers on a multi-tenant host.
		releaseGate := gateAcquire(gate, len(data))
		if stream == nil {
			if fused {
				err = DecodeUpdatesFused(data, fusedStage, agg.Dim())
			} else {
				err = DecodeUpdates(data, serverPipe, agg.Dim(), cfg.AggWorkers)
			}
			if err != nil {
				releaseGate()
				return fmt.Errorf("core: decode round %d: %w", t, err)
			}
		}
		maxCompute := 0.0
		for _, u := range data {
			if u.ComputeSec > maxCompute {
				maxCompute = u.ComputeSec
			}
			if !u.InCohort {
				res.Echoes++
			}
		}
		jw.admitBatch(t, data, nil)
		if jw.shouldKill(KillBeforeCommit, t) {
			releaseGate()
			return errServerKilled
		}
		if stream == nil {
			// In streaming mode the session already folded the chunks and
			// advanced the version; the slim updates have nothing to fold.
			if err := agg.Aggregate(data); err != nil {
				releaseGate()
				return fmt.Errorf("core: aggregate round %d: %w", t, err)
			}
		}
		releaseGate()
		if err := jw.commit(t, agg, mem, 0); err != nil {
			return err
		}
		rs := RoundStats{Round: t, ComputeSec: maxCompute, CohortSize: len(data)}
		recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, roundStart, wbuf, progress)
	}
	return nil
}

// completeBarrierRound finishes the round a crashed server left in flight:
// the journaled admits are taken as-is (their primals were written before
// the crash), the rest of the cohort is re-gathered from the surviving
// transport, and the merged batch folds in cohort order — the order the
// uncrashed gather would have produced — so the refold is bit-identical to
// the fold the crash interrupted.
func completeBarrierRound(cfg Config, agg Aggregator, serverPipe *pipeline.Pipeline, st comm.ServerTransport,
	evalModel nn.Module, fed *dataset.Federated, res *Result, mem *membership, validateEvery int,
	progress io.Writer, jw *journalWriter, p *PendingRound) error {
	roundStart := time.Now()
	minCohort := cfg.MinCohort
	if minCohort <= 0 {
		minCohort = 1
	}
	admitted := p.AdmittedSet()
	remaining := make([]int, 0, len(p.Cohort))
	for _, c := range p.Cohort {
		// Skip journaled admits (dedup by client × round: re-gathering one
		// would double-count it) and clients the replayed ledger knows left
		// or went silent during the crashed attempt.
		if !admitted[c] && mem.eligible(c, p.Round) {
			remaining = append(remaining, c)
		}
	}
	var fresh []*wire.LocalUpdate
	if len(remaining) > 0 {
		var updates []*wire.LocalUpdate
		var err error
		if cfg.RoundTimeout > 0 {
			got, gerr := st.GatherUntil(len(remaining), cfg.RoundTimeout)
			if gerr != nil && !errors.Is(gerr, comm.ErrRoundTimeout) {
				return fmt.Errorf("core: re-gather round %d: %w", p.Round, gerr)
			}
			if gerr != nil {
				missing := comm.Missing(remaining, got)
				st.Forgive(missing)
				for _, c := range missing {
					mem.strike(c, p.Round)
				}
			}
			updates, err = comm.OrderSubset(remaining, got)
		} else {
			updates, err = st.GatherFrom(remaining)
		}
		if err != nil {
			return fmt.Errorf("core: re-gather round %d: %w", p.Round, err)
		}
		fresh = splitControl(updates, mem)
		if err := DecodeUpdates(fresh, serverPipe, agg.Dim(), cfg.AggWorkers); err != nil {
			return fmt.Errorf("core: decode resumed round %d: %w", p.Round, err)
		}
		jw.admitBatch(p.Round, fresh, admitted)
	}
	byID := make(map[int]*wire.LocalUpdate, len(p.Admitted)+len(fresh))
	for _, u := range p.Admitted {
		byID[int(u.ClientID)] = u
	}
	for _, u := range fresh {
		byID[int(u.ClientID)] = u
	}
	data := make([]*wire.LocalUpdate, 0, len(byID))
	for _, c := range p.Cohort {
		if u, ok := byID[c]; ok {
			data = append(data, u)
		}
	}
	if len(data) < minCohort {
		return fmt.Errorf("core: resumed round %d completed with %d of %d clients, quorum is %d: %w",
			p.Round, len(data), len(p.Cohort), minCohort, ErrQuorum)
	}
	maxCompute := 0.0
	for _, u := range data {
		if u.ComputeSec > maxCompute {
			maxCompute = u.ComputeSec
		}
	}
	if jw.shouldKill(KillBeforeCommit, p.Round) {
		return errServerKilled
	}
	if err := agg.Aggregate(data); err != nil {
		return fmt.Errorf("core: aggregate resumed round %d: %w", p.Round, err)
	}
	if err := jw.commit(p.Round, agg, mem, 0); err != nil {
		return err
	}
	rs := RoundStats{Round: p.Round, ComputeSec: maxCompute, CohortSize: len(data)}
	recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, roundStart, nil, progress)
	return nil
}

// dropUnreachable removes clients the transport currently knows cannot
// receive a dispatch (a dead connection with no resume yet, reported via
// comm.Unreachables), benching each like a timeout so it is retried if
// it ever comes back. Dispatching to them would only open obligations
// nothing can settle. Used only under a RoundTimeout; transports without
// connection state don't implement the interface and pass through.
func dropUnreachable(st comm.ServerTransport, mem *membership, ids []int, round int) []int {
	ur, ok := st.(comm.Unreachables)
	if !ok {
		return ids
	}
	down := ur.Unreachable()
	if len(down) == 0 {
		return ids
	}
	dead := make(map[int]bool, len(down))
	for _, c := range down {
		dead[c] = true
	}
	kept := ids[:0]
	for _, c := range ids {
		if dead[c] {
			mem.strike(c, round)
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// splitControl separates lifecycle messages from training data: goodbyes
// update the membership roster and are removed from the batch; data
// updates clear their sender's timeout strikes. The returned slice aliases
// updates' backing array.
func splitControl(updates []*wire.LocalUpdate, mem *membership) []*wire.LocalUpdate {
	data := updates[:0]
	for _, u := range updates {
		if u.Control == wire.ControlGoodbye {
			mem.depart(int(u.ClientID), int(u.RejoinRound))
			continue
		}
		mem.reported(int(u.ClientID))
		data = append(data, u)
	}
	return data
}

// runBufferedReleases drives the FedBuff-style semi-asynchronous
// structure: every client trains continuously against the freshest model
// it has; the server releases an aggregation as soon as K updates arrive
// (in arrival order, regardless of origin) and immediately re-dispatches
// the new model to exactly the clients that contributed. Stragglers never
// block a release; their updates arrive with positive staleness and are
// down-weighted or dropped by the BufferedAggregator.
func runBufferedReleases(cfg Config, sched Scheduler, agg Aggregator, serverPipe *pipeline.Pipeline, st comm.ServerTransport,
	evalModel nn.Module, fed *dataset.Federated, res *Result, mem *membership, validateEvery int, progress io.Writer,
	jw *journalWriter, resume *RecoveredServer, gate AdmissionGate) error {
	quorum := sched.Quorum()
	// Journaled runs skip the fused fold: an admit record needs the dense
	// decoded primal before anything folds.
	var fusedStage pipeline.FusedStage
	fused := false
	if jw == nil {
		fusedStage, fused = EnableFusedFold(agg, serverPipe)
	}
	w32agg, _ := agg.(Weights32Provider)
	var wbuf []float64
	var f16buf []byte
	if cfg.DownlinkF16 {
		f16buf = tensor.GetBytes(2 * agg.Dim())
		defer func() { tensor.PutBytes(f16buf) }()
	}
	dispatch := func(ids []int, round int) error {
		var w32 []float32
		if cfg.DownlinkF16 && w32agg != nil {
			w32 = w32agg.Weights32()
		}
		gm := &wire.GlobalModel{
			Round:      uint32(round),
			Version:    uint64(agg.Version()),
			CohortSize: uint32(len(ids)),
		}
		if w32 == nil {
			wbuf = agg.WeightsInto(wbuf)
			gm.Weights = wbuf
		}
		if cfg.DownlinkF16 {
			var err error
			if w32 != nil {
				f16buf, err = EncodeDownlinkF16From32(gm, w32, f16buf)
			} else {
				f16buf, err = EncodeDownlinkF16Into(gm, f16buf)
			}
			if err != nil {
				return fmt.Errorf("core: downlink release %d: %w", round, err)
			}
		}
		if err := st.SendTo(ids, gm); err != nil {
			return err
		}
		jw.roundStart(round, ids, gm.Version)
		return nil
	}
	buffered, _ := agg.(*BufferedAggregator)
	start := 1
	outstanding := 0
	if resume != nil && !resume.Fresh {
		// The obligations the crashed process opened are still live on the
		// surviving transports; resume against them instead of re-dispatching.
		start = resume.NextRound
		outstanding = resume.Inflight
		if p := resume.Pending; p != nil {
			// The crashed process died after admitting this release batch but
			// before committing it. Refold the journaled admits — staleness is
			// computed against the restored version, exactly as the pre-crash
			// fold would have — then close the release and hand the
			// contributors the fresh model the dead process never sent.
			relStart := time.Now()
			prevStale, prevDropped := 0, 0
			if buffered != nil {
				prevStale, prevDropped = buffered.StaleApplied, buffered.Dropped
			}
			if len(p.Admitted) > 0 {
				if err := agg.Aggregate(p.Admitted); err != nil {
					return fmt.Errorf("core: aggregate resumed release %d: %w", p.Round, err)
				}
			}
			if buffered != nil {
				res.Stale += buffered.StaleApplied - prevStale
				res.Dropped += buffered.Dropped - prevDropped
			}
			if err := jw.commit(p.Round, agg, mem, outstanding); err != nil {
				return err
			}
			if p.Round < cfg.Rounds {
				ids := make([]int, 0, len(p.Admitted))
				for _, u := range p.Admitted {
					ids = append(ids, int(u.ClientID))
				}
				ids = append(ids, mem.dueRejoins(p.Round+1)...)
				if cfg.RoundTimeout > 0 {
					inflight := make(map[int]bool)
					for _, c := range st.Outstanding() {
						inflight[c] = true
					}
					ids = append(ids, mem.dueRetries(p.Round+1, inflight)...)
					ids = dropUnreachable(st, mem, ids, p.Round)
				}
				if len(ids) > 0 {
					if err := dispatch(ids, p.Round+1); err != nil {
						return fmt.Errorf("core: re-dispatch after resumed release %d: %w", p.Round, err)
					}
					outstanding += len(ids)
				}
			}
			// ComputeSec is client metadata the admit record does not carry;
			// a resumed release reports 0 for it.
			rs := RoundStats{Round: p.Round, CohortSize: len(p.Admitted)}
			recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, relStart, wbuf, progress)
			start = p.Round + 1
		}
	} else {
		all := sched.Cohort(1)
		if err := dispatch(all, 1); err != nil {
			return fmt.Errorf("core: initial dispatch: %w", err)
		}
		outstanding = len(all)
	}
	for rel := start; rel <= cfg.Rounds; rel++ {
		if jw.shouldKill(KillBetweenRounds, rel) {
			return errServerKilled
		}
		relStart := time.Now()
		if outstanding == 0 {
			// Everyone in flight went silent at once (a stall longer than
			// the deadline, or every upload lost in one window). Instead
			// of dying, fast-forward to the earliest bench expiry or
			// rejoin lease and re-dispatch there — a transient all-silent
			// window costs a timeout, not the run. Only when no client
			// can ever come back is the run truly starved.
			r := mem.nextReturn()
			if r == 0 {
				return fmt.Errorf("core: release %d has no clients in flight and none can return: %w", rel, ErrQuorum)
			}
			round := rel
			if r > round {
				round = r
			}
			ids := append(mem.dueRejoins(r), mem.dueRetries(r, map[int]bool{})...)
			ids = dropUnreachable(st, mem, ids, rel)
			if len(ids) == 0 {
				return fmt.Errorf("core: release %d starved: every returnable client is unreachable: %w", rel, ErrQuorum)
			}
			if err := dispatch(ids, round); err != nil {
				return fmt.Errorf("core: retry dispatch at release %d: %w", rel, err)
			}
			outstanding += len(ids)
		}
		want := quorum
		if want > outstanding {
			want = outstanding
		}
		var batch []*wire.LocalUpdate
		var err error
		if cfg.RoundTimeout > 0 {
			// Release on deadline with whatever arrived instead of
			// blocking on K arrivals that will never come. Clients still
			// silent after a whole deadline are forgiven and benched; the
			// retry dispatch below re-admits them once their backoff
			// lapses, so a lost upload costs a timeout, not the client's
			// membership.
			batch, err = st.GatherUntil(want, cfg.RoundTimeout)
			if err != nil && !errors.Is(err, comm.ErrRoundTimeout) {
				return fmt.Errorf("core: release %d: %w", rel, err)
			}
			if err != nil {
				silent := st.Outstanding()
				st.Forgive(silent)
				for _, c := range silent {
					// The silent client's dispatch obligation dies with the
					// forgive; the journaled strike carries the in-flight flag
					// so replay reconstructs the outstanding-arrival count.
					mem.strikeInflight(c, rel)
				}
				outstanding -= len(silent)
			}
		} else {
			batch, err = st.GatherAny(want)
			if err != nil {
				return fmt.Errorf("core: release %d: %w", rel, err)
			}
		}
		outstanding -= len(batch)
		data := splitControl(batch, mem)
		// The admission gate spans decode through fold, the contended
		// server-side work on a multi-tenant host.
		releaseGate := gateAcquire(gate, len(data))
		if fused {
			err = DecodeUpdatesFused(data, fusedStage, agg.Dim())
		} else {
			err = DecodeUpdates(data, serverPipe, agg.Dim(), cfg.AggWorkers)
		}
		if err != nil {
			releaseGate()
			return fmt.Errorf("core: decode release %d: %w", rel, err)
		}
		jw.admitBatch(rel, data, nil)
		if jw.shouldKill(KillBeforeCommit, rel) {
			releaseGate()
			return errServerKilled
		}
		maxCompute := 0.0
		for _, u := range data {
			if u.ComputeSec > maxCompute {
				maxCompute = u.ComputeSec
			}
		}
		// The aggregator is the authority on what was actually folded vs
		// dropped; read its counters rather than re-deriving staleness here.
		prevStale, prevDropped := 0, 0
		if buffered != nil {
			prevStale, prevDropped = buffered.StaleApplied, buffered.Dropped
		}
		if len(data) > 0 {
			if err := agg.Aggregate(data); err != nil {
				releaseGate()
				return fmt.Errorf("core: aggregate release %d: %w", rel, err)
			}
		}
		releaseGate()
		if buffered != nil {
			res.Stale += buffered.StaleApplied - prevStale
			res.Dropped += buffered.Dropped - prevDropped
		}
		// Commit before the re-dispatch below: the re-dispatch opens new
		// obligations, journaled as RoundStart records after this commit, so
		// replay's outstanding count stays exact.
		if err := jw.commit(rel, agg, mem, outstanding); err != nil {
			return err
		}
		// Hand the contributors the fresh model so they keep training —
		// unless the run is over, in which case they wait for Final.
		// Arrivals drive buffered scheduling, so re-admissions take an
		// explicit dispatch too: leased-out clients whose rejoin falls due
		// and benched clients whose backoff lapsed ride along here.
		if rel < cfg.Rounds {
			ids := make([]int, 0, len(data)+1)
			for _, u := range data {
				ids = append(ids, int(u.ClientID))
			}
			ids = append(ids, mem.dueRejoins(rel+1)...)
			if cfg.RoundTimeout > 0 {
				inflight := make(map[int]bool)
				for _, c := range st.Outstanding() {
					inflight[c] = true
				}
				ids = append(ids, mem.dueRetries(rel+1, inflight)...)
				ids = dropUnreachable(st, mem, ids, rel)
			}
			if len(ids) > 0 {
				if err := dispatch(ids, rel+1); err != nil {
					return fmt.Errorf("core: re-dispatch after release %d: %w", rel, err)
				}
				outstanding += len(ids)
			}
		}
		rs := RoundStats{Round: rel, ComputeSec: maxCompute, CohortSize: len(data)}
		recordRound(res, rs, agg, evalModel, fed, cfg.Rounds, validateEvery, relStart, wbuf, progress)
		// The after-dispatch window sits at the end of the iteration so the
		// committed release's stats are recorded before the kill lands —
		// recovery resumes at the next release, not by replaying this one.
		if jw.shouldKill(KillAfterDispatch, rel) {
			return errServerKilled
		}
	}
	// Drain in-flight stragglers so their uploads don't block shutdown;
	// under a deadline, clients that stay silent for a whole timeout are
	// forgiven instead of blocking it forever.
	if outstanding > 0 {
		if cfg.RoundTimeout > 0 {
			if _, err := st.GatherUntil(outstanding, cfg.RoundTimeout); err != nil {
				if !errors.Is(err, comm.ErrRoundTimeout) {
					return fmt.Errorf("core: draining %d stragglers: %w", outstanding, err)
				}
				silent := st.Outstanding()
				st.Forgive(silent)
				for _, c := range silent {
					mem.strikeInflight(c, cfg.Rounds)
				}
			}
		} else if _, err := st.GatherAny(outstanding); err != nil {
			return fmt.Errorf("core: draining %d stragglers: %w", outstanding, err)
		}
	}
	return nil
}
