package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/rng"
)

// Scheduler names accepted in Config.Scheduler.
const (
	SchedSyncAll  = "syncall"  // every client, barrier per round (default)
	SchedSampled  = "sampled"  // pseudorandom cohort per round, barrier
	SchedBuffered = "buffered" // FedBuff-style: release after K arrivals
)

// Buffered-scheduler defaults applied when the corresponding Config
// fields are zero.
const (
	DefaultAsyncAlpha = 0.6
	DefaultAsyncGamma = 0.5
)

// Scheduler is the participation half of the split server: it decides
// which clients train in a round and when a gathered batch is released to
// the Aggregator. It is deliberately ignorant of *how* a batch updates the
// model — that is the Aggregator's job.
type Scheduler interface {
	// Name returns the scheduler's Config identifier.
	Name() string
	// Cohort returns the sorted client IDs scheduled for round t (1-based).
	Cohort(round int) []int
	// Barrier reports whether the round blocks until the whole cohort has
	// reported (true: SyncAll, SampledCohort) or releases a batch as soon
	// as Quorum updates have arrived from anyone (false: Buffered).
	Barrier() bool
	// Quorum is the number of arrivals that releases an aggregation when
	// Barrier is false; barrier schedulers return the cohort size.
	Quorum() int
}

// NewScheduler constructs the scheduler for cfg over numClients clients.
func NewScheduler(cfg Config, numClients int) (Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numClients <= 0 {
		return nil, fmt.Errorf("core: scheduler needs at least one client, got %d", numClients)
	}
	switch cfg.Scheduler {
	case "", SchedSyncAll:
		return SyncAll{NumClients: numClients}, nil
	case SchedSampled:
		min := cfg.CohortMin
		if min <= 0 {
			min = 1
		}
		if min > numClients {
			return nil, fmt.Errorf("core: CohortMin %d exceeds %d clients", min, numClients)
		}
		seed := cfg.CohortSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		return SampledCohort{
			NumClients: numClients,
			Fraction:   cfg.CohortFraction,
			MinClients: min,
			Seed:       seed,
		}, nil
	case SchedBuffered:
		k := cfg.BufferK
		if k <= 0 {
			k = (numClients + 1) / 2
		}
		if k > numClients {
			return nil, fmt.Errorf("core: BufferK %d exceeds %d clients", k, numClients)
		}
		return Buffered{NumClients: numClients, K: k}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", cfg.Scheduler)
	}
}

// SyncAll schedules every client every round — the classic synchronous
// barrier under which the split path degenerates to the pre-refactor
// behavior bit for bit.
type SyncAll struct {
	NumClients int
}

// Name returns the scheduler identifier.
func (s SyncAll) Name() string { return SchedSyncAll }

// Cohort returns all client IDs.
func (s SyncAll) Cohort(round int) []int { return comm.AllClients(s.NumClients) }

// Barrier reports that the round blocks on the full cohort.
func (s SyncAll) Barrier() bool { return true }

// Quorum is the full federation.
func (s SyncAll) Quorum() int { return s.NumClients }

// SampledCohort schedules a pseudorandom fraction of the federation each
// round — the cross-device regime where only a cohort of the (possibly
// enormous) client population trains. Selection is deterministic in
// (Seed, round), so a run is reproducible, and clients outside the cohort
// receive no model at all — unlike the legacy Config.ClientFraction path,
// they spend neither compute nor bandwidth.
type SampledCohort struct {
	NumClients int
	// Fraction of clients scheduled per round, in (0,1].
	Fraction float64
	// MinClients floors the cohort size (secure-aggregation-style minimum).
	MinClients int
	// Seed drives the per-round pseudorandom selection.
	Seed uint64
}

// Name returns the scheduler identifier.
func (s SampledCohort) Name() string { return SchedSampled }

// size is the fixed cohort size implied by Fraction and MinClients.
func (s SampledCohort) size() int {
	k := int(math.Ceil(s.Fraction * float64(s.NumClients)))
	if k < s.MinClients {
		k = s.MinClients
	}
	if k < 1 {
		k = 1
	}
	if k > s.NumClients {
		k = s.NumClients
	}
	return k
}

// Cohort draws a uniform k-subset of the roster with a seeded partial
// Fisher–Yates over a sparse overlay: only the k draws and their swap
// targets ever materialize, so one round costs O(k log k) time and O(k)
// memory no matter how large the roster is — a 1M-entry federation is
// never enumerated. (The previous implementation ranked all N clients by
// a per-round hash score: O(N log N) per round, which is exactly the
// scan a routing/admission tier cannot afford at cross-device scale.)
// The draw is deterministic in (Seed, round) and returned ascending.
func (s SampledCohort) Cohort(round int) []int {
	k := s.size()
	if k == s.NumClients {
		return comm.AllClients(s.NumClients)
	}
	r := rng.New(cohortScore(s.Seed, round, 0))
	// overlay holds only the displaced entries of the virtual roster
	// permutation; an id absent from it still sits at its own index.
	overlay := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := overlay[i]; ok {
			return v
		}
		return i
	}
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(s.NumClients-i)
		ids[i] = at(j)
		overlay[j] = at(i)
	}
	sort.Ints(ids)
	return ids
}

// Barrier reports that the round blocks on the sampled cohort.
func (s SampledCohort) Barrier() bool { return true }

// Quorum is the cohort size.
func (s SampledCohort) Quorum() int { return s.size() }

// Buffered is the FedBuff-style semi-asynchronous scheduler: every client
// trains continuously, and the server releases an aggregation to the
// BufferedAggregator as soon as K updates have arrived — stragglers never
// block a release; their late updates arrive stale and are down-weighted
// (or dropped beyond MaxStaleness) by the aggregator.
type Buffered struct {
	NumClients int
	// K is the buffer size: arrivals per release. The staleness drop
	// threshold lives on the BufferedAggregator, which enforces it.
	K int
}

// Name returns the scheduler identifier.
func (s Buffered) Name() string { return SchedBuffered }

// Cohort returns all client IDs: everyone trains continuously; the round
// argument is ignored because participation is arrival-driven.
func (s Buffered) Cohort(round int) []int { return comm.AllClients(s.NumClients) }

// Barrier reports that releases are arrival-driven, not cohort-blocking.
func (s Buffered) Barrier() bool { return false }

// Quorum is the buffer size K.
func (s Buffered) Quorum() int { return s.K }

// cohortScore hashes (seed, round, client) with a splitmix64 finalizer,
// the same family as Participates, so cohorts vary per round but are
// reproducible from the seed. The sampler uses it (client 0) to derive
// the per-round draw stream.
func cohortScore(seed uint64, round, client int) uint64 {
	x := seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(client)+1)*0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
