package core

import (
	"errors"
	"math"

	"repro/internal/wire"
)

// ErrQuorum reports that a round could not assemble MinCohort clients —
// either the scheduler's cohort shrank below quorum after exclusions, or a
// deadline-cut gather came back with too few survivors.
var ErrQuorum = errors.New("core: round quorum not met")

// membership is the runner's failure detector and roster. It tracks which
// clients are currently schedulable: clients that announced a goodbye are
// excluded until their rejoin lease expires (or forever), and clients that
// timed out a round are benched with exponential backoff — so a dead
// client costs one RoundTimeout once, not every round, while a client that
// merely hiccuped gets retried. It is the server-side half of the
// ClientGoodbye/rejoin handshake.
type membership struct {
	// departedUntil[c] excludes c from rounds before it; 0 = present,
	// math.MaxInt = gone for good.
	departedUntil []int
	// benchedUntil[c] excludes a timed-out c from rounds before it.
	benchedUntil []int
	// strikes[c] counts consecutive timeouts; a success resets it.
	strikes []int
	// awaitingRejoin marks a leased departure whose return has not yet
	// been observed, so rejoins are counted exactly once.
	awaitingRejoin []bool

	rejoined int // rejoin events observed
	timedOut int // timed-out obligations observed

	// onLedger, when set, journals every roster mutation (strike, depart,
	// report, rejoin) before the run acts on it — the write-ahead hook of a
	// journaled run. Replay reconstructs an identical roster by re-applying
	// the recorded mutations to a fresh membership with no hook attached.
	onLedger func(op uint8, client, round, param uint32)
}

func newMembership(n int) *membership {
	return &membership{
		departedUntil:  make([]int, n),
		benchedUntil:   make([]int, n),
		strikes:        make([]int, n),
		awaitingRejoin: make([]bool, n),
	}
}

// eligible reports whether client c may be scheduled in round.
func (m *membership) eligible(c, round int) bool {
	return round >= m.departedUntil[c] && round >= m.benchedUntil[c]
}

// filter returns the eligible subset of cohort for round (order
// preserved), counting the rejoins it observes: a leased-out client
// reappearing in a schedulable cohort has rejoined.
func (m *membership) filter(cohort []int, round int) []int {
	out := make([]int, 0, len(cohort))
	for _, c := range cohort {
		if !m.eligible(c, round) {
			continue
		}
		if m.awaitingRejoin[c] {
			m.rejoin(c)
		}
		out = append(out, c)
	}
	return out
}

// rejoin re-admits a leased-out client whose return was observed.
func (m *membership) rejoin(c int) {
	if m.onLedger != nil {
		m.onLedger(wire.LedgerRejoin, uint32(c), 0, 0)
	}
	m.awaitingRejoin[c] = false
	m.departedUntil[c] = 0
	m.rejoined++
}

// depart records a goodbye: rejoinRound > 0 leases a return at that round,
// 0 is a permanent departure.
func (m *membership) depart(c, rejoinRound int) {
	if m.onLedger != nil {
		m.onLedger(wire.LedgerDepart, uint32(c), 0, uint32(rejoinRound))
	}
	if rejoinRound > 0 {
		m.departedUntil[c] = rejoinRound
		m.awaitingRejoin[c] = true
	} else {
		m.departedUntil[c] = math.MaxInt
		m.awaitingRejoin[c] = false
	}
	m.strikes[c] = 0
	m.benchedUntil[c] = 0
}

// strike records a timed-out obligation at round and benches the client
// with exponential backoff: 1 round after the first strike, 2 after the
// second, doubling up to 16 — a dead client costs one timeout now and
// then, not one per round.
func (m *membership) strike(c, round int) { m.strikeAt(c, round, false) }

// strikeInflight is strike for a client whose dispatch obligation was open
// when it went silent — the journaled record carries the flag so buffered
// replay can reconstruct its outstanding-arrival count.
func (m *membership) strikeInflight(c, round int) { m.strikeAt(c, round, true) }

func (m *membership) strikeAt(c, round int, inflight bool) {
	if m.onLedger != nil {
		flag := uint32(0)
		if inflight {
			flag = 1
		}
		m.onLedger(wire.LedgerStrike, uint32(c), uint32(round), flag)
	}
	m.timedOut++
	m.strikes[c]++
	shift := m.strikes[c] - 1
	if shift > 4 {
		shift = 4
	}
	m.benchedUntil[c] = round + 1 + 1<<shift
}

// reported records a successful (non-timed-out) reply, clearing strikes.
// Journaled only when it actually mutates (the client had strikes), so a
// healthy federation's journal is not one report record per admit.
func (m *membership) reported(c int) {
	if m.strikes[c] != 0 && m.onLedger != nil {
		m.onLedger(wire.LedgerReport, uint32(c), 0, 0)
	}
	m.strikes[c] = 0
}

// dueRejoins returns the leased-out clients whose lease expires by round,
// marking them rejoined — the buffered loop's re-admission path, which
// must actively re-dispatch to a returning client because arrivals drive
// its scheduling.
func (m *membership) dueRejoins(round int) []int {
	var out []int
	for c := range m.departedUntil {
		if m.awaitingRejoin[c] && round >= m.departedUntil[c] {
			m.rejoin(c)
			out = append(out, c)
		}
	}
	return out
}

// dueRetries returns the struck clients whose bench expires by round and
// that are neither departed nor currently in flight — the buffered loop's
// retry path: a client whose upload was lost (or that hiccuped) gets a
// fresh model once its backoff lapses, instead of silently leaving the
// buffered cycle forever.
func (m *membership) dueRetries(round int, inflight map[int]bool) []int {
	var out []int
	for c := range m.strikes {
		if m.strikes[c] > 0 && round >= m.benchedUntil[c] &&
			m.departedUntil[c] == 0 && !inflight[c] {
			out = append(out, c)
		}
	}
	return out
}

// nextReturn returns the earliest round at which any currently excluded
// client becomes schedulable again — an unexpired timeout bench or a
// rejoin lease — or 0 when no client can ever return. The buffered loop
// uses it to ride out a window where everyone in flight went silent.
func (m *membership) nextReturn() int {
	r := 0
	for c := range m.departedUntil {
		var cand int
		switch {
		case m.awaitingRejoin[c]:
			cand = m.departedUntil[c]
		case m.departedUntil[c] == math.MaxInt:
			continue // gone for good
		case m.strikes[c] > 0:
			cand = m.benchedUntil[c]
		default:
			continue
		}
		if r == 0 || cand < r {
			r = cand
		}
	}
	return r
}

// presumedDead counts the clients presumed gone at the end of a run:
// permanent departures plus clients with unresolved timeout strikes.
func (m *membership) presumedDead() int {
	n := 0
	for c := range m.departedUntil {
		if m.departedUntil[c] == math.MaxInt || m.strikes[c] > 0 {
			n++
		}
	}
	return n
}
