package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// This file implements the decentralized extension the paper lists as
// future work (Section V, item 1): "decentralized privacy-preserving
// algorithms that allow the neighboring communication without the central
// server". Clients sit on an undirected graph; each round they train
// locally, release a (optionally Laplace-perturbed) model to their
// neighbors, and average with Metropolis–Hastings weights — the standard
// decentralized SGD/gossip scheme, whose mixing matrix is doubly
// stochastic and therefore drives the network to consensus.

// Topology is an undirected communication graph over clients. Neighbors
// must be symmetric and must not contain self-loops.
type Topology struct {
	Neighbors [][]int
}

// Ring returns the cycle topology over n clients.
func Ring(n int) Topology {
	nb := make([][]int, n)
	for i := 0; i < n; i++ {
		if n == 1 {
			continue
		}
		prev := (i - 1 + n) % n
		next := (i + 1) % n
		if prev == next { // n == 2
			nb[i] = []int{next}
		} else {
			nb[i] = []int{prev, next}
		}
	}
	return Topology{Neighbors: nb}
}

// Complete returns the fully connected topology over n clients.
func Complete(n int) Topology {
	nb := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				nb[i] = append(nb[i], j)
			}
		}
	}
	return Topology{Neighbors: nb}
}

// Validate checks symmetry, index range, and absence of self-loops.
func (t Topology) Validate() error {
	n := len(t.Neighbors)
	has := func(p, q int) bool {
		for _, x := range t.Neighbors[p] {
			if x == q {
				return true
			}
		}
		return false
	}
	for p, list := range t.Neighbors {
		for _, q := range list {
			if q < 0 || q >= n {
				return fmt.Errorf("core: topology edge %d-%d out of range", p, q)
			}
			if q == p {
				return fmt.Errorf("core: topology has self-loop at %d", p)
			}
			if !has(q, p) {
				return fmt.Errorf("core: topology edge %d→%d not symmetric", p, q)
			}
		}
	}
	return nil
}

// MetropolisWeights returns the mixing matrix row for every client:
// weights[p][q] for q a neighbor of p, plus weights[p][p] as the self
// weight. The matrix is symmetric and doubly stochastic.
func MetropolisWeights(t Topology) [][]float64 {
	n := len(t.Neighbors)
	w := make([][]float64, n)
	deg := make([]int, n)
	for p := range t.Neighbors {
		deg[p] = len(t.Neighbors[p])
	}
	for p := 0; p < n; p++ {
		w[p] = make([]float64, n)
		sum := 0.0
		for _, q := range t.Neighbors[p] {
			d := deg[p]
			if deg[q] > d {
				d = deg[q]
			}
			w[p][q] = 1.0 / float64(d+1)
			sum += w[p][q]
		}
		w[p][p] = 1 - sum
	}
	return w
}

// DecentralRoundStats records one round of a decentralized run.
type DecentralRoundStats struct {
	Round int
	// MeanTestAcc is the average test accuracy across client models.
	MeanTestAcc float64
	// Consensus is the mean distance of client models from their average;
	// gossip mixing must drive it toward zero.
	Consensus float64
}

// DecentralResult aggregates a decentralized run.
type DecentralResult struct {
	Rounds   []DecentralRoundStats
	FinalAcc float64
}

// RunDecentralized executes serverless federated learning on the given
// topology. Each round every client performs cfg.LocalSteps epochs of
// local SGD (FedAvg-style), releases its model to its neighbors — with
// Laplace output perturbation when cfg.Epsilon is finite — and mixes with
// Metropolis weights. Only FedAvg-style local training is supported; the
// IADMM algorithms assume a central aggregator.
func RunDecentralized(cfg Config, fed *dataset.Federated, factory nn.Factory, topo Topology) (*DecentralResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.Algorithm != AlgoFedAvg {
		return nil, fmt.Errorf("core: decentralized mode supports fedavg local training, got %q", cfg.Algorithm)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := fed.NumClients()
	if len(topo.Neighbors) != P {
		return nil, fmt.Errorf("core: topology covers %d clients, federation has %d", len(topo.Neighbors), P)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	weights := MetropolisWeights(topo)

	ref := factory()
	w0 := nn.FlattenParams(ref, nil)
	dim := len(w0)

	master := rng.New(cfg.Seed)
	// Peers invert each other's compressed releases with the shared
	// inverse-only pipeline (stateless and deterministic, so one suffices).
	invPipe, err := NewServerPipeline(cfg)
	if err != nil {
		return nil, err
	}
	clients := make([]*FedAvgClient, P)
	states := make([][]float64, P) // x_p, each client's current model
	for i := 0; i < P; i++ {
		cr := master.Split()
		pipe, err := NewClientPipeline(cfg, cr)
		if err != nil {
			return nil, err
		}
		m := factory()
		nn.SetParams(m, w0)
		clients[i] = NewFedAvgClient(i, m, fed.Clients[i], cfg, pipe, cr)
		states[i] = append([]float64(nil), w0...)
	}

	res := &DecentralResult{}
	released := make([][]float64, P)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for t := 1; t <= cfg.Rounds; t++ {
		// Local training + DP release, in parallel.
		var wg sync.WaitGroup
		errs := make([]error, P)
		for p := 0; p < P; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				up, err := clients[p].LocalUpdate(t, states[p])
				if err != nil {
					errs[p] = err
					return
				}
				// Each peer applies the server half of the pipeline to what
				// it receives (Invert is stateless, so sharing one is safe).
				// Workers=1: the peers already decode concurrently, one
				// goroutine each; nested fan-out would only contend.
				if derr := DecodeUpdates([]*wire.LocalUpdate{up}, invPipe, dim, 1); derr != nil {
					errs[p] = derr
					return
				}
				released[p] = up.Primal
			}(p)
		}
		wg.Wait()
		for p, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("core: decentralized client %d: %w", p, err)
			}
		}
		// Gossip mixing: x_p ← w_pp·z_p + Σ_q w_pq·z̃_q. A client mixes its
		// own *unperturbed* release only through released[p] to keep every
		// exchanged quantity privatized uniformly.
		next := make([][]float64, P)
		for p := 0; p < P; p++ {
			x := make([]float64, dim)
			for i := 0; i < dim; i++ {
				x[i] = weights[p][p] * released[p][i]
			}
			for _, q := range topo.Neighbors[p] {
				wq := weights[p][q]
				zq := released[q]
				for i := 0; i < dim; i++ {
					x[i] += wq * zq[i]
				}
			}
			next[p] = x
		}
		states = next

		// Round statistics.
		stats := DecentralRoundStats{Round: t}
		if fed.Test != nil {
			accSum := 0.0
			for p := 0; p < P; p++ {
				_, acc := EvaluateWeights(ref, states[p], fed.Test, 256)
				accSum += acc
			}
			stats.MeanTestAcc = accSum / float64(P)
		}
		stats.Consensus = consensusDistance(states)
		res.Rounds = append(res.Rounds, stats)
	}
	if n := len(res.Rounds); n > 0 {
		res.FinalAcc = res.Rounds[n-1].MeanTestAcc
	}
	return res, nil
}

// consensusDistance returns the mean Euclidean distance of the states from
// their average.
func consensusDistance(states [][]float64) float64 {
	p := len(states)
	if p == 0 {
		return 0
	}
	dim := len(states[0])
	mean := make([]float64, dim)
	for _, s := range states {
		for i, v := range s {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(p)
	}
	total := 0.0
	for _, s := range states {
		d := 0.0
		for i, v := range s {
			diff := v - mean[i]
			d += diff * diff
		}
		total += math.Sqrt(d)
	}
	return total / float64(p)
}
