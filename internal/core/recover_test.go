package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/journal"
	"repro/internal/wire"
)

// Replay unit tests: RecoverServer is pure (no transport, no aggregation),
// so its behavior is pinned directly against hand-built journal states.

func jrRoundStart(round int, cohort []uint32, version uint64) *wire.JournalRecord {
	return &wire.JournalRecord{Op: wire.JournalRoundStart, Round: uint32(round), Cohort: cohort, Version: version}
}

func jrAdmit(round, client int, samples uint64, primal []float64) *wire.JournalRecord {
	return &wire.JournalRecord{Op: wire.JournalAdmit, Round: uint32(round), ClientID: uint32(client),
		NumSamples: samples, Primal: primal}
}

func jrLedger(op uint8, client, round, param uint32) *wire.JournalRecord {
	return &wire.JournalRecord{Op: wire.JournalLedger, LedgerOp: op, ClientID: client, Round: round, Param: param}
}

func jrCommit(round int, version uint64, w []float64) *wire.JournalRecord {
	return &wire.JournalRecord{Op: wire.JournalCommit, Round: uint32(round), Version: version, Weights: w}
}

func TestRecoverServerFreshOnEmptyJournal(t *testing.T) {
	for _, rec := range []*journal.Recovered{nil, {}} {
		rs, err := RecoverServer(rec, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		if !rs.Fresh || rs.NextRound != 1 || rs.Pending != nil || rs.Weights != nil {
			t.Fatalf("empty journal recovered as %+v", rs)
		}
	}
}

func TestRecoverServerBarrierPendingRound(t *testing.T) {
	rec := &journal.Recovered{Records: []*wire.JournalRecord{
		jrRoundStart(1, []uint32{0, 1, 2}, 0),
		jrAdmit(1, 0, 10, []float64{1, 2}),
		jrAdmit(1, 2, 30, []float64{5, 6}),
	}}
	rs, err := RecoverServer(rec, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Fresh {
		t.Fatal("non-empty journal recovered as fresh")
	}
	p := rs.Pending
	if p == nil || p.Round != 1 || len(p.Cohort) != 3 || len(p.Admitted) != 2 {
		t.Fatalf("pending round %+v", p)
	}
	if got := p.AdmittedSet(); !got[0] || !got[2] || got[1] {
		t.Fatalf("admitted set %v", got)
	}
	if p.Admitted[1].ClientID != 2 || p.Admitted[1].Primal[1] != 6 || !p.Admitted[1].InCohort {
		t.Fatalf("admit reconstruction %+v", p.Admitted[1])
	}
	if rs.Replayed != 3 {
		t.Fatalf("replayed %d records, want 3", rs.Replayed)
	}
}

func TestRecoverServerCommitClosesRound(t *testing.T) {
	rec := &journal.Recovered{Records: []*wire.JournalRecord{
		jrRoundStart(1, []uint32{0, 1}, 0),
		jrAdmit(1, 0, 10, []float64{1}),
		jrAdmit(1, 1, 10, []float64{2}),
		jrCommit(1, 1, []float64{1.5}),
		jrRoundStart(2, []uint32{0, 1}, 1),
	}}
	rs, err := RecoverServer(rec, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NextRound != 2 || rs.Version != 1 || len(rs.Weights) != 1 || rs.Weights[0] != 1.5 {
		t.Fatalf("committed state %+v", rs)
	}
	// Round 2 opened with no admits: it is the pending round to complete.
	if rs.Pending == nil || rs.Pending.Round != 2 || len(rs.Pending.Admitted) != 0 {
		t.Fatalf("pending %+v", rs.Pending)
	}
}

func TestRecoverServerCheckpointPlusTail(t *testing.T) {
	rec := &journal.Recovered{
		Checkpoint: &wire.JournalCheckpoint{
			Seq: 9, NextRound: 5, Version: 4, Weights: []float64{2, 3},
			BenchedUntil:  []uint32{0, 7},
			DepartedUntil: []uint32{0, 0},
			Strikes:       []uint32{0, 2},
			AwaitRejoin:   []uint32{0, 0},
			TimedOut:      2,
		},
		Records: []*wire.JournalRecord{
			jrRoundStart(5, []uint32{0}, 4),
			jrAdmit(5, 0, 10, []float64{4, 5}),
			jrCommit(5, 5, []float64{3, 4}),
		},
	}
	rs, err := RecoverServer(rec, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NextRound != 6 || rs.Version != 5 || rs.Weights[0] != 3 || rs.Pending != nil {
		t.Fatalf("recovered %+v", rs)
	}
	// The checkpointed roster survived: client 1 is benched until round 7.
	if rs.mem.eligible(1, 6) || !rs.mem.eligible(1, 7) || rs.mem.strikes[1] != 2 || rs.mem.timedOut != 2 {
		t.Fatalf("roster not restored: %+v", rs.mem)
	}
}

func TestRecoverServerBufferedInflightAccounting(t *testing.T) {
	// 4 dispatched − 1 admitted − 1 struck in flight − 1 departed = 1 open.
	rec := &journal.Recovered{Records: []*wire.JournalRecord{
		jrRoundStart(1, []uint32{0, 1, 2, 3}, 0),
		jrAdmit(1, 0, 10, []float64{1}),
		jrLedger(wire.LedgerStrike, 1, 1, 1),
		jrLedger(wire.LedgerDepart, 2, 0, 0),
	}}
	rs, err := RecoverServer(rec, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Inflight != 1 {
		t.Fatalf("inflight %d, want 1", rs.Inflight)
	}
	if rs.Pending == nil || rs.Pending.Round != 1 || len(rs.Pending.Admitted) != 1 {
		t.Fatalf("pending %+v", rs.Pending)
	}
	// The departed client is gone for good; the struck one is benched.
	if rs.mem.departedUntil[2] != math.MaxInt || rs.mem.strikes[1] != 1 {
		t.Fatalf("roster %+v", rs.mem)
	}
}

func TestRecoverServerBufferedCommitSettlesBatch(t *testing.T) {
	rec := &journal.Recovered{Records: []*wire.JournalRecord{
		jrRoundStart(1, []uint32{0, 1, 2}, 0),
		jrAdmit(1, 0, 10, []float64{1}),
		jrAdmit(1, 1, 10, []float64{2}),
		jrCommit(1, 1, []float64{0.5}),
		jrRoundStart(2, []uint32{0, 1}, 1),
	}}
	rs, err := RecoverServer(rec, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	// 3 − 2 admitted + 2 re-dispatched = 3 in flight, nothing pending.
	if rs.Inflight != 3 || rs.Pending != nil || rs.NextRound != 2 {
		t.Fatalf("recovered %+v", rs)
	}
}

func TestRecoverServerCorruptShapes(t *testing.T) {
	cases := map[string]struct {
		records []*wire.JournalRecord
		barrier bool
	}{
		"admit outside open round": {
			records: []*wire.JournalRecord{jrAdmit(1, 0, 10, []float64{1})},
			barrier: true,
		},
		"admit for wrong open round": {
			records: []*wire.JournalRecord{
				jrRoundStart(1, []uint32{0}, 0),
				jrAdmit(2, 0, 10, []float64{1}),
			},
			barrier: true,
		},
		"two uncommitted buffered releases": {
			records: []*wire.JournalRecord{
				jrAdmit(1, 0, 10, []float64{1}),
				jrAdmit(2, 1, 10, []float64{2}),
			},
		},
		"ledger client out of roster": {
			records: []*wire.JournalRecord{jrLedger(wire.LedgerStrike, 9, 1, 0)},
			barrier: true,
		},
		"negative inflight": {
			records: []*wire.JournalRecord{jrAdmit(1, 0, 10, []float64{1})},
		},
	}
	for name, tc := range cases {
		if _, err := RecoverServer(&journal.Recovered{Records: tc.records}, 3, tc.barrier); !errors.Is(err, journal.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestRecoverServerApplyRestoresAggregators(t *testing.T) {
	w0 := []float64{0, 0, 0}
	for _, prec := range []string{AggF64, AggF32} {
		cfg := Config{Algorithm: AlgoFedAvg, Rounds: 1, AggPrecision: prec}.WithDefaults()
		agg, err := NewAggregator(cfg, w0, 2)
		if err != nil {
			t.Fatal(err)
		}
		rs := &RecoveredServer{Weights: []float64{1, 2, 3}, Version: 7}
		if err := rs.Apply(agg); err != nil {
			t.Fatal(err)
		}
		if agg.Version() != 7 {
			t.Fatalf("prec=%s: version %d, want 7", prec, agg.Version())
		}
		if w := agg.WeightsInto(nil); w[2] != 3 {
			t.Fatalf("prec=%s: weights %v", prec, w)
		}
		closeAggregator(agg)
	}
	// Dimension mismatch is an error, not a silent partial copy.
	agg, err := NewAggregator(Config{Algorithm: AlgoFedAvg, Rounds: 1}.WithDefaults(), w0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAggregator(agg)
	if err := (&RecoveredServer{Weights: []float64{1}, Version: 1}).Apply(agg); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
