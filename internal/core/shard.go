package core

import (
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// This file implements the hierarchical sharded aggregation tier
// (Config.AggShards): N long-lived shard workers that fold a batch
// concurrently and tree-reduce wire.PartialAggregate messages into the
// global model.
//
// Shards partition the *index space*, not the cohort. Every shard folds
// the whole batch over its own contiguous range [lo, hi) of the
// accumulator with the same cache-blocked kernels as the flat path, so
// per element the operation sequence is exactly the single-aggregator
// one — bit-identity by construction, at any tier width. The reduce then
// merges disjoint adjacent ranges, which is concatenation: associative
// and arithmetic-free, so no tree shape can perturb a bit. A
// cohort-partitioned tier (each shard folding a subset of clients into a
// full-width partial sum) could not satisfy that invariant: summing
// partials reassociates the floating-point fold.
//
// Each shard owns its range's accumulator state across rounds (the
// buffered rule folds convexly into prior state), and the flat model the
// rest of the server reads is a mirror reassembled by the reduce after
// every fold — exactly the state ownership a multi-process tier would
// have, realized here with goroutines and one shared backing array so
// the steady state stays allocation-free.
//
// The tier deliberately does not use the process-wide chunk pool
// (parallel.go): the pool serializes operations under a mutex, which
// would fold shards one at a time. Shard workers are their own
// goroutines, fed by per-shard channels and reused for the lifetime of
// the aggregator; Close releases them.

// tierJob asks a shard worker for one fold over its range.
type tierJob struct {
	// convex selects FoldKScaledSrc (the buffered staleness rule) over
	// FoldKSrc (the zero-then-accumulate FedAvg average).
	convex bool
}

// tierShard is one shard worker's identity: its owned index range and
// the channel that feeds it.
type tierShard struct {
	lo, hi int
	jobs   chan tierJob
}

// shardTier runs the sharded fold + tree-reduce for an aggregator.
type shardTier struct {
	// acc is the union of the shards' range-owned accumulator state:
	// shard s exclusively reads and writes acc[lo_s:hi_s). It is the
	// authoritative model between rounds; the aggregator's flat vector is
	// the mirror the reduce refreshes.
	acc    []float64
	shards []tierShard
	parts  []*wire.PartialAggregate

	// srcs is the batch under fold, visible to the workers for the
	// duration of one fold call (the tier is single-fold at a time, like
	// every Aggregator).
	srcs []tensor.FoldSrc
	wg   sync.WaitGroup

	closed bool
}

// newShardTier builds the tier over a copy of w0 and starts one worker
// per shard. Shard ranges are comm.ShardRange(dim, n, s) — a pure
// function of (dim, n), so state ownership and reduce order are fixed
// for the run.
func newShardTier(w0 []float64, n int) *shardTier {
	t := &shardTier{
		acc:    append([]float64(nil), w0...),
		shards: make([]tierShard, n),
		parts:  make([]*wire.PartialAggregate, n),
	}
	for s := 0; s < n; s++ {
		lo, hi := comm.ShardRange(len(w0), n, s)
		t.shards[s] = tierShard{lo: lo, hi: hi, jobs: make(chan tierJob, 1)}
		t.parts[s] = &wire.PartialAggregate{}
		go t.worker(s)
	}
	return t
}

// worker folds jobs over one shard's range until the tier closes.
func (t *shardTier) worker(s int) {
	sh := &t.shards[s]
	for job := range sh.jobs {
		if job.convex {
			tensor.FoldKScaledSrc(t.acc, sh.lo, sh.hi, t.srcs)
		} else {
			tensor.FoldKSrc(t.acc, sh.lo, sh.hi, t.srcs)
		}
		t.wg.Done()
	}
}

// fold fans the batch out to every shard worker, gathers the per-shard
// PartialAggregates, tree-reduces them, and writes the reassembled model
// into dst. version stamps the partials for cross-checking the merge.
func (t *shardTier) fold(dst []float64, srcs []tensor.FoldSrc, version uint64, convex bool) error {
	if len(srcs) == 0 {
		return nil
	}
	weight := 0.0
	for i := range srcs {
		weight += srcs[i].W
	}
	t.srcs = srcs
	t.wg.Add(len(t.shards))
	for s := range t.shards {
		t.shards[s].jobs <- tierJob{convex: convex}
	}
	t.wg.Wait()
	t.srcs = nil

	// Gather: one PartialAggregate per shard, its Sum viewing the shard's
	// freshly folded range (full remaining capacity, so adjacent merges
	// reslice instead of copying).
	for s := range t.shards {
		sh := &t.shards[s]
		p := t.parts[s]
		p.Round = uint32(version)
		p.Version = version
		p.ShardID = uint32(s)
		p.Shards = uint32(len(t.shards))
		p.Lo, p.Hi = uint32(sh.lo), uint32(sh.hi)
		p.Weight = weight
		p.Count = uint32(len(srcs))
		p.Sum = t.acc[sh.lo:sh.hi]
	}

	// Tree-reduce: fixed-order pairwise merges, doubling the span each
	// stage — ⌈log₂ N⌉ stages, the shape a distributed tier would run.
	// Each merge validates adjacency and fold identity before
	// concatenating; because the partials alias one contiguous buffer,
	// the concat is a reslice and the only data movement is the final
	// mirror copy.
	for span := 1; span < len(t.parts); span *= 2 {
		for i := 0; i+span < len(t.parts); i += 2 * span {
			if err := t.parts[i].Merge(t.parts[i+span]); err != nil {
				return fmt.Errorf("core: shard reduce: %w", err)
			}
		}
	}
	root := t.parts[0]
	if root.Lo != 0 || int(root.Hi) != len(t.acc) {
		return fmt.Errorf("core: shard reduce covered [%d,%d) of %d", root.Lo, root.Hi, len(t.acc))
	}
	copy(dst, root.Sum)
	return nil
}

// close releases the shard workers. Safe on a nil tier and idempotent.
func (t *shardTier) close() {
	if t == nil || t.closed {
		return
	}
	t.closed = true
	for s := range t.shards {
		close(t.shards[s].jobs)
	}
}

// Close releases the tier's shard workers; a server without a tier needs
// no teardown. Runs (core.Run) and tests that configure AggShards > 1
// should close the aggregator when done so long-lived processes hosting
// many runs do not accumulate parked goroutines.
func (s *FedAvgServer) Close() error { s.tier.close(); return nil }

// Close releases the tier's shard workers; see FedAvgServer.Close.
func (b *BufferedAggregator) Close() error { b.tier.close(); return nil }

// closeAggregator tears down any shard tier an aggregator holds.
func closeAggregator(a Aggregator) {
	if c, ok := a.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}
