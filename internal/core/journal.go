package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/journal"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// errServerKilled is the sentinel a round loop returns when the scripted
// in-process kill -9 fires: the run's "brain" (scheduler, aggregator,
// membership) is discarded without any cleanup and Run's recovery driver
// rebuilds it from the journal, exactly as a restarted process would.
var errServerKilled = errors.New("core: server killed")

// KillWindow pins where inside a round an in-process server kill lands.
// The windows are the three recovery-relevant crash positions: a crash
// between rounds recovers bit-identically with no client work at stake; a
// crash after dispatch re-gathers the in-flight round; a crash after the
// admits are journaled but before the commit refolds the journaled batch
// bit-identically without re-asking any client.
type KillWindow int

// Kill windows, in round order.
const (
	// KillBetweenRounds fires at the top of the round loop, before any
	// dispatch — nothing is in flight; recovery is a pure state reload.
	KillBetweenRounds KillWindow = iota
	// KillAfterDispatch fires after the cohort received the model but
	// before any update was gathered — recovery re-gathers the round.
	KillAfterDispatch
	// KillBeforeCommit fires after the round's admits were journaled but
	// before the aggregate committed — recovery refolds from the journal.
	KillBeforeCommit
	numKillWindows
)

// String names the window for logs and test failures.
func (w KillWindow) String() string {
	switch w {
	case KillBetweenRounds:
		return "between-rounds"
	case KillAfterDispatch:
		return "after-dispatch"
	case KillBeforeCommit:
		return "before-commit"
	}
	return fmt.Sprintf("window(%d)", int(w))
}

// ServerKill schedules one in-process server death for a journaled run.
type ServerKill struct {
	Round  int        // 1-based round (or buffered release) the kill targets
	Window KillWindow // where inside the round it lands
	Gap    int        // rounds of simulated downtime before recovery
}

// SoakStats accounts a journaled run's crash-and-recover history.
type SoakStats struct {
	// Kills counts the in-process server deaths executed.
	Kills int
	// Recoveries counts successful journal recoveries (== Kills unless the
	// run also started from a pre-existing journal).
	Recoveries int
	// ReplayedRecords totals the WAL records replayed across recoveries.
	ReplayedRecords int
	// RecoverySec lists each recovery's wall time (replay + state rebuild),
	// in order.
	RecoverySec []float64
}

// journalWriter is the round loops' write-ahead hook: every recovery-
// relevant transition is appended to the journal before it takes effect.
// A nil *journalWriter is valid and inert, so the unjournaled path pays
// only nil checks. Append failures stick: the first error poisons the
// writer and surfaces at the next commit barrier, so a half-journaled
// round can never be committed as if it were durable.
type journalWriter struct {
	j   *journal.Journal
	err error

	checkpointEvery int
	commits         int

	kills  []ServerKill
	fired  []bool
	gap    int // downtime of the kill that just fired
	killed int // kills fired so far

	scratch wire.JournalRecord
}

func newJournalWriter(j *journal.Journal, checkpointEvery int, kills []ServerKill) *journalWriter {
	return &journalWriter{
		j:               j,
		checkpointEvery: checkpointEvery,
		kills:           kills,
		fired:           make([]bool, len(kills)),
	}
}

// shouldKill reports whether a scripted kill lands at this window of this
// round, consuming it. The caller must then return errServerKilled without
// touching any state — that is what makes the kill a faithful kill -9.
func (jw *journalWriter) shouldKill(w KillWindow, round int) bool {
	if jw == nil {
		return false
	}
	for i, k := range jw.kills {
		if !jw.fired[i] && k.Round == round && k.Window == w {
			jw.fired[i] = true
			jw.gap = k.Gap
			jw.killed++
			return true
		}
	}
	return false
}

// append journals one record, with the sticky-error discipline.
func (jw *journalWriter) append(rec *wire.JournalRecord) {
	if jw == nil || jw.err != nil {
		return
	}
	jw.err = jw.j.Append(rec)
}

// roundStart journals a round open (barrier) or dispatch (buffered).
func (jw *journalWriter) roundStart(round int, cohort []int, version uint64) {
	if jw == nil {
		return
	}
	rec := &jw.scratch
	rec.Reset()
	rec.Op = wire.JournalRoundStart
	rec.Round = uint32(round)
	rec.Version = version
	for _, c := range cohort {
		rec.Cohort = append(rec.Cohort, uint32(c))
	}
	jw.append(rec)
}

// admit journals one admitted update with its dense decoded primal. skip
// lists client IDs already journaled for this round (a resumed round's
// pre-crash admits), which must not be double-counted.
func (jw *journalWriter) admitBatch(round int, data []*wire.LocalUpdate, skip map[int]bool) {
	if jw == nil {
		return
	}
	for _, u := range data {
		if skip[int(u.ClientID)] {
			continue
		}
		rec := &jw.scratch
		rec.Reset()
		rec.Op = wire.JournalAdmit
		rec.Round = uint32(round)
		rec.ClientID = u.ClientID
		rec.NumSamples = u.NumSamples
		rec.BaseVersion = u.BaseVersion
		rec.Primal = append(rec.Primal, u.Primal...)
		jw.append(rec)
	}
}

// ledger journals one membership mutation — wired as the membership's
// onLedger callback so every roster change self-journals at its source.
func (jw *journalWriter) ledger(op uint8, client, round, param uint32) {
	if jw == nil {
		return
	}
	rec := &jw.scratch
	rec.Reset()
	rec.Op = wire.JournalLedger
	rec.LedgerOp = op
	rec.ClientID = client
	rec.Round = round
	rec.Param = param
	jw.append(rec)
}

// commit journals the round's close — the new global model — then flushes
// the sticky error: a round is durable only when everything journaled
// before it landed. Every checkpointEvery-th commit also compacts the WAL
// into a checkpoint snapshotting model + membership + inflight count.
func (jw *journalWriter) commit(round int, agg Aggregator, mem *membership, inflight int) error {
	if jw == nil {
		return nil
	}
	rec := &jw.scratch
	rec.Reset()
	rec.Op = wire.JournalCommit
	rec.Round = uint32(round)
	rec.Version = uint64(agg.Version())
	rec.Weights = agg.WeightsInto(rec.Weights)
	jw.append(rec)
	if jw.err != nil {
		return fmt.Errorf("core: journal round %d: %w", round, jw.err)
	}
	jw.commits++
	if jw.checkpointEvery > 0 && jw.commits%jw.checkpointEvery == 0 {
		cp := &wire.JournalCheckpoint{
			NextRound: uint32(round + 1),
			Version:   uint64(agg.Version()),
			Weights:   rec.Weights,
			Inflight:  uint64(inflight),
		}
		mem.snapshot(cp)
		if err := jw.j.Checkpoint(cp); err != nil {
			jw.err = err
			return fmt.Errorf("core: checkpoint after round %d: %w", round, err)
		}
	}
	return nil
}

// validateJournalConfig rejects configurations the journal cannot make
// crash-recoverable. Journaling needs every admitted update's dense primal
// in hand at admit time (so a refold needs no client cooperation), which
// pins the FedAvg family on the flat accumulator: the ADMM servers carry
// per-client dual state no admit record captures, the streamed-chunk path
// folds without ever materializing a primal, subset uploads admit partial
// vectors, and the shard tier distributes the accumulator across worker
// state that a weights-only commit cannot reseed.
func validateJournalConfig(cfg Config) error {
	if cfg.Algorithm != AlgoFedAvg {
		return fmt.Errorf("core: journaling requires FedAvg (ADMM dual state is not journaled)")
	}
	if cfg.StreamChunk > 0 {
		return fmt.Errorf("core: journaling and StreamChunk cannot combine (chunk folds never materialize an admit primal)")
	}
	if cfg.SubsetFrac != 0 {
		return fmt.Errorf("core: journaling and SubsetFrac cannot combine (subset admits are partial vectors)")
	}
	if cfg.AggShards > 1 {
		return fmt.Errorf("core: journaling and AggShards cannot combine (shard state cannot be reseeded from a weights-only commit)")
	}
	if cfg.ClientFraction > 0 && cfg.ClientFraction < 1 {
		return fmt.Errorf("core: journaling and ClientFraction cannot combine (zero-weight echoes are not journaled); use the sampled scheduler")
	}
	return nil
}

// restoreAggregator loads recovered weights and version into a freshly
// constructed aggregator — the same-package escape hatch recovery uses to
// put the "brain" back exactly where the crashed process left it. Under
// the f32 accumulator the restored float64 mirror re-narrows to the
// pre-crash float32 bits (Narrow∘Widen is the identity on float32).
func restoreAggregator(agg Aggregator, w []float64, version int) error {
	switch a := agg.(type) {
	case *FedAvgServer:
		if len(w) != len(a.W) {
			return fmt.Errorf("core: recovered model has %d parameters, aggregator %d", len(w), len(a.W))
		}
		copy(a.W, w)
		a.version = version
		if a.prec32 {
			a.w32 = tensor.Narrow(a.w32, a.W)
			a.w32stale = false
		}
		return nil
	case *BufferedAggregator:
		if len(w) != len(a.w) {
			return fmt.Errorf("core: recovered model has %d parameters, aggregator %d", len(w), len(a.w))
		}
		copy(a.w, w)
		a.version = version
		if a.prec32 {
			a.w32 = tensor.Narrow(a.w32, a.w)
			a.w32stale = false
		}
		return nil
	default:
		return fmt.Errorf("core: aggregator %T is not journal-recoverable", agg)
	}
}

// goneForGood is the wire sentinel for a permanent departure; core uses
// math.MaxInt in memory.
const goneForGood = ^uint32(0)

// snapshot writes the roster into a checkpoint.
func (m *membership) snapshot(cp *wire.JournalCheckpoint) {
	n := len(m.departedUntil)
	cp.DepartedUntil = cp.DepartedUntil[:0]
	cp.BenchedUntil = cp.BenchedUntil[:0]
	cp.Strikes = cp.Strikes[:0]
	cp.AwaitRejoin = cp.AwaitRejoin[:0]
	for c := 0; c < n; c++ {
		d := uint32(0)
		if m.departedUntil[c] == math.MaxInt {
			d = goneForGood
		} else {
			d = uint32(m.departedUntil[c])
		}
		cp.DepartedUntil = append(cp.DepartedUntil, d)
		cp.BenchedUntil = append(cp.BenchedUntil, uint32(m.benchedUntil[c]))
		cp.Strikes = append(cp.Strikes, uint32(m.strikes[c]))
		aw := uint32(0)
		if m.awaitingRejoin[c] {
			aw = 1
		}
		cp.AwaitRejoin = append(cp.AwaitRejoin, aw)
	}
	cp.Rejoined = uint64(m.rejoined)
	cp.TimedOut = uint64(m.timedOut)
}

// restore loads the roster from a checkpoint. The roster size must match
// the federation; a checkpoint from a different federation is corrupt.
func (m *membership) restore(cp *wire.JournalCheckpoint) error {
	if len(cp.DepartedUntil) == 0 {
		// A checkpoint of an all-healthy roster omits the arrays entirely;
		// the fresh zero roster is already correct.
		m.rejoined = int(cp.Rejoined)
		m.timedOut = int(cp.TimedOut)
		return nil
	}
	if len(cp.DepartedUntil) != len(m.departedUntil) {
		return fmt.Errorf("core: checkpoint roster has %d clients, federation %d",
			len(cp.DepartedUntil), len(m.departedUntil))
	}
	for c := range cp.DepartedUntil {
		if cp.DepartedUntil[c] == goneForGood {
			m.departedUntil[c] = math.MaxInt
		} else {
			m.departedUntil[c] = int(cp.DepartedUntil[c])
		}
		m.benchedUntil[c] = int(cp.BenchedUntil[c])
		m.strikes[c] = int(cp.Strikes[c])
		m.awaitingRejoin[c] = cp.AwaitRejoin[c] != 0
	}
	m.rejoined = int(cp.Rejoined)
	m.timedOut = int(cp.TimedOut)
	return nil
}
