// Package core implements the federated-learning engine of the APPFL
// reproduction: the server/client algorithm interfaces (the analogs of
// APPFL's BaseServer and BaseClient Python classes), the three algorithms
// the paper evaluates — FedAvg, ICEADMM, and the paper's new IIADMM
// (Algorithm 1) — and a synchronous round runner that orchestrates them
// over any comm transport. Extensions from the paper's future-work list
// (asynchronous aggregation, adaptive penalty) live here too.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Algorithm names accepted in Config.Algorithm.
const (
	AlgoFedAvg  = "fedavg"
	AlgoICEADMM = "iceadmm"
	AlgoIIADMM  = "iiadmm"
)

// DP modes accepted in Config.DPMode.
const (
	DPModeOutput    = "output"    // perturb the released parameters (Eq. 6)
	DPModeObjective = "objective" // perturb the local objective instead
)

// Aggregation precisions accepted in Config.AggPrecision.
const (
	AggF64 = "f64" // double-precision accumulator (default; bit-exact path)
	AggF32 = "f32" // single-precision accumulator (half the memory traffic)
)

// Config describes one federated run. Zero values select the documented
// defaults, which are calibrated so the three algorithms take comparable
// effective step sizes (and hence comparable DP noise scales, as in the
// paper's tuned comparison).
type Config struct {
	Algorithm string // fedavg | iceadmm | iiadmm

	Rounds     int // T, communication rounds (default 10)
	LocalSteps int // L, local epochs/steps per round (default 10)
	BatchSize  int // mini-batch size for FedAvg/IIADMM (default 64)

	// FedAvg hyperparameters.
	LR       float64 // η (default 1/(Rho+Zeta) so noise scales match)
	Momentum float64 // SGD momentum (default 0.9, per the paper §IV-B)

	// IADMM hyperparameters (ICEADMM, IIADMM).
	Rho  float64 // penalty ρ (default 2)
	Zeta float64 // proximity ζ (default 14)

	// Differential privacy.
	Epsilon float64 // ε̄ per-round budget; +Inf disables noise (default +Inf)
	Clip    float64 // gradient clip bound C (default 1)
	// DPMode selects where the noise enters: "output" (default) perturbs
	// the uploaded parameters, Eq. (6); "objective" perturbs the local
	// objective with a random linear term instead (Chaudhuri et al., the
	// paper's planned advanced scheme). Ignored when Epsilon is infinite.
	DPMode string

	// Pipeline is the ordered update-pipeline spec: the stack of privacy
	// and compression stages every client release passes through, e.g.
	//
	//	"clip:1.0,laplace:0.5,topk:0.1"
	//
	// Stages: clip:C, laplace:EPS, gaussian:EPS[:DELTA], topk:FRAC,
	// quantize[:BITS], f16 (see pipeline.Parse for the grammar and
	// ordering rules). When empty, the legacy fields above define the
	// stack — clip:Clip plus laplace:Epsilon when Epsilon is finite — so
	// existing configs reproduce their pre-pipeline trajectories bit for
	// bit. When set, it replaces Clip/Epsilon entirely; combining it with
	// a finite Epsilon is a validation error (one noise authority).
	Pipeline string

	// DownlinkF16 broadcasts every global model as a float16 payload
	// instead of dense float64 — a ~4x cut of server→client bytes, the
	// downlink mirror of the upload pipeline's compression stages.
	// Clients densify the payload before training; the cast is lossy, so
	// trajectories differ from dense downlink runs.
	DownlinkF16 bool

	// FreezeDual pins every dual variable at zero (λt ≡ 0). This is the
	// reduction under which the IADMM family collapses to FedAvg
	// (Section III-A: λt=0, ζt=0, ρt=1/η) and serves as the ablation that
	// isolates the value of dual information.
	FreezeDual bool

	// AdaptiveRho enables the residual-balancing penalty controller (paper
	// §V, item 2) for the IADMM algorithms: the server re-tunes ρ each
	// round and broadcasts it with the global model so client and server
	// dual updates stay consistent.
	AdaptiveRho bool

	// ClientFraction, when in (0,1), makes only that fraction of clients
	// train each round (FedAvg only); the rest echo the global model with
	// zero weight. 0 or 1 means full participation. This is the legacy
	// client-side mechanism: every client still downloads the model each
	// round. Server-side cohort selection (Scheduler = SchedSampled)
	// subsumes it without the wasted traffic.
	ClientFraction float64

	// Scheduler selects the participation policy: SchedSyncAll (default)
	// barriers on every client each round; SchedSampled schedules a
	// pseudorandom cohort per round (true partial participation — clients
	// outside the cohort receive nothing); SchedBuffered releases an
	// aggregation as soon as BufferK updates arrive, FedBuff-style, with
	// staleness-weighted mixing.
	Scheduler string

	// CohortFraction is the fraction of clients scheduled per round under
	// SchedSampled, in (0,1].
	CohortFraction float64
	// CohortMin floors the sampled cohort size (default 1).
	CohortMin int
	// CohortSeed drives cohort selection (default Seed).
	CohortSeed uint64

	// BufferK is the buffer size of SchedBuffered: an aggregation is
	// released after this many updates arrive (default: half the clients).
	BufferK int
	// MaxStaleness drops buffered updates whose base model is more than
	// this many releases old (0 = keep everything).
	MaxStaleness int
	// AsyncAlpha is the base mixing rate of the staleness-weighted rule
	// used by SchedBuffered, in (0,1]; 0 selects the default 0.6.
	AsyncAlpha float64
	// AsyncGamma is the staleness-decay exponent, >= 0; 0 selects the
	// default 0.5 (like every zero-valued Config field — to effectively
	// disable the staleness discount, pass a vanishing positive value
	// such as 1e-12).
	AsyncGamma float64

	// AggPrecision selects the arithmetic of the aggregation fold: "f64"
	// (the default) keeps the double-precision accumulator whose results
	// are bit-identical across worker widths; "f32" accumulates in single
	// precision, halving the fold's memory footprint and traffic at the
	// cost of ~1e-7 relative error per fold (see the error-bound test in
	// internal/core). FedAvg-family rules only: the ADMM servers carry
	// dual state whose consistency argument is defined in float64.
	AggPrecision string

	// AggWorkers is the width of the sharded aggregation hot path: the
	// server splits the weight vector into deterministic contiguous chunks
	// and folds them on a worker pool, and the round decode
	// (DecodeUpdates) fans out per update across the same pool. 0 (the
	// default) selects GOMAXPROCS; 1 forces the serial path. Every
	// aggregation rule is element-wise with a fixed per-element fold
	// order, so results are bit-identical across widths.
	AggWorkers int

	// AggShards is the width of the hierarchical sharded aggregation tier:
	// n > 1 partitions the accumulator index space into n contiguous
	// ranges, each owned and folded by a dedicated long-lived shard
	// worker, and the resulting wire.PartialAggregate messages tree-reduce
	// back into the global model. Shard ranges are a pure function of
	// (dim, n) and every rule is element-wise with a fixed per-element
	// fold order, so the sharded trajectory is bit-identical to the
	// single-aggregator one at any width. 0 or 1 selects the flat path.
	// FedAvg-family rules only (like AggPrecision), and not combinable
	// with AggPrecision=f32 (one accumulator authority).
	AggShards int

	// StreamChunk, when positive, streams every uplink as a sequence of
	// fixed-size wire.ModelChunk messages of this many coordinates instead
	// of one monolithic LocalUpdate: the server folds each chunk into an
	// O(chunk) accumulator window as it arrives (StreamSession), so peak
	// transient memory tracks the chunk size, not the model dimension.
	// Chunking is invisible to the arithmetic — the streamed trajectory is
	// bit-identical to the monolithic one. FedAvg behind a barrier
	// scheduler (syncall or sampled) only, with Pipeline empty or the pure
	// element-wise "f16"-suffixed stacks; not combinable with AggShards,
	// AggPrecision=f32, or SubsetFrac.
	StreamChunk int

	// SubsetFrac, when in (0,1), makes every client upload only the first
	// ceil(SubsetFrac·dim) coordinates of its trained vector as a
	// wire.EncSubset payload — the LoRA-style partial-parameter update.
	// The server scatter-folds listed coordinates and every unlisted
	// coordinate keeps its weighted share of the current global value (see
	// subset.go). FedAvg behind a barrier scheduler only; not combinable
	// with Pipeline, AggShards, AggPrecision=f32, or StreamChunk.
	SubsetFrac float64

	// RoundTimeout bounds how long the server waits on a round's gather.
	// Zero (the default) waits forever — the pre-fault-tolerance behavior,
	// under which a client that never reports hangs the round. With a
	// timeout, a barrier round completes with whoever reported (quorum
	// permitting), the missing clients are forgiven and benched with
	// exponential backoff, and a buffered round releases whatever arrived
	// instead of blocking on K arrivals that will never come.
	RoundTimeout time.Duration
	// MinCohort is the quorum: the minimum number of survivors a
	// deadline-cut barrier round may aggregate (and the minimum cohort the
	// scheduler may dispatch to once failed clients are excluded). Fewer
	// survivors abort the run with ErrQuorum. 0 defaults to 1.
	MinCohort int

	Seed uint64 // master seed (default 1)
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgoIIADMM
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalSteps == 0 {
		c.LocalSteps = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Rho == 0 {
		c.Rho = 2
	}
	if c.Zeta == 0 {
		c.Zeta = 14
	}
	if c.LR == 0 {
		c.LR = 1 / (c.Rho + c.Zeta)
	}
	if c.Momentum == 0 && c.Algorithm == AlgoFedAvg {
		c.Momentum = 0.9
	}
	if c.Epsilon == 0 {
		c.Epsilon = math.Inf(1)
	}
	if c.Clip == 0 {
		c.Clip = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedSyncAll
	}
	if c.AggPrecision == "" {
		c.AggPrecision = AggF64
	}
	if c.Scheduler == SchedBuffered {
		if c.AsyncAlpha == 0 {
			c.AsyncAlpha = DefaultAsyncAlpha
		}
		if c.AsyncGamma == 0 {
			c.AsyncGamma = DefaultAsyncGamma
		}
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Algorithm {
	case AlgoFedAvg, AlgoICEADMM, AlgoIIADMM:
	default:
		return fmt.Errorf("core: unknown algorithm %q", c.Algorithm)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("core: Rounds must be positive, got %d", c.Rounds)
	}
	if c.LocalSteps <= 0 {
		return fmt.Errorf("core: LocalSteps must be positive, got %d", c.LocalSteps)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: LR must be positive, got %v", c.LR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("core: Momentum must be in [0,1), got %v", c.Momentum)
	}
	if c.Rho <= 0 || c.Zeta < 0 {
		return fmt.Errorf("core: need Rho > 0 and Zeta >= 0, got %v/%v", c.Rho, c.Zeta)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: Epsilon must be positive (use +Inf to disable), got %v", c.Epsilon)
	}
	if c.Clip <= 0 {
		return fmt.Errorf("core: Clip must be positive, got %v", c.Clip)
	}
	if c.AdaptiveRho && c.Algorithm == AlgoFedAvg {
		return fmt.Errorf("core: AdaptiveRho applies only to the IADMM algorithms")
	}
	switch c.DPMode {
	case "", DPModeOutput, DPModeObjective:
	default:
		return fmt.Errorf("core: unknown DPMode %q", c.DPMode)
	}
	if c.Pipeline != "" {
		// The earlier Epsilon check already rejected non-positive values,
		// so a non-infinite Epsilon here is a real finite budget.
		if !math.IsInf(c.Epsilon, 1) {
			return fmt.Errorf("core: Pipeline and a finite Epsilon both configure noise; set the budget in the pipeline spec only")
		}
		if _, err := pipeline.Parse(c.Pipeline); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.AggWorkers < 0 {
		return fmt.Errorf("core: AggWorkers must be >= 0 (0 selects GOMAXPROCS), got %d", c.AggWorkers)
	}
	switch c.AggPrecision {
	case "", AggF64:
	case AggF32:
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: AggPrecision=f32 requires FedAvg (the ADMM dual-consistency argument is defined in float64)")
		}
	default:
		return fmt.Errorf("core: unknown AggPrecision %q (want %q or %q)", c.AggPrecision, AggF64, AggF32)
	}
	if c.AggShards < 0 {
		return fmt.Errorf("core: AggShards must be >= 0 (0 or 1 selects the flat path), got %d", c.AggShards)
	}
	if c.AggShards > 1 {
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: AggShards requires FedAvg-family rules (the ADMM servers carry coupled dual state)")
		}
		if c.AggPrecision == AggF32 {
			return fmt.Errorf("core: AggShards and AggPrecision=f32 cannot combine (one accumulator authority)")
		}
	}
	if c.RoundTimeout < 0 {
		return fmt.Errorf("core: RoundTimeout must be >= 0, got %v", c.RoundTimeout)
	}
	if c.MinCohort < 0 {
		return fmt.Errorf("core: MinCohort must be >= 0, got %d", c.MinCohort)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("core: ClientFraction must be in [0,1], got %v", c.ClientFraction)
	}
	if c.ClientFraction > 0 && c.ClientFraction < 1 && c.Algorithm != AlgoFedAvg {
		return fmt.Errorf("core: partial participation requires FedAvg (IADMM servers hold per-client duals)")
	}
	switch c.Scheduler {
	case "", SchedSyncAll:
	case SchedSampled:
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: sampled cohorts require FedAvg (IADMM servers hold per-client duals)")
		}
		if c.CohortFraction <= 0 || c.CohortFraction > 1 {
			return fmt.Errorf("core: sampled scheduler needs CohortFraction in (0,1], got %v", c.CohortFraction)
		}
		if c.CohortMin < 0 {
			return fmt.Errorf("core: CohortMin must be >= 0, got %d", c.CohortMin)
		}
	case SchedBuffered:
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: buffered scheduling requires FedAvg local solvers")
		}
		if c.BufferK < 0 {
			return fmt.Errorf("core: BufferK must be >= 0, got %d", c.BufferK)
		}
		if c.MaxStaleness < 0 {
			return fmt.Errorf("core: MaxStaleness must be >= 0, got %d", c.MaxStaleness)
		}
		if c.AsyncAlpha < 0 || c.AsyncAlpha > 1 {
			return fmt.Errorf("core: AsyncAlpha must be in (0,1] (0 selects the default), got %v", c.AsyncAlpha)
		}
		if c.AsyncGamma < 0 {
			return fmt.Errorf("core: AsyncGamma must be >= 0, got %v", c.AsyncGamma)
		}
	default:
		return fmt.Errorf("core: unknown scheduler %q", c.Scheduler)
	}
	if c.Scheduler != "" && c.Scheduler != SchedSyncAll && c.ClientFraction > 0 && c.ClientFraction < 1 {
		return fmt.Errorf("core: ClientFraction (client-side echo) cannot combine with the %s scheduler", c.Scheduler)
	}
	if c.StreamChunk < 0 {
		return fmt.Errorf("core: StreamChunk must be >= 0 (0 selects the monolithic path), got %d", c.StreamChunk)
	}
	if c.StreamChunk > 0 {
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: StreamChunk requires FedAvg (the chunk window mirrors its element-wise fold)")
		}
		switch c.Scheduler {
		case "", SchedSyncAll, SchedSampled:
		default:
			return fmt.Errorf("core: StreamChunk requires a barrier scheduler (syncall or sampled), got %q", c.Scheduler)
		}
		if c.AggShards > 1 {
			return fmt.Errorf("core: StreamChunk and AggShards cannot combine (one accumulator authority)")
		}
		if c.AggPrecision == AggF32 {
			return fmt.Errorf("core: StreamChunk and AggPrecision=f32 cannot combine (the chunk fold is defined on the float64 accumulator)")
		}
		if c.RoundTimeout > 0 {
			return fmt.Errorf("core: StreamChunk and RoundTimeout cannot combine (the chunk gather has no forgive path)")
		}
		if c.Pipeline != "" {
			// Only a pipeline whose whole inverse is a pure per-coordinate
			// f16 decode can fold chunk-wise without changing a bit.
			specs, err := pipeline.Parse(c.Pipeline)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			built, err := specs.Build(nil)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if fs, ok := built.Fused(); !ok || fs.FusedEnc() != wire.EncFloat16 {
				return fmt.Errorf("core: StreamChunk supports only dense or f16 uplinks, not pipeline %q", c.Pipeline)
			}
		}
	}
	if c.SubsetFrac != 0 {
		if c.SubsetFrac < 0 || c.SubsetFrac >= 1 {
			return fmt.Errorf("core: SubsetFrac must be in (0,1), got %v", c.SubsetFrac)
		}
		if c.Algorithm != AlgoFedAvg {
			return fmt.Errorf("core: SubsetFrac requires FedAvg (the scatter-fold extends its weighting rule)")
		}
		switch c.Scheduler {
		case "", SchedSyncAll, SchedSampled:
		default:
			return fmt.Errorf("core: SubsetFrac requires a barrier scheduler (syncall or sampled), got %q", c.Scheduler)
		}
		if c.Pipeline != "" {
			return fmt.Errorf("core: SubsetFrac and Pipeline cannot combine (the subset is cut after the legacy clip stage)")
		}
		if c.AggShards > 1 || c.AggPrecision == AggF32 {
			return fmt.Errorf("core: SubsetFrac requires the flat float64 accumulator (no AggShards, no f32)")
		}
		if c.StreamChunk > 0 {
			return fmt.Errorf("core: SubsetFrac and StreamChunk cannot combine (a subset upload is already sub-O(dim))")
		}
	}
	return nil
}

// Participates reports deterministically whether a client trains in a
// round under partial participation. Server and clients evaluate the same
// rule from the shared seed, so no participant list crosses the network.
func Participates(seed uint64, round, client int, fraction float64) bool {
	if fraction <= 0 || fraction >= 1 {
		return true
	}
	x := seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(client) * 0xbf58476d1ce4e5b9)
	// splitmix64 finalizer
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < fraction
}

// CommunicatesDual reports whether the algorithm uploads dual vectors in
// addition to primal vectors — true only for ICEADMM, which is exactly the
// communication overhead IIADMM eliminates (Section III-A).
func (c Config) CommunicatesDual() bool { return c.Algorithm == AlgoICEADMM }
