// Package core implements the federated-learning engine of the APPFL
// reproduction: the server/client algorithm interfaces (the analogs of
// APPFL's BaseServer and BaseClient Python classes), the three algorithms
// the paper evaluates — FedAvg, ICEADMM, and the paper's new IIADMM
// (Algorithm 1) — and a synchronous round runner that orchestrates them
// over any comm transport. Extensions from the paper's future-work list
// (asynchronous aggregation, adaptive penalty) live here too.
package core

import (
	"fmt"
	"math"
)

// Algorithm names accepted in Config.Algorithm.
const (
	AlgoFedAvg  = "fedavg"
	AlgoICEADMM = "iceadmm"
	AlgoIIADMM  = "iiadmm"
)

// DP modes accepted in Config.DPMode.
const (
	DPModeOutput    = "output"    // perturb the released parameters (Eq. 6)
	DPModeObjective = "objective" // perturb the local objective instead
)

// Config describes one federated run. Zero values select the documented
// defaults, which are calibrated so the three algorithms take comparable
// effective step sizes (and hence comparable DP noise scales, as in the
// paper's tuned comparison).
type Config struct {
	Algorithm string // fedavg | iceadmm | iiadmm

	Rounds     int // T, communication rounds (default 10)
	LocalSteps int // L, local epochs/steps per round (default 10)
	BatchSize  int // mini-batch size for FedAvg/IIADMM (default 64)

	// FedAvg hyperparameters.
	LR       float64 // η (default 1/(Rho+Zeta) so noise scales match)
	Momentum float64 // SGD momentum (default 0.9, per the paper §IV-B)

	// IADMM hyperparameters (ICEADMM, IIADMM).
	Rho  float64 // penalty ρ (default 2)
	Zeta float64 // proximity ζ (default 14)

	// Differential privacy.
	Epsilon float64 // ε̄ per-round budget; +Inf disables noise (default +Inf)
	Clip    float64 // gradient clip bound C (default 1)
	// DPMode selects where the noise enters: "output" (default) perturbs
	// the uploaded parameters, Eq. (6); "objective" perturbs the local
	// objective with a random linear term instead (Chaudhuri et al., the
	// paper's planned advanced scheme). Ignored when Epsilon is infinite.
	DPMode string

	// FreezeDual pins every dual variable at zero (λt ≡ 0). This is the
	// reduction under which the IADMM family collapses to FedAvg
	// (Section III-A: λt=0, ζt=0, ρt=1/η) and serves as the ablation that
	// isolates the value of dual information.
	FreezeDual bool

	// AdaptiveRho enables the residual-balancing penalty controller (paper
	// §V, item 2) for the IADMM algorithms: the server re-tunes ρ each
	// round and broadcasts it with the global model so client and server
	// dual updates stay consistent.
	AdaptiveRho bool

	// ClientFraction, when in (0,1), makes only that fraction of clients
	// train each round (FedAvg only); the rest echo the global model with
	// zero weight. 0 or 1 means full participation.
	ClientFraction float64

	Seed uint64 // master seed (default 1)
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgoIIADMM
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalSteps == 0 {
		c.LocalSteps = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Rho == 0 {
		c.Rho = 2
	}
	if c.Zeta == 0 {
		c.Zeta = 14
	}
	if c.LR == 0 {
		c.LR = 1 / (c.Rho + c.Zeta)
	}
	if c.Momentum == 0 && c.Algorithm == AlgoFedAvg {
		c.Momentum = 0.9
	}
	if c.Epsilon == 0 {
		c.Epsilon = math.Inf(1)
	}
	if c.Clip == 0 {
		c.Clip = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Algorithm {
	case AlgoFedAvg, AlgoICEADMM, AlgoIIADMM:
	default:
		return fmt.Errorf("core: unknown algorithm %q", c.Algorithm)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("core: Rounds must be positive, got %d", c.Rounds)
	}
	if c.LocalSteps <= 0 {
		return fmt.Errorf("core: LocalSteps must be positive, got %d", c.LocalSteps)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: LR must be positive, got %v", c.LR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("core: Momentum must be in [0,1), got %v", c.Momentum)
	}
	if c.Rho <= 0 || c.Zeta < 0 {
		return fmt.Errorf("core: need Rho > 0 and Zeta >= 0, got %v/%v", c.Rho, c.Zeta)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: Epsilon must be positive (use +Inf to disable), got %v", c.Epsilon)
	}
	if c.Clip <= 0 {
		return fmt.Errorf("core: Clip must be positive, got %v", c.Clip)
	}
	if c.AdaptiveRho && c.Algorithm == AlgoFedAvg {
		return fmt.Errorf("core: AdaptiveRho applies only to the IADMM algorithms")
	}
	switch c.DPMode {
	case "", DPModeOutput, DPModeObjective:
	default:
		return fmt.Errorf("core: unknown DPMode %q", c.DPMode)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("core: ClientFraction must be in [0,1], got %v", c.ClientFraction)
	}
	if c.ClientFraction > 0 && c.ClientFraction < 1 && c.Algorithm != AlgoFedAvg {
		return fmt.Errorf("core: partial participation requires FedAvg (IADMM servers hold per-client duals)")
	}
	return nil
}

// Participates reports deterministically whether a client trains in a
// round under partial participation. Server and clients evaluate the same
// rule from the shared seed, so no participant list crosses the network.
func Participates(seed uint64, round, client int, fraction float64) bool {
	if fraction <= 0 || fraction >= 1 {
		return true
	}
	x := seed ^ (uint64(round) * 0x9e3779b97f4a7c15) ^ (uint64(client) * 0xbf58476d1ce4e5b9)
	// splitmix64 finalizer
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < fraction
}

// CommunicatesDual reports whether the algorithm uploads dual vectors in
// addition to primal vectors — true only for ICEADMM, which is exactly the
// communication overhead IIADMM eliminates (Section III-A).
func (c Config) CommunicatesDual() bool { return c.Algorithm == AlgoICEADMM }
