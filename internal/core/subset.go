package core

import (
	"fmt"

	"repro/internal/wire"
)

// This file implements the server half of LoRA-style partial-parameter
// updates (Config.SubsetFrac): clients upload only a trained coordinate
// subset as a wire.EncSubset payload, and the server scatter-folds the
// listed coordinates while every unlisted coordinate keeps its weighted
// share of the current global value:
//
//	w[i] ← acc[i] + (1 − mass[i])·w[i]
//
// where acc[i] = Σ_u a_u·v_u[i] over the contributors listing i (a_u the
// FedAvg weight, v_u the uploaded value) and mass[i] = Σ_u a_u over the
// same contributors. A coordinate nobody lists has mass 0 and keeps w[i]
// exactly (acc 0, factor exactly 1); a coordinate everybody lists has
// mass Σ a_u — exactly 1 when the weights sum to 1 without rounding — and
// reproduces the plain FedAvg average bit for bit (acc + 0·w). The
// scatter runs in batch order and the final sweep is element-wise, so the
// result is bit-identical across worker widths like every other rule
// here.

// isSubsetBatch reports whether any contributing update arrived
// subset-encoded — the trigger for the scatter-fold path. Subset rounds
// are homogeneous (every trained contributor uploads a subset);
// aggregateSubset enforces that.
func isSubsetBatch(batch []*wire.LocalUpdate) bool {
	for _, u := range batch {
		if u != nil && u.PrimalP != nil && u.PrimalP.Enc == wire.EncSubset {
			return true
		}
	}
	return false
}

// aggregateSubset folds a batch of subset payloads into the model. The
// weights are Aggregate's exactly (float64(n)/total); zero-weight
// contributors are skipped and need not carry a payload.
func (s *FedAvgServer) aggregateSubset(batch []*wire.LocalUpdate) error {
	if s.prec32 || s.tier != nil {
		return fmt.Errorf("core: subset aggregation cannot combine with the f32 accumulator or the sharded tier")
	}
	dim := len(s.W)
	total := 0.0
	for i, u := range batch {
		if u == nil {
			return fmt.Errorf("core: missing update from client %d", i)
		}
		if u.NumSamples == 0 {
			continue
		}
		p := u.PrimalP
		if p == nil || p.Enc != wire.EncSubset {
			return fmt.Errorf("core: client %d uploaded a full update into a subset round", u.ClientID)
		}
		if int(p.Dim) != dim {
			return fmt.Errorf("core: client %d subset spans dimension %d, model is %d", u.ClientID, p.Dim, dim)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: client %d update: %w", u.ClientID, err)
		}
		total += float64(u.NumSamples)
	}
	s.version++
	if total == 0 {
		return nil
	}
	if len(s.subMass) != dim {
		s.subMass = make([]float64, dim)
		s.subAcc = make([]float64, dim)
	} else {
		for i := range s.subMass {
			s.subMass[i] = 0
			s.subAcc[i] = 0
		}
	}
	// Scatter in batch order — the same per-coordinate fold order as the
	// dense kernel, so full-coverage subsets reproduce its sums exactly.
	for _, u := range batch {
		if u.NumSamples == 0 {
			continue
		}
		a := float64(u.NumSamples) / total
		p := u.PrimalP
		for k, idx := range p.Indices {
			s.subAcc[idx] += a * p.Values[k]
			s.subMass[idx] += a
		}
	}
	shardRun(dim, s.Workers, s.subOp)
	return nil
}

// subsetChunk applies the scatter-fold's final sweep over one index
// chunk: listed mass replaces, unlisted mass retains.
func (s *FedAvgServer) subsetChunk(lo, hi int) {
	w, acc, mass := s.W, s.subAcc, s.subMass
	for i := lo; i < hi; i++ {
		w[i] = acc[i] + (1-mass[i])*w[i]
	}
}

// BuildSubsetPayload views the first ceil(frac·dim) coordinates of a
// trained vector as a subset upload — the contiguous low-rank-style slice
// the SubsetFrac client path sends (a fixed prefix, so server and client
// agree on the trained set with nothing extra on the wire). frac is
// clamped to (0,1]; at 1 the subset covers the model and the fold
// reproduces plain FedAvg.
func BuildSubsetPayload(primal []float64, frac float64) *wire.Payload {
	dim := len(primal)
	n := int(frac * float64(dim))
	if n < 1 {
		n = 1
	}
	if n > dim {
		n = dim
	}
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	return &wire.Payload{
		Enc:     wire.EncSubset,
		Dim:     uint32(dim),
		Indices: idx,
		Values:  append([]float64(nil), primal[:n]...),
	}
}
