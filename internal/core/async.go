package core

import (
	"fmt"
	"sync"
)

// AsyncServer implements the asynchronous aggregation scheme the paper
// lists as future work (Section V, item 1): instead of waiting for all
// clients each round, the server folds in each local model as it arrives,
// down-weighted by its staleness:
//
//	w ← (1−α_s)·w + α_s·z,   α_s = α · (1 + staleness)^(−γ)
//
// where staleness is the number of global versions that elapsed since the
// contributing client last downloaded w. This is the FedAsync-style rule
// that addresses the load-imbalance problem of heterogeneous clients
// (Sections IV-E and V).
type AsyncServer struct {
	mu      sync.Mutex
	w       []float64
	version int
	alpha   float64
	gamma   float64
	applied int
}

// NewAsyncServer builds an asynchronous server. alpha in (0,1] is the base
// mixing rate; gamma >= 0 is the staleness-decay exponent.
func NewAsyncServer(w0 []float64, alpha, gamma float64) (*AsyncServer, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: async alpha must be in (0,1], got %v", alpha)
	}
	if gamma < 0 {
		return nil, fmt.Errorf("core: async gamma must be >= 0, got %v", gamma)
	}
	return &AsyncServer{w: append([]float64(nil), w0...), alpha: alpha, gamma: gamma}, nil
}

// Pull returns the current global weights and their version. Clients call
// this before a local update and report the version back with the result.
func (s *AsyncServer) Pull() (w []float64, version int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.w...), s.version
}

// Push folds one local model trained from baseVersion into the global
// model and returns the effective mixing weight that was applied.
func (s *AsyncServer) Push(z []float64, baseVersion int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(z) != len(s.w) {
		return 0, fmt.Errorf("core: async push dimension %d, model is %d", len(z), len(s.w))
	}
	if baseVersion < 0 || baseVersion > s.version {
		return 0, fmt.Errorf("core: async push from version %d, server at %d", baseVersion, s.version)
	}
	// The mixing rule itself lives in aggregator.go, shared with the
	// buffered scheduler's BufferedAggregator.
	a := StalenessWeight(s.alpha, s.gamma, float64(s.version-baseVersion))
	foldScaled(s.w, z, a)
	s.version++
	s.applied++
	return a, nil
}

// Version returns the number of applied updates.
func (s *AsyncServer) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Weights returns a copy of the current global model.
func (s *AsyncServer) Weights() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.w...)
}
