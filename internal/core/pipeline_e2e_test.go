package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/wire"
)

// e2eRun executes a small FedAvg federation with the given pipeline spec
// and returns the result (with byte-accurate traffic accounting).
func e2eRun(t *testing.T, spec string, transport Transport) *Result {
	t.Helper()
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 96, Test: 32, Seed: 11})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, 3, rng.New(12)), Test: te}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(11)) }
	cfg := Config{
		Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32,
		Seed: 11, Pipeline: spec,
	}
	res, err := Run(cfg, fed, factory, RunOptions{Transport: transport})
	if err != nil {
		t.Fatalf("run with pipeline %q: %v", spec, err)
	}
	return res
}

// TestTopKPipelineCutsUploadBytes pins the acceptance criterion of the
// pipeline refactor: a clip→laplace→topk:0.1 stack must cut client→server
// bytes at least 4× versus the dense baseline, measured on a real
// transport, and the run must still converge to a working model.
func TestTopKPipelineCutsUploadBytes(t *testing.T) {
	denseRes := e2eRun(t, "clip:1", TransportMPI)
	topkRes := e2eRun(t, "clip:1,laplace:5,topk:0.1", TransportMPI)
	if topkRes.UploadsB == 0 || denseRes.UploadsB == 0 {
		t.Fatal("byte accounting returned zero")
	}
	ratio := float64(denseRes.UploadsB) / float64(topkRes.UploadsB)
	if ratio < 4 {
		t.Fatalf("topk:0.1 upload reduction %.2fx < 4x (dense %dB, topk %dB)",
			ratio, denseRes.UploadsB, topkRes.UploadsB)
	}
	if len(topkRes.Rounds) != 2 {
		t.Fatalf("compressed run recorded %d rounds", len(topkRes.Rounds))
	}
	// The model must still be a model: finite loss, evaluated accuracy.
	if math.IsNaN(topkRes.FinalLoss) || math.IsInf(topkRes.FinalLoss, 0) {
		t.Fatalf("compressed run produced loss %v", topkRes.FinalLoss)
	}
}

// TestPipelineStacksRunOverRPC exercises the full wire path — compressed
// payloads encoded, framed, decoded, validated, and inverted — over the
// TCP RPC transport for each compression encoding.
func TestPipelineStacksRunOverRPC(t *testing.T) {
	for _, spec := range []string{
		"clip:1,topk:0.25",
		"clip:1,quantize:8",
		"clip:1,f16",
		"clip:1,laplace:2,quantize:12",
	} {
		res := e2eRun(t, spec, TransportRPC)
		if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
			t.Fatalf("pipeline %q: loss %v", spec, res.FinalLoss)
		}
	}
}

// TestQuantizePipelineTracksDenseAccuracy: 8-bit stochastic quantization
// is nearly lossless at this scale; final accuracy must stay close to the
// dense baseline while upload bytes drop substantially.
func TestQuantizePipelineTracksDenseAccuracy(t *testing.T) {
	denseRes := e2eRun(t, "clip:1", TransportMPI)
	qRes := e2eRun(t, "clip:1,quantize:8", TransportMPI)
	if math.Abs(denseRes.FinalAcc-qRes.FinalAcc) > 0.25 {
		t.Fatalf("quantize:8 accuracy %v strays too far from dense %v", qRes.FinalAcc, denseRes.FinalAcc)
	}
	ratio := float64(denseRes.UploadsB) / float64(qRes.UploadsB)
	if ratio < 4 {
		t.Fatalf("quantize:8 upload reduction %.2fx < 4x", ratio)
	}
}

// TestBufferedSchedulerWithCompressedPipeline: the decode-and-invert step
// also sits on the buffered (semi-asynchronous) path.
func TestBufferedSchedulerWithCompressedPipeline(t *testing.T) {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 96, Test: 32, Seed: 13})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, 4, rng.New(14)), Test: te}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(13)) }
	cfg := Config{
		Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32, Seed: 13,
		Scheduler: SchedBuffered, BufferK: 2,
		Pipeline: "clip:1,f16",
	}
	res, err := Run(cfg, fed, factory, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("buffered compressed run recorded %d releases", len(res.Rounds))
	}
}

// TestDecentralizedWithCompressedPipeline: gossip peers invert each
// other's compressed releases through the shared inverse pipeline.
func TestDecentralizedWithCompressedPipeline(t *testing.T) {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 60, Test: 20, Seed: 15})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, 3, rng.New(16)), Test: te}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(15)) }
	cfg := Config{
		Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 20, Seed: 15,
		Pipeline: "clip:1,quantize:8",
	}
	res, err := RunDecentralized(cfg, fed, factory, Ring(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("decentralized compressed run recorded %d rounds", len(res.Rounds))
	}
}

// TestDownlinkF16CutsBroadcastBytes: the downlink mirror of the upload
// pipeline — global models broadcast as float16 payloads — must cut
// server→client bytes substantially while the run still trains.
func TestDownlinkF16CutsBroadcastBytes(t *testing.T) {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 96, Test: 32, Seed: 17})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, 3, rng.New(18)), Test: te}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(17)) }
	run := func(f16 bool) *Result {
		cfg := Config{
			Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32,
			Seed: 17, DownlinkF16: f16,
		}
		res, err := Run(cfg, fed, factory, RunOptions{Transport: TransportRPC})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dense := run(false)
	compressed := run(true)
	ratio := float64(dense.DownloadsB) / float64(compressed.DownloadsB)
	if ratio < 3 {
		t.Fatalf("downlink f16 cut broadcasts only %.2fx (dense %dB, f16 %dB)",
			ratio, dense.DownloadsB, compressed.DownloadsB)
	}
	if math.IsNaN(compressed.FinalLoss) || math.IsInf(compressed.FinalLoss, 0) {
		t.Fatalf("f16 downlink run produced loss %v", compressed.FinalLoss)
	}
}

// TestDecodeUpdatesRejectsOversizedPayloadDim: an adversarial payload
// declaring a huge Dim must be rejected *before* the server materializes
// it — the dimension check runs ahead of the O(Dim) densify allocation.
func TestDecodeUpdatesRejectsOversizedPayloadDim(t *testing.T) {
	inv, err := NewServerPipeline(Config{Algorithm: AlgoFedAvg, Pipeline: "clip:1,topk:0.1"})
	if err != nil {
		t.Fatal(err)
	}
	hostile := &wire.LocalUpdate{
		ClientID: 9,
		PrimalP: &wire.Payload{
			Enc: wire.EncSparse, Dim: math.MaxUint32,
			Indices: []uint32{0}, Values: []float64{1},
		},
	}
	err = DecodeUpdates([]*wire.LocalUpdate{hostile}, inv, 100, 1)
	if err == nil {
		t.Fatal("oversized payload dimension accepted")
	}
	if !errors.Is(err, wire.ErrBadPayload) {
		t.Fatalf("want ErrBadPayload, got %v", err)
	}
	if hostile.Primal != nil {
		t.Fatal("hostile payload was materialized")
	}
}

// TestQuantizeRejectsDivergedUpdate: NaN coordinates (diverged training)
// must surface as an error, not be silently laundered into codes.
func TestQuantizeRejectsDivergedUpdate(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, Pipeline: "clip:1,quantize:8"}
	pipe, err := NewClientPipeline(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	u := pipeline.NewDense([]float64{1, math.NaN(), 3})
	if err := pipe.Apply(u, 0); err == nil {
		t.Fatal("NaN coordinate quantized without error")
	}
}
