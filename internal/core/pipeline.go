package core

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/wire"
)

// PipelineSpecs resolves the effective update-pipeline specification of
// cfg: the parsed Config.Pipeline when set, otherwise the legacy synthesis
// clip:Clip (+ laplace:Epsilon when the budget is finite) — the stack that
// reproduces the pre-pipeline client behavior bit for bit.
func (c Config) PipelineSpecs() (pipeline.Specs, error) {
	c = c.WithDefaults()
	if c.Pipeline != "" {
		return pipeline.Parse(c.Pipeline)
	}
	spec := fmt.Sprintf("clip:%g", c.Clip)
	if !math.IsInf(c.Epsilon, 1) {
		spec += fmt.Sprintf(",laplace:%g", c.Epsilon)
	}
	return pipeline.Parse(spec)
}

// NewClientPipeline builds one client's update pipeline from cfg. r is the
// client's RNG: each randomized stage splits one child stream from it, in
// stack order, so the stream consumption matches the legacy construction
// exactly (one split for the Laplace mechanism, none when non-private).
func NewClientPipeline(cfg Config, r *rng.RNG) (*pipeline.Pipeline, error) {
	specs, err := cfg.PipelineSpecs()
	if err != nil {
		return nil, err
	}
	p, err := specs.Build(r)
	if err != nil {
		return nil, err
	}
	p.SetObjective(cfg.DPMode == DPModeObjective)
	return p, nil
}

// NewServerPipeline builds the server-side (inverse-only) form of cfg's
// pipeline: no RNG streams are consumed, and the result can only Invert.
func NewServerPipeline(cfg Config) (*pipeline.Pipeline, error) {
	specs, err := cfg.PipelineSpecs()
	if err != nil {
		return nil, err
	}
	return specs.Build(nil)
}

// EncodeDownlinkF16 replaces gm's dense weights with a float16 payload —
// the Config.DownlinkF16 broadcast compression. The dense slice is left
// untouched (the caller may be reusing it); gm carries only the payload.
func EncodeDownlinkF16(gm *wire.GlobalModel) error {
	_, err := EncodeDownlinkF16Into(gm, nil)
	return err
}

// EncodeDownlinkF16Into is EncodeDownlinkF16 with a caller-owned code
// buffer: codes is reused when its capacity suffices and the (possibly
// grown) buffer is returned, so a steady-state broadcast loop encodes the
// downlink without an O(dim) allocation per round. The returned buffer is
// aliased by gm.WeightsP — the caller may recycle it only once the
// transport has serialized gm (every transport serializes inside SendTo).
func EncodeDownlinkF16Into(gm *wire.GlobalModel, codes []byte) ([]byte, error) {
	codes, err := pipeline.EncodeFloat16(gm.Weights, codes)
	if err != nil {
		return codes, err
	}
	gm.WeightsP = &wire.Payload{Enc: wire.EncFloat16, Dim: uint32(len(gm.Weights)), Codes: codes}
	gm.Weights = nil
	return codes, nil
}

// EncodeDownlinkF16From32 is EncodeDownlinkF16Into fed directly from a
// single-precision model (the Config.AggPrecision=f32 accumulator): the
// f16 rounding of a float32 equals the f16 rounding of its exact float64
// widening, so the encoded downlink is bit-identical to widening first —
// without the O(dim) widening sweep.
func EncodeDownlinkF16From32(gm *wire.GlobalModel, w32 []float32, codes []byte) ([]byte, error) {
	codes, err := pipeline.EncodeFloat16From32(w32, codes)
	if err != nil {
		return codes, err
	}
	gm.WeightsP = &wire.Payload{Enc: wire.EncFloat16, Dim: uint32(len(w32)), Codes: codes}
	gm.Weights = nil
	return codes, nil
}

// DecodeGlobal is the client half of the downlink path: when a received
// GlobalModel carries a compressed weights payload, it is densified back
// into Weights. Dense broadcasts pass through untouched. Every receiver —
// the simulator's client loop and the standalone appfl-client — must call
// this before training on gm.Weights.
func DecodeGlobal(gm *wire.GlobalModel) error {
	_, err := DecodeGlobalInto(gm, nil)
	return err
}

// DecodeGlobalInto is DecodeGlobal with a caller-owned scratch buffer:
// the payload densifies into scratch when its capacity suffices, and the
// (possibly grown) buffer — which gm.Weights aliases afterwards — is
// returned for reuse. Callers that drop gm after each round (the client
// loops) amortize the O(dim) densify allocation to zero.
func DecodeGlobalInto(gm *wire.GlobalModel, scratch []float64) ([]float64, error) {
	if gm.WeightsP == nil {
		return scratch, nil
	}
	w, err := gm.WeightsP.Densify(scratch)
	if err != nil {
		return scratch, err
	}
	gm.Weights = w
	gm.WeightsP = nil
	return w, nil
}

// DecodeUpdates runs the server half of the pipeline over a gathered
// batch: every compressed primal payload is inverted through inv (reverse
// stack order) back to a dense Primal before the batch reaches an
// Aggregator. Dense (legacy-encoded) updates pass through untouched, and a
// payload whose encoding does not match the configured stack is rejected
// with a typed error — a client cannot smuggle an unconfigured encoding.
//
// dim is the model dimension the server expects. It is enforced *before*
// inversion: densifying is an O(Dim) allocation, so an adversarial payload
// declaring a huge Dim must be rejected up front, not after the server has
// tried to materialize it.
//
// workers is the fan-out width (0 = GOMAXPROCS, 1 = serial): each update's
// inversion is independent O(dim) work, so the batch decodes in parallel
// on the shared aggregation pool. Stage Invert implementations are
// stateless, and the reported error is always the lowest-index failure,
// so the result and the error are identical at every width.
func DecodeUpdates(batch []*wire.LocalUpdate, inv *pipeline.Pipeline, dim, workers int) error {
	// Dimension screening stays serial and up front: it is O(batch) and
	// must reject adversarial payloads before any O(dim) work begins.
	for _, u := range batch {
		if u == nil || u.PrimalP == nil {
			continue
		}
		if int(u.PrimalP.Dim) != dim {
			return fmt.Errorf("core: client %d payload dimension %d, model is %d: %w",
				u.ClientID, u.PrimalP.Dim, dim, wire.ErrBadPayload)
		}
	}
	decode := func(u *wire.LocalUpdate) error {
		if u == nil || u.PrimalP == nil {
			return nil
		}
		if u.PrimalP.Enc == wire.EncSubset {
			// Subset payloads never densify (their unlisted coordinates
			// live only on the server); the scatter-fold consumes them
			// still encoded. The dimension screen above already ran.
			return nil
		}
		if err := inv.Invert(u.PrimalP); err != nil {
			return fmt.Errorf("core: client %d update: %w", u.ClientID, err)
		}
		u.Primal = u.PrimalP.Dense
		u.PrimalP = nil
		return nil
	}
	if w := resolveWorkers(workers); w > 1 && len(batch) > 1 {
		errs := make([]error, len(batch))
		eachRun(len(batch), w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				errs[i] = decode(batch[i])
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	for _, u := range batch {
		if err := decode(u); err != nil {
			return err
		}
	}
	return nil
}

// EnableFusedFold wires the fused invert+fold fast path: when the
// server-side pipeline's whole inverse reduces to a per-coordinate decode
// (pipeline.Fused) and the aggregator supports folding encoded sources
// (FedAvgServer, BufferedAggregator), the aggregator is handed the fused
// stage and the caller should screen batches with DecodeUpdatesFused
// instead of densifying them through DecodeUpdates. Returns false when
// either side cannot fuse — the two-pass path remains the fallback, and
// both paths produce bit-identical models.
func EnableFusedFold(agg Aggregator, inv *pipeline.Pipeline) (pipeline.FusedStage, bool) {
	fs, ok := inv.Fused()
	if !ok {
		return nil, false
	}
	f, ok := agg.(interface{ setFusedStage(pipeline.FusedStage) })
	if !ok {
		return nil, false
	}
	f.setFusedStage(fs)
	return fs, true
}

// DecodeUpdatesFused is the fused-path counterpart of DecodeUpdates: it
// validates every compressed payload — declared dimension, the exact
// encoding the configured stack produces, and structural integrity — but
// leaves the payloads encoded for the aggregator's fused fold. The same
// anti-smuggling and anti-DoS screens apply (dimension before any O(dim)
// work, encoding pinned to the stack); the O(dim) decode itself moves
// into the fold kernels, where it costs no extra sweep.
func DecodeUpdatesFused(batch []*wire.LocalUpdate, fs pipeline.FusedStage, dim int) error {
	for _, u := range batch {
		if u == nil || u.PrimalP == nil {
			continue
		}
		if int(u.PrimalP.Dim) != dim {
			return fmt.Errorf("core: client %d payload dimension %d, model is %d: %w",
				u.ClientID, u.PrimalP.Dim, dim, wire.ErrBadPayload)
		}
		if u.PrimalP.Enc != fs.FusedEnc() {
			return fmt.Errorf("core: client %d update arrived %s-encoded but the configured stack produces %s: %w",
				u.ClientID, u.PrimalP.Enc, fs.FusedEnc(), pipeline.ErrSpec)
		}
		if err := u.PrimalP.Validate(); err != nil {
			return fmt.Errorf("core: client %d update: %w", u.ClientID, err)
		}
	}
	return nil
}
