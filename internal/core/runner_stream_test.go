package core

import (
	"math"
	"testing"
)

// runLosses executes one run and returns its per-round test losses.
func runLosses(t *testing.T, cfg Config, tr Transport) []float64 {
	t.Helper()
	fed := parallelTestFed(3, 192, 48, 11)
	res, err := Run(cfg, fed, parallelTestFactory(11), RunOptions{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		losses[i] = r.TestLoss
	}
	return losses
}

// TestRunStreamBitIdenticalToMonolithic: a full federation whose uplinks
// stream as fixed-size chunks produces bit-for-bit the per-round losses
// of the monolithic run, for dense and f16 uplinks, over every transport
// that speaks the chunk protocol.
func TestRunStreamBitIdenticalToMonolithic(t *testing.T) {
	transports := []Transport{TransportMPI, TransportPubSub, TransportRPC}
	if testing.Short() {
		transports = transports[:1]
	}
	for _, pipe := range []string{"", "clip:1,f16"} {
		name := "dense"
		if pipe != "" {
			name = "f16"
		}
		t.Run(name, func(t *testing.T) {
			base := Config{
				Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32,
				Seed: 7, Scheduler: SchedSyncAll, Pipeline: pipe,
			}
			ref := runLosses(t, base, TransportMPI)
			for _, tr := range transports {
				streamed := base
				streamed.StreamChunk = 4096
				got := runLosses(t, streamed, tr)
				if len(got) != len(ref) {
					t.Fatalf("%s: %d rounds, want %d", tr, len(got), len(ref))
				}
				for i := range ref {
					if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
						t.Fatalf("%s: round %d loss %v, monolithic %v — streaming changed the trajectory",
							tr, i+1, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestRunStreamSampledCohort: streaming composes with the sampled
// barrier scheduler — only the cohort streams, and the trajectory
// matches the monolithic sampled run bit for bit.
func TestRunStreamSampledCohort(t *testing.T) {
	base := Config{
		Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32,
		Seed: 7, Scheduler: SchedSampled, CohortFraction: 0.7,
	}
	ref := runLosses(t, base, TransportMPI)
	streamed := base
	streamed.StreamChunk = 1000 // deliberately unaligned with dim
	got := runLosses(t, streamed, TransportMPI)
	for i := range ref {
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("round %d loss %v, monolithic %v", i+1, got[i], ref[i])
		}
	}
}

// TestRunSubsetUpload: a SubsetFrac run completes, learns on the shared
// coordinate prefix, and uploads strictly fewer bytes than the dense run.
func TestRunSubsetUpload(t *testing.T) {
	fed := parallelTestFed(3, 192, 48, 13)
	base := Config{
		Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32,
		Seed: 9, Scheduler: SchedSyncAll,
	}
	dense, err := Run(base, fed, parallelTestFactory(13), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub := base
	sub.SubsetFrac = 0.25
	got, err := Run(sub, fed, parallelTestFactory(13), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rounds) != sub.Rounds {
		t.Fatalf("completed %d rounds", len(got.Rounds))
	}
	for _, r := range got.Rounds {
		if math.IsNaN(r.TestLoss) || math.IsInf(r.TestLoss, 0) {
			t.Fatalf("round %d loss %v", r.Round, r.TestLoss)
		}
	}
	// A quarter of the coordinates at 12 bytes each (value + fixed32
	// index) against 8 bytes per dense coordinate is a 0.375 ratio; MPI's
	// 6-bytes-per-word packing inflates the subset side by 8/6, landing at
	// one half. Assert comfortably under two thirds.
	if got.UploadsB*3 >= dense.UploadsB*2 {
		t.Fatalf("subset uploads %d bytes not sub-linear vs dense %d", got.UploadsB, dense.UploadsB)
	}
}

// TestRunStreamRejectsIncompatibleConfig: the gating added for streaming
// and subsets rejects the shapes the chunk fold cannot reproduce.
func TestRunStreamRejectsIncompatibleConfig(t *testing.T) {
	bad := []Config{
		{Algorithm: AlgoIIADMM, Rounds: 1, StreamChunk: 64},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: 64, Scheduler: SchedBuffered, BufferK: 2},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: 64, AggShards: 2},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: 64, AggPrecision: AggF32},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: 64, RoundTimeout: 1},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: 64, Pipeline: "topk:0.5"},
		{Algorithm: AlgoFedAvg, Rounds: 1, StreamChunk: -1},
		{Algorithm: AlgoFedAvg, Rounds: 1, SubsetFrac: 1.5},
		{Algorithm: AlgoFedAvg, Rounds: 1, SubsetFrac: 0.5, Pipeline: "clip:1"},
		{Algorithm: AlgoFedAvg, Rounds: 1, SubsetFrac: 0.5, StreamChunk: 64},
		{Algorithm: AlgoIIADMM, Rounds: 1, SubsetFrac: 0.5},
	}
	for i, cfg := range bad {
		if err := cfg.WithDefaults().Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}
