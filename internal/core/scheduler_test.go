package core

import (
	"testing"
	"time"
)

func TestNewSchedulerDefaultsToSyncAll(t *testing.T) {
	for _, name := range []string{"", SchedSyncAll} {
		cfg := Config{Algorithm: AlgoIIADMM, Scheduler: name}.WithDefaults()
		cfg.Scheduler = name // WithDefaults fills ""; test both spellings
		s, err := NewScheduler(cfg, 5)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if !s.Barrier() || s.Quorum() != 5 {
			t.Fatalf("%q: barrier %v quorum %d", name, s.Barrier(), s.Quorum())
		}
		cohort := s.Cohort(3)
		if len(cohort) != 5 {
			t.Fatalf("syncall cohort %v", cohort)
		}
		for i, id := range cohort {
			if id != i {
				t.Fatalf("syncall cohort %v not the identity", cohort)
			}
		}
	}
}

func TestNewSchedulerRejectsUnknownName(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, Scheduler: "psychic"}.WithDefaults()
	cfg.Scheduler = "psychic"
	if _, err := NewScheduler(cfg, 4); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSampledCohortDeterministicAndSized(t *testing.T) {
	s := SampledCohort{NumClients: 20, Fraction: 0.3, MinClients: 2, Seed: 7}
	for round := 1; round <= 5; round++ {
		a := s.Cohort(round)
		b := s.Cohort(round)
		if len(a) != 6 { // ceil(0.3*20)
			t.Fatalf("round %d cohort size %d, want 6", round, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d cohort not deterministic: %v vs %v", round, a, b)
			}
			if i > 0 && a[i] <= a[i-1] {
				t.Fatalf("round %d cohort not sorted ascending: %v", round, a)
			}
			if a[i] < 0 || a[i] >= 20 {
				t.Fatalf("round %d cohort id out of range: %v", round, a)
			}
		}
	}
}

func TestSampledCohortVariesAcrossRounds(t *testing.T) {
	s := SampledCohort{NumClients: 30, Fraction: 0.2, MinClients: 1, Seed: 11}
	same := 0
	const rounds = 20
	first := s.Cohort(1)
	for round := 2; round <= rounds+1; round++ {
		c := s.Cohort(round)
		equal := len(c) == len(first)
		if equal {
			for i := range c {
				if c[i] != first[i] {
					equal = false
					break
				}
			}
		}
		if equal {
			same++
		}
	}
	if same == rounds {
		t.Fatal("sampled cohorts never changed across rounds")
	}
}

func TestSampledCohortCoversEveryClientEventually(t *testing.T) {
	s := SampledCohort{NumClients: 10, Fraction: 0.3, MinClients: 1, Seed: 3}
	seen := map[int]bool{}
	for round := 1; round <= 60; round++ {
		for _, id := range s.Cohort(round) {
			seen[id] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 clients ever scheduled", len(seen))
	}
}

func TestSampledCohortMinClientsFloor(t *testing.T) {
	s := SampledCohort{NumClients: 8, Fraction: 0.01, MinClients: 3, Seed: 1}
	if got := len(s.Cohort(1)); got != 3 {
		t.Fatalf("cohort size %d, want MinClients floor 3", got)
	}
	if s.Quorum() != 3 {
		t.Fatalf("quorum %d, want 3", s.Quorum())
	}
}

func TestNewSchedulerSampledValidation(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedSampled, CohortFraction: 0.5, CohortMin: 9}.WithDefaults()
	if _, err := NewScheduler(cfg, 4); err == nil {
		t.Fatal("CohortMin beyond the federation accepted")
	}
	bad := Config{Algorithm: AlgoIIADMM, Scheduler: SchedSampled, CohortFraction: 0.5}.WithDefaults()
	if err := bad.Validate(); err == nil {
		t.Fatal("sampled cohorts with an ADMM algorithm accepted")
	}
	noFrac := Config{Algorithm: AlgoFedAvg, Scheduler: SchedSampled}.WithDefaults()
	if err := noFrac.Validate(); err == nil {
		t.Fatal("sampled scheduler without CohortFraction accepted")
	}
}

func TestBufferedSchedulerDefaults(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered}.WithDefaults()
	s, err := NewScheduler(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Barrier() {
		t.Fatal("buffered scheduler must not barrier")
	}
	if s.Quorum() != 5 { // (9+1)/2
		t.Fatalf("default quorum %d, want 5", s.Quorum())
	}
	if cfg.AsyncAlpha != DefaultAsyncAlpha || cfg.AsyncGamma != DefaultAsyncGamma {
		t.Fatalf("buffered defaults not applied: %+v", cfg)
	}
}

func TestBufferedSchedulerValidation(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: 10}.WithDefaults()
	if _, err := NewScheduler(cfg, 4); err == nil {
		t.Fatal("BufferK beyond the federation accepted")
	}
	bad := Config{Algorithm: AlgoICEADMM, Scheduler: SchedBuffered}.WithDefaults()
	if err := bad.Validate(); err == nil {
		t.Fatal("buffered scheduling with an ADMM algorithm accepted")
	}
	mix := Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, ClientFraction: 0.5}.WithDefaults()
	if err := mix.Validate(); err == nil {
		t.Fatal("ClientFraction combined with buffered scheduler accepted")
	}
}

// TestSyncAllSchedulerReproducesLegacyTrajectory is the degeneracy
// guarantee of the split: an explicit all-clients schedule must reproduce
// the default run bit for bit, for every algorithm.
func TestSyncAllSchedulerReproducesLegacyTrajectory(t *testing.T) {
	fed := tinyFed(t, 3, 192, 48)
	for _, algo := range []string{AlgoFedAvg, AlgoICEADMM, AlgoIIADMM} {
		base := Config{Algorithm: algo, Rounds: 3, LocalSteps: 1, BatchSize: 32, Seed: 4}
		explicit := base
		explicit.Scheduler = SchedSyncAll
		a, err := Run(base, fed, tinyFactory(), RunOptions{})
		if err != nil {
			t.Fatalf("%s base: %v", algo, err)
		}
		b, err := Run(explicit, fed, tinyFactory(), RunOptions{})
		if err != nil {
			t.Fatalf("%s explicit: %v", algo, err)
		}
		if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
			t.Fatalf("%s: explicit syncall diverged: %v/%v vs %v/%v",
				algo, a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
		}
	}
}

// TestFullFractionSampledEqualsSyncAll: a sampled cohort covering the
// whole federation degenerates to the synchronous barrier exactly.
func TestFullFractionSampledEqualsSyncAll(t *testing.T) {
	fed := tinyFed(t, 3, 192, 48)
	sync := Config{Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32, Seed: 5}
	sampled := sync
	sampled.Scheduler = SchedSampled
	sampled.CohortFraction = 1.0
	a, err := Run(sync, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sampled, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Fatalf("full-fraction sampled diverged from syncall: %v/%v vs %v/%v",
			a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
}

func TestSampledCohortRunAllTransports(t *testing.T) {
	fed := tinyFed(t, 6, 240, 60)
	cfg := Config{
		Algorithm:      AlgoFedAvg,
		Rounds:         3,
		LocalSteps:     1,
		BatchSize:      32,
		Seed:           9,
		Scheduler:      SchedSampled,
		CohortFraction: 0.5,
	}
	accs := map[Transport]float64{}
	for _, tr := range []Transport{TransportMPI, TransportPubSub, TransportRPC} {
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{Transport: tr})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if len(res.Rounds) != 3 {
			t.Fatalf("%s: %d rounds", tr, len(res.Rounds))
		}
		for _, rs := range res.Rounds {
			if rs.CohortSize != 3 {
				t.Fatalf("%s round %d: cohort %d, want 3", tr, rs.Round, rs.CohortSize)
			}
		}
		accs[tr] = res.FinalAcc
	}
	if accs[TransportMPI] != accs[TransportPubSub] || accs[TransportMPI] != accs[TransportRPC] {
		t.Fatalf("transports disagree under sampled cohorts: %v", accs)
	}
}

// TestSampledCohortSavesTraffic: scheduling half the clients must halve
// the per-round traffic relative to full participation — the scalability
// win the legacy echo path cannot deliver.
func TestSampledCohortSavesTraffic(t *testing.T) {
	fed := tinyFed(t, 4, 128, 32)
	full := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 2}
	half := full
	half.Scheduler = SchedSampled
	half.CohortFraction = 0.5
	a, err := Run(full, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(half, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.UploadsB*2 != a.UploadsB {
		t.Fatalf("half cohort uploads %d, full %d — want exactly half", b.UploadsB, a.UploadsB)
	}
	// Downloads carry one constant extra: the final shutdown broadcast goes
	// to all clients in both runs, so the half-cohort run sits a few header
	// bytes above an exact half.
	if diff := 2*b.DownloadsB - a.DownloadsB; diff < 0 || diff > 1024 {
		t.Fatalf("half cohort downloads %d, full %d — want half plus the shutdown constant", b.DownloadsB, a.DownloadsB)
	}
}

func TestBufferedRunConvergesAndCountsReleases(t *testing.T) {
	fed := tinyFed(t, 4, 320, 120)
	cfg := Config{
		Algorithm:  AlgoFedAvg,
		Rounds:     8,
		LocalSteps: 1,
		BatchSize:  32,
		Seed:       3,
		Scheduler:  SchedBuffered,
		BufferK:    2,
	}
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 8 {
		t.Fatalf("releases %d, want 8", len(res.Rounds))
	}
	for _, rs := range res.Rounds {
		if rs.CohortSize != 2 {
			t.Fatalf("release %d aggregated %d updates, want K=2", rs.Round, rs.CohortSize)
		}
	}
	if res.FinalAcc < 0.2 { // chance is 0.1
		t.Fatalf("buffered training accuracy %.3f did not beat chance", res.FinalAcc)
	}
}

func TestBufferedRunAllTransports(t *testing.T) {
	fed := tinyFed(t, 3, 150, 30)
	cfg := Config{
		Algorithm:  AlgoFedAvg,
		Rounds:     4,
		LocalSteps: 1,
		BatchSize:  32,
		Seed:       8,
		Scheduler:  SchedBuffered,
		BufferK:    2,
	}
	for _, tr := range []Transport{TransportMPI, TransportPubSub, TransportRPC} {
		res, err := Run(cfg, fed, tinyFactory(), RunOptions{Transport: tr})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if len(res.Rounds) != 4 {
			t.Fatalf("%s: releases %d", tr, len(res.Rounds))
		}
	}
}

// TestBufferedReleaseDoesNotWaitForStraggler injects one slow client and
// checks the semi-async property directly: releases keep completing while
// the straggler is asleep, so total wall time stays far below what a
// barrier on the straggler would cost.
func TestBufferedReleaseDoesNotWaitForStraggler(t *testing.T) {
	fed := tinyFed(t, 4, 160, 40)
	const stragglerSleep = 250 * time.Millisecond
	cfg := Config{
		Algorithm:  AlgoFedAvg,
		Rounds:     4,
		LocalSteps: 1,
		BatchSize:  32,
		Seed:       5,
		Scheduler:  SchedBuffered,
		BufferK:    2,
	}
	delay := func(client, round int) time.Duration {
		if client == 3 {
			return stragglerSleep
		}
		return 0
	}
	start := time.Now()
	res, err := Run(cfg, fed, tinyFactory(), RunOptions{ClientDelay: delay, ValidateEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(res.Rounds) != 4 {
		t.Fatalf("releases %d", len(res.Rounds))
	}
	// A synchronous barrier would pay ≥ 4×250 ms = 1 s on the straggler
	// alone; buffered releases wait for it at most once (the drain).
	if elapsed > 3*stragglerSleep {
		t.Fatalf("buffered run took %v, straggler appears to block releases", elapsed)
	}
}
