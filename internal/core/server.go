package core

import (
	"fmt"

	"repro/internal/wire"
)

// ServerAlgorithm is the analog of APPFL's BaseServer: it owns the global
// model vector and defines how gathered local updates produce the next
// global iterate. Implementations are FedAvgServer, ICEADMMServer, and
// IIADMMServer; user-defined algorithms implement Update the same way
// APPFL users override BaseServer.update().
type ServerAlgorithm interface {
	// GlobalWeights returns the current global model w (not a copy; callers
	// must not mutate).
	GlobalWeights() []float64
	// Update consumes one gathered update per client (indexed by client)
	// and recomputes the global model.
	Update(updates []*wire.LocalUpdate) error
}

// BaseServer carries the state every server algorithm shares, mirroring
// the Python BaseServer class.
type BaseServer struct {
	W          []float64 // global model parameters
	NumClients int
	// Workers is the sharded-aggregation width (0 = GOMAXPROCS, 1 =
	// serial). Every server rule here is element-wise with a fixed
	// per-element fold order, so results are bit-identical across widths;
	// see parallel.go.
	Workers int

	version int // aggregations applied so far
}

// GlobalWeights returns the global parameter vector. This is the live
// slice — mutating it corrupts server state; use Weights or WeightsInto
// for a safe copy.
func (b *BaseServer) GlobalWeights() []float64 { return b.W }

// Weights returns a defensive copy of the global parameter vector.
func (b *BaseServer) Weights() []float64 { return b.WeightsInto(nil) }

// WeightsInto copies the global parameter vector into dst (grown as
// needed) and returns it.
func (b *BaseServer) WeightsInto(dst []float64) []float64 {
	dst = append(dst[:0], b.W...)
	return dst
}

// Dim returns the model dimension.
func (b *BaseServer) Dim() int { return len(b.W) }

// Version counts the aggregations applied so far.
func (b *BaseServer) Version() int { return b.version }

// checkCount enforces the full-federation batch size of the strict
// Update path.
func (b *BaseServer) checkCount(n int) error {
	if n != b.NumClients {
		return fmt.Errorf("core: gathered %d updates for %d clients", n, b.NumClients)
	}
	return nil
}

// checkUpdates validates the gathered batch shape shared by all servers.
func (b *BaseServer) checkUpdates(updates []*wire.LocalUpdate, needDual bool) error {
	if err := b.checkCount(len(updates)); err != nil {
		return err
	}
	return b.checkBatch(updates, needDual)
}

// checkBatch validates a released batch of any size (the cohort form used
// by the Scheduler × Aggregator path).
func (b *BaseServer) checkBatch(batch []*wire.LocalUpdate, needDual bool) error {
	if len(batch) == 0 {
		return fmt.Errorf("core: aggregate on an empty batch")
	}
	for i, u := range batch {
		if u == nil {
			return fmt.Errorf("core: missing update from client %d", i)
		}
		if len(u.Primal) != len(b.W) {
			return fmt.Errorf("core: client %d primal dimension %d, model is %d", i, len(u.Primal), len(b.W))
		}
		if needDual && len(u.Dual) != len(b.W) {
			return fmt.Errorf("core: client %d dual dimension %d, model is %d", i, len(u.Dual), len(b.W))
		}
	}
	return nil
}

// FedAvgServer implements federated averaging (McMahan et al., 2017):
// the global model is the sample-weighted average of client models,
// w ← Σ_p (I_p/I) z_p, following Eq. (1)'s weighting.
type FedAvgServer struct {
	BaseServer

	// Pre-bound chunk operation and operands of the sharded average (no
	// per-call closure; see BufferedAggregator for the same pattern).
	aggBatch []*wire.LocalUpdate
	aggTotal float64
	aggOp    func(lo, hi int)
}

// NewFedAvgServer builds the server with initial weights w0.
func NewFedAvgServer(w0 []float64, numClients int) *FedAvgServer {
	w := append([]float64(nil), w0...)
	s := &FedAvgServer{BaseServer: BaseServer{W: w, NumClients: numClients}}
	s.aggOp = s.aggChunk
	return s
}

// aggChunk computes the sample-weighted average over one chunk of the
// index space. Per element the fold order (zero, then += in batch order)
// matches the serial loop exactly, so chunking cannot change a single bit.
func (s *FedAvgServer) aggChunk(lo, hi int) {
	w := s.W[lo:hi]
	for i := range w {
		w[i] = 0
	}
	for _, u := range s.aggBatch {
		if u.NumSamples == 0 {
			continue
		}
		wgt := float64(u.NumSamples) / s.aggTotal
		z := u.Primal[lo:hi]
		for i, v := range z {
			w[i] += wgt * v
		}
	}
}

// Update averages the client primal vectors weighted by sample counts.
// Updates with NumSamples == 0 (non-participants under partial
// participation) carry zero weight; a round in which nobody trained leaves
// the global model unchanged. The batch must cover every client; partial
// cohorts go through Aggregate.
func (s *FedAvgServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkCount(len(updates)); err != nil {
		return err
	}
	return s.Aggregate(updates)
}

// Aggregate averages a released batch of any size — the cohort form: a
// sampled cohort's updates carry full weight, and the math over a full
// cohort is identical to Update's, so the SyncAll schedule reproduces the
// pre-refactor trajectory exactly.
func (s *FedAvgServer) Aggregate(batch []*wire.LocalUpdate) error {
	if err := s.checkBatch(batch, false); err != nil {
		return err
	}
	s.version++
	total := 0.0
	for _, u := range batch {
		total += float64(u.NumSamples)
	}
	if total == 0 {
		return nil
	}
	s.aggBatch, s.aggTotal = batch, total
	shardRun(len(s.W), s.Workers, s.aggOp)
	s.aggBatch = nil
	return nil
}

// ICEADMMServer implements the server step of ICEADMM (Zhou & Li, 2021):
// clients upload both primal z_p and dual λ_p each round and the server
// computes w ← (1/P) Σ_p (z_p − λ_p/ρ), the closed-form solution of (3a).
type ICEADMMServer struct {
	BaseServer
	Rho float64
	// Adaptive, when non-nil, re-tunes Rho by residual balancing after
	// every round (the paper's planned adaptive-penalty extension).
	Adaptive *AdaptiveRho

	wPrev []float64

	aggUpdates []*wire.LocalUpdate
	aggOp      func(lo, hi int)
}

// NewICEADMMServer builds the server with initial weights w0.
func NewICEADMMServer(w0 []float64, numClients int, rho float64) *ICEADMMServer {
	w := append([]float64(nil), w0...)
	s := &ICEADMMServer{BaseServer: BaseServer{W: w, NumClients: numClients}, Rho: rho}
	s.aggOp = s.aggChunk
	return s
}

// aggChunk computes w ← (1/P) Σ_p (z_p − λ_p/ρ) over one index chunk,
// folding clients in batch order per element exactly like the serial loop.
func (s *ICEADMMServer) aggChunk(lo, hi int) {
	w := s.W[lo:hi]
	invP := 1.0 / float64(s.NumClients)
	for i := range w {
		w[i] = 0
	}
	for _, u := range s.aggUpdates {
		z := u.Primal[lo:hi]
		d := u.Dual[lo:hi]
		for i := range w {
			w[i] += invP * (z[i] - d[i]/s.Rho)
		}
	}
}

// CurrentRho reports the penalty the next round must use.
func (s *ICEADMMServer) CurrentRho() float64 { return s.Rho }

// Update recomputes w from the uploaded primal and dual vectors, then
// adapts ρ when the controller is attached.
func (s *ICEADMMServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkUpdates(updates, true); err != nil {
		return err
	}
	s.version++
	s.wPrev = append(s.wPrev[:0], s.W...)
	s.aggUpdates = updates
	shardRun(len(s.W), s.Workers, s.aggOp)
	s.aggUpdates = nil
	if s.Adaptive != nil {
		primals := make([][]float64, len(updates))
		for i, u := range updates {
			primals[i] = u.Primal
		}
		p, d := Residuals(s.W, s.wPrev, primals, s.Rho)
		s.Rho = s.Adaptive.Step(p, d)
	}
	return nil
}

// IIADMMServer implements the server of the paper's Algorithm 1. The
// decisive difference from ICEADMM: clients upload only z_p; the server
// maintains its own mirror copy of every dual λ_p and applies the identical
// dual update λ_p ← λ_p + ρ(w − z_p) (line 6), which stays consistent with
// the client copies because (z¹,λ¹) are agreed once at initialization.
type IIADMMServer struct {
	BaseServer
	Rho        float64
	FreezeDual bool
	// Adaptive, when non-nil, re-tunes Rho after every round. The new ρ is
	// broadcast with the next global model, so the client dual updates (made
	// with the broadcast ρ) remain bit-identical to the server mirrors.
	Adaptive *AdaptiveRho

	duals [][]float64 // mirror λ_p per client
	wPrev []float64

	aggUpdates []*wire.LocalUpdate
	aggOp      func(lo, hi int)
}

// NewIIADMMServer builds the server; duals start at zero, the shared
// initialization of Algorithm 1 line 1.
func NewIIADMMServer(w0 []float64, numClients int, rho float64) *IIADMMServer {
	w := append([]float64(nil), w0...)
	duals := make([][]float64, numClients)
	for i := range duals {
		duals[i] = make([]float64, len(w0))
	}
	s := &IIADMMServer{
		BaseServer: BaseServer{W: w, NumClients: numClients},
		Rho:        rho,
		duals:      duals,
	}
	s.aggOp = s.aggChunk
	return s
}

// aggChunk runs lines 6 and 3 of Algorithm 1 over one index chunk. The
// dual update reads the pre-zeroing w of its own chunk only, so running
// chunks concurrently is exactly the serial element order.
func (s *IIADMMServer) aggChunk(lo, hi int) {
	w := s.W[lo:hi]
	if !s.FreezeDual {
		for p, u := range s.aggUpdates {
			d := s.duals[p][lo:hi]
			z := u.Primal[lo:hi]
			for i := range d {
				d[i] += s.Rho * (w[i] - z[i])
			}
		}
	}
	invP := 1.0 / float64(s.NumClients)
	for i := range w {
		w[i] = 0
	}
	for p, u := range s.aggUpdates {
		d := s.duals[p][lo:hi]
		z := u.Primal[lo:hi]
		for i := range w {
			w[i] += invP * (z[i] - d[i]/s.Rho)
		}
	}
}

// Dual exposes the mirror dual of one client for consistency testing.
func (s *IIADMMServer) Dual(client int) []float64 { return s.duals[client] }

// CurrentRho reports the penalty the next round must use.
func (s *IIADMMServer) CurrentRho() float64 { return s.Rho }

// Update implements lines 3 and 6 of Algorithm 1: first the mirror dual
// update with the incoming primals against the w that produced them, then
// the global update w ← (1/P) Σ_p (z_p − λ_p/ρ) for the next round, then
// (optionally) the adaptive-ρ step for the round after.
func (s *IIADMMServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkUpdates(updates, false); err != nil {
		return err
	}
	s.version++
	s.wPrev = append(s.wPrev[:0], s.W...)
	// Line 6: λ_p ← λ_p + ρ(w^{t+1} − z_p^{t+1}); w is still the model that
	// was broadcast this round, and ρ is the value that rode with it.
	// Line 3 (for the next round): w ← (1/P) Σ (z_p − λ_p/ρ).
	// Both are element-wise, so they run sharded in one chunk pass.
	s.aggUpdates = updates
	shardRun(len(s.W), s.Workers, s.aggOp)
	s.aggUpdates = nil
	if s.Adaptive != nil {
		primals := make([][]float64, len(updates))
		for i, u := range updates {
			primals[i] = u.Primal
		}
		p, d := Residuals(s.W, s.wPrev, primals, s.Rho)
		s.Rho = s.Adaptive.Step(p, d)
	}
	return nil
}

// Aggregate consumes a released batch. The ADMM family maintains one dual
// per client, so a valid batch always covers the whole federation ordered
// by client ID — partial cohorts are a configuration error caught by
// Config.Validate.
func (s *ICEADMMServer) Aggregate(batch []*wire.LocalUpdate) error { return s.Update(batch) }

// Aggregate consumes a released batch; see ICEADMMServer.Aggregate for why
// the ADMM family requires full cohorts.
func (s *IIADMMServer) Aggregate(batch []*wire.LocalUpdate) error { return s.Update(batch) }

// Interface conformance checks: the legacy servers are Aggregators.
var (
	_ Aggregator = (*FedAvgServer)(nil)
	_ Aggregator = (*ICEADMMServer)(nil)
	_ Aggregator = (*IIADMMServer)(nil)
)

// NewServer constructs the server for cfg with initial weights w0.
func NewServer(cfg Config, w0 []float64, numClients int) (ServerAlgorithm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Algorithm {
	case AlgoFedAvg:
		s := NewFedAvgServer(w0, numClients)
		s.Workers = cfg.AggWorkers
		return s, nil
	case AlgoICEADMM:
		s := NewICEADMMServer(w0, numClients, cfg.Rho)
		s.Workers = cfg.AggWorkers
		if cfg.AdaptiveRho {
			s.Adaptive = NewAdaptiveRho(cfg.Rho)
		}
		return s, nil
	case AlgoIIADMM:
		s := NewIIADMMServer(w0, numClients, cfg.Rho)
		s.Workers = cfg.AggWorkers
		s.FreezeDual = cfg.FreezeDual
		if cfg.AdaptiveRho {
			s.Adaptive = NewAdaptiveRho(cfg.Rho)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
}
