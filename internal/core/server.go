package core

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ServerAlgorithm is the analog of APPFL's BaseServer: it owns the global
// model vector and defines how gathered local updates produce the next
// global iterate. Implementations are FedAvgServer, ICEADMMServer, and
// IIADMMServer; user-defined algorithms implement Update the same way
// APPFL users override BaseServer.update().
type ServerAlgorithm interface {
	// GlobalWeights returns the current global model w (not a copy; callers
	// must not mutate).
	GlobalWeights() []float64
	// Update consumes one gathered update per client (indexed by client)
	// and recomputes the global model.
	Update(updates []*wire.LocalUpdate) error
}

// BaseServer carries the state every server algorithm shares, mirroring
// the Python BaseServer class.
type BaseServer struct {
	W          []float64 // global model parameters
	NumClients int
	// Workers is the sharded-aggregation width (0 = GOMAXPROCS, 1 =
	// serial). Every server rule here is element-wise with a fixed
	// per-element fold order, so results are bit-identical across widths;
	// see parallel.go.
	Workers int

	version int // aggregations applied so far
}

// GlobalWeights returns the global parameter vector. This is the live
// slice — mutating it corrupts server state; use Weights or WeightsInto
// for a safe copy.
func (b *BaseServer) GlobalWeights() []float64 { return b.W }

// Weights returns a defensive copy of the global parameter vector.
func (b *BaseServer) Weights() []float64 { return b.WeightsInto(nil) }

// WeightsInto copies the global parameter vector into dst (grown as
// needed) and returns it.
func (b *BaseServer) WeightsInto(dst []float64) []float64 {
	dst = append(dst[:0], b.W...)
	return dst
}

// Dim returns the model dimension.
func (b *BaseServer) Dim() int { return len(b.W) }

// Version counts the aggregations applied so far.
func (b *BaseServer) Version() int { return b.version }

// checkCount enforces the full-federation batch size of the strict
// Update path.
func (b *BaseServer) checkCount(n int) error {
	if n != b.NumClients {
		return fmt.Errorf("core: gathered %d updates for %d clients", n, b.NumClients)
	}
	return nil
}

// checkUpdates validates the gathered batch shape shared by all servers.
func (b *BaseServer) checkUpdates(updates []*wire.LocalUpdate, needDual bool) error {
	if err := b.checkCount(len(updates)); err != nil {
		return err
	}
	return b.checkBatch(updates, needDual, false)
}

// checkBatch validates a released batch of any size (the cohort form used
// by the Scheduler × Aggregator path). With allowEnc, an update may carry
// its primal as a still-encoded payload (the fused invert+fold path); the
// payload's declared dimension is checked in Primal's stead.
func (b *BaseServer) checkBatch(batch []*wire.LocalUpdate, needDual, allowEnc bool) error {
	if len(batch) == 0 {
		return fmt.Errorf("core: aggregate on an empty batch")
	}
	for i, u := range batch {
		if u == nil {
			return fmt.Errorf("core: missing update from client %d", i)
		}
		if allowEnc && len(u.Primal) == 0 && u.PrimalP != nil {
			if int(u.PrimalP.Dim) != len(b.W) {
				return fmt.Errorf("core: client %d payload dimension %d, model is %d", i, u.PrimalP.Dim, len(b.W))
			}
		} else if len(u.Primal) != len(b.W) {
			return fmt.Errorf("core: client %d primal dimension %d, model is %d", i, len(u.Primal), len(b.W))
		}
		if needDual && len(u.Dual) != len(b.W) {
			return fmt.Errorf("core: client %d dual dimension %d, model is %d", i, len(u.Dual), len(b.W))
		}
	}
	return nil
}

// foldSrcFor views one update as a fold source for the batched kernels:
// the dense primal when it was decoded (or arrived legacy-dense), or the
// still-encoded payload via the fused stage. w is the fold coefficient.
func foldSrcFor(u *wire.LocalUpdate, fused pipeline.FusedStage, w float64) (tensor.FoldSrc, error) {
	if len(u.Primal) > 0 || fused == nil || u.PrimalP == nil {
		return tensor.FoldSrc{Kind: tensor.SrcDense, Dense: u.Primal, W: w}, nil
	}
	src, err := fused.FoldSrc(u.PrimalP)
	if err != nil {
		return src, fmt.Errorf("core: client %d update: %w", u.ClientID, err)
	}
	src.W = w
	return src, nil
}

// clearSrcs drops the batch aliases so recycled scratch does not pin
// payload buffers past the aggregation that used them.
func clearSrcs(srcs []tensor.FoldSrc) {
	for i := range srcs {
		srcs[i] = tensor.FoldSrc{}
	}
}

// FedAvgServer implements federated averaging (McMahan et al., 2017):
// the global model is the sample-weighted average of client models,
// w ← Σ_p (I_p/I) z_p, following Eq. (1)'s weighting.
type FedAvgServer struct {
	BaseServer

	// fused, when set, lets Aggregate fold still-encoded payloads (f16 or
	// quantized) straight into the accumulator; see EnableFusedFold.
	fused pipeline.FusedStage

	// prec32 selects the single-precision accumulator: w32 is then the
	// authoritative model and W a lazily refreshed float64 mirror.
	prec32   bool
	w32      []float32
	w32stale bool // w32 has advanced past the W mirror

	// tier, when non-nil, is the hierarchical sharded aggregation tier
	// (Config.AggShards): the fold fans out to long-lived shard workers
	// over fixed index ranges and tree-reduces PartialAggregates back
	// into W, bit-identically to the flat path. See shard.go.
	tier *shardTier

	// Pre-bound chunk operation and fold-source scratch of the sharded
	// batched fold (no per-call closure or slice allocation; see
	// BufferedAggregator for the same pattern).
	srcs    []tensor.FoldSrc
	aggOp   func(lo, hi int)
	aggOp32 func(lo, hi int)

	// Scatter-fold scratch of the subset (partial-parameter) path: listed
	// coordinate mass and weighted sums, plus the pre-bound sweep op. See
	// subset.go.
	subMass []float64
	subAcc  []float64
	subOp   func(lo, hi int)
}

// NewFedAvgServer builds the server with initial weights w0.
func NewFedAvgServer(w0 []float64, numClients int) *FedAvgServer {
	w := append([]float64(nil), w0...)
	s := &FedAvgServer{BaseServer: BaseServer{W: w, NumClients: numClients}}
	s.aggOp = s.aggChunk
	s.aggOp32 = s.aggChunk32
	s.subOp = s.subsetChunk
	return s
}

// usePrecision32 switches the server to the single-precision accumulator.
// Must be called before any aggregation.
func (s *FedAvgServer) usePrecision32() {
	s.prec32 = true
	s.w32 = tensor.Narrow(nil, s.W)
}

// setFusedStage wires the fused invert+fold fast path (EnableFusedFold).
func (s *FedAvgServer) setFusedStage(fs pipeline.FusedStage) { s.fused = fs }

// useShards attaches the hierarchical sharded aggregation tier of width
// n. Must be called before any aggregation; not combinable with the f32
// accumulator (Config.Validate enforces both).
func (s *FedAvgServer) useShards(n int) { s.tier = newShardTier(s.W, n) }

// syncMirror refreshes the float64 mirror from the f32 accumulator.
func (s *FedAvgServer) syncMirror() {
	if s.w32stale {
		s.W = tensor.Widen(s.W, s.w32)
		s.w32stale = false
	}
}

// GlobalWeights returns the current global model (not a copy).
func (s *FedAvgServer) GlobalWeights() []float64 {
	s.syncMirror()
	return s.W
}

// Weights returns a defensive copy of the global parameter vector.
func (s *FedAvgServer) Weights() []float64 { return s.WeightsInto(nil) }

// WeightsInto copies the global parameter vector into dst.
func (s *FedAvgServer) WeightsInto(dst []float64) []float64 {
	s.syncMirror()
	return append(dst[:0], s.W...)
}

// Weights32 exposes the live single-precision model, or nil when the
// server aggregates in float64. The f16 downlink encoder uses it to skip
// the widening sweep (the f16 rounding of a float32 and of its exact
// float64 widening are the same bits).
func (s *FedAvgServer) Weights32() []float32 {
	if !s.prec32 {
		return nil
	}
	return s.w32
}

// aggChunk folds the batch over one chunk of the index space with the
// cache-blocked K-way kernel. Per element the fold order (zero, then +=
// in batch order) matches the pre-kernel serial loop exactly, so neither
// chunking nor blocking can change a single bit.
func (s *FedAvgServer) aggChunk(lo, hi int) { tensor.FoldKSrc(s.W, lo, hi, s.srcs) }

// aggChunk32 is aggChunk on the single-precision accumulator.
func (s *FedAvgServer) aggChunk32(lo, hi int) { tensor.FoldKSrc32(s.w32, lo, hi, s.srcs) }

// Update averages the client primal vectors weighted by sample counts.
// Updates with NumSamples == 0 (non-participants under partial
// participation) carry zero weight; a round in which nobody trained leaves
// the global model unchanged. The batch must cover every client; partial
// cohorts go through Aggregate.
func (s *FedAvgServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkCount(len(updates)); err != nil {
		return err
	}
	return s.Aggregate(updates)
}

// Aggregate averages a released batch of any size — the cohort form: a
// sampled cohort's updates carry full weight, and the math over a full
// cohort is identical to Update's, so the SyncAll schedule reproduces the
// pre-refactor trajectory exactly. All contributing updates fold in one
// batched K-way pass per chunk (tensor.FoldKSrc) instead of K separate
// accumulator sweeps.
func (s *FedAvgServer) Aggregate(batch []*wire.LocalUpdate) error {
	if isSubsetBatch(batch) {
		return s.aggregateSubset(batch)
	}
	if err := s.checkBatch(batch, false, s.fused != nil); err != nil {
		return err
	}
	total := 0.0
	for _, u := range batch {
		total += float64(u.NumSamples)
	}
	srcs := s.srcs[:0]
	if total > 0 {
		for _, u := range batch {
			if u.NumSamples == 0 {
				continue
			}
			// The division (not a hoisted reciprocal) keeps the weight the
			// exact bits of the pre-kernel path.
			src, err := foldSrcFor(u, s.fused, float64(u.NumSamples)/total)
			if err != nil {
				return err
			}
			srcs = append(srcs, src)
		}
	}
	s.version++
	if total == 0 {
		return nil
	}
	s.srcs = srcs
	switch {
	case s.prec32:
		shardRun(len(s.w32), s.Workers, s.aggOp32)
		s.w32stale = true
	case s.tier != nil:
		if err := s.tier.fold(s.W, s.srcs, uint64(s.version), false); err != nil {
			return err
		}
	default:
		shardRun(len(s.W), s.Workers, s.aggOp)
	}
	clearSrcs(s.srcs)
	return nil
}

// ICEADMMServer implements the server step of ICEADMM (Zhou & Li, 2021):
// clients upload both primal z_p and dual λ_p each round and the server
// computes w ← (1/P) Σ_p (z_p − λ_p/ρ), the closed-form solution of (3a).
type ICEADMMServer struct {
	BaseServer
	Rho float64
	// Adaptive, when non-nil, re-tunes Rho by residual balancing after
	// every round (the paper's planned adaptive-penalty extension).
	Adaptive *AdaptiveRho

	wPrev []float64

	// Per-batch primal/dual views and the pre-bound chunk op of the
	// sharded consensus fold (reused scratch; no per-call allocation).
	aggZ  [][]float64
	aggD  [][]float64
	aggOp func(lo, hi int)
}

// NewICEADMMServer builds the server with initial weights w0.
func NewICEADMMServer(w0 []float64, numClients int, rho float64) *ICEADMMServer {
	w := append([]float64(nil), w0...)
	s := &ICEADMMServer{BaseServer: BaseServer{W: w, NumClients: numClients}, Rho: rho}
	s.aggOp = s.aggChunk
	return s
}

// aggChunk computes w ← (1/P) Σ_p (z_p − λ_p/ρ) over one index chunk with
// the cache-blocked K-way kernel, folding clients in batch order per
// element exactly like the pre-kernel serial loop.
func (s *ICEADMMServer) aggChunk(lo, hi int) {
	tensor.FoldKDual(s.W, lo, hi, s.aggZ, s.aggD, 1.0/float64(s.NumClients), s.Rho)
}

// CurrentRho reports the penalty the next round must use.
func (s *ICEADMMServer) CurrentRho() float64 { return s.Rho }

// Update recomputes w from the uploaded primal and dual vectors, then
// adapts ρ when the controller is attached.
func (s *ICEADMMServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkUpdates(updates, true); err != nil {
		return err
	}
	s.version++
	s.wPrev = append(s.wPrev[:0], s.W...)
	s.aggZ, s.aggD = s.aggZ[:0], s.aggD[:0]
	for _, u := range updates {
		s.aggZ = append(s.aggZ, u.Primal)
		s.aggD = append(s.aggD, u.Dual)
	}
	shardRun(len(s.W), s.Workers, s.aggOp)
	if s.Adaptive != nil {
		p, d := Residuals(s.W, s.wPrev, s.aggZ, s.Rho)
		s.Rho = s.Adaptive.Step(p, d)
	}
	clearVecs(s.aggZ)
	clearVecs(s.aggD)
	return nil
}

// clearVecs drops batch aliases from recycled [][]float64 scratch.
func clearVecs(vs [][]float64) {
	for i := range vs {
		vs[i] = nil
	}
}

// IIADMMServer implements the server of the paper's Algorithm 1. The
// decisive difference from ICEADMM: clients upload only z_p; the server
// maintains its own mirror copy of every dual λ_p and applies the identical
// dual update λ_p ← λ_p + ρ(w − z_p) (line 6), which stays consistent with
// the client copies because (z¹,λ¹) are agreed once at initialization.
type IIADMMServer struct {
	BaseServer
	Rho        float64
	FreezeDual bool
	// Adaptive, when non-nil, re-tunes Rho after every round. The new ρ is
	// broadcast with the next global model, so the client dual updates (made
	// with the broadcast ρ) remain bit-identical to the server mirrors.
	Adaptive *AdaptiveRho

	duals [][]float64 // mirror λ_p per client
	wPrev []float64

	aggZ  [][]float64 // per-batch primal views (reused scratch)
	aggOp func(lo, hi int)
}

// NewIIADMMServer builds the server; duals start at zero, the shared
// initialization of Algorithm 1 line 1.
func NewIIADMMServer(w0 []float64, numClients int, rho float64) *IIADMMServer {
	w := append([]float64(nil), w0...)
	duals := make([][]float64, numClients)
	for i := range duals {
		duals[i] = make([]float64, len(w0))
	}
	s := &IIADMMServer{
		BaseServer: BaseServer{W: w, NumClients: numClients},
		Rho:        rho,
		duals:      duals,
	}
	s.aggOp = s.aggChunk
	return s
}

// aggChunk runs lines 6 and 3 of Algorithm 1 over one index chunk with
// the cache-blocked kernels. The dual update reads the pre-zeroing w of
// its own chunk only, so running chunks concurrently is exactly the
// serial element order; the batch covers every client ordered by ID
// (checkCount), so batch index p addresses mirror dual s.duals[p].
func (s *IIADMMServer) aggChunk(lo, hi int) {
	if !s.FreezeDual {
		tensor.DualStepK(s.duals, s.W, lo, hi, s.aggZ, s.Rho)
	}
	tensor.FoldKDual(s.W, lo, hi, s.aggZ, s.duals, 1.0/float64(s.NumClients), s.Rho)
}

// Dual exposes the mirror dual of one client for consistency testing.
func (s *IIADMMServer) Dual(client int) []float64 { return s.duals[client] }

// CurrentRho reports the penalty the next round must use.
func (s *IIADMMServer) CurrentRho() float64 { return s.Rho }

// Update implements lines 3 and 6 of Algorithm 1: first the mirror dual
// update with the incoming primals against the w that produced them, then
// the global update w ← (1/P) Σ_p (z_p − λ_p/ρ) for the next round, then
// (optionally) the adaptive-ρ step for the round after.
func (s *IIADMMServer) Update(updates []*wire.LocalUpdate) error {
	if err := s.checkUpdates(updates, false); err != nil {
		return err
	}
	s.version++
	s.wPrev = append(s.wPrev[:0], s.W...)
	// Line 6: λ_p ← λ_p + ρ(w^{t+1} − z_p^{t+1}); w is still the model that
	// was broadcast this round, and ρ is the value that rode with it.
	// Line 3 (for the next round): w ← (1/P) Σ (z_p − λ_p/ρ).
	// Both are element-wise, so they run sharded in one chunk pass.
	s.aggZ = s.aggZ[:0]
	for _, u := range updates {
		s.aggZ = append(s.aggZ, u.Primal)
	}
	shardRun(len(s.W), s.Workers, s.aggOp)
	if s.Adaptive != nil {
		p, d := Residuals(s.W, s.wPrev, s.aggZ, s.Rho)
		s.Rho = s.Adaptive.Step(p, d)
	}
	clearVecs(s.aggZ)
	return nil
}

// Aggregate consumes a released batch. The ADMM family maintains one dual
// per client, so a valid batch always covers the whole federation ordered
// by client ID — partial cohorts are a configuration error caught by
// Config.Validate.
func (s *ICEADMMServer) Aggregate(batch []*wire.LocalUpdate) error { return s.Update(batch) }

// Aggregate consumes a released batch; see ICEADMMServer.Aggregate for why
// the ADMM family requires full cohorts.
func (s *IIADMMServer) Aggregate(batch []*wire.LocalUpdate) error { return s.Update(batch) }

// Interface conformance checks: the legacy servers are Aggregators.
var (
	_ Aggregator = (*FedAvgServer)(nil)
	_ Aggregator = (*ICEADMMServer)(nil)
	_ Aggregator = (*IIADMMServer)(nil)
)

// NewServer constructs the server for cfg with initial weights w0.
func NewServer(cfg Config, w0 []float64, numClients int) (ServerAlgorithm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Algorithm {
	case AlgoFedAvg:
		s := NewFedAvgServer(w0, numClients)
		s.Workers = cfg.AggWorkers
		if cfg.AggPrecision == AggF32 {
			s.usePrecision32()
		}
		if cfg.AggShards > 1 {
			s.useShards(cfg.AggShards)
		}
		return s, nil
	case AlgoICEADMM:
		s := NewICEADMMServer(w0, numClients, cfg.Rho)
		s.Workers = cfg.AggWorkers
		if cfg.AdaptiveRho {
			s.Adaptive = NewAdaptiveRho(cfg.Rho)
		}
		return s, nil
	case AlgoIIADMM:
		s := NewIIADMMServer(w0, numClients, cfg.Rho)
		s.Workers = cfg.AggWorkers
		s.FreezeDual = cfg.FreezeDual
		if cfg.AdaptiveRho {
			s.Adaptive = NewAdaptiveRho(cfg.Rho)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
}
