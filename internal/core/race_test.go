package core

import (
	"errors"
	"testing"
	"time"
)

// The scheduler timeout paths interleave a deadline firing on the server
// with a straggler's upload landing: the suspected data race is between
// the buffered release (or barrier forgiveness) and a late arrival's
// ledger write. These tests pin those interleavings under -race by
// scripting delays comparable to the round timeout, so every run scatters
// arrivals on both sides of the deadline. The outcome is allowed to vary
// (a round may or may not time out); corruption, deadlock, or a race
// report is the failure.

// raceRun executes a run whose uploads straddle the deadline.
func raceRun(t *testing.T, sched string, plan string, timeout time.Duration) {
	t.Helper()
	cfg := scenConfig(sched, "")
	cfg.Rounds = 6
	cfg.RoundTimeout = timeout
	res, err := runScenario(t, cfg, TransportMPI, plan)
	// With delays hovering at the deadline, entire rounds can lose quorum;
	// that abort is a legal outcome — a hang or a race report is not.
	if err != nil && !errors.Is(err, ErrQuorum) {
		t.Fatalf("run: %v", err)
	}
	if err == nil {
		for i, rs := range res.Rounds {
			if rs.Round != i+1 {
				t.Fatalf("round %d recorded as %d", i+1, rs.Round)
			}
		}
	}
}

func TestRaceBarrierDeadlineVsLateArrival(t *testing.T) {
	// Every upload delayed by ~the timeout, with jitter spreading arrivals
	// across the deadline. Timed-out clients are forgiven while their
	// uploads are mid-flight — the late-arrival discard path under fire.
	raceRun(t, SchedSyncAll, "delay:100%:35:30", 50*time.Millisecond)
}

func TestRaceBufferedReleaseVsStraggler(t *testing.T) {
	// Buffered releases race the stragglers directly: the release fires on
	// K arrivals or the deadline, whichever comes first, while delayed
	// uploads keep landing.
	raceRun(t, SchedBuffered, "delay:100%:35:30", 50*time.Millisecond)
}

func TestRaceSampledCohortTimeoutChurn(t *testing.T) {
	// Sampled cohorts plus upload loss: forgiveness, benching, and
	// re-scheduling churn the ledger from both sides.
	raceRun(t, SchedSampled, "drop:100%:0.4,delay:100%:10:25", 40*time.Millisecond)
}
