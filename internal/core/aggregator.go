package core

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Aggregator is the state-update half of the split server: given a batch
// of local updates released by a Scheduler, it produces the next global
// iterate. It is deliberately ignorant of *when* and *from whom* a batch
// is gathered — that is the Scheduler's job — which is the decomposition
// that lets one set of aggregation rules (FedAvg, the ADMM family, the
// staleness-weighted asynchronous rule) serve synchronous, sampled-cohort,
// and buffered semi-asynchronous execution alike.
//
// FedAvgServer, ICEADMMServer, IIADMMServer, and BufferedAggregator all
// implement it; the first three keep their legacy ServerAlgorithm surface
// so pre-refactor callers and tests are untouched.
type Aggregator interface {
	// Dim returns the model dimension.
	Dim() int
	// Version counts the aggregations applied so far — the global model's
	// version number, which clients echo back as LocalUpdate.BaseVersion.
	Version() int
	// Weights returns a defensive copy of the current global model.
	// Mutating the returned slice cannot corrupt server state.
	Weights() []float64
	// WeightsInto copies the current global model into dst (grown as
	// needed) and returns it, for callers that amortize the allocation.
	WeightsInto(dst []float64) []float64
	// Aggregate folds one released batch of local updates into the global
	// model and advances the version.
	Aggregate(batch []*wire.LocalUpdate) error
}

// NewAggregator constructs the aggregator for cfg with initial weights w0.
// The buffered scheduler pairs with the staleness-weighted rule; every
// barrier scheduler uses the algorithm's own server.
func NewAggregator(cfg Config, w0 []float64, numClients int) (Aggregator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == SchedBuffered {
		// Alpha/gamma defaults come from Config.WithDefaults — the single
		// defaulting source; a zero alpha here is a caller error.
		b, err := NewBufferedAggregator(w0, cfg.AsyncAlpha, cfg.AsyncGamma, cfg.MaxStaleness)
		if err != nil {
			return nil, err
		}
		b.Workers = cfg.AggWorkers
		if cfg.AggPrecision == AggF32 {
			b.usePrecision32()
		}
		if cfg.AggShards > 1 {
			b.useShards(cfg.AggShards)
		}
		return b, nil
	}
	srv, err := NewServer(cfg, w0, numClients)
	if err != nil {
		return nil, err
	}
	agg, ok := srv.(Aggregator)
	if !ok {
		return nil, fmt.Errorf("core: server for %q does not implement Aggregator", cfg.Algorithm)
	}
	return agg, nil
}

// Weights32Provider is implemented by aggregators that maintain a live
// single-precision model (Config.AggPrecision = f32). The f16 downlink
// encoder uses it to feed the half-float rounding directly from the f32
// accumulator, skipping the widening sweep; the bits are identical either
// way (Float16FromFloat64 rounds through float32).
type Weights32Provider interface {
	// Weights32 returns the live float32 model, or nil when the
	// aggregator runs in float64. Callers must not mutate it.
	Weights32() []float32
}

// StalenessWeight is the FedAsync mixing rate α_s = α·(1+staleness)^(−γ):
// the staler the contribution, the smaller its influence on the global
// model. It is the shared rule behind AsyncServer and BufferedAggregator.
func StalenessWeight(alpha, gamma, staleness float64) float64 {
	return alpha * math.Pow(1+staleness, -gamma)
}

// foldScaled applies w ← (1−a)·w + a·z. It is the serial kernel of the
// staleness-weighted rule; the sharded path runs it per chunk.
func foldScaled(w, z []float64, a float64) {
	for i, v := range z {
		w[i] = (1-a)*w[i] + a*v
	}
}

// BufferedAggregator implements the FedBuff-style semi-asynchronous rule:
// the Buffered scheduler releases a batch as soon as K updates land, and
// each update in the batch is folded into the global model down-weighted
// by its staleness (the number of releases since the contributor last
// downloaded the model). Updates staler than MaxStaleness are dropped
// entirely. One release advances the model version by one.
type BufferedAggregator struct {
	w       []float64
	version int
	alpha   float64
	gamma   float64

	// MaxStaleness drops updates whose base model is more than this many
	// releases old (0 = keep everything, however stale).
	MaxStaleness int
	// Workers is the sharded-fold width (0 = GOMAXPROCS, 1 = serial).
	// Results are bit-identical across widths; see parallel.go.
	Workers int
	// Applied and Dropped count folded and discarded updates;
	// StaleApplied counts the folded updates that had staleness > 0.
	Applied, Dropped, StaleApplied int

	// fused, when set, folds still-encoded payloads directly; see
	// EnableFusedFold.
	fused pipeline.FusedStage

	// prec32 selects the single-precision accumulator: w32 is then the
	// authoritative model and w a lazily refreshed float64 mirror.
	prec32   bool
	w32      []float32
	w32stale bool

	// tier, when non-nil, is the hierarchical sharded aggregation tier
	// (Config.AggShards); see FedAvgServer.tier and shard.go.
	tier *shardTier

	// Pre-bound fold operation and fold-source scratch: binding the
	// method value once at construction keeps the sharded batched fold
	// allocation-free in steady state (no per-call closure).
	srcs     []tensor.FoldSrc
	foldOp   func(lo, hi int)
	foldOp32 func(lo, hi int)
}

// NewBufferedAggregator builds the aggregator. alpha in (0,1] is the base
// mixing rate; gamma >= 0 is the staleness-decay exponent.
func NewBufferedAggregator(w0 []float64, alpha, gamma float64, maxStaleness int) (*BufferedAggregator, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: buffered alpha must be in (0,1], got %v", alpha)
	}
	if gamma < 0 {
		return nil, fmt.Errorf("core: buffered gamma must be >= 0, got %v", gamma)
	}
	if maxStaleness < 0 {
		return nil, fmt.Errorf("core: MaxStaleness must be >= 0, got %d", maxStaleness)
	}
	b := &BufferedAggregator{
		w:            append([]float64(nil), w0...),
		alpha:        alpha,
		gamma:        gamma,
		MaxStaleness: maxStaleness,
	}
	b.foldOp = b.foldChunk
	b.foldOp32 = b.foldChunk32
	return b, nil
}

// usePrecision32 switches the aggregator to the single-precision
// accumulator. Must be called before any aggregation.
func (b *BufferedAggregator) usePrecision32() {
	b.prec32 = true
	b.w32 = tensor.Narrow(nil, b.w)
}

// setFusedStage wires the fused invert+fold fast path (EnableFusedFold).
func (b *BufferedAggregator) setFusedStage(fs pipeline.FusedStage) { b.fused = fs }

// useShards attaches the hierarchical sharded aggregation tier of width
// n; see FedAvgServer.useShards. The shards seed their ranges from the
// current model: the convex staleness rule folds into prior state, which
// the tier's shards own from here on.
func (b *BufferedAggregator) useShards(n int) { b.tier = newShardTier(b.w, n) }

// foldChunk folds the whole release over one chunk with the cache-blocked
// sequential-convex kernel: within a block, update k fully folds before
// update k+1, so per element the operation sequence is exactly the
// pre-kernel one-update-at-a-time sweeps.
func (b *BufferedAggregator) foldChunk(lo, hi int) { tensor.FoldKScaledSrc(b.w, lo, hi, b.srcs) }

// foldChunk32 is foldChunk on the single-precision accumulator.
func (b *BufferedAggregator) foldChunk32(lo, hi int) { tensor.FoldKScaledSrc32(b.w32, lo, hi, b.srcs) }

// syncMirror refreshes the float64 mirror from the f32 accumulator.
func (b *BufferedAggregator) syncMirror() {
	if b.w32stale {
		b.w = tensor.Widen(b.w, b.w32)
		b.w32stale = false
	}
}

// Dim returns the model dimension.
func (b *BufferedAggregator) Dim() int { return len(b.w) }

// Version counts the releases applied so far.
func (b *BufferedAggregator) Version() int { return b.version }

// Weights returns a copy of the current global model.
func (b *BufferedAggregator) Weights() []float64 { return b.WeightsInto(nil) }

// WeightsInto copies the current global model into dst.
func (b *BufferedAggregator) WeightsInto(dst []float64) []float64 {
	b.syncMirror()
	dst = append(dst[:0], b.w...)
	return dst
}

// Weights32 exposes the live single-precision model, or nil in f64 mode;
// see FedAvgServer.Weights32.
func (b *BufferedAggregator) Weights32() []float32 {
	if !b.prec32 {
		return nil
	}
	return b.w32
}

// Aggregate folds one released batch, down-weighting each update by its
// staleness relative to the current version, and advances the version.
// The whole batch is validated first — an invalid update rejects the
// release before anything folds — then every kept update folds in one
// batched sharded pass (tensor.FoldKScaledSrc). Staleness is measured
// against the pre-release version for every update, exactly as the
// per-update path did (the version advances once per release, at the end).
func (b *BufferedAggregator) Aggregate(batch []*wire.LocalUpdate) error {
	if len(batch) == 0 {
		return fmt.Errorf("core: buffered aggregate on an empty batch")
	}
	for _, u := range batch {
		if u == nil {
			return fmt.Errorf("core: nil update in buffered batch")
		}
		if b.fused != nil && len(u.Primal) == 0 && u.PrimalP != nil {
			if int(u.PrimalP.Dim) != len(b.w) {
				return fmt.Errorf("core: client %d payload dimension %d, model is %d", u.ClientID, u.PrimalP.Dim, len(b.w))
			}
		} else if len(u.Primal) != len(b.w) {
			return fmt.Errorf("core: client %d primal dimension %d, model is %d", u.ClientID, len(u.Primal), len(b.w))
		}
		if u.BaseVersion > uint64(b.version) {
			return fmt.Errorf("core: client %d update from future version %d, server at %d", u.ClientID, u.BaseVersion, b.version)
		}
	}
	srcs := b.srcs[:0]
	applied, staleApplied, dropped := 0, 0, 0
	for _, u := range batch {
		staleness := b.version - int(u.BaseVersion)
		if b.MaxStaleness > 0 && staleness > b.MaxStaleness {
			dropped++
			continue
		}
		if u.NumSamples == 0 {
			// Zero-weight echo from a non-participant: nothing to fold.
			continue
		}
		src, err := foldSrcFor(u, b.fused, StalenessWeight(b.alpha, b.gamma, float64(staleness)))
		if err != nil {
			return err
		}
		srcs = append(srcs, src)
		applied++
		if staleness > 0 {
			staleApplied++
		}
	}
	b.srcs = srcs
	if len(srcs) > 0 {
		switch {
		case b.prec32:
			shardRun(len(b.w32), b.Workers, b.foldOp32)
			b.w32stale = true
		case b.tier != nil:
			if err := b.tier.fold(b.w, b.srcs, uint64(b.version), true); err != nil {
				return err
			}
		default:
			shardRun(len(b.w), b.Workers, b.foldOp)
		}
		clearSrcs(b.srcs)
	}
	b.Applied += applied
	b.StaleApplied += staleApplied
	b.Dropped += dropped
	b.version++
	return nil
}

// Interface conformance check.
var _ Aggregator = (*BufferedAggregator)(nil)
