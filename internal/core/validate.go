package core

import (
	"repro/internal/dataset"
	"repro/internal/nn"
)

// Evaluate runs the server-side validation routine of Section II-A.5:
// it computes mean cross-entropy loss and top-1 accuracy of the model on a
// held-out test dataset, batched to bound memory.
func Evaluate(model nn.Module, ds dataset.Dataset, batchSize int) (loss, accuracy float64) {
	if ds.Len() == 0 {
		return 0, 0
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	loader := dataset.NewLoader(ds, batchSize, false, nil)
	totalLoss := 0.0
	correct := 0
	for {
		b, ok := loader.Next()
		if !ok {
			break
		}
		logits := model.Forward(b.X)
		l, _ := nn.CrossEntropy(logits, b.Labels)
		totalLoss += l * float64(len(b.Labels))
		for i := 0; i < len(b.Labels); i++ {
			if logits.Row(i).ArgMax() == b.Labels[i] {
				correct++
			}
		}
	}
	n := float64(ds.Len())
	return totalLoss / n, float64(correct) / n
}

// EvaluateWeights loads the flat weight vector into the model and runs
// Evaluate — the form the round runner uses on the global iterate.
func EvaluateWeights(model nn.Module, w []float64, ds dataset.Dataset, batchSize int) (loss, accuracy float64) {
	nn.SetParams(model, w)
	return Evaluate(model, ds, batchSize)
}
