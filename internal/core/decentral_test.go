package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingTopology(t *testing.T) {
	r := Ring(5)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, nb := range r.Neighbors {
		if len(nb) != 2 {
			t.Fatalf("ring node %d has %d neighbors", i, len(nb))
		}
	}
	// Degenerate sizes.
	if err := Ring(1).Validate(); err != nil {
		t.Fatal(err)
	}
	two := Ring(2)
	if err := two.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(two.Neighbors[0]) != 1 {
		t.Fatalf("2-ring should have single edges: %v", two.Neighbors)
	}
}

func TestCompleteTopology(t *testing.T) {
	c := Complete(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, nb := range c.Neighbors {
		if len(nb) != 3 {
			t.Fatalf("complete node %d has %d neighbors", i, len(nb))
		}
	}
}

func TestTopologyValidateRejectsBadGraphs(t *testing.T) {
	asym := Topology{Neighbors: [][]int{{1}, {}}}
	if err := asym.Validate(); err == nil {
		t.Fatal("asymmetric edge accepted")
	}
	self := Topology{Neighbors: [][]int{{0}}}
	if err := self.Validate(); err == nil {
		t.Fatal("self-loop accepted")
	}
	oob := Topology{Neighbors: [][]int{{5}}}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

// Property: Metropolis weights are symmetric, non-negative, and doubly
// stochastic on rings of any size.
func TestMetropolisWeightsDoublyStochastic(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%12) + 3
		topo := Ring(n)
		w := MetropolisWeights(topo)
		for p := 0; p < n; p++ {
			rowSum := 0.0
			for q := 0; q < n; q++ {
				if w[p][q] < -1e-12 {
					return false
				}
				if math.Abs(w[p][q]-w[q][p]) > 1e-12 {
					return false
				}
				rowSum += w[p][q]
			}
			if math.Abs(rowSum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGossipMixingContracts: with zero local steps of useful training the
// mixing step alone must shrink the consensus distance geometrically.
// Verified directly on the weight algebra.
func TestGossipMixingContracts(t *testing.T) {
	topo := Ring(6)
	w := MetropolisWeights(topo)
	// Arbitrary divergent states in R^2.
	states := [][]float64{{1, 0}, {0, 1}, {-1, 2}, {3, -1}, {0.5, 0.5}, {-2, -2}}
	before := consensusDistance(states)
	mix := func(s [][]float64) [][]float64 {
		n := len(s)
		out := make([][]float64, n)
		for p := 0; p < n; p++ {
			x := make([]float64, len(s[p]))
			for q := 0; q < n; q++ {
				if w[p][q] == 0 {
					continue
				}
				for i := range x {
					x[i] += w[p][q] * s[q][i]
				}
			}
			out[p] = x
		}
		return out
	}
	after := states
	for i := 0; i < 10; i++ {
		after = mix(after)
	}
	if consensusDistance(after) >= before*0.5 {
		t.Fatalf("10 gossip rounds did not halve consensus distance: %v -> %v", before, consensusDistance(after))
	}
	// The mean must be preserved by a doubly stochastic mix.
	meanOf := func(s [][]float64) []float64 {
		m := make([]float64, len(s[0]))
		for _, x := range s {
			for i, v := range x {
				m[i] += v / float64(len(s))
			}
		}
		return m
	}
	m0, m1 := meanOf(states), meanOf(after)
	for i := range m0 {
		if math.Abs(m0[i]-m1[i]) > 1e-9 {
			t.Fatalf("gossip mixing moved the mean: %v vs %v", m0, m1)
		}
	}
}

func TestRunDecentralizedLearns(t *testing.T) {
	fed := tinyFed(t, 6, 360, 120)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 4, LocalSteps: 2, BatchSize: 32, Seed: 4}
	res, err := RunDecentralized(cfg, fed, tinyFactory(), Ring(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	if res.FinalAcc < 0.2 {
		t.Fatalf("decentralized training accuracy %.3f did not beat chance", res.FinalAcc)
	}
	for _, r := range res.Rounds {
		if r.Consensus < 0 {
			t.Fatalf("negative consensus distance: %+v", r)
		}
	}
}

func TestRunDecentralizedWithDP(t *testing.T) {
	fed := tinyFed(t, 4, 128, 32)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Epsilon: 5, Seed: 5}
	res, err := RunDecentralized(cfg, fed, tinyFactory(), Ring(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
}

func TestRunDecentralizedValidation(t *testing.T) {
	fed := tinyFed(t, 3, 48, 16)
	if _, err := RunDecentralized(Config{Algorithm: AlgoIIADMM}, fed, tinyFactory(), Ring(3)); err == nil {
		t.Fatal("IADMM decentralized accepted")
	}
	if _, err := RunDecentralized(Config{Algorithm: AlgoFedAvg}, fed, tinyFactory(), Ring(5)); err == nil {
		t.Fatal("topology size mismatch accepted")
	}
}

// TestDecentralizedCompleteBeatsRingMixing: on a complete graph the mixing
// is one-shot averaging, so consensus after one round must be tighter than
// on a ring.
func TestDecentralizedCompleteBeatsRingMixing(t *testing.T) {
	fed := tinyFed(t, 6, 180, 30)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 1, LocalSteps: 1, BatchSize: 32, Seed: 6}
	ring, err := RunDecentralized(cfg, fed, tinyFactory(), Ring(6))
	if err != nil {
		t.Fatal(err)
	}
	complete, err := RunDecentralized(cfg, fed, tinyFactory(), Complete(6))
	if err != nil {
		t.Fatal(err)
	}
	if complete.Rounds[0].Consensus >= ring.Rounds[0].Consensus {
		t.Fatalf("complete-graph consensus %v should beat ring %v",
			complete.Rounds[0].Consensus, ring.Rounds[0].Consensus)
	}
}
