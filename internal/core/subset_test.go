package core

import (
	"math"
	"testing"

	"repro/internal/wire"
)

// subsetBatch builds a batch whose contributors upload the coordinate
// prefix [0, n) of their trained vectors as subset payloads.
func subsetTestBatch(clients, dim, n int, seed uint64, samples func(i int) uint64) []*wire.LocalUpdate {
	batch := make([]*wire.LocalUpdate, clients)
	for i := range batch {
		full := testVec(dim, seed+uint64(i))
		batch[i] = &wire.LocalUpdate{
			ClientID:   uint32(i),
			NumSamples: samples(i),
			PrimalP:    BuildSubsetPayload(full, float64(n)/float64(dim)),
		}
	}
	return batch
}

// TestSubsetFullCoverageMatchesFedAvg: equal-weight subsets covering
// every coordinate must reproduce the plain FedAvg fold bit for bit —
// the weights sum to exactly 1, so the retained-mass factor is exactly
// zero and the scatter sums run in the dense kernel's per-element order.
func TestSubsetFullCoverageMatchesFedAvg(t *testing.T) {
	const clients, dim = 4, 1000
	for _, workers := range aggWidths {
		dense := NewFedAvgServer(testVec(dim, 7), clients)
		dense.Workers = workers
		sub := NewFedAvgServer(testVec(dim, 7), clients)
		sub.Workers = workers
		for round := 0; round < 3; round++ {
			seed := uint64(40 + round)
			a := testBatch(clients, dim, seed)
			for _, u := range a {
				u.NumSamples = 8 // equal weights: 4 × 0.25 sums to exactly 1
			}
			b := subsetTestBatch(clients, dim, dim, seed, func(int) uint64 { return 8 })
			if err := dense.Aggregate(a); err != nil {
				t.Fatal(err)
			}
			if err := sub.Aggregate(b); err != nil {
				t.Fatal(err)
			}
		}
		requireBitEqual(t, "full-coverage subset", dense.Weights(), sub.Weights())
		if dense.Version() != sub.Version() {
			t.Fatalf("versions diverged: %d vs %d", dense.Version(), sub.Version())
		}
	}
}

// TestSubsetPartialCoverage: coordinates outside every subset must keep
// their global values exactly, and listed coordinates must mix uploaded
// and retained mass per the scatter-fold rule.
func TestSubsetPartialCoverage(t *testing.T) {
	const clients, dim, n = 3, 64, 16
	w0 := testVec(dim, 11)
	s := NewFedAvgServer(w0, clients)
	batch := subsetTestBatch(clients, dim, n, 21, func(i int) uint64 { return uint64(10 * (i + 1)) })
	if err := s.Aggregate(batch); err != nil {
		t.Fatal(err)
	}
	w := s.Weights()
	// Unlisted coordinates: untouched bits.
	for i := n; i < dim; i++ {
		if math.Float64bits(w[i]) != math.Float64bits(w0[i]) {
			t.Fatalf("unlisted coordinate %d changed: %v -> %v", i, w0[i], w[i])
		}
	}
	// Listed coordinates: acc + (1-mass)·w0 computed independently.
	total := 10.0 + 20.0 + 30.0
	for i := 0; i < n; i++ {
		acc, mass := 0.0, 0.0
		for c := 0; c < clients; c++ {
			a := float64(10*(c+1)) / total
			acc += a * batch[c].PrimalP.Values[i]
			mass += a
		}
		want := acc + (1-mass)*w0[i]
		if math.Float64bits(w[i]) != math.Float64bits(want) {
			t.Fatalf("listed coordinate %d: got %v, want %v", i, w[i], want)
		}
	}
}

// TestSubsetBatchValidation: heterogeneous rounds, dimension mismatches,
// and ineligible servers are rejected; zero-weight stragglers may ride
// without a payload.
func TestSubsetBatchValidation(t *testing.T) {
	const clients, dim = 3, 32
	s := NewFedAvgServer(testVec(dim, 1), clients)

	mixed := subsetTestBatch(clients, dim, 8, 5, func(int) uint64 { return 4 })
	mixed[1] = &wire.LocalUpdate{ClientID: 1, NumSamples: 4, Primal: testVec(dim, 6)}
	if err := s.Aggregate(mixed); err == nil {
		t.Error("full update accepted into a subset round")
	}

	bad := subsetTestBatch(clients, dim, 8, 5, func(int) uint64 { return 4 })
	bad[0].PrimalP.Dim = dim / 2
	bad[0].PrimalP.Values = bad[0].PrimalP.Values[:0]
	bad[0].PrimalP.Indices = bad[0].PrimalP.Indices[:0]
	if err := s.Aggregate(bad); err == nil {
		t.Error("subset over the wrong dimension accepted")
	}

	// A zero-weight contributor without a payload is a legal straggler.
	lazy := subsetTestBatch(clients, dim, 8, 5, func(int) uint64 { return 4 })
	lazy[2].NumSamples = 0
	lazy[2].PrimalP = nil
	if err := s.Aggregate(lazy); err != nil {
		t.Errorf("zero-weight payload-less straggler rejected: %v", err)
	}

	f32 := NewFedAvgServer(testVec(dim, 1), clients)
	f32.usePrecision32()
	if err := f32.Aggregate(subsetTestBatch(clients, dim, 8, 5, func(int) uint64 { return 4 })); err == nil {
		t.Error("subset fold accepted on the f32 accumulator")
	}
}
