package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/wire"
)

// ClientAlgorithm is the analog of APPFL's BaseClient: given the broadcast
// global model it performs local training on private data and produces the
// update to upload. User-defined algorithms implement LocalUpdate the same
// way APPFL users override BaseClient.update().
type ClientAlgorithm interface {
	LocalUpdate(round int, w []float64) (*wire.LocalUpdate, error)
}

// BaseClient carries the state every client algorithm shares: the model
// replica, the private dataset, the configured update pipeline, and
// scratch buffers. It mirrors the Python BaseClient class.
//
// The pipeline replaces the old inlined Clip/Mech fields: gradient
// clipping and per-round objective noise enter through Pipe.GradHook
// during training, and every release passes through Pipe.Apply (output
// noise, then compression) before it is installed in the LocalUpdate.
type BaseClient struct {
	ID     int
	Model  nn.Module
	Data   dataset.Dataset
	Loader *dataset.Loader
	// Pipe is the ordered privacy + compression stack of this client.
	Pipe *pipeline.Pipeline
	// Sens derives the DP sensitivity Δ̄ the noise stages consume; it is
	// recomputed when hyperparameters change (e.g. adaptive ρ).
	Sens dp.SensitivityRule

	dim     int
	gradBuf []float64
}

// newBaseClient wires the shared client state.
func newBaseClient(id int, model nn.Module, ds dataset.Dataset, batch int, pipe *pipeline.Pipeline, sens dp.SensitivityRule, r *rng.RNG) BaseClient {
	if pipe == nil {
		pipe, _ = pipeline.New() // identity
	}
	return BaseClient{
		ID:     id,
		Model:  model,
		Data:   ds,
		Loader: dataset.NewLoader(ds, batch, true, r),
		Pipe:   pipe,
		Sens:   sens,
		dim:    nn.NumParams(model),
	}
}

// beginRound prepares per-round pipeline state: in objective-perturbation
// mode the pipeline draws the round's noise vector b, which gradAt then
// adds to every gradient (the ⟨b, z⟩ term of the perturbed objective).
func (c *BaseClient) beginRound() {
	c.Pipe.BeginRound(c.dim, c.Sens.Sensitivity())
}

// releasePrimal runs the outbound pipeline over v and installs the result
// into m: a dense result goes out as the legacy Primal block, a compressed
// one as the PrimalP payload. v is adopted and may be transformed in place.
func (c *BaseClient) releasePrimal(v []float64, m *wire.LocalUpdate) error {
	u := pipeline.NewDense(v)
	if err := c.Pipe.Apply(u, c.Sens.Sensitivity()); err != nil {
		return fmt.Errorf("core: client %d release: %w", c.ID, err)
	}
	if u.Enc == wire.EncDense {
		m.Primal = u.Dense
	} else {
		m.PrimalP = u
	}
	m.Epsilon = c.Pipe.Epsilon()
	return nil
}

// gradAt computes the mean gradient of the loss at parameter vector z over
// batch b, post-processed by the pipeline's training-time stages (L2
// clipping, objective noise). The returned slice is reused across calls.
func (c *BaseClient) gradAt(z []float64, b dataset.Batch) []float64 {
	nn.SetParams(c.Model, z)
	nn.ZeroGrad(c.Model)
	logits := c.Model.Forward(b.X)
	_, d := nn.CrossEntropy(logits, b.Labels)
	c.Model.Backward(d)
	c.gradBuf = nn.FlattenGrads(c.Model, c.gradBuf)
	c.Pipe.GradHook(c.gradBuf)
	return c.gradBuf
}

// fullGrad computes the clipped full-dataset mean gradient at z by
// accumulating batch gradients weighted by batch size (ICEADMM evaluates
// gradients on all local data points, Section IV-B).
func (c *BaseClient) fullGrad(z []float64) []float64 {
	sum := make([]float64, c.dim)
	n := 0
	c.Loader.Reset()
	for {
		b, ok := c.Loader.Next()
		if !ok {
			break
		}
		bs := len(b.Labels)
		// Accumulate the unclipped batch mean scaled back to a sum.
		nn.SetParams(c.Model, z)
		nn.ZeroGrad(c.Model)
		logits := c.Model.Forward(b.X)
		_, d := nn.CrossEntropy(logits, b.Labels)
		c.Model.Backward(d)
		c.gradBuf = nn.FlattenGrads(c.Model, c.gradBuf)
		for i, g := range c.gradBuf {
			sum[i] += g * float64(bs)
		}
		n += bs
	}
	for i := range sum {
		sum[i] /= float64(n)
	}
	c.Pipe.GradHook(sum)
	return sum
}

// FedAvgClient runs L epochs of mini-batch SGD with momentum from the
// broadcast weights (the paper's FedAvg local solver, §IV-B) and uploads
// the resulting parameters through the update pipeline.
type FedAvgClient struct {
	BaseClient
	LR       float64
	Momentum float64
	L        int
	// Fraction and Seed drive deterministic partial participation: when a
	// round's draw excludes this client, it echoes the global model with
	// zero sample weight instead of training.
	Fraction float64
	Seed     uint64

	z     []float64
	veloc []float64
}

// NewFedAvgClient constructs the client over its update pipeline.
func NewFedAvgClient(id int, model nn.Module, ds dataset.Dataset, cfg Config, pipe *pipeline.Pipeline, r *rng.RNG) *FedAvgClient {
	sens := dp.FedAvgSensitivity{Clip: pipe.ClipBound(), LR: cfg.LR}
	bc := newBaseClient(id, model, ds, cfg.BatchSize, pipe, sens, r)
	return &FedAvgClient{
		BaseClient: bc,
		LR:         cfg.LR,
		Momentum:   cfg.Momentum,
		L:          cfg.LocalSteps,
		Fraction:   cfg.ClientFraction,
		Seed:       cfg.Seed,
	}
}

// LocalUpdate trains locally and releases the parameters through the
// pipeline.
func (c *FedAvgClient) LocalUpdate(round int, w []float64) (*wire.LocalUpdate, error) {
	if len(w) != c.dim {
		return nil, fmt.Errorf("core: client %d got %d weights, model is %d", c.ID, len(w), c.dim)
	}
	if !Participates(c.Seed, round, c.ID, c.Fraction) {
		return &wire.LocalUpdate{
			ClientID:   uint32(c.ID),
			Round:      uint32(round),
			NumSamples: 0, // zero weight: excluded from the average
			Primal:     append([]float64(nil), w...),
			Epsilon:    c.Pipe.Epsilon(),
			InCohort:   false, // attributable as an out-of-cohort echo
		}, nil
	}
	start := time.Now()
	c.beginRound()
	if cap(c.z) < c.dim {
		c.z = make([]float64, c.dim)
		c.veloc = make([]float64, c.dim)
	}
	copy(c.z, w)
	for i := range c.veloc {
		c.veloc[i] = 0 // fresh optimizer per round, as APPFL instantiates one
	}
	for l := 0; l < c.L; l++ {
		c.Loader.Reset()
		for {
			b, ok := c.Loader.Next()
			if !ok {
				break
			}
			g := c.gradAt(c.z, b)
			for i := range c.z {
				c.veloc[i] = c.Momentum*c.veloc[i] + g[i]
				c.z[i] -= c.LR * c.veloc[i]
			}
		}
	}
	m := &wire.LocalUpdate{
		ClientID:   uint32(c.ID),
		Round:      uint32(round),
		NumSamples: uint64(c.Data.Len()),
		InCohort:   true,
	}
	if err := c.releasePrimal(append([]float64(nil), c.z...), m); err != nil {
		return nil, err
	}
	m.ComputeSec = time.Since(start).Seconds()
	return m, nil
}

// ICEADMMClient implements the baseline of Zhou & Li (2021): L joint
// primal+dual local iterations using full-batch gradients, uploading both
// z_p and λ_p every round. Its persistent primal does not reset to w.
type ICEADMMClient struct {
	BaseClient
	Rho, Zeta  float64
	L          int
	FreezeDual bool

	z      []float64
	lambda []float64
}

// NewICEADMMClient constructs the client; z starts from w0 and λ from
// zero, the shared initialization.
func NewICEADMMClient(id int, model nn.Module, ds dataset.Dataset, cfg Config, w0 []float64, pipe *pipeline.Pipeline, r *rng.RNG) *ICEADMMClient {
	sens := dp.IADMMSensitivity{Clip: pipe.ClipBound(), Rho: cfg.Rho, Zeta: cfg.Zeta}
	bc := newBaseClient(id, model, ds, cfg.BatchSize, pipe, sens, r)
	c := &ICEADMMClient{
		BaseClient: bc,
		Rho:        cfg.Rho,
		Zeta:       cfg.Zeta,
		L:          cfg.LocalSteps,
		FreezeDual: cfg.FreezeDual,
	}
	c.z = append([]float64(nil), w0...)
	c.lambda = make([]float64, len(w0))
	return c
}

// SetRho installs a server-broadcast penalty (adaptive-ρ extension) and
// recomputes the DP sensitivity.
func (c *ICEADMMClient) SetRho(rho float64) {
	c.Rho = rho
	c.Sens = dp.IADMMSensitivity{Clip: c.Pipe.ClipBound(), Rho: rho, Zeta: c.Zeta}
}

// LocalUpdate runs the joint primal/dual loop (Eq. 4 then Eq. 3c, L times)
// and uploads both vectors, releasing the primal through the pipeline.
func (c *ICEADMMClient) LocalUpdate(round int, w []float64) (*wire.LocalUpdate, error) {
	if len(w) != c.dim {
		return nil, fmt.Errorf("core: client %d got %d weights, model is %d", c.ID, len(w), c.dim)
	}
	start := time.Now()
	c.beginRound()
	step := 1.0 / (c.Rho + c.Zeta)
	for l := 0; l < c.L; l++ {
		g := c.fullGrad(c.z)
		for i := range c.z {
			c.z[i] -= step * (g[i] - c.lambda[i] - c.Rho*(w[i]-c.z[i]))
		}
		if !c.FreezeDual {
			for i := range c.lambda {
				c.lambda[i] += c.Rho * (w[i] - c.z[i])
			}
		}
	}
	m := &wire.LocalUpdate{
		ClientID:   uint32(c.ID),
		Round:      uint32(round),
		NumSamples: uint64(c.Data.Len()),
		Dual:       append([]float64(nil), c.lambda...),
		InCohort:   true,
	}
	if err := c.releasePrimal(append([]float64(nil), c.z...), m); err != nil {
		return nil, err
	}
	m.ComputeSec = time.Since(start).Seconds()
	return m, nil
}

// IIADMMClient implements ClientUpdate of the paper's Algorithm 1:
// initialize z ← w (line 11), run L epochs of mini-batch proximal steps
// (line 16), perform one dual update (line 21), and upload only the primal.
//
// Under differential privacy the dual update uses the *released* (noised)
// primal, so the server's mirror dual (line 6) remains bit-identical to the
// client's — the invariant that lets IIADMM skip dual communication.
type IIADMMClient struct {
	BaseClient
	Rho, Zeta  float64
	L          int
	FreezeDual bool

	z      []float64
	lambda []float64
}

// NewIIADMMClient constructs the client with λ initialized to zero.
func NewIIADMMClient(id int, model nn.Module, ds dataset.Dataset, cfg Config, pipe *pipeline.Pipeline, r *rng.RNG) *IIADMMClient {
	sens := dp.IADMMSensitivity{Clip: pipe.ClipBound(), Rho: cfg.Rho, Zeta: cfg.Zeta}
	bc := newBaseClient(id, model, ds, cfg.BatchSize, pipe, sens, r)
	c := &IIADMMClient{
		BaseClient: bc,
		Rho:        cfg.Rho,
		Zeta:       cfg.Zeta,
		L:          cfg.LocalSteps,
		FreezeDual: cfg.FreezeDual,
	}
	c.lambda = make([]float64, nn.NumParams(model))
	return c
}

// Lambda exposes the client dual for mirror-consistency testing.
func (c *IIADMMClient) Lambda() []float64 { return c.lambda }

// SetRho installs a server-broadcast penalty (adaptive-ρ extension). The
// DP sensitivity Δ̄ = 2C/(ρ+ζ) is recomputed so the noise scale tracks the
// new penalty automatically.
func (c *IIADMMClient) SetRho(rho float64) {
	c.Rho = rho
	c.Sens = dp.IADMMSensitivity{Clip: c.Pipe.ClipBound(), Rho: rho, Zeta: c.Zeta}
}

// LocalUpdate implements lines 10–22 of Algorithm 1.
func (c *IIADMMClient) LocalUpdate(round int, w []float64) (*wire.LocalUpdate, error) {
	if len(w) != c.dim {
		return nil, fmt.Errorf("core: client %d got %d weights, model is %d", c.ID, len(w), c.dim)
	}
	start := time.Now()
	c.beginRound()
	if cap(c.z) < c.dim {
		c.z = make([]float64, c.dim)
	}
	copy(c.z, w) // line 11: z^{1,1} ← w^{t+1}
	step := 1.0 / (c.Rho + c.Zeta)
	for l := 0; l < c.L; l++ { // lines 13–19
		c.Loader.Reset() // line 12: split I_p into batches (reshuffled)
		for {
			b, ok := c.Loader.Next()
			if !ok {
				break
			}
			g := c.gradAt(c.z, b) // line 15
			for i := range c.z {  // line 16
				c.z[i] -= step * (g[i] - c.lambda[i] - c.Rho*(w[i]-c.z[i]))
			}
		}
	}
	zOut := append([]float64(nil), c.z...) // line 20
	m := &wire.LocalUpdate{                // line 22: primal only
		ClientID:   uint32(c.ID),
		Round:      uint32(round),
		NumSamples: uint64(c.Data.Len()),
		InCohort:   true,
	}
	if err := c.releasePrimal(zOut, m); err != nil {
		return nil, err
	}
	if !c.FreezeDual {
		// Line 21 uses the *released* primal so the server mirror stays
		// bit-identical. With a compression stage the release is the
		// server-side reconstruction of the payload.
		rel := m.Primal
		if m.PrimalP != nil {
			var err error
			rel, err = m.PrimalP.Densify(nil)
			if err != nil {
				return nil, fmt.Errorf("core: client %d released payload: %w", c.ID, err)
			}
		}
		for i := range c.lambda { // line 21, with the released primal
			c.lambda[i] += c.Rho * (w[i] - rel[i])
		}
	}
	m.ComputeSec = time.Since(start).Seconds()
	return m, nil
}

// NewClient constructs the client algorithm for cfg over its pipeline.
func NewClient(cfg Config, id int, model nn.Module, ds dataset.Dataset, w0 []float64, pipe *pipeline.Pipeline, r *rng.RNG) (ClientAlgorithm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Algorithm {
	case AlgoFedAvg:
		return NewFedAvgClient(id, model, ds, cfg, pipe, r), nil
	case AlgoICEADMM:
		return NewICEADMMClient(id, model, ds, cfg, w0, pipe, r), nil
	case AlgoIIADMM:
		return NewIIADMMClient(id, model, ds, cfg, pipe, r), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
}
