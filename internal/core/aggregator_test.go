package core

import (
	"math"
	"testing"

	"repro/internal/wire"
)

// TestWeightsAccessorsAreDefensiveCopies is the regression test for the
// documented mutation hazard: GlobalWeights() hands out the live slice,
// but the Aggregator accessors must not — a caller scribbling over the
// returned vector cannot corrupt server state.
func TestWeightsAccessorsAreDefensiveCopies(t *testing.T) {
	w0 := []float64{1, 2, 3}
	aggs := map[string]Aggregator{
		"fedavg":  NewFedAvgServer(w0, 2),
		"iceadmm": NewICEADMMServer(w0, 2, 2),
		"iiadmm":  NewIIADMMServer(w0, 2, 2),
	}
	buf, err := NewBufferedAggregator(w0, 0.5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	aggs["buffered"] = buf
	for name, a := range aggs {
		w := a.Weights()
		for i := range w {
			w[i] = -999
		}
		if got := a.Weights(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("%s: mutating Weights() corrupted server state: %v", name, got)
		}
		dst := make([]float64, 0, 3)
		dst = a.WeightsInto(dst)
		dst[0] = -777
		if got := a.Weights(); got[0] != 1 {
			t.Fatalf("%s: mutating WeightsInto result corrupted server state: %v", name, got)
		}
	}
	// AsyncServer.Weights was already a copy; keep it honest too.
	as, err := NewAsyncServer(w0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := as.Weights()
	w[0] = -1
	if as.Weights()[0] != 1 {
		t.Fatal("AsyncServer.Weights no longer copies")
	}
}

func TestAggregatorVersionAdvancesPerAggregation(t *testing.T) {
	s := NewFedAvgServer([]float64{0}, 2)
	if s.Version() != 0 {
		t.Fatalf("fresh server version %d", s.Version())
	}
	for i := 1; i <= 3; i++ {
		err := s.Aggregate([]*wire.LocalUpdate{
			upd(0, 10, []float64{1}, nil),
			upd(1, 10, []float64{2}, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != i {
			t.Fatalf("after %d aggregations version %d", i, s.Version())
		}
	}
}

// TestFedAvgAggregatePartialCohort: the cohort form accepts fewer updates
// than clients and weights only the received batch — the semantics Update
// still rejects.
func TestFedAvgAggregatePartialCohort(t *testing.T) {
	s := NewFedAvgServer([]float64{0, 0}, 4)
	batch := []*wire.LocalUpdate{
		upd(1, 300, []float64{1, 2}, nil),
		upd(3, 100, []float64{5, 6}, nil),
	}
	if err := s.Update(batch); err == nil {
		t.Fatal("Update accepted a partial batch; the strict path must still reject it")
	}
	if err := s.Aggregate(batch); err != nil {
		t.Fatal(err)
	}
	w := s.GlobalWeights()
	if math.Abs(w[0]-2) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Fatalf("partial-cohort average %v, want [2 3]", w)
	}
}

func TestFedAvgAggregateRejectsEmptyAndBadBatches(t *testing.T) {
	s := NewFedAvgServer([]float64{0}, 2)
	if err := s.Aggregate(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := s.Aggregate([]*wire.LocalUpdate{nil}); err == nil {
		t.Fatal("nil update accepted")
	}
	if err := s.Aggregate([]*wire.LocalUpdate{upd(0, 1, []float64{1, 2}, nil)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestStalenessWeightMatchesAsyncRule(t *testing.T) {
	// Fresh update: weight = alpha.
	if got := StalenessWeight(0.8, 1, 0); got != 0.8 {
		t.Fatalf("fresh weight %v, want alpha", got)
	}
	// Staleness 2 with gamma 1: alpha/3 — the rule TestAsyncStalenessDiscount pins.
	if got := StalenessWeight(0.8, 1, 2); math.Abs(got-0.8/3) > 1e-12 {
		t.Fatalf("stale weight %v, want %v", got, 0.8/3)
	}
	// gamma 0 disables the discount.
	if got := StalenessWeight(0.5, 0, 10); got != 0.5 {
		t.Fatalf("gamma=0 weight %v, want alpha", got)
	}
}

func TestBufferedAggregatorValidation(t *testing.T) {
	if _, err := NewBufferedAggregator([]float64{0}, 0, 1, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewBufferedAggregator([]float64{0}, 1.5, 1, 0); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := NewBufferedAggregator([]float64{0}, 0.5, -1, 0); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := NewBufferedAggregator([]float64{0}, 0.5, 1, -1); err == nil {
		t.Fatal("negative MaxStaleness accepted")
	}
}

func bupd(id int, baseVersion int, primal ...float64) *wire.LocalUpdate {
	return &wire.LocalUpdate{ClientID: uint32(id), NumSamples: 1, Primal: primal, BaseVersion: uint64(baseVersion)}
}

func TestBufferedAggregatorFoldsWithStalenessDiscount(t *testing.T) {
	b, err := NewBufferedAggregator([]float64{0}, 0.5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Release 1: one fresh update (staleness 0, weight 0.5).
	if err := b.Aggregate([]*wire.LocalUpdate{bupd(0, 0, 4)}); err != nil {
		t.Fatal(err)
	}
	if got := b.Weights()[0]; got != 2 {
		t.Fatalf("after fresh fold w=%v, want 2", got)
	}
	if b.Version() != 1 {
		t.Fatalf("version %d, want 1", b.Version())
	}
	// Release 2: an update still based on version 0 has staleness 1 →
	// weight 0.5/2 = 0.25: w = 0.75*2 + 0.25*6 = 3.
	if err := b.Aggregate([]*wire.LocalUpdate{bupd(1, 0, 6)}); err != nil {
		t.Fatal(err)
	}
	if got := b.Weights()[0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("after stale fold w=%v, want 3", got)
	}
	if b.Applied != 2 || b.Dropped != 0 {
		t.Fatalf("applied/dropped %d/%d", b.Applied, b.Dropped)
	}
}

func TestBufferedAggregatorDropsBeyondMaxStaleness(t *testing.T) {
	b, err := NewBufferedAggregator([]float64{1}, 0.5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Advance three versions.
	for i := 0; i < 3; i++ {
		if err := b.Aggregate([]*wire.LocalUpdate{bupd(0, i, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Staleness 3 > MaxStaleness 2: dropped, model untouched, version advances.
	before := b.Weights()[0]
	if err := b.Aggregate([]*wire.LocalUpdate{bupd(1, 0, -100)}); err != nil {
		t.Fatal(err)
	}
	if got := b.Weights()[0]; got != before {
		t.Fatalf("dropped update still moved the model: %v -> %v", before, got)
	}
	if b.Dropped != 1 {
		t.Fatalf("dropped count %d, want 1", b.Dropped)
	}
	if b.Version() != 4 {
		t.Fatalf("version %d, want 4", b.Version())
	}
}

func TestBufferedAggregatorRejectsFutureAndMismatched(t *testing.T) {
	b, err := NewBufferedAggregator([]float64{0, 0}, 0.5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Aggregate([]*wire.LocalUpdate{bupd(0, 5, 1, 2)}); err == nil {
		t.Fatal("future base version accepted")
	}
	if err := b.Aggregate([]*wire.LocalUpdate{bupd(0, 0, 1)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := b.Aggregate(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestNewAggregatorDispatch(t *testing.T) {
	w0 := []float64{0}
	cfg := Config{Algorithm: AlgoFedAvg}.WithDefaults()
	a, err := NewAggregator(cfg, w0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*FedAvgServer); !ok {
		t.Fatalf("fedavg aggregator is %T", a)
	}
	cfg = Config{Algorithm: AlgoFedAvg, Scheduler: SchedBuffered}.WithDefaults()
	a, err = NewAggregator(cfg, w0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*BufferedAggregator); !ok {
		t.Fatalf("buffered aggregator is %T", a)
	}
	cfg = Config{Algorithm: AlgoIIADMM}.WithDefaults()
	a, err = NewAggregator(cfg, w0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*IIADMMServer); !ok {
		t.Fatalf("iiadmm aggregator is %T", a)
	}
}
