package core

import (
	"fmt"

	"repro/internal/comm"
)

// ShardRouter is the admission/routing front of the hierarchical
// aggregation tier. At cross-device scale the scheduler's job shifts
// from enumerating a roster to gatekeeping a stream of arrivals: each
// admitted client is routed to its ingress shard by id hash
// (comm.ShardOf — stable and uniform), and a per-round admission cap
// bounds how many updates a round may accept, the back-pressure knob
// that keeps a million-client federation from overrunning the tier. The
// simnet load harness drives one of these per modelled round; a real
// front-end would hold one per federation.
type ShardRouter struct {
	// Shards is the tier width admitted clients are routed across.
	Shards int
	// PerRound caps admitted updates per round; 0 = unlimited.
	PerRound int

	round   int
	inRound int

	// Admitted and Rejected count routing decisions across all rounds;
	// Stale counts arrivals whose round predates the current admission
	// window (rejected without consuming the window's budget).
	Admitted, Rejected, Stale uint64
}

// NewShardRouter builds a router over `shards` ingress shards admitting
// at most perRound updates per round (0 = unlimited).
func NewShardRouter(shards, perRound int) (*ShardRouter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: router needs at least one shard, got %d", shards)
	}
	if perRound < 0 {
		return nil, fmt.Errorf("core: PerRound must be >= 0 (0 = unlimited), got %d", perRound)
	}
	return &ShardRouter{Shards: shards, PerRound: perRound}, nil
}

// Admit decides whether client may contribute to round and, if so, which
// ingress shard receives its update. A new round number resets the
// admission window (rounds are monotone). An arrival whose round
// predates the current window is a straggler from a round that already
// closed: it is rejected under the distinct Stale counter and consumes
// none of the current round's budget — previously it was treated as a
// current-round arrival and ate admission slots that belonged to round
// r's own clients. Rejected clients are counted — the caller decides
// whether they retry next round or drop.
func (r *ShardRouter) Admit(round int, client uint32) (shard int, ok bool) {
	if round > r.round {
		r.round, r.inRound = round, 0
	} else if round < r.round {
		r.Stale++
		return -1, false
	}
	if r.PerRound > 0 && r.inRound >= r.PerRound {
		r.Rejected++
		return -1, false
	}
	r.inRound++
	r.Admitted++
	return comm.ShardOf(client, r.Shards), true
}
