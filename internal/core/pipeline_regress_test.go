package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
)

// seedTrajectories pins the per-round (TestLoss, TestAcc) float64 bit
// patterns recorded from the pre-pipeline code (PR 1 tree) for four
// representative configs. Test loss/accuracy are computed from the full
// global weight vector every round, so bit equality here certifies the
// weight trajectory itself: the pipeline refactor — with an identity
// (legacy-synthesized) pipeline or the equivalent explicit spec — must
// reproduce the old client/server path exactly.
var seedTrajectories = map[string][][2]uint64{
	"fedavg-nonprivate":  {{0x4003f890aa6925ae, 0x3fb0000000000000}, {0x400314240d311e76, 0x3fc0000000000000}},
	"fedavg-laplace2":    {{0x4005ac35321eb0fb, 0x3fa0000000000000}, {0x400779226b2a3fa2, 0x3fa0000000000000}},
	"iiadmm-laplace3":    {{0x4006062ff7725c99, 0x3fa0000000000000}, {0x4009c550ae31075a, 0x3fb0000000000000}},
	"iceadmm-objective3": {{0x40031cc31f6c6f09, 0x3fb8000000000000}, {0x40022efe49e2539a, 0x3fc4000000000000}},
}

// regressFederation rebuilds the exact federation the fingerprints were
// recorded on.
func regressFederation() (*dataset.Federated, nn.Factory) {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 96, Test: 32, Seed: 5})
	fed := &dataset.Federated{
		Clients: dataset.PartitionIID(tr, 3, rng.New(5+1)),
		Test:    te,
	}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(5)) }
	return fed, factory
}

func checkTrajectory(t *testing.T, name string, cfg Config) {
	t.Helper()
	want, ok := seedTrajectories[name]
	if !ok {
		t.Fatalf("no recorded trajectory %q", name)
	}
	fed, factory := regressFederation()
	res, err := Run(cfg, fed, factory, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != len(want) {
		t.Fatalf("%s: got %d rounds, recorded %d", name, len(res.Rounds), len(want))
	}
	for i, r := range res.Rounds {
		gotLoss, gotAcc := math.Float64bits(r.TestLoss), math.Float64bits(r.TestAcc)
		if gotLoss != want[i][0] || gotAcc != want[i][1] {
			t.Fatalf("%s round %d: loss/acc bits %#x/%#x, recorded %#x/%#x — trajectory diverged from the pre-pipeline seed",
				name, i+1, gotLoss, gotAcc, want[i][0], want[i][1])
		}
	}
}

// TestIdentityPipelineMatchesSeedTrajectory: with no Pipeline spec the
// legacy-synthesized stack (clip only) must reproduce the pre-refactor
// non-private trajectory bit for bit.
func TestIdentityPipelineMatchesSeedTrajectory(t *testing.T) {
	checkTrajectory(t, "fedavg-nonprivate",
		Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5})
}

// TestExplicitClipPipelineMatchesSeedTrajectory: the explicit "clip:1"
// spec is the same stack as the legacy default and must match too.
func TestExplicitClipPipelineMatchesSeedTrajectory(t *testing.T) {
	checkTrajectory(t, "fedavg-nonprivate",
		Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Pipeline: "clip:1"})
}

// TestDPPipelineMatchesSeedTrajectory: clip+laplace stacks — legacy
// Epsilon form and explicit spec form — must reproduce the recorded DP
// trajectories exactly, including the noise stream.
func TestDPPipelineMatchesSeedTrajectory(t *testing.T) {
	legacy := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Epsilon: 2}
	checkTrajectory(t, "fedavg-laplace2", legacy)

	spec := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Pipeline: "clip:1,laplace:2"}
	checkTrajectory(t, "fedavg-laplace2", spec)

	checkTrajectory(t, "iiadmm-laplace3",
		Config{Algorithm: AlgoIIADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Epsilon: 3})
	checkTrajectory(t, "iiadmm-laplace3",
		Config{Algorithm: AlgoIIADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Pipeline: "clip:1,laplace:3"})
}

// TestObjectivePipelineMatchesSeedTrajectory: objective-perturbation mode
// routes the noise through the per-round gradient offset; it too must be
// bit-identical to the recorded seed.
func TestObjectivePipelineMatchesSeedTrajectory(t *testing.T) {
	checkTrajectory(t, "iceadmm-objective3",
		Config{Algorithm: AlgoICEADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Epsilon: 3, DPMode: DPModeObjective})
	checkTrajectory(t, "iceadmm-objective3",
		Config{Algorithm: AlgoICEADMM, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 5, Pipeline: "clip:1,laplace:3", DPMode: DPModeObjective})
}
