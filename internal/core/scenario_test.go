package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Scenario-matrix geometry: small enough that a full cross-product run is
// test-suite material, large enough that quorum rounds, benching, and
// rejoins all actually occur.
const (
	scenClients = 6
	scenRounds  = 4
	scenSeed    = 9
	// scenTimeout must dominate a client's local update time (milliseconds
	// here) by a wide margin, so that a deadline cut always means a
	// scripted fault and never a slow survivor — that margin is what makes
	// the faulted trajectories deterministic.
	scenTimeout = 800 * time.Millisecond
	// scenWatchdog is the no-deadlock invariant: every scenario must
	// finish well inside it even with its timeout rounds.
	scenWatchdog = 90 * time.Second
	// scenFaultSeed drives every injector, decoupled from the model seed.
	scenFaultSeed = 77
)

// Fault axis of the matrix. The drop plan also exercises server-side
// reorder so the arrival-order paths see permuted batches.
var scenPlans = map[string]string{
	"none":   "",
	"crash":  "crash:20%@2",
	"drop":   "drop:100%:0.3,reorder",
	"rejoin": "rejoin:1@2+2",
}

var scenSchedulers = []string{SchedSyncAll, SchedSampled, SchedBuffered}
var scenTransports = []Transport{TransportMPI, TransportRPC, TransportPubSub}
var scenPipelines = map[string]string{
	"identity":     "",
	"clip+laplace": "clip:1,laplace:5",
	"topk":         "topk:0.25",
}

func scenFed() *dataset.Federated {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 72, Test: 24, Seed: 5})
	return &dataset.Federated{Clients: dataset.PartitionIID(tr, scenClients, rng.New(6)), Test: te}
}

func scenFactory() nn.Module { return nn.NewMLP(28*28, []int{4}, 10, rng.New(scenSeed)) }

func scenConfig(sched, pipe string) Config {
	cfg := Config{
		Algorithm:  AlgoFedAvg,
		Rounds:     scenRounds,
		LocalSteps: 1,
		BatchSize:  16,
		Seed:       scenSeed,
		Pipeline:   pipe,
	}
	switch sched {
	case SchedSampled:
		cfg.Scheduler = SchedSampled
		cfg.CohortFraction = 0.7
		cfg.CohortMin = 2
	case SchedBuffered:
		cfg.Scheduler = SchedBuffered
		cfg.BufferK = 3
	}
	return cfg
}

// runScenario executes one cell of the matrix under a deadlock watchdog.
func runScenario(t *testing.T, cfg Config, tr Transport, plan string) (*Result, error) {
	t.Helper()
	var inj *faults.Injector
	if plan != "" {
		p, err := faults.Parse(plan)
		if err != nil {
			t.Fatalf("plan %q: %v", plan, err)
		}
		inj, err = faults.NewInjector(p, scenClients, scenFaultSeed)
		if err != nil {
			t.Fatalf("injector for %q: %v", plan, err)
		}
		if cfg.RoundTimeout == 0 {
			cfg.RoundTimeout = scenTimeout
		}
	}
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := Run(cfg, scenFed(), scenFactory, RunOptions{Transport: tr, Faults: inj})
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(scenWatchdog):
		t.Fatalf("deadlock: scenario %s/%s plan=%q did not finish within %v", cfg.Scheduler, tr, plan, scenWatchdog)
		return nil, nil
	}
}

// baselineLoss caches the fault-free MPI trajectory endpoint per
// (scheduler, pipeline) for the convergence-tolerance invariant.
var (
	baselineMu sync.Mutex
	baselines  = map[string]float64{}
)

func baselineLoss(t *testing.T, sched, pipeName, pipe string) float64 {
	t.Helper()
	key := sched + "/" + pipeName
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if v, ok := baselines[key]; ok {
		return v
	}
	res, err := runScenario(t, scenConfig(sched, pipe), TransportMPI, "")
	if err != nil {
		t.Fatalf("baseline %s: %v", key, err)
	}
	baselines[key] = res.FinalLoss
	return res.FinalLoss
}

// TestScenarioMatrix runs the cross-product {SyncAll, SampledCohort,
// Buffered} × {mpi, rpc, pubsub} × {identity, clip+laplace, topk} ×
// {no faults, 20% crash, 30% drop, rejoin} and asserts the invariants of
// a fault-tolerant run: no deadlock (watchdog), monotone round
// progression, finite losses, fault accounting consistent with the plan,
// and convergence within a tolerance of the fault-free trajectory.
// -short keeps a reduced grid (mpi × identity, all schedulers × plans)
// for smoke jobs.
func TestScenarioMatrix(t *testing.T) {
	for _, sched := range scenSchedulers {
		for _, tr := range scenTransports {
			if testing.Short() && tr != TransportMPI {
				continue
			}
			for pipeName, pipe := range scenPipelines {
				if testing.Short() && pipeName != "identity" {
					continue
				}
				for planName, plan := range scenPlans {
					sched, tr, pipeName, pipe, planName, plan := sched, tr, pipeName, pipe, planName, plan
					t.Run(sched+"/"+string(tr)+"/"+pipeName+"/"+planName, func(t *testing.T) {
						t.Parallel()
						res, err := runScenario(t, scenConfig(sched, pipe), tr, plan)
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						// Monotone round progression, finite losses.
						if len(res.Rounds) != scenRounds {
							t.Fatalf("recorded %d rounds, want %d", len(res.Rounds), scenRounds)
						}
						for i, rs := range res.Rounds {
							if rs.Round != i+1 {
								t.Fatalf("round %d recorded as %d: progression not monotone", i+1, rs.Round)
							}
							if math.IsNaN(rs.TestLoss) || math.IsInf(rs.TestLoss, 0) {
								t.Fatalf("round %d loss %v", rs.Round, rs.TestLoss)
							}
						}
						barrier := sched != SchedBuffered
						switch planName {
						case "none":
							if res.TimedOut != 0 || res.Crashed != 0 || res.Rejoined != 0 {
								t.Fatalf("fault-free run reported faults: %+v", res)
							}
						case "crash":
							if barrier {
								if res.TimedOut == 0 {
									t.Fatal("crashed clients never timed a round out")
								}
								if res.Crashed == 0 {
									t.Fatal("crashed clients not presumed dead")
								}
							}
						case "rejoin":
							if barrier {
								if res.Rejoined != 1 {
									t.Fatalf("rejoined %d, want 1", res.Rejoined)
								}
								if res.Crashed != 0 {
									t.Fatalf("a rejoined client is not crashed: %+v", res)
								}
							} else if res.Rejoined > 1 {
								t.Fatalf("rejoined %d, want at most 1", res.Rejoined)
							}
						}
						// Convergence within a tolerance of the fault-free
						// trajectory: losing a slice of the federation (or
						// some of its uploads) must degrade, not destroy,
						// the run.
						base := baselineLoss(t, sched, pipeName, pipe)
						tol := 1.5
						if sched == SchedBuffered {
							tol = 2.5 // arrival order adds run-to-run variance
						}
						if res.FinalLoss > base+tol {
							t.Fatalf("final loss %.4f vs fault-free %.4f exceeds tolerance %.1f", res.FinalLoss, base, tol)
						}
					})
				}
			}
		}
	}
}

// TestScenarioDeterminism pins the acceptance criterion: same seed + same
// fault plan ⇒ identical Result trajectories across two runs, for the
// barrier schedulers on all three transports and every fault flavor.
// (Buffered releases are arrival-ordered and so timing-dependent even
// without faults; determinism there is not claimed.)
func TestScenarioDeterminism(t *testing.T) {
	plans := []string{"crash", "rejoin", "drop"}
	for _, sched := range []string{SchedSyncAll, SchedSampled} {
		for _, tr := range scenTransports {
			if testing.Short() && tr != TransportMPI {
				continue
			}
			for _, planName := range plans {
				if planName == "drop" && tr != TransportMPI {
					continue // drop rounds wait out full timeouts; one transport suffices
				}
				sched, tr, plan := sched, tr, scenPlans[planName]
				t.Run(sched+"/"+string(tr)+"/"+planName, func(t *testing.T) {
					t.Parallel()
					a, err := runScenario(t, scenConfig(sched, ""), tr, plan)
					if err != nil {
						t.Fatalf("first run: %v", err)
					}
					b, err := runScenario(t, scenConfig(sched, ""), tr, plan)
					if err != nil {
						t.Fatalf("second run: %v", err)
					}
					if len(a.Rounds) != len(b.Rounds) {
						t.Fatalf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
					}
					for i := range a.Rounds {
						if a.Rounds[i].TestLoss != b.Rounds[i].TestLoss ||
							a.Rounds[i].CohortSize != b.Rounds[i].CohortSize {
							t.Fatalf("round %d differs: loss %v/%v cohort %d/%d",
								i+1, a.Rounds[i].TestLoss, b.Rounds[i].TestLoss,
								a.Rounds[i].CohortSize, b.Rounds[i].CohortSize)
						}
					}
					if a.Crashed != b.Crashed || a.Rejoined != b.Rejoined || a.TimedOut != b.TimedOut {
						t.Fatalf("fault counters differ: %d/%d/%d vs %d/%d/%d",
							a.Crashed, a.Rejoined, a.TimedOut, b.Crashed, b.Rejoined, b.TimedOut)
					}
				})
			}
		}
	}
}

// TestCrashedBarrierCompletesViaQuorum pins the headline fix on every
// transport: a barrier round whose client crashed completes with the
// survivors within the round timeout instead of hanging forever.
func TestCrashedBarrierCompletesViaQuorum(t *testing.T) {
	for _, tr := range scenTransports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			cfg := scenConfig(SchedSyncAll, "")
			cfg.MinCohort = 2
			start := time.Now()
			res, err := runScenario(t, cfg, tr, "crash:0@2")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.TimedOut == 0 || res.Crashed != 1 {
				t.Fatalf("crash not detected: timedOut=%d crashed=%d", res.TimedOut, res.Crashed)
			}
			// Round 2 lost client 0; the quorum carried it with 5 of 6.
			if res.Rounds[1].CohortSize != scenClients-1 {
				t.Fatalf("crash round aggregated %d clients, want %d", res.Rounds[1].CohortSize, scenClients-1)
			}
			// The whole run must cost at most a few timeouts, not hang.
			if elapsed := time.Since(start); elapsed > 6*scenTimeout+30*time.Second {
				t.Fatalf("run took %v — quorum did not bound the crash rounds", elapsed)
			}
		})
	}
}

// TestQuorumAbortsBelowMinCohort: fewer survivors than MinCohort is a
// typed error, not a silent tiny aggregation.
func TestQuorumAbortsBelowMinCohort(t *testing.T) {
	cfg := scenConfig(SchedSyncAll, "")
	cfg.MinCohort = scenClients // unanimity required
	_, err := runScenario(t, cfg, TransportMPI, "crash:0@2")
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("want ErrQuorum, got %v", err)
	}
}

// TestBufferedSurvivesAllSilentWindow pins the buffered loop's
// fast-forward: when every upload in a window is lost, the release times
// out empty, everyone is benched, and the next release re-dispatches at
// the earliest bench expiry instead of aborting — a lost upload costs a
// timeout, never the client's membership, even when all are lost at once.
func TestBufferedSurvivesAllSilentWindow(t *testing.T) {
	cfg := scenConfig(SchedBuffered, "")
	cfg.Rounds = 3
	cfg.RoundTimeout = 150 * time.Millisecond
	res, err := runScenario(t, cfg, TransportMPI, "drop:100%:1")
	if err != nil {
		t.Fatalf("all-drop run aborted: %v", err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3", len(res.Rounds))
	}
	for i, rs := range res.Rounds {
		if rs.CohortSize != 0 {
			t.Fatalf("release %d aggregated %d updates with every upload dropped", i+1, rs.CohortSize)
		}
	}
	if res.TimedOut == 0 {
		t.Fatal("no timed-out obligations recorded under total upload loss")
	}
}

// TestQuorumAggregationConservesWeight pins the renormalization invariant
// behind quorum rounds: FedAvg over any surviving sub-cohort is a convex
// combination — the survivors' weights are renormalized to sum to one, so
// losing clients never inflates or deflates the model.
func TestQuorumAggregationConservesWeight(t *testing.T) {
	s := NewFedAvgServer([]float64{0, 0}, 6)
	// A partial batch (3 of 6 clients) of constant vectors.
	partial := []*wire.LocalUpdate{
		upd(0, 100, []float64{1, 10}, nil),
		upd(2, 300, []float64{2, 20}, nil),
		upd(5, 100, []float64{3, 30}, nil),
	}
	if err := s.Aggregate(partial); err != nil {
		t.Fatal(err)
	}
	w := s.GlobalWeights()
	// Weighted mean: (1*100 + 2*300 + 3*100) / 500 = 2.0 exactly.
	if math.Abs(w[0]-2.0) > 1e-12 || math.Abs(w[1]-20.0) > 1e-12 {
		t.Fatalf("quorum aggregate %v, want the survivors' weighted mean [2 20]", w)
	}
	lo, hi := 1.0, 3.0
	if w[0] < lo || w[0] > hi {
		t.Fatalf("aggregate %v escaped the convex hull [%v,%v]", w[0], lo, hi)
	}
}
