package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// Soak harness: journaled runs with scripted in-process kill -9s. The
// server "brain" (scheduler/aggregator/membership) is destroyed mid-round
// with no cleanup and rebuilt from the journal; the transports survive,
// standing in for the listening socket plus session resumption. The
// acceptance invariants: monotone round progression, no double-counted
// update (the barrier trajectories are bit-identical to the kill-free
// run, which a duplicate fold would break), and convergence.

// soakJournal opens a NoSync journal in a fresh temp dir: the soak
// simulates process death, not power loss, so the page cache survives.
func soakJournal(t *testing.T) *journal.Journal {
	t.Helper()
	j, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	j.NoSync = true
	t.Cleanup(func() { j.Close() })
	return j
}

// runSoakScenario executes one journaled run under the deadlock watchdog.
func runSoakScenario(t *testing.T, cfg Config, opts RunOptions) *Result {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := Run(cfg, scenFed(), scenFactory, opts)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("soak run: %v", o.err)
		}
		return o.res
	case <-time.After(scenWatchdog):
		t.Fatalf("deadlock: soak %s/%s with %d kills did not finish within %v",
			cfg.Scheduler, opts.Transport, len(opts.Kills), scenWatchdog)
		return nil
	}
}

// cyclingKills schedules one kill every `every` rounds, cycling through
// the three kill windows so a soak exercises every recovery path.
func cyclingKills(rounds, every int) []ServerKill {
	var kills []ServerKill
	i := 0
	for r := every; r < rounds; r += every {
		kills = append(kills, ServerKill{Round: r, Window: KillWindow(i % int(numKillWindows))})
		i++
	}
	return kills
}

// assertMonotoneRounds pins the no-double-count shape: rounds 1..n each
// recorded exactly once, in order, with finite losses.
func assertMonotoneRounds(t *testing.T, res *Result, rounds int) {
	t.Helper()
	if len(res.Rounds) != rounds {
		t.Fatalf("recorded %d rounds, want %d", len(res.Rounds), rounds)
	}
	for i, rs := range res.Rounds {
		if rs.Round != i+1 {
			t.Fatalf("round %d recorded as %d: progression not monotone", i+1, rs.Round)
		}
		if math.IsNaN(rs.TestLoss) || math.IsInf(rs.TestLoss, 0) {
			t.Fatalf("round %d loss %v", rs.Round, rs.TestLoss)
		}
	}
}

func assertSoakStats(t *testing.T, res *Result, wantKills int) {
	t.Helper()
	s := res.Soak
	if s == nil {
		t.Fatal("journaled run reported no SoakStats")
	}
	if s.Kills != wantKills {
		t.Fatalf("kills %d, want %d", s.Kills, wantKills)
	}
	if s.Recoveries != wantKills {
		t.Fatalf("recoveries %d, want %d", s.Recoveries, wantKills)
	}
	if len(s.RecoverySec) != wantKills {
		t.Fatalf("recovery timings %d, want %d", len(s.RecoverySec), wantKills)
	}
	logSoakStats(t, s)
}

// logSoakStats emits the recovery figures in a grep-stable form — the CI
// soak-smoke job tees "soak-stats:" lines into its step summary.
func logSoakStats(t *testing.T, s *SoakStats) {
	t.Helper()
	h, err := metrics.NewHistogram(1e-6, 60, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range s.RecoverySec {
		h.Add(sec)
	}
	t.Logf("soak-stats: kills=%d recoveries=%d replayed_records=%d recovery_p95_ms=%.2f",
		s.Kills, s.Recoveries, s.ReplayedRecords, h.Quantile(0.95)*1e3)
}

// TestSoakBarrierKillsBitIdentical kills the server in every window across
// a barrier run and asserts the per-round loss trajectory is bit-identical
// to the kill-free run: recovery neither loses nor double-counts a single
// client update, in any crash window, on either scheduler or transport.
func TestSoakBarrierKillsBitIdentical(t *testing.T) {
	const rounds = 8
	for _, sched := range []string{SchedSyncAll, SchedSampled} {
		for _, tr := range []Transport{TransportMPI, TransportRPC} {
			if testing.Short() && (tr != TransportMPI || sched != SchedSyncAll) {
				continue
			}
			sched, tr := sched, tr
			t.Run(sched+"/"+string(tr), func(t *testing.T) {
				t.Parallel()
				cfg := scenConfig(sched, "")
				cfg.Rounds = rounds
				base := runSoakScenario(t, cfg, RunOptions{Transport: tr})
				kills := cyclingKills(rounds, 2)
				res := runSoakScenario(t, cfg, RunOptions{
					Transport:       tr,
					Journal:         soakJournal(t),
					CheckpointEvery: 3,
					Kills:           kills,
				})
				assertMonotoneRounds(t, res, rounds)
				assertSoakStats(t, res, len(kills))
				if res.Soak.ReplayedRecords == 0 {
					t.Fatal("recoveries replayed no journal records")
				}
				for i := range base.Rounds {
					if res.Rounds[i].TestLoss != base.Rounds[i].TestLoss {
						t.Fatalf("round %d loss %v differs from kill-free %v",
							i+1, res.Rounds[i].TestLoss, base.Rounds[i].TestLoss)
					}
					if res.Rounds[i].CohortSize != base.Rounds[i].CohortSize {
						t.Fatalf("round %d cohort %d differs from kill-free %d",
							i+1, res.Rounds[i].CohortSize, base.Rounds[i].CohortSize)
					}
				}
			})
		}
	}
}

// TestSoakBufferedKillRecovers kills the buffered server in every window.
// Buffered releases are arrival-ordered (timing-dependent even without
// kills), so the invariants are structural: monotone releases, all kills
// recovered, and convergence within the buffered tolerance.
func TestSoakBufferedKillRecovers(t *testing.T) {
	for _, tr := range []Transport{TransportMPI, TransportRPC} {
		if testing.Short() && tr != TransportMPI {
			continue
		}
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			cfg := scenConfig(SchedBuffered, "")
			cfg.Rounds = 6
			kills := []ServerKill{
				{Round: 2, Window: KillBetweenRounds},
				{Round: 3, Window: KillAfterDispatch},
				{Round: 4, Window: KillBeforeCommit},
			}
			res := runSoakScenario(t, cfg, RunOptions{
				Transport:       tr,
				Journal:         soakJournal(t),
				CheckpointEvery: 2,
				Kills:           kills,
			})
			assertMonotoneRounds(t, res, cfg.Rounds)
			assertSoakStats(t, res, len(kills))
			base := baselineLoss(t, SchedBuffered, "identity", "")
			if res.FinalLoss > base+2.5 {
				t.Fatalf("final loss %.4f vs kill-free %.4f exceeds tolerance", res.FinalLoss, base)
			}
		})
	}
}

// TestSoakCascadingKills kills the recovery itself: an after-dispatch kill
// at round 2, a before-commit kill during the resumed completion of round
// 2, and a between-rounds kill at round 3 — three recoveries back to
// back, still bit-identical.
func TestSoakCascadingKills(t *testing.T) {
	cfg := scenConfig(SchedSyncAll, "")
	cfg.Rounds = 4
	base := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI})
	kills := []ServerKill{
		{Round: 2, Window: KillAfterDispatch},
		{Round: 2, Window: KillBeforeCommit},
		{Round: 3, Window: KillBetweenRounds, Gap: 1},
	}
	res := runSoakScenario(t, cfg, RunOptions{
		Transport: TransportMPI,
		Journal:   soakJournal(t),
		Kills:     kills,
	})
	assertMonotoneRounds(t, res, cfg.Rounds)
	assertSoakStats(t, res, len(kills))
	for i := range base.Rounds {
		if res.Rounds[i].TestLoss != base.Rounds[i].TestLoss {
			t.Fatalf("round %d loss %v differs from kill-free %v",
				i+1, res.Rounds[i].TestLoss, base.Rounds[i].TestLoss)
		}
	}
}

// TestSoakFaultPlanKillServer drives the kills through the fault-plan
// grammar (killserver:@R[+K]) instead of explicit RunOptions.Kills,
// exercising the injector wiring and the downtime gap.
func TestSoakFaultPlanKillServer(t *testing.T) {
	plan, err := faults.Parse("killserver:@2+1,killserver:@4")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(plan, scenClients, scenFaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenConfig(SchedSyncAll, "")
	cfg.Rounds = 5
	base := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI})
	res := runSoakScenario(t, cfg, RunOptions{
		Transport: TransportMPI,
		Journal:   soakJournal(t),
		Faults:    inj,
	})
	assertMonotoneRounds(t, res, cfg.Rounds)
	assertSoakStats(t, res, 2)
	if res.FinalLoss != base.FinalLoss {
		t.Fatalf("final loss %v differs from kill-free %v", res.FinalLoss, base.FinalLoss)
	}
}

// TestSoakColdStartResume completes a short journaled run, then opens the
// same journal with a higher round budget: the second Run must resume at
// the next uncommitted round rather than restart from round 1.
func TestSoakColdStartResume(t *testing.T) {
	dir := t.TempDir()
	cfg := scenConfig(SchedSyncAll, "")
	cfg.Rounds = 2
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.NoSync = true
	first := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI, Journal: j})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2.NoSync = true
	defer j2.Close()
	cfg.Rounds = 4
	second := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI, Journal: j2})
	if len(second.Rounds) != 2 || second.Rounds[0].Round != 3 || second.Rounds[1].Round != 4 {
		t.Fatalf("cold restart replayed rounds %+v, want rounds 3 and 4", second.Rounds)
	}
	if second.Soak.Recoveries != 1 || second.Soak.ReplayedRecords == 0 {
		t.Fatalf("cold restart soak stats %+v", second.Soak)
	}
	if math.IsNaN(second.FinalLoss) || math.IsInf(second.FinalLoss, 0) {
		t.Fatalf("resumed final loss %v", second.FinalLoss)
	}
	_ = first
}

// TestSoakKillsRequireJournal pins the guard: scripted kills without a
// journal are rejected up front, not discovered as a lost run.
func TestSoakKillsRequireJournal(t *testing.T) {
	cfg := scenConfig(SchedSyncAll, "")
	_, err := Run(cfg, scenFed(), scenFactory, RunOptions{
		Transport: TransportMPI,
		Kills:     []ServerKill{{Round: 1}},
	})
	if err == nil {
		t.Fatal("kills without a journal accepted")
	}
}

// TestSoakRejectsUnjournalableConfigs pins validateJournalConfig at the
// Run boundary for each excluded feature.
func TestSoakRejectsUnjournalableConfigs(t *testing.T) {
	mutate := map[string]func(*Config){
		"admm":       func(c *Config) { c.Algorithm = AlgoIIADMM },
		"stream":     func(c *Config) { c.StreamChunk = 512 },
		"subset":     func(c *Config) { c.SubsetFrac = 0.5 },
		"shards":     func(c *Config) { c.AggShards = 2 },
		"clientfrac": func(c *Config) { c.ClientFraction = 0.5 },
	}
	for name, mut := range mutate {
		cfg := scenConfig(SchedSyncAll, "")
		mut(&cfg)
		_, err := Run(cfg, scenFed(), scenFactory, RunOptions{Transport: TransportMPI, Journal: soakJournal(t)})
		if err == nil {
			t.Errorf("%s: unjournalable config accepted", name)
		}
	}
}

// TestSoakLongHaul is the 50-round acceptance soak: a kill every other
// round (24 kills, every window eight times) across the full run, barrier
// bit-identity and buffered convergence both holding at the end. Skipped
// in -short; the smoke grid above covers the same paths.
func TestSoakLongHaul(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak: run without -short")
	}
	const rounds = 50
	kills := cyclingKills(rounds, 2)
	t.Run("syncall", func(t *testing.T) {
		t.Parallel()
		cfg := scenConfig(SchedSyncAll, "")
		cfg.Rounds = rounds
		base := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI, ValidateEvery: 5})
		res := runSoakScenario(t, cfg, RunOptions{
			Transport:       TransportMPI,
			ValidateEvery:   5,
			Journal:         soakJournal(t),
			CheckpointEvery: 5,
			Kills:           kills,
		})
		assertMonotoneRounds(t, res, rounds)
		assertSoakStats(t, res, len(kills))
		for i := range base.Rounds {
			if res.Rounds[i].TestLoss != base.Rounds[i].TestLoss {
				t.Fatalf("round %d loss %v differs from kill-free %v",
					i+1, res.Rounds[i].TestLoss, base.Rounds[i].TestLoss)
			}
		}
	})
	t.Run("buffered", func(t *testing.T) {
		t.Parallel()
		cfg := scenConfig(SchedBuffered, "")
		cfg.Rounds = rounds
		base := runSoakScenario(t, cfg, RunOptions{Transport: TransportMPI, ValidateEvery: 5})
		res := runSoakScenario(t, cfg, RunOptions{
			Transport:       TransportMPI,
			ValidateEvery:   5,
			Journal:         soakJournal(t),
			CheckpointEvery: 5,
			Kills:           kills,
		})
		assertMonotoneRounds(t, res, rounds)
		assertSoakStats(t, res, len(kills))
		if res.FinalLoss > base.FinalLoss+2.5 {
			t.Fatalf("final loss %.4f vs kill-free %.4f exceeds tolerance", res.FinalLoss, base.FinalLoss)
		}
	})
}
