package core

import (
	"runtime"
	"sync"
)

// This file implements the sharded execution layer of the aggregation hot
// path. Every aggregation rule in this package is element-wise: the value
// of w[i] after a batch depends only on the prior w[i] and the i-th
// coordinate of each update, folded in a fixed per-element order (batch
// order). Splitting the index space [0,dim) into contiguous chunks and
// processing chunks on different workers therefore yields bit-identical
// results to the serial loop — no floating-point reassociation happens,
// because no cross-element reduction exists. Chunk boundaries are a pure
// function of (n, workers), never of GOMAXPROCS or scheduling, so a run
// with AggWorkers=8 on a laptop and on a cluster produces the same bytes.

// minShard is the smallest chunk worth shipping to a worker: below this,
// the channel handoff costs more than the arithmetic it parallelizes.
const minShard = 4096

// span is one contiguous index chunk dispatched to the pool.
type span struct{ lo, hi int }

// chunkPool is a process-wide pool of long-lived workers behind every
// sharded fold and parallel decode. Workers are started lazily up to the
// widest requested width and block on the task channel between calls.
// The mutex serializes concurrent callers: one operation owns the workers
// at a time, which keeps the pool allocation-free in steady state (no
// per-call task groups). Ops must not recursively submit to the pool.
type chunkPool struct {
	mu      sync.Mutex
	tasks   chan span
	started int
	op      func(lo, hi int)
	wg      sync.WaitGroup
}

// aggPool is the shared pool used by all aggregators and DecodeUpdates.
var aggPool chunkPool

// resolveWorkers maps a Config.AggWorkers value to an effective width:
// 0 selects GOMAXPROCS, anything else is taken literally.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func (p *chunkPool) worker() {
	for s := range p.tasks {
		p.op(s.lo, s.hi)
		p.wg.Done()
	}
}

// run executes op over [0,n) split into at most `workers` contiguous
// chunks of at least grain elements each. The caller's goroutine processes
// the first chunk itself, so a width-w run needs only w−1 pool workers.
// With an effective width of 1 (or n < 2·grain) the op runs inline —
// the serial path, with zero synchronization.
func (p *chunkPool) run(n, workers, grain int, op func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	// Floor, not ceil: n just past a grain boundary must not ship two
	// sub-grain chunks — below grain, handoff costs more than it saves.
	chunks := workers
	if max := n / grain; chunks > max {
		chunks = max
	}
	if chunks < 1 {
		chunks = 1
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size // re-derive so no chunk is empty
	if chunks <= 1 {
		op(0, n)
		return
	}
	p.mu.Lock()
	if p.tasks == nil {
		p.tasks = make(chan span, 64)
	}
	for p.started < chunks-1 {
		p.started++
		go p.worker()
	}
	p.op = op
	p.wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.tasks <- span{lo, hi}
	}
	op(0, size) // the caller carries the first chunk
	p.wg.Wait()
	p.op = nil
	p.mu.Unlock()
}

// shardRun is the dim-space entry point used by the aggregators.
func shardRun(dim, workers int, op func(lo, hi int)) {
	aggPool.run(dim, resolveWorkers(workers), minShard, op)
}

// eachRun fans op out over n independent items (grain 1) — the per-update
// decode path, where each item is itself O(dim) work.
func eachRun(n, workers int, op func(lo, hi int)) {
	aggPool.run(n, resolveWorkers(workers), 1, op)
}
