package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

// shardWidths is the tier-width matrix of the bit-identity tests.
var shardWidths = []int{2, 3, 8}

// requireBitEqual fails unless the two weight vectors match bit for bit.
func requireBitEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: dim %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: weight[%d] sharded %x, flat %x — not bit-identical",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestShardedBitIdenticalToSingleAggregator pins the tentpole invariant:
// for every covered rule (FedAvg behind syncall and sampled, the
// buffered staleness rule, and the fused f16/quantized folds), every
// tier width, and every worker width, the sharded tree-reduce
// trajectory is byte-for-byte the single-aggregator one. Shards
// partition the index space and the reduce concatenates disjoint
// adjacent ranges, so this is equality by construction — the test keeps
// it that way.
func TestShardedBitIdenticalToSingleAggregator(t *testing.T) {
	const (
		clients = 4
		dim     = 3*minShard + 17
		rounds  = 3
	)
	cases := map[string]Config{
		"syncall/fedavg":     {Algorithm: AlgoFedAvg, Scheduler: SchedSyncAll},
		"sampled/fedavg":     {Algorithm: AlgoFedAvg, Scheduler: SchedSampled, CohortFraction: 0.5},
		"buffered/staleness": {Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: 2},
		"syncall/fused-f16":  {Algorithm: AlgoFedAvg, Scheduler: SchedSyncAll, Pipeline: "clip:1,f16"},
		"buffered/fused-q8":  {Algorithm: AlgoFedAvg, Scheduler: SchedBuffered, BufferK: 2, Pipeline: "clip:1,quantize:8"},
	}
	for name, base := range cases {
		t.Run(name, func(t *testing.T) {
			for _, shards := range shardWidths {
				for _, workers := range aggWidths {
					cfg := base
					cfg.AggWorkers = workers
					cfg = cfg.WithDefaults()
					shardCfg := cfg
					shardCfg.AggShards = shards

					flat, err := NewAggregator(cfg, testVec(dim, 1), clients)
					if err != nil {
						t.Fatal(err)
					}
					sharded, err := NewAggregator(shardCfg, testVec(dim, 1), clients)
					if err != nil {
						t.Fatal(err)
					}

					fused := cfg.Pipeline != ""
					var fsFlat, fsShard pipeline.FusedStage
					if fused {
						inv, err := NewServerPipeline(cfg)
						if err != nil {
							t.Fatal(err)
						}
						var ok bool
						if fsFlat, ok = EnableFusedFold(flat, inv); !ok {
							t.Fatalf("pipeline %q did not fuse (flat)", cfg.Pipeline)
						}
						if fsShard, ok = EnableFusedFold(sharded, inv); !ok {
							t.Fatalf("pipeline %q did not fuse (sharded)", cfg.Pipeline)
						}
					}

					for round := 0; round < rounds; round++ {
						// Buffered rounds replay earlier base versions so some
						// folds carry staleness > 0.
						var bases []uint64
						if cfg.Scheduler == SchedBuffered && round > 0 {
							bases = make([]uint64, clients)
							for i := range bases {
								bases[i] = uint64(round - 1 + i%2)
							}
						}
						seed := uint64(80 + round)
						var a, b []*wire.LocalUpdate
						if fused {
							a = encodedBatch(t, cfg, clients, dim, seed, bases)
							b = encodedBatch(t, cfg, clients, dim, seed, bases)
							if err := DecodeUpdatesFused(a, fsFlat, dim); err != nil {
								t.Fatal(err)
							}
							if err := DecodeUpdatesFused(b, fsShard, dim); err != nil {
								t.Fatal(err)
							}
						} else {
							a = testBatch(clients, dim, seed)
							b = testBatch(clients, dim, seed)
							if bases != nil {
								for i := range a {
									a[i].BaseVersion, b[i].BaseVersion = bases[i], bases[i]
								}
							}
						}
						if err := flat.Aggregate(a); err != nil {
							t.Fatal(err)
						}
						if err := sharded.Aggregate(b); err != nil {
							t.Fatal(err)
						}
					}
					requireBitEqual(t, fmt.Sprintf("%s shards=%d workers=%d", name, shards, workers),
						flat.Weights(), sharded.Weights())
					closeAggregator(sharded)
				}
			}
		})
	}
}

// TestShardedTierWiderThanModel: a tier wider than the model leaves
// trailing shards empty; the reduce must still cover the full range.
func TestShardedTierWiderThanModel(t *testing.T) {
	const dim, shards = 5, 8
	cfg := Config{Algorithm: AlgoFedAvg, AggShards: shards}.WithDefaults()
	flatCfg := Config{Algorithm: AlgoFedAvg}.WithDefaults()
	sharded, err := NewAggregator(cfg, testVec(dim, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAggregator(sharded)
	flat, err := NewAggregator(flatCfg, testVec(dim, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := testBatch(3, dim, 9)
	if err := sharded.Aggregate(batch); err != nil {
		t.Fatal(err)
	}
	if err := flat.Aggregate(batch); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "tiny model", flat.Weights(), sharded.Weights())
}

// TestShardedAggregateZeroAllocs pins the per-shard steady state: after
// warm-up, a sharded fold + tree-reduce must not allocate — jobs ride
// buffered channels, partials reslice one shared accumulator, and the
// reduce's only data movement is the mirror copy.
func TestShardedAggregateZeroAllocs(t *testing.T) {
	const dim = 8 * minShard
	for _, shards := range []int{2, 8} {
		cfg := Config{Algorithm: AlgoFedAvg, AggShards: shards}.WithDefaults()
		agg, err := NewAggregator(cfg, testVec(dim, 1), 4)
		if err != nil {
			t.Fatal(err)
		}
		batch := testBatch(4, dim, 33)
		if err := agg.Aggregate(batch); err != nil { // warm-up: sizes scratch
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(20, func() {
			if err := agg.Aggregate(batch); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("sharded aggregate allocates %.1f objects/op at %d shards, want 0", avg, shards)
		}
		closeAggregator(agg)
	}
}

// TestShardedCloseIdempotent: closing twice (and closing a tier-less
// server) must be safe.
func TestShardedCloseIdempotent(t *testing.T) {
	cfg := Config{Algorithm: AlgoFedAvg, AggShards: 4}.WithDefaults()
	agg, err := NewAggregator(cfg, testVec(128, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	closeAggregator(agg)
	closeAggregator(agg)
	flat := NewFedAvgServer(testVec(128, 1), 2)
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAggShardsValidation: the tier is FedAvg-family only and cannot
// combine with the f32 accumulator.
func TestAggShardsValidation(t *testing.T) {
	if err := (Config{Algorithm: AlgoIIADMM, AggShards: 4}).WithDefaults().Validate(); err == nil {
		t.Error("AggShards accepted for an ADMM algorithm")
	}
	if err := (Config{Algorithm: AlgoFedAvg, AggShards: 4, AggPrecision: AggF32}).WithDefaults().Validate(); err == nil {
		t.Error("AggShards combined with f32 accumulator accepted")
	}
	if err := (Config{Algorithm: AlgoFedAvg, AggShards: -1}).WithDefaults().Validate(); err == nil {
		t.Error("negative AggShards accepted")
	}
	if err := (Config{Algorithm: AlgoFedAvg, AggShards: 4}).WithDefaults().Validate(); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
	if err := (Config{Algorithm: AlgoFedAvg, AggShards: 4, Scheduler: SchedBuffered}).WithDefaults().Validate(); err != nil {
		t.Errorf("sharded buffered config rejected: %v", err)
	}
}

// TestRunWithShardedTier: the full runner path (transport, training,
// aggregation) with the tier enabled reproduces the flat run's
// per-round losses bit for bit.
func TestRunWithShardedTier(t *testing.T) {
	fed := parallelTestFed(3, 96, 32, 23)
	base := Config{Algorithm: AlgoFedAvg, Rounds: 2, LocalSteps: 1, BatchSize: 32, Seed: 23}
	flatRes, err := Run(base, fed, parallelTestFactory(23), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := base
	shardCfg.AggShards = 4
	shardRes, err := Run(shardCfg, fed, parallelTestFactory(23), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flatRes.Rounds) != len(shardRes.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(flatRes.Rounds), len(shardRes.Rounds))
	}
	for i := range flatRes.Rounds {
		a, b := flatRes.Rounds[i].TestLoss, shardRes.Rounds[i].TestLoss
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round %d loss: flat %v, sharded %v — not bit-identical", i+1, a, b)
		}
	}
}

// TestShardRouterAdmission covers the admission window: cap enforcement,
// round rollover, unlimited mode, and stable shard routing.
func TestShardRouterAdmission(t *testing.T) {
	r, err := NewShardRouter(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for c := uint32(0); c < 10; c++ {
		if s, ok := r.Admit(1, c); ok {
			admitted++
			if s < 0 || s >= r.Shards {
				t.Fatalf("admitted client %d routed to shard %d of %d", c, s, r.Shards)
			}
		}
	}
	if admitted != 3 {
		t.Fatalf("round 1 admitted %d clients with cap 3", admitted)
	}
	if r.Rejected != 7 {
		t.Fatalf("rejected %d, want 7", r.Rejected)
	}
	// A new round reopens the window.
	if _, ok := r.Admit(2, 99); !ok {
		t.Fatal("new round did not reset the admission window")
	}
	// Routing is the stable id hash regardless of admission history.
	s1, _ := r.Admit(2, 7)
	r2, _ := NewShardRouter(4, 0)
	s2, _ := r2.Admit(1, 7)
	if s1 != s2 {
		t.Fatalf("client 7 routed to shard %d and %d — routing must be stable", s1, s2)
	}
	// Unlimited mode admits everyone.
	for c := uint32(0); c < 1000; c++ {
		if _, ok := r2.Admit(1, c); !ok {
			t.Fatal("unlimited router rejected a client")
		}
	}
	if _, err := NewShardRouter(0, 0); err == nil {
		t.Error("zero-shard router accepted")
	}
	if _, err := NewShardRouter(1, -1); err == nil {
		t.Error("negative cap accepted")
	}
}

// TestShardRouterStaleRound: a straggler from a closed round must be
// rejected under the Stale counter without consuming the current round's
// admission budget. The pre-fix router treated a stale round as current,
// so one round-1 straggler would eat a round-2 admission slot.
func TestShardRouterStaleRound(t *testing.T) {
	r, err := NewShardRouter(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := uint32(0); c < 2; c++ {
		if _, ok := r.Admit(2, c); !ok {
			t.Fatalf("round 2 client %d rejected under cap 2", c)
		}
	}
	// Round 3 opens a fresh window; a round-2 straggler arrives first.
	if _, ok := r.Admit(3, 10); !ok {
		t.Fatal("round 3 did not reset the admission window")
	}
	if _, ok := r.Admit(2, 3); ok {
		t.Fatal("stale round-2 arrival admitted into round 3's window")
	}
	if r.Stale != 1 {
		t.Fatalf("Stale = %d, want 1", r.Stale)
	}
	// The straggler must not have consumed round 3's remaining slot.
	if _, ok := r.Admit(3, 11); !ok {
		t.Fatal("stale arrival consumed the current round's admission budget")
	}
	if _, ok := r.Admit(3, 12); ok {
		t.Fatal("cap 2 exceeded in round 3")
	}
	if r.Admitted != 4 || r.Rejected != 1 || r.Stale != 1 {
		t.Fatalf("counters admitted/rejected/stale = %d/%d/%d, want 4/1/1",
			r.Admitted, r.Rejected, r.Stale)
	}
}

// TestSampledCohortHugeRosterIsOCohort: the partial Fisher–Yates draw
// must make cohort sampling independent of roster size — a 10M-client
// roster samples a 100-client cohort effectively instantly, where the
// old O(N log N) ranking would enumerate ten million entries per round.
func TestSampledCohortHugeRosterIsOCohort(t *testing.T) {
	s := SampledCohort{NumClients: 10_000_000, Fraction: 1e-9, MinClients: 100, Seed: 7}
	start := time.Now()
	var ids []int
	for round := 1; round <= 50; round++ {
		ids = s.Cohort(round)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("50 cohort draws over a 10M roster took %v — sampling is not O(cohort)", el)
	}
	if len(ids) != 100 {
		t.Fatalf("cohort size %d, want 100", len(ids))
	}
	seen := map[int]bool{}
	for i, id := range ids {
		if id < 0 || id >= s.NumClients {
			t.Fatalf("cohort member %d out of roster", id)
		}
		if seen[id] {
			t.Fatalf("duplicate cohort member %d", id)
		}
		seen[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Fatal("cohort not sorted ascending")
		}
	}
	// Determinism: the same (seed, round) reproduces the draw.
	a, b := s.Cohort(3), s.Cohort(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cohort draw not deterministic")
		}
	}
}
