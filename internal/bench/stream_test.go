package bench

import (
	"strings"
	"testing"
	"time"
)

// fastStream keeps the streamed rounds inside the unit-test budget.
func fastStream() StreamOptions {
	return StreamOptions{
		Dim:          1 << 14,
		Clients:      4,
		Chunk:        1000, // deliberately unaligned with dim
		Workers:      2,
		MinProbeTime: time.Millisecond,
	}
}

// TestRunStream: the harness completes streamed rounds and publishes the
// footprint numbers the probe gates on — a sub-linear resident window and
// a positive fold throughput.
func TestRunStream(t *testing.T) {
	res, err := RunStream(fastStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes <= 0 || res.PeakBytes >= res.DenseBytes {
		t.Fatalf("peak window %d bytes not sub-linear vs dense %d", res.PeakBytes, res.DenseBytes)
	}
	if res.WindowRatio <= 1 {
		t.Fatalf("window ratio %v", res.WindowRatio)
	}
	if res.ElemPerSec <= 0 || res.SecPerRound <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	table := res.Table().String()
	for _, want := range []string{"peak resident window", "window ratio", "fold throughput"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRunStreamFootprintDeterministic: PeakBytes is a pure function of
// the geometry and the wire codec — the property that lets it gate in CI
// across machines.
func TestRunStreamFootprintDeterministic(t *testing.T) {
	a, err := RunStream(fastStream())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(fastStream())
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakBytes != b.PeakBytes || a.Chunks != b.Chunks {
		t.Fatalf("footprint diverged across identical runs: %+v vs %+v", a, b)
	}
}

// TestProbeStream: the suite hook publishes the gated metrics.
func TestProbeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dim probe")
	}
	var r Report
	if err := probeStream(Options{Workers: 2, MinProbeTime: time.Millisecond}, &r); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"stream_peak_bytes", "stream_window_ratio", "stream_fold_throughput"} {
		m, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("probe did not publish %s", name)
		}
		if m.Value <= 0 {
			t.Fatalf("%s = %v", name, m.Value)
		}
	}
}
