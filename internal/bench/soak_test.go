package bench

import (
	"testing"
	"time"
)

// TestRunSoakTiny: the durability probe runs at reduced geometry, reports
// positive timings, and the replayed record count is the documented pure
// function of (rounds, clients).
func TestRunSoakTiny(t *testing.T) {
	res, err := RunSoak(SoakOptions{
		Dim:          256,
		Clients:      3,
		Rounds:       4,
		MinProbeTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * (3 + 2); res.Records != want {
		t.Fatalf("Records = %d, want %d", res.Records, want)
	}
	if res.AppendNs <= 0 || res.ReplayMs <= 0 || res.ReplayRecPerSec <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.Table() == nil {
		t.Fatal("nil table")
	}
}
