package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// SoakOptions parameterize the durability benchmark: the cost of the
// write-ahead journal on the round hot path, and the cost of replaying it
// after a kill -9.
type SoakOptions struct {
	// Dim is the primal dimension of each journaled admit (default 4096 —
	// a small-CNN update, the geometry the soak tests train at).
	Dim int
	// Clients is the cohort size of each journaled round (default 8).
	Clients int
	// Rounds is the number of committed rounds the replay probe recovers
	// (default 50, matching the long-haul soak).
	Rounds int
	// MinProbeTime is the minimum cumulative measurement time per probe
	// (default 100ms).
	MinProbeTime time.Duration
	// Seed drives the synthetic vectors (default 1).
	Seed uint64
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Dim <= 0 {
		o.Dim = 4096
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Rounds <= 0 {
		o.Rounds = 50
	}
	if o.MinProbeTime <= 0 {
		o.MinProbeTime = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SoakResult is one RunSoak outcome.
type SoakResult struct {
	Opts SoakOptions
	// AppendNs is the time to journal one admitted update (write + CRC
	// frame, no fsync — the page-cache cost every admit pays; fsync on top
	// is a device property, not a code property, so it is not measured).
	AppendNs float64
	// Records is the deterministic record count of the replayed journal:
	// Rounds × (1 round start + Clients admits + 1 commit).
	Records int
	// ReplayMs is the time to recover the full journal: re-open the WAL
	// (CRC-verify every frame) and replay it through core.RecoverServer
	// into scheduler/ledger/aggregator state — the server's restart cost.
	ReplayMs float64
	// ReplayRecPerSec is Records / ReplayMs, the replay throughput.
	ReplayRecPerSec float64
}

// RunSoak measures the durability layer in isolation. The append probe
// times the WAL hot path (one admit record per call, NoSync — the same
// mode the soak harness runs in, so process death is the crash model);
// the replay probe builds a Rounds-round journal with a deterministic
// record count and times a full crash recovery over it.
func RunSoak(o SoakOptions) (*SoakResult, error) {
	o = o.withDefaults()
	res := &SoakResult{Opts: o}

	dir, err := os.MkdirTemp("", "appfl-soak-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	primal := randVec(o.Dim, o.Seed)
	w := randVec(o.Dim, o.Seed+1)
	cohort := make([]uint32, o.Clients)
	for i := range cohort {
		cohort[i] = uint32(i)
	}

	// Append probe: one admit record per call against a throwaway journal.
	// The round is held open so every append is the steady-state frame
	// write, never a checkpoint compaction.
	appendDir := dir + "/append"
	if err := os.Mkdir(appendDir, 0o755); err != nil {
		return nil, err
	}
	aj, err := journal.Open(appendDir)
	if err != nil {
		return nil, err
	}
	aj.NoSync = true
	var rec wire.JournalRecord
	rec.Op = wire.JournalRoundStart
	rec.Round = 1
	rec.Cohort = cohort
	if err := aj.Append(&rec); err != nil {
		return nil, err
	}
	admit := func(round uint32, client int) *wire.JournalRecord {
		rec.Reset()
		rec.Op = wire.JournalAdmit
		rec.Round = round
		rec.ClientID = uint32(client)
		rec.NumSamples = 64
		rec.Primal = append(rec.Primal, primal...)
		return &rec
	}
	sec := measure(o.MinProbeTime, func() {
		if err := aj.Append(admit(1, 0)); err != nil {
			panic(err)
		}
	})
	res.AppendNs = sec * 1e9
	if err := aj.Close(); err != nil {
		return nil, err
	}

	// Replay probe: a full Rounds-round journal, every round dispatched to
	// the whole cohort, every client admitted, every round committed.
	replayDir := dir + "/replay"
	if err := os.Mkdir(replayDir, 0o755); err != nil {
		return nil, err
	}
	rj, err := journal.Open(replayDir)
	if err != nil {
		return nil, err
	}
	rj.NoSync = true
	for t := 1; t <= o.Rounds; t++ {
		rec.Reset()
		rec.Op = wire.JournalRoundStart
		rec.Round = uint32(t)
		rec.Cohort = append(rec.Cohort, cohort...)
		if err := rj.Append(&rec); err != nil {
			return nil, err
		}
		for c := 0; c < o.Clients; c++ {
			if err := rj.Append(admit(uint32(t), c)); err != nil {
				return nil, err
			}
		}
		rec.Reset()
		rec.Op = wire.JournalCommit
		rec.Round = uint32(t)
		rec.Version = uint64(t)
		rec.Weights = append(rec.Weights, w...)
		if err := rj.Append(&rec); err != nil {
			return nil, err
		}
	}
	if err := rj.Close(); err != nil {
		return nil, err
	}
	res.Records = o.Rounds * (o.Clients + 2)

	replay := func() error {
		j, err := journal.Open(replayDir)
		if err != nil {
			return err
		}
		defer j.Close()
		recovered, err := core.RecoverServer(j.Recovered(), o.Clients, true)
		if err != nil {
			return err
		}
		if recovered.Fresh || recovered.NextRound != o.Rounds+1 {
			return fmt.Errorf("bench: replay recovered to round %d, want %d", recovered.NextRound, o.Rounds+1)
		}
		return nil
	}
	if err := replay(); err != nil { // fail loudly before timing
		return nil, err
	}
	sec = measure(o.MinProbeTime, func() {
		if err := replay(); err != nil {
			panic(err)
		}
	})
	res.ReplayMs = sec * 1e3
	res.ReplayRecPerSec = float64(res.Records) / sec
	return res, nil
}

// Table renders the result for terminal output and CI summaries.
func (res *SoakResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("soak: journal dim %d, %d clients × %d rounds (%d records)",
			res.Opts.Dim, res.Opts.Clients, res.Opts.Rounds, res.Records),
		"metric", "value", "unit")
	t.AddRowf("journal append", res.AppendNs/1e3, "us")
	t.AddRowf("recovery replay", res.ReplayMs, "ms")
	t.AddRowf("replay throughput", res.ReplayRecPerSec/1e3, "krec/s")
	return t
}

// probeSoak is the suite hook. Fixed geometry (not Options.Dim) so the
// replayed record count — and with it the gated replay time — is the same
// on every machine; only the probe budget passes through.
func probeSoak(o Options, r *Report) error {
	res, err := RunSoak(SoakOptions{MinProbeTime: o.MinProbeTime})
	if err != nil {
		return err
	}
	r.Add(Metric{Name: "journal_append_ns", Value: res.AppendNs, Unit: "ns", HigherIsBetter: false, Gated: true})
	r.Add(Metric{Name: "recovery_replay_ms", Value: res.ReplayMs, Unit: "ms", HigherIsBetter: false, Gated: true})
	return nil
}
