package bench

import (
	"strings"
	"testing"
)

// TestRenderDiffGomaxprocsWarning pins the diff tool's document: the
// GOMAXPROCS-mismatch warning appears exactly when the two reports
// disagree on core count, skipped rows stay out of the verdict, and the
// verdict line flips with the regression count.
func TestRenderDiffGomaxprocsWarning(t *testing.T) {
	base := &Report{Version: ReportVersion, GoMaxProcs: 4, Metrics: []Metric{
		{Name: "shard_reduce_speedup", Value: 2.0, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true},
		{Name: "pipe_f16_reduction", Value: 4.0, Unit: "x", HigherIsBetter: true, Gated: true},
	}}
	cur := &Report{Version: ReportVersion, GoMaxProcs: 1, Metrics: []Metric{
		{Name: "shard_reduce_speedup", Value: 0.8, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true},
		{Name: "pipe_f16_reduction", Value: 4.0, Unit: "x", HigherIsBetter: true, Gated: true},
	}}

	out, n := RenderDiff(base, cur, 0.2, false, "BENCH_baseline.json")
	if n != 0 {
		t.Fatalf("parallel-dependent drop gated despite procs mismatch: %d regressions\n%s", n, out)
	}
	if !strings.Contains(out, "⚠ baseline measured at GOMAXPROCS=4, current at GOMAXPROCS=1") {
		t.Errorf("missing mismatch warning:\n%s", out)
	}
	if !strings.Contains(out, "⚠ skipped (gomaxprocs mismatch)") {
		t.Errorf("skipped row not annotated:\n%s", out)
	}
	if !strings.Contains(out, "✅ no gated metric regressed more than 20% vs BENCH_baseline.json") {
		t.Errorf("missing pass verdict:\n%s", out)
	}

	// Matching core counts: no warning, and the same drop now fails.
	cur.GoMaxProcs = 4
	out, n = RenderDiff(base, cur, 0.2, false, "BENCH_baseline.json")
	if n != 1 {
		t.Fatalf("want 1 regression at matching procs, got %d\n%s", n, out)
	}
	if strings.Contains(out, "⚠ baseline measured at GOMAXPROCS") {
		t.Errorf("spurious mismatch warning at matching procs:\n%s", out)
	}
	if !strings.Contains(out, "❌ 1 gated metric(s) regressed more than 20% vs BENCH_baseline.json") {
		t.Errorf("missing fail verdict:\n%s", out)
	}
}
