package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// ScaleOptions tunes the cross-device scale harness. Zero values select
// the defaults used by the committed baseline: a 100k-client federation
// sampled 256 clients per round into an 8-shard aggregation tier.
type ScaleOptions struct {
	// Clients is the federation roster size (default 100_000; the
	// harness is O(cohort), so 1M is just as cheap).
	Clients int
	// Cohort is the sampled cohort size per round (default 256).
	Cohort int
	// Shards is the aggregation tier width (default 8).
	Shards int
	// AdmitPerRound caps updates admitted per round (default 0 =
	// unlimited; the router still routes, it just never rejects).
	AdmitPerRound int
	// Rounds is the number of virtual rounds the latency model simulates
	// (default 200).
	Rounds int
	// Dim is the model dimension of the fold-timing phase (default
	// 1<<16; also sets the modelled update size, 8·Dim bytes).
	Dim int
	// MinProbeTime is the minimum cumulative measurement time of the
	// fold-timing phase (default 100ms).
	MinProbeTime time.Duration
	// Seed drives cohort sampling and network jitter (default 7). The
	// virtual-latency phase is deterministic in (options, Seed).
	Seed uint64
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	if o.Clients == 0 {
		o.Clients = 100_000
	}
	if o.Cohort == 0 {
		o.Cohort = 256
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.Rounds == 0 {
		o.Rounds = 200
	}
	if o.Dim == 0 {
		o.Dim = 1 << 16
	}
	if o.MinProbeTime == 0 {
		o.MinProbeTime = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// ScaleResult is one scale-harness run: measured fold throughput of the
// sharded tier against the single aggregator, plus the modelled
// round-latency distribution of the full client→shard→reduce path.
type ScaleResult struct {
	Opts ScaleOptions

	// RoundsPerSecSharded is the measured sharded-tier fold+reduce rate
	// (cohort-sized batches per second, machine-dependent).
	RoundsPerSecSharded float64
	// RoundsPerSecSerial is the single-aggregator rate on the same batch.
	RoundsPerSecSerial float64
	// ShardSpeedup is RoundsPerSecSharded / RoundsPerSecSerial.
	ShardSpeedup float64

	// P50, P95, P99 are modelled round-latency percentiles in seconds
	// (virtual time: deterministic in the options and seed).
	P50, P95, P99 float64
	// Admitted and Rejected count the router's decisions over all rounds.
	Admitted, Rejected uint64
	// VirtualSec is the total modelled time of the simulated rounds.
	VirtualSec float64
}

// RunScale runs the scale harness. The two phases answer different
// questions with the cheapest faithful instrument each:
//
//   - Fold timing is *measured*: a cohort-sized batch folds through a real
//     sharded tier (core.Config.AggShards) and through a real serial
//     aggregator — same kernels, same bit-identical trajectory, wall
//     clock. This is the shard_reduce_speedup the CI gate watches.
//
//   - Round latency at 100k–1M clients is *modelled*: per round, the
//     O(cohort) sampler draws a cohort from the roster, the ShardRouter
//     admits and routes it, and simnet.ShardNet prices the upload queues
//     and the tree-reduce. Virtual time is deterministic in the seed, so
//     the published percentiles are machine-independent — and simulating
//     a 1M-client federation costs microseconds per round, which is the
//     point of a simnet-backed harness.
func RunScale(o ScaleOptions) (*ScaleResult, error) {
	o = o.withDefaults()
	res := &ScaleResult{Opts: o}

	// Phase 1: measured fold + tree-reduce throughput. The batch aliases a
	// few base vectors so a big cohort does not need cohort×dim memory.
	w0 := randVec(o.Dim, o.Seed)
	const baseVecs = 8
	bases := make([][]float64, baseVecs)
	for i := range bases {
		bases[i] = randVec(o.Dim, o.Seed+1+uint64(i))
	}
	batch := make([]*wire.LocalUpdate, o.Cohort)
	for i := range batch {
		batch[i] = &wire.LocalUpdate{
			ClientID:   uint32(i),
			NumSamples: uint64(16 + i%31),
			Primal:     bases[i%baseVecs],
		}
	}
	foldSec := func(shards int) (float64, error) {
		cfg := core.Config{Algorithm: core.AlgoFedAvg, AggWorkers: 1, AggShards: shards}.WithDefaults()
		agg, err := core.NewAggregator(cfg, w0, o.Cohort)
		if err != nil {
			return 0, err
		}
		if c, ok := agg.(interface{ Close() error }); ok {
			defer c.Close()
		}
		return measure(o.MinProbeTime, func() {
			if err := agg.Aggregate(batch); err != nil {
				panic(err)
			}
		}), nil
	}
	serialSec, err := foldSec(0) // AggShards 0 = flat single aggregator
	if err != nil {
		return nil, err
	}
	shardedSec, err := foldSec(o.Shards)
	if err != nil {
		return nil, err
	}
	res.RoundsPerSecSerial = 1 / serialSec
	res.RoundsPerSecSharded = 1 / shardedSec
	res.ShardSpeedup = serialSec / shardedSec

	// Phase 2: modelled round latency over the full federation.
	sampler := core.SampledCohort{NumClients: o.Clients, MinClients: o.Cohort, Seed: o.Seed}
	router, err := core.NewShardRouter(o.Shards, o.AdmitPerRound)
	if err != nil {
		return nil, err
	}
	net, err := simnet.DefaultShardNet(o.Shards)
	if err != nil {
		return nil, err
	}
	hist, err := metrics.NewHistogram(1e-4, 1e4, 512)
	if err != nil {
		return nil, err
	}
	r := rng.New(o.Seed)
	updateBytes := 8 * o.Dim
	partialBytes := 8 * ((o.Dim + o.Shards - 1) / o.Shards)
	admitted := make([]uint32, 0, o.Cohort)
	for round := 1; round <= o.Rounds; round++ {
		admitted = admitted[:0]
		for _, id := range sampler.Cohort(round) {
			if _, ok := router.Admit(round, uint32(id)); ok {
				admitted = append(admitted, uint32(id))
			}
		}
		total, _, _ := net.RoundTime(admitted, updateBytes, partialBytes, r)
		hist.Add(total)
		res.VirtualSec += total
	}
	res.P50, res.P95, res.P99 = hist.Summary()
	res.Admitted, res.Rejected = router.Admitted, router.Rejected
	return res, nil
}

// Table renders the result for terminal output and CI summaries.
func (res *ScaleResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("scale: %d clients, cohort %d, %d shards, %d virtual rounds",
			res.Opts.Clients, res.Opts.Cohort, res.Opts.Shards, res.Opts.Rounds),
		"metric", "value", "unit")
	t.AddRowf("rounds/sec sharded", res.RoundsPerSecSharded, "rounds/s")
	t.AddRowf("rounds/sec serial", res.RoundsPerSecSerial, "rounds/s")
	t.AddRowf("shard speedup", res.ShardSpeedup, "x")
	t.AddRowf("round latency p50", res.P50*1e3, "ms")
	t.AddRowf("round latency p95", res.P95*1e3, "ms")
	t.AddRowf("round latency p99", res.P99*1e3, "ms")
	t.AddRowf("admitted", fmt.Sprintf("%d", res.Admitted), "clients")
	t.AddRowf("rejected", fmt.Sprintf("%d", res.Rejected), "clients")
	t.AddRowf("virtual time", res.VirtualSec, "s")
	return t
}

// probeScale is the suite hook: it runs the scale harness at *fixed*
// parameters — not Options.Dim — so the gated virtual-latency
// percentiles are a pure function of the model and seed, reproducible on
// any machine. Only MinProbeTime passes through (it scales the measured
// fold phase, which publishes machine-dependent values and a
// parallel-dependent ratio).
func probeScale(o Options, r *Report) error {
	res, err := RunScale(ScaleOptions{MinProbeTime: o.MinProbeTime})
	if err != nil {
		return err
	}
	r.Add(Metric{Name: "rounds_per_sec_sharded", Value: res.RoundsPerSecSharded, Unit: "rounds/s", HigherIsBetter: true, ParallelDependent: true})
	r.Add(Metric{Name: "shard_reduce_speedup", Value: res.ShardSpeedup, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true})
	r.Add(Metric{Name: "scale_round_latency_p50", Value: res.P50 * 1e3, Unit: "ms", HigherIsBetter: false, Gated: true})
	r.Add(Metric{Name: "scale_round_latency_p95", Value: res.P95 * 1e3, Unit: "ms", HigherIsBetter: false, Gated: true})
	r.Add(Metric{Name: "scale_round_latency_p99", Value: res.P99 * 1e3, Unit: "ms", HigherIsBetter: false, Gated: true})
	return nil
}
