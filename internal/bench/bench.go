// Package bench is the machine-readable performance harness: a Suite of
// named probes over the hot paths this repository optimizes — sharded
// aggregation, wire-codec throughput, pipeline stage cost, and round
// latency under a straggler — whose results serialize to a versioned
// BENCH.json. CI runs the suite every push and diffs the report against
// the committed BENCH_baseline.json (cmd/appfl-benchdiff), so "made it
// faster" and "made it slower" are claims the repository can check.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ReportVersion is bumped whenever the JSON schema changes shape.
// Version 2 added Metric.ParallelDependent.
const ReportVersion = 2

// Metric is one named measurement of the suite.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// HigherIsBetter orients the regression gate: throughputs and
	// speedups are higher-is-better, latencies are not.
	HigherIsBetter bool `json:"higher_is_better"`
	// Gated metrics participate in the CI regression gate. Machine-
	// dependent absolute throughputs are reported but ungated by default
	// (a laptop baseline would trip on every slower runner); ratios,
	// byte counts, and sleep-dominated latencies are stable across
	// machines and gate by default.
	Gated bool `json:"gated"`
	// ParallelDependent marks metrics whose value is a function of the
	// core count (parallel speedups, multi-worker throughputs). The diff
	// tool skips — reports but does not gate — these when the baseline
	// and current reports were measured at different GOMAXPROCS, so a
	// single-core laptop run against a multi-core CI baseline does not
	// produce spurious failures.
	ParallelDependent bool `json:"parallel_dependent,omitempty"`
}

// Report is the BENCH.json document.
type Report struct {
	Version    int      `json:"version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Metrics    []Metric `json:"metrics"`
}

// Add appends a metric to the report.
func (r *Report) Add(m Metric) { r.Metrics = append(r.Metrics, m) }

// Lookup finds a metric by name.
func (r *Report) Lookup(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSON writes the report to path.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads a BENCH.json document.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("bench: %s is schema version %d, this binary speaks %d", path, r.Version, ReportVersion)
	}
	return &r, nil
}

// Options tunes the suite. Zero values select the defaults used by the
// committed baseline.
type Options struct {
	// Dim is the model dimension of the aggregation and codec probes
	// (default 1<<20 — the "≥ 1M parameters" scale of the paper's CNNs).
	Dim int
	// Workers is the sharded width of the parallel probes (default 8).
	Workers int
	// MinProbeTime is the minimum cumulative measurement time per probe
	// (default 100ms).
	MinProbeTime time.Duration
	// StragglerDelay is the per-update delay of the slow client in the
	// round-latency probe (default 50ms, chosen so the deterministic
	// sleep dominates machine-dependent compute); Rounds is its round
	// count (default 3).
	StragglerDelay time.Duration
	Rounds         int
}

func (o Options) withDefaults() Options {
	if o.Dim == 0 {
		o.Dim = 1 << 20
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.MinProbeTime == 0 {
		o.MinProbeTime = 100 * time.Millisecond
	}
	if o.StragglerDelay == 0 {
		// Large enough that the deterministic sleep dominates the sync
		// round (>90% of it), keeping the gated latency machine-stable.
		o.StragglerDelay = 50 * time.Millisecond
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	return o
}

// Probe is one named measurement unit of the suite.
type Probe struct {
	Name string
	Run  func(o Options, r *Report) error
}

// Suite is an ordered set of probes.
type Suite struct {
	Opts   Options
	Probes []Probe
}

// NewSuite assembles the default probe set.
func NewSuite(opts Options) *Suite {
	return &Suite{
		Opts: opts.withDefaults(),
		Probes: []Probe{
			{Name: "agg", Run: probeAggregation},
			{Name: "kernel", Run: probeKernel},
			{Name: "codec", Run: probeCodec},
			{Name: "pipeline", Run: probePipeline},
			{Name: "round", Run: probeRoundLatency},
			{Name: "scale", Run: probeScale},
			{Name: "stream", Run: probeStream},
			{Name: "soak", Run: probeSoak},
		},
	}
}

// Run executes every probe and returns the report.
func (s *Suite) Run() (*Report, error) {
	r := &Report{Version: ReportVersion, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, p := range s.Probes {
		if err := p.Run(s.Opts, r); err != nil {
			return nil, fmt.Errorf("bench: probe %s: %w", p.Name, err)
		}
	}
	return r, nil
}

// measure returns seconds per call of f, repeating it until the
// cumulative measured time reaches minDur. One warm-up call is excluded.
func measure(minDur time.Duration, f func()) float64 {
	f()
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		el := time.Since(start)
		if el >= minDur {
			return el.Seconds() / float64(reps)
		}
		if el <= 0 {
			reps *= 8
			continue
		}
		next := int(float64(reps) * float64(minDur) / float64(el) * 1.25)
		if next <= reps {
			next = reps * 2
		}
		reps = next
	}
}

// randVec fills a deterministic pseudorandom vector in (-0.5, 0.5) — a
// range every compression stage (including float16) represents.
func randVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
	return v
}

// probeAggregation measures the sharded fold (BufferedAggregator) and the
// sharded sample-weighted average (FedAvgServer) at width 1 versus
// Options.Workers, reporting element throughput and the parallel-vs-serial
// speedup. The speedup is the headline the CI gate watches; the serial and
// parallel paths produce bit-identical weights (asserted in the core
// tests), so this is a free lunch, not a precision trade.
func probeAggregation(o Options, r *Report) error {
	w0 := randVec(o.Dim, 11)
	z := randVec(o.Dim, 12)
	batch := []*wire.LocalUpdate{{ClientID: 0, NumSamples: 64, Primal: z}}

	foldSec := func(workers int) (float64, error) {
		agg, err := core.NewBufferedAggregator(w0, 0.5, 0.5, 0)
		if err != nil {
			return 0, err
		}
		agg.Workers = workers
		sec := measure(o.MinProbeTime, func() {
			if err := agg.Aggregate(batch); err != nil {
				panic(err)
			}
		})
		return sec, nil
	}
	serial, err := foldSec(1)
	if err != nil {
		return err
	}
	parallel, err := foldSec(o.Workers)
	if err != nil {
		return err
	}
	r.Add(Metric{Name: "agg_fold_serial", Value: float64(o.Dim) / serial / 1e6, Unit: "Melem/s", HigherIsBetter: true})
	r.Add(Metric{Name: fmt.Sprintf("agg_fold_parallel_%dw", o.Workers), Value: float64(o.Dim) / parallel / 1e6, Unit: "Melem/s", HigherIsBetter: true, ParallelDependent: true})
	r.Add(Metric{Name: "agg_fold_speedup", Value: serial / parallel, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true})

	// FedAvg over an 8-client batch: the barrier-round hot path.
	const clients = 8
	fedBatch := make([]*wire.LocalUpdate, clients)
	for i := range fedBatch {
		fedBatch[i] = &wire.LocalUpdate{ClientID: uint32(i), NumSamples: uint64(32 + i), Primal: randVec(o.Dim, uint64(20+i))}
	}
	avgSec := func(workers int) float64 {
		srv := core.NewFedAvgServer(w0, clients)
		srv.Workers = workers
		return measure(o.MinProbeTime, func() {
			if err := srv.Aggregate(fedBatch); err != nil {
				panic(err)
			}
		})
	}
	aserial := avgSec(1)
	aparallel := avgSec(o.Workers)
	r.Add(Metric{Name: "fedavg_agg_serial", Value: float64(o.Dim*clients) / aserial / 1e6, Unit: "Melem/s", HigherIsBetter: true})
	r.Add(Metric{Name: fmt.Sprintf("fedavg_agg_parallel_%dw", o.Workers), Value: float64(o.Dim*clients) / aparallel / 1e6, Unit: "Melem/s", HigherIsBetter: true, ParallelDependent: true})
	r.Add(Metric{Name: "fedavg_agg_speedup", Value: aserial / aparallel, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true})
	return nil
}

// twoSweepFold is the pre-kernel fold: a zero sweep of the accumulator
// followed by one full accumulator sweep per source — (K+1) passes over
// dst where tensor.FoldK makes one. It is kept here as the reference the
// kernel probes measure against.
func twoSweepFold(dst []float64, srcs [][]float64, weights []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for k, src := range srcs {
		w := weights[k]
		for i, v := range src {
			dst[i] += w * v
		}
	}
}

// probeKernel measures the cache-blocked aggregation kernels in
// isolation, single-threaded — throughput of the batched K-way fold at
// several widths, the blocked-vs-two-sweep speedup, the fused
// invert+fold versus the two-pass densify-then-fold on float16 payloads,
// and the single- versus double-precision accumulator. The two speedups
// are same-machine ratios and gate; they are not parallel-dependent, so
// they gate at any GOMAXPROCS. The f32 ratio is reported ungated: on
// machines where the f64 fold already saturates memory bandwidth it
// hovers near 1, elsewhere it reflects the halved traffic.
func probeKernel(o Options, r *Report) error {
	dst := make([]float64, o.Dim)

	// Batched fold throughput at K ∈ {2, 8, 32}.
	const refK = 8
	var refSrcs [][]float64
	var refWeights []float64
	for _, k := range []int{2, 8, 32} {
		srcs := make([][]float64, k)
		weights := make([]float64, k)
		for j := range srcs {
			srcs[j] = randVec(o.Dim, uint64(100+j))
			weights[j] = 1 / float64(k)
		}
		if k == refK {
			refSrcs, refWeights = srcs, weights
		}
		sec := measure(o.MinProbeTime, func() { tensor.FoldK(dst, 0, o.Dim, srcs, weights) })
		r.Add(Metric{Name: fmt.Sprintf("kernel_foldk_k%d", k), Value: float64(k*o.Dim) / sec / 1e6, Unit: "Melem/s", HigherIsBetter: true})
	}

	// Blocked kernel vs the two-sweep fold it replaced, at K=8.
	blockedSec := measure(o.MinProbeTime, func() { tensor.FoldK(dst, 0, o.Dim, refSrcs, refWeights) })
	twoSweepSec := measure(o.MinProbeTime, func() { twoSweepFold(dst, refSrcs, refWeights) })
	r.Add(Metric{Name: "kernel_foldk_speedup", Value: twoSweepSec / blockedSec, Unit: "x", HigherIsBetter: true, Gated: true})

	// Fused invert+fold vs two-pass densify-then-fold on f16 payloads.
	payloads := make([]*wire.Payload, refK)
	fsrcs := make([]tensor.FoldSrc, refK)
	for j := range payloads {
		v := refSrcs[j]
		codes := make([]byte, 2*len(v))
		for i, x := range v {
			h := wire.Float16FromFloat64(x)
			codes[2*i] = byte(h)
			codes[2*i+1] = byte(h >> 8)
		}
		payloads[j] = &wire.Payload{Enc: wire.EncFloat16, Dim: uint32(len(v)), Codes: codes}
		fsrcs[j] = tensor.FoldSrc{Kind: tensor.SrcF16, Codes: codes, W: refWeights[j]}
	}
	scratch := make([][]float64, refK)
	for j := range scratch {
		scratch[j] = make([]float64, o.Dim)
	}
	twoPassSec := measure(o.MinProbeTime, func() {
		for j, p := range payloads {
			d, err := p.Densify(scratch[j])
			if err != nil {
				panic(err)
			}
			scratch[j] = d
		}
		tensor.FoldK(dst, 0, o.Dim, scratch, refWeights)
	})
	fusedSec := measure(o.MinProbeTime, func() { tensor.FoldKSrc(dst, 0, o.Dim, fsrcs) })
	r.Add(Metric{Name: "kernel_fused_speedup", Value: twoPassSec / fusedSec, Unit: "x", HigherIsBetter: true, Gated: true})

	// f32 vs f64 accumulator on the same fused sources.
	dst32 := make([]float32, o.Dim)
	f64Sec := fusedSec
	f32Sec := measure(o.MinProbeTime, func() { tensor.FoldKSrc32(dst32, 0, o.Dim, fsrcs) })
	r.Add(Metric{Name: "kernel_f32_speedup", Value: f64Sec / f32Sec, Unit: "x", HigherIsBetter: true})
	return nil
}

// probeCodec measures wire-codec encode and decode of a dim-sized dense
// LocalUpdate with full buffer reuse — the steady-state (zero-allocation)
// path the wire tests pin.
func probeCodec(o Options, r *Report) error {
	u := &wire.LocalUpdate{ClientID: 1, Round: 1, NumSamples: 64, Primal: randVec(o.Dim, 31)}
	e := wire.NewEncoder(make([]byte, 0, 8*o.Dim+64))
	encSec := measure(o.MinProbeTime, func() {
		e.Reset()
		u.Marshal(e)
	})
	bytes := float64(e.Len())

	var out wire.LocalUpdate
	var d wire.Decoder
	decSec := measure(o.MinProbeTime, func() {
		d.Reset(e.Bytes())
		if err := out.Unmarshal(&d); err != nil {
			panic(err)
		}
	})
	r.Add(Metric{Name: "codec_encode", Value: bytes / encSec / 1e6, Unit: "MB/s", HigherIsBetter: true})
	r.Add(Metric{Name: "codec_decode", Value: bytes / decSec / 1e6, Unit: "MB/s", HigherIsBetter: true})
	return nil
}

// probePipeline measures the cost of each compression stage (Apply +
// Invert on a dim/4 vector) and records the wire-size reduction each
// achieves. The reductions are deterministic byte ratios — exactly
// reproducible on any machine — so they gate.
func probePipeline(o Options, r *Report) error {
	n := o.Dim / 4
	if n < 1024 {
		n = 1024
	}
	src := randVec(n, 41)
	denseBytes := (&wire.Payload{Enc: wire.EncDense, Dim: uint32(n), Dense: src}).WireBytes()

	topk, err := pipeline.NewTopKSparsify(0.1)
	if err != nil {
		return err
	}
	quant, err := pipeline.NewStochasticQuantize(8, rng.New(42))
	if err != nil {
		return err
	}
	f16, err := pipeline.NewFloat16Cast()
	if err != nil {
		return err
	}
	type namedStage struct {
		name  string
		stage pipeline.Stage
	}
	stages := []namedStage{{"topk", topk}, {"quant", quant}, {"f16", f16}}

	buf := make([]float64, n)
	for _, s := range stages {
		u := &pipeline.Update{}
		roundTrip := func() {
			copy(buf, src)
			*u = pipeline.Update{Enc: wire.EncDense, Dim: uint32(n), Dense: buf}
			if err := s.stage.Apply(u, 0); err != nil {
				panic(err)
			}
			if err := s.stage.Invert(u); err != nil {
				panic(err)
			}
		}
		sec := measure(o.MinProbeTime, roundTrip)

		// Wire size after one Apply, measured outside the timed region.
		copy(buf, src)
		*u = pipeline.Update{Enc: wire.EncDense, Dim: uint32(n), Dense: buf}
		if err := s.stage.Apply(u, 0); err != nil {
			return err
		}
		ratio := float64(denseBytes) / float64(u.WireBytes())

		r.Add(Metric{Name: "pipe_" + s.name, Value: float64(8*n) / sec / 1e6, Unit: "MB/s", HigherIsBetter: true})
		r.Add(Metric{Name: "pipe_" + s.name + "_reduction", Value: ratio, Unit: "x", HigherIsBetter: true, Gated: true})
	}
	return nil
}

// probeRoundLatency runs a real federated round loop (MPI transport, one
// straggling client injected via RunOptions.ClientDelay — the simnet-style
// slow-device model) under the synchronous barrier and the buffered
// scheduler. Sync round latency is dominated by the deterministic
// straggler sleep, so it is stable across machines and gates; the
// buffered figures depend on compute speed and are reported ungated.
func probeRoundLatency(o Options, r *Report) error {
	const clients = 4
	tr, _ := dataset.MNIST(dataset.SynthConfig{Train: 128, Test: 1, Seed: 17})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, clients, rng.New(18))}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{16}, 10, rng.New(17)) }
	delay := func(client, round int) time.Duration {
		if client == clients-1 {
			return o.StragglerDelay
		}
		return 0
	}
	run := func(cfg core.Config) (float64, error) {
		start := time.Now()
		if _, err := core.Run(cfg, fed, factory, core.RunOptions{ClientDelay: delay}); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	base := core.Config{Algorithm: core.AlgoFedAvg, Rounds: o.Rounds, LocalSteps: 1, BatchSize: 32, Seed: 17}
	syncSec, err := run(base)
	if err != nil {
		return err
	}
	buffered := base
	buffered.Scheduler = core.SchedBuffered
	buffered.BufferK = clients / 2
	bufSec, err := run(buffered)
	if err != nil {
		return err
	}
	r.Add(Metric{Name: "round_latency_sync", Value: syncSec / float64(o.Rounds) * 1e3, Unit: "ms", HigherIsBetter: false, Gated: true})
	r.Add(Metric{Name: "round_latency_buffered", Value: bufSec / float64(o.Rounds) * 1e3, Unit: "ms", HigherIsBetter: false})
	r.Add(Metric{Name: "straggler_speedup", Value: syncSec / bufSec, Unit: "x", HigherIsBetter: true})
	return nil
}
