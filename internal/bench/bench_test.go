package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps the suite fast enough for the unit-test tier: small
// vectors, microsecond probe budgets, millisecond straggler.
var tinyOpts = Options{
	Dim:            1 << 14,
	Workers:        2,
	MinProbeTime:   time.Millisecond,
	StragglerDelay: 2 * time.Millisecond,
	Rounds:         2,
}

// TestSuiteEmitsNamedMetrics: the default suite produces the documented
// metric set (≥ 6 metrics, at least one gated, units filled in) and the
// report round-trips through BENCH.json.
func TestSuiteEmitsNamedMetrics(t *testing.T) {
	rep, err := NewSuite(tinyOpts).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) < 6 {
		t.Fatalf("suite emitted %d metrics, want >= 6", len(rep.Metrics))
	}
	gated := 0
	for _, m := range rep.Metrics {
		if m.Name == "" || m.Unit == "" {
			t.Fatalf("metric missing name/unit: %+v", m)
		}
		if m.Value <= 0 {
			t.Fatalf("metric %s has non-positive value %v", m.Name, m.Value)
		}
		if m.Gated {
			gated++
		}
	}
	if gated == 0 {
		t.Fatal("no gated metrics: the CI gate would be vacuous")
	}
	for _, name := range []string{
		"agg_fold_speedup", "fedavg_agg_speedup", "codec_encode", "codec_decode", "round_latency_sync",
		"kernel_foldk_k2", "kernel_foldk_k8", "kernel_foldk_k32",
		"kernel_foldk_speedup", "kernel_fused_speedup", "kernel_f32_speedup",
		"rounds_per_sec_sharded", "shard_reduce_speedup",
		"scale_round_latency_p50", "scale_round_latency_p95", "scale_round_latency_p99",
		"journal_append_ns", "recovery_replay_ms",
	} {
		if _, ok := rep.Lookup(name); !ok {
			t.Errorf("suite is missing headline metric %q", name)
		}
	}
	for _, name := range []string{"agg_fold_speedup", "fedavg_agg_speedup", "shard_reduce_speedup"} {
		if m, ok := rep.Lookup(name); ok && !m.ParallelDependent {
			t.Errorf("%s not marked parallel-dependent: a gomaxprocs mismatch would gate it", name)
		}
	}
	for _, name := range []string{"kernel_foldk_speedup", "kernel_fused_speedup"} {
		if m, ok := rep.Lookup(name); ok && m.ParallelDependent {
			t.Errorf("%s marked parallel-dependent: single-threaded ratios gate at any core count", name)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != len(rep.Metrics) || back.Version != ReportVersion {
		t.Fatalf("round-trip mismatch: %d metrics v%d, want %d v%d",
			len(back.Metrics), back.Version, len(rep.Metrics), ReportVersion)
	}
}

// TestCompareGate exercises the regression rules: within-tolerance noise
// passes, a gated drop beyond tolerance fails, an ungated drop does not,
// lower-is-better metrics gate in the opposite direction, and a metric
// that disappears from the current report always fails.
func TestCompareGate(t *testing.T) {
	base := &Report{Version: ReportVersion, Metrics: []Metric{
		{Name: "speedup", Value: 2.0, Unit: "x", HigherIsBetter: true, Gated: true},
		{Name: "throughput", Value: 100, Unit: "MB/s", HigherIsBetter: true},
		{Name: "latency", Value: 10, Unit: "ms", HigherIsBetter: false, Gated: true},
		{Name: "dropped", Value: 1, Unit: "x", HigherIsBetter: true, Gated: true},
	}}
	cur := &Report{Version: ReportVersion, Metrics: []Metric{
		{Name: "speedup", Value: 1.9, Unit: "x", HigherIsBetter: true, Gated: true},  // -5%: fine
		{Name: "throughput", Value: 10, Unit: "MB/s", HigherIsBetter: true},          // -90% but ungated
		{Name: "latency", Value: 13, Unit: "ms", HigherIsBetter: false, Gated: true}, // +30%: regression
		{Name: "fresh", Value: 5, Unit: "x", HigherIsBetter: true},                   // new: never gates
	}}
	deltas, n := Compare(base, cur, 0.2, false)
	if n != 2 {
		t.Fatalf("want 2 regressions (latency, dropped), got %d: %+v", n, deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["speedup"].Regressed {
		t.Error("within-tolerance speedup flagged")
	}
	if byName["throughput"].Regressed {
		t.Error("ungated throughput flagged")
	}
	if !byName["latency"].Regressed {
		t.Error("latency regression missed")
	}
	if d := byName["dropped"]; !d.Regressed || !d.Missing {
		t.Errorf("missing metric not flagged: %+v", d)
	}
	if byName["fresh"].Regressed {
		t.Error("new metric flagged")
	}

	// With -all, the ungated throughput drop becomes a regression too.
	if _, n := Compare(base, cur, 0.2, true); n != 3 {
		t.Fatalf("want 3 regressions under -all, got %d", n)
	}

	// Markdown renders one row per delta plus the two header lines.
	md := Markdown(deltas)
	lines := strings.Split(strings.TrimSuffix(md, "\n"), "\n")
	if len(lines) != len(deltas)+2 {
		t.Fatalf("markdown has %d lines, want %d", len(lines), len(deltas)+2)
	}
}

// TestCompareSkipsParallelDependentOnProcsMismatch: a parallel-dependent
// gated metric must not gate when baseline and current were measured at
// different GOMAXPROCS — but it must still gate on a matching machine,
// still fail if the probe vanishes, and machine-independent gated
// metrics must keep gating either way.
func TestCompareSkipsParallelDependentOnProcsMismatch(t *testing.T) {
	base := &Report{Version: ReportVersion, GoMaxProcs: 4, Metrics: []Metric{
		{Name: "agg_fold_speedup", Value: 2.0, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true},
		{Name: "pipe_f16_reduction", Value: 4.0, Unit: "x", HigherIsBetter: true, Gated: true},
		{Name: "gone_speedup", Value: 1.5, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true},
	}}
	cur := &Report{Version: ReportVersion, GoMaxProcs: 1, Metrics: []Metric{
		{Name: "agg_fold_speedup", Value: 0.9, Unit: "x", HigherIsBetter: true, Gated: true, ParallelDependent: true}, // -55% but skipped
		{Name: "pipe_f16_reduction", Value: 2.0, Unit: "x", HigherIsBetter: true, Gated: true},                        // -50%: still gates
	}}
	deltas, n := Compare(base, cur, 0.2, false)
	if n != 2 {
		t.Fatalf("want 2 regressions (pipe_f16_reduction, gone_speedup), got %d: %+v", n, deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["agg_fold_speedup"]; !d.Skipped || d.Regressed || d.Gated {
		t.Errorf("parallel-dependent metric not skipped under procs mismatch: %+v", d)
	}
	if d := byName["pipe_f16_reduction"]; d.Skipped || !d.Regressed {
		t.Errorf("machine-independent metric mishandled under procs mismatch: %+v", d)
	}
	if d := byName["gone_speedup"]; !d.Missing || !d.Regressed {
		t.Errorf("missing probe must fail even when skipped: %+v", d)
	}
	if !strings.Contains(Markdown(deltas), "⚠ skipped (gomaxprocs mismatch)") {
		t.Error("markdown does not annotate the skipped row")
	}

	// Same GOMAXPROCS: the -55% drop gates again.
	cur.GoMaxProcs = 4
	if _, n := Compare(base, cur, 0.2, false); n != 3 {
		t.Fatalf("want 3 regressions at matching procs, got %d", n)
	}
}
