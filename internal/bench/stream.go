package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// StreamOptions parameterize the chunked-uplink benchmark.
type StreamOptions struct {
	// Dim is the model dimension (default 1<<20).
	Dim int
	// Clients is the cohort size streaming concurrently (default 8).
	Clients int
	// Chunk is the chunk size in coordinates (default 16384).
	Chunk int
	// Workers is the fold worker width (default 8).
	Workers int
	// MinProbeTime is the minimum cumulative measurement time for the
	// throughput phase (default 100ms).
	MinProbeTime time.Duration
	// Seed drives the synthetic vectors (default 1).
	Seed uint64
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Dim <= 0 {
		o.Dim = 1 << 20
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Chunk <= 0 {
		o.Chunk = 16384
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.MinProbeTime <= 0 {
		o.MinProbeTime = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// StreamResult is one RunStream outcome.
type StreamResult struct {
	Opts StreamOptions
	// PeakBytes is the maximum resident chunk-payload bytes during the
	// gather — the streamed round's transient uplink footprint. It is a
	// pure function of (Dim, Clients, Chunk) and the wire codec, so it
	// gates in CI as a memory-regression tripwire.
	PeakBytes int
	// DenseBytes is the monolithic path's resident uplink footprint for
	// the same cohort (Clients × Dim × 8): what the server would hold if
	// every model arrived whole.
	DenseBytes int
	// WindowRatio is DenseBytes / PeakBytes — how many times smaller the
	// streaming window is than a cohort of full models.
	WindowRatio float64
	// Chunks is the number of chunks folded per round.
	Chunks int
	// SecPerRound is the measured wall time of one streamed round
	// (cohort upload + chunk-by-chunk fold); ElemPerSec is the fold
	// throughput Clients×Dim / SecPerRound.
	SecPerRound float64
	ElemPerSec  float64
}

// RunStream measures the streaming aggregation path end to end: a cohort
// of clients cuts synthetic model vectors into chunks and uploads them
// ack-paced over an in-memory ChunkPipe, while a StreamSession folds each
// cohort-wide chunk window into a FedAvg server — the identical engine
// the runner drives when Config.StreamChunk is set. The headline numbers
// are the resident window footprint (PeakBytes, deterministic) and the
// streamed fold throughput (machine-dependent).
func RunStream(o StreamOptions) (*StreamResult, error) {
	o = o.withDefaults()
	res := &StreamResult{Opts: o}

	w0 := randVec(o.Dim, o.Seed)
	// Clients alias a few base vectors so the cohort does not need
	// Clients×Dim fresh memory (the scale harness's trick).
	const baseVecs = 4
	bases := make([][]float64, baseVecs)
	for i := range bases {
		bases[i] = randVec(o.Dim, o.Seed+1+uint64(i))
	}

	cfg := core.Config{Algorithm: core.AlgoFedAvg, AggWorkers: o.Workers}.WithDefaults()
	agg, err := core.NewAggregator(cfg, w0, o.Clients)
	if err != nil {
		return nil, err
	}
	ss, err := core.NewStreamSession(agg)
	if err != nil {
		return nil, err
	}

	pipe := comm.NewChunkPipe(o.Clients)
	cohort := make([]int, o.Clients)
	for i := range cohort {
		cohort[i] = i
	}
	// One streamed round: every client uploads ack-paced while the
	// server folds the rotating chunk window. The round number is held
	// at 1 across repetitions — the pipe is lossless, so replays of the
	// same (round, index) keys are indistinguishable from fresh rounds.
	round := func() (*comm.StreamStats, error) {
		var wg sync.WaitGroup
		errs := make([]error, o.Clients)
		for i := 0; i < o.Clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				u := &wire.LocalUpdate{
					ClientID:   uint32(i),
					Round:      1,
					NumSamples: uint64(16 + i%31),
					Primal:     bases[i%baseVecs],
				}
				errs[i] = comm.StreamUpload(pipe.Client(i), u, o.Chunk, comm.UploadOptions{})
			}(i)
		}
		st, err := comm.StreamGather(pipe, cohort, 1, o.Dim, o.Chunk, ss.Begin, ss.FoldPayloads)
		if err != nil {
			return st, err
		}
		if err := ss.Finish(); err != nil {
			return st, err
		}
		wg.Wait()
		for i, e := range errs {
			if e != nil {
				return st, fmt.Errorf("bench: client %d stream: %w", i, e)
			}
		}
		return st, nil
	}

	// Instrumented round for the deterministic footprint numbers.
	st, err := round()
	if err != nil {
		return nil, err
	}
	res.PeakBytes = st.PeakBytes
	res.DenseBytes = 8 * o.Dim * o.Clients
	res.WindowRatio = float64(res.DenseBytes) / float64(res.PeakBytes)
	res.Chunks = st.Chunks

	// Timed rounds for throughput.
	res.SecPerRound = measure(o.MinProbeTime, func() {
		if _, err := round(); err != nil {
			panic(err)
		}
	})
	res.ElemPerSec = float64(o.Dim*o.Clients) / res.SecPerRound
	return res, nil
}

// Table renders the result for terminal output and CI summaries.
func (res *StreamResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("stream: %d clients × dim %d, chunk %d, %d workers",
			res.Opts.Clients, res.Opts.Dim, res.Opts.Chunk, res.Opts.Workers),
		"metric", "value", "unit")
	t.AddRowf("peak resident window", float64(res.PeakBytes)/1e6, "MB")
	t.AddRowf("monolithic footprint", float64(res.DenseBytes)/1e6, "MB")
	t.AddRowf("window ratio", res.WindowRatio, "x")
	t.AddRowf("chunks per round", fmt.Sprintf("%d", res.Chunks), "chunks")
	t.AddRowf("round time", res.SecPerRound*1e3, "ms")
	t.AddRowf("fold throughput", res.ElemPerSec/1e6, "Melem/s")
	return t
}

// probeStream is the suite hook. Like probeScale it runs at *fixed*
// geometry — not Options.Dim — so the gated footprint numbers are a pure
// function of the wire codec, reproducible on any machine; only the
// worker width and probe time pass through (they shape the ungated,
// machine-dependent throughput).
func probeStream(o Options, r *Report) error {
	res, err := RunStream(StreamOptions{Workers: o.Workers, MinProbeTime: o.MinProbeTime})
	if err != nil {
		return err
	}
	r.Add(Metric{Name: "stream_peak_bytes", Value: float64(res.PeakBytes), Unit: "B", HigherIsBetter: false, Gated: true})
	r.Add(Metric{Name: "stream_window_ratio", Value: res.WindowRatio, Unit: "x", HigherIsBetter: true, Gated: true})
	r.Add(Metric{Name: "stream_fold_throughput", Value: res.ElemPerSec / 1e6, Unit: "Melem/s", HigherIsBetter: true, ParallelDependent: true})
	return nil
}
