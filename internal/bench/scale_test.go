package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fastScale keeps the measured fold phase inside the unit-test budget;
// the modelled phase is cheap at any roster size.
func fastScale(clients, shards int) ScaleOptions {
	return ScaleOptions{
		Clients:      clients,
		Cohort:       128,
		Shards:       shards,
		Rounds:       50,
		Dim:          1 << 12,
		MinProbeTime: time.Millisecond,
	}
}

// TestRunScaleHundredThousandClients: the harness completes rounds over
// a 100k-client federation and publishes a sane latency distribution —
// the acceptance criterion of the scale tier.
func TestRunScaleHundredThousandClients(t *testing.T) {
	res, err := RunScale(fastScale(100_000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsPerSecSharded <= 0 || res.RoundsPerSecSerial <= 0 || res.ShardSpeedup <= 0 {
		t.Fatalf("degenerate fold rates: %+v", res)
	}
	if !(res.P50 > 0 && res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("latency percentiles not monotone: p50 %v p95 %v p99 %v", res.P50, res.P95, res.P99)
	}
	if want := uint64(50 * 128); res.Admitted != want {
		t.Fatalf("admitted %d clients, want %d (unlimited admission)", res.Admitted, want)
	}
	if res.Rejected != 0 {
		t.Fatalf("unlimited admission rejected %d", res.Rejected)
	}
	table := res.Table().String()
	for _, want := range []string{"round latency p99", "shard speedup", "100000 clients"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRunScaleMillionClientsIsCheap: a 1M-client federation must cost no
// more than the cohort does — the sampler and router never enumerate the
// roster.
func TestRunScaleMillionClientsIsCheap(t *testing.T) {
	opts := fastScale(1_000_000, 8)
	start := time.Now()
	res, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("1M-client harness took %v — not O(cohort)", el)
	}
	if res.VirtualSec <= 0 {
		t.Fatal("no virtual time accumulated")
	}
}

// TestRunScaleLatencyDeterministic: the modelled percentiles are a pure
// function of (options, seed) — the property that lets them gate in CI
// across machines.
func TestRunScaleLatencyDeterministic(t *testing.T) {
	a, err := RunScale(fastScale(100_000, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(fastScale(100_000, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{a.P50, b.P50}, {a.P95, b.P95}, {a.P99, b.P99}, {a.VirtualSec, b.VirtualSec}} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("virtual latencies diverged across identical runs: %v vs %v", pair[0], pair[1])
		}
	}
}

// TestRunScaleAdmissionCap: a per-round cap rejects the cohort overflow
// and shrinks the admitted upload load.
func TestRunScaleAdmissionCap(t *testing.T) {
	opts := fastScale(100_000, 8)
	opts.AdmitPerRound = 32
	res, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(50 * 32); res.Admitted != want {
		t.Fatalf("admitted %d, want %d under cap 32", res.Admitted, want)
	}
	if want := uint64(50 * (128 - 32)); res.Rejected != want {
		t.Fatalf("rejected %d, want %d under cap 32", res.Rejected, want)
	}
	uncapped, err := RunScale(fastScale(100_000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 >= uncapped.P50 {
		t.Fatalf("capped round p50 %v not faster than uncapped %v", res.P50, uncapped.P50)
	}
}
