package bench

import (
	"fmt"
	"strings"
)

// Delta is the comparison of one metric between a baseline report and a
// current report.
type Delta struct {
	Name    string
	Unit    string
	Base    float64
	Current float64
	// Pct is the signed relative change in the metric's "better"
	// direction: positive means improved, negative means worse.
	Pct float64
	// Gated reports whether the metric participates in the gate.
	Gated bool
	// Missing marks a baseline metric absent from the current report —
	// always a gate failure, so a refactor cannot silently drop a probe.
	Missing bool
	// Skipped marks a parallel-dependent metric excluded from the gate
	// because the two reports were measured at different GOMAXPROCS: the
	// comparison is still shown, but a core-count mismatch is not a
	// performance regression.
	Skipped bool
	// Regressed marks a gate failure: a gated metric moved in its worse
	// direction by more than the tolerance, or went missing.
	Regressed bool
}

// Compare diffs cur against base. tol is the fractional regression
// tolerance (0.2 = a gated metric may move up to 20% in its worse
// direction). When all is true every metric gates regardless of its
// Gated flag. The returned count is the number of regressions.
//
// When the two reports were measured at different GOMAXPROCS, metrics
// marked ParallelDependent in the baseline are skipped rather than
// gated: a 1-core laptop cannot reproduce a 4-core CI speedup, and
// failing the gate on a core-count mismatch would make every local run
// of the diff tool cry wolf. Skipped metrics still appear in the table,
// annotated, so the mismatch is visible rather than silent.
func Compare(base, cur *Report, tol float64, all bool) ([]Delta, int) {
	procsMismatch := base.GoMaxProcs != cur.GoMaxProcs
	deltas := make([]Delta, 0, len(base.Metrics))
	regressions := 0
	seen := map[string]bool{}
	for _, bm := range base.Metrics {
		seen[bm.Name] = true
		d := Delta{Name: bm.Name, Unit: bm.Unit, Base: bm.Value, Gated: bm.Gated || all}
		if procsMismatch && bm.ParallelDependent {
			d.Skipped = true
			d.Gated = false
		}
		cm, ok := cur.Lookup(bm.Name)
		if !ok {
			// A vanished probe is a harness regression regardless of the
			// machine, so missing still fails even when skipped.
			d.Missing = true
			d.Regressed = true
			regressions++
			deltas = append(deltas, d)
			continue
		}
		d.Current = cm.Value
		if bm.Value != 0 {
			d.Pct = (cm.Value - bm.Value) / bm.Value
			if !bm.HigherIsBetter {
				d.Pct = -d.Pct
			}
		}
		if d.Gated && d.Pct < -tol {
			d.Regressed = true
			regressions++
		}
		deltas = append(deltas, d)
	}
	// New metrics are reported (so the table is complete) but never gate.
	for _, cm := range cur.Metrics {
		if !seen[cm.Name] {
			deltas = append(deltas, Delta{Name: cm.Name, Unit: cm.Unit, Current: cm.Value, Gated: cm.Gated || all})
		}
	}
	return deltas, regressions
}

// Markdown renders the deltas as a GitHub-flavored table, suitable for
// $GITHUB_STEP_SUMMARY.
func Markdown(deltas []Delta) string {
	var b strings.Builder
	b.WriteString("| metric | unit | baseline | current | change | gate |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		status := "—"
		switch {
		case d.Missing:
			status = "❌ missing"
		case d.Regressed:
			status = "❌ regressed"
		case d.Skipped:
			status = "⚠ skipped (gomaxprocs mismatch)"
		case d.Gated:
			status = "✅"
		}
		baseCell, curCell, pctCell := fmtVal(d.Base), fmtVal(d.Current), fmt.Sprintf("%+.1f%%", d.Pct*100)
		if d.Base == 0 {
			baseCell, pctCell = "new", "—"
		}
		if d.Missing {
			curCell, pctCell = "missing", "—"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n", d.Name, d.Unit, baseCell, curCell, pctCell, status)
	}
	return b.String()
}

// RenderDiff produces the complete human/CI-facing comparison document —
// header, GOMAXPROCS-mismatch warning, markdown delta table, and
// verdict — plus the regression count. cmd/appfl-benchdiff prints this
// verbatim and exits non-zero on regressions; keeping the rendering here
// makes the warning and verdict paths unit-testable without spawning the
// binary. baselineName labels the verdict line.
func RenderDiff(base, cur *Report, tol float64, all bool, baselineName string) (string, int) {
	deltas, regressions := Compare(base, cur, tol, all)
	var b strings.Builder
	b.WriteString("### Performance vs baseline\n\n")
	if base.GoMaxProcs != cur.GoMaxProcs {
		fmt.Fprintf(&b, "⚠ baseline measured at GOMAXPROCS=%d, current at GOMAXPROCS=%d — parallel-dependent metrics are reported below but skipped by the gate.\n\n",
			base.GoMaxProcs, cur.GoMaxProcs)
	}
	b.WriteString(Markdown(deltas))
	b.WriteByte('\n')
	if regressions > 0 {
		fmt.Fprintf(&b, "\n❌ %d gated metric(s) regressed more than %.0f%% vs %s\n", regressions, tol*100, baselineName)
	} else {
		fmt.Fprintf(&b, "✅ no gated metric regressed more than %.0f%% vs %s\n", tol*100, baselineName)
	}
	return b.String(), regressions
}

// fmtVal renders a metric value compactly.
func fmtVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
