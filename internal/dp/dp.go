// Package dp implements the differential-privacy machinery of APPFL
// Section III-B: the Laplace output-perturbation mechanism, gradient
// clipping, the per-algorithm sensitivity rules used to derive the noise
// scale automatically, and a per-client privacy accountant. A Gaussian
// mechanism is included as the "more advanced schemes" extension the paper
// lists as future work.
package dp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Typed configuration errors returned by the mechanism constructors.
// Library code never panics on bad user config: these surface through
// core.Config.Validate and the pipeline spec parser instead.
var (
	ErrEpsilon = errors.New("dp: epsilon must be positive (use +Inf for non-private)")
	ErrDelta   = errors.New("dp: delta must be in (0,1)")
)

// Epsilon is the privacy budget ε̄ of Definition 1. math.Inf(1) disables
// noise (the paper's non-private setting ε̄ = ∞).
type Epsilon = float64

// Mechanism perturbs a model update in place before it is uploaded.
type Mechanism interface {
	// Perturb adds noise to v. sensitivity is the Δ̄ bound supplied by the
	// algorithm's sensitivity rule.
	Perturb(v []float64, sensitivity float64)
	// Name identifies the mechanism in logs and result tables.
	Name() string
}

// Laplace is the output-perturbation mechanism of Eq. (6): each coordinate
// receives independent Laplace(0, Δ̄/ε̄) noise.
type Laplace struct {
	Eps Epsilon
	R   *rng.RNG
}

// NewLaplace builds the mechanism. eps must be positive (use math.Inf(1)
// for the non-private setting); a non-positive eps returns ErrEpsilon.
func NewLaplace(eps Epsilon, r *rng.RNG) (*Laplace, error) {
	if math.IsNaN(eps) || eps <= 0 {
		return nil, fmt.Errorf("%w, got %v", ErrEpsilon, eps)
	}
	return &Laplace{Eps: eps, R: r}, nil
}

// Perturb adds Laplace noise with scale sensitivity/ε̄ to every coordinate.
// With ε̄ = ∞ or zero sensitivity it is a no-op.
func (l *Laplace) Perturb(v []float64, sensitivity float64) {
	if math.IsInf(l.Eps, 1) || sensitivity == 0 {
		return
	}
	scale := sensitivity / l.Eps
	for i := range v {
		v[i] += l.R.Laplace(0, scale)
	}
}

// Name returns a human-readable identifier.
func (l *Laplace) Name() string {
	if math.IsInf(l.Eps, 1) {
		return "laplace(eps=inf)"
	}
	return fmt.Sprintf("laplace(eps=%g)", l.Eps)
}

// Gaussian implements (ε, δ)-DP output perturbation with noise stddev
// σ = Δ̄·sqrt(2 ln(1.25/δ))/ε (Dwork & Roth, Appendix A). Included as the
// paper's planned "more advanced" mechanism.
type Gaussian struct {
	Eps   Epsilon
	Delta float64
	R     *rng.RNG
}

// NewGaussian builds the mechanism; eps must be positive and delta in
// (0,1). Bad parameters return ErrEpsilon / ErrDelta.
func NewGaussian(eps Epsilon, delta float64, r *rng.RNG) (*Gaussian, error) {
	if math.IsNaN(eps) || eps <= 0 {
		return nil, fmt.Errorf("%w, got %v", ErrEpsilon, eps)
	}
	if math.IsNaN(delta) || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("%w, got %v", ErrDelta, delta)
	}
	return &Gaussian{Eps: eps, Delta: delta, R: r}, nil
}

// Perturb adds Gaussian noise calibrated to (ε, δ)-DP.
func (g *Gaussian) Perturb(v []float64, sensitivity float64) {
	if math.IsInf(g.Eps, 1) || sensitivity == 0 {
		return
	}
	sigma := sensitivity * math.Sqrt(2*math.Log(1.25/g.Delta)) / g.Eps
	for i := range v {
		v[i] += g.R.Normal(0, sigma)
	}
}

// Name returns a human-readable identifier.
func (g *Gaussian) Name() string {
	return fmt.Sprintf("gaussian(eps=%g,delta=%g)", g.Eps, g.Delta)
}

// None is the identity mechanism (ε̄ = ∞ shortcut that also skips RNG use).
type None struct{}

// Perturb is a no-op.
func (None) Perturb([]float64, float64) {}

// Name returns "none".
func (None) Name() string { return "none" }

// ObjectiveNoise draws the per-round noise vector of the objective
// perturbation method (Chaudhuri, Monteleoni & Sarwate 2011; the paper's
// planned advanced scheme, Section III-B): instead of perturbing the
// released parameters, the client perturbs its local objective with a
// random linear term ⟨b, z⟩, which manifests as the constant vector b
// added to every gradient during the round. The release itself then needs
// no output noise. As shown in [27]/[28], this yields more accurate
// learning in the convex regime.
func ObjectiveNoise(mech Mechanism, dim int, sensitivity float64) []float64 {
	v := make([]float64, dim)
	mech.Perturb(v, sensitivity)
	return v
}

// ClipL2 scales v in place so its Euclidean norm is at most c, and returns
// the norm before clipping. Clipping the gradient at C is what bounds the
// sensitivity (Section III-B: ‖g‖ ≤ C allows Δ̄ = 2C/(ρ+ζ)).
func ClipL2(v []float64, c float64) float64 {
	if c <= 0 {
		panic("dp: clip bound must be positive")
	}
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	norm := math.Sqrt(s)
	if norm > c {
		f := c / norm
		for i := range v {
			v[i] *= f
		}
	}
	return norm
}

// SensitivityRule computes the output sensitivity Δ̄ of one local update,
// "computed automatically based on the dataset and algorithm chosen"
// (Section IV-A).
type SensitivityRule interface {
	// Sensitivity returns Δ̄ for the current round's hyperparameters.
	Sensitivity() float64
}

// IADMMSensitivity is the rule for the IADMM family: with gradients clipped
// at C, successive proximal iterates differ by at most 2C/(ρ+ζ) per data
// change, so Δ̄ = 2C/(ρ+ζ) (Section III-B).
type IADMMSensitivity struct {
	Clip float64 // gradient clip bound C
	Rho  float64 // penalty ρt
	Zeta float64 // proximity ζt
}

// Sensitivity returns 2C/(ρ+ζ).
func (s IADMMSensitivity) Sensitivity() float64 {
	return 2 * s.Clip / (s.Rho + s.Zeta)
}

// FedAvgSensitivity is the rule for FedAvg: an SGD step moves the iterate
// by at most η‖g‖ ≤ ηC, so a single-entry data change perturbs the output
// by at most Δ̄ = 2Cη (the paper notes FedAvg's sensitivity "depends on the
// learning rate").
type FedAvgSensitivity struct {
	Clip float64 // gradient clip bound C
	LR   float64 // learning rate η
}

// Sensitivity returns 2Cη.
func (s FedAvgSensitivity) Sensitivity() float64 {
	return 2 * s.Clip * s.LR
}

// Accountant tracks cumulative privacy loss for one client under basic
// (sequential) composition: T rounds of an ε̄-DP release consume T·ε̄.
type Accountant struct {
	spent float64
	steps int
}

// Spend records one release at eps. Infinite eps (non-private) is ignored.
func (a *Accountant) Spend(eps Epsilon) {
	if !math.IsInf(eps, 1) {
		a.spent += eps
	}
	a.steps++
}

// Spent returns the cumulative ε̄ consumed.
func (a *Accountant) Spent() float64 { return a.spent }

// Steps returns the number of releases recorded.
func (a *Accountant) Steps() int { return a.steps }
