package dp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// mustLaplace builds a Laplace mechanism or fails the test.
func mustLaplace(t testing.TB, eps Epsilon, r *rng.RNG) *Laplace {
	t.Helper()
	m, err := NewLaplace(eps, r)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustGaussian builds a Gaussian mechanism or fails the test.
func mustGaussian(t testing.TB, eps, delta float64, r *rng.RNG) *Gaussian {
	t.Helper()
	m, err := NewGaussian(eps, delta, r)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLaplaceNoiseScale(t *testing.T) {
	r := rng.New(1)
	mech := mustLaplace(t, 2.0, r)
	const n = 200000
	v := make([]float64, n)
	mech.Perturb(v, 4.0) // scale b = 4/2 = 2, Var = 2b² = 8
	mean, m2 := 0.0, 0.0
	for _, x := range v {
		mean += x
		m2 += x * x
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("noise mean %v, want ~0", mean)
	}
	if math.Abs(variance-8) > 0.5 {
		t.Fatalf("noise variance %v, want ~8", variance)
	}
}

func TestLaplaceInfinityIsNoop(t *testing.T) {
	mech := mustLaplace(t, math.Inf(1), rng.New(1))
	v := []float64{1, 2, 3}
	mech.Perturb(v, 10)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatal("eps=inf must not perturb")
	}
}

func TestLaplaceZeroSensitivityIsNoop(t *testing.T) {
	mech := mustLaplace(t, 1.0, rng.New(1))
	v := []float64{5}
	mech.Perturb(v, 0)
	if v[0] != 5 {
		t.Fatal("zero sensitivity must not perturb")
	}
}

func TestLaplaceTypedErrorOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if _, err := NewLaplace(eps, rng.New(1)); !errors.Is(err, ErrEpsilon) {
			t.Fatalf("eps=%v: want ErrEpsilon, got %v", eps, err)
		}
	}
}

// TestLaplaceDPRatioBound empirically checks the ε̄-DP guarantee of
// Definition 1 on a 1-D counting-style query: for outputs of two adjacent
// datasets (sensitivity Δ), the histogram ratio must satisfy
// |ln(P(S)/P'(S))| ≤ ε̄ within sampling error.
func TestLaplaceDPRatioBound(t *testing.T) {
	eps := 1.0
	delta := 1.0 // sensitivity
	r := rng.New(2)
	mech := mustLaplace(t, eps, r)
	const n = 400000
	// A(D) = 0 + noise, A(D') = Δ + noise.
	histA := map[int]int{}
	histB := map[int]int{}
	bin := func(x float64) int { return int(math.Floor(x)) }
	for i := 0; i < n; i++ {
		a := []float64{0}
		mech.Perturb(a, delta)
		histA[bin(a[0])]++
		b := []float64{delta}
		mech.Perturb(b, delta)
		histB[bin(b[0])]++
	}
	for k, ca := range histA {
		cb := histB[k]
		if ca < 2000 || cb < 2000 {
			continue // skip low-mass bins dominated by sampling noise
		}
		ratio := math.Abs(math.Log(float64(ca) / float64(cb)))
		// Bins have width 1 and sensitivity 1, so the log-ratio across a bin
		// can reach eps*(width+delta)/delta = 2eps in the worst case.
		if ratio > 2*eps+0.1 {
			t.Fatalf("bin %d: |log ratio| = %v exceeds bound %v", k, ratio, 2*eps+0.1)
		}
	}
}

func TestGaussianNoiseScale(t *testing.T) {
	r := rng.New(3)
	mech := mustGaussian(t, 1.0, 1e-5, r)
	const n = 100000
	v := make([]float64, n)
	mech.Perturb(v, 1.0)
	sigma := math.Sqrt(2 * math.Log(1.25/1e-5))
	m2 := 0.0
	for _, x := range v {
		m2 += x * x
	}
	variance := m2 / n
	if math.Abs(variance-sigma*sigma) > 0.1*sigma*sigma {
		t.Fatalf("gaussian variance %v, want ~%v", variance, sigma*sigma)
	}
}

func TestGaussianValidation(t *testing.T) {
	if _, err := NewGaussian(0, 0.1, rng.New(1)); !errors.Is(err, ErrEpsilon) {
		t.Fatalf("eps=0: want ErrEpsilon, got %v", err)
	}
	for _, delta := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := NewGaussian(1, delta, rng.New(1)); !errors.Is(err, ErrDelta) {
			t.Fatalf("delta=%v: want ErrDelta, got %v", delta, err)
		}
	}
}

func TestNoneMechanism(t *testing.T) {
	v := []float64{1, 2}
	var none None
	none.Perturb(v, 100)
	if v[0] != 1 || v[1] != 2 {
		t.Fatal("None must not perturb")
	}
	if none.Name() != "none" {
		t.Fatal("None name")
	}
}

func TestClipL2(t *testing.T) {
	v := []float64{3, 4} // norm 5
	norm := ClipL2(v, 1)
	if norm != 5 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	got := math.Hypot(v[0], v[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm %v, want 1", got)
	}
	// Direction preserved.
	if math.Abs(v[0]/v[1]-0.75) > 1e-12 {
		t.Fatal("clip changed direction")
	}
}

func TestClipL2NoopBelowBound(t *testing.T) {
	v := []float64{0.3, 0.4}
	ClipL2(v, 1)
	if v[0] != 0.3 || v[1] != 0.4 {
		t.Fatal("clip modified vector below the bound")
	}
}

// Property: after ClipL2(v, c) the norm never exceeds c (within FP error).
func TestClipL2Property(t *testing.T) {
	f := func(raw []float64, rawC float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := math.Abs(rawC)
		if c < 1e-9 || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 1
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = x
		}
		ClipL2(v, c)
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s) <= c*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIADMMSensitivity(t *testing.T) {
	s := IADMMSensitivity{Clip: 1.5, Rho: 2, Zeta: 1}
	if got := s.Sensitivity(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("IADMM sensitivity %v, want 2*1.5/3 = 1", got)
	}
}

func TestFedAvgSensitivity(t *testing.T) {
	s := FedAvgSensitivity{Clip: 2, LR: 0.1}
	if got := s.Sensitivity(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("FedAvg sensitivity %v, want 0.4", got)
	}
}

func TestSensitivityShrinksWithStrongerRegularization(t *testing.T) {
	// Larger ρ+ζ ⇒ smaller sensitivity ⇒ less noise for the same ε̄. This is
	// the mechanism behind IIADMM's robustness at small ε̄ in Figure 2.
	weak := IADMMSensitivity{Clip: 1, Rho: 1, Zeta: 0.5}
	strong := IADMMSensitivity{Clip: 1, Rho: 10, Zeta: 5}
	if strong.Sensitivity() >= weak.Sensitivity() {
		t.Fatal("sensitivity must decrease as ρ+ζ grows")
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	a.Spend(1)
	a.Spend(2.5)
	a.Spend(math.Inf(1)) // non-private round costs nothing
	if a.Spent() != 3.5 {
		t.Fatalf("spent %v, want 3.5", a.Spent())
	}
	if a.Steps() != 3 {
		t.Fatalf("steps %d, want 3", a.Steps())
	}
}

func TestMechanismNames(t *testing.T) {
	if mustLaplace(t, 3, rng.New(1)).Name() != "laplace(eps=3)" {
		t.Fatal("laplace name")
	}
	if mustLaplace(t, math.Inf(1), rng.New(1)).Name() != "laplace(eps=inf)" {
		t.Fatal("laplace inf name")
	}
	g := mustGaussian(t, 1, 1e-5, rng.New(1))
	if g.Name() != "gaussian(eps=1,delta=1e-05)" {
		t.Fatalf("gaussian name %q", g.Name())
	}
}

func BenchmarkLaplacePerturb(b *testing.B) {
	mech := mustLaplace(b, 1, rng.New(1))
	v := make([]float64, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech.Perturb(v, 1)
	}
}

func TestObjectiveNoiseScaleAndFreshness(t *testing.T) {
	mech := mustLaplace(t, 2, rng.New(9))
	a := ObjectiveNoise(mech, 1000, 4) // Laplace scale 2, Var 8
	b := ObjectiveNoise(mech, 1000, 4)
	var va float64
	same := 0
	for i := range a {
		va += a[i] * a[i]
		if a[i] == b[i] {
			same++
		}
	}
	va /= float64(len(a))
	if va < 4 || va > 14 {
		t.Fatalf("objective noise variance %v, want ~8", va)
	}
	if same > 2 {
		t.Fatalf("consecutive draws shared %d coordinates; noise must be fresh per round", same)
	}
	// Non-private mode: zero vector.
	z := ObjectiveNoise(mustLaplace(t, math.Inf(1), rng.New(1)), 10, 4)
	for _, v := range z {
		if v != 0 {
			t.Fatal("objective noise must vanish at eps=inf")
		}
	}
}
