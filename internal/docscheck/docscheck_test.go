// Package docscheck keeps the documentation tree honest: the CLI flag
// reference is cross-checked against the flag.* declarations in cmd/*/,
// and every relative markdown link in README.md and docs/ must resolve.
// Both checks parse source — code via go/ast, docs via their markdown
// conventions — so drift fails CI instead of rotting silently.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

const repoRoot = "../.."

// declaredFlag is one flag.X("name", default, usage) call in a command's
// sources. Literal holds the default's source value when it is a basic
// literal or true/false; non-literal defaults (computed expressions,
// named constants) are present-checked only.
type declaredFlag struct {
	name    string
	literal string // "" when the default is not a literal
}

var flagCtors = map[string]bool{
	"String": true, "Int": true, "Bool": true, "Float64": true,
	"Uint64": true, "Int64": true, "Uint": true, "Duration": true,
}

// commandFlags parses every non-test .go file of cmd/<name> and returns
// its flag declarations in source order.
func commandFlags(t *testing.T, cmd string) []declaredFlag {
	t.Helper()
	dir := filepath.Join(repoRoot, "cmd", cmd)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var flags []declaredFlag
	fset := token.NewFileSet()
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagCtors[sel.Sel.Name] {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "flag" {
				return true
			}
			nameLit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || nameLit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(nameLit.Value)
			if err != nil {
				return true
			}
			flags = append(flags, declaredFlag{name: name, literal: literalDefault(call.Args[1])})
			return true
		})
	}
	if len(flags) == 0 {
		t.Fatalf("no flag declarations found in cmd/%s", cmd)
	}
	return flags
}

// literalDefault renders a flag default that the docs can be compared
// against: basic literals (with int underscores stripped, strings
// unquoted) and the true/false idents. Anything computed returns "".
func literalDefault(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.BasicLit:
		switch v.Kind {
		case token.INT:
			return strings.ReplaceAll(v.Value, "_", "")
		case token.FLOAT:
			return v.Value
		case token.STRING:
			s, err := strconv.Unquote(v.Value)
			if err != nil {
				return ""
			}
			if s == "" {
				return `""`
			}
			return s
		}
	case *ast.Ident:
		if v.Name == "true" || v.Name == "false" {
			return v.Name
		}
	}
	return ""
}

// docRow matches a flags.md table row: | `-name` | `default` | meaning |
var docRow = regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|\\s*`([^`]*)`\\s*\\|")

// docFlags parses docs/flags.md into per-command flag tables, keyed by
// the `## <command>` section each row appears under.
func docFlags(t *testing.T) map[string]map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(repoRoot, "docs", "flags.md"))
	if err != nil {
		t.Fatalf("reading docs/flags.md: %v", err)
	}
	out := make(map[string]map[string]string)
	section := ""
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "## "); ok {
			section = strings.TrimSpace(rest)
			out[section] = make(map[string]string)
			continue
		}
		m := docRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if section == "" {
			t.Fatalf("docs/flags.md: flag row %q before any ## command section", line)
		}
		if _, dup := out[section][m[1]]; dup {
			t.Errorf("docs/flags.md: %s documents -%s twice", section, m[1])
		}
		out[section][m[1]] = m[2]
	}
	return out
}

// TestFlagsDocCurrent is the drift gate for docs/flags.md: every flag a
// command declares must be documented under that command's section with
// the right default, and every documented flag must exist in code.
func TestFlagsDocCurrent(t *testing.T) {
	docs := docFlags(t)
	cmdDir, err := os.ReadDir(filepath.Join(repoRoot, "cmd"))
	if err != nil {
		t.Fatalf("reading cmd/: %v", err)
	}
	var cmds []string
	for _, e := range cmdDir {
		if e.IsDir() {
			cmds = append(cmds, e.Name())
		}
	}
	if len(cmds) == 0 {
		t.Fatal("no commands under cmd/")
	}
	for _, cmd := range cmds {
		declared := commandFlags(t, cmd)
		documented, ok := docs[cmd]
		if !ok {
			t.Errorf("docs/flags.md has no ## %s section", cmd)
			continue
		}
		seen := make(map[string]bool, len(declared))
		for _, df := range declared {
			seen[df.name] = true
			got, ok := documented[df.name]
			if !ok {
				t.Errorf("cmd/%s declares -%s but docs/flags.md does not document it", cmd, df.name)
				continue
			}
			if df.literal != "" && got != df.literal {
				t.Errorf("docs/flags.md: %s -%s documents default `%s`, code declares %s",
					cmd, df.name, got, df.literal)
			}
		}
		for name := range documented {
			if !seen[name] {
				t.Errorf("docs/flags.md documents %s -%s, which cmd/%s does not declare", cmd, name, cmd)
			}
		}
	}
	for section := range docs {
		if len(docs[section]) == 0 {
			continue // prose-only section
		}
		found := false
		for _, cmd := range cmds {
			if section == cmd {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("docs/flags.md section ## %s matches no directory under cmd/", section)
		}
	}
}

// mdLink matches inline markdown link targets; bare-URL and reference
// styles are not used in this tree.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// anchorSlug reproduces GitHub's heading→anchor rule: lowercase, drop
// everything but letters/digits/spaces/hyphens, spaces to hyphens.
func anchorSlug(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

func headings(raw string) map[string]bool {
	out := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		trimmed := strings.TrimLeft(line, "#")
		if trimmed != line && strings.HasPrefix(trimmed, " ") {
			out[anchorSlug(strings.ReplaceAll(trimmed, "`", ""))] = true
		}
	}
	return out
}

// TestDocsRelativeLinks fails on any broken relative link — missing
// file or unknown heading anchor — in README.md and docs/*.md.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{filepath.Join(repoRoot, "README.md")}
	docsGlob, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docsGlob) == 0 {
		t.Fatal("no markdown files under docs/")
	}
	files = append(files, docsGlob...)

	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				info, err := os.Stat(resolved)
				if err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
				if frag != "" && info.IsDir() {
					t.Errorf("%s: link %q anchors into a directory", file, target)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				body, err := os.ReadFile(resolved)
				if err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
				if !headings(string(body))[frag] {
					t.Errorf("%s: link %q names an anchor %s has no heading for", file, target, resolved)
				}
			}
		}
	}
}

// TestDocsPagesExist pins the documentation tree the README links to.
func TestDocsPagesExist(t *testing.T) {
	for _, page := range []string{"architecture.md", "operations.md", "flags.md"} {
		if _, err := os.Stat(filepath.Join(repoRoot, "docs", page)); err != nil {
			t.Errorf("docs/%s: %v", page, err)
		}
	}
	readme, err := os.ReadFile(filepath.Join(repoRoot, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range []string{"docs/architecture.md", "docs/operations.md", "docs/flags.md"} {
		if !strings.Contains(string(readme), page) {
			t.Errorf("README.md does not link %s", page)
		}
	}
}
