package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// CommVolumeRow records one algorithm's measured traffic.
type CommVolumeRow struct {
	Algorithm string
	UploadB   uint64 // client→server bytes over the whole run
	DownloadB uint64 // server→client bytes
	// UploadPerClientRound is upload bytes normalized by clients×rounds×
	// model bytes — 1.0 means "one model per client per round".
	UploadPerClientRound float64
}

// CommVolumeOptions scales the measurement run.
type CommVolumeOptions struct {
	Clients int
	Rounds  int
	Seed    uint64
}

// CommVolume measures the Section III-A claim with real transports and
// byte accounting: FedAvg and IIADMM upload exactly one model per client
// per round, ICEADMM uploads two (primal + dual).
func CommVolume(o CommVolumeOptions) ([]CommVolumeRow, *metrics.Table, error) {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	train, test := dataset.MNIST(dataset.SynthConfig{Train: 64 * o.Clients, Test: 32, Seed: o.Seed})
	shards := dataset.PartitionIID(train, o.Clients, rng.New(o.Seed))
	fed := &dataset.Federated{Clients: shards, Test: test}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{16}, 10, rng.New(o.Seed+5)) }
	modelBytes := 8 * nn.NumParams(factory())

	var rows []CommVolumeRow
	t := metrics.NewTable(
		"Communication volume per algorithm (measured on the wire)",
		"algorithm", "upload bytes", "download bytes", "models uploaded / client / round",
	)
	for _, algo := range []string{core.AlgoFedAvg, core.AlgoICEADMM, core.AlgoIIADMM} {
		cfg := core.Config{Algorithm: algo, Rounds: o.Rounds, LocalSteps: 1, BatchSize: 64, Seed: o.Seed}
		res, err := core.Run(cfg, fed, factory, core.RunOptions{})
		if err != nil {
			return nil, nil, err
		}
		norm := float64(res.UploadsB) / float64(o.Clients*o.Rounds*modelBytes)
		rows = append(rows, CommVolumeRow{
			Algorithm:            algo,
			UploadB:              res.UploadsB,
			DownloadB:            res.DownloadsB,
			UploadPerClientRound: norm,
		})
		t.AddRow(algo, fmt.Sprintf("%d", res.UploadsB), fmt.Sprintf("%d", res.DownloadsB), fmt.Sprintf("%.3f", norm))
	}
	return rows, t, nil
}
