package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// CommVolumeRow records one configuration's measured traffic.
type CommVolumeRow struct {
	Algorithm string
	// Pipeline is the update-pipeline spec of the run ("" = dense legacy).
	Pipeline  string
	UploadB   uint64 // client→server bytes over the whole run
	DownloadB uint64 // server→client bytes
	// UploadPerClientRound is upload bytes normalized by clients×rounds×
	// model bytes — 1.0 means "one model per client per round".
	UploadPerClientRound float64
	// UploadBPerRound is the raw client→server bytes per communication
	// round, the quantity the compression stages shrink.
	UploadBPerRound float64
}

// CommVolumeOptions scales the measurement run.
type CommVolumeOptions struct {
	Clients int
	Rounds  int
	Seed    uint64
}

// CommVolumePipelines is the default set of update-pipeline stacks the
// compression comparison measures against the dense baseline.
var CommVolumePipelines = []string{
	"clip:1,topk:0.1",
	"clip:1,quantize:8",
	"clip:1,f16",
}

// CommVolume measures the Section III-A claim with real transports and
// byte accounting — FedAvg and IIADMM upload exactly one model per client
// per round, ICEADMM uploads two (primal + dual) — and then re-measures
// FedAvg under the compression stacks of the update pipeline, reporting
// uploaded bytes per round with and without compression.
func CommVolume(o CommVolumeOptions) ([]CommVolumeRow, *metrics.Table, error) {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	train, test := dataset.MNIST(dataset.SynthConfig{Train: 64 * o.Clients, Test: 32, Seed: o.Seed})
	shards := dataset.PartitionIID(train, o.Clients, rng.New(o.Seed))
	fed := &dataset.Federated{Clients: shards, Test: test}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{16}, 10, rng.New(o.Seed+5)) }
	modelBytes := 8 * nn.NumParams(factory())

	var rows []CommVolumeRow
	t := metrics.NewTable(
		"Communication volume per algorithm and pipeline (measured on the wire)",
		"algorithm", "pipeline", "upload bytes", "upload B/round", "download bytes", "models uploaded / client / round",
	)
	measure := func(algo, pipe string) error {
		cfg := core.Config{Algorithm: algo, Rounds: o.Rounds, LocalSteps: 1, BatchSize: 64, Seed: o.Seed, Pipeline: pipe}
		res, err := core.Run(cfg, fed, factory, core.RunOptions{Transport: core.TransportRPC})
		if err != nil {
			return err
		}
		norm := float64(res.UploadsB) / float64(o.Clients*o.Rounds*modelBytes)
		perRound := float64(res.UploadsB) / float64(o.Rounds)
		rows = append(rows, CommVolumeRow{
			Algorithm:            algo,
			Pipeline:             pipe,
			UploadB:              res.UploadsB,
			DownloadB:            res.DownloadsB,
			UploadPerClientRound: norm,
			UploadBPerRound:      perRound,
		})
		label := pipe
		if label == "" {
			label = "dense"
		}
		t.AddRow(algo, label, fmt.Sprintf("%d", res.UploadsB), fmt.Sprintf("%.0f", perRound),
			fmt.Sprintf("%d", res.DownloadsB), fmt.Sprintf("%.3f", norm))
		return nil
	}
	for _, algo := range []string{core.AlgoFedAvg, core.AlgoICEADMM, core.AlgoIIADMM} {
		if err := measure(algo, ""); err != nil {
			return nil, nil, err
		}
	}
	for _, pipe := range CommVolumePipelines {
		if err := measure(core.AlgoFedAvg, pipe); err != nil {
			return nil, nil, err
		}
	}
	return rows, t, nil
}
