package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Fig4Options parameterizes the communication study of Section IV-D:
// 203 clients exchange a model with the server over 49 rounds (the first
// round is excluded in the paper because it includes compile time), once
// with RDMA-enabled MPI and once with gRPC over TCP.
type Fig4Options struct {
	Clients    int   // paper: 203
	Rounds     int   // paper: 49 measured rounds
	ModelDim   int   // parameters per update (paper-scale CNN ≈ 600k)
	BoxClients []int // clients sampled for the Fig. 4b box plot
	Seed       uint64
	// MeasureCodec, when true, measures this repository's real wire-codec
	// throughput on one update and uses it as the serialization rate of the
	// gRPC link, grounding the model in a measured quantity.
	MeasureCodec bool
}

func (o Fig4Options) withDefaults() Fig4Options {
	if o.Clients == 0 {
		o.Clients = 203
	}
	if o.Rounds == 0 {
		o.Rounds = 49
	}
	if o.ModelDim == 0 {
		o.ModelDim = 600_000
	}
	if len(o.BoxClients) == 0 {
		o.BoxClients = []int{1, 5, 100, 150, 200}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fig4Client is one client's cumulative communication time under both
// transports (Fig. 4a: one point per client ID).
type Fig4Client struct {
	ClientID     int
	MPICumSec    float64
	GRPCCumSec   float64
	GRPCPerRound []float64 // retained for the box-plot sample
}

// Fig4Result aggregates the communication study.
type Fig4Result struct {
	PerClient []Fig4Client
	// MeanRatio is mean(gRPC cumulative) / mean(MPI cumulative); the paper
	// reports MPI "up to 10 times faster".
	MeanRatio float64
	// Boxes are the Fig. 4b five-number summaries for the sampled clients.
	Boxes map[int]metrics.Box
	// MaxSpread is the largest max/min round-time factor across sampled
	// clients; the paper reports ≈30×.
	MaxSpread float64
	// SerializeBps is the serialization rate used for the gRPC link.
	SerializeBps float64
}

// measureCodecThroughput encodes+decodes one paper-scale update and
// returns the achieved bytes/second (counting the payload once).
func measureCodecThroughput(dim int) float64 {
	u := wire.LocalUpdate{Primal: make([]float64, dim)}
	e := wire.NewEncoder(make([]byte, 0, dim*8+64))
	// Warm-up + measure over a few repetitions using the wall clock.
	reps := 3
	start := nowSec()
	for i := 0; i < reps; i++ {
		e = wire.NewEncoder(e.Bytes())
		u.Marshal(e)
		var out wire.LocalUpdate
		if err := out.Unmarshal(wire.NewDecoder(e.Bytes())); err != nil {
			panic(err)
		}
	}
	elapsed := nowSec() - start
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	// Each rep serializes and deserializes once: 2 passes over the buffer.
	return float64(2*reps*e.Len()) / elapsed
}

// Fig4 runs the study and returns per-client cumulative times (Fig. 4a),
// box statistics (Fig. 4b), and a rendered table.
func Fig4(o Fig4Options) (*Fig4Result, *metrics.Table) {
	o = o.withDefaults()
	bytesPerMsg := 8 * o.ModelDim

	mpiLink := simnet.RDMALink()
	grpcLink := simnet.TCPLink()
	if o.MeasureCodec {
		grpcLink.SerializeBps = measureCodecThroughput(o.ModelDim)
	}

	master := rng.New(o.Seed)
	res := &Fig4Result{Boxes: map[int]metrics.Box{}, SerializeBps: grpcLink.SerializeBps}
	boxSet := map[int]bool{}
	for _, c := range o.BoxClients {
		boxSet[c] = true
	}

	var mpiSum, grpcSum float64
	for c := 0; c < o.Clients; c++ {
		cr := master.Split()
		fc := Fig4Client{ClientID: c}
		keepRounds := boxSet[c]
		if keepRounds {
			fc.GRPCPerRound = make([]float64, 0, o.Rounds)
		}
		for r := 0; r < o.Rounds; r++ {
			// Each round a client downloads w and uploads z: two messages.
			mpiT := mpiLink.TransferTime(bytesPerMsg, nil) * 2
			grpcT := grpcLink.TransferTime(bytesPerMsg, cr) + grpcLink.TransferTime(bytesPerMsg, cr)
			fc.MPICumSec += mpiT
			fc.GRPCCumSec += grpcT
			if keepRounds {
				fc.GRPCPerRound = append(fc.GRPCPerRound, grpcT)
			}
		}
		mpiSum += fc.MPICumSec
		grpcSum += fc.GRPCCumSec
		res.PerClient = append(res.PerClient, fc)
	}
	res.MeanRatio = grpcSum / mpiSum
	for _, c := range o.BoxClients {
		if c < len(res.PerClient) && res.PerClient[c].GRPCPerRound != nil {
			box := metrics.BoxStats(res.PerClient[c].GRPCPerRound)
			res.Boxes[c] = box
			if s := box.Spread(); s > res.MaxSpread {
				res.MaxSpread = s
			}
		}
	}

	t := metrics.NewTable(
		"Figure 4: communication times of gRPC and MPI (cumulative over rounds; box stats per sampled client)",
		"client", "MPI cum (s)", "gRPC cum (s)", "ratio", "gRPC min (s)", "median", "max", "spread",
	)
	for _, c := range o.BoxClients {
		if c >= len(res.PerClient) {
			continue
		}
		pc := res.PerClient[c]
		b := res.Boxes[c]
		t.AddRow(
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%.3f", pc.MPICumSec),
			fmt.Sprintf("%.3f", pc.GRPCCumSec),
			fmt.Sprintf("%.1f", pc.GRPCCumSec/pc.MPICumSec),
			fmt.Sprintf("%.4f", b.Min),
			fmt.Sprintf("%.4f", b.Median),
			fmt.Sprintf("%.4f", b.Max),
			fmt.Sprintf("%.1f", b.Spread()),
		)
	}
	return res, t
}
