package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Fig2Options scales the Figure 2 reproduction: test accuracy under
// ε̄ ∈ {3, 5, 10, ∞} for FedAvg, ICEADMM, and IIADMM on MNIST, CIFAR-10,
// FEMNIST, and CoronaHack (12 panels). Defaults are laptop-scale; the
// paper-scale geometry (203 FEMNIST writers, T=50 rounds, full datasets)
// is reachable through the fields.
type Fig2Options struct {
	Datasets   []string  // subset of mnist, cifar10, femnist, coronahack
	Algorithms []string  // subset of fedavg, iceadmm, iiadmm
	Epsilons   []float64 // privacy budgets; +Inf = non-private
	Rounds     int       // T (paper: 50; default 8)
	LocalSteps int       // L (paper and default: 10)
	TrainSize  int       // per-dataset training samples (default 480)
	TestSize   int       // test samples (default 160)
	Clients    int       // clients for the IID datasets (paper and default: 4)
	Writers    int       // FEMNIST writers (paper: 203; default 16)
	Seed       uint64
}

func (o Fig2Options) withDefaults() Fig2Options {
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"mnist", "cifar10", "femnist", "coronahack"}
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = []string{core.AlgoFedAvg, core.AlgoICEADMM, core.AlgoIIADMM}
	}
	if len(o.Epsilons) == 0 {
		o.Epsilons = []float64{3, 5, 10, math.Inf(1)}
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	if o.LocalSteps == 0 {
		o.LocalSteps = 10
	}
	if o.TrainSize == 0 {
		o.TrainSize = 480
	}
	if o.TestSize == 0 {
		o.TestSize = 160
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Writers == 0 {
		o.Writers = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fig2Point is one curve of one panel: a (dataset, algorithm, ε̄) cell with
// its accuracy trajectory.
type Fig2Point struct {
	Dataset   string
	Algorithm string
	Epsilon   float64
	AccByRnd  []float64
	FinalAcc  float64
}

// buildFederation materializes the named dataset at the configured scale.
func buildFederation(name string, o Fig2Options) (*dataset.Federated, nn.Factory, error) {
	mk := func(train, test *dataset.InMemory, cfg nn.CNNConfig) (*dataset.Federated, nn.Factory) {
		shards := dataset.PartitionIID(train, o.Clients, rng.New(o.Seed+77))
		fed := &dataset.Federated{Clients: shards, Test: test}
		factory := func() nn.Module { return nn.NewCNN(cfg, rng.New(o.Seed+123)) }
		return fed, factory
	}
	// Laptop-scale CNN widths; the architecture (2 conv, maxpool, ReLU,
	// 2 linear) matches Section IV-A.
	switch name {
	case "mnist":
		train, test := dataset.MNIST(dataset.SynthConfig{Train: o.TrainSize, Test: o.TestSize, Seed: o.Seed})
		fed, f := mk(train, test, nn.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10, Conv1: 4, Conv2: 8, Kernel: 5, Hidden: 32})
		return fed, f, nil
	case "cifar10":
		train, test := dataset.CIFAR10(dataset.SynthConfig{Train: o.TrainSize, Test: o.TestSize, Seed: o.Seed})
		fed, f := mk(train, test, nn.CNNConfig{InChannels: 3, Height: 32, Width: 32, Classes: 10, Conv1: 4, Conv2: 8, Kernel: 5, Hidden: 32})
		return fed, f, nil
	case "coronahack":
		train, test := dataset.CoronaHack(dataset.SynthConfig{Train: o.TrainSize, Test: o.TestSize, Seed: o.Seed})
		fed, f := mk(train, test, nn.CNNConfig{InChannels: 1, Height: 64, Width: 64, Classes: 3, Conv1: 4, Conv2: 8, Kernel: 5, Hidden: 32})
		return fed, f, nil
	case "femnist":
		spw := o.TrainSize / o.Writers
		if spw < 4 {
			spw = 4
		}
		fed := dataset.FEMNIST(dataset.FEMNISTConfig{
			Writers:          o.Writers,
			SamplesPerWriter: spw,
			SynthConfig:      dataset.SynthConfig{Test: o.TestSize, Seed: o.Seed},
		})
		cfg := nn.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 62, Conv1: 4, Conv2: 8, Kernel: 5, Hidden: 32}
		factory := func() nn.Module { return nn.NewCNN(cfg, rng.New(o.Seed+123)) }
		return fed, factory, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// Fig2 runs the privacy/utility sweep and returns one point per panel
// curve plus a rendered summary table matching the paper's panel layout.
func Fig2(o Fig2Options) ([]Fig2Point, *metrics.Table, error) {
	o = o.withDefaults()
	var points []Fig2Point
	table := metrics.NewTable(
		"Figure 2: test accuracy under varying privacy budgets",
		"dataset", "algorithm", "epsilon", "final accuracy",
	)
	for _, ds := range o.Datasets {
		fed, factory, err := buildFederation(ds, o)
		if err != nil {
			return nil, nil, err
		}
		for _, algo := range o.Algorithms {
			for _, eps := range o.Epsilons {
				cfg := core.Config{
					Algorithm:  algo,
					Rounds:     o.Rounds,
					LocalSteps: o.LocalSteps,
					BatchSize:  64, // "each batch ... at most 64 data points"
					Epsilon:    eps,
					Seed:       o.Seed,
				}
				res, err := core.Run(cfg, fed, factory, core.RunOptions{})
				if err != nil {
					return nil, nil, fmt.Errorf("fig2 %s/%s/eps=%v: %w", ds, algo, eps, err)
				}
				accs := make([]float64, len(res.Rounds))
				for i, r := range res.Rounds {
					accs[i] = r.TestAcc
				}
				p := Fig2Point{Dataset: ds, Algorithm: algo, Epsilon: eps, AccByRnd: accs, FinalAcc: res.FinalAcc}
				points = append(points, p)
				table.AddRow(ds, algo, epsString(eps), fmt.Sprintf("%.4f", res.FinalAcc))
			}
		}
	}
	return points, table, nil
}

func epsString(eps float64) string {
	if math.IsInf(eps, 1) {
		return "inf"
	}
	return fmt.Sprintf("%g", eps)
}
