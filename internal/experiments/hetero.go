package experiments

import (
	"fmt"
	"time"

	"repro/internal/hetero"
	"repro/internal/metrics"
)

// nowSec is the wall clock used by measurement helpers.
func nowSec() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// HeteroRow is one device of the Section IV-E comparison.
type HeteroRow struct {
	Device         string
	LocalUpdateSec float64
	SpeedupVsV100  float64
}

// HeteroResult carries the heterogeneous-architecture study.
type HeteroResult struct {
	Rows []HeteroRow
	// ImbalanceFactor is the synchronous-round slowdown of a mixed
	// A100+V100 federation versus an all-A100 one: the round waits for the
	// slowest device.
	ImbalanceFactor float64
}

// Hetero reproduces Section IV-E: the same local update on an A100
// (Argonne Swing) versus a V100 (Oak Ridge Summit), and the load imbalance
// a cross-silo federation mixing them suffers.
func Hetero() (*HeteroResult, *metrics.Table) {
	devices := []hetero.Device{hetero.A100, hetero.V100}
	res := &HeteroResult{}
	for _, d := range devices {
		res.Rows = append(res.Rows, HeteroRow{
			Device:         d.Name,
			LocalUpdateSec: d.Seconds(1),
			SpeedupVsV100:  d.SpeedupOver(hetero.V100),
		})
	}
	// Synchronous round over one A100 client and one V100 client: the round
	// time is the V100's; an all-A100 federation finishes in the A100's.
	mixed := hetero.MaxCompletion([]float64{1, 1}, []hetero.Device{hetero.A100, hetero.V100})
	fast := hetero.MaxCompletion([]float64{1, 1}, []hetero.Device{hetero.A100, hetero.A100})
	res.ImbalanceFactor = mixed / fast

	t := metrics.NewTable(
		"Section IV-E: impact of heterogeneous architectures (one paper-scale local update)",
		"device", "local update (s)", "speedup vs V100",
	)
	for _, r := range res.Rows {
		t.AddRow(r.Device, fmt.Sprintf("%.2f", r.LocalUpdateSec), fmt.Sprintf("%.2f", r.SpeedupVsV100))
	}
	t.AddRow("mixed-cluster imbalance", fmt.Sprintf("%.2fx", res.ImbalanceFactor), "")
	return res, t
}
