package experiments

import (
	"fmt"

	"repro/internal/hetero"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Fig3Options parameterizes the strong-scaling study of Section IV-C:
// 203 FEMNIST clients are divided equally across an increasing number of
// MPI ranks on Summit (one V100 per rank) and the per-round local-update
// time (compute + MPI.gather) is measured.
type Fig3Options struct {
	Clients      int     // total FL clients (paper: 203)
	Ranks        []int   // MPI process counts (paper: 5,11,24,50,101,203)
	ModelBytes   int     // per-client update size (paper-scale CNN ≈ 4.8 MB)
	PerClientSec float64 // one local update on the rank's GPU (V100: 6.96 s)
	Collective   simnet.Collective
}

func (o Fig3Options) withDefaults() Fig3Options {
	if o.Clients == 0 {
		o.Clients = 203
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{5, 11, 24, 50, 101, 203}
	}
	if o.ModelBytes == 0 {
		o.ModelBytes = 4_800_000
	}
	if o.PerClientSec == 0 {
		o.PerClientSec = hetero.V100.Seconds(1)
	}
	if o.Collective == (simnet.Collective{}) {
		o.Collective = simnet.DefaultCollective()
	}
	return o
}

// Fig3Row is one rank-count of the sweep.
type Fig3Row struct {
	Ranks          int
	ClientsPerRank int     // ceiling share (the busiest rank)
	ComputeSec     float64 // per-round local-update compute on busiest rank
	GatherSec      float64 // per-round MPI.gather() time
	TotalSec       float64
	Speedup        float64 // relative to the first rank count
	IdealSpeedup   float64
	GatherPct      float64 // Fig. 3b: 100 × gather / (gather + compute)
}

// Fig3 computes the strong-scaling table (Fig. 3a) and gather percentages
// (Fig. 3b) from the calibrated cost model.
func Fig3(o Fig3Options) ([]Fig3Row, *metrics.Table) {
	o = o.withDefaults()
	rows := make([]Fig3Row, 0, len(o.Ranks))
	for _, n := range o.Ranks {
		cpr := (o.Clients + n - 1) / n
		compute := float64(cpr) * o.PerClientSec
		gather := o.Collective.Gather(n, cpr*o.ModelBytes)
		total := compute + gather
		rows = append(rows, Fig3Row{
			Ranks:          n,
			ClientsPerRank: cpr,
			ComputeSec:     compute,
			GatherSec:      gather,
			TotalSec:       total,
			GatherPct:      100 * gather / total,
		})
	}
	base := rows[0]
	for i := range rows {
		rows[i].Speedup = base.TotalSec / rows[i].TotalSec
		rows[i].IdealSpeedup = float64(rows[i].Ranks) / float64(base.Ranks)
	}
	t := metrics.NewTable(
		"Figure 3: strong scaling of local updates on the FEMNIST dataset",
		"ranks", "clients/rank", "compute (s)", "gather (s)", "total (s)", "speedup", "ideal", "gather %",
	)
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Ranks),
			fmt.Sprintf("%d", r.ClientsPerRank),
			fmt.Sprintf("%.2f", r.ComputeSec),
			fmt.Sprintf("%.2f", r.GatherSec),
			fmt.Sprintf("%.2f", r.TotalSec),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%.2f", r.IdealSpeedup),
			fmt.Sprintf("%.1f", r.GatherPct),
		)
	}
	return rows, t
}
