// Package experiments contains one driver per artifact of the paper's
// evaluation: Table I (framework comparison), Figure 2 (privacy/utility
// across algorithms and datasets), Figure 3 (MPI strong scaling and gather
// fraction), Figure 4 (gRPC vs MPI communication time), the Section IV-E
// heterogeneous-device comparison, and the Section III-A communication-
// volume claim. Every driver returns both structured results and a
// rendered metrics.Table, and is invoked by cmd/appfl-bench and by the
// repository-level benchmarks.
package experiments

import "repro/internal/metrics"

// Capability describes one framework row of Table I.
type Capability struct {
	Framework   string
	DataPrivacy bool
	MPI         bool
	GRPC        bool
	MQTT        bool
}

// Table1Data returns the capability matrix exactly as printed in the
// paper's Table I ("Comparison of APPFL with some of the existing
// open-source FL frameworks"). For this Go reproduction, APPFL's gRPC and
// MQTT entries are realized by the rpc and pubsub substitutes.
func Table1Data() []Capability {
	return []Capability{
		{Framework: "OpenFL", DataPrivacy: false, MPI: false, GRPC: true, MQTT: false},
		{Framework: "FedML", DataPrivacy: true, MPI: true, GRPC: true, MQTT: true},
		{Framework: "TFF", DataPrivacy: true, MPI: false, GRPC: false, MQTT: false},
		{Framework: "PySyft", DataPrivacy: false, MPI: false, GRPC: false, MQTT: false},
		{Framework: "APPFL", DataPrivacy: true, MPI: true, GRPC: true, MQTT: true},
	}
}

// Table1 renders the capability matrix. Note: the paper marks APPFL's MQTT
// as "TBD"; this reproduction implements it (comm/pubsub), which the cell
// annotation records.
func Table1() *metrics.Table {
	t := metrics.NewTable(
		"Table I: Comparison of APPFL with existing open-source FL frameworks",
		"Framework", "Data privacy", "MPI", "gRPC", "MQTT",
	)
	check := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, c := range Table1Data() {
		mqtt := check(c.MQTT)
		if c.Framework == "APPFL" {
			mqtt = "yes (paper: TBD)"
		}
		t.AddRow(c.Framework, check(c.DataPrivacy), check(c.MPI), check(c.GRPC), mqtt)
	}
	return t
}
