package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTable1MatchesPaper(t *testing.T) {
	data := Table1Data()
	if len(data) != 5 {
		t.Fatalf("Table I has %d frameworks, want 5", len(data))
	}
	byName := map[string]Capability{}
	for _, c := range data {
		byName[c.Framework] = c
	}
	appfl := byName["APPFL"]
	if !appfl.DataPrivacy || !appfl.MPI || !appfl.GRPC || !appfl.MQTT {
		t.Fatalf("APPFL row wrong: %+v", appfl)
	}
	if byName["OpenFL"].DataPrivacy || !byName["OpenFL"].GRPC {
		t.Fatalf("OpenFL row wrong: %+v", byName["OpenFL"])
	}
	if !byName["FedML"].MPI || !byName["FedML"].MQTT {
		t.Fatalf("FedML row wrong: %+v", byName["FedML"])
	}
	if !byName["TFF"].DataPrivacy || byName["TFF"].MPI {
		t.Fatalf("TFF row wrong: %+v", byName["TFF"])
	}
	out := Table1().String()
	if !strings.Contains(out, "APPFL") || !strings.Contains(out, "PySyft") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestFig3ShapesMatchPaper(t *testing.T) {
	rows, table := Fig3(Fig3Options{})
	if len(rows) != 6 {
		t.Fatalf("rank sweep has %d entries, want 6", len(rows))
	}
	// Speedup normalized at the first point.
	if rows[0].Speedup != 1 || rows[0].IdealSpeedup != 1 {
		t.Fatalf("base row not normalized: %+v", rows[0])
	}
	// Monotone speedup, always below ideal beyond the base point, with the
	// gap widening (the Fig. 3a deterioration).
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Fatalf("speedup not monotone at %d ranks", rows[i].Ranks)
		}
		if rows[i].Speedup >= rows[i].IdealSpeedup {
			t.Fatalf("speedup above ideal at %d ranks", rows[i].Ranks)
		}
	}
	effFirst := rows[1].Speedup / rows[1].IdealSpeedup
	effLast := rows[len(rows)-1].Speedup / rows[len(rows)-1].IdealSpeedup
	if effLast >= effFirst {
		t.Fatalf("parallel efficiency should deteriorate: %v -> %v", effFirst, effLast)
	}
	// Fig. 3b: gather fraction rises from ~5% to ~30%.
	if rows[0].GatherPct < 2 || rows[0].GatherPct > 10 {
		t.Fatalf("gather%% at 5 ranks = %v, want ~5", rows[0].GatherPct)
	}
	last := rows[len(rows)-1].GatherPct
	if last < 20 || last > 40 {
		t.Fatalf("gather%% at 203 ranks = %v, want ~30", last)
	}
	// Gather time shrinks far less than the 41x payload shrink.
	shrink := rows[0].GatherSec / rows[len(rows)-1].GatherSec
	if shrink > 15 {
		t.Fatalf("gather shrink %v, paper reports ~8", shrink)
	}
	// Compute scales perfectly (41x fewer clients per rank → 41x faster).
	compShrink := rows[0].ComputeSec / rows[len(rows)-1].ComputeSec
	if math.Abs(compShrink-41) > 1 {
		t.Fatalf("compute shrink %v, want ~41 (perfect scaling)", compShrink)
	}
	if !strings.Contains(table.String(), "speedup") {
		t.Fatal("table render incomplete")
	}
}

func TestFig4ShapesMatchPaper(t *testing.T) {
	res, table := Fig4(Fig4Options{Seed: 3})
	if len(res.PerClient) != 203 {
		t.Fatalf("per-client series has %d entries", len(res.PerClient))
	}
	// Paper: MPI up to 10x faster than gRPC.
	if res.MeanRatio < 5 || res.MeanRatio > 20 {
		t.Fatalf("gRPC/MPI mean ratio %v, want ~10", res.MeanRatio)
	}
	// Every sampled client has box stats over the 49 rounds.
	if len(res.Boxes) != 5 {
		t.Fatalf("box stats for %d clients, want 5", len(res.Boxes))
	}
	for id, b := range res.Boxes {
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Fatalf("client %d box not ordered: %+v", id, b)
		}
	}
	// Paper: round-to-round spread by a factor ~30 (we accept >= 5 given
	// only 49 samples per client).
	if res.MaxSpread < 5 {
		t.Fatalf("max spread %v, want >= 5", res.MaxSpread)
	}
	// MPI cumulative time must be deterministic across clients.
	first := res.PerClient[0].MPICumSec
	for _, pc := range res.PerClient {
		if pc.MPICumSec != first {
			t.Fatal("MPI cumulative time should be identical across clients")
		}
		if pc.GRPCCumSec <= pc.MPICumSec {
			t.Fatalf("client %d: gRPC (%v) not slower than MPI (%v)", pc.ClientID, pc.GRPCCumSec, pc.MPICumSec)
		}
	}
	if !strings.Contains(table.String(), "spread") {
		t.Fatal("table render incomplete")
	}
}

func TestFig4MeasuredCodexThroughput(t *testing.T) {
	res, _ := Fig4(Fig4Options{Clients: 8, Rounds: 10, ModelDim: 50_000, BoxClients: []int{1, 5}, MeasureCodec: true, Seed: 2})
	if res.SerializeBps < 1e7 {
		t.Fatalf("measured codec throughput %v B/s implausibly low", res.SerializeBps)
	}
	if res.MeanRatio <= 1 {
		t.Fatalf("gRPC should remain slower with measured codec: ratio %v", res.MeanRatio)
	}
}

func TestHeteroMatchesPaper(t *testing.T) {
	res, table := Hetero()
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	var a100, v100 HeteroRow
	for _, r := range res.Rows {
		switch r.Device {
		case "A100":
			a100 = r
		case "V100":
			v100 = r
		}
	}
	if math.Abs(v100.LocalUpdateSec-6.96) > 1e-9 {
		t.Fatalf("V100 %v s, want 6.96", v100.LocalUpdateSec)
	}
	if math.Abs(a100.SpeedupVsV100-1.64) > 1e-9 {
		t.Fatalf("A100 speedup %v, want 1.64", a100.SpeedupVsV100)
	}
	if math.Abs(res.ImbalanceFactor-1.64) > 1e-9 {
		t.Fatalf("imbalance %v, want 1.64", res.ImbalanceFactor)
	}
	if !strings.Contains(table.String(), "A100") {
		t.Fatal("table render incomplete")
	}
}

func TestCommVolumeMatchesClaim(t *testing.T) {
	rows, table, err := CommVolume(CommVolumeOptions{Clients: 2, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string]CommVolumeRow{}
	byPipe := map[string]CommVolumeRow{}
	for _, r := range rows {
		if r.Pipeline == "" {
			byAlgo[r.Algorithm] = r
		} else {
			byPipe[r.Pipeline] = r
		}
	}
	// FedAvg and IIADMM: ~1 model per client per round; ICEADMM: ~2.
	for _, algo := range []string{core.AlgoFedAvg, core.AlgoIIADMM} {
		n := byAlgo[algo].UploadPerClientRound
		if n < 0.99 || n > 1.05 {
			t.Fatalf("%s uploads %.3f models/client/round, want ~1", algo, n)
		}
	}
	ice := byAlgo[core.AlgoICEADMM].UploadPerClientRound
	if ice < 1.98 || ice > 2.1 {
		t.Fatalf("iceadmm uploads %.3f models/client/round, want ~2", ice)
	}
	if !strings.Contains(table.String(), "iiadmm") {
		t.Fatal("table render incomplete")
	}
	// Compression rows: every stack shrinks the per-round upload, and the
	// top-10% stack cuts it at least 4x versus the dense FedAvg baseline.
	dense := byAlgo[core.AlgoFedAvg].UploadBPerRound
	if dense <= 0 {
		t.Fatal("dense baseline reported zero bytes/round")
	}
	for pipe, r := range byPipe {
		if r.UploadBPerRound >= dense {
			t.Fatalf("pipeline %q did not reduce bytes/round (%.0f vs dense %.0f)", pipe, r.UploadBPerRound, dense)
		}
	}
	topk, ok := byPipe["clip:1,topk:0.1"]
	if !ok {
		t.Fatal("topk:0.1 row missing from the comparison — the >=4x acceptance criterion is not being measured")
	}
	if dense/topk.UploadBPerRound < 4 {
		t.Fatalf("topk:0.1 reduced bytes/round only %.2fx, want >= 4x", dense/topk.UploadBPerRound)
	}
}

// TestFig2SmokeSmallGrid runs a reduced Fig. 2 grid end to end: one
// dataset, all algorithms, two budgets. The full grid runs in the bench
// harness; this guards the plumbing.
func TestFig2SmokeSmallGrid(t *testing.T) {
	pts, table, err := Fig2(Fig2Options{
		Datasets:  []string{"mnist"},
		Epsilons:  []float64{3, math.Inf(1)},
		Rounds:    2,
		TrainSize: 96,
		TestSize:  48,
		Clients:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*2 {
		t.Fatalf("grid points %d, want 6", len(pts))
	}
	for _, p := range pts {
		if len(p.AccByRnd) != 2 {
			t.Fatalf("point %+v missing rounds", p)
		}
		if p.FinalAcc < 0 || p.FinalAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", p)
		}
	}
	if !strings.Contains(table.String(), "mnist") {
		t.Fatal("table render incomplete")
	}
}

func TestFig2RejectsUnknownDataset(t *testing.T) {
	_, _, err := Fig2(Fig2Options{Datasets: []string{"imagenet"}})
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFig2FEMNISTPath(t *testing.T) {
	pts, _, err := Fig2(Fig2Options{
		Datasets:   []string{"femnist"},
		Algorithms: []string{core.AlgoIIADMM},
		Epsilons:   []float64{math.Inf(1)},
		Rounds:     1,
		TrainSize:  64,
		TestSize:   32,
		Writers:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Dataset != "femnist" {
		t.Fatalf("points %+v", pts)
	}
}
