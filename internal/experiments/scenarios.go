package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// ScenarioOptions tunes the chaos scenario matrix.
type ScenarioOptions struct {
	Clients      int           // federation size (default 8)
	Rounds       int           // rounds per run (default 5)
	RoundTimeout time.Duration // server deadline per round (default 1.5s)
	Seed         uint64        // model + fault seed (default 9)
}

// ScenarioRow is one cell of the chaos matrix.
type ScenarioRow struct {
	Scheduler string
	Transport core.Transport
	Plan      string
	FinalAcc  float64
	FinalLoss float64
	WallSec   float64
	Crashed   int
	Rejoined  int
	TimedOut  int
}

// Scenarios runs the fault-tolerance demonstration matrix: every scheduler
// × transport × fault plan, measuring how the quorum machinery absorbs
// each failure mode. It is the executable form of the scenario-matrix test
// suite, producing the table `appfl-bench -only scenarios` publishes.
func Scenarios(opts ScenarioOptions) ([]ScenarioRow, *metrics.Table, error) {
	if opts.Clients == 0 {
		opts.Clients = 8
	}
	if opts.Rounds == 0 {
		opts.Rounds = 5
	}
	if opts.RoundTimeout == 0 {
		opts.RoundTimeout = 1500 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 9
	}

	tr, te := dataset.MNIST(dataset.SynthConfig{Train: 16 * opts.Clients, Test: 64, Seed: opts.Seed})
	fed := &dataset.Federated{Clients: dataset.PartitionIID(tr, opts.Clients, rng.New(opts.Seed+1)), Test: te}
	factory := func() nn.Module { return nn.NewMLP(28*28, []int{8}, 10, rng.New(opts.Seed)) }

	plans := []struct{ name, spec string }{
		{"none", ""},
		{"crash-25%@2", "crash:25%@2"},
		{"drop-30%", "drop:100%:0.3"},
		{"rejoin", "rejoin:1@2+2"},
	}
	var rows []ScenarioRow
	for _, sched := range []string{core.SchedSyncAll, core.SchedSampled, core.SchedBuffered} {
		for _, transport := range []core.Transport{core.TransportMPI, core.TransportRPC, core.TransportPubSub} {
			for _, plan := range plans {
				cfg := core.Config{
					Algorithm:  core.AlgoFedAvg,
					Rounds:     opts.Rounds,
					LocalSteps: 1,
					BatchSize:  16,
					Seed:       opts.Seed,
					Scheduler:  sched,
				}
				switch sched {
				case core.SchedSampled:
					cfg.CohortFraction = 0.75
					cfg.CohortMin = 2
				case core.SchedBuffered:
					cfg.BufferK = opts.Clients / 2
				}
				var inj *faults.Injector
				if plan.spec != "" {
					p, err := faults.Parse(plan.spec)
					if err != nil {
						return nil, nil, err
					}
					inj, err = faults.NewInjector(p, opts.Clients, opts.Seed)
					if err != nil {
						return nil, nil, err
					}
					cfg.RoundTimeout = opts.RoundTimeout
				}
				start := nowSec()
				res, err := core.Run(cfg, fed, factory, core.RunOptions{Transport: transport, Faults: inj})
				if err != nil {
					return nil, nil, fmt.Errorf("scenario %s/%s/%s: %w", sched, transport, plan.name, err)
				}
				rows = append(rows, ScenarioRow{
					Scheduler: cfg.Scheduler,
					Transport: transport,
					Plan:      plan.name,
					FinalAcc:  res.FinalAcc,
					FinalLoss: res.FinalLoss,
					WallSec:   nowSec() - start,
					Crashed:   res.Crashed,
					Rejoined:  res.Rejoined,
					TimedOut:  res.TimedOut,
				})
			}
		}
	}

	t := metrics.NewTable(
		"Fault-tolerance scenario matrix: scheduler x transport x fault plan",
		"scheduler", "transport", "plan", "final acc", "final loss", "wall (s)", "crashed", "rejoined", "timed out",
	)
	for _, r := range rows {
		t.AddRow(r.Scheduler, string(r.Transport), r.Plan,
			fmt.Sprintf("%.4f", r.FinalAcc), fmt.Sprintf("%.4f", r.FinalLoss),
			fmt.Sprintf("%.2f", r.WallSec),
			fmt.Sprintf("%d", r.Crashed), fmt.Sprintf("%d", r.Rejoined), fmt.Sprintf("%d", r.TimedOut))
	}
	return rows, t, nil
}
