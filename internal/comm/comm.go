// Package comm defines the communication abstraction of the APPFL
// architecture (Section II-A.3): the server and clients exchange the global
// model and local updates through a pluggable transport. Three backends
// implement it — comm/mpi (in-process collectives standing in for
// MPI+RDMA), comm/rpc (TCP remote procedure calls standing in for gRPC),
// and comm/pubsub (a topic broker standing in for the paper's planned MQTT
// support). All backends account bytes and messages so experiments can
// compare algorithms by true communication volume.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrRoundTimeout reports that a deadline-aware gather hit its deadline
// before every awaited update arrived. The partial batch returned alongside
// it is valid: callers implementing quorum semantics aggregate the
// survivors and Forgive the rest.
var ErrRoundTimeout = errors.New("comm: round deadline exceeded")

// ServerTransport is the server's side of the protocol. The classic
// synchronous round is one Broadcast followed by one Gather; the
// scheduler-driven rounds introduced with partial participation use the
// cohort forms (SendTo/GatherFrom), and the buffered semi-asynchronous
// scheduler consumes arrivals one batch at a time through GatherAny.
//
// Every non-final model delivered to a client obliges exactly one
// LocalUpdate in return. The connection-oriented transports (mpi, rpc)
// track the obligation per client, so a duplicate dispatch or an update
// from a client outside the awaited set is a protocol error; the pub/sub
// broker is connectionless and only counts dispatches vs collections
// (attribution there happens in GatherFrom via OrderByClient). All
// transports fail fast when asked to gather more than is outstanding.
type ServerTransport interface {
	// Broadcast delivers the global model to every client.
	Broadcast(m *wire.GlobalModel) error
	// SendTo delivers the global model to the listed clients only.
	SendTo(clients []int, m *wire.GlobalModel) error
	// Gather collects exactly one local update from every client, in client
	// order.
	Gather() ([]*wire.LocalUpdate, error)
	// GatherFrom collects exactly one local update from each listed client
	// and returns them ordered as listed. An update from a client not in
	// the list is an error.
	GatherFrom(clients []int) ([]*wire.LocalUpdate, error)
	// GatherAny blocks until n of the currently outstanding updates have
	// arrived and returns them in arrival order — the primitive behind
	// buffered (FedBuff-style) aggregation, where a release happens as soon
	// as a quorum lands regardless of which clients supplied it.
	GatherAny(n int) ([]*wire.LocalUpdate, error)
	// GatherUntil collects up to n outstanding updates in arrival order,
	// giving up when the timeout elapses. n is clamped to the number of
	// outstanding obligations (asking with none outstanding is an error, as
	// in GatherAny); timeout <= 0 waits forever. When the deadline cuts the
	// gather short the partial batch is returned together with an error
	// wrapping ErrRoundTimeout — the batch is valid either way. This is the
	// deadline-aware receive path that keeps a barrier round from hanging
	// on a client that will never report.
	GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error)
	// Forgive cancels the open update obligations of the listed clients
	// (those that timed out or were announced dead). A forgiven client can
	// be scheduled again; if its late update for the forgiven round does
	// eventually arrive, the transport discards it instead of letting it
	// pollute a later gather. Clients without an open obligation are
	// ignored.
	Forgive(clients []int)
	// Outstanding returns the sorted client IDs with open update
	// obligations — the set a caller must Forgive (or keep waiting on)
	// when draining a faulted run.
	Outstanding() []int
	// Stats returns a snapshot of traffic counters.
	Stats() Snapshot
	// Close releases transport resources.
	Close() error
}

// SessionResumer is implemented by client transports that can drop their
// underlying connection and re-establish it, splicing the new connection
// into the same logical session (the rpc transport's reconnect path). The
// fault-injection layer uses it to make a disconnect-then-rejoin fault
// exercise a real reconnect where the transport supports one.
type SessionResumer interface {
	Resume() error
}

// Unreachables is implemented by server transports that can tell which
// clients are currently known to be unreachable (a dead connection with
// no resume yet). Deadline-driven schedulers exclude them from dispatch
// — sending would only open an obligation nothing can settle — and bench
// them through the same quorum machinery as a timeout. Connection-less
// transports simply don't implement it.
type Unreachables interface {
	Unreachable() []int
}

// ClientTransport is a client's side of the protocol.
type ClientTransport interface {
	// RecvGlobal blocks until the next global model arrives.
	RecvGlobal() (*wire.GlobalModel, error)
	// SendUpdate uploads this client's local update.
	SendUpdate(m *wire.LocalUpdate) error
	// Stats returns a snapshot of traffic counters.
	Stats() Snapshot
	// Close releases transport resources.
	Close() error
}

// AllClients returns the identity cohort [0, 1, ..., n-1], the degenerate
// schedule under which the cohort forms reduce to Broadcast/Gather.
func AllClients(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// OrderByClient rearranges arrival-ordered updates into the order of the
// requested client list. It reports an error when the two sets differ —
// a duplicate, missing, or out-of-cohort update. It is the strict form of
// OrderSubset: every scheduled client must have reported.
func OrderByClient(clients []int, got []*wire.LocalUpdate) ([]*wire.LocalUpdate, error) {
	out, err := OrderSubset(clients, got)
	if err != nil {
		return nil, err
	}
	if len(out) != len(clients) {
		if m := Missing(clients, got); len(m) > 0 {
			return nil, fmt.Errorf("comm: no update from scheduled client %d", m[0])
		}
		// Fewer results than requests with nobody missing: the request
		// list itself repeated a client.
		return nil, fmt.Errorf("comm: gather requested %d updates from %d distinct clients", len(clients), len(out))
	}
	return out, nil
}

// OrderSubset rearranges arrival-ordered updates into the order of the
// requested client list, tolerating missing clients — the quorum form of
// OrderByClient used after a deadline-cut gather, where absentees are
// expected. Duplicates and out-of-cohort updates are still errors.
func OrderSubset(clients []int, got []*wire.LocalUpdate) ([]*wire.LocalUpdate, error) {
	byID := make(map[int]*wire.LocalUpdate, len(got))
	for _, u := range got {
		id := int(u.ClientID)
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("comm: duplicate update from client %d in one gather", id)
		}
		byID[id] = u
	}
	out := make([]*wire.LocalUpdate, 0, len(got))
	for _, id := range clients {
		if u, ok := byID[id]; ok {
			out = append(out, u)
			delete(byID, id)
		}
	}
	for id := range byID {
		return nil, fmt.Errorf("comm: update from out-of-cohort client %d", id)
	}
	return out, nil
}

// Missing returns the clients in the requested list with no update in got,
// in list order — the set a quorum round times out on.
func Missing(clients []int, got []*wire.LocalUpdate) []int {
	have := make(map[int]bool, len(got))
	for _, u := range got {
		have[int(u.ClientID)] = true
	}
	var out []int
	for _, id := range clients {
		if !have[id] {
			out = append(out, id)
		}
	}
	return out
}

// Stats is a thread-safe traffic counter shared by transport endpoints.
type Stats struct {
	mu        sync.Mutex
	bytesSent uint64
	bytesRecv uint64
	msgsSent  uint64
	msgsRecv  uint64
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	BytesSent, BytesRecv uint64
	MsgsSent, MsgsRecv   uint64
}

// AddSent records an outgoing message of n bytes.
func (s *Stats) AddSent(n int) {
	s.mu.Lock()
	s.bytesSent += uint64(n)
	s.msgsSent++
	s.mu.Unlock()
}

// AddRecv records an incoming message of n bytes.
func (s *Stats) AddRecv(n int) {
	s.mu.Lock()
	s.bytesRecv += uint64(n)
	s.msgsRecv++
	s.mu.Unlock()
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		BytesSent: s.bytesSent,
		BytesRecv: s.bytesRecv,
		MsgsSent:  s.msgsSent,
		MsgsRecv:  s.msgsRecv,
	}
}
