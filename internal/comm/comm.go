// Package comm defines the communication abstraction of the APPFL
// architecture (Section II-A.3): the server and clients exchange the global
// model and local updates through a pluggable transport. Three backends
// implement it — comm/mpi (in-process collectives standing in for
// MPI+RDMA), comm/rpc (TCP remote procedure calls standing in for gRPC),
// and comm/pubsub (a topic broker standing in for the paper's planned MQTT
// support). All backends account bytes and messages so experiments can
// compare algorithms by true communication volume.
package comm

import (
	"sync"

	"repro/internal/wire"
)

// ServerTransport is the server's side of the protocol: one broadcast of
// the global model followed by one gather of local updates per round.
type ServerTransport interface {
	// Broadcast delivers the global model to every client.
	Broadcast(m *wire.GlobalModel) error
	// Gather collects exactly one local update from every client, in client
	// order.
	Gather() ([]*wire.LocalUpdate, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Snapshot
	// Close releases transport resources.
	Close() error
}

// ClientTransport is a client's side of the protocol.
type ClientTransport interface {
	// RecvGlobal blocks until the next global model arrives.
	RecvGlobal() (*wire.GlobalModel, error)
	// SendUpdate uploads this client's local update.
	SendUpdate(m *wire.LocalUpdate) error
	// Stats returns a snapshot of traffic counters.
	Stats() Snapshot
	// Close releases transport resources.
	Close() error
}

// Stats is a thread-safe traffic counter shared by transport endpoints.
type Stats struct {
	mu        sync.Mutex
	bytesSent uint64
	bytesRecv uint64
	msgsSent  uint64
	msgsRecv  uint64
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	BytesSent, BytesRecv uint64
	MsgsSent, MsgsRecv   uint64
}

// AddSent records an outgoing message of n bytes.
func (s *Stats) AddSent(n int) {
	s.mu.Lock()
	s.bytesSent += uint64(n)
	s.msgsSent++
	s.mu.Unlock()
}

// AddRecv records an incoming message of n bytes.
func (s *Stats) AddRecv(n int) {
	s.mu.Lock()
	s.bytesRecv += uint64(n)
	s.msgsRecv++
	s.mu.Unlock()
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		BytesSent: s.bytesSent,
		BytesRecv: s.bytesRecv,
		MsgsSent:  s.msgsSent,
		MsgsRecv:  s.msgsRecv,
	}
}
