package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// ChunkPipe is an in-memory chunk transport used by tests and the stream
// benchmark: per-client channel pairs carrying wire-encoded chunks up
// and acks down, with scriptable loss. Messages cross the pipe as codec
// bytes — the same serialize/deserialize round trip the real transports
// pay — so a struct reused by the sender can never alias the receiver's
// copy, and malformed chunks are caught by the same Unmarshal validation.
type ChunkPipe struct {
	chunks []chan []byte
	acks   []chan []byte

	// DropChunk, when set, is consulted on every chunk send with the
	// sending client, the chunk index, and the per-(round,index) attempt
	// number (0 = first transmission); returning true silently discards
	// the chunk — the loss the ack-paced retry must absorb.
	DropChunk func(client, round, index uint32, attempt int) bool
	// DropAck is DropChunk for the ack direction.
	DropAck func(client, round, index uint32, attempt int) bool

	mu       sync.Mutex
	attempts map[[3]uint32]int // chunk transmissions per (client, round, index)
	ackTries map[[3]uint32]int // ack transmissions per (client, round, index)
}

// NewChunkPipe builds a pipe for numClients clients. Queue capacity 4
// comfortably holds the window-1 steady state (one chunk in flight plus
// a retransmit racing its late ack).
func NewChunkPipe(numClients int) *ChunkPipe {
	p := &ChunkPipe{
		chunks:   make([]chan []byte, numClients),
		acks:     make([]chan []byte, numClients),
		attempts: map[[3]uint32]int{},
		ackTries: map[[3]uint32]int{},
	}
	for i := range p.chunks {
		p.chunks[i] = make(chan []byte, 4)
		p.acks[i] = make(chan []byte, 4)
	}
	return p
}

// Client returns client id's sending end.
func (p *ChunkPipe) Client(id int) *ChunkPipeClient { return &ChunkPipeClient{p: p, id: id} }

// RecvChunkFrom blocks for the next chunk from one client.
func (p *ChunkPipe) RecvChunkFrom(client int) (*wire.ModelChunk, error) {
	if client < 0 || client >= len(p.chunks) {
		return nil, fmt.Errorf("comm: chunk receive from unknown client %d", client)
	}
	b := <-p.chunks[client]
	var mc wire.ModelChunk
	if err := mc.Unmarshal(wire.NewDecoder(b)); err != nil {
		return nil, err
	}
	return &mc, nil
}

// SendChunkAck acknowledges one chunk, subject to the DropAck script.
func (p *ChunkPipe) SendChunkAck(client int, a *wire.ChunkAck) error {
	if client < 0 || client >= len(p.acks) {
		return fmt.Errorf("comm: chunk ack to unknown client %d", client)
	}
	key := [3]uint32{a.ClientID, a.Round, a.Index}
	p.mu.Lock()
	attempt := p.ackTries[key]
	p.ackTries[key]++
	drop := p.DropAck != nil && p.DropAck(a.ClientID, a.Round, a.Index, attempt)
	p.mu.Unlock()
	if drop {
		return nil
	}
	e := wire.NewEncoder(nil)
	a.Marshal(e)
	p.acks[client] <- e.Bytes()
	return nil
}

// ChunkPipeClient is one client's ChunkSender end of a ChunkPipe.
type ChunkPipeClient struct {
	p  *ChunkPipe
	id int
}

// SendChunk uploads one chunk, subject to the pipe's DropChunk script.
func (c *ChunkPipeClient) SendChunk(mc *wire.ModelChunk) error {
	key := [3]uint32{mc.ClientID, mc.Round, mc.Index}
	c.p.mu.Lock()
	attempt := c.p.attempts[key]
	c.p.attempts[key]++
	drop := c.p.DropChunk != nil && c.p.DropChunk(mc.ClientID, mc.Round, mc.Index, attempt)
	c.p.mu.Unlock()
	if drop {
		return nil
	}
	e := wire.NewEncoder(nil)
	mc.Marshal(e)
	c.p.chunks[c.id] <- e.Bytes()
	return nil
}

// RecvChunkAck blocks for the next ack; timeout <= 0 waits forever.
func (c *ChunkPipeClient) RecvChunkAck(timeout time.Duration) (*wire.ChunkAck, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case b := <-c.p.acks[c.id]:
		var a wire.ChunkAck
		if err := a.Unmarshal(wire.NewDecoder(b)); err != nil {
			return nil, err
		}
		return &a, nil
	case <-timer:
		return nil, ErrAckTimeout
	}
}

// Interface conformance checks.
var (
	_ ChunkGatherer = (*ChunkPipe)(nil)
	_ ChunkSender   = (*ChunkPipeClient)(nil)
)
