package comm

import (
	"errors"
	"fmt"
)

// ErrUnknownTenant reports a message carrying a TenantID the receiving
// host does not serve. Routing validates the header instead of indexing
// with it, so a corrupt or hostile tenant id is an error, never a panic.
var ErrUnknownTenant = errors.New("comm: unknown tenant")

// TenantTable maps the two-level client address of a multi-tenant host —
// (TenantID, tenant-local client id) — onto the flat global slot space a
// shared transport indexes its connections by. Tenant t's local client i
// occupies global slot offset(t)+i; tenant ids are the dense range
// [0, Tenants()) with 0 the default tenant, so a pre-tenancy message
// (zero TenantID) routes to tenant 0 unchanged.
//
// The table is immutable after construction and safe for concurrent use.
type TenantTable struct {
	sizes []int // clients per tenant
	offs  []int // global slot of each tenant's local client 0
	total int
}

// NewTenantTable builds the routing table for the given per-tenant client
// counts. An empty or nil slice means one default tenant is expected to be
// sized by the caller; every listed tenant must have at least one client.
func NewTenantTable(clientsPerTenant []int) (*TenantTable, error) {
	if len(clientsPerTenant) == 0 {
		return nil, errors.New("comm: tenant table needs at least one tenant")
	}
	t := &TenantTable{
		sizes: append([]int(nil), clientsPerTenant...),
		offs:  make([]int, len(clientsPerTenant)),
	}
	for i, n := range clientsPerTenant {
		if n <= 0 {
			return nil, fmt.Errorf("comm: tenant %d has %d clients, need at least 1", i, n)
		}
		t.offs[i] = t.total
		t.total += n
	}
	return t, nil
}

// Tenants returns the number of tenants.
func (t *TenantTable) Tenants() int { return len(t.sizes) }

// Clients returns tenant id's client count.
func (t *TenantTable) Clients(tenant int) int { return t.sizes[tenant] }

// Total returns the size of the flat global slot space.
func (t *TenantTable) Total() int { return t.total }

// Route validates a (TenantID, local client id) address and returns its
// global slot. Unknown tenants and out-of-range local ids are errors —
// never panics — so hostile join/update headers fail loudly at the edge.
func (t *TenantTable) Route(tenant, local uint32) (int, error) {
	if int(tenant) >= len(t.sizes) {
		return 0, fmt.Errorf("%w: tenant %d of %d", ErrUnknownTenant, tenant, len(t.sizes))
	}
	ti := int(tenant)
	if int(local) >= t.sizes[ti] {
		return 0, fmt.Errorf("comm: tenant %d has no client %d (roster size %d)", tenant, local, t.sizes[ti])
	}
	return t.offs[ti] + int(local), nil
}

// Owner returns the tenant owning a global slot and the slot's
// tenant-local client id.
func (t *TenantTable) Owner(global int) (tenant, local int) {
	for ti := len(t.offs) - 1; ti >= 0; ti-- {
		if global >= t.offs[ti] {
			return ti, global - t.offs[ti]
		}
	}
	return 0, global
}

// Global returns the global slot of tenant's local client id without
// validation; callers validating external input use Route instead.
func (t *TenantTable) Global(tenant, local int) int { return t.offs[tenant] + local }
