package comm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/wire"
)

// This file implements the streaming (chunked) uplink path: a client cuts
// its model vector into fixed-size wire.ModelChunk messages and uploads
// them ack-paced (window 1), and the server gathers chunk c from every
// cohort client, folds it into an O(chunk) window, and acks — so neither
// side ever holds a cohort's worth of full models. Chunk transfer rides
// BELOW the obligation ledger: chunks settle nothing; the client follows
// its stream with a slim (payload-less) LocalUpdate that settles the
// round's obligation through the ordinary gather, keeping Forgive/quorum
// semantics untouched.

// ErrAckTimeout reports that a chunk ack did not arrive within the
// sender's patience window; StreamUpload retries the chunk.
var ErrAckTimeout = errors.New("comm: chunk ack timeout")

// ChunkSender is a client transport that can stream chunked uploads.
type ChunkSender interface {
	// SendChunk uploads one model chunk. The chunk and its payload are
	// serialized before returning, so the caller may reuse them.
	SendChunk(c *wire.ModelChunk) error
	// RecvChunkAck blocks for the next chunk ack. timeout <= 0 waits
	// forever; otherwise ErrAckTimeout is returned when it elapses.
	RecvChunkAck(timeout time.Duration) (*wire.ChunkAck, error)
}

// ChunkGatherer is a server transport that can receive chunked uploads.
type ChunkGatherer interface {
	// RecvChunkFrom blocks for the next chunk from one client.
	RecvChunkFrom(client int) (*wire.ModelChunk, error)
	// SendChunkAck acknowledges one folded chunk back to its sender.
	SendChunkAck(client int, a *wire.ChunkAck) error
}

// UploadOptions tune StreamUpload's retry behavior. The zero value waits
// forever on every ack — the right choice over reliable in-process
// transports, where a retry could only duplicate.
type UploadOptions struct {
	// AckTimeout is the per-chunk patience before a retransmit (<= 0:
	// wait forever, never retransmit).
	AckTimeout time.Duration
	// MaxRetries bounds retransmits per chunk; past it the upload fails.
	MaxRetries int
}

// chunkablePayload views the uplink vector of u for chunk slicing:
// a dense Primal or a still-encoded element-wise payload (float16).
func chunkablePayload(u *wire.LocalUpdate) (dim int, dense []float64, codes []byte, enc wire.Encoding, err error) {
	if len(u.Primal) > 0 {
		return len(u.Primal), u.Primal, nil, wire.EncDense, nil
	}
	if p := u.PrimalP; p != nil {
		switch p.Enc {
		case wire.EncDense:
			return int(p.Dim), p.Dense, nil, wire.EncDense, nil
		case wire.EncFloat16:
			return int(p.Dim), nil, p.Codes, wire.EncFloat16, nil
		default:
			return 0, nil, nil, 0, fmt.Errorf("comm: %s payloads cannot stream chunk-wise", p.Enc)
		}
	}
	return 0, nil, nil, 0, fmt.Errorf("comm: update carries no uplink vector to stream")
}

// sliceChunk cuts the window [lo, hi) out of the uplink vector as a
// chunk payload. The slices alias the update — SendChunk serializes
// before returning, so no copy is needed.
func sliceChunk(dense []float64, codes []byte, enc wire.Encoding, lo, hi int) *wire.Payload {
	p := &wire.Payload{Enc: enc, Dim: uint32(hi - lo)}
	if enc == wire.EncFloat16 {
		p.Codes = codes[2*lo : 2*hi]
	} else {
		p.Dense = dense[lo:hi]
	}
	return p
}

// StreamUpload cuts u's uplink vector into chunkSize-coordinate
// wire.ModelChunks and uploads them in order, window 1: each chunk waits
// for its ack before the next departs, and a timed-out ack retransmits
// only that chunk — never the whole model. Acks for earlier chunks
// (duplicate-delivery echoes) are skipped. u itself is NOT sent; follow
// the stream with a slim LocalUpdate via SendUpdate to settle the
// round's obligation.
func StreamUpload(s ChunkSender, u *wire.LocalUpdate, chunkSize int, opt UploadOptions) error {
	dim, dense, codes, enc, err := chunkablePayload(u)
	if err != nil {
		return err
	}
	count := wire.ChunkPlan(dim, chunkSize)
	c := wire.ModelChunk{
		ClientID:   u.ClientID,
		Round:      u.Round,
		Version:    u.BaseVersion,
		Count:      uint32(count),
		Dim:        uint32(dim),
		NumSamples: u.NumSamples,
	}
	for i := 0; i < count; i++ {
		lo, hi := wire.ChunkRange(dim, chunkSize, i)
		c.Index = uint32(i)
		c.Lo, c.Hi = uint32(lo), uint32(hi)
		c.Payload = sliceChunk(dense, codes, enc, lo, hi)
		if err := s.SendChunk(&c); err != nil {
			return err
		}
		retries := 0
		for {
			ack, err := s.RecvChunkAck(opt.AckTimeout)
			if errors.Is(err, ErrAckTimeout) {
				if retries >= opt.MaxRetries {
					return fmt.Errorf("comm: chunk %d/%d unacked after %d retransmits: %w", i, count, retries, err)
				}
				retries++
				if err := s.SendChunk(&c); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			if ack.Round != c.Round || int(ack.Index) > i {
				return fmt.Errorf("comm: ack for round %d chunk %d while uploading round %d chunk %d",
					ack.Round, ack.Index, c.Round, i)
			}
			if int(ack.Index) == i {
				break
			}
			// Ack for an earlier chunk: the echo of a retransmit the
			// receiver had already folded. Skip it.
		}
	}
	return nil
}

// StreamStats reports one StreamGather's outcome.
type StreamStats struct {
	// Samples is the per-client NumSamples echoed on the chunks, in
	// cohort order — known after chunk 0, before the first fold.
	Samples []uint64
	// PeakBytes is the maximum resident chunk-payload bytes at any point
	// of the gather — the streamed round's transient memory footprint,
	// O(cohort × chunk) by construction.
	PeakBytes int
	// Chunks counts chunks folded; Duplicates counts retransmits
	// absorbed (re-acked without folding).
	Chunks     int
	Duplicates int
}

// StreamGather receives one streamed upload from every listed client and
// folds it chunk by chunk: for each chunk index in order it collects the
// cohort's chunk-c payloads, hands them to fold (cohort order), acks
// them, and releases them before touching chunk c+1 — the server's
// resident state is one cohort-wide chunk window, not a cohort of
// models. begin runs once, after chunk 0 reveals every client's sample
// count and before the first fold. A retransmitted chunk (one the
// gather already folded) is re-acked and dropped, so sender retries
// cannot double-fold.
func StreamGather(g ChunkGatherer, clients []int, round uint32, dim, chunkSize int,
	begin func(samples []uint64) error,
	fold func(lo, hi int, payloads []*wire.Payload) error) (*StreamStats, error) {

	count := wire.ChunkPlan(dim, chunkSize)
	st := &StreamStats{Samples: make([]uint64, len(clients))}
	payloads := make([]*wire.Payload, len(clients))
	resident := 0
	for c := 0; c < count; c++ {
		lo, hi := wire.ChunkRange(dim, chunkSize, c)
		for i, client := range clients {
			mc, err := recvExpected(g, client, round, c, count, dim, lo, hi, st)
			if err != nil {
				return st, err
			}
			if c == 0 {
				st.Samples[i] = mc.NumSamples
			} else if mc.NumSamples != st.Samples[i] {
				return st, fmt.Errorf("comm: client %d chunk %d changed NumSamples %d -> %d mid-stream",
					client, c, st.Samples[i], mc.NumSamples)
			}
			payloads[i] = mc.Payload
			resident += mc.Payload.EncodedLen()
		}
		if resident > st.PeakBytes {
			st.PeakBytes = resident
		}
		if c == 0 {
			if err := begin(st.Samples); err != nil {
				return st, err
			}
		}
		if err := fold(lo, hi, payloads); err != nil {
			return st, err
		}
		st.Chunks += len(clients)
		for i, client := range clients {
			ack := wire.ChunkAck{ClientID: uint32(client), Round: round, Index: uint32(c)}
			if err := g.SendChunkAck(client, &ack); err != nil {
				return st, err
			}
			resident -= payloads[i].EncodedLen()
			payloads[i] = nil // release: the window rotates
		}
	}
	return st, nil
}

// recvExpected is the gather's per-client receive: it validates the
// chunk against the expected stream geometry and absorbs retransmits of
// already-folded chunks by re-acking them (a retry whose original did
// arrive — or whose ack was lost — must not double-fold).
func recvExpected(g ChunkGatherer, client int, round uint32, c, count, dim, lo, hi int, st *StreamStats) (*wire.ModelChunk, error) {
	for {
		mc, err := g.RecvChunkFrom(client)
		if err != nil {
			return nil, err
		}
		if int(mc.ClientID) != client {
			return nil, fmt.Errorf("comm: chunk from client %d on client %d's stream", mc.ClientID, client)
		}
		if mc.Round != round {
			return nil, fmt.Errorf("comm: client %d streamed round %d into round %d's gather", client, mc.Round, round)
		}
		if int(mc.Index) < c {
			// Retransmit of an already-folded chunk: its ack was slow or
			// lost. Re-ack so the sender advances; never fold twice.
			st.Duplicates++
			ack := wire.ChunkAck{ClientID: uint32(client), Round: round, Index: mc.Index}
			if err := g.SendChunkAck(client, &ack); err != nil {
				return nil, err
			}
			continue
		}
		if int(mc.Index) != c || int(mc.Count) != count || int(mc.Dim) != dim ||
			int(mc.Lo) != lo || int(mc.Hi) != hi {
			return nil, fmt.Errorf("comm: client %d sent chunk %d/%d [%d,%d) of dim %d, expected %d/%d [%d,%d) of %d",
				client, mc.Index, mc.Count, mc.Lo, mc.Hi, mc.Dim, c, count, lo, hi, dim)
		}
		return mc, nil
	}
}
