package comm

// This file holds the topology of the hierarchical aggregation tier: how
// clients are routed to ingress shards, how the model's index space is
// partitioned across shards, and how deep the partial-aggregate reduce
// tree is. The core tier and the simnet load harness share these
// functions, so the modelled fan-out/gather geometry is the executed one.

// ShardOf maps a client id to its ingress shard with a splitmix64
// finalizer: assignment is stable under roster growth, uniform across
// shards, and independent of the order clients joined — the properties a
// routing tier needs so one hot shard cannot form by id locality.
func ShardOf(client uint32, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := (uint64(client) + 1) * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ShardRange returns the contiguous index range [lo, hi) of an n-element
// space owned by shard s of `shards`. Ranges tile [0, n) in shard order
// with ceil(n/shards)-sized chunks; trailing shards may be empty when
// n < shards. The partition is a pure function of (n, shards) — never of
// core count or scheduling — which is what keeps shard state stable
// across rounds and the reduce order fixed.
func ShardRange(n, shards, s int) (lo, hi int) {
	if shards <= 0 || s < 0 || s >= shards {
		panic("comm: shard index out of range")
	}
	size := (n + shards - 1) / shards
	lo = s * size
	if lo > n {
		lo = n
	}
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ReduceDepth returns the number of stages of the binary tree-reduce over
// `shards` partials: ⌈log₂ shards⌉, 0 for a single shard.
func ReduceDepth(shards int) int {
	d := 0
	for span := 1; span < shards; span *= 2 {
		d++
	}
	return d
}
