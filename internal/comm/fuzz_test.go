package comm

import (
	"errors"
	"testing"
)

// FuzzTenantRoute: the transport edge routes every arriving (tenant,
// local) address through TenantTable.Route before any tenant state is
// touched. No address — however far out of range — may panic; a bad
// address must surface ErrUnknownTenant, and a good one must round-trip
// through Owner to exactly the address that produced it.
func FuzzTenantRoute(f *testing.F) {
	f.Add(uint32(0), uint32(0), 3, 1, 5)
	f.Add(uint32(2), uint32(4), 3, 1, 5)
	f.Add(uint32(^uint32(0)), uint32(^uint32(0)), 1, 0, 0)
	f.Fuzz(func(t *testing.T, tenant, local uint32, a, b, c int) {
		sizes := []int{a % 64, b % 64, c % 64}
		table, err := NewTenantTable(sizes)
		if err != nil {
			// Invalid shapes (non-positive tenant sizes) must be rejected at
			// construction, never tolerated into a routable table.
			for _, n := range sizes {
				if n <= 0 {
					return
				}
			}
			t.Fatalf("valid shape %v rejected: %v", sizes, err)
		}
		g, err := table.Route(tenant, local)
		if err != nil {
			if int(tenant) >= table.Tenants() {
				if !errors.Is(err, ErrUnknownTenant) {
					t.Fatalf("unknown tenant %d rejected without ErrUnknownTenant: %v", tenant, err)
				}
				return
			}
			if int(local) < table.Clients(int(tenant)) {
				t.Fatalf("in-range address (%d,%d) rejected: %v", tenant, local, err)
			}
			return // known tenant, out-of-range local id: any error, no panic
		}
		if g < 0 || g >= table.Total() {
			t.Fatalf("route (%d,%d) -> global %d outside [0,%d)", tenant, local, g, table.Total())
		}
		ot, ol := table.Owner(g)
		if uint32(ot) != tenant || uint32(ol) != local {
			t.Fatalf("owner(%d) = (%d,%d), want (%d,%d)", g, ot, ol, tenant, local)
		}
	})
}
