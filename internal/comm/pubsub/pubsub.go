// Package pubsub implements a lightweight topic-based publish/subscribe
// broker, the stand-in for the MQTT support the paper lists as planned
// ("MQTT (TBD)" in the architecture figure). Messages are byte payloads
// published to string topics and fanned out to all subscribers, with
// per-subscriber FIFO ordering — the QoS-0 semantics of MQTT.
//
// A transport adapter maps the FL protocol onto two topics: the server
// publishes global models to "fl/global"; clients publish local updates to
// "fl/update". Payloads are encoded with the internal/wire codec, so the
// pub/sub path pays the same serialization cost as RPC.
package pubsub

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed broker or subscription.
var ErrClosed = errors.New("pubsub: closed")

// Message is one published payload.
type Message struct {
	Topic   string
	Payload []byte
}

// Broker routes published messages to topic subscribers.
type Broker struct {
	mu     sync.Mutex
	subs   map[string][]*Subscription
	closed bool
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: map[string][]*Subscription{}}
}

// Subscription is one subscriber's ordered message queue. Teardown is
// signalled through done rather than by closing the message channel, so a
// publisher mid-send to a departing subscriber backs off cleanly instead
// of panicking on a closed channel.
type Subscription struct {
	broker *Broker
	topic  string
	ch     chan Message
	done   chan struct{}
	once   sync.Once
}

// Subscribe registers a new subscription on topic with the given queue
// capacity (messages beyond a full queue block the publisher, providing
// backpressure).
func (b *Broker) Subscribe(topic string, capacity int) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	s := &Subscription{
		broker: b,
		topic:  topic,
		ch:     make(chan Message, capacity),
		done:   make(chan struct{}),
	}
	b.subs[topic] = append(b.subs[topic], s)
	return s, nil
}

// Publish delivers payload to every current subscriber of topic. A
// subscriber that unsubscribes mid-delivery simply misses the message.
func (b *Broker) Publish(topic string, payload []byte) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	subs := append([]*Subscription(nil), b.subs[topic]...)
	b.mu.Unlock()
	msg := Message{Topic: topic, Payload: payload}
	for _, s := range subs {
		select {
		case s.ch <- msg:
		case <-s.done:
		}
	}
	return nil
}

// Recv blocks for the next message; ok is false after Unsubscribe/Close
// once the queue has drained.
func (s *Subscription) Recv() (Message, bool) {
	m, ok, _ := s.RecvTimer(nil)
	return m, ok
}

// RecvTimer is Recv with an optional deadline channel (nil waits
// forever): timedOut reports that the timer fired before a message or
// teardown. The teardown-drain rule — messages queued before
// Unsubscribe/Close are still delivered — lives only here.
func (s *Subscription) RecvTimer(timer <-chan time.Time) (m Message, ok, timedOut bool) {
	select {
	case m := <-s.ch:
		return m, true, false
	case <-s.done:
		// Drain messages that were queued before teardown, preserving the
		// closed-channel semantics this replaced.
		select {
		case m := <-s.ch:
			return m, true, false
		default:
			return Message{}, false, false
		}
	case <-timer:
		return Message{}, false, true
	}
}

// Unsubscribe removes the subscription and releases its queue.
func (s *Subscription) Unsubscribe() {
	s.once.Do(func() {
		b := s.broker
		b.mu.Lock()
		list := b.subs[s.topic]
		for i, x := range list {
			if x == s {
				b.subs[s.topic] = append(list[:i], list[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		close(s.done)
	})
}

// Close shuts the broker and all subscriptions.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var all []*Subscription
	for _, list := range b.subs {
		all = append(all, list...)
	}
	b.subs = map[string][]*Subscription{}
	b.mu.Unlock()
	for _, s := range all {
		s.once.Do(func() { close(s.done) })
	}
}

// Topic names of the FL protocol mapping. Global models are published to
// per-client topics (TopicGlobal/<id>) so a scheduler can address a cohort
// rather than the whole federation; updates flow back over one shared
// topic whose arrival order the buffered scheduler consumes directly.
//
// On a multi-tenant broker each tenant's topics are namespaced under a
// "t<id>/" prefix; tenant 0 keeps the unprefixed names, so a pre-tenancy
// client publishing to the legacy topics lands in the default tenant.
const (
	TopicGlobal = "fl/global"
	TopicUpdate = "fl/update"
)

// TenantPrefix returns the topic namespace of a tenant: empty for the
// default tenant 0, "t<id>/" otherwise.
func TenantPrefix(tenant int) string {
	if tenant == 0 {
		return ""
	}
	return fmt.Sprintf("t%d/", tenant)
}

// GlobalTopic returns the per-client topic carrying client id's models.
func GlobalTopic(id int) string { return fmt.Sprintf("%s/%d", TopicGlobal, id) }

// TenantGlobalTopic returns tenant's per-client global-model topic.
func TenantGlobalTopic(tenant, id int) string { return TenantPrefix(tenant) + GlobalTopic(id) }

// TenantUpdateTopic returns tenant's shared local-update topic.
func TenantUpdateTopic(tenant int) string { return TenantPrefix(tenant) + TopicUpdate }

// ServerTransport adapts a broker to comm.ServerTransport.
//
// A topic broker is connectionless, so spontaneous publishes are accepted
// (QoS-0 style) and cohort attribution happens at GatherFrom via
// comm.OrderByClient. The transport still keeps the shared obligation
// ledger — models dispatched vs updates collected — so that GatherAny
// fails fast on an overdraw instead of deadlocking, round timeouts can be
// forgiven, and a forgiven round's late publish is discarded.
type ServerTransport struct {
	broker     *Broker
	tenant     int // tenant this view serves (0 = default)
	shared     bool
	numClients int
	updates    *Subscription
	chunks     []*Subscription // per-client streamed chunk topics
	stats      comm.Stats
	ledger     *comm.Ledger
}

// ClientTransport adapts a broker to comm.ClientTransport.
type ClientTransport struct {
	broker *Broker
	tenant int
	id     int
	global *Subscription
	acks   *Subscription // per-client chunk-ack topic
	stats  comm.Stats
}

// NewFLBroker wires a broker for one server and numClients clients and
// returns the transports.
func NewFLBroker(numClients int) (*ServerTransport, []*ClientTransport, error) {
	b := NewBroker()
	st, clients, err := newTenantTransports(b, 0, numClients, false)
	if err != nil {
		return nil, nil, err
	}
	return st, clients, nil
}

// NewTenantFLBroker wires one shared broker hosting len(clientsPerTenant)
// independent federations. Tenant t's transports publish and subscribe
// under the TenantPrefix(t) namespace, with their own obligation ledger —
// one tenant's gathers, forgiveness, and timeouts never observe another's
// traffic. The per-tenant server transports' Close is a no-op; Close the
// broker itself to tear everything down.
func NewTenantFLBroker(clientsPerTenant []int) (*Broker, []*ServerTransport, [][]*ClientTransport, error) {
	if len(clientsPerTenant) == 0 {
		return nil, nil, nil, errors.New("pubsub: need at least one tenant")
	}
	b := NewBroker()
	servers := make([]*ServerTransport, len(clientsPerTenant))
	clients := make([][]*ClientTransport, len(clientsPerTenant))
	for t, n := range clientsPerTenant {
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("pubsub: tenant %d has %d clients, need at least 1", t, n)
		}
		st, cts, err := newTenantTransports(b, t, n, true)
		if err != nil {
			return nil, nil, nil, err
		}
		servers[t], clients[t] = st, cts
	}
	return b, servers, clients, nil
}

// newTenantTransports wires one tenant's transports on a (possibly shared)
// broker. shared marks the server transport as a tenant view whose Close
// must not tear down the broker under its neighbors.
func newTenantTransports(b *Broker, tenant, numClients int, shared bool) (*ServerTransport, []*ClientTransport, error) {
	prefix := TenantPrefix(tenant)
	upd, err := b.Subscribe(prefix+TopicUpdate, numClients)
	if err != nil {
		return nil, nil, err
	}
	st := &ServerTransport{
		broker:     b,
		tenant:     tenant,
		shared:     shared,
		numClients: numClients,
		updates:    upd,
		chunks:     make([]*Subscription, numClients),
		ledger:     comm.NewLedger(numClients),
	}
	clients := make([]*ClientTransport, numClients)
	for i := range clients {
		g, err := b.Subscribe(prefix+GlobalTopic(i), 1)
		if err != nil {
			return nil, nil, err
		}
		// Chunk queues hold the window-1 steady state plus a retransmit
		// racing its late ack, matching comm.ChunkPipe.
		mc, err := b.Subscribe(prefix+ChunkTopic(i), 4)
		if err != nil {
			return nil, nil, err
		}
		st.chunks[i] = mc
		ack, err := b.Subscribe(prefix+ChunkAckTopic(i), 4)
		if err != nil {
			return nil, nil, err
		}
		clients[i] = &ClientTransport{broker: b, tenant: tenant, id: i, global: g, acks: ack}
	}
	return st, clients, nil
}

// Broadcast publishes the global model to every client's topic.
func (s *ServerTransport) Broadcast(m *wire.GlobalModel) error {
	return s.SendTo(comm.AllClients(s.numClients), m)
}

// SendTo publishes the global model to the listed clients' topics only.
func (s *ServerTransport) SendTo(clients []int, m *wire.GlobalModel) error {
	e := wire.NewEncoder(nil)
	m.Marshal(e)
	for _, c := range clients {
		if c < 0 || c >= s.numClients {
			return fmt.Errorf("pubsub: send to unknown client %d", c)
		}
		if !m.Final {
			if err := s.ledger.Open(c, m.Round); err != nil {
				return fmt.Errorf("pubsub: %w", err)
			}
		}
		if err := s.broker.Publish(TenantGlobalTopic(s.tenant, c), e.Bytes()); err != nil {
			if !m.Final {
				s.ledger.Rollback(c)
			}
			return err
		}
		s.stats.AddSent(e.Len())
	}
	return nil
}

// collect reads n updates from the shared update topic in arrival order.
// A nil timer waits forever; otherwise the gather gives up when the timer
// fires and returns the partial batch with ErrRoundTimeout.
func (s *ServerTransport) collect(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	out := make([]*wire.LocalUpdate, 0, n)
	for len(out) < n {
		msg, ok, timedOut := s.updates.RecvTimer(timer)
		if timedOut {
			return out, fmt.Errorf("pubsub: %d of %d updates after deadline: %w", len(out), n, comm.ErrRoundTimeout)
		}
		if !ok {
			return nil, ErrClosed
		}
		s.stats.AddRecv(len(msg.Payload))
		var u wire.LocalUpdate
		if err := u.Unmarshal(wire.NewDecoder(msg.Payload)); err != nil {
			return nil, err
		}
		if id := int(u.ClientID); id < 0 || id >= s.numClients {
			return nil, fmt.Errorf("pubsub: update from unknown client %d", id)
		}
		if int(u.TenantID) != s.tenant {
			return nil, fmt.Errorf("pubsub: update from client %d carries tenant %d, topic belongs to tenant %d",
				u.ClientID, u.TenantID, s.tenant)
		}
		if !s.ledger.Admit(int(u.ClientID), u.Round) {
			continue // late publish for a forgiven round: discard
		}
		out = append(out, &u)
	}
	return out, nil
}

// Gather reads numClients updates from the update topic and orders them by
// client ID.
func (s *ServerTransport) Gather() ([]*wire.LocalUpdate, error) {
	return s.GatherFrom(comm.AllClients(s.numClients))
}

// GatherFrom reads one update per listed client, ordered as listed.
func (s *ServerTransport) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	got, err := s.collect(len(clients), nil)
	if err != nil {
		return nil, err
	}
	return comm.OrderByClient(clients, got)
}

// GatherAny reads the next n updates in arrival order. Unlike Gather and
// GatherFrom (which tolerate spontaneous publishes, QoS-0 style), it
// checks the dispatch ledger so a scheduler overdraw fails fast instead
// of blocking forever on an update that will never come.
func (s *ServerTransport) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	if owed := s.ledger.Owed(); n > owed {
		return nil, fmt.Errorf("pubsub: gathering %d updates with only %d outstanding", n, owed)
	}
	return s.collect(n, nil)
}

// GatherUntil reads up to n outstanding updates, giving up at the
// deadline; see comm.ServerTransport.
func (s *ServerTransport) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	return comm.GatherWithDeadline(s.ledger, "pubsub", n, timeout, s.collect)
}

// Forgive closes the open obligations of the listed clients; their late
// publishes, if any ever arrive, are discarded.
func (s *ServerTransport) Forgive(clients []int) { s.ledger.Forgive(clients) }

// Outstanding returns the sorted clients with open update obligations.
func (s *ServerTransport) Outstanding() []int { return s.ledger.Outstanding() }

// Stats returns the traffic snapshot.
func (s *ServerTransport) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close shuts the whole broker — unless this transport is one tenant's
// view of a shared broker, in which case it is a no-op (one tenant
// finishing must not tear down its neighbors; Close the Broker itself).
func (s *ServerTransport) Close() error {
	if s.shared {
		return nil
	}
	s.broker.Close()
	return nil
}

// RecvGlobal blocks for the next published global model.
func (c *ClientTransport) RecvGlobal() (*wire.GlobalModel, error) {
	msg, ok := c.global.Recv()
	if !ok {
		return nil, ErrClosed
	}
	c.stats.AddRecv(len(msg.Payload))
	var m wire.GlobalModel
	if err := m.Unmarshal(wire.NewDecoder(msg.Payload)); err != nil {
		return nil, err
	}
	return &m, nil
}

// SendUpdate publishes the client's update to its tenant's update topic,
// stamped with the tenant id.
func (c *ClientTransport) SendUpdate(m *wire.LocalUpdate) error {
	m.TenantID = uint32(c.tenant)
	e := wire.NewEncoder(nil)
	m.Marshal(e)
	if err := c.broker.Publish(TenantUpdateTopic(c.tenant), e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// Stats returns the traffic snapshot.
func (c *ClientTransport) Stats() comm.Snapshot { return c.stats.Snapshot() }

// Close unsubscribes this client.
func (c *ClientTransport) Close() error {
	c.global.Unsubscribe()
	return nil
}

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*ServerTransport)(nil)
	_ comm.ClientTransport = (*ClientTransport)(nil)
)
