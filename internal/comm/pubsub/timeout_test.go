package pubsub

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

func TestGatherUntilTimesOutOnSilentClient(t *testing.T) {
	srv, clients, err := NewFLBroker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: stays silent for round 1, echoes afterwards
		defer wg.Done()
		first := true
		for {
			gm, err := clients[0].RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			if first {
				first = false
				continue
			}
			clients[0].SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{0}})
		}
	}()
	go func() { // client 1: echoes everything
		defer wg.Done()
		for {
			gm, err := clients[1].RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			clients[1].SendUpdate(&wire.LocalUpdate{ClientID: 1, Round: gm.Round, NumSamples: 1, Primal: []float64{1}})
		}
	}()

	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherUntil(2, 200*time.Millisecond)
	if !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v (%d updates)", err, len(got))
	}
	if len(got) != 1 || got[0].ClientID != 1 {
		t.Fatalf("partial batch %+v, want just client 1", got)
	}
	if out := srv.Outstanding(); len(out) != 1 || out[0] != 0 {
		t.Fatalf("outstanding %v, want [0]", out)
	}
	srv.Forgive([]int{0})

	// Re-schedule both; round 2 completes cleanly and in cohort order.
	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.GatherFrom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ClientID != 0 || got[1].ClientID != 1 {
		t.Fatalf("round-2 gather %+v", got)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherUntilDiscardsForgivenLatePublish(t *testing.T) {
	srv, clients, err := NewFLBroker(1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := clients[0]
		gm, _ := c.RecvGlobal()
		<-release
		c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{9}})
		for {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{7}})
		}
	}()

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherUntil(1, 50*time.Millisecond); !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v", err)
	}
	srv.Forgive([]int{0})
	close(release)

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherFrom([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Round != 2 || got[0].Primal[0] != 7 {
		t.Fatalf("gather returned %+v, want the fresh round-2 update", got[0])
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
