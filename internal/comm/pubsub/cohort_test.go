package pubsub

import (
	"sync"
	"testing"

	"repro/internal/wire"
)

// echoClients runs each client transport as a loop echoing one update per
// received non-final model.
func echoClients(t *testing.T, clients []*ClientTransport) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *ClientTransport) {
			defer wg.Done()
			for {
				gm, err := ct.RecvGlobal()
				if err != nil {
					return // broker closed
				}
				if gm.Final {
					return
				}
				err = ct.SendUpdate(&wire.LocalUpdate{
					ClientID:    uint32(i),
					Round:       gm.Round,
					NumSamples:  1,
					Primal:      []float64{float64(i)},
					BaseVersion: gm.Version,
				})
				if err != nil {
					t.Errorf("client %d send: %v", i, err)
					return
				}
			}
		}(i, ct)
	}
	return &wg
}

// TestSendToReachesOnlyTheCohort: clients outside the cohort receive no
// message at all — the traffic saving server-side scheduling exists for.
func TestSendToReachesOnlyTheCohort(t *testing.T) {
	srv, clients, err := NewFLBroker(4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wg := echoClients(t, clients)
	cohort := []int{0, 2}
	if err := srv.SendTo(cohort, &wire.GlobalModel{Round: 1, Version: 3, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	ups, err := srv.GatherFrom(cohort)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range cohort {
		if int(ups[i].ClientID) != id || ups[i].BaseVersion != 3 {
			t.Fatalf("position %d: %+v, want client %d base 3", i, ups[i], id)
		}
	}
	// Clients 1 and 3 saw nothing: their stats show zero received bytes.
	for _, id := range []int{1, 3} {
		if snap := clients[id].Stats(); snap.BytesRecv != 0 {
			t.Fatalf("non-cohort client %d received %d bytes", id, snap.BytesRecv)
		}
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherFromRejectsOutOfCohortUpdate(t *testing.T) {
	srv, clients, err := NewFLBroker(3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Client 2 publishes although only {0, 1} are awaited.
	if err := clients[2].SendUpdate(&wire.LocalUpdate{ClientID: 2, Primal: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].SendUpdate(&wire.LocalUpdate{ClientID: 0, Primal: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherFrom([]int{0, 1}); err == nil {
		t.Fatal("out-of-cohort update accepted")
	}
}

func TestGatherAnyArrivalOrder(t *testing.T) {
	srv, clients, err := NewFLBroker(3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	// Clients reply in reverse order; arrivals keep that order.
	for _, id := range []int{2, 0, 1} {
		if _, err := clients[id].RecvGlobal(); err != nil {
			t.Fatal(err)
		}
		if err := clients[id].SendUpdate(&wire.LocalUpdate{ClientID: uint32(id), Primal: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := srv.GatherAny(2)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].ClientID != 2 || batch[1].ClientID != 0 {
		t.Fatalf("arrival order lost: %d, %d", batch[0].ClientID, batch[1].ClientID)
	}
	rest, err := srv.GatherAny(1)
	if err != nil {
		t.Fatal(err)
	}
	if rest[0].ClientID != 1 {
		t.Fatalf("last arrival %d", rest[0].ClientID)
	}
	// The ledger is empty now: a further GatherAny is an overdraw and must
	// fail fast instead of blocking on an update that will never come.
	if _, err := srv.GatherAny(1); err == nil {
		t.Fatal("overdrawn GatherAny accepted")
	}
}
