package pubsub

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// TestStreamOverPubSub: a chunked upload over per-client topics
// reassembles every client's vector bit for bit.
func TestStreamOverPubSub(t *testing.T) {
	const P, dim, chunk = 3, 400, 64
	srv, clients, err := NewFLBroker(P)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *ClientTransport) {
			defer wg.Done()
			v := make([]float64, dim)
			for k := range v {
				v[k] = float64(i+1)*10 + float64(k)*0.125
			}
			u := &wire.LocalUpdate{
				ClientID:   uint32(i),
				Round:      1,
				NumSamples: uint64(3 + i),
				Primal:     v,
			}
			if err := comm.StreamUpload(ct, u, chunk,
				comm.UploadOptions{AckTimeout: time.Second, MaxRetries: 2}); err != nil {
				t.Errorf("client %d stream: %v", i, err)
			}
		}(i, ct)
	}
	rebuilt := make([][]float64, P)
	for i := range rebuilt {
		rebuilt[i] = make([]float64, dim)
	}
	st, err := comm.StreamGather(srv, comm.AllClients(P), 1, dim, chunk,
		func(samples []uint64) error {
			for i, n := range samples {
				if n != uint64(3+i) {
					t.Errorf("client %d samples %d", i, n)
				}
			}
			return nil
		},
		func(lo, hi int, payloads []*wire.Payload) error {
			for i, p := range payloads {
				copy(rebuilt[i][lo:hi], p.Dense)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range rebuilt {
		for k := range rebuilt[i] {
			want := float64(i+1)*10 + float64(k)*0.125
			if math.Float64bits(rebuilt[i][k]) != math.Float64bits(want) {
				t.Fatalf("client %d coordinate %d corrupted in transit", i, k)
			}
		}
	}
	if st.Chunks != P*wire.ChunkPlan(dim, chunk) {
		t.Fatalf("folded %d chunks", st.Chunks)
	}
}

// TestStreamAckTimeoutOverPubSub: a silent ack topic surfaces
// comm.ErrAckTimeout instead of hanging.
func TestStreamAckTimeoutOverPubSub(t *testing.T) {
	srv, clients, err := NewFLBroker(1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := clients[0].RecvChunkAck(10 * time.Millisecond); err != comm.ErrAckTimeout {
		t.Fatalf("got %v, want ErrAckTimeout", err)
	}
}
