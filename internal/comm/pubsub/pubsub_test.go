package pubsub

import (
	"sync"
	"testing"

	"repro/internal/wire"
)

func TestPublishFansOutToAllSubscribers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s1, _ := b.Subscribe("x", 1)
	s2, _ := b.Subscribe("x", 1)
	if err := b.Publish("x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Subscription{s1, s2} {
		m, ok := s.Recv()
		if !ok || string(m.Payload) != "hello" || m.Topic != "x" {
			t.Fatalf("recv %v %v", m, ok)
		}
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sa, _ := b.Subscribe("a", 1)
	if err := b.Publish("b", []byte("nope")); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("a", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	m, ok := sa.Recv()
	if !ok || string(m.Payload) != "yes" {
		t.Fatalf("topic isolation broken: %v", m)
	}
}

func TestPerSubscriberOrdering(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("t", 10)
	for i := byte(0); i < 10; i++ {
		if err := b.Publish("t", []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		m, _ := s.Recv()
		if m.Payload[0] != i {
			t.Fatalf("out of order: got %d want %d", m.Payload[0], i)
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("t", 1)
	s.Unsubscribe()
	if err := b.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Recv(); ok {
		t.Fatal("received after unsubscribe")
	}
}

func TestUnsubscribeIdempotent(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("t", 1)
	s.Unsubscribe()
	s.Unsubscribe() // must not panic
}

func TestClosedBrokerRejectsOps(t *testing.T) {
	b := NewBroker()
	b.Close()
	if _, err := b.Subscribe("t", 1); err != ErrClosed {
		t.Fatalf("subscribe on closed: %v", err)
	}
	if err := b.Publish("t", nil); err != ErrClosed {
		t.Fatalf("publish on closed: %v", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	s, _ := b.Subscribe("t", 1000)
	var wg sync.WaitGroup
	const publishers, each = 10, 100
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Publish("t", []byte{1}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < publishers*each; i++ {
		if _, ok := s.Recv(); !ok {
			t.Fatalf("lost message %d", i)
		}
	}
}

func TestFLBrokerRound(t *testing.T) {
	const P = 3
	srv, clients, err := NewFLBroker(P)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *ClientTransport) {
			defer wg.Done()
			gm, err := c.RecvGlobal()
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if err := c.SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Round: gm.Round, Primal: []float64{float64(i)}}); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i, c)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	ups, err := srv.Gather()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, u := range ups {
		if u == nil || u.ClientID != uint32(i) || u.Primal[0] != float64(i) {
			t.Fatalf("update %d: %+v", i, u)
		}
	}
}

func TestFLBrokerGatherOrdersOutOfOrderArrivals(t *testing.T) {
	const P = 4
	srv, clients, err := NewFLBroker(P)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Send updates in reverse client order; Gather must reindex by ID.
	for i := P - 1; i >= 0; i-- {
		if err := clients[i].SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Primal: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ups, err := srv.Gather()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range ups {
		if u.ClientID != uint32(i) {
			t.Fatalf("position %d holds client %d", i, u.ClientID)
		}
	}
}

func TestFLBrokerRejectsDuplicateUpdates(t *testing.T) {
	srv, clients, err := NewFLBroker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clients[0].SendUpdate(&wire.LocalUpdate{ClientID: 0, Primal: []float64{1}})
	clients[0].SendUpdate(&wire.LocalUpdate{ClientID: 0, Primal: []float64{2}})
	if _, err := srv.Gather(); err == nil {
		t.Fatal("duplicate update accepted")
	}
}

func TestFLBrokerStats(t *testing.T) {
	srv, clients, err := NewFLBroker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *ClientTransport) {
			defer wg.Done()
			if _, err := c.RecvGlobal(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Primal: make([]float64, 10)})
		}(i, c)
	}
	srv.Broadcast(&wire.GlobalModel{Weights: make([]float64, 10)})
	if _, err := srv.Gather(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	snap := srv.Stats()
	if snap.MsgsSent != 2 || snap.MsgsRecv != 2 {
		t.Fatalf("stats %+v", snap)
	}
	if snap.BytesSent == 0 || snap.BytesRecv == 0 {
		t.Fatalf("byte counters empty: %+v", snap)
	}
}
