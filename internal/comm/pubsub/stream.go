package pubsub

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// Chunk streaming over the broker: each client owns a chunk uplink topic
// (fl/chunk/<id>) and a chunk-ack downlink topic (fl/chunkack/<id>), so
// the per-client FIFO ordering of subscriptions gives StreamGather its
// ordered per-client demux. Chunks bypass the update topic and the
// obligation ledger, QoS-0 style; a slim LocalUpdate published after the
// stream settles the round's obligation.

// Topic names of the chunk-streaming path.
const (
	TopicChunk    = "fl/chunk"
	TopicChunkAck = "fl/chunkack"
)

// ChunkTopic returns the topic carrying client id's streamed chunks.
func ChunkTopic(id int) string { return fmt.Sprintf("%s/%d", TopicChunk, id) }

// ChunkAckTopic returns the topic carrying client id's chunk acks.
func ChunkAckTopic(id int) string { return fmt.Sprintf("%s/%d", TopicChunkAck, id) }

// RecvChunkFrom blocks for the next streamed chunk from one client.
func (s *ServerTransport) RecvChunkFrom(client int) (*wire.ModelChunk, error) {
	if client < 0 || client >= s.numClients {
		return nil, fmt.Errorf("pubsub: chunk receive from unknown client %d", client)
	}
	msg, ok := s.chunks[client].Recv()
	if !ok {
		return nil, ErrClosed
	}
	s.stats.AddRecv(len(msg.Payload))
	var mc wire.ModelChunk
	if err := mc.Unmarshal(wire.NewDecoder(msg.Payload)); err != nil {
		return nil, fmt.Errorf("pubsub: chunk decode from client %d: %w", client, err)
	}
	return &mc, nil
}

// SendChunkAck publishes one chunk ack to its sender's ack topic.
func (s *ServerTransport) SendChunkAck(client int, a *wire.ChunkAck) error {
	if client < 0 || client >= s.numClients {
		return fmt.Errorf("pubsub: chunk ack to unknown client %d", client)
	}
	e := wire.NewEncoder(nil)
	a.Marshal(e)
	if err := s.broker.Publish(TenantPrefix(s.tenant)+ChunkAckTopic(client), e.Bytes()); err != nil {
		return err
	}
	s.stats.AddSent(e.Len())
	return nil
}

// SendChunk publishes one model chunk to this client's chunk topic.
func (c *ClientTransport) SendChunk(mc *wire.ModelChunk) error {
	e := wire.NewEncoder(nil)
	mc.Marshal(e)
	if err := c.broker.Publish(TenantPrefix(c.tenant)+ChunkTopic(c.id), e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// RecvChunkAck blocks for the next chunk ack; timeout <= 0 waits
// forever, otherwise comm.ErrAckTimeout is returned when it elapses.
func (c *ClientTransport) RecvChunkAck(timeout time.Duration) (*wire.ChunkAck, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	msg, ok, timedOut := c.acks.RecvTimer(timer)
	if timedOut {
		return nil, comm.ErrAckTimeout
	}
	if !ok {
		return nil, ErrClosed
	}
	c.stats.AddRecv(len(msg.Payload))
	var a wire.ChunkAck
	if err := a.Unmarshal(wire.NewDecoder(msg.Payload)); err != nil {
		return nil, err
	}
	return &a, nil
}

// Interface conformance checks.
var (
	_ comm.ChunkSender   = (*ClientTransport)(nil)
	_ comm.ChunkGatherer = (*ServerTransport)(nil)
)
