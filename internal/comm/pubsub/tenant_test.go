package pubsub

import (
	"testing"

	"repro/internal/wire"
)

// TestTenantBrokerDemux runs two tenants over one shared broker and
// checks topic namespacing keeps their rounds fully independent.
func TestTenantBrokerDemux(t *testing.T) {
	b, servers, clients, err := NewTenantFLBroker([]int{2, 3})
	if err != nil {
		t.Fatalf("NewTenantFLBroker: %v", err)
	}
	defer b.Close()

	for tenant, st := range servers {
		if err := st.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{float64(tenant)}}); err != nil {
			t.Fatalf("tenant %d broadcast: %v", tenant, err)
		}
	}
	for tenant, row := range clients {
		for i, c := range row {
			m, err := c.RecvGlobal()
			if err != nil {
				t.Fatalf("tenant %d client %d recv: %v", tenant, i, err)
			}
			if m.Weights[0] != float64(tenant) {
				t.Fatalf("tenant %d client %d got tenant %v's model", tenant, i, m.Weights[0])
			}
			up := &wire.LocalUpdate{ClientID: uint32(i), Round: 1, Primal: []float64{float64(tenant), float64(i)}}
			if err := c.SendUpdate(up); err != nil {
				t.Fatalf("tenant %d client %d send: %v", tenant, i, err)
			}
		}
	}
	// Gather tenant 1 first: its updates must not be visible to tenant 0.
	for _, tenant := range []int{1, 0} {
		ups, err := servers[tenant].Gather()
		if err != nil {
			t.Fatalf("tenant %d gather: %v", tenant, err)
		}
		for i, u := range ups {
			if int(u.TenantID) != tenant || int(u.ClientID) != i {
				t.Fatalf("tenant %d slot %d got update {tenant %d client %d}", tenant, i, u.TenantID, u.ClientID)
			}
		}
	}
}

// TestTenantViewCloseIsNoop verifies a tenant transport's Close leaves the
// shared broker running for its neighbors.
func TestTenantViewCloseIsNoop(t *testing.T) {
	b, servers, clients, err := NewTenantFLBroker([]int{1, 1})
	if err != nil {
		t.Fatalf("NewTenantFLBroker: %v", err)
	}
	defer b.Close()

	if err := servers[0].Close(); err != nil {
		t.Fatalf("view close: %v", err)
	}
	if err := servers[1].Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatalf("broadcast after sibling close: %v", err)
	}
	if _, err := clients[1][0].RecvGlobal(); err != nil {
		t.Fatalf("recv after sibling close: %v", err)
	}
}

func TestTenantPrefix(t *testing.T) {
	if got := TenantPrefix(0); got != "" {
		t.Fatalf("TenantPrefix(0) = %q, want empty (legacy topics)", got)
	}
	if got := TenantGlobalTopic(2, 3); got != "t2/fl/global/3" {
		t.Fatalf("TenantGlobalTopic(2,3) = %q", got)
	}
	if got := TenantUpdateTopic(1); got != "t1/fl/update" {
		t.Fatalf("TenantUpdateTopic(1) = %q", got)
	}
}
