package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Ledger is the per-client update-obligation book shared by the server
// transports. Every non-final model dispatched to a client opens one
// obligation tagged with the model's round; the client's reply for that
// round settles it. Forgiveness (after a round timeout or a goodbye that
// never got its data) closes the obligation and remembers the round, so a
// straggler's late update for a forgiven round is swallowed on arrival
// instead of polluting a later gather — while a genuinely lost message
// leaves no trace that could swallow a future legitimate update.
type Ledger struct {
	mu       sync.Mutex
	pending  []bool
	expect   []uint32
	forgiven []map[uint32]bool
	nOwed    int
}

// NewLedger builds a ledger over n clients.
func NewLedger(n int) *Ledger {
	return &Ledger{
		pending:  make([]bool, n),
		expect:   make([]uint32, n),
		forgiven: make([]map[uint32]bool, n),
	}
}

// Open registers a new obligation for client c created by dispatching the
// round's model. A client with an obligation already open is a protocol
// error (one model, one reply).
func (l *Ledger) Open(c int, round uint32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending[c] {
		return fmt.Errorf("client %d already owes an update", c)
	}
	l.pending[c] = true
	l.expect[c] = round
	l.nOwed++
	return nil
}

// OpenAll registers obligations for every listed client, or none: a
// duplicate dispatch anywhere in the cohort leaves the ledger untouched.
func (l *Ledger) OpenAll(clients []int, round uint32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range clients {
		if l.pending[c] {
			return fmt.Errorf("client %d already owes an update", c)
		}
	}
	for _, c := range clients {
		l.pending[c] = true
		l.expect[c] = round
		l.nOwed++
	}
	return nil
}

// Rollback withdraws an obligation whose model never actually left (a send
// failure), keeping the book consistent for callers that recover.
func (l *Ledger) Rollback(c int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending[c] {
		l.pending[c] = false
		l.nOwed--
	}
}

// Admit decides what to do with an arrived update from client c for the
// given round: true settles the matching obligation (or tolerates a
// spontaneous arrival, which attribution-level checks handle downstream);
// false means the update belongs to a forgiven round and must be
// discarded.
func (l *Ledger) Admit(c int, round uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f := l.forgiven[c]; f != nil && f[round] {
		delete(f, round)
		return false
	}
	if l.pending[c] {
		l.pending[c] = false
		l.nOwed--
	}
	return true
}

// Forgive closes the open obligations of the listed clients, remembering
// each forgiven round so a late arrival for it is swallowed. Clients with
// nothing open are ignored.
func (l *Ledger) Forgive(clients []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range clients {
		if c < 0 || c >= len(l.pending) || !l.pending[c] {
			continue
		}
		l.pending[c] = false
		l.nOwed--
		if l.forgiven[c] == nil {
			l.forgiven[c] = make(map[uint32]bool)
		}
		l.forgiven[c][l.expect[c]] = true
	}
}

// Owed returns the number of open obligations.
func (l *Ledger) Owed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nOwed
}

// Outstanding returns the sorted clients with open obligations.
func (l *Ledger) Outstanding() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for c, p := range l.pending {
		if p {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// Pending reports whether client c has an open obligation.
func (l *Ledger) Pending(c int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return c >= 0 && c < len(l.pending) && l.pending[c]
}

// GatherWithDeadline implements the GatherUntil contract shared by the
// transports over their ledger and deadline-aware collect function:
// nothing outstanding is an error, n clamps to what is outstanding, and
// timeout <= 0 waits forever. Keeping the one copy here means the clamp
// and zero-outstanding semantics cannot drift between transports.
func GatherWithDeadline(l *Ledger, prefix string, n int, timeout time.Duration,
	collect func(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error)) ([]*wire.LocalUpdate, error) {
	if owed := l.Owed(); owed == 0 {
		return nil, fmt.Errorf("%s: gathering %d updates with only 0 outstanding", prefix, n)
	} else if n > owed {
		n = owed
	}
	if timeout <= 0 {
		return collect(n, nil)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	return collect(n, t.C)
}
