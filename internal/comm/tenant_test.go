package comm

import (
	"errors"
	"testing"
)

func TestTenantTableRouting(t *testing.T) {
	tab, err := NewTenantTable([]int{3, 1, 5})
	if err != nil {
		t.Fatalf("NewTenantTable: %v", err)
	}
	if got := tab.Tenants(); got != 3 {
		t.Fatalf("Tenants() = %d, want 3", got)
	}
	if got := tab.Total(); got != 9 {
		t.Fatalf("Total() = %d, want 9", got)
	}
	// Every (tenant, local) pair round-trips through Route and Owner.
	next := 0
	for tenant := 0; tenant < tab.Tenants(); tenant++ {
		for local := 0; local < tab.Clients(tenant); local++ {
			g, err := tab.Route(uint32(tenant), uint32(local))
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", tenant, local, err)
			}
			if g != next {
				t.Fatalf("Route(%d,%d) = %d, want %d", tenant, local, g, next)
			}
			if got := tab.Global(tenant, local); got != g {
				t.Fatalf("Global(%d,%d) = %d, want %d", tenant, local, got, g)
			}
			ot, ol := tab.Owner(g)
			if ot != tenant || ol != local {
				t.Fatalf("Owner(%d) = (%d,%d), want (%d,%d)", g, ot, ol, tenant, local)
			}
			next++
		}
	}
}

func TestTenantTableRejectsBadAddresses(t *testing.T) {
	tab, err := NewTenantTable([]int{2, 4})
	if err != nil {
		t.Fatalf("NewTenantTable: %v", err)
	}
	if _, err := tab.Route(2, 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := tab.Route(0, 2); err == nil {
		t.Fatal("out-of-range local id accepted")
	}
	if _, err := tab.Route(1, 4); err == nil {
		t.Fatal("out-of-range local id accepted for tenant 1")
	}
	if _, err := tab.Route(1<<31, 1<<31); err == nil {
		t.Fatal("huge tenant/local ids accepted")
	}
}

func TestTenantTableRejectsBadShapes(t *testing.T) {
	if _, err := NewTenantTable(nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := NewTenantTable([]int{3, 0}); err == nil {
		t.Fatal("zero-client tenant accepted")
	}
	if _, err := NewTenantTable([]int{-1}); err == nil {
		t.Fatal("negative-client tenant accepted")
	}
}
