package mpi

import (
	"math"
	"sync"
	"testing"

	"repro/internal/wire"
)

func TestSendRecvOrdering(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		c := w.Rank(0)
		c.Send(1, 7, []float64{1})
		c.Send(1, 7, []float64{2})
		close(done)
	}()
	c := w.Rank(1)
	a := c.Recv(0, 7)
	b := c.Recv(0, 7)
	if a[0] != 1 || b[0] != 2 {
		t.Fatalf("messages reordered: %v %v", a, b)
	}
	<-done
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	go w.Rank(0).Send(1, 1, []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	w.Rank(1).Recv(0, 2)
}

func TestBcast(t *testing.T) {
	const size = 5
	w := NewWorld(size)
	var wg sync.WaitGroup
	results := make([][]float64, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			var data []float64
			if r == 2 {
				data = []float64{3.14, 2.71}
			}
			results[r] = c.Bcast(2, data)
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if len(results[r]) != 2 || results[r][0] != 3.14 {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestGatherCollectsAllRanks(t *testing.T) {
	const size = 6
	w := NewWorld(size)
	var wg sync.WaitGroup
	var rootResult [][]float64
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			res := c.Gather(0, []float64{float64(r) * 10})
			if r == 0 {
				rootResult = res
			} else if res != nil {
				t.Errorf("non-root rank %d got non-nil gather result", r)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if rootResult[r][0] != float64(r)*10 {
			t.Fatalf("gather[%d] = %v", r, rootResult[r])
		}
	}
}

func TestScatter(t *testing.T) {
	const size = 4
	w := NewWorld(size)
	parts := make([][]float64, size)
	for i := range parts {
		parts[i] = []float64{float64(i)}
	}
	var wg sync.WaitGroup
	got := make([]float64, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			var in [][]float64
			if r == 1 {
				in = parts
			}
			out := c.Scatter(1, in)
			got[r] = out[0]
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if got[r] != float64(r) {
			t.Fatalf("scatter rank %d got %v", r, got[r])
		}
	}
}

func TestAllreduceSums(t *testing.T) {
	const size = 5
	w := NewWorld(size)
	var wg sync.WaitGroup
	results := make([][]float64, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			results[r] = c.Allreduce([]float64{1, float64(r)})
		}(r)
	}
	wg.Wait()
	// Sum of ranks 0..4 = 10; count = 5.
	for r := 0; r < size; r++ {
		if results[r][0] != 5 || results[r][1] != 10 {
			t.Fatalf("allreduce rank %d = %v", r, results[r])
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const size = 8
	w := NewWorld(size)
	var mu sync.Mutex
	phase1 := 0
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			mu.Lock()
			phase1++
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			if phase1 != size {
				t.Errorf("rank %d passed barrier before all arrived (%d/%d)", r, phase1, size)
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
}

func TestBarrierReusable(t *testing.T) {
	const size = 3
	w := NewWorld(size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			for i := 0; i < 10; i++ {
				c.Barrier()
			}
		}(r)
	}
	wg.Wait() // deadlock here would fail the test by timeout
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestRankOutOfRangePanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Rank(2)
}

func TestFLTransportRoundTrip(t *testing.T) {
	const P = 4
	server, clients := NewFLWorld(P)
	var wg sync.WaitGroup
	// Clients: receive global, send update with dual only for even IDs.
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *ClientTransport) {
			defer wg.Done()
			gm, err := ct.RecvGlobal()
			if err != nil {
				t.Errorf("client %d recv: %v", i, err)
				return
			}
			u := &wire.LocalUpdate{
				ClientID:   uint32(i),
				Round:      gm.Round,
				NumSamples: 100 + uint64(i),
				Primal:     []float64{float64(i), gm.Weights[0]},
				Epsilon:    math.Inf(1),
				ComputeSec: 0.5,
			}
			if i%2 == 0 {
				u.Dual = []float64{float64(-i)}
			}
			if err := ct.SendUpdate(u); err != nil {
				t.Errorf("client %d send: %v", i, err)
			}
		}(i, ct)
	}
	if err := server.Broadcast(&wire.GlobalModel{Round: 3, Weights: []float64{42, 7}}); err != nil {
		t.Fatal(err)
	}
	ups, err := server.Gather()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(ups) != P {
		t.Fatalf("gathered %d updates", len(ups))
	}
	for i, u := range ups {
		if u.ClientID != uint32(i) || u.Round != 3 {
			t.Fatalf("update %d: %+v", i, u)
		}
		if u.Primal[1] != 42 {
			t.Fatalf("client %d did not receive broadcast weights", i)
		}
		if i%2 == 0 && len(u.Dual) != 1 {
			t.Fatalf("client %d dual lost", i)
		}
		if i%2 == 1 && len(u.Dual) != 0 {
			t.Fatalf("client %d dual fabricated", i)
		}
		if !math.IsInf(u.Epsilon, 1) {
			t.Fatalf("epsilon lost: %v", u.Epsilon)
		}
	}
	// Byte accounting: server sent P copies of (7 header + 2 weights) floats.
	snap := server.Stats()
	if snap.BytesSent != uint64(P*9*8) {
		t.Fatalf("server bytes sent %d, want %d", snap.BytesSent, P*9*8)
	}
	if snap.MsgsRecv != P {
		t.Fatalf("server msgs recv %d", snap.MsgsRecv)
	}
}

func TestTransportDualOmissionSavesBytes(t *testing.T) {
	// The same update with and without a dual vector should differ by
	// exactly 8·m bytes on the wire — IIADMM's saving over ICEADMM.
	m := 1000
	primal := make([]float64, m)
	dual := make([]float64, m)
	with := packUpdate(&wire.LocalUpdate{Primal: primal, Dual: dual})
	without := packUpdate(&wire.LocalUpdate{Primal: primal})
	if len(with)-len(without) != m {
		t.Fatalf("dual adds %d floats, want %d", len(with)-len(without), m)
	}
}

func TestUnpackRejectsCorruptBuffers(t *testing.T) {
	if _, err := unpackUpdate([]float64{1, 2}); err == nil {
		t.Fatal("short update accepted")
	}
	buf := packUpdate(&wire.LocalUpdate{Primal: []float64{1, 2, 3}})
	if _, err := unpackUpdate(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated update accepted")
	}
	if _, err := unpackGlobal([]float64{1}); err == nil {
		t.Fatal("short global accepted")
	}
	g := packGlobal(&wire.GlobalModel{Round: 1, Weights: []float64{1}})
	if _, err := unpackGlobal(append(g, 9)); err == nil {
		t.Fatal("oversized global accepted")
	}
}

func BenchmarkGather16Ranks(b *testing.B) {
	const size = 16
	payload := make([]float64, 10000)
	for i := 0; i < b.N; i++ {
		w := NewWorld(size)
		var wg sync.WaitGroup
		for r := 1; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				w.Rank(r).Gather(0, payload)
			}(r)
		}
		w.Rank(0).Gather(0, nil)
		wg.Wait()
	}
}

func TestPackUpdateCarriesCompressedPayload(t *testing.T) {
	u := &wire.LocalUpdate{
		ClientID: 2, Round: 5, NumSamples: 10, Epsilon: math.Inf(1), InCohort: true,
		PrimalP: &wire.Payload{Enc: wire.EncSparse, Dim: 100, Indices: []uint32{3, 97}, Values: []float64{-1.5, 2.25}},
	}
	got, err := unpackUpdate(packUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if got.PrimalP == nil || got.PrimalP.Enc != wire.EncSparse || got.PrimalP.Dim != 100 {
		t.Fatalf("payload lost through the flat buffer: %+v", got.PrimalP)
	}
	dense, err := got.PrimalP.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dense[3] != -1.5 || dense[97] != 2.25 {
		t.Fatalf("payload values corrupted: %v %v", dense[3], dense[97])
	}
	// A compressed upload must be far smaller than its dense equivalent.
	denseBuf := packUpdate(&wire.LocalUpdate{ClientID: 2, Round: 5, Primal: make([]float64, 100)})
	if sparseLen := len(packUpdate(u)); sparseLen*2 >= len(denseBuf) {
		t.Fatalf("sparse buffer %d words vs dense %d: compression lost in transport", sparseLen, len(denseBuf))
	}
}

func TestPackGlobalCarriesCompressedPayload(t *testing.T) {
	codes := make([]byte, 6)
	for i, v := range []float64{1, -2, 0.5} {
		h := wire.Float16FromFloat64(v)
		codes[2*i] = byte(h)
		codes[2*i+1] = byte(h >> 8)
	}
	g := &wire.GlobalModel{Round: 1, Version: 3, WeightsP: &wire.Payload{Enc: wire.EncFloat16, Dim: 3, Codes: codes}}
	got, err := unpackGlobal(packGlobal(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.WeightsP == nil {
		t.Fatal("weights payload lost through the flat buffer")
	}
	dense, err := got.WeightsP.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dense[0] != 1 || dense[1] != -2 || dense[2] != 0.5 {
		t.Fatalf("weights corrupted: %v", dense)
	}
}

func TestUnpackRejectsCorruptPayloadWords(t *testing.T) {
	u := &wire.LocalUpdate{
		ClientID: 1, Round: 1,
		PrimalP: &wire.Payload{Enc: wire.EncSparse, Dim: 10, Indices: []uint32{1}, Values: []float64{2}},
	}
	buf := packUpdate(u)
	// A payload word that is not a 48-bit integer must be rejected, not
	// silently truncated into garbage bytes.
	buf[len(buf)-1] = math.Pi
	if _, err := unpackUpdate(buf); err == nil {
		t.Fatal("corrupt payload word accepted")
	}
	// Truncating the payload bytes must surface a typed codec error.
	buf2 := packUpdate(u)
	if _, err := unpackUpdate(buf2[:len(buf2)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
