// Package mpi implements an in-process message-passing world with the MPI
// collective operations APPFL uses (point-to-point send/recv, broadcast,
// gather, scatter, allreduce, barrier). Ranks are goroutines and links are
// buffered channels, so data really moves through the same call structure
// as MPI programs — without serialization, mirroring the zero-copy
// RDMA-enabled MPI path of the paper's Summit experiments (Section IV-C).
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// message is one point-to-point payload with its tag.
type message struct {
	tag  int
	data []float64
}

// World is a communicator spanning size ranks. Create it once and hand each
// goroutine its Rank handle.
type World struct {
	size int
	// mailboxes[from][to] preserves per-pair FIFO ordering.
	mailboxes [][]chan message

	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierC   *sync.Cond
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	mb := make([][]chan message, size)
	for i := range mb {
		mb[i] = make([]chan message, size)
		for j := range mb[i] {
			mb[i][j] = make(chan message, 8)
		}
	}
	w := &World{size: size, mailboxes: mb}
	w.barrierC = sync.NewCond(&w.barrierMu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns the communicator handle for rank r.
func (w *World) Rank(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.size))
	}
	return &Comm{world: w, rank: r}
}

// Comm is one rank's view of the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank `to` with the given tag. The data slice is
// transferred by reference — like MPI with RDMA, no copy is made; the
// sender must not mutate it afterwards.
func (c *Comm) Send(to int, tag int, data []float64) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", to))
	}
	c.world.mailboxes[c.rank][to] <- message{tag: tag, data: data}
}

// Recv blocks until a message with the given tag arrives from rank `from`.
// Messages from one sender arrive in order; a tag mismatch is a protocol
// error and panics.
func (c *Comm) Recv(from int, tag int) []float64 {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", from))
	}
	m := <-c.world.mailboxes[from][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
	}
	return m.data
}

// RecvTimeout is Recv with a patience bound: ok reports whether a
// message arrived before the timeout (timeout <= 0 waits forever). The
// chunk-streaming ack path uses it so a lost ack costs one retransmit
// instead of a hung client.
func (c *Comm) RecvTimeout(from int, tag int, timeout time.Duration) ([]float64, bool) {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", from))
	}
	if timeout <= 0 {
		return c.Recv(from, tag), true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case m := <-c.world.mailboxes[from][c.rank]:
		if m.tag != tag {
			panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
		}
		return m.data, true
	case <-t.C:
		return nil, false
	}
}

// recvAny blocks for the next message from rank `from`, whatever its
// tag, and returns both. The FL server's reply receiver uses it to
// demultiplex streamed chunks from the update that settles the round.
func (c *Comm) recvAny(from int) (int, []float64) {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", from))
	}
	m := <-c.world.mailboxes[from][c.rank]
	return m.tag, m.data
}

// Bcast distributes root's data to every rank and returns the received
// slice (root returns its own slice unchanged).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	const tag = -1
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// Gather collects every rank's contribution at root, indexed by rank; all
// non-root ranks receive nil. This mirrors MPI.gather() in the paper's
// server loop.
func (c *Comm) Gather(root int, contrib []float64) [][]float64 {
	const tag = -2
	if c.rank == root {
		out := make([][]float64, c.world.size)
		out[root] = contrib
		for r := 0; r < c.world.size; r++ {
			if r != root {
				out[r] = c.Recv(r, tag)
			}
		}
		return out
	}
	c.Send(root, tag, contrib)
	return nil
}

// Scatter distributes parts[r] to each rank r from root and returns the
// local part.
func (c *Comm) Scatter(root int, parts [][]float64) []float64 {
	const tag = -3
	if c.rank == root {
		if len(parts) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", c.world.size, len(parts)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tag, parts[r])
			}
		}
		return parts[root]
	}
	return c.Recv(root, tag)
}

// Allreduce sums equal-length vectors across all ranks and returns the sum
// on every rank (gather-to-0 + reduce + broadcast).
func (c *Comm) Allreduce(contrib []float64) []float64 {
	const root = 0
	parts := c.Gather(root, contrib)
	var sum []float64
	if c.rank == root {
		sum = make([]float64, len(contrib))
		for _, p := range parts {
			if len(p) != len(sum) {
				panic("mpi: Allreduce length mismatch across ranks")
			}
			for i, v := range p {
				sum[i] += v
			}
		}
	}
	return c.Bcast(root, sum)
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierN++
	if w.barrierN == w.size {
		w.barrierN = 0
		w.barrierGen++
		w.barrierC.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierC.Wait()
		}
	}
	w.barrierMu.Unlock()
}
