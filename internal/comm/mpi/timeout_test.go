package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// silentThenEcho runs a client that swallows its first model (simulating a
// crash or a lost upload) and echoes every later one.
func silentThenEcho(wg *sync.WaitGroup, c *ClientTransport, id int) {
	defer wg.Done()
	first := true
	for {
		gm, err := c.RecvGlobal()
		if err != nil || gm.Final {
			return
		}
		if first {
			first = false
			continue
		}
		c.SendUpdate(&wire.LocalUpdate{
			ClientID: uint32(id), Round: gm.Round, NumSamples: 1, Primal: []float64{float64(id)},
		})
	}
}

// echo runs a client that echoes every model.
func echo(wg *sync.WaitGroup, c *ClientTransport, id int) {
	defer wg.Done()
	for {
		gm, err := c.RecvGlobal()
		if err != nil || gm.Final {
			return
		}
		c.SendUpdate(&wire.LocalUpdate{
			ClientID: uint32(id), Round: gm.Round, NumSamples: 1, Primal: []float64{float64(id)},
		})
	}
}

func TestGatherUntilTimesOutOnSilentClient(t *testing.T) {
	srv, clients := NewFLWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go silentThenEcho(&wg, clients[0], 0)
	go echo(&wg, clients[1], 1)

	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherUntil(2, 200*time.Millisecond)
	if !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v (%d updates)", err, len(got))
	}
	if len(got) != 1 || got[0].ClientID != 1 {
		t.Fatalf("partial batch %+v, want just client 1", got)
	}
	if out := srv.Outstanding(); len(out) != 1 || out[0] != 0 {
		t.Fatalf("outstanding %v, want [0]", out)
	}
	srv.Forgive([]int{0})
	if out := srv.Outstanding(); len(out) != 0 {
		t.Fatalf("outstanding after forgive %v", out)
	}

	// The forgiven client can be scheduled again and its round-2 reply is
	// delivered normally.
	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.GatherFrom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Round != 2 || got[1].Round != 2 {
		t.Fatalf("round-2 gather %+v", got)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherUntilDiscardsForgivenLateArrival(t *testing.T) {
	srv, clients := NewFLWorld(1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := clients[0]
		gm, _ := c.RecvGlobal()
		<-release // hold the round-1 reply until after forgiveness
		c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{9}})
		for {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{7}})
		}
	}()

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherUntil(1, 50*time.Millisecond); !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v", err)
	}
	srv.Forgive([]int{0})
	close(release) // the stale round-1 update is now in flight

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherFrom([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	// The stale round-1 reply must have been swallowed, not delivered.
	if len(got) != 1 || got[0].Round != 2 || got[0].Primal[0] != 7 {
		t.Fatalf("gather returned %+v, want the fresh round-2 update", got[0])
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestGatherUntilClampsToOutstanding: asking for more than is in flight
// waits only for what exists instead of erroring or hanging.
func TestGatherUntilClampsToOutstanding(t *testing.T) {
	srv, clients := NewFLWorld(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go echo(&wg, clients[0], 0)

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherUntil(5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("clamped gather returned %d updates, want 1", len(got))
	}
	if _, err := srv.GatherUntil(1, 10*time.Millisecond); err == nil {
		t.Fatal("GatherUntil with nothing outstanding accepted")
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	clients[1].Close()
}

// TestGatherUntilRaceLateArrivalVsDeadline drives many rounds where the
// reply lands right around the deadline — the timeout path's ledger
// bookkeeping must stay race-free (run with -race) and every round must
// end in exactly one of the two legal outcomes.
func TestGatherUntilRaceLateArrivalVsDeadline(t *testing.T) {
	srv, clients := NewFLWorld(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := clients[0]
		for i := 0; ; i++ {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			if i%2 == 1 {
				time.Sleep(2 * time.Millisecond) // sometimes straddle the deadline
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{1}})
		}
	}()
	for round := 1; round <= 40; round++ {
		if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: uint32(round), Weights: []float64{1}}); err != nil {
			t.Fatal(err)
		}
		got, err := srv.GatherUntil(1, 2*time.Millisecond)
		switch {
		case err == nil:
			if len(got) != 1 || got[0].Round != uint32(round) {
				t.Fatalf("round %d: delivered %+v", round, got)
			}
		case errors.Is(err, comm.ErrRoundTimeout):
			srv.Forgive([]int{0})
		default:
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
