package mpi

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// TestStreamOverMPI: a chunked upload over the MPI world reassembles
// every client's vector bit for bit through the packed-bytes framing.
// The stream follows the real protocol: the server dispatches a model
// (opening the obligation whose reply receiver routes the chunks), the
// cohort streams, and a slim update settles each obligation.
func TestStreamOverMPI(t *testing.T) {
	const P, dim, chunk = 3, 500, 64
	server, clients := NewFLWorld(P)
	var wg sync.WaitGroup
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *ClientTransport) {
			defer wg.Done()
			if _, err := ct.RecvGlobal(); err != nil {
				t.Errorf("client %d recv global: %v", i, err)
				return
			}
			v := make([]float64, dim)
			for k := range v {
				v[k] = float64(i+1)*1000 + float64(k)*0.25
			}
			u := &wire.LocalUpdate{
				ClientID:   uint32(i),
				Round:      2,
				NumSamples: uint64(5 + i),
				Primal:     v,
			}
			if err := comm.StreamUpload(ct, u, chunk,
				comm.UploadOptions{AckTimeout: time.Second, MaxRetries: 2}); err != nil {
				t.Errorf("client %d stream: %v", i, err)
				return
			}
			slim := &wire.LocalUpdate{ClientID: uint32(i), Round: 2, NumSamples: uint64(5 + i)}
			if err := ct.SendUpdate(slim); err != nil {
				t.Errorf("client %d slim update: %v", i, err)
			}
		}(i, ct)
	}
	if err := server.SendTo(comm.AllClients(P), &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	rebuilt := make([][]float64, P)
	for i := range rebuilt {
		rebuilt[i] = make([]float64, dim)
	}
	st, err := comm.StreamGather(server, comm.AllClients(P), 2, dim, chunk,
		func(samples []uint64) error {
			for i, n := range samples {
				if n != uint64(5+i) {
					t.Errorf("client %d samples %d", i, n)
				}
			}
			return nil
		},
		func(lo, hi int, payloads []*wire.Payload) error {
			for i, p := range payloads {
				copy(rebuilt[i][lo:hi], p.Dense)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Gather(); err != nil { // slim updates settle the obligations
		t.Fatal(err)
	}
	wg.Wait()
	for i := range rebuilt {
		for k := range rebuilt[i] {
			want := float64(i+1)*1000 + float64(k)*0.25
			if math.Float64bits(rebuilt[i][k]) != math.Float64bits(want) {
				t.Fatalf("client %d coordinate %d corrupted in transit", i, k)
			}
		}
	}
	if st.Chunks != P*wire.ChunkPlan(dim, chunk) {
		t.Fatalf("folded %d chunks", st.Chunks)
	}
	// The transports are lossless in-process channels: no retransmits.
	if st.Duplicates != 0 {
		t.Fatalf("absorbed %d duplicates over a lossless world", st.Duplicates)
	}
}

// TestStreamAckTimeoutOverMPI: an ack that never comes surfaces
// comm.ErrAckTimeout through Comm.RecvTimeout instead of hanging.
func TestStreamAckTimeoutOverMPI(t *testing.T) {
	_, clients := NewFLWorld(1)
	if _, err := clients[0].RecvChunkAck(10 * time.Millisecond); err != comm.ErrAckTimeout {
		t.Fatalf("got %v, want ErrAckTimeout", err)
	}
}
