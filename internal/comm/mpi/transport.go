package mpi

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// The FL transport runs on a world of P+1 ranks: rank 0 is the server and
// ranks 1..P are clients. Structured messages travel as flat float64
// buffers with a small numeric header — a buffer copy, not a serialization
// pass, mirroring how MPI with RDMA moves model tensors directly.
//
// Cohort scheduling rules out world-wide collectives (a Bcast would block
// on ranks that are not scheduled this round), so the adapter uses tagged
// point-to-point sends: one tagGlobal message per scheduled client, one
// tagUpdate reply per delivered model. Every dispatched non-final model
// registers a receiver goroutine for exactly one reply, which feeds a
// shared arrival channel; Gather/GatherFrom/GatherAny drain it.

// Message tags of the FL protocol.
const (
	tagGlobal = -10 // server → client: packed GlobalModel
	tagUpdate = -11 // client → server: packed LocalUpdate
)

// arrival is one received update buffer, tagged with its source rank.
type arrival struct {
	rank int
	buf  []float64
}

// ServerTransport adapts the server rank to comm.ServerTransport.
type ServerTransport struct {
	c        *Comm
	stats    comm.Stats
	arrivals chan arrival
	chunks   []chan []float64 // per-client streamed chunk buffers
	ledger   *comm.Ledger
}

// ClientTransport adapts a client rank to comm.ClientTransport.
type ClientTransport struct {
	c     *Comm
	stats comm.Stats
}

// NewFLWorld builds a world for one server and numClients clients and
// returns the transports. Client i (0-based) runs on rank i+1.
func NewFLWorld(numClients int) (*ServerTransport, []*ClientTransport) {
	w := NewWorld(numClients + 1)
	server := &ServerTransport{
		c:        w.Rank(0),
		arrivals: make(chan arrival, numClients),
		chunks:   make([]chan []float64, numClients),
		ledger:   comm.NewLedger(numClients),
	}
	for i := range server.chunks {
		// Capacity 4 holds the window-1 steady state plus a retransmit
		// racing its late ack, matching comm.ChunkPipe.
		server.chunks[i] = make(chan []float64, 4)
	}
	clients := make([]*ClientTransport, numClients)
	for i := range clients {
		clients[i] = &ClientTransport{c: w.Rank(i + 1)}
	}
	return server, clients
}

// Compressed payloads (wire.Payload) ride the numeric buffers as their
// wire-codec bytes packed six per float64 word: 48-bit integers are
// exactly representable, so no word can land on a NaN/denormal bit
// pattern the FP path might alter. The 8/6 inflation still leaves top-k
// and quantized uploads far below the dense buffer size, so the MPI byte
// accounting tracks the compression honestly.

// packBytesWords appends b to buf as 48-bit little-endian words.
func packBytesWords(buf []float64, b []byte) []float64 {
	for i := 0; i < len(b); i += 6 {
		var w uint64
		for j := 0; j < 6 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * j)
		}
		buf = append(buf, float64(w))
	}
	return buf
}

// byteWords is the word count packBytesWords emits for n bytes.
func byteWords(n int) int { return (n + 5) / 6 }

// unpackBytesWords reverses packBytesWords for n original bytes.
func unpackBytesWords(words []float64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for _, f := range words {
		if f < 0 || f != math.Trunc(f) || f >= 1<<48 {
			return nil, fmt.Errorf("mpi: corrupt payload word %v", f)
		}
		w := uint64(f)
		for j := 0; j < 6 && len(out) < n; j++ {
			out = append(out, byte(w>>(8*j)))
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("mpi: payload words carry %d bytes, header says %d", len(out), n)
	}
	return out, nil
}

// marshalPayload renders a wire.Payload to its codec bytes (nil → empty).
func marshalPayload(p *wire.Payload) []byte {
	if p == nil {
		return nil
	}
	e := wire.NewEncoder(nil)
	p.Marshal(e)
	return e.Bytes()
}

// unmarshalPayload decodes and validates codec bytes back to a Payload.
func unmarshalPayload(b []byte) (*wire.Payload, error) {
	var p wire.Payload
	if err := p.Unmarshal(wire.NewDecoder(b)); err != nil {
		return nil, err
	}
	return &p, nil
}

// packGlobal flattens a GlobalModel into one buffer.
func packGlobal(m *wire.GlobalModel) []float64 {
	pb := marshalPayload(m.WeightsP)
	buf := make([]float64, 7+len(m.Weights), 7+len(m.Weights)+byteWords(len(pb)))
	buf[0] = float64(m.Round)
	if m.Final {
		buf[1] = 1
	}
	buf[2] = m.Rho
	buf[3] = float64(m.Version)
	buf[4] = float64(m.CohortSize)
	buf[5] = float64(len(m.Weights))
	buf[6] = float64(len(pb))
	copy(buf[7:], m.Weights)
	return packBytesWords(buf, pb)
}

func unpackGlobal(buf []float64) (*wire.GlobalModel, error) {
	if len(buf) < 7 {
		return nil, fmt.Errorf("mpi: global-model buffer too short (%d)", len(buf))
	}
	n, npb := int(buf[5]), int(buf[6])
	if n < 0 || npb < 0 {
		return nil, fmt.Errorf("mpi: global-model header counts negative (%d weights, %d payload bytes)", n, npb)
	}
	if len(buf) != 7+n+byteWords(npb) {
		return nil, fmt.Errorf("mpi: global-model buffer length %d, header says %d weights + %d payload bytes", len(buf), n, npb)
	}
	m := &wire.GlobalModel{
		Round:      uint32(buf[0]),
		Final:      buf[1] != 0,
		Rho:        buf[2],
		Version:    uint64(buf[3]),
		CohortSize: uint32(buf[4]),
		Weights:    buf[7 : 7+n],
	}
	if npb > 0 {
		pb, err := unpackBytesWords(buf[7+n:], npb)
		if err != nil {
			return nil, err
		}
		p, err := unmarshalPayload(pb)
		if err != nil {
			return nil, err
		}
		m.WeightsP = p
	}
	return m, nil
}

// packUpdate flattens a LocalUpdate into one buffer.
func packUpdate(m *wire.LocalUpdate) []float64 {
	pb := marshalPayload(m.PrimalP)
	buf := make([]float64, 12+len(m.Primal)+len(m.Dual), 12+len(m.Primal)+len(m.Dual)+byteWords(len(pb)))
	buf[0] = float64(m.ClientID)
	buf[1] = float64(m.Round)
	buf[2] = float64(m.NumSamples)
	buf[3] = m.Epsilon
	buf[4] = m.ComputeSec
	buf[5] = float64(m.BaseVersion)
	if m.InCohort {
		buf[6] = 1
	}
	buf[7] = float64(len(m.Primal))
	buf[8] = float64(len(m.Dual))
	buf[9] = float64(len(pb))
	buf[10] = float64(m.Control)
	buf[11] = float64(m.RejoinRound)
	copy(buf[12:], m.Primal)
	copy(buf[12+len(m.Primal):], m.Dual)
	return packBytesWords(buf, pb)
}

func unpackUpdate(buf []float64) (*wire.LocalUpdate, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("mpi: update buffer too short (%d)", len(buf))
	}
	np, nd, npb := int(buf[7]), int(buf[8]), int(buf[9])
	if np < 0 || nd < 0 || npb < 0 {
		return nil, fmt.Errorf("mpi: update header counts negative (%d primal, %d dual, %d payload bytes)", np, nd, npb)
	}
	if len(buf) != 12+np+nd+byteWords(npb) {
		return nil, fmt.Errorf("mpi: update buffer length %d, header says %d+%d payload + %d payload bytes", len(buf), np, nd, npb)
	}
	if c := buf[10]; c < 0 || c > 255 || c != math.Trunc(c) {
		return nil, fmt.Errorf("mpi: update carries invalid control %v", c)
	}
	if r := buf[11]; r < 0 || r >= 1<<32 || r != math.Trunc(r) {
		return nil, fmt.Errorf("mpi: update carries invalid rejoin round %v", r)
	}
	u := &wire.LocalUpdate{
		ClientID:    uint32(buf[0]),
		Round:       uint32(buf[1]),
		NumSamples:  uint64(buf[2]),
		Epsilon:     buf[3],
		ComputeSec:  buf[4],
		BaseVersion: uint64(buf[5]),
		InCohort:    buf[6] != 0,
		Control:     uint8(buf[10]),
		RejoinRound: uint32(buf[11]),
		Primal:      buf[12 : 12+np],
	}
	if nd > 0 {
		u.Dual = buf[12+np : 12+np+nd]
	}
	if npb > 0 {
		pb, err := unpackBytesWords(buf[12+np+nd:], npb)
		if err != nil {
			return nil, err
		}
		p, err := unmarshalPayload(pb)
		if err != nil {
			return nil, err
		}
		u.PrimalP = p
	}
	if math.IsNaN(u.Epsilon) {
		return nil, fmt.Errorf("mpi: update carries NaN epsilon")
	}
	return u, nil
}

// dispatch sends the packed model to one client and, for non-final models,
// registers a receiver for the obligatory reply.
func (s *ServerTransport) dispatch(client int, buf []float64, round uint32, final bool) error {
	if client < 0 || client >= s.c.Size()-1 {
		return fmt.Errorf("mpi: send to unknown client %d", client)
	}
	if !final {
		if err := s.ledger.Open(client, round); err != nil {
			return fmt.Errorf("mpi: %w", err)
		}
	}
	s.c.Send(client+1, tagGlobal, buf)
	s.stats.AddSent(8 * len(buf))
	if !final {
		// The reply receiver demultiplexes the client's uplink: streamed
		// chunks (which ride below the obligation) are routed to the chunk
		// queue until the tagUpdate settling the obligation arrives.
		go func() {
			for {
				tag, buf := s.c.recvAny(client + 1)
				switch tag {
				case tagChunk:
					s.chunks[client] <- buf
				case tagUpdate:
					s.arrivals <- arrival{rank: client, buf: buf}
					return
				default:
					panic(fmt.Sprintf("mpi: rank 0 expected tag %d or %d from %d, got %d",
						tagChunk, tagUpdate, client+1, tag))
				}
			}
		}()
	}
	return nil
}

// Broadcast delivers the global model to every client.
func (s *ServerTransport) Broadcast(m *wire.GlobalModel) error {
	return s.SendTo(comm.AllClients(s.c.Size()-1), m)
}

// SendTo delivers the global model to the listed clients only.
func (s *ServerTransport) SendTo(clients []int, m *wire.GlobalModel) error {
	buf := packGlobal(m)
	for _, c := range clients {
		if err := s.dispatch(c, buf, m.Round, m.Final); err != nil {
			return err
		}
	}
	return nil
}

// collect drains n arrivals in arrival order. A nil timer waits forever;
// otherwise the gather gives up when the timer fires and returns the
// partial batch with ErrRoundTimeout.
func (s *ServerTransport) collect(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	if owed := s.ledger.Owed(); n > owed {
		return nil, fmt.Errorf("mpi: gathering %d updates with only %d outstanding", n, owed)
	}
	out := make([]*wire.LocalUpdate, 0, n)
	for len(out) < n {
		var a arrival
		select {
		case a = <-s.arrivals:
		case <-timer:
			return out, fmt.Errorf("mpi: %d of %d updates after deadline: %w", len(out), n, comm.ErrRoundTimeout)
		}
		u, err := unpackUpdate(a.buf)
		if err != nil {
			return nil, err
		}
		s.stats.AddRecv(8 * len(a.buf))
		if !s.ledger.Admit(a.rank, u.Round) {
			continue // late update for a forgiven round: discard
		}
		out = append(out, u)
	}
	return out, nil
}

// Gather collects one update per client, ordered by client ID.
func (s *ServerTransport) Gather() ([]*wire.LocalUpdate, error) {
	return s.GatherFrom(comm.AllClients(s.c.Size() - 1))
}

// GatherFrom collects one update from each listed client, ordered as
// listed.
func (s *ServerTransport) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	got, err := s.collect(len(clients), nil)
	if err != nil {
		return nil, err
	}
	return comm.OrderByClient(clients, got)
}

// GatherAny collects the next n outstanding updates in arrival order.
func (s *ServerTransport) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	return s.collect(n, nil)
}

// GatherUntil collects up to n outstanding updates, giving up at the
// deadline; see comm.ServerTransport.
func (s *ServerTransport) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	return comm.GatherWithDeadline(s.ledger, "mpi", n, timeout, s.collect)
}

// Forgive closes the open obligations of the listed clients; their late
// updates, if any ever arrive, are discarded.
func (s *ServerTransport) Forgive(clients []int) { s.ledger.Forgive(clients) }

// Outstanding returns the sorted clients with open update obligations.
func (s *ServerTransport) Outstanding() []int { return s.ledger.Outstanding() }

// Stats returns the server's traffic snapshot.
func (s *ServerTransport) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close is a no-op for the in-process world.
func (s *ServerTransport) Close() error { return nil }

// RecvGlobal blocks for the next global model addressed to this client.
func (t *ClientTransport) RecvGlobal() (*wire.GlobalModel, error) {
	buf := t.c.Recv(0, tagGlobal)
	t.stats.AddRecv(8 * len(buf))
	return unpackGlobal(buf)
}

// SendUpdate uploads this client's update to the server rank.
func (t *ClientTransport) SendUpdate(m *wire.LocalUpdate) error {
	buf := packUpdate(m)
	t.c.Send(0, tagUpdate, buf)
	t.stats.AddSent(8 * len(buf))
	return nil
}

// Stats returns the client's traffic snapshot.
func (t *ClientTransport) Stats() comm.Snapshot { return t.stats.Snapshot() }

// Close is a no-op for the in-process world.
func (t *ClientTransport) Close() error { return nil }

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*ServerTransport)(nil)
	_ comm.ClientTransport = (*ClientTransport)(nil)
)
