package mpi

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/wire"
)

// The FL transport runs on a world of P+1 ranks: rank 0 is the server and
// ranks 1..P are clients. Structured messages travel as flat float64
// buffers with a small numeric header — a buffer copy, not a serialization
// pass, mirroring how MPI with RDMA moves model tensors directly.

// ServerTransport adapts a server rank to the comm.ServerTransport
// interface using genuine collective calls (Bcast, Gather).
type ServerTransport struct {
	c     *Comm
	stats comm.Stats
}

// ClientTransport adapts a client rank to comm.ClientTransport.
type ClientTransport struct {
	c     *Comm
	stats comm.Stats
}

// NewFLWorld builds a world for one server and numClients clients and
// returns the transports. Client i (0-based) runs on rank i+1.
func NewFLWorld(numClients int) (*ServerTransport, []*ClientTransport) {
	w := NewWorld(numClients + 1)
	server := &ServerTransport{c: w.Rank(0)}
	clients := make([]*ClientTransport, numClients)
	for i := range clients {
		clients[i] = &ClientTransport{c: w.Rank(i + 1)}
	}
	return server, clients
}

// packGlobal flattens a GlobalModel into one buffer.
func packGlobal(m *wire.GlobalModel) []float64 {
	buf := make([]float64, 4+len(m.Weights))
	buf[0] = float64(m.Round)
	if m.Final {
		buf[1] = 1
	}
	buf[2] = m.Rho
	buf[3] = float64(len(m.Weights))
	copy(buf[4:], m.Weights)
	return buf
}

func unpackGlobal(buf []float64) (*wire.GlobalModel, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: global-model buffer too short (%d)", len(buf))
	}
	n := int(buf[3])
	if len(buf) != 4+n {
		return nil, fmt.Errorf("mpi: global-model buffer length %d, header says %d weights", len(buf), n)
	}
	return &wire.GlobalModel{
		Round:   uint32(buf[0]),
		Final:   buf[1] != 0,
		Rho:     buf[2],
		Weights: buf[4 : 4+n],
	}, nil
}

// packUpdate flattens a LocalUpdate into one buffer.
func packUpdate(m *wire.LocalUpdate) []float64 {
	buf := make([]float64, 7+len(m.Primal)+len(m.Dual))
	buf[0] = float64(m.ClientID)
	buf[1] = float64(m.Round)
	buf[2] = float64(m.NumSamples)
	buf[3] = m.Epsilon
	buf[4] = m.ComputeSec
	buf[5] = float64(len(m.Primal))
	buf[6] = float64(len(m.Dual))
	copy(buf[7:], m.Primal)
	copy(buf[7+len(m.Primal):], m.Dual)
	return buf
}

func unpackUpdate(buf []float64) (*wire.LocalUpdate, error) {
	if len(buf) < 7 {
		return nil, fmt.Errorf("mpi: update buffer too short (%d)", len(buf))
	}
	np, nd := int(buf[5]), int(buf[6])
	if len(buf) != 7+np+nd {
		return nil, fmt.Errorf("mpi: update buffer length %d, header says %d+%d payload", len(buf), np, nd)
	}
	u := &wire.LocalUpdate{
		ClientID:   uint32(buf[0]),
		Round:      uint32(buf[1]),
		NumSamples: uint64(buf[2]),
		Epsilon:    buf[3],
		ComputeSec: buf[4],
		Primal:     buf[7 : 7+np],
	}
	if nd > 0 {
		u.Dual = buf[7+np : 7+np+nd]
	}
	if math.IsNaN(u.Epsilon) {
		return nil, fmt.Errorf("mpi: update carries NaN epsilon")
	}
	return u, nil
}

// Broadcast delivers the global model to every client rank via Bcast.
func (s *ServerTransport) Broadcast(m *wire.GlobalModel) error {
	buf := packGlobal(m)
	s.c.Bcast(0, buf)
	// One logical message per client, 8 bytes per float64, as MPI would move.
	for i := 0; i < s.c.Size()-1; i++ {
		s.stats.AddSent(8 * len(buf))
	}
	return nil
}

// Gather collects one update per client via the Gather collective.
func (s *ServerTransport) Gather() ([]*wire.LocalUpdate, error) {
	parts := s.c.Gather(0, nil)
	out := make([]*wire.LocalUpdate, 0, s.c.Size()-1)
	for r := 1; r < s.c.Size(); r++ {
		u, err := unpackUpdate(parts[r])
		if err != nil {
			return nil, err
		}
		s.stats.AddRecv(8 * len(parts[r]))
		out = append(out, u)
	}
	return out, nil
}

// Stats returns the server's traffic snapshot.
func (s *ServerTransport) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close is a no-op for the in-process world.
func (s *ServerTransport) Close() error { return nil }

// RecvGlobal participates in the broadcast and returns the global model.
func (t *ClientTransport) RecvGlobal() (*wire.GlobalModel, error) {
	buf := t.c.Bcast(0, nil)
	t.stats.AddRecv(8 * len(buf))
	return unpackGlobal(buf)
}

// SendUpdate participates in the gather, contributing this client's update.
func (t *ClientTransport) SendUpdate(m *wire.LocalUpdate) error {
	buf := packUpdate(m)
	t.c.Gather(0, buf)
	t.stats.AddSent(8 * len(buf))
	return nil
}

// Stats returns the client's traffic snapshot.
func (t *ClientTransport) Stats() comm.Snapshot { return t.stats.Snapshot() }

// Close is a no-op for the in-process world.
func (t *ClientTransport) Close() error { return nil }

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*ServerTransport)(nil)
	_ comm.ClientTransport = (*ClientTransport)(nil)
)
