package mpi

import (
	"sync"
	"testing"

	"repro/internal/wire"
)

// echoClients runs each listed client transport as a loop echoing one
// update per received non-final model.
func echoClients(t *testing.T, clients []*ClientTransport) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *ClientTransport) {
			defer wg.Done()
			for {
				gm, err := ct.RecvGlobal()
				if err != nil {
					t.Errorf("client %d recv: %v", i, err)
					return
				}
				if gm.Final {
					return
				}
				err = ct.SendUpdate(&wire.LocalUpdate{
					ClientID:    uint32(i),
					Round:       gm.Round,
					NumSamples:  1,
					Primal:      []float64{float64(i)},
					BaseVersion: gm.Version,
					InCohort:    true,
				})
				if err != nil {
					t.Errorf("client %d send: %v", i, err)
					return
				}
			}
		}(i, ct)
	}
	return &wg
}

func TestSendToGatherFromCohortSubset(t *testing.T) {
	server, clients := NewFLWorld(5)
	wg := echoClients(t, clients)
	cohort := []int{1, 3, 4}
	if err := server.SendTo(cohort, &wire.GlobalModel{Round: 2, Version: 7, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	ups, err := server.GatherFrom(cohort)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 3 {
		t.Fatalf("gathered %d updates", len(ups))
	}
	for i, id := range cohort {
		if int(ups[i].ClientID) != id {
			t.Fatalf("position %d: client %d, want %d", i, ups[i].ClientID, id)
		}
		if ups[i].BaseVersion != 7 {
			t.Fatalf("client %d lost the base version: %d", id, ups[i].BaseVersion)
		}
		if !ups[i].InCohort {
			t.Fatalf("client %d lost the cohort flag", id)
		}
	}
	if err := server.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherAnyReleasesOnQuorum(t *testing.T) {
	server, clients := NewFLWorld(4)
	wg := echoClients(t, clients)
	if err := server.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	first, err := server.GatherAny(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("quorum batch size %d", len(first))
	}
	rest, err := server.GatherAny(2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, u := range append(first, rest...) {
		if seen[u.ClientID] {
			t.Fatalf("client %d delivered twice", u.ClientID)
		}
		seen[u.ClientID] = true
	}
	if len(seen) != 4 {
		t.Fatalf("collected %d distinct clients", len(seen))
	}
	if err := server.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherAnyRejectsOverdraw(t *testing.T) {
	server, clients := NewFLWorld(3)
	wg := echoClients(t, clients)
	if err := server.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.GatherAny(2); err == nil {
		t.Fatal("gathering more than outstanding accepted")
	}
	if _, err := server.GatherAny(1); err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestDoubleDispatchToOneClientRejected(t *testing.T) {
	server, clients := NewFLWorld(2)
	wg := echoClients(t, clients)
	if err := server.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := server.SendTo([]int{0}, &wire.GlobalModel{Round: 2, Weights: []float64{0}}); err == nil {
		t.Fatal("second dispatch before the reply accepted")
	}
	if _, err := server.GatherAny(1); err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
