package mpi

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// Chunk streaming over the MPI world: chunks and acks travel as their
// wire-codec bytes packed into numeric buffers (packBytesWords), one
// header word carrying the byte count. Per-pair FIFO mailboxes give the
// per-client ordered demux comm.StreamGather needs for free.

// Message tags of the streaming path.
const (
	tagChunk    = -12 // client → server: packed ModelChunk
	tagChunkAck = -13 // server → client: packed ChunkAck
)

// packWireBytes prefixes codec bytes with their count and packs them.
func packWireBytes(b []byte) []float64 {
	buf := make([]float64, 1, 1+byteWords(len(b)))
	buf[0] = float64(len(b))
	return packBytesWords(buf, b)
}

// unpackWireBytes reverses packWireBytes.
func unpackWireBytes(buf []float64) ([]byte, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("mpi: chunk buffer too short (%d)", len(buf))
	}
	n := buf[0]
	if n < 0 || n != math.Trunc(n) || n >= 1<<48 {
		return nil, fmt.Errorf("mpi: chunk buffer header %v invalid", n)
	}
	return unpackBytesWords(buf[1:], int(n))
}

// SendChunk uploads one model chunk to the server rank.
func (t *ClientTransport) SendChunk(c *wire.ModelChunk) error {
	e := wire.NewEncoder(nil)
	c.Marshal(e)
	buf := packWireBytes(e.Bytes())
	t.c.Send(0, tagChunk, buf)
	t.stats.AddSent(8 * len(buf))
	return nil
}

// RecvChunkAck blocks for the next chunk ack; timeout <= 0 waits
// forever, otherwise comm.ErrAckTimeout is returned when it elapses.
func (t *ClientTransport) RecvChunkAck(timeout time.Duration) (*wire.ChunkAck, error) {
	buf, ok := t.c.RecvTimeout(0, tagChunkAck, timeout)
	if !ok {
		return nil, comm.ErrAckTimeout
	}
	t.stats.AddRecv(8 * len(buf))
	b, err := unpackWireBytes(buf)
	if err != nil {
		return nil, err
	}
	var a wire.ChunkAck
	if err := a.Unmarshal(wire.NewDecoder(b)); err != nil {
		return nil, err
	}
	return &a, nil
}

// RecvChunkFrom blocks for the next chunk from one client. Chunks are
// routed here by the dispatch reply receiver, so a stream is only
// receivable while the client has an open obligation (the runner's flow:
// SendTo, stream, slim settling update).
func (s *ServerTransport) RecvChunkFrom(client int) (*wire.ModelChunk, error) {
	if client < 0 || client >= s.c.Size()-1 {
		return nil, fmt.Errorf("mpi: chunk receive from unknown client %d", client)
	}
	buf := <-s.chunks[client]
	s.stats.AddRecv(8 * len(buf))
	b, err := unpackWireBytes(buf)
	if err != nil {
		return nil, err
	}
	var mc wire.ModelChunk
	if err := mc.Unmarshal(wire.NewDecoder(b)); err != nil {
		return nil, err
	}
	return &mc, nil
}

// SendChunkAck acknowledges one folded chunk back to its sender's rank.
func (s *ServerTransport) SendChunkAck(client int, a *wire.ChunkAck) error {
	if client < 0 || client >= s.c.Size()-1 {
		return fmt.Errorf("mpi: chunk ack to unknown client %d", client)
	}
	e := wire.NewEncoder(nil)
	a.Marshal(e)
	buf := packWireBytes(e.Bytes())
	s.c.Send(client+1, tagChunkAck, buf)
	s.stats.AddSent(8 * len(buf))
	return nil
}

// Interface conformance checks.
var (
	_ comm.ChunkSender   = (*ClientTransport)(nil)
	_ comm.ChunkGatherer = (*ServerTransport)(nil)
)
