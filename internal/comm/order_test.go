package comm

import (
	"testing"

	"repro/internal/wire"
)

func lu(id int) *wire.LocalUpdate { return &wire.LocalUpdate{ClientID: uint32(id)} }

func TestOrderByClientReordersArrivals(t *testing.T) {
	out, err := OrderByClient([]int{3, 1, 5}, []*wire.LocalUpdate{lu(5), lu(3), lu(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{3, 1, 5} {
		if int(out[i].ClientID) != want {
			t.Fatalf("position %d: client %d, want %d", i, out[i].ClientID, want)
		}
	}
}

func TestOrderByClientRejectsDuplicates(t *testing.T) {
	if _, err := OrderByClient([]int{1, 2}, []*wire.LocalUpdate{lu(1), lu(1)}); err == nil {
		t.Fatal("duplicate update accepted")
	}
}

func TestOrderByClientRejectsMissing(t *testing.T) {
	if _, err := OrderByClient([]int{1, 2}, []*wire.LocalUpdate{lu(1)}); err == nil {
		t.Fatal("missing update accepted")
	}
}

func TestOrderByClientRejectsOutOfCohort(t *testing.T) {
	if _, err := OrderByClient([]int{1}, []*wire.LocalUpdate{lu(7)}); err == nil {
		t.Fatal("out-of-cohort update accepted")
	}
}

func TestOrderSubsetToleratesMissing(t *testing.T) {
	out, err := OrderSubset([]int{3, 1, 5}, []*wire.LocalUpdate{lu(5), lu(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ClientID != 3 || out[1].ClientID != 5 {
		t.Fatalf("subset order %v", out)
	}
	if _, err := OrderSubset([]int{1, 2}, []*wire.LocalUpdate{lu(1), lu(1)}); err == nil {
		t.Fatal("duplicate update accepted")
	}
	if _, err := OrderSubset([]int{1}, []*wire.LocalUpdate{lu(7)}); err == nil {
		t.Fatal("out-of-cohort update accepted")
	}
}

func TestMissingReportsAbsenteesInCohortOrder(t *testing.T) {
	got := Missing([]int{4, 2, 9}, []*wire.LocalUpdate{lu(2)})
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("missing = %v, want [4 9]", got)
	}
	if m := Missing([]int{1}, []*wire.LocalUpdate{lu(1)}); len(m) != 0 {
		t.Fatalf("nothing missing, got %v", m)
	}
}

func TestLedgerForgivenessIsRoundKeyed(t *testing.T) {
	l := NewLedger(2)
	if err := l.Open(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Open(0, 2); err == nil {
		t.Fatal("double obligation accepted")
	}
	l.Forgive([]int{0, 1}) // client 1 has nothing open: ignored
	if l.Owed() != 0 {
		t.Fatalf("owed %d after forgiveness", l.Owed())
	}
	// The forgiven round is discarded once; the same round later (after a
	// fresh obligation) is delivered.
	if l.Admit(0, 1) {
		t.Fatal("forgiven round-1 update delivered")
	}
	if err := l.Open(0, 2); err != nil {
		t.Fatal(err)
	}
	if !l.Admit(0, 2) {
		t.Fatal("fresh round-2 update discarded")
	}
	// A lost message (forgiven round 3 that never arrives) must not eat a
	// future legitimate update.
	if err := l.Open(1, 3); err != nil {
		t.Fatal(err)
	}
	l.Forgive([]int{1})
	if err := l.Open(1, 4); err != nil {
		t.Fatal(err)
	}
	if !l.Admit(1, 4) {
		t.Fatal("round-4 update eaten by round-3 forgiveness")
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Fatalf("outstanding %v", out)
	}
}

func TestAllClientsIdentity(t *testing.T) {
	ids := AllClients(3)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("AllClients(3) = %v", ids)
	}
	if len(AllClients(0)) != 0 {
		t.Fatal("AllClients(0) not empty")
	}
}
