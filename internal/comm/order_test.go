package comm

import (
	"testing"

	"repro/internal/wire"
)

func lu(id int) *wire.LocalUpdate { return &wire.LocalUpdate{ClientID: uint32(id)} }

func TestOrderByClientReordersArrivals(t *testing.T) {
	out, err := OrderByClient([]int{3, 1, 5}, []*wire.LocalUpdate{lu(5), lu(3), lu(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{3, 1, 5} {
		if int(out[i].ClientID) != want {
			t.Fatalf("position %d: client %d, want %d", i, out[i].ClientID, want)
		}
	}
}

func TestOrderByClientRejectsDuplicates(t *testing.T) {
	if _, err := OrderByClient([]int{1, 2}, []*wire.LocalUpdate{lu(1), lu(1)}); err == nil {
		t.Fatal("duplicate update accepted")
	}
}

func TestOrderByClientRejectsMissing(t *testing.T) {
	if _, err := OrderByClient([]int{1, 2}, []*wire.LocalUpdate{lu(1)}); err == nil {
		t.Fatal("missing update accepted")
	}
}

func TestOrderByClientRejectsOutOfCohort(t *testing.T) {
	if _, err := OrderByClient([]int{1}, []*wire.LocalUpdate{lu(7)}); err == nil {
		t.Fatal("out-of-cohort update accepted")
	}
}

func TestAllClientsIdentity(t *testing.T) {
	ids := AllClients(3)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("AllClients(3) = %v", ids)
	}
	if len(AllClients(0)) != 0 {
		t.Fatal("AllClients(0) not empty")
	}
}
