package comm

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// streamVec builds a deterministic vector distinct per client.
func streamVec(dim int, client int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = float64(client+1) * (float64(i)*0.5 - 3)
	}
	return v
}

// runStream drives one full streamed round over a pipe: every client
// uploads concurrently, the gather reassembles each client's vector from
// the chunk payloads. Returns the reassembled vectors and stats.
func runStream(t *testing.T, pipe *ChunkPipe, clients, dim, chunk int, opt UploadOptions) ([][]float64, *StreamStats) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			u := &wire.LocalUpdate{
				ClientID:   uint32(id),
				Round:      1,
				NumSamples: uint64(10 + id),
				Primal:     streamVec(dim, id),
			}
			errs[id] = StreamUpload(pipe.Client(id), u, chunk, opt)
		}(id)
	}
	rebuilt := make([][]float64, clients)
	for i := range rebuilt {
		rebuilt[i] = make([]float64, dim)
	}
	st, err := StreamGather(pipe, AllClients(clients), 1, dim, chunk,
		func(samples []uint64) error {
			for i, n := range samples {
				if n != uint64(10+i) {
					t.Errorf("client %d samples %d, want %d", i, n, 10+i)
				}
			}
			return nil
		},
		func(lo, hi int, payloads []*wire.Payload) error {
			for i, p := range payloads {
				copy(rebuilt[i][lo:hi], p.Dense)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d upload: %v", id, err)
		}
	}
	return rebuilt, st
}

// TestStreamUploadGather: a lossless streamed round reassembles every
// client's vector bit for bit, and the gather's resident window stays
// O(cohort × chunk) — far below one full model.
func TestStreamUploadGather(t *testing.T) {
	const clients, dim, chunk = 3, 1000, 64
	pipe := NewChunkPipe(clients)
	rebuilt, st := runStream(t, pipe, clients, dim, chunk, UploadOptions{})
	for id := range rebuilt {
		want := streamVec(dim, id)
		for i := range want {
			if math.Float64bits(rebuilt[id][i]) != math.Float64bits(want[i]) {
				t.Fatalf("client %d coordinate %d not bit-identical", id, i)
			}
		}
	}
	if st.Chunks != clients*wire.ChunkPlan(dim, chunk) {
		t.Errorf("folded %d chunks, want %d", st.Chunks, clients*wire.ChunkPlan(dim, chunk))
	}
	if st.Duplicates != 0 {
		t.Errorf("lossless stream absorbed %d duplicates", st.Duplicates)
	}
	// One full dense model is dim*8 bytes; the window must be well under.
	if full := dim * 8; st.PeakBytes >= full {
		t.Errorf("peak resident %d bytes >= one full model (%d)", st.PeakBytes, full)
	}
	if st.PeakBytes == 0 {
		t.Error("peak resident bytes not accounted")
	}
}

// TestStreamRetryDroppedChunk: a dropped chunk is retransmitted after the
// ack timeout and only that chunk crosses again — the stream completes
// with no duplicate folds.
func TestStreamRetryDroppedChunk(t *testing.T) {
	const clients, dim, chunk = 2, 200, 32
	pipe := NewChunkPipe(clients)
	pipe.DropChunk = func(client, round, index uint32, attempt int) bool {
		return client == 1 && index == 2 && attempt == 0 // first transmission only
	}
	rebuilt, st := runStream(t, pipe, clients, dim, chunk,
		UploadOptions{AckTimeout: 20 * time.Millisecond, MaxRetries: 3})
	want := streamVec(dim, 1)
	for i := range want {
		if rebuilt[1][i] != want[i] {
			t.Fatalf("client 1 coordinate %d corrupted by the retry", i)
		}
	}
	// A slow ack may trigger an extra retransmit (absorbed as a
	// duplicate); what matters is that every window folded exactly once,
	// which runStream's bit-exact reassembly already proves.
	if st.Chunks != clients*wire.ChunkPlan(dim, chunk) {
		t.Errorf("folded %d chunks, want %d", st.Chunks, clients*wire.ChunkPlan(dim, chunk))
	}
}

// TestStreamRetryDroppedAck: a dropped ack makes the sender retransmit a
// chunk the gather already folded; the gather must re-ack it without
// folding twice.
func TestStreamRetryDroppedAck(t *testing.T) {
	const clients, dim, chunk = 2, 200, 32
	pipe := NewChunkPipe(clients)
	pipe.DropAck = func(client, round, index uint32, attempt int) bool {
		return client == 0 && index == 1 && attempt == 0
	}
	folds := make(map[int]int)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			u := &wire.LocalUpdate{
				ClientID: uint32(id), Round: 1, NumSamples: 5,
				Primal: streamVec(dim, id),
			}
			if err := StreamUpload(pipe.Client(id), u, chunk,
				UploadOptions{AckTimeout: 20 * time.Millisecond, MaxRetries: 3}); err != nil {
				t.Errorf("client %d upload: %v", id, err)
			}
		}(id)
	}
	st, err := StreamGather(pipe, AllClients(clients), 1, dim, chunk,
		func([]uint64) error { return nil },
		func(lo, hi int, payloads []*wire.Payload) error {
			folds[lo]++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if st.Duplicates == 0 {
		t.Error("dropped ack produced no absorbed retransmit")
	}
	for lo, n := range folds {
		if n != 1 {
			t.Errorf("window at %d folded %d times, want exactly once", lo, n)
		}
	}
}

// TestStreamUploadGivesUp: a chunk the network always eats exhausts
// MaxRetries and surfaces ErrAckTimeout.
func TestStreamUploadGivesUp(t *testing.T) {
	pipe := NewChunkPipe(1)
	pipe.DropChunk = func(client, round, index uint32, attempt int) bool { return index == 1 }
	u := &wire.LocalUpdate{ClientID: 0, Round: 1, NumSamples: 3, Primal: streamVec(100, 0)}
	done := make(chan error, 1)
	go func() {
		done <- StreamUpload(pipe.Client(0), u, 32,
			UploadOptions{AckTimeout: 10 * time.Millisecond, MaxRetries: 2})
	}()
	// Drain and ack chunk 0 so the upload reaches the black-holed chunk 1.
	mc, err := pipe.RecvChunkFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SendChunkAck(0, &wire.ChunkAck{ClientID: 0, Round: 1, Index: mc.Index}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrAckTimeout) {
			t.Fatalf("got %v, want ErrAckTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("upload did not give up")
	}
}

// TestStreamGatherRejectsBadGeometry: a stream disagreeing with the
// expected round or tiling fails the gather instead of folding garbage.
func TestStreamGatherRejectsBadGeometry(t *testing.T) {
	pipe := NewChunkPipe(1)
	go func() {
		u := &wire.LocalUpdate{ClientID: 0, Round: 2, NumSamples: 3, Primal: streamVec(100, 0)}
		_ = StreamUpload(pipe.Client(0), u, 32, UploadOptions{})
	}()
	_, err := StreamGather(pipe, AllClients(1), 1, 100, 32,
		func([]uint64) error { return nil },
		func(lo, hi int, payloads []*wire.Payload) error { return nil })
	if err == nil {
		t.Fatal("round mismatch accepted")
	}

	pipe2 := NewChunkPipe(1)
	go func() {
		u := &wire.LocalUpdate{ClientID: 0, Round: 1, NumSamples: 3, Primal: streamVec(100, 0)}
		_ = StreamUpload(pipe2.Client(0), u, 16, UploadOptions{}) // wrong chunk size
	}()
	_, err = StreamGather(pipe2, AllClients(1), 1, 100, 32,
		func([]uint64) error { return nil },
		func(lo, hi int, payloads []*wire.Payload) error { return nil })
	if err == nil {
		t.Fatal("tiling mismatch accepted")
	}
}

// TestStreamF16Payloads: an f16-encoded update streams chunk-wise with
// the codes sliced two bytes per coordinate.
func TestStreamF16Payloads(t *testing.T) {
	const dim, chunk = 64, 16
	codes := make([]byte, 2*dim)
	for i := range codes {
		codes[i] = byte(i * 7)
	}
	pipe := NewChunkPipe(1)
	go func() {
		u := &wire.LocalUpdate{
			ClientID: 0, Round: 1, NumSamples: 3,
			PrimalP: &wire.Payload{Enc: wire.EncFloat16, Dim: dim, Codes: codes},
		}
		_ = StreamUpload(pipe.Client(0), u, chunk, UploadOptions{})
	}()
	got := make([]byte, 2*dim)
	_, err := StreamGather(pipe, AllClients(1), 1, dim, chunk,
		func([]uint64) error { return nil },
		func(lo, hi int, payloads []*wire.Payload) error {
			copy(got[2*lo:2*hi], payloads[0].Codes)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("f16 code byte %d corrupted", i)
		}
	}
}
