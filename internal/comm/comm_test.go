package comm

import (
	"sync"
	"testing"
)

func TestStatsCounts(t *testing.T) {
	var s Stats
	s.AddSent(100)
	s.AddSent(50)
	s.AddRecv(7)
	snap := s.Snapshot()
	if snap.BytesSent != 150 || snap.MsgsSent != 2 {
		t.Fatalf("sent counters %+v", snap)
	}
	if snap.BytesRecv != 7 || snap.MsgsRecv != 1 {
		t.Fatalf("recv counters %+v", snap)
	}
}

func TestStatsSnapshotIsCopy(t *testing.T) {
	var s Stats
	s.AddSent(1)
	snap := s.Snapshot()
	s.AddSent(1)
	if snap.BytesSent != 1 {
		t.Fatal("snapshot mutated by later traffic")
	}
}

func TestStatsConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	const workers, each = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.AddSent(1)
				s.AddRecv(2)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.MsgsSent != workers*each || snap.BytesRecv != 2*workers*each {
		t.Fatalf("concurrent counters lost updates: %+v", snap)
	}
}
