package comm

import "testing"

func TestShardOfUniformAndStable(t *testing.T) {
	const shards = 8
	const clients = 80000
	counts := make([]int, shards)
	for c := 0; c < clients; c++ {
		s := ShardOf(uint32(c), shards)
		if s < 0 || s >= shards {
			t.Fatalf("client %d routed to shard %d of %d", c, s, shards)
		}
		counts[s]++
	}
	// Uniformity: every shard within ±10% of the ideal load.
	ideal := clients / shards
	for s, n := range counts {
		if n < ideal*9/10 || n > ideal*11/10 {
			t.Errorf("shard %d holds %d clients, ideal %d — assignment is skewed", s, n, ideal)
		}
	}
	// Stability: the same id always routes identically.
	for c := uint32(0); c < 100; c++ {
		if ShardOf(c, shards) != ShardOf(c, shards) {
			t.Fatal("assignment not deterministic")
		}
	}
	// Degenerate tier.
	if ShardOf(12345, 1) != 0 || ShardOf(12345, 0) != 0 {
		t.Error("single-shard tier must route everything to shard 0")
	}
}

func TestShardRangeTiles(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{100, 4}, {103, 4}, {1, 8}, {7, 8}, {4096, 3}, {5, 5}, {0, 2},
	} {
		prev := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardRange(tc.n, tc.shards, s)
			if lo != prev {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, previous ended at %d", tc.n, tc.shards, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d shards=%d: shard %d has inverted range [%d,%d)", tc.n, tc.shards, s, lo, hi)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d shards=%d: ranges cover [0,%d), want [0,%d)", tc.n, tc.shards, prev, tc.n)
		}
	}
}

func TestShardRangePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard index did not panic")
		}
	}()
	ShardRange(10, 2, 2)
}

func TestReduceDepth(t *testing.T) {
	for _, tc := range []struct{ shards, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	} {
		if got := ReduceDepth(tc.shards); got != tc.want {
			t.Errorf("ReduceDepth(%d) = %d, want %d", tc.shards, got, tc.want)
		}
	}
}
