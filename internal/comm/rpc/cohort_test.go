package rpc

import (
	"sync"
	"testing"

	"repro/internal/wire"
)

// echoClients runs each client as a loop echoing one update per received
// non-final model.
func echoClients(t *testing.T, clients []*Client) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for {
				gm, err := c.RecvGlobal()
				if err != nil {
					return
				}
				if gm.Final {
					return
				}
				err = c.SendUpdate(&wire.LocalUpdate{
					ClientID:    uint32(i),
					Round:       gm.Round,
					NumSamples:  1,
					Primal:      []float64{float64(i)},
					BaseVersion: gm.Version,
				})
				if err != nil {
					t.Errorf("client %d send: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	return &wg
}

func TestSendToGatherFromCohortOverTCP(t *testing.T) {
	srv, clients := startCluster(t, 4)
	wg := echoClients(t, clients)
	cohort := []int{1, 2}
	if err := srv.SendTo(cohort, &wire.GlobalModel{Round: 5, Version: 9, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	ups, err := srv.GatherFrom(cohort)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range cohort {
		if int(ups[i].ClientID) != id || ups[i].BaseVersion != 9 {
			t.Fatalf("position %d: %+v, want client %d base 9", i, ups[i], id)
		}
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherAnyQuorumOverTCP(t *testing.T) {
	srv, clients := startCluster(t, 3)
	wg := echoClients(t, clients)
	if err := srv.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	batch, err := srv.GatherAny(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("quorum batch %d", len(batch))
	}
	// Re-dispatch to the two contributors only, then collect everything.
	ids := []int{int(batch[0].ClientID), int(batch[1].ClientID)}
	if err := srv.SendTo(ids, &wire.GlobalModel{Round: 2, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GatherAny(3); err != nil {
		t.Fatal(err)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestGatherAnyRejectsOverdrawOverTCP(t *testing.T) {
	srv, clients := startCluster(t, 2)
	wg := echoClients(t, clients)
	if _, err := srv.GatherAny(1); err == nil {
		t.Fatal("gather with nothing outstanding accepted")
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
