package rpc

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/wire"
)

// startTenantServer listens and accepts a two-tenant roster, dialing
// tenant 0 with n0 clients and tenant 1 with n1, and returns the server
// plus the per-tenant client transports.
func startTenantServer(t *testing.T, n0, n1 int) (*Server, [][]*Client) {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Tenants: []TenantSpec{
			{NumClients: n0, Rounds: 3, ModelSize: 4},
			{NumClients: n1, Rounds: 5, ModelSize: 8},
		},
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	clients := [][]*Client{make([]*Client, n0), make([]*Client, n1)}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var dialErr error
	for tenant, n := range []int{n0, n1} {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(tenant, i int) {
				defer wg.Done()
				c, err := DialTenant(srv.Addr(), uint32(tenant), uint32(i), "")
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					dialErr = err
					return
				}
				clients[tenant][i] = c
			}(tenant, i)
		}
	}
	acceptErr := srv.Accept()
	wg.Wait()
	if dialErr != nil {
		t.Fatalf("DialTenant: %v", dialErr)
	}
	if acceptErr != nil {
		t.Fatalf("Accept: %v", acceptErr)
	}
	for _, row := range clients {
		for _, c := range row {
			c := c
			t.Cleanup(func() { c.Close() })
		}
	}
	return srv, clients
}

// TestTenantDemux drives two tenants through interleaved rounds over one
// shared server and checks that each tenant's view gathers exactly its
// own clients' updates, with per-tenant JoinAck configs.
func TestTenantDemux(t *testing.T) {
	srv, clients := startTenantServer(t, 2, 3)

	if got := clients[0][0].Config(); got.NumClients != 2 || got.Rounds != 3 || got.ModelSize != 4 {
		t.Fatalf("tenant 0 JoinAck = %+v, want 2 clients / 3 rounds / size 4", got)
	}
	if got := clients[1][0].Config(); got.NumClients != 3 || got.Rounds != 5 || got.ModelSize != 8 {
		t.Fatalf("tenant 1 JoinAck = %+v, want 3 clients / 5 rounds / size 8", got)
	}

	// Dispatch a round on both tenants, then settle tenant 1 first while
	// tenant 0's updates are still pending — cross-tenant interleaving
	// must not leak updates across views.
	for tenant, view := range []*TenantView{srv.Tenant(0), srv.Tenant(1)} {
		m := &wire.GlobalModel{Round: 1, Weights: make([]float64, 2)}
		if err := view.Broadcast(m); err != nil {
			t.Fatalf("tenant %d broadcast: %v", tenant, err)
		}
	}
	for tenant, row := range clients {
		for i, c := range row {
			if _, err := c.RecvGlobal(); err != nil {
				t.Fatalf("tenant %d client %d recv: %v", tenant, i, err)
			}
			up := &wire.LocalUpdate{ClientID: uint32(i), Round: 1, Primal: []float64{float64(tenant), float64(i)}}
			if err := c.SendUpdate(up); err != nil {
				t.Fatalf("tenant %d client %d send: %v", tenant, i, err)
			}
		}
	}
	for _, tenant := range []int{1, 0} {
		view := srv.Tenant(tenant)
		ups, err := view.Gather()
		if err != nil {
			t.Fatalf("tenant %d gather: %v", tenant, err)
		}
		if len(ups) != len(clients[tenant]) {
			t.Fatalf("tenant %d gathered %d updates, want %d", tenant, len(ups), len(clients[tenant]))
		}
		for i, u := range ups {
			if int(u.TenantID) != tenant || int(u.ClientID) != i || u.Primal[0] != float64(tenant) {
				t.Fatalf("tenant %d slot %d got update {tenant %d client %d p0 %v}",
					tenant, i, u.TenantID, u.ClientID, u.Primal[0])
			}
		}
		if out := view.Outstanding(); len(out) != 0 {
			t.Fatalf("tenant %d still owes %v after gather", tenant, out)
		}
	}
}

// TestTenantJoinValidation rejects joins carrying an unknown tenant or an
// out-of-range tenant-local client id before any JoinAck is written.
func TestTenantJoinValidation(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Tenants: []TenantSpec{{NumClients: 1, Rounds: 1, ModelSize: 1}},
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	acceptDone := make(chan error, 1)
	go func() { acceptDone <- srv.Accept() }()

	if _, err := DialTenant(srv.Addr(), 7, 0, "stray"); err == nil {
		t.Fatal("join with unknown tenant succeeded")
	}
	err = <-acceptDone
	if err == nil || !strings.Contains(err.Error(), "join rejected") {
		t.Fatalf("Accept err = %v, want join-rejected", err)
	}
	if !errors.Is(err, comm.ErrUnknownTenant) {
		t.Fatalf("Accept err = %v, want ErrUnknownTenant in chain", err)
	}
}

// TestTenantViewCloseIsNoop verifies one tenant closing its view leaves
// the shared server (and the other tenant's traffic) alive.
func TestTenantViewCloseIsNoop(t *testing.T) {
	srv, clients := startTenantServer(t, 1, 1)

	if err := srv.Tenant(0).Close(); err != nil {
		t.Fatalf("view close: %v", err)
	}
	// Tenant 1 still works end to end after tenant 0's view closed.
	view := srv.Tenant(1)
	if err := view.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatalf("broadcast after sibling close: %v", err)
	}
	if _, err := clients[1][0].RecvGlobal(); err != nil {
		t.Fatalf("recv after sibling close: %v", err)
	}
	if err := clients[1][0].SendUpdate(&wire.LocalUpdate{Round: 1, Primal: []float64{2}}); err != nil {
		t.Fatalf("send after sibling close: %v", err)
	}
	if _, err := view.Gather(); err != nil {
		t.Fatalf("gather after sibling close: %v", err)
	}
}
