package rpc

import (
	"fmt"
	"net"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// Chunk streaming over TCP frames. Chunks ride the same connection as
// ordinary updates (the readLoop routes KindModelChunk frames into
// per-client channels); acks come back as KindChunkAck frames the client
// reads inline — safe because streaming is barrier-only, so the server
// sends nothing else while a stream is in flight.

// RecvChunkFrom blocks for the next streamed chunk from one client.
func (s *Server) RecvChunkFrom(client int) (*wire.ModelChunk, error) {
	if client < 0 || client >= s.cfg.NumClients {
		return nil, fmt.Errorf("rpc: chunk receive from unknown client %d", client)
	}
	var payload []byte
	select {
	case payload = <-s.chunks[client]:
	case <-s.done:
		return nil, fmt.Errorf("rpc: server closed while awaiting chunk from client %d", client)
	}
	s.stats.AddRecv(len(payload))
	var mc wire.ModelChunk
	if err := mc.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, fmt.Errorf("rpc: chunk decode from client %d: %w", client, err)
	}
	return &mc, nil
}

// SendChunkAck acknowledges one folded chunk back to its sender.
func (s *Server) SendChunkAck(client int, a *wire.ChunkAck) error {
	if client < 0 || client >= s.cfg.NumClients {
		return fmt.Errorf("rpc: chunk ack to unknown client %d", client)
	}
	e := wire.NewEncoder(nil)
	a.Marshal(e)
	if err := writeFrame(s.conn(client), wire.KindChunkAck, e.Bytes()); err != nil {
		return fmt.Errorf("rpc: chunk ack to client %d: %w", client, err)
	}
	s.stats.AddSent(e.Len())
	return nil
}

// SendChunk uploads one model chunk.
func (c *Client) SendChunk(mc *wire.ModelChunk) error {
	e := wire.NewEncoder(nil)
	mc.Marshal(e)
	if err := writeFrame(c.current(), wire.KindModelChunk, e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// RecvChunkAck blocks for the next chunk ack; a positive timeout is
// enforced with a read deadline and surfaces comm.ErrAckTimeout, so a
// lost ack costs one retransmit instead of a hung upload.
func (c *Client) RecvChunkAck(timeout time.Duration) (*wire.ChunkAck, error) {
	conn := c.current()
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	kind, payload, err := readFrame(conn)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, comm.ErrAckTimeout
		}
		return nil, err
	}
	if kind != wire.KindChunkAck {
		return nil, fmt.Errorf("rpc: expected ChunkAck, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	var a wire.ChunkAck
	if err := a.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return &a, nil
}

// Interface conformance checks.
var (
	_ comm.ChunkSender   = (*Client)(nil)
	_ comm.ChunkGatherer = (*Server)(nil)
)
