package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestResumeRacingServerRestart pins the resume-vs-restart contract: a
// Resume dialed into the window where the server is down must fail with
// the typed ErrResumeRetryable (never a splice into nothing, never an
// untyped error the caller cannot distinguish from session death), and a
// retry once the server is listening again must land a working session.
func TestResumeRacingServerRestart(t *testing.T) {
	const clients = 2
	cfg := ServerConfig{NumClients: clients, Rounds: 4, ModelSize: 1}
	srv, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- srv.Accept() }()
	cs := make([]*Client, clients)
	for i := range cs {
		c, err := Dial(addr, uint32(i), "restart-test")
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	// The server dies (kill -9: connections and listener vanish at once).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// A resume dialed into the downtime window is retryable, not fatal.
	if err := cs[0].Resume(); !errors.Is(err, ErrResumeRetryable) {
		t.Fatalf("resume against dead server: err = %v, want ErrResumeRetryable", err)
	}

	// The server restarts on the same address. The port was just freed;
	// ride out the window where the OS still holds it.
	var srv2 *Server
	for i := 0; i < 100; i++ {
		if srv2, err = Listen(addr, cfg); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	go func() { acceptErr <- srv2.Accept() }()

	// Every client retries its resume until the splice lands.
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				err := c.Resume()
				if err == nil {
					return
				}
				if !errors.Is(err, ErrResumeRetryable) {
					t.Errorf("client %d resume attempt %d: untyped error %v", i, attempt, err)
					return
				}
				if attempt > 200 {
					t.Errorf("client %d: resume never spliced: %v", i, err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i, c)
	}
	wg.Wait()
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	// The respliced session must carry a full round trip.
	for i, c := range cs {
		go func(i int, c *Client) {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Round: gm.Round, NumSamples: 1, Primal: []float64{float64(i)}})
		}(i, c)
	}
	if err := srv2.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv2.GatherFrom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != clients {
		t.Fatalf("gathered %d updates, want %d", len(got), clients)
	}
	for _, c := range cs {
		c.Close()
	}
}
