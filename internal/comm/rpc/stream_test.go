package rpc

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// TestStreamOverRPC: a chunked upload over real TCP frames reassembles
// every client's vector bit for bit, interleaved with a following slim
// LocalUpdate on the same connection (the ledger-settling pattern the
// runner uses).
func TestStreamOverRPC(t *testing.T) {
	const P, dim, chunk = 3, 300, 64
	srv, clients := startCluster(t, P)
	defer srv.Close()

	if err := srv.SendTo(comm.AllClients(P), &wire.GlobalModel{Round: 1, Weights: make([]float64, 2)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, ct := range clients {
		wg.Add(1)
		go func(i int, ct *Client) {
			defer wg.Done()
			if _, err := ct.RecvGlobal(); err != nil {
				t.Errorf("client %d recv global: %v", i, err)
				return
			}
			v := make([]float64, dim)
			for k := range v {
				v[k] = float64(i+1)*100 + float64(k)
			}
			u := &wire.LocalUpdate{
				ClientID:   uint32(i),
				Round:      1,
				NumSamples: uint64(7 + i),
				Primal:     v,
			}
			if err := comm.StreamUpload(ct, u, chunk,
				comm.UploadOptions{AckTimeout: time.Second, MaxRetries: 2}); err != nil {
				t.Errorf("client %d stream: %v", i, err)
				return
			}
			// Slim, payload-less update settles the round's obligation.
			slim := &wire.LocalUpdate{ClientID: uint32(i), Round: 1, NumSamples: uint64(7 + i)}
			if err := ct.SendUpdate(slim); err != nil {
				t.Errorf("client %d slim update: %v", i, err)
			}
		}(i, ct)
	}
	rebuilt := make([][]float64, P)
	for i := range rebuilt {
		rebuilt[i] = make([]float64, dim)
	}
	st, err := comm.StreamGather(srv, comm.AllClients(P), 1, dim, chunk,
		func(samples []uint64) error { return nil },
		func(lo, hi int, payloads []*wire.Payload) error {
			for i, p := range payloads {
				copy(rebuilt[i][lo:hi], p.Dense)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The slim updates settle through the ordinary gather afterwards.
	ups, err := srv.Gather()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, u := range ups {
		if len(u.Primal) != 0 || u.PrimalP != nil {
			t.Fatalf("client %d slim update carried a payload", i)
		}
		if u.NumSamples != uint64(7+i) {
			t.Fatalf("client %d slim samples %d", i, u.NumSamples)
		}
	}
	for i := range rebuilt {
		for k := range rebuilt[i] {
			want := float64(i+1)*100 + float64(k)
			if math.Float64bits(rebuilt[i][k]) != math.Float64bits(want) {
				t.Fatalf("client %d coordinate %d corrupted in transit", i, k)
			}
		}
	}
	if st.Chunks != P*wire.ChunkPlan(dim, chunk) {
		t.Fatalf("folded %d chunks", st.Chunks)
	}
}

// TestStreamAckTimeoutOverRPC: a silent server surfaces ErrAckTimeout
// through the read deadline instead of hanging the upload.
func TestStreamAckTimeoutOverRPC(t *testing.T) {
	srv, clients := startCluster(t, 1)
	defer srv.Close()
	if _, err := clients[0].RecvChunkAck(20 * time.Millisecond); err != comm.ErrAckTimeout {
		t.Fatalf("got %v, want ErrAckTimeout", err)
	}
	// The deadline must be cleared: a later ack still arrives.
	go func() {
		_ = srv.SendChunkAck(0, &wire.ChunkAck{ClientID: 0, Round: 1, Index: 0})
	}()
	a, err := clients[0].RecvChunkAck(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Round != 1 || a.Index != 0 {
		t.Fatalf("ack %+v", a)
	}
}
