// Package rpc implements the gRPC-substitute transport: length-prefixed
// remote procedure calls over real TCP connections, with payloads encoded
// by the protobuf-style codec in internal/wire. It reproduces the two costs
// the paper identifies for gRPC versus RDMA-enabled MPI (Section IV-D):
// every model crossing the network is serialized and deserialized, and data
// is staged through the host network stack instead of moving directly
// between devices.
//
// Frame layout: 1 byte message kind, 4 bytes big-endian payload length,
// payload bytes.
//
// Sessions survive connection loss: a client may close its socket and
// redial with a Resume join, and the server splices the new connection
// into the same session (same client ID, same obligation ledger) — the
// reconnect path a cross-device deployment needs when devices drop off
// the network mid-run.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// maxFrame bounds a frame payload to guard against corrupt length headers.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a frame header announces an
// implausible payload size.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// writeFrame sends one framed message.
func writeFrame(w io.Writer, kind wire.Kind, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message.
func readFrame(r io.Reader) (wire.Kind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return wire.Kind(hdr[0]), payload, nil
}

// ServerConfig parameterizes a listening FL server.
type ServerConfig struct {
	NumClients int
	Rounds     int
	ModelSize  int
	// AcceptTimeout bounds the wait for all clients to join (0 = 30 s).
	AcceptTimeout time.Duration
	// ResumeWait bounds how long a dispatch that hit a dying connection
	// waits for the client's Resume splice before surfacing the write
	// error (0 = 1 s).
	ResumeWait time.Duration
}

// Server is the comm.ServerTransport over TCP. It accepts exactly
// NumClients connections, each beginning with a Join handshake, then keeps
// the listener open for Resume joins that splice a reconnecting client
// back into its session.
//
// One reader goroutine per connection pumps every incoming frame into a
// shared arrival channel that Gather/GatherFrom/GatherAny/GatherUntil
// drain; the obligation ledger decides which arrivals settle obligations
// and which are stale replays of forgiven rounds.
type Server struct {
	cfg   ServerConfig
	ln    net.Listener
	stats comm.Stats

	arrivals chan arrival
	chunks   []chan []byte // per-client streamed ModelChunk frames
	ledger   *comm.Ledger
	done     chan struct{}

	mu       sync.Mutex
	conns    []net.Conn    // indexed by client ID, swapped on resume
	gens     []int         // connection generation per client
	deadGen  []int         // generation whose connection died (-1 = alive)
	resumeCh chan struct{} // closed (and replaced) on every resume splice
	closed   bool
}

// arrival is one incoming update frame, or a connection event, tagged by
// client and connection generation.
type arrival struct {
	client  int
	gen     int
	payload []byte
	err     error // connection-level failure (read error, bad frame kind)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0") and returns it
// without accepting yet; call Accept next. Addr() reports the bound
// address.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 {
		return nil, errors.New("rpc: NumClients must be positive")
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 30 * time.Second
	}
	if cfg.ResumeWait == 0 {
		cfg.ResumeWait = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	deadGen := make([]int, cfg.NumClients)
	for i := range deadGen {
		deadGen[i] = -1
	}
	chunks := make([]chan []byte, cfg.NumClients)
	for i := range chunks {
		// Capacity 4 holds the window-1 steady state plus a retransmit
		// racing its late ack, matching comm.ChunkPipe.
		chunks[i] = make(chan []byte, 4)
	}
	return &Server{
		cfg:      cfg,
		ln:       ln,
		conns:    make([]net.Conn, cfg.NumClients),
		gens:     make([]int, cfg.NumClients),
		deadGen:  deadGen,
		resumeCh: make(chan struct{}),
		arrivals: make(chan arrival, cfg.NumClients),
		chunks:   chunks,
		ledger:   comm.NewLedger(cfg.NumClients),
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accept blocks until every client has connected and completed the Join
// handshake, then starts one reader per connection and a background
// acceptor for Resume joins. Client IDs must be unique and in
// [0, NumClients).
func (s *Server) Accept() error {
	deadline := time.Now().Add(s.cfg.AcceptTimeout)
	joined := 0
	for joined < s.cfg.NumClients {
		if tl, ok := s.ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("rpc: accept after %d/%d joins: %w", joined, s.cfg.NumClients, err)
		}
		join, err := s.readJoin(conn)
		if err != nil {
			conn.Close()
			return err
		}
		id := int(join.ClientID)
		s.mu.Lock()
		dup := s.conns[id] != nil
		s.mu.Unlock()
		if dup {
			conn.Close()
			return fmt.Errorf("rpc: invalid or duplicate client id %d", id)
		}
		if err := s.ackJoin(conn); err != nil {
			conn.Close()
			return err
		}
		s.mu.Lock()
		s.conns[id] = conn
		s.mu.Unlock()
		joined++
	}
	if tl, ok := s.ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(time.Time{}); err != nil {
			return err
		}
	}
	s.mu.Lock()
	for id, conn := range s.conns {
		go s.readLoop(id, s.gens[id], conn)
	}
	s.mu.Unlock()
	go s.acceptResumes()
	return nil
}

// readJoin reads and decodes a Join frame, validating the client ID.
func (s *Server) readJoin(conn net.Conn) (*wire.Join, error) {
	kind, payload, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: join read: %w", err)
	}
	s.stats.AddRecv(len(payload))
	if kind != wire.KindJoin {
		return nil, fmt.Errorf("rpc: expected Join, got %v", kind)
	}
	var join wire.Join
	if err := join.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, fmt.Errorf("rpc: join decode: %w", err)
	}
	if id := int(join.ClientID); id < 0 || id >= s.cfg.NumClients {
		return nil, fmt.Errorf("rpc: invalid or duplicate client id %d", id)
	}
	return &join, nil
}

// ackJoin accepts a join by answering with the run configuration.
func (s *Server) ackJoin(conn net.Conn) error {
	ack := wire.JoinAck{
		NumClients: uint32(s.cfg.NumClients),
		Rounds:     uint32(s.cfg.Rounds),
		ModelSize:  uint64(s.cfg.ModelSize),
	}
	e := wire.NewEncoder(nil)
	ack.Marshal(e)
	if err := writeFrame(conn, wire.KindJoinAck, e.Bytes()); err != nil {
		return fmt.Errorf("rpc: join ack: %w", err)
	}
	s.stats.AddSent(e.Len())
	return nil
}

// acceptResumes keeps accepting connections after the initial cohort has
// joined: each must carry a Resume join naming an existing session, whose
// connection is then swapped for the new one. A non-resume join at this
// stage is rejected BEFORE any JoinAck is written, so the stray client's
// Dial fails instead of succeeding against a connection the server is
// about to drop. Runs until Close.
func (s *Server) acceptResumes() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		join, err := s.readJoin(conn)
		if err != nil || !join.Resume {
			conn.Close()
			continue
		}
		if err := s.ackJoin(conn); err != nil {
			conn.Close()
			continue
		}
		id := int(join.ClientID)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		// The old connection is NOT closed here: the client closed its
		// side, and its reader must be allowed to drain any frames still
		// buffered (a goodbye sent just before the disconnect) before it
		// sees EOF and exits. Closing server-side would discard them.
		s.conns[id] = conn
		s.gens[id]++
		s.deadGen[id] = -1
		gen := s.gens[id]
		// Wake any dispatch waiting out a dying connection.
		close(s.resumeCh)
		s.resumeCh = make(chan struct{})
		s.mu.Unlock()
		go s.readLoop(id, gen, conn)
	}
}

// readLoop pumps every frame from one client connection into the arrival
// channel. On a connection error it posts one tagged failure event and
// exits; collect decides whether that event matters (an open obligation on
// the current connection) or is ordinary teardown noise.
func (s *Server) readLoop(c, gen int, conn net.Conn) {
	for {
		kind, payload, err := readFrame(conn)
		if err == nil && kind == wire.KindModelChunk {
			// Streamed chunks bypass the arrival channel (and the
			// obligation ledger): StreamGather drains them per client.
			select {
			case s.chunks[c] <- payload:
			case <-s.done:
				return
			}
			continue
		}
		var a arrival
		switch {
		case err != nil:
			a = arrival{client: c, gen: gen, err: fmt.Errorf("rpc: gather from client %d: %w", c, err)}
		case kind != wire.KindLocalUpdate:
			a = arrival{client: c, gen: gen, err: fmt.Errorf("rpc: client %d sent %v, want LocalUpdate", c, kind)}
		default:
			a = arrival{client: c, gen: gen, payload: payload}
		}
		select {
		case s.arrivals <- a:
		case <-s.done:
			return
		}
		if a.err != nil {
			return
		}
	}
}

// conn returns the current connection of client c.
func (s *Server) conn(c int) net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[c]
}

// awaitFresh waits up to ResumeWait for client c's connection to be
// spliced away from old, returning the fresh connection or nil if no
// resume landed in time. Waiters are woken by the splice signal rather
// than polling.
func (s *Server) awaitFresh(c int, old net.Conn) net.Conn {
	deadline := time.NewTimer(s.cfg.ResumeWait)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		cur, ch := s.conns[c], s.resumeCh
		s.mu.Unlock()
		if cur != old {
			return cur
		}
		select {
		case <-ch:
		case <-deadline.C:
			return nil
		case <-s.done:
			return nil
		}
	}
}

// Unreachable returns the clients whose current connection is known dead
// and not (yet) resumed — a deadline-driven caller excludes them from
// dispatch instead of opening obligations nothing can settle.
func (s *Server) Unreachable() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for c := range s.deadGen {
		if s.deadGen[c] == s.gens[c] {
			out = append(out, c)
		}
	}
	return out
}

// Broadcast sends the global model to all clients concurrently. Per-client
// serialization happens independently, as gRPC marshals per call.
func (s *Server) Broadcast(m *wire.GlobalModel) error {
	return s.SendTo(comm.AllClients(s.cfg.NumClients), m)
}

// SendTo sends the global model to the listed clients concurrently. Each
// non-final model opens an obligation for the client's reply.
func (s *Server) SendTo(clients []int, m *wire.GlobalModel) error {
	const kind = wire.KindGlobalModel
	for _, c := range clients {
		if c < 0 || c >= s.cfg.NumClients {
			return fmt.Errorf("rpc: send to unknown client %d", c)
		}
		// A client whose connection died while idle has no reader left: a
		// write could still land in the socket buffer, opening an
		// obligation nothing can ever settle. Fail loudly instead (a
		// resume clears this by advancing the generation).
		s.mu.Lock()
		dead := s.deadGen[c] == s.gens[c]
		s.mu.Unlock()
		if dead {
			return fmt.Errorf("rpc: send to client %d whose connection is down", c)
		}
	}
	if !m.Final {
		// All-or-nothing so a duplicate-dispatch error leaves the ledger
		// untouched.
		if err := s.ledger.OpenAll(clients, m.Round); err != nil {
			return fmt.Errorf("rpc: %w", err)
		}
	}
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i, c int) {
			defer wg.Done()
			e := wire.NewEncoder(nil)
			m.Marshal(e)
			conn := s.conn(c)
			err := writeFrame(conn, kind, e.Bytes())
			if err != nil {
				// The write may have raced a session resume (the client
				// dropped this connection as it spliced in a new one).
				// Wait on the splice signal up to ResumeWait and retry
				// once on the fresh connection; a client that never
				// resumes keeps the original error.
				if fresh := s.awaitFresh(c, conn); fresh != nil {
					err = writeFrame(fresh, kind, e.Bytes())
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("rpc: send to client %d: %w", c, err)
				if !m.Final {
					// No reply can come from a model that never left:
					// roll the obligation back so the ledger stays
					// consistent for callers that recover from the error.
					s.ledger.Rollback(c)
				}
				return
			}
			s.stats.AddSent(e.Len())
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collect drains n update arrivals in arrival order. A nil timer waits
// forever; otherwise the gather gives up when the timer fires and returns
// the partial batch with ErrRoundTimeout.
func (s *Server) collect(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	out := make([]*wire.LocalUpdate, 0, n)
	for len(out) < n {
		var a arrival
		select {
		case a = <-s.arrivals:
		case <-timer:
			return out, fmt.Errorf("rpc: %d of %d updates after deadline: %w", len(out), n, comm.ErrRoundTimeout)
		}
		if a.err != nil {
			// A connection event for the current generation marks the
			// client unreachable (a stale generation means it already
			// resumed: teardown noise). Whether it fails the gather
			// depends on the mode: a blocking gather has no other way to
			// stop waiting on a client that still owes an update, so it
			// surfaces the error loudly; a deadline gather lets the
			// deadline expire instead, feeding the caller's quorum
			// machinery (forgive, bench, retry) — a process death is then
			// one timed-out round, not the run.
			s.mu.Lock()
			current := a.gen == s.gens[a.client] && !s.closed
			if current {
				s.deadGen[a.client] = a.gen
			}
			s.mu.Unlock()
			if current && timer == nil && s.ledger.Pending(a.client) {
				return nil, a.err
			}
			continue
		}
		s.stats.AddRecv(len(a.payload))
		var u wire.LocalUpdate
		if err := u.Unmarshal(wire.NewDecoder(a.payload)); err != nil {
			return nil, fmt.Errorf("rpc: update decode from client %d: %w", a.client, err)
		}
		if !s.ledger.Admit(a.client, u.Round) {
			continue // late update for a forgiven round: discard
		}
		out = append(out, &u)
	}
	return out, nil
}

// Gather reads one LocalUpdate from every client and returns them indexed
// by client ID.
func (s *Server) Gather() ([]*wire.LocalUpdate, error) {
	return s.GatherFrom(comm.AllClients(s.cfg.NumClients))
}

// GatherFrom reads one LocalUpdate from each listed client, ordered as
// listed.
func (s *Server) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	got, err := s.gatherN(len(clients), nil)
	if err != nil {
		return nil, err
	}
	return comm.OrderByClient(clients, got)
}

// GatherAny reads the next n outstanding updates in arrival order.
func (s *Server) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	return s.gatherN(n, nil)
}

// gatherN enforces the overdraw check shared by the blocking gathers.
func (s *Server) gatherN(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	if owed := s.ledger.Owed(); n > owed {
		return nil, fmt.Errorf("rpc: gathering %d updates with only %d outstanding", n, owed)
	}
	return s.collect(n, timer)
}

// GatherUntil reads up to n outstanding updates, giving up at the
// deadline; see comm.ServerTransport.
func (s *Server) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	return comm.GatherWithDeadline(s.ledger, "rpc", n, timeout, s.collect)
}

// Forgive closes the open obligations of the listed clients; their late
// updates, if any ever arrive, are discarded.
func (s *Server) Forgive(clients []int) { s.ledger.Forgive(clients) }

// Outstanding returns the sorted clients with open update obligations.
func (s *Server) Outstanding() []int { return s.ledger.Outstanding() }

// Stats returns the traffic snapshot.
func (s *Server) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.ln.Close()
	for _, c := range s.conns {
		if c != nil {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Client is the comm.ClientTransport over TCP.
type Client struct {
	id    uint32
	name  string
	addr  string
	ack   wire.JoinAck
	stats comm.Stats

	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the server, performs the Join handshake, and returns
// the client transport.
func Dial(addr string, id uint32, name string) (*Client, error) {
	c := &Client{id: id, name: name, addr: addr}
	if err := c.dial(false); err != nil {
		return nil, err
	}
	return c, nil
}

// dial establishes (or re-establishes) the connection and performs the
// Join handshake, marking it a Resume when reconnecting.
func (c *Client) dial(resume bool) error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	join := wire.Join{ClientID: c.id, Name: c.name, Resume: resume}
	e := wire.NewEncoder(nil)
	join.Marshal(e)
	if err := writeFrame(conn, wire.KindJoin, e.Bytes()); err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join send: %w", err)
	}
	c.stats.AddSent(e.Len())
	kind, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join ack read: %w", err)
	}
	if kind != wire.KindJoinAck {
		conn.Close()
		return fmt.Errorf("rpc: expected JoinAck, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	if err := c.ack.Unmarshal(wire.NewDecoder(payload)); err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join ack decode: %w", err)
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	return nil
}

// ErrResumeRetryable tags a Resume attempt that failed without reaching a
// splice: the dial was refused or the handshake tore — the signature of a
// resume racing a server restart. The client's previous connection (and
// the server-side session, if the server survives) is left exactly as it
// was, so the caller backs off and retries rather than declaring the
// session dead; once the server is listening again the retry splices.
var ErrResumeRetryable = errors.New("rpc: resume did not splice (server restarting?)")

// Resume redials the server with a Resume join and then drops the old
// connection, splicing this client back into its session — the
// reconnect-with-session-resumption path of the rejoin handshake. The
// new connection is established FIRST so the server is never left
// holding a closed socket as the client's only address: a dispatch
// racing the resume sees either the old conn (its write is absorbed or
// retried on the new one) or the spliced conn, not a gap. A Resume that
// races a server restart fails with ErrResumeRetryable and changes
// nothing: retry once the server is back.
func (c *Client) Resume() error {
	old := c.current()
	if err := c.dial(true); err != nil {
		return fmt.Errorf("%w: %v", ErrResumeRetryable, err)
	}
	if old != nil {
		old.Close()
	}
	return nil
}

// current returns the live connection.
func (c *Client) current() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// Config returns the run configuration received at join time.
func (c *Client) Config() wire.JoinAck { return c.ack }

// RecvGlobal blocks for the next global model.
func (c *Client) RecvGlobal() (*wire.GlobalModel, error) {
	kind, payload, err := readFrame(c.current())
	if err != nil {
		return nil, err
	}
	if kind == wire.KindShutdown {
		return &wire.GlobalModel{Final: true}, nil
	}
	if kind != wire.KindGlobalModel {
		return nil, fmt.Errorf("rpc: expected GlobalModel, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	var m wire.GlobalModel
	if err := m.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return &m, nil
}

// SendUpdate uploads the local update.
func (c *Client) SendUpdate(m *wire.LocalUpdate) error {
	e := wire.NewEncoder(nil)
	m.Marshal(e)
	if err := writeFrame(c.current(), wire.KindLocalUpdate, e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// Stats returns the traffic snapshot.
func (c *Client) Stats() comm.Snapshot { return c.stats.Snapshot() }

// Close closes the connection.
func (c *Client) Close() error { return c.current().Close() }

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*Server)(nil)
	_ comm.ClientTransport = (*Client)(nil)
	_ comm.SessionResumer  = (*Client)(nil)
)
