// Package rpc implements the gRPC-substitute transport: length-prefixed
// remote procedure calls over real TCP connections, with payloads encoded
// by the protobuf-style codec in internal/wire. It reproduces the two costs
// the paper identifies for gRPC versus RDMA-enabled MPI (Section IV-D):
// every model crossing the network is serialized and deserialized, and data
// is staged through the host network stack instead of moving directly
// between devices.
//
// Frame layout: 1 byte message kind, 4 bytes big-endian payload length,
// payload bytes.
//
// Sessions survive connection loss: a client may close its socket and
// redial with a Resume join, and the server splices the new connection
// into the same session (same client ID, same obligation ledger) — the
// reconnect path a cross-device deployment needs when devices drop off
// the network mid-run.
//
// One listening server can host many tenants (ServerConfig.Tenants): each
// Join carries a wire.TenantID validated against the tenant table, every
// incoming frame demuxes to its tenant's arrival channel and obligation
// ledger, and Tenant(t) returns a per-tenant comm.ServerTransport view.
// Tenant isolation is structural — a tenant's gathers, deadlines, and
// forgiveness never observe another tenant's traffic.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// maxFrame bounds a frame payload to guard against corrupt length headers.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a frame header announces an
// implausible payload size.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// writeFrame sends one framed message.
func writeFrame(w io.Writer, kind wire.Kind, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message.
func readFrame(r io.Reader) (wire.Kind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return wire.Kind(hdr[0]), payload, nil
}

// TenantSpec is one tenant's slice of a multi-tenant server: its roster
// size and the run configuration its JoinAck advertises.
type TenantSpec struct {
	NumClients int
	Rounds     int
	ModelSize  int
}

// ServerConfig parameterizes a listening FL server.
type ServerConfig struct {
	NumClients int
	Rounds     int
	ModelSize  int
	// Tenants, when non-empty, makes the server multi-tenant: tenant t
	// serves Tenants[t].NumClients clients whose Joins must carry
	// TenantID t (zero routes to tenant 0, so pre-tenancy clients land in
	// the default tenant). The top-level NumClients/Rounds/ModelSize are
	// ignored in favor of the per-tenant specs. Empty means one default
	// tenant described by the top-level fields.
	Tenants []TenantSpec
	// AcceptTimeout bounds the wait for all clients to join (0 = 30 s).
	AcceptTimeout time.Duration
	// ResumeWait bounds how long a dispatch that hit a dying connection
	// waits for the client's Resume splice before surfacing the write
	// error (0 = 1 s).
	ResumeWait time.Duration
}

// tenants returns the effective tenant list (the legacy single-tenant
// fields synthesized into a one-entry list when Tenants is empty).
func (c ServerConfig) tenants() []TenantSpec {
	if len(c.Tenants) > 0 {
		return c.Tenants
	}
	return []TenantSpec{{NumClients: c.NumClients, Rounds: c.Rounds, ModelSize: c.ModelSize}}
}

// Server is the comm.ServerTransport over TCP. It accepts one connection
// per client slot, each beginning with a Join handshake, then keeps the
// listener open for Resume joins that splice a reconnecting client back
// into its session.
//
// One reader goroutine per connection pumps every incoming frame into its
// tenant's arrival channel, which that tenant's Gather/GatherFrom/
// GatherAny/GatherUntil drain; per-tenant obligation ledgers decide which
// arrivals settle obligations and which are stale replays of forgiven
// rounds. A single-tenant server is the degenerate one-view case, and the
// Server's own transport methods delegate to that default view.
type Server struct {
	cfg   ServerConfig
	specs []TenantSpec
	table *comm.TenantTable
	total int // global client slots across all tenants
	ln    net.Listener
	stats comm.Stats

	views  []*TenantView
	chunks []chan []byte // per-global-slot streamed ModelChunk frames
	done   chan struct{}

	mu       sync.Mutex
	conns    []net.Conn    // indexed by global slot, swapped on resume
	gens     []int         // connection generation per slot
	deadGen  []int         // generation whose connection died (-1 = alive)
	resumeCh chan struct{} // closed (and replaced) on every resume splice
	closed   bool
}

// TenantView is one tenant's comm.ServerTransport over a shared Server:
// its client ids are tenant-local, its obligation ledger and arrival
// stream carry only this tenant's traffic, and Close is a no-op (the
// shared Server owns the listener and sockets — close it instead).
type TenantView struct {
	s        *Server
	tenant   int
	off      int // global slot of local client 0
	n        int // roster size
	arrivals chan arrival
	ledger   *comm.Ledger
}

// arrival is one incoming update frame, or a connection event, tagged by
// global client slot and connection generation.
type arrival struct {
	client  int // global slot
	gen     int
	payload []byte
	err     error // connection-level failure (read error, bad frame kind)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0") and returns it
// without accepting yet; call Accept next. Addr() reports the bound
// address.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	specs := cfg.tenants()
	sizes := make([]int, len(specs))
	total := 0
	for i, t := range specs {
		if t.NumClients <= 0 {
			return nil, fmt.Errorf("rpc: tenant %d NumClients must be positive", i)
		}
		sizes[i] = t.NumClients
		total += t.NumClients
	}
	table, err := comm.NewTenantTable(sizes)
	if err != nil {
		return nil, fmt.Errorf("rpc: %w", err)
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 30 * time.Second
	}
	if cfg.ResumeWait == 0 {
		cfg.ResumeWait = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	deadGen := make([]int, total)
	for i := range deadGen {
		deadGen[i] = -1
	}
	chunks := make([]chan []byte, total)
	for i := range chunks {
		// Capacity 4 holds the window-1 steady state plus a retransmit
		// racing its late ack, matching comm.ChunkPipe.
		chunks[i] = make(chan []byte, 4)
	}
	s := &Server{
		cfg:      cfg,
		specs:    specs,
		table:    table,
		total:    total,
		ln:       ln,
		conns:    make([]net.Conn, total),
		gens:     make([]int, total),
		deadGen:  deadGen,
		resumeCh: make(chan struct{}),
		chunks:   chunks,
		done:     make(chan struct{}),
	}
	s.views = make([]*TenantView, len(specs))
	for t := range specs {
		s.views[t] = &TenantView{
			s:        s,
			tenant:   t,
			off:      table.Global(t, 0),
			n:        sizes[t],
			arrivals: make(chan arrival, sizes[t]),
			ledger:   comm.NewLedger(sizes[t]),
		}
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Tenant returns tenant t's comm.ServerTransport view. Tenant 0 is the
// default tenant a single-tenant server serves.
func (s *Server) Tenant(t int) *TenantView { return s.views[t] }

// Tenants returns the number of tenants this server hosts.
func (s *Server) Tenants() int { return len(s.views) }

// Accept blocks until every client of every tenant has connected and
// completed the Join handshake, then starts one reader per connection and
// a background acceptor for Resume joins. Each tenant's client IDs must be
// unique within the tenant and in [0, its NumClients).
func (s *Server) Accept() error {
	deadline := time.Now().Add(s.cfg.AcceptTimeout)
	joined := 0
	for joined < s.total {
		if tl, ok := s.ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("rpc: accept after %d/%d joins: %w", joined, s.total, err)
		}
		_, slot, err := s.readJoin(conn)
		if err != nil {
			conn.Close()
			return err
		}
		s.mu.Lock()
		dup := s.conns[slot] != nil
		s.mu.Unlock()
		if dup {
			conn.Close()
			return fmt.Errorf("rpc: invalid or duplicate client id %d", slot)
		}
		if err := s.ackJoin(conn, slot); err != nil {
			conn.Close()
			return err
		}
		s.mu.Lock()
		s.conns[slot] = conn
		s.mu.Unlock()
		joined++
	}
	if tl, ok := s.ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(time.Time{}); err != nil {
			return err
		}
	}
	s.mu.Lock()
	for slot, conn := range s.conns {
		go s.readLoop(slot, s.gens[slot], conn)
	}
	s.mu.Unlock()
	go s.acceptResumes()
	return nil
}

// readJoin reads and decodes a Join frame, validating the tenant and
// client ID against the tenant table and returning the global slot. An
// unknown tenant or out-of-range client id is an error, never a panic.
func (s *Server) readJoin(conn net.Conn) (*wire.Join, int, error) {
	kind, payload, err := readFrame(conn)
	if err != nil {
		return nil, 0, fmt.Errorf("rpc: join read: %w", err)
	}
	s.stats.AddRecv(len(payload))
	if kind != wire.KindJoin {
		return nil, 0, fmt.Errorf("rpc: expected Join, got %v", kind)
	}
	var join wire.Join
	if err := join.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, 0, fmt.Errorf("rpc: join decode: %w", err)
	}
	slot, err := s.table.Route(join.TenantID, join.ClientID)
	if err != nil {
		return nil, 0, fmt.Errorf("rpc: join rejected: %w", err)
	}
	return &join, slot, nil
}

// ackJoin accepts a join by answering with the owning tenant's run
// configuration.
func (s *Server) ackJoin(conn net.Conn, slot int) error {
	t, _ := s.table.Owner(slot)
	spec := s.specs[t]
	ack := wire.JoinAck{
		NumClients: uint32(spec.NumClients),
		Rounds:     uint32(spec.Rounds),
		ModelSize:  uint64(spec.ModelSize),
	}
	e := wire.NewEncoder(nil)
	ack.Marshal(e)
	if err := writeFrame(conn, wire.KindJoinAck, e.Bytes()); err != nil {
		return fmt.Errorf("rpc: join ack: %w", err)
	}
	s.stats.AddSent(e.Len())
	return nil
}

// acceptResumes keeps accepting connections after the initial cohort has
// joined: each must carry a Resume join naming an existing session, whose
// connection is then swapped for the new one. A non-resume join at this
// stage is rejected BEFORE any JoinAck is written, so the stray client's
// Dial fails instead of succeeding against a connection the server is
// about to drop. Runs until Close.
func (s *Server) acceptResumes() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		join, slot, err := s.readJoin(conn)
		if err != nil || !join.Resume {
			conn.Close()
			continue
		}
		if err := s.ackJoin(conn, slot); err != nil {
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		// The old connection is NOT closed here: the client closed its
		// side, and its reader must be allowed to drain any frames still
		// buffered (a goodbye sent just before the disconnect) before it
		// sees EOF and exits. Closing server-side would discard them.
		s.conns[slot] = conn
		s.gens[slot]++
		s.deadGen[slot] = -1
		gen := s.gens[slot]
		// Wake any dispatch waiting out a dying connection.
		close(s.resumeCh)
		s.resumeCh = make(chan struct{})
		s.mu.Unlock()
		go s.readLoop(slot, gen, conn)
	}
}

// readLoop pumps every frame from one client connection into the owning
// tenant's arrival channel. On a connection error it posts one tagged
// failure event and exits; collect decides whether that event matters (an
// open obligation on the current connection) or is ordinary teardown
// noise.
func (s *Server) readLoop(slot, gen int, conn net.Conn) {
	t, _ := s.table.Owner(slot)
	view := s.views[t]
	for {
		kind, payload, err := readFrame(conn)
		if err == nil && kind == wire.KindModelChunk {
			// Streamed chunks bypass the arrival channel (and the
			// obligation ledger): StreamGather drains them per client.
			select {
			case s.chunks[slot] <- payload:
			case <-s.done:
				return
			}
			continue
		}
		var a arrival
		switch {
		case err != nil:
			a = arrival{client: slot, gen: gen, err: fmt.Errorf("rpc: gather from client %d: %w", slot, err)}
		case kind != wire.KindLocalUpdate:
			a = arrival{client: slot, gen: gen, err: fmt.Errorf("rpc: client %d sent %v, want LocalUpdate", slot, kind)}
		default:
			a = arrival{client: slot, gen: gen, payload: payload}
		}
		select {
		case view.arrivals <- a:
		case <-s.done:
			return
		}
		if a.err != nil {
			return
		}
	}
}

// conn returns the current connection of global slot c.
func (s *Server) conn(c int) net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[c]
}

// awaitFresh waits up to ResumeWait for slot c's connection to be
// spliced away from old, returning the fresh connection or nil if no
// resume landed in time. Waiters are woken by the splice signal rather
// than polling.
func (s *Server) awaitFresh(c int, old net.Conn) net.Conn {
	deadline := time.NewTimer(s.cfg.ResumeWait)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		cur, ch := s.conns[c], s.resumeCh
		s.mu.Unlock()
		if cur != old {
			return cur
		}
		select {
		case <-ch:
		case <-deadline.C:
			return nil
		case <-s.done:
			return nil
		}
	}
}

// Unreachable returns this tenant's clients (tenant-local ids) whose
// current connection is known dead and not (yet) resumed — a
// deadline-driven caller excludes them from dispatch instead of opening
// obligations nothing can settle.
func (v *TenantView) Unreachable() []int {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for c := 0; c < v.n; c++ {
		g := v.off + c
		if s.deadGen[g] == s.gens[g] {
			out = append(out, c)
		}
	}
	return out
}

// Broadcast sends the global model to every client of this tenant
// concurrently. Per-client serialization happens independently, as gRPC
// marshals per call.
func (v *TenantView) Broadcast(m *wire.GlobalModel) error {
	return v.SendTo(comm.AllClients(v.n), m)
}

// SendTo sends the global model to the listed clients (tenant-local ids)
// concurrently. Each non-final model opens an obligation for the client's
// reply.
func (v *TenantView) SendTo(clients []int, m *wire.GlobalModel) error {
	const kind = wire.KindGlobalModel
	s := v.s
	for _, c := range clients {
		if c < 0 || c >= v.n {
			return fmt.Errorf("rpc: send to unknown client %d", c)
		}
		// A client whose connection died while idle has no reader left: a
		// write could still land in the socket buffer, opening an
		// obligation nothing can ever settle. Fail loudly instead (a
		// resume clears this by advancing the generation).
		g := v.off + c
		s.mu.Lock()
		dead := s.deadGen[g] == s.gens[g]
		s.mu.Unlock()
		if dead {
			return fmt.Errorf("rpc: send to client %d whose connection is down", c)
		}
	}
	if !m.Final {
		// All-or-nothing so a duplicate-dispatch error leaves the ledger
		// untouched.
		if err := v.ledger.OpenAll(clients, m.Round); err != nil {
			return fmt.Errorf("rpc: %w", err)
		}
	}
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i, c int) {
			defer wg.Done()
			e := wire.NewEncoder(nil)
			m.Marshal(e)
			g := v.off + c
			conn := s.conn(g)
			err := writeFrame(conn, kind, e.Bytes())
			if err != nil {
				// The write may have raced a session resume (the client
				// dropped this connection as it spliced in a new one).
				// Wait on the splice signal up to ResumeWait and retry
				// once on the fresh connection; a client that never
				// resumes keeps the original error.
				if fresh := s.awaitFresh(g, conn); fresh != nil {
					err = writeFrame(fresh, kind, e.Bytes())
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("rpc: send to client %d: %w", c, err)
				if !m.Final {
					// No reply can come from a model that never left:
					// roll the obligation back so the ledger stays
					// consistent for callers that recover from the error.
					v.ledger.Rollback(c)
				}
				return
			}
			s.stats.AddSent(e.Len())
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collect drains n update arrivals of this tenant in arrival order. A nil
// timer waits forever; otherwise the gather gives up when the timer fires
// and returns the partial batch with ErrRoundTimeout.
func (v *TenantView) collect(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	s := v.s
	out := make([]*wire.LocalUpdate, 0, n)
	for len(out) < n {
		var a arrival
		select {
		case a = <-v.arrivals:
		case <-timer:
			return out, fmt.Errorf("rpc: %d of %d updates after deadline: %w", len(out), n, comm.ErrRoundTimeout)
		}
		local := a.client - v.off
		if a.err != nil {
			// A connection event for the current generation marks the
			// client unreachable (a stale generation means it already
			// resumed: teardown noise). Whether it fails the gather
			// depends on the mode: a blocking gather has no other way to
			// stop waiting on a client that still owes an update, so it
			// surfaces the error loudly; a deadline gather lets the
			// deadline expire instead, feeding the caller's quorum
			// machinery (forgive, bench, retry) — a process death is then
			// one timed-out round, not the run.
			s.mu.Lock()
			current := a.gen == s.gens[a.client] && !s.closed
			if current {
				s.deadGen[a.client] = a.gen
			}
			s.mu.Unlock()
			if current && timer == nil && v.ledger.Pending(local) {
				return nil, a.err
			}
			continue
		}
		s.stats.AddRecv(len(a.payload))
		var u wire.LocalUpdate
		if err := u.Unmarshal(wire.NewDecoder(a.payload)); err != nil {
			return nil, fmt.Errorf("rpc: update decode from client %d: %w", local, err)
		}
		if int(u.TenantID) != v.tenant {
			return nil, fmt.Errorf("rpc: update from client %d carries tenant %d, connection belongs to tenant %d",
				local, u.TenantID, v.tenant)
		}
		if !v.ledger.Admit(local, u.Round) {
			continue // late update for a forgiven round: discard
		}
		out = append(out, &u)
	}
	return out, nil
}

// Gather reads one LocalUpdate from every client of this tenant and
// returns them indexed by client ID.
func (v *TenantView) Gather() ([]*wire.LocalUpdate, error) {
	return v.GatherFrom(comm.AllClients(v.n))
}

// GatherFrom reads one LocalUpdate from each listed client, ordered as
// listed.
func (v *TenantView) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	got, err := v.gatherN(len(clients), nil)
	if err != nil {
		return nil, err
	}
	return comm.OrderByClient(clients, got)
}

// GatherAny reads the next n outstanding updates in arrival order.
func (v *TenantView) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	return v.gatherN(n, nil)
}

// gatherN enforces the overdraw check shared by the blocking gathers.
func (v *TenantView) gatherN(n int, timer <-chan time.Time) ([]*wire.LocalUpdate, error) {
	if owed := v.ledger.Owed(); n > owed {
		return nil, fmt.Errorf("rpc: gathering %d updates with only %d outstanding", n, owed)
	}
	return v.collect(n, timer)
}

// GatherUntil reads up to n outstanding updates, giving up at the
// deadline; see comm.ServerTransport.
func (v *TenantView) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	return comm.GatherWithDeadline(v.ledger, "rpc", n, timeout, v.collect)
}

// Forgive closes the open obligations of the listed clients; their late
// updates, if any ever arrive, are discarded.
func (v *TenantView) Forgive(clients []int) { v.ledger.Forgive(clients) }

// Outstanding returns the sorted clients with open update obligations.
func (v *TenantView) Outstanding() []int { return v.ledger.Outstanding() }

// Stats returns the shared server's traffic snapshot (traffic accounting
// is per process, not per tenant).
func (v *TenantView) Stats() comm.Snapshot { return v.s.stats.Snapshot() }

// Close is a no-op: the shared Server owns the listener and sockets, and
// one tenant finishing its run must not tear down its neighbors. Close
// the Server itself to release resources.
func (v *TenantView) Close() error { return nil }

// Broadcast sends the global model to all clients of the default tenant.
func (s *Server) Broadcast(m *wire.GlobalModel) error { return s.views[0].Broadcast(m) }

// SendTo sends the global model to the listed default-tenant clients.
func (s *Server) SendTo(clients []int, m *wire.GlobalModel) error {
	return s.views[0].SendTo(clients, m)
}

// Gather reads one LocalUpdate from every default-tenant client.
func (s *Server) Gather() ([]*wire.LocalUpdate, error) { return s.views[0].Gather() }

// GatherFrom reads one LocalUpdate from each listed default-tenant client.
func (s *Server) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	return s.views[0].GatherFrom(clients)
}

// GatherAny reads the next n outstanding default-tenant updates.
func (s *Server) GatherAny(n int) ([]*wire.LocalUpdate, error) { return s.views[0].GatherAny(n) }

// GatherUntil reads up to n outstanding default-tenant updates with a
// deadline; see comm.ServerTransport.
func (s *Server) GatherUntil(n int, timeout time.Duration) ([]*wire.LocalUpdate, error) {
	return s.views[0].GatherUntil(n, timeout)
}

// Forgive closes the open obligations of the listed default-tenant
// clients.
func (s *Server) Forgive(clients []int) { s.views[0].Forgive(clients) }

// Outstanding returns the default tenant's clients with open obligations.
func (s *Server) Outstanding() []int { return s.views[0].Outstanding() }

// Unreachable returns the default tenant's known-dead clients.
func (s *Server) Unreachable() []int { return s.views[0].Unreachable() }

// Stats returns the traffic snapshot.
func (s *Server) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close shuts the listener and all client connections of every tenant.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.ln.Close()
	for _, c := range s.conns {
		if c != nil {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Client is the comm.ClientTransport over TCP.
type Client struct {
	id     uint32
	tenant uint32
	name   string
	addr   string
	ack    wire.JoinAck
	stats  comm.Stats

	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the server, performs the Join handshake, and returns
// the client transport joined to the default tenant.
func Dial(addr string, id uint32, name string) (*Client, error) {
	return DialTenant(addr, 0, id, name)
}

// DialTenant connects to a multi-tenant server, joining tenant `tenant`
// with the tenant-local client id. Tenant 0 is the default tenant (the
// single-tenant Dial). Every update sent through the returned transport
// is stamped with the tenant id so the server's demux can validate it.
func DialTenant(addr string, tenant, id uint32, name string) (*Client, error) {
	c := &Client{id: id, tenant: tenant, name: name, addr: addr}
	if err := c.dial(false); err != nil {
		return nil, err
	}
	return c, nil
}

// dial establishes (or re-establishes) the connection and performs the
// Join handshake, marking it a Resume when reconnecting.
func (c *Client) dial(resume bool) error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	join := wire.Join{ClientID: c.id, Name: c.name, Resume: resume, TenantID: c.tenant}
	e := wire.NewEncoder(nil)
	join.Marshal(e)
	if err := writeFrame(conn, wire.KindJoin, e.Bytes()); err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join send: %w", err)
	}
	c.stats.AddSent(e.Len())
	kind, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join ack read: %w", err)
	}
	if kind != wire.KindJoinAck {
		conn.Close()
		return fmt.Errorf("rpc: expected JoinAck, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	if err := c.ack.Unmarshal(wire.NewDecoder(payload)); err != nil {
		conn.Close()
		return fmt.Errorf("rpc: join ack decode: %w", err)
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	return nil
}

// ErrResumeRetryable tags a Resume attempt that failed without reaching a
// splice: the dial was refused or the handshake tore — the signature of a
// resume racing a server restart. The client's previous connection (and
// the server-side session, if the server survives) is left exactly as it
// was, so the caller backs off and retries rather than declaring the
// session dead; once the server is listening again the retry splices.
var ErrResumeRetryable = errors.New("rpc: resume did not splice (server restarting?)")

// Resume redials the server with a Resume join and then drops the old
// connection, splicing this client back into its session — the
// reconnect-with-session-resumption path of the rejoin handshake. The
// new connection is established FIRST so the server is never left
// holding a closed socket as the client's only address: a dispatch
// racing the resume sees either the old conn (its write is absorbed or
// retried on the new one) or the spliced conn, not a gap. A Resume that
// races a server restart fails with ErrResumeRetryable and changes
// nothing: retry once the server is back.
func (c *Client) Resume() error {
	old := c.current()
	if err := c.dial(true); err != nil {
		return fmt.Errorf("%w: %v", ErrResumeRetryable, err)
	}
	if old != nil {
		old.Close()
	}
	return nil
}

// current returns the live connection.
func (c *Client) current() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// Config returns the run configuration received at join time.
func (c *Client) Config() wire.JoinAck { return c.ack }

// RecvGlobal blocks for the next global model.
func (c *Client) RecvGlobal() (*wire.GlobalModel, error) {
	kind, payload, err := readFrame(c.current())
	if err != nil {
		return nil, err
	}
	if kind == wire.KindShutdown {
		return &wire.GlobalModel{Final: true}, nil
	}
	if kind != wire.KindGlobalModel {
		return nil, fmt.Errorf("rpc: expected GlobalModel, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	var m wire.GlobalModel
	if err := m.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return &m, nil
}

// SendUpdate uploads the local update, stamped with this client's tenant.
func (c *Client) SendUpdate(m *wire.LocalUpdate) error {
	m.TenantID = c.tenant
	e := wire.NewEncoder(nil)
	m.Marshal(e)
	if err := writeFrame(c.current(), wire.KindLocalUpdate, e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// Stats returns the traffic snapshot.
func (c *Client) Stats() comm.Snapshot { return c.stats.Snapshot() }

// Close closes the connection.
func (c *Client) Close() error { return c.current().Close() }

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*Server)(nil)
	_ comm.ServerTransport = (*TenantView)(nil)
	_ comm.Unreachables    = (*Server)(nil)
	_ comm.Unreachables    = (*TenantView)(nil)
	_ comm.ClientTransport = (*Client)(nil)
	_ comm.SessionResumer  = (*Client)(nil)
)
