// Package rpc implements the gRPC-substitute transport: length-prefixed
// remote procedure calls over real TCP connections, with payloads encoded
// by the protobuf-style codec in internal/wire. It reproduces the two costs
// the paper identifies for gRPC versus RDMA-enabled MPI (Section IV-D):
// every model crossing the network is serialized and deserialized, and data
// is staged through the host network stack instead of moving directly
// between devices.
//
// Frame layout: 1 byte message kind, 4 bytes big-endian payload length,
// payload bytes.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

// maxFrame bounds a frame payload to guard against corrupt length headers.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a frame header announces an
// implausible payload size.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// writeFrame sends one framed message.
func writeFrame(w io.Writer, kind wire.Kind, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message.
func readFrame(r io.Reader) (wire.Kind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return wire.Kind(hdr[0]), payload, nil
}

// ServerConfig parameterizes a listening FL server.
type ServerConfig struct {
	NumClients int
	Rounds     int
	ModelSize  int
	// AcceptTimeout bounds the wait for all clients to join (0 = 30 s).
	AcceptTimeout time.Duration
}

// Server is the comm.ServerTransport over TCP. It accepts exactly
// NumClients connections, each beginning with a Join handshake.
//
// Every non-final model written to a client obliges one LocalUpdate in
// return; the server spawns a reader goroutine per obligation, feeding a
// shared arrival channel that Gather/GatherFrom/GatherAny drain.
type Server struct {
	cfg   ServerConfig
	ln    net.Listener
	conns []net.Conn // indexed by client ID
	stats comm.Stats

	arrivals chan arrival

	mu      sync.Mutex
	pending []bool // pending[i]: client i owes an update
	nOwed   int
	closed  bool
}

// arrival is one incoming update frame (or read failure), tagged by client.
type arrival struct {
	client  int
	payload []byte
	err     error
}

// Listen starts a server on addr (e.g. "127.0.0.1:0") and returns it
// without accepting yet; call Accept next. Addr() reports the bound
// address.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 {
		return nil, errors.New("rpc: NumClients must be positive")
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		ln:       ln,
		conns:    make([]net.Conn, cfg.NumClients),
		arrivals: make(chan arrival, cfg.NumClients),
		pending:  make([]bool, cfg.NumClients),
	}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accept blocks until every client has connected and completed the Join
// handshake. Client IDs must be unique and in [0, NumClients).
func (s *Server) Accept() error {
	deadline := time.Now().Add(s.cfg.AcceptTimeout)
	joined := 0
	for joined < s.cfg.NumClients {
		if tl, ok := s.ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("rpc: accept after %d/%d joins: %w", joined, s.cfg.NumClients, err)
		}
		kind, payload, err := readFrame(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("rpc: join read: %w", err)
		}
		s.stats.AddRecv(len(payload))
		if kind != wire.KindJoin {
			conn.Close()
			return fmt.Errorf("rpc: expected Join, got %v", kind)
		}
		var join wire.Join
		if err := join.Unmarshal(wire.NewDecoder(payload)); err != nil {
			conn.Close()
			return fmt.Errorf("rpc: join decode: %w", err)
		}
		id := int(join.ClientID)
		if id < 0 || id >= s.cfg.NumClients || s.conns[id] != nil {
			conn.Close()
			return fmt.Errorf("rpc: invalid or duplicate client id %d", id)
		}
		ack := wire.JoinAck{
			NumClients: uint32(s.cfg.NumClients),
			Rounds:     uint32(s.cfg.Rounds),
			ModelSize:  uint64(s.cfg.ModelSize),
		}
		e := wire.NewEncoder(nil)
		ack.Marshal(e)
		if err := writeFrame(conn, wire.KindJoinAck, e.Bytes()); err != nil {
			conn.Close()
			return fmt.Errorf("rpc: join ack: %w", err)
		}
		s.stats.AddSent(e.Len())
		s.conns[id] = conn
		joined++
	}
	return nil
}

// Broadcast sends the global model to all clients concurrently. Per-client
// serialization happens independently, as gRPC marshals per call.
func (s *Server) Broadcast(m *wire.GlobalModel) error {
	return s.SendTo(comm.AllClients(len(s.conns)), m)
}

// SendTo sends the global model to the listed clients concurrently. Each
// non-final model registers a reader for the client's obligatory reply.
func (s *Server) SendTo(clients []int, m *wire.GlobalModel) error {
	const kind = wire.KindGlobalModel
	for _, c := range clients {
		if c < 0 || c >= len(s.conns) {
			return fmt.Errorf("rpc: send to unknown client %d", c)
		}
	}
	if !m.Final {
		// Two passes so a duplicate-dispatch error leaves the ledger
		// untouched: validate the whole cohort, then mark it.
		s.mu.Lock()
		for _, c := range clients {
			if s.pending[c] {
				s.mu.Unlock()
				return fmt.Errorf("rpc: client %d already owes an update", c)
			}
		}
		for _, c := range clients {
			s.pending[c] = true
			s.nOwed++
		}
		s.mu.Unlock()
	}
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i, c int) {
			defer wg.Done()
			e := wire.NewEncoder(nil)
			m.Marshal(e)
			if err := writeFrame(s.conns[c], kind, e.Bytes()); err != nil {
				errs[i] = fmt.Errorf("rpc: send to client %d: %w", c, err)
				if !m.Final {
					// No reply can come from a model that never left:
					// roll the obligation back so the ledger stays
					// consistent for callers that recover from the error.
					s.mu.Lock()
					s.pending[c] = false
					s.nOwed--
					s.mu.Unlock()
				}
				return
			}
			s.stats.AddSent(e.Len())
			if !m.Final {
				go s.readOne(c)
			}
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// readOne reads the single obliged update frame from client c and posts it
// to the arrival channel.
func (s *Server) readOne(c int) {
	kind, payload, err := readFrame(s.conns[c])
	switch {
	case err != nil:
		s.arrivals <- arrival{client: c, err: fmt.Errorf("rpc: gather from client %d: %w", c, err)}
	case kind != wire.KindLocalUpdate:
		s.arrivals <- arrival{client: c, err: fmt.Errorf("rpc: client %d sent %v, want LocalUpdate", c, kind)}
	default:
		s.arrivals <- arrival{client: c, payload: payload}
	}
}

// collect drains n arrivals in arrival order.
func (s *Server) collect(n int) ([]*wire.LocalUpdate, error) {
	s.mu.Lock()
	owed := s.nOwed
	s.mu.Unlock()
	if n > owed {
		return nil, fmt.Errorf("rpc: gathering %d updates with only %d outstanding", n, owed)
	}
	out := make([]*wire.LocalUpdate, 0, n)
	for len(out) < n {
		a := <-s.arrivals
		s.mu.Lock()
		s.pending[a.client] = false
		s.nOwed--
		s.mu.Unlock()
		if a.err != nil {
			return nil, a.err
		}
		s.stats.AddRecv(len(a.payload))
		var u wire.LocalUpdate
		if err := u.Unmarshal(wire.NewDecoder(a.payload)); err != nil {
			return nil, fmt.Errorf("rpc: update decode from client %d: %w", a.client, err)
		}
		out = append(out, &u)
	}
	return out, nil
}

// Gather reads one LocalUpdate from every client and returns them indexed
// by client ID.
func (s *Server) Gather() ([]*wire.LocalUpdate, error) {
	return s.GatherFrom(comm.AllClients(len(s.conns)))
}

// GatherFrom reads one LocalUpdate from each listed client, ordered as
// listed.
func (s *Server) GatherFrom(clients []int) ([]*wire.LocalUpdate, error) {
	got, err := s.collect(len(clients))
	if err != nil {
		return nil, err
	}
	return comm.OrderByClient(clients, got)
}

// GatherAny reads the next n outstanding updates in arrival order.
func (s *Server) GatherAny(n int) ([]*wire.LocalUpdate, error) {
	return s.collect(n)
}

// Stats returns the traffic snapshot.
func (s *Server) Stats() comm.Snapshot { return s.stats.Snapshot() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for _, c := range s.conns {
		if c != nil {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Client is the comm.ClientTransport over TCP.
type Client struct {
	conn  net.Conn
	id    uint32
	ack   wire.JoinAck
	stats comm.Stats
}

// Dial connects to the server, performs the Join handshake, and returns
// the client transport.
func Dial(addr string, id uint32, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	join := wire.Join{ClientID: id, Name: name}
	e := wire.NewEncoder(nil)
	join.Marshal(e)
	c := &Client{conn: conn, id: id}
	if err := writeFrame(conn, wire.KindJoin, e.Bytes()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: join send: %w", err)
	}
	c.stats.AddSent(e.Len())
	kind, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: join ack read: %w", err)
	}
	if kind != wire.KindJoinAck {
		conn.Close()
		return nil, fmt.Errorf("rpc: expected JoinAck, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	if err := c.ack.Unmarshal(wire.NewDecoder(payload)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: join ack decode: %w", err)
	}
	return c, nil
}

// Config returns the run configuration received at join time.
func (c *Client) Config() wire.JoinAck { return c.ack }

// RecvGlobal blocks for the next global model.
func (c *Client) RecvGlobal() (*wire.GlobalModel, error) {
	kind, payload, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if kind == wire.KindShutdown {
		return &wire.GlobalModel{Final: true}, nil
	}
	if kind != wire.KindGlobalModel {
		return nil, fmt.Errorf("rpc: expected GlobalModel, got %v", kind)
	}
	c.stats.AddRecv(len(payload))
	var m wire.GlobalModel
	if err := m.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return &m, nil
}

// SendUpdate uploads the local update.
func (c *Client) SendUpdate(m *wire.LocalUpdate) error {
	e := wire.NewEncoder(nil)
	m.Marshal(e)
	if err := writeFrame(c.conn, wire.KindLocalUpdate, e.Bytes()); err != nil {
		return err
	}
	c.stats.AddSent(e.Len())
	return nil
}

// Stats returns the traffic snapshot.
func (c *Client) Stats() comm.Snapshot { return c.stats.Snapshot() }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Interface conformance checks.
var (
	_ comm.ServerTransport = (*Server)(nil)
	_ comm.ClientTransport = (*Client)(nil)
)
