package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/wire"
)

func TestGatherUntilTimesOutOnSilentClientOverTCP(t *testing.T) {
	srv, clients := startCluster(t, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client 0: silent on round 1, echoes afterwards
		defer wg.Done()
		first := true
		for {
			gm, err := clients[0].RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			if first {
				first = false
				continue
			}
			clients[0].SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{0}})
		}
	}()
	go func() { // client 1: echoes everything
		defer wg.Done()
		for {
			gm, err := clients[1].RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			clients[1].SendUpdate(&wire.LocalUpdate{ClientID: 1, Round: gm.Round, NumSamples: 1, Primal: []float64{1}})
		}
	}()

	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherUntil(2, 300*time.Millisecond)
	if !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v (%d updates)", err, len(got))
	}
	if len(got) != 1 || got[0].ClientID != 1 {
		t.Fatalf("partial batch %+v, want just client 1", got)
	}
	if out := srv.Outstanding(); len(out) != 1 || out[0] != 0 {
		t.Fatalf("outstanding %v, want [0]", out)
	}
	srv.Forgive([]int{0})

	if err := srv.SendTo([]int{0, 1}, &wire.GlobalModel{Round: 2, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.GatherFrom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Round != 2 || got[1].Round != 2 {
		t.Fatalf("round-2 gather %+v", got)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestGoodbyeThenResumeSplicesSession exercises the full rejoin handshake
// at the transport level: the client answers a round with a goodbye,
// drops its TCP connection, redials with a Resume join, and later rounds
// flow over the new connection within the same session.
func TestGoodbyeThenResumeSplicesSession(t *testing.T) {
	srv, clients := startCluster(t, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := clients[0]
		// Round 1: answer with a goodbye leasing round 3, then reconnect.
		gm, err := c.RecvGlobal()
		if err != nil || gm.Final {
			return
		}
		if err := c.SendUpdate(wire.Goodbye(0, gm.Round, 3)); err != nil {
			t.Errorf("goodbye: %v", err)
			return
		}
		if err := c.Resume(); err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		// Rounds after the lease arrive on the resumed connection.
		for {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			c.SendUpdate(&wire.LocalUpdate{ClientID: 0, Round: gm.Round, NumSamples: 1, Primal: []float64{4}})
		}
	}()

	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.GatherFrom([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Control != wire.ControlGoodbye || got[0].RejoinRound != 3 {
		t.Fatalf("expected goodbye leasing round 3, got %+v", got[0])
	}

	// Wait until the resume has spliced (the client's connection
	// generation advances), then address the client again — this write
	// must land on the new connection.
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.Lock()
		gen := srv.gens[0]
		srv.mu.Unlock()
		if gen > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resume never spliced a new connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 3, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.GatherUntil(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Round != 3 || got[0].Primal[0] != 4 {
		t.Fatalf("post-resume gather %+v", got)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestConnDropWithOpenObligationSurfaces: losing a client mid-obligation
// without a goodbye is a genuine failure a BLOCKING gather must report
// loudly — with no deadline there is no other way to stop waiting.
func TestConnDropWithOpenObligationSurfaces(t *testing.T) {
	srv, clients := startCluster(t, 1)
	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	clients[0].Close()
	if _, err := srv.GatherAny(1); err == nil {
		t.Fatal("blocking gather swallowed a dead connection")
	}
}

// TestConnDropUnderDeadlineFeedsQuorumPath: the same death under a
// deadline gather is absorbed — the gather times out (the quorum
// machinery's signal) and the client is reported unreachable so the
// scheduler stops dispatching to it. A process death costs a timed-out
// round, not the run.
func TestConnDropUnderDeadlineFeedsQuorumPath(t *testing.T) {
	srv, clients := startCluster(t, 1)
	if err := srv.SendTo([]int{0}, &wire.GlobalModel{Round: 1, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	clients[0].Close()
	got, err := srv.GatherUntil(1, 300*time.Millisecond)
	if !errors.Is(err, comm.ErrRoundTimeout) {
		t.Fatalf("want ErrRoundTimeout, got %v (%d updates)", err, len(got))
	}
	if len(got) != 0 {
		t.Fatalf("dead client delivered %d updates", len(got))
	}
	if down := srv.Unreachable(); len(down) != 1 || down[0] != 0 {
		t.Fatalf("unreachable = %v, want [0]", down)
	}
	srv.Forgive([]int{0})
	if out := srv.Outstanding(); len(out) != 0 {
		t.Fatalf("outstanding after forgive %v", out)
	}
}
