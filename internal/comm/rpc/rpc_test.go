package rpc

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, wire.KindLocalUpdate, payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != wire.KindLocalUpdate || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: %v %v", kind, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, wire.KindShutdown, nil); err != nil {
		t.Fatal(err)
	}
	kind, got, err := readFrame(&buf)
	if err != nil || kind != wire.KindShutdown || len(got) != 0 {
		t.Fatalf("empty frame: %v %v %v", kind, got, err)
	}
}

func TestFrameTruncatedHeader(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 0})
	if _, _, err := readFrame(buf); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, wire.KindJoin, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:6] // header(5) + 1 of 3 payload bytes
	if _, _, err := readFrame(bytes.NewBuffer(b)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	// Hand-craft a header announcing 2 GiB.
	hdr := []byte{1, 0x80, 0, 0, 0}
	if _, _, err := readFrame(bytes.NewBuffer(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame error = %v", err)
	}
}

// startCluster brings up a server with n clients over loopback TCP.
func startCluster(t *testing.T, n int) (*Server, []*Client) {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", ServerConfig{NumClients: n, Rounds: 5, ModelSize: 10, AcceptTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	acceptDone := make(chan error, 1)
	go func() { acceptDone <- srv.Accept() }()
	clients := make([]*Client, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var dialErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), uint32(i), "test-client")
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				dialErr = err
				return
			}
			clients[i] = c
		}(i)
	}
	wg.Wait()
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	if err := <-acceptDone; err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	})
	return srv, clients
}

func TestJoinHandshakeDeliversConfig(t *testing.T) {
	_, clients := startCluster(t, 3)
	for _, c := range clients {
		cfg := c.Config()
		if cfg.NumClients != 3 || cfg.Rounds != 5 || cfg.ModelSize != 10 {
			t.Fatalf("join ack config %+v", cfg)
		}
	}
}

func TestBroadcastGatherRound(t *testing.T) {
	srv, clients := startCluster(t, 4)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			gm, err := c.RecvGlobal()
			if err != nil {
				t.Errorf("client %d recv: %v", i, err)
				return
			}
			if gm.Round != 7 || gm.Weights[1] != -2 {
				t.Errorf("client %d got %+v", i, gm)
				return
			}
			err = c.SendUpdate(&wire.LocalUpdate{
				ClientID: uint32(i),
				Round:    gm.Round,
				Primal:   []float64{float64(i) + 0.5},
				Epsilon:  math.Inf(1),
			})
			if err != nil {
				t.Errorf("client %d send: %v", i, err)
			}
		}(i, c)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Round: 7, Weights: []float64{1, -2}}); err != nil {
		t.Fatal(err)
	}
	ups, err := srv.Gather()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, u := range ups {
		if u.ClientID != uint32(i) || u.Primal[0] != float64(i)+0.5 {
			t.Fatalf("update %d: %+v", i, u)
		}
	}
}

func TestMultipleRounds(t *testing.T) {
	srv, clients := startCluster(t, 2)
	const rounds = 5
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for {
				gm, err := c.RecvGlobal()
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if gm.Final {
					return
				}
				if err := c.SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Round: gm.Round, Primal: []float64{1}}); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	for r := 0; r < rounds; r++ {
		if err := srv.Broadcast(&wire.GlobalModel{Round: uint32(r), Weights: []float64{0}}); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Gather(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestServerStatsAccumulate(t *testing.T) {
	srv, clients := startCluster(t, 2)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if _, err := c.RecvGlobal(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if err := c.SendUpdate(&wire.LocalUpdate{ClientID: uint32(i), Primal: make([]float64, 100)}); err != nil {
				t.Errorf("send: %v", err)
			}
		}(i, c)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Weights: make([]float64, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Gather(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	snap := srv.Stats()
	// Each direction moved >= 2 * 800 payload bytes.
	if snap.BytesSent < 1600 || snap.BytesRecv < 1600 {
		t.Fatalf("stats too small: %+v", snap)
	}
	// Join msgs (2 recv, 2 sent) + broadcast (2 sent) + gather (2 recv).
	if snap.MsgsSent != 4 || snap.MsgsRecv != 4 {
		t.Fatalf("message counts %+v", snap)
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", ServerConfig{NumClients: 0}); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestDuplicateClientIDRejected(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerConfig{NumClients: 2, AcceptTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	acceptDone := make(chan error, 1)
	go func() { acceptDone <- srv.Accept() }()
	c1, err := Dial(srv.Addr(), 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Second client reuses ID 0: the server must fail Accept.
	c2, err := Dial(srv.Addr(), 0, "b")
	if err == nil {
		defer c2.Close()
	}
	if err := <-acceptDone; err == nil {
		t.Fatal("duplicate client id accepted")
	}
}

func TestAcceptTimesOut(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerConfig{NumClients: 1, AcceptTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	if err := srv.Accept(); err == nil {
		t.Fatal("accept with no clients should time out")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("accept timeout did not honor deadline")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	srv, clients := startCluster(t, 1)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_ = clients
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	srv, err := Listen("127.0.0.1:0", ServerConfig{NumClients: 1, AcceptTimeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go srv.Accept()
	c, err := Dial(srv.Addr(), 0, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// Let Accept finish registering before the loop.
	time.Sleep(50 * time.Millisecond)
	weights := make([]float64, 100000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			gm, err := c.RecvGlobal()
			if err != nil || gm.Final {
				return
			}
			if err := c.SendUpdate(&wire.LocalUpdate{Primal: gm.Weights}); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Broadcast(&wire.GlobalModel{Round: uint32(i), Weights: weights}); err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Gather(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	srv.Broadcast(&wire.GlobalModel{Final: true})
	<-done
	b.SetBytes(int64(8 * len(weights) * 2))
}

// TestGatherFailsWhenClientDies injects a mid-round client failure: the
// server must surface an error from Gather rather than hang.
func TestGatherFailsWhenClientDies(t *testing.T) {
	srv, clients := startCluster(t, 2)
	// Client 1 participates; client 0 dies after receiving the broadcast.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := clients[0].RecvGlobal(); err != nil {
			return
		}
		clients[0].Close()
	}()
	go func() {
		if _, err := clients[1].RecvGlobal(); err != nil {
			return
		}
		clients[1].SendUpdate(&wire.LocalUpdate{ClientID: 1, Primal: []float64{1}})
	}()
	if err := srv.Broadcast(&wire.GlobalModel{Round: 1, Weights: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	<-done
	if _, err := srv.Gather(); err == nil {
		t.Fatal("gather succeeded despite a dead client")
	}
}

// TestBroadcastFailsAfterServerClose verifies clean error propagation on a
// closed transport.
func TestBroadcastFailsAfterServerClose(t *testing.T) {
	srv, _ := startCluster(t, 1)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Weights: []float64{1}}); err == nil {
		t.Fatal("broadcast on closed server succeeded")
	}
}

// TestGarbageFrameRejected feeds a non-protocol byte stream to the server.
func TestGarbageFrameRejected(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", ServerConfig{NumClients: 1, AcceptTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	acceptDone := make(chan error, 1)
	go func() { acceptDone <- srv.Accept() }()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{9, 0, 0, 0, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptDone; err == nil {
		t.Fatal("garbage join frame accepted")
	}
}
