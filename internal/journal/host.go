package journal

import (
	"fmt"
	"os"
	"sort"
)

// RecoverHost replays every tenant journal under a multi-tenant host's
// journal root. Tenant t journals in the subdirectory "tenant-<t>"; each
// is opened, replayed, and closed independently, so one tenant's torn or
// empty journal never blocks its neighbors' recovery. The returned map is
// keyed by tenant id and holds only tenants with a journal directory
// present.
func RecoverHost(root string) (map[int]*Recovered, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("journal: host root %s: %w", root, err)
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var id int
		if n, err := fmt.Sscanf(e.Name(), "tenant-%d", &id); n == 1 && err == nil && id >= 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make(map[int]*Recovered, len(ids))
	for _, id := range ids {
		j, err := Open(fmt.Sprintf("%s/tenant-%d", root, id))
		if err != nil {
			return nil, fmt.Errorf("journal: host tenant %d: %w", id, err)
		}
		rec := j.Recovered()
		if cerr := j.Close(); cerr != nil {
			return nil, fmt.Errorf("journal: host tenant %d: %w", id, cerr)
		}
		out[id] = rec
	}
	return out, nil
}
