package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes data to path so that a crash at any instant leaves
// either the old file or the new file, never a torn mixture: the bytes go
// to a same-directory temporary file, which is fsynced, renamed over path,
// and sealed with a directory fsync so the rename itself is durable. It is
// the single write primitive for every checkpoint in this repository —
// non-atomic save paths are the bug class this helper retires.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temporary; the destination is
	// untouched until the rename.
	fail := func(stage string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: atomic write %s: %s: %w", path, stage, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: atomic write %s: rename: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Filesystems that cannot fsync a directory (some CI overlays) are
// tolerated: the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from exotic filesystems is not a caller-actionable error.
		return nil
	}
	return nil
}
