package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestAtomicWriteFileReplacesWholly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := AtomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := AtomicWriteFile(path, []byte("second, longer content"), 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second, longer content" {
		t.Fatalf("content %q", got)
	}
	// No temporary residue survives a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
}

// TestPartialCheckpointWriteIsTypedError is the crash simulation of the
// atomic-write contract, from the attacker's side: a checkpoint written
// WITHOUT the atomic helper and cut mid-write (what a crash does to a
// naive save path) must reload as the typed ErrCorrupt — never as garbage
// weights. The atomic helper makes this state unreachable; the loader
// still refuses it defensively.
func TestPartialCheckpointWriteIsTypedError(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if err := j.Checkpoint(&wire.JournalCheckpoint{
		NextRound: 5, Version: 4, Weights: []float64{1, 2, 3, 4, 5, 6, 7, 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(dir, checkpointName)
	whole, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must be refused with the typed error.
	for _, cut := range []int{0, 4, len(checkpointMagic), len(checkpointMagic) + 8, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(cpPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: want ErrCorrupt, got %v", cut, err)
		}
	}
}
