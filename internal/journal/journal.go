// Package journal is the server's crash-safe write-ahead log and
// checkpoint store. Every recovery-relevant state transition — round
// start, admitted update, ledger mutation, round commit — is appended (and
// by default fsynced) as one CRC-framed wire.JournalRecord *before* the
// transition takes effect in memory; a checkpoint compacts the log by
// snapshotting the full server state. On reboot, Open replays checkpoint +
// tail: a torn final frame (the crash landed mid-append) is truncated and
// tolerated, while corruption anywhere else surfaces as the typed
// ErrCorrupt — a journal never silently resurrects garbage state.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// ErrCorrupt tags every integrity failure of the journal or checkpoint:
// bad magic, CRC mismatch off the torn tail, undecodable record bytes, or
// a sequence regression. Callers distinguish it from I/O errors because
// the remedy differs (restore from backup vs retry).
var ErrCorrupt = errors.New("journal: corrupt")

const (
	walName        = "wal.log"
	checkpointName = "checkpoint.bin"
	// checkpointMagic stamps checkpoint files; the trailing digit versions
	// the container format (not the payload schema, which the wire codec's
	// unknown-field tolerance evolves).
	checkpointMagic = "APFLJ001"
	// maxFrame bounds a single WAL frame; a declared length beyond it is
	// treated as corruption rather than an allocation request.
	maxFrame = 1 << 30
)

// Recovered is the state Open (or Recover) reconstructed from disk.
type Recovered struct {
	// Checkpoint is the latest compaction snapshot, nil when none exists.
	Checkpoint *wire.JournalCheckpoint
	// Records is the WAL tail after the checkpoint, in append order.
	Records []*wire.JournalRecord
	// TornTail reports that trailing bytes of the WAL did not form a whole
	// valid frame — the signature of a crash mid-append — and were
	// truncated away.
	TornTail bool
}

// Empty reports that nothing was recovered: a fresh journal.
func (r *Recovered) Empty() bool {
	return r == nil || (r.Checkpoint == nil && len(r.Records) == 0)
}

// Journal is an open write-ahead round journal rooted at one directory.
// Not safe for concurrent use; the server's round loop is its only writer.
type Journal struct {
	// NoSync skips the per-append fsync. The in-process soak harness (and
	// the append microbench) set it: they simulate process death, not
	// power loss, so the OS page cache is part of the surviving "disk".
	// Real servers leave it false.
	NoSync bool

	dir       string
	wal       *os.File
	seq       uint64 // last assigned sequence number
	recovered *Recovered
	enc       *wire.Encoder
	hdr       [8]byte
}

// Open opens (creating if needed) the journal in dir, replaying any
// existing checkpoint and WAL tail. The recovered state is available via
// Recovered; the WAL is positioned for appending.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	j := &Journal{dir: dir, enc: wire.NewEncoder(nil)}
	rec := &Recovered{}
	cp, err := loadCheckpoint(filepath.Join(dir, checkpointName))
	if err != nil {
		return nil, err
	}
	rec.Checkpoint = cp
	if cp != nil {
		j.seq = cp.Seq
	}

	walPath := filepath.Join(dir, walName)
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", walPath, err)
	}
	good, torn, err := j.replayWAL(wal, rec)
	if err != nil {
		wal.Close()
		return nil, err
	}
	rec.TornTail = torn
	if torn {
		// Truncate the torn tail so new appends extend a clean log rather
		// than interleaving after garbage.
		if err := wal.Truncate(good); err != nil {
			wal.Close()
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", walPath, err)
		}
	}
	if _, err := wal.Seek(good, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("journal: seeking %s: %w", walPath, err)
	}
	j.wal = wal
	j.recovered = rec
	return j, nil
}

// replayWAL scans wal from the start, decoding every whole valid frame
// into rec and returning the offset after the last good frame. Records at
// or before the checkpoint's sequence are skipped (the crash window
// between checkpoint rename and WAL truncation leaves them behind); a
// sequence that fails to increase afterwards is corruption.
func (j *Journal) replayWAL(wal *os.File, rec *Recovered) (good int64, torn bool, err error) {
	r := &countingReader{r: wal}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF ends the log; a partial header is a torn tail.
			return good, err != io.EOF, nil
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFrame {
			return good, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, true, nil
		}
		m := &wire.JournalRecord{}
		if err := m.Unmarshal(wire.NewDecoder(payload)); err != nil {
			// The CRC vouched for these bytes, so this is not a torn write:
			// the record was corrupted some other way.
			return good, false, fmt.Errorf("%w: WAL record at offset %d: %v", ErrCorrupt, good, err)
		}
		if m.Seq > j.seq {
			if len(rec.Records) > 0 && m.Seq != j.seq+1 {
				return good, false, fmt.Errorf("%w: WAL sequence jumped %d -> %d at offset %d",
					ErrCorrupt, j.seq, m.Seq, good)
			}
			rec.Records = append(rec.Records, m)
			j.seq = m.Seq
		}
		good = r.n
	}
}

// countingReader tracks the absolute offset consumed from r.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Recovered returns the state loaded when the journal was opened.
func (j *Journal) Recovered() *Recovered { return j.recovered }

// Seq returns the last assigned journal sequence number.
func (j *Journal) Seq() uint64 { return j.seq }

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Append assigns rec the next sequence number and writes it as one framed
// entry, fsyncing before returning (unless NoSync) — the write-ahead
// barrier callers rely on: when Append returns, the transition is durable
// and may take effect in memory.
func (j *Journal) Append(rec *wire.JournalRecord) error {
	if j.wal == nil {
		return fmt.Errorf("journal: append on a closed journal")
	}
	rec.Seq = j.seq + 1
	j.enc.Reset()
	rec.Marshal(j.enc)
	payload := j.enc.Bytes()
	if len(payload) > maxFrame {
		return fmt.Errorf("journal: record of %d bytes exceeds the frame bound", len(payload))
	}
	binary.BigEndian.PutUint32(j.hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(j.hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := j.wal.Write(j.hdr[:]); err != nil {
		return fmt.Errorf("journal: append header: %w", err)
	}
	if _, err := j.wal.Write(payload); err != nil {
		return fmt.Errorf("journal: append payload: %w", err)
	}
	if !j.NoSync {
		if err := j.wal.Sync(); err != nil {
			return fmt.Errorf("journal: append fsync: %w", err)
		}
	}
	j.seq = rec.Seq
	return nil
}

// Checkpoint writes cp as the new compaction snapshot (atomically: tmp +
// fsync + rename) stamped with the current sequence number, then truncates
// the WAL — every appended record is now folded into the snapshot. A crash
// between the rename and the truncation is harmless: replay skips tail
// records at or before the checkpoint sequence.
func (j *Journal) Checkpoint(cp *wire.JournalCheckpoint) error {
	if j.wal == nil {
		return fmt.Errorf("journal: checkpoint on a closed journal")
	}
	cp.Seq = j.seq
	j.enc.Reset()
	cp.Marshal(j.enc)
	payload := j.enc.Bytes()
	buf := make([]byte, 0, len(checkpointMagic)+8+len(payload))
	buf = append(buf, checkpointMagic...)
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)
	if err := AtomicWriteFile(filepath.Join(j.dir, checkpointName), buf, 0o644); err != nil {
		return err
	}
	if err := j.wal.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating WAL after checkpoint: %w", err)
	}
	if _, err := j.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: rewinding WAL after checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and validates the checkpoint file, returning nil
// when none exists. Any integrity failure — short file, bad magic, CRC
// mismatch, undecodable payload — is ErrCorrupt: checkpoints are written
// atomically, so a damaged one is never a benign torn write.
func loadCheckpoint(path string) (*wire.JournalCheckpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	if len(buf) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("%w: checkpoint %s is %d bytes, shorter than its header", ErrCorrupt, path, len(buf))
	}
	if string(buf[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: checkpoint %s has bad magic", ErrCorrupt, path)
	}
	body := buf[len(checkpointMagic):]
	n := binary.BigEndian.Uint32(body[:4])
	sum := binary.BigEndian.Uint32(body[4:8])
	payload := body[8:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("%w: checkpoint %s declares %d payload bytes, has %d", ErrCorrupt, path, n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checkpoint %s CRC mismatch", ErrCorrupt, path)
	}
	cp := &wire.JournalCheckpoint{}
	if err := cp.Unmarshal(wire.NewDecoder(payload)); err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrCorrupt, path, err)
	}
	return cp, nil
}

// Recover simulates a process restart in place: the WAL handle is closed
// and the journal re-opened from disk, replaying checkpoint + tail exactly
// as a rebooted server would. The in-process kill -9 soak harness calls it
// where a real deployment would re-exec. The receiver is rebound to the
// fresh journal; the returned state is what survived.
func (j *Journal) Recover() (*Recovered, error) {
	noSync := j.NoSync
	if j.wal != nil {
		// A killed process does not flush or close anything gracefully; the
		// OS still persists completed writes, which plain Close models.
		if err := j.wal.Close(); err != nil {
			return nil, fmt.Errorf("journal: recover: %w", err)
		}
		j.wal = nil
	}
	nj, err := Open(j.dir)
	if err != nil {
		return nil, err
	}
	*j = *nj
	j.NoSync = noSync
	return j.recovered, nil
}

// Close flushes and closes the WAL.
func (j *Journal) Close() error {
	if j.wal == nil {
		return nil
	}
	var firstErr error
	if !j.NoSync {
		firstErr = j.wal.Sync()
	}
	if err := j.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	j.wal = nil
	return firstErr
}
