package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

func rec(op uint8, round uint32) *wire.JournalRecord {
	r := &wire.JournalRecord{Op: op, Round: round}
	switch op {
	case wire.JournalRoundStart:
		r.Cohort = []uint32{0, 1, 2}
	case wire.JournalAdmit:
		r.ClientID = round % 3
		r.NumSamples = 64
		r.Primal = []float64{float64(round), -0.5, 2.25}
	case wire.JournalCommit:
		r.Version = uint64(round)
		r.Weights = []float64{1.5 * float64(round), -3, 0.125}
	}
	return r
}

func mustOpen(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return j
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if !j.Recovered().Empty() {
		t.Fatal("fresh journal recovered state")
	}
	want := []*wire.JournalRecord{
		rec(wire.JournalRoundStart, 1),
		rec(wire.JournalAdmit, 1),
		rec(wire.JournalCommit, 1),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if j.Seq() != 3 {
		t.Fatalf("seq %d after 3 appends", j.Seq())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	got := j2.Recovered()
	if got.Checkpoint != nil || got.TornTail {
		t.Fatalf("unexpected recovery shape: %+v", got)
	}
	if len(got.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got.Records), len(want))
	}
	for i, r := range got.Records {
		if r.Seq != uint64(i+1) || r.Op != want[i].Op || r.Round != want[i].Round {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if got.Records[1].Primal[0] != 1 || got.Records[2].Weights[0] != 1.5 {
		t.Fatal("vector payloads did not survive replay")
	}
	// Appends continue the sequence where the crashed process left it.
	if err := j2.Append(rec(wire.JournalRoundStart, 2)); err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 4 {
		t.Fatalf("seq %d after recovery append", j2.Seq())
	}
}

func TestJournalTornTailIsTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	for r := uint32(1); r <= 3; r++ {
		if err := j.Append(rec(wire.JournalCommit, r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 5 bytes, as a crash mid-append
	// would.
	if err := os.Truncate(walPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	got := j2.Recovered()
	if !got.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(got.Records) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(got.Records))
	}
	// The tail was truncated: a new append must extend a clean log.
	if err := j2.Append(rec(wire.JournalCommit, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := mustOpen(t, dir)
	defer j3.Close()
	if got := j3.Recovered(); got.TornTail || len(got.Records) != 3 {
		t.Fatalf("log not clean after torn-tail truncation: %+v", got)
	}
}

func TestJournalStopsAtFirstBadFrame(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	for r := uint32(1); r <= 3; r++ {
		if err := j.Append(rec(wire.JournalCommit, r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the first frame: everything from that frame
	// on is untrusted and dropped.
	walPath := filepath.Join(dir, walName)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[10] ^= 0xff
	if err := os.WriteFile(walPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir)
	defer j2.Close()
	if got := j2.Recovered(); !got.TornTail || len(got.Records) != 0 {
		t.Fatalf("bad frame did not stop replay: %+v", got)
	}
}

func TestJournalCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	for r := uint32(1); r <= 3; r++ {
		if err := j.Append(rec(wire.JournalCommit, r)); err != nil {
			t.Fatal(err)
		}
	}
	cp := &wire.JournalCheckpoint{
		NextRound: 4, Version: 3, Weights: []float64{7, 8, 9},
		DepartedUntil: []uint32{0, 0}, BenchedUntil: []uint32{0, 5},
		Strikes: []uint32{0, 1}, AwaitRejoin: []uint32{0, 0},
		TimedOut: 1,
	}
	if err := j.Checkpoint(cp); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cp.Seq != 3 {
		t.Fatalf("checkpoint stamped seq %d, want 3", cp.Seq)
	}
	if err := j.Append(rec(wire.JournalRoundStart, 4)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	got := j2.Recovered()
	if got.Checkpoint == nil {
		t.Fatal("checkpoint not recovered")
	}
	if got.Checkpoint.Seq != 3 || got.Checkpoint.NextRound != 4 || got.Checkpoint.Weights[0] != 7 {
		t.Fatalf("checkpoint content: %+v", got.Checkpoint)
	}
	if got.Checkpoint.BenchedUntil[1] != 5 || got.Checkpoint.Strikes[1] != 1 || got.Checkpoint.TimedOut != 1 {
		t.Fatalf("membership snapshot content: %+v", got.Checkpoint)
	}
	if len(got.Records) != 1 || got.Records[0].Seq != 4 {
		t.Fatalf("tail after checkpoint: %+v", got.Records)
	}
}

func TestJournalReplaySkipsPreCheckpointTail(t *testing.T) {
	// The crash window between checkpoint rename and WAL truncation leaves
	// already-folded records in the tail; replay must skip them by
	// sequence number instead of double-applying.
	dir := t.TempDir()
	j := mustOpen(t, dir)
	for r := uint32(1); r <= 3; r++ {
		if err := j.Append(rec(wire.JournalCommit, r)); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walName)
	preTrunc, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(&wire.JournalCheckpoint{NextRound: 4, Version: 3, Weights: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(wire.JournalRoundStart, 4)); err != nil {
		t.Fatal(err)
	}
	postTail, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the untruncated WAL: pre-checkpoint frames followed by
	// the post-checkpoint appends.
	if err := os.WriteFile(walPath, append(preTrunc, postTail...), 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir)
	defer j2.Close()
	got := j2.Recovered()
	if len(got.Records) != 1 || got.Records[0].Seq != 4 {
		t.Fatalf("pre-checkpoint records not skipped: %+v", got.Records)
	}
}

func TestJournalRecoverInPlace(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	j.NoSync = true
	if err := j.Append(rec(wire.JournalRoundStart, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(wire.JournalAdmit, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := j.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("in-place recovery replayed %d records", len(got.Records))
	}
	if !j.NoSync {
		t.Fatal("NoSync not preserved across Recover")
	}
	// The rebound journal keeps appending with the next sequence number.
	if err := j.Append(rec(wire.JournalCommit, 1)); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 3 {
		t.Fatalf("seq %d after recover+append", j.Seq())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalCorruptCheckpointIsTyped(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if err := j.Append(rec(wire.JournalCommit, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(&wire.JournalCheckpoint{NextRound: 2, Version: 1, Weights: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(dir, checkpointName)
	buf, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(cpPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint: want ErrCorrupt, got %v", err)
	}
}
