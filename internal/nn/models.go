package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// CNNConfig describes the paper's convolutional model: two 2-D convolution
// layers, one 2-D max-pooling layer, elementwise ReLU, and two linear
// layers (Section IV-A). Channel and hidden widths are configurable so the
// same architecture runs at laptop scale.
type CNNConfig struct {
	InChannels int // image channels (1 grayscale, 3 RGB)
	Height     int // input height
	Width      int // input width
	Classes    int // output classes
	Conv1      int // channels of first conv (paper-scale default 32)
	Conv2      int // channels of second conv (paper-scale default 64)
	Kernel     int // square kernel size (default 5)
	Hidden     int // width of the first linear layer (paper-scale default 512)
}

// withDefaults fills zero fields with the paper-scale defaults.
func (c CNNConfig) withDefaults() CNNConfig {
	if c.Conv1 == 0 {
		c.Conv1 = 32
	}
	if c.Conv2 == 0 {
		c.Conv2 = 64
	}
	if c.Kernel == 0 {
		c.Kernel = 5
	}
	if c.Hidden == 0 {
		c.Hidden = 512
	}
	return c
}

// NewCNN constructs the paper's CNN:
//
//	Conv(k) → ReLU → MaxPool(2,2) → Conv(k) → ReLU → Flatten → Linear → ReLU → Linear
//
// Padding keeps spatial size through the convolutions so any input size with
// H, W divisible by 2 works.
func NewCNN(cfg CNNConfig, r *rng.RNG) *Sequential {
	cfg = cfg.withDefaults()
	pad := cfg.Kernel / 2
	// Spatial flow: conv(pad same) -> H×W, pool -> H/2×W/2, conv(pad same).
	ph, pw := cfg.Height/2, cfg.Width/2
	flat := cfg.Conv2 * ph * pw
	return NewSequential(
		NewConv2D(cfg.InChannels, cfg.Conv1, cfg.Kernel, 1, pad, r),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewConv2D(cfg.Conv1, cfg.Conv2, cfg.Kernel, 1, pad, r),
		NewReLU(),
		NewFlatten(),
		NewLinear(flat, cfg.Hidden, r),
		NewReLU(),
		NewLinear(cfg.Hidden, cfg.Classes, r),
	)
}

// NewMLP constructs a multilayer perceptron over flattened inputs; the
// smallest model useful for fast tests and the convex/nonconvex comparisons
// in the paper's problem statement (Eq. 1).
func NewMLP(in int, hidden []int, classes int, r *rng.RNG) *Sequential {
	var layers []Module
	layers = append(layers, NewFlatten())
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewLinear(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewLinear(prev, classes, r))
	return NewSequential(layers...)
}

// NewLinearModel constructs the convex case of Eq. (1): a single affine map
// over flattened inputs (multinomial logistic regression under the
// cross-entropy loss).
func NewLinearModel(in, classes int, r *rng.RNG) *Sequential {
	return NewSequential(NewFlatten(), NewLinear(in, classes, r))
}

// Factory builds fresh model replicas. Every federated client owns its own
// replica; the factory guarantees they agree on architecture.
type Factory func() Module

// CloneInto copies src's parameters into dst. The two models must have the
// same architecture (same flat dimension).
func CloneInto(dst, src Module) {
	SetParams(dst, FlattenParams(src, nil))
}

// Predict runs a forward pass without caching gradients being used and
// returns logits. Provided for readability at call sites.
func Predict(m Module, x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(x)
}
