package nn

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	r := rng.New(1)
	src := NewCNN(CNNConfig{InChannels: 1, Height: 8, Width: 8, Classes: 3, Conv1: 2, Conv2: 3, Kernel: 3, Hidden: 8}, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewCNN(CNNConfig{InChannels: 1, Height: 8, Width: 8, Classes: 3, Conv1: 2, Conv2: 3, Kernel: 3, Hidden: 8}, rng.New(2))
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	vs, vd := FlattenParams(src, nil), FlattenParams(dst, nil)
	for i := range vs {
		if vs[i] != vd[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	r := rng.New(3)
	src := NewMLP(4, []int{3}, 2, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	// Different layer count.
	other := NewMLP(4, []int{3, 3}, 2, rng.New(4))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
	// Same count, different shapes/names.
	mismatch := NewMLP(5, []int{3}, 2, rng.New(5))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), mismatch); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	r := rng.New(6)
	src := NewMLP(4, []int{3}, 2, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 4, len(full) / 2, len(full) - 1} {
		dst := NewMLP(4, []int{3}, 2, rng.New(7))
		if err := LoadParams(bytes.NewReader(full[:cut]), dst); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCheckpointPreservesTraining(t *testing.T) {
	// A model checkpointed and restored must produce identical logits.
	r := rng.New(8)
	src := NewMLP(6, []int{5}, 3, r)
	x := randT(r, 2, 6)
	want := src.Forward(x)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewMLP(6, []int{5}, 3, rng.New(9))
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	got := dst.Forward(x)
	if !got.EqualWithin(want, 0) {
		t.Fatal("restored model diverges from source")
	}
}

func TestCheckpointErrorsAreTyped(t *testing.T) {
	src := NewMLP(4, []int{3}, 2, rng.New(10))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := [][]byte{
		nil,                // empty
		full[:3],           // torn header
		full[:len(full)-2], // torn body
		append(append([]byte{}, full[:8]...), full[9:]...), // byte dropped
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},   // grandiose length claim
	}
	flip := append([]byte{}, full...)
	flip[10] ^= 0xff
	corrupt = append(corrupt, flip)
	for i, data := range corrupt {
		dst := NewMLP(4, []int{3}, 2, rng.New(11))
		if err := LoadParams(bytes.NewReader(data), dst); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("corruption %d: err = %v, want ErrCheckpoint", i, err)
		}
	}
}

// TestCheckpointFailedLoadLeavesModelUntouched pins the two-phase load: a
// checkpoint that fails validation at any truncation point must not have
// written a single weight.
func TestCheckpointFailedLoadLeavesModelUntouched(t *testing.T) {
	src := NewMLP(4, []int{3}, 2, rng.New(12))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dst := NewMLP(4, []int{3}, 2, rng.New(13))
		before := FlattenParams(dst, nil)
		if err := LoadParams(bytes.NewReader(full[:cut]), dst); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		after := FlattenParams(dst, nil)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("truncation at %d mutated weight %d before failing", cut, i)
			}
		}
	}
}
