package nn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Checkpointing: models are serialized as a sequence of named parameter
// records through the wire codec, so a training run can be paused, shipped
// between silos, or archived. The format validates parameter names and
// shapes on load, refusing to resurrect a checkpoint into a different
// architecture.

// ErrCheckpoint tags every integrity failure of a model checkpoint:
// truncation, an implausible declared length, undecodable bytes, or a
// parameter mismatch against the target architecture. Callers distinguish
// it from plain I/O errors because the remedy differs (fall back to fresh
// weights vs retry the read).
var ErrCheckpoint = errors.New("nn: corrupt checkpoint")

// maxCheckpointBytes bounds a checkpoint body; a declared length beyond it
// is treated as corruption rather than an allocation request, so a
// garbage header cannot demand a multi-gigabyte buffer.
const maxCheckpointBytes = 1 << 30

// SaveParams writes all parameters of m to w.
func SaveParams(w io.Writer, m Module) error {
	params := m.Params()
	e := wire.NewEncoder(nil)
	e.Uint64(1, uint64(len(params)))
	for _, p := range params {
		e.String(2, p.Name)
		e.Doubles(3, p.Value.Data())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(e.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if _, err := w.Write(e.Bytes()); err != nil {
		return fmt.Errorf("nn: checkpoint body: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint from r into m. The checkpoint must contain
// exactly m's parameters, in order, with matching names and sizes. The
// load is two-phase: every byte is decoded and validated before the first
// weight is written, so a corrupt or truncated checkpoint fails with
// ErrCheckpoint and leaves the model untouched — never half-restored.
func LoadParams(r io.Reader, m Module) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrCheckpoint, err)
	}
	n := binary.BigEndian.Uint64(hdr[:])
	if n > maxCheckpointBytes {
		return fmt.Errorf("%w: declared body length %d exceeds %d", ErrCheckpoint, n, maxCheckpointBytes)
	}
	// The buffer grows with the bytes that actually arrive, not with the
	// declared length, so a truncated file with a grandiose header fails
	// cheaply instead of allocating the whole claim first.
	var buf bytes.Buffer
	buf.Grow(int(min(n, 1<<20)))
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return fmt.Errorf("%w: reading %d-byte body: %v", ErrCheckpoint, n, err)
	}
	d := wire.NewDecoder(buf.Bytes())
	params := m.Params()
	// staged collects the validated value vectors; named tracks the
	// name/values record pairing so values can never land under the wrong
	// (or a missing) parameter name.
	staged := make([][]float64, 0, len(params))
	counted := false
	named := false
	for d.More() {
		field, wtype, err := d.Tag()
		if err != nil {
			return fmt.Errorf("%w: decode: %v", ErrCheckpoint, err)
		}
		switch field {
		case 1:
			count, err := d.Uint64()
			if err != nil {
				return fmt.Errorf("%w: parameter count: %v", ErrCheckpoint, err)
			}
			if count != uint64(len(params)) {
				return fmt.Errorf("%w: checkpoint has %d parameters, model has %d", ErrCheckpoint, count, len(params))
			}
			counted = true
		case 2:
			name, err := d.String()
			if err != nil {
				return fmt.Errorf("%w: parameter name: %v", ErrCheckpoint, err)
			}
			if named {
				return fmt.Errorf("%w: parameter %q carries no values", ErrCheckpoint, params[len(staged)].Name)
			}
			if len(staged) >= len(params) {
				return fmt.Errorf("%w: extra parameter %q", ErrCheckpoint, name)
			}
			if name != params[len(staged)].Name {
				return fmt.Errorf("%w: parameter %d is %q, model expects %q", ErrCheckpoint, len(staged), name, params[len(staged)].Name)
			}
			named = true
		case 3:
			vals, err := d.Doubles()
			if err != nil {
				return fmt.Errorf("%w: parameter values: %v", ErrCheckpoint, err)
			}
			if !named {
				return fmt.Errorf("%w: values without a parameter name", ErrCheckpoint)
			}
			p := params[len(staged)]
			if len(vals) != p.Value.Size() {
				return fmt.Errorf("%w: parameter %q has %d values, model expects %d", ErrCheckpoint, p.Name, len(vals), p.Value.Size())
			}
			staged = append(staged, vals)
			named = false
		default:
			if err := d.Skip(wtype); err != nil {
				return fmt.Errorf("%w: decode: %v", ErrCheckpoint, err)
			}
		}
	}
	if !counted {
		return fmt.Errorf("%w: missing parameter count", ErrCheckpoint)
	}
	if named {
		return fmt.Errorf("%w: parameter %q carries no values", ErrCheckpoint, params[len(staged)].Name)
	}
	if len(staged) != len(params) {
		return fmt.Errorf("%w: holds %d of %d parameters", ErrCheckpoint, len(staged), len(params))
	}
	for i, vals := range staged {
		copy(params[i].Value.Data(), vals)
	}
	return nil
}
