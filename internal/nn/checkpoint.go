package nn

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Checkpointing: models are serialized as a sequence of named parameter
// records through the wire codec, so a training run can be paused, shipped
// between silos, or archived. The format validates parameter names and
// shapes on load, refusing to resurrect a checkpoint into a different
// architecture.

// SaveParams writes all parameters of m to w.
func SaveParams(w io.Writer, m Module) error {
	params := m.Params()
	e := wire.NewEncoder(nil)
	e.Uint64(1, uint64(len(params)))
	for _, p := range params {
		e.String(2, p.Name)
		e.Doubles(3, p.Value.Data())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(e.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if _, err := w.Write(e.Bytes()); err != nil {
		return fmt.Errorf("nn: checkpoint body: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint from r into m. The checkpoint must contain
// exactly m's parameters, in order, with matching names and sizes.
func LoadParams(r io.Reader, m Module) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	n := binary.BigEndian.Uint64(hdr[:])
	if n > 1<<32 {
		return fmt.Errorf("nn: checkpoint implausibly large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("nn: checkpoint body: %w", err)
	}
	d := wire.NewDecoder(body)
	params := m.Params()
	var count uint64
	seen := 0
	for d.More() {
		field, wtype, err := d.Tag()
		if err != nil {
			return fmt.Errorf("nn: checkpoint decode: %w", err)
		}
		switch field {
		case 1:
			if count, err = d.Uint64(); err != nil {
				return err
			}
			if int(count) != len(params) {
				return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
			}
		case 2:
			name, err := d.String()
			if err != nil {
				return err
			}
			if seen >= len(params) {
				return fmt.Errorf("nn: checkpoint has extra parameter %q", name)
			}
			if name != params[seen].Name {
				return fmt.Errorf("nn: checkpoint parameter %d is %q, model expects %q", seen, name, params[seen].Name)
			}
		case 3:
			vals, err := d.Doubles()
			if err != nil {
				return err
			}
			if seen >= len(params) {
				return fmt.Errorf("nn: checkpoint values without a parameter")
			}
			p := params[seen]
			if len(vals) != p.Value.Size() {
				return fmt.Errorf("nn: parameter %q has %d values, model expects %d", p.Name, len(vals), p.Value.Size())
			}
			copy(p.Value.Data(), vals)
			seen++
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	if seen != len(params) {
		return fmt.Errorf("nn: checkpoint restored %d of %d parameters", seen, len(params))
	}
	return nil
}
