package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func randT(r *rng.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	r.FillNormal(t.Data(), 0, 1)
	return t
}

func TestLinearForwardShape(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(4, 3, r)
	y := l.Forward(randT(r, 5, 4))
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("Linear output shape %v", y.Shape())
	}
}

func TestLinearForwardValues(t *testing.T) {
	r := rng.New(2)
	l := NewLinear(2, 2, r)
	// Fix weights manually: W = [[1,2],[3,4]], b = [10, 20]
	copy(l.Weight.Value.Data(), []float64{1, 2, 3, 4})
	copy(l.Bias.Value.Data(), []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := l.Forward(x)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Linear values wrong: %v", y.Data())
	}
}

func TestReLU(t *testing.T) {
	a := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := a.Forward(x)
	want := []float64{0, 0, 2, 0}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("ReLU forward %v", y.Data())
		}
	}
	dy := tensor.FromSlice([]float64{5, 5, 5, 5}, 4)
	dx := a.Backward(dy)
	wantG := []float64{0, 0, 5, 0}
	for i, v := range wantG {
		if dx.Data()[i] != v {
			t.Fatalf("ReLU backward %v", dx.Data())
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := randT(rng.New(3), 2, 3, 4, 4)
	y := f.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("Flatten shape %v", y.Shape())
	}
	dx := f.Backward(y)
	if dx.Rank() != 4 || dx.Dim(3) != 4 {
		t.Fatalf("Flatten backward shape %v", dx.Shape())
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over K classes → loss = ln K.
	logits := tensor.New(2, 4)
	loss, grad := CrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform CE loss %v, want ln4=%v", loss, math.Log(4))
	}
	// Gradient rows must sum to zero (softmax minus one-hot, both sum to 1).
	for i := 0; i < 2; i++ {
		s := grad.Row(i).Sum()
		if math.Abs(s) > 1e-12 {
			t.Fatalf("CE grad row %d sums to %v", i, s)
		}
	}
}

func TestCrossEntropyGradientNumerical(t *testing.T) {
	r := rng.New(4)
	logits := randT(r, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-6
	for s := 0; s < 15; s++ {
		i := r.Intn(logits.Size())
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("CE grad mismatch at %d: %v vs %v", i, num, grad.Data()[i])
		}
	}
}

func TestCrossEntropyNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 0, -1000}, 1, 3)
	loss, grad := CrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("CE not stable: loss = %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data() {
		if math.IsNaN(g) {
			t.Fatal("CE gradient NaN")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(5)
	p := Softmax(randT(r, 4, 7))
	for i := 0; i < 4; i++ {
		s := p.Row(i).Sum()
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 0, 0,
		0, 2, 0,
		0, 0, 3,
		9, 0, 0,
	}, 4, 3)
	acc := Accuracy(logits, []int{0, 1, 2, 1})
	if acc != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", acc)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty batch accuracy should be 0")
	}
}

// fullModelLoss computes CE loss of a model on fixed data.
func fullModelLoss(m Module, x *tensor.Tensor, labels []int) float64 {
	loss, _ := CrossEntropy(m.Forward(x), labels)
	return loss
}

// TestFullCNNGradientNumerical end-to-end gradient check of the paper's CNN
// (small widths) against central finite differences.
func TestFullCNNGradientNumerical(t *testing.T) {
	r := rng.New(6)
	m := NewCNN(CNNConfig{InChannels: 1, Height: 8, Width: 8, Classes: 3, Conv1: 2, Conv2: 3, Kernel: 3, Hidden: 8}, r)
	x := randT(r, 2, 1, 8, 8)
	labels := []int{0, 2}

	ZeroGrad(m)
	logits := m.Forward(x)
	_, dlogits := CrossEntropy(logits, labels)
	m.Backward(dlogits)

	params := m.Params()
	const eps = 1e-5
	checked := 0
	for _, p := range params {
		for s := 0; s < 4; s++ {
			i := r.Intn(p.Value.Size())
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := fullModelLoss(m, x, labels)
			p.Value.Data()[i] = orig - eps
			lm := fullModelLoss(m, x, labels)
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data()[i]
			if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("param %s idx %d: numeric %v analytic %v", p.Name, i, num, got)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestMLPGradientNumerical(t *testing.T) {
	r := rng.New(7)
	m := NewMLP(10, []int{6, 5}, 4, r)
	x := randT(r, 3, 10)
	labels := []int{1, 0, 3}
	ZeroGrad(m)
	_, dlogits := CrossEntropy(m.Forward(x), labels)
	m.Backward(dlogits)
	const eps = 1e-6
	for _, p := range m.Params() {
		for s := 0; s < 5; s++ {
			i := r.Intn(p.Value.Size())
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := fullModelLoss(m, x, labels)
			p.Value.Data()[i] = orig - eps
			lm := fullModelLoss(m, x, labels)
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data()[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s idx %d: numeric %v analytic %v", p.Name, i, num, p.Grad.Data()[i])
			}
		}
	}
}

func TestFlattenParamsSetParamsRoundTrip(t *testing.T) {
	r := rng.New(8)
	m := NewMLP(6, []int{5}, 3, r)
	v := FlattenParams(m, nil)
	if len(v) != NumParams(m) {
		t.Fatalf("flat length %d != NumParams %d", len(v), NumParams(m))
	}
	// Perturb, write back, read again.
	for i := range v {
		v[i] += 1.5
	}
	SetParams(m, v)
	v2 := FlattenParams(m, nil)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSetParamsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SetParams(NewMLP(4, nil, 2, rng.New(1)), make([]float64, 3))
}

func TestZeroGrad(t *testing.T) {
	r := rng.New(9)
	m := NewMLP(4, []int{3}, 2, r)
	x := randT(r, 2, 4)
	_, d := CrossEntropy(m.Forward(x), []int{0, 1})
	m.Backward(d)
	nonzero := false
	for _, p := range m.Params() {
		if p.Grad.Norm2() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("backward produced no gradient")
	}
	ZeroGrad(m)
	for _, p := range m.Params() {
		if p.Grad.Norm2() != 0 {
			t.Fatal("ZeroGrad left nonzero gradient")
		}
	}
}

func TestCloneInto(t *testing.T) {
	r := rng.New(10)
	a := NewMLP(4, []int{3}, 2, r)
	b := NewMLP(4, []int{3}, 2, r)
	CloneInto(b, a)
	va, vb := FlattenParams(a, nil), FlattenParams(b, nil)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("CloneInto did not copy parameters")
		}
	}
}

func TestCNNOutputShape(t *testing.T) {
	r := rng.New(11)
	m := NewCNN(CNNConfig{InChannels: 3, Height: 16, Width: 16, Classes: 10, Conv1: 4, Conv2: 4, Kernel: 5, Hidden: 16}, r)
	y := m.Forward(randT(r, 2, 3, 16, 16))
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("CNN output shape %v", y.Shape())
	}
}

func TestCNNDefaultsArePaperScale(t *testing.T) {
	cfg := CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10}.withDefaults()
	if cfg.Conv1 != 32 || cfg.Conv2 != 64 || cfg.Kernel != 5 || cfg.Hidden != 512 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// A two-layer MLP must be able to fit a tiny XOR-like dataset: a smoke test
// that the whole fwd/bwd/update loop actually learns.
func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(12)
	m := NewMLP(2, []int{8}, 2, r)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	lr := 0.5
	for step := 0; step < 500; step++ {
		ZeroGrad(m)
		logits := m.Forward(x)
		_, d := CrossEntropy(logits, labels)
		m.Backward(d)
		for _, p := range m.Params() {
			p.Value.AXPY(-lr, p.Grad)
		}
	}
	if acc := Accuracy(m.Forward(x), labels); acc != 1.0 {
		t.Fatalf("MLP failed to fit XOR: accuracy %v", acc)
	}
}

func BenchmarkCNNForwardBackward(b *testing.B) {
	r := rng.New(1)
	m := NewCNN(CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10, Conv1: 8, Conv2: 16, Kernel: 5, Hidden: 64}, r)
	x := randT(r, 16, 1, 28, 28)
	labels := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZeroGrad(m)
		logits := m.Forward(x)
		_, d := CrossEntropy(logits, labels)
		m.Backward(d)
	}
}
