package nn

import (
	"testing"

	"repro/internal/rng"
)

// TestFlattenReusesCapacity: FlattenParams/FlattenGrads must reuse a
// destination whose capacity suffices even when its length differs —
// the old length-equality test silently reallocated on every call whose
// caller had trimmed or grown the buffer, an O(dim) garbage source in
// the per-step gradient path.
func TestFlattenReusesCapacity(t *testing.T) {
	m := NewMLP(4, []int{3}, 2, rng.New(1))
	n := NumParams(m)
	for _, length := range []int{0, 1, n} {
		dst := make([]float64, length, n)
		got := FlattenParams(m, dst)
		if len(got) != n {
			t.Fatalf("FlattenParams returned length %d, want %d", len(got), n)
		}
		if &got[0] != &dst[:1][0] {
			t.Fatalf("FlattenParams reallocated for dst len=%d cap=%d", length, n)
		}
		grads := FlattenGrads(m, dst)
		if len(grads) != n || &grads[0] != &dst[:1][0] {
			t.Fatalf("FlattenGrads reallocated for dst len=%d cap=%d", length, n)
		}
	}
	// Insufficient capacity still allocates correctly.
	if got := FlattenParams(m, make([]float64, 0, n-1)); len(got) != n {
		t.Fatalf("undersized dst: got length %d, want %d", len(got), n)
	}
}
