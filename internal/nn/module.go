// Package nn implements the neural-network layer library used by the APPFL
// reproduction: Conv2D, Linear, ReLU, MaxPool2D, Flatten, and a Sequential
// container, with manually derived backward passes and a softmax
// cross-entropy loss. It stands in for PyTorch's torch.nn.
//
// Layers are stateful: Forward caches whatever Backward needs, so a module
// must not be shared across concurrent training loops. Every federated
// client therefore owns its own model replica (see nn.Clone), exactly as
// each APPFL client process owns its own torch module.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Parameter is one trainable tensor with its gradient accumulator.
type Parameter struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Module is the interface every layer and model implements. Backward takes
// the gradient of the loss with respect to the module output and returns the
// gradient with respect to the module input, accumulating parameter
// gradients along the way.
type Module interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Parameter
}

// ZeroGrad clears every parameter gradient of m.
func ZeroGrad(m Module) {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of trainable scalars in m. This is the
// dimension of the flat vectors exchanged by the federated algorithms.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Size()
	}
	return n
}

// FlattenParams copies all parameter values of m into dst (allocating only
// when dst's capacity is insufficient) in Params() order and returns it.
func FlattenParams(m Module, dst []float64) []float64 {
	dst = sizeFor(dst, NumParams(m))
	off := 0
	for _, p := range m.Params() {
		off += copy(dst[off:], p.Value.Data())
	}
	return dst
}

// FlattenGrads copies all parameter gradients of m into dst in Params()
// order and returns it, reusing dst's capacity like FlattenParams.
func FlattenGrads(m Module, dst []float64) []float64 {
	dst = sizeFor(dst, NumParams(m))
	off := 0
	for _, p := range m.Params() {
		off += copy(dst[off:], p.Grad.Data())
	}
	return dst
}

// sizeFor resizes dst to length n, allocating only when the capacity is
// insufficient. A dst whose length differs but whose capacity suffices is
// reused — the length-equality test this replaces silently reallocated a
// perfectly good buffer on every call whose caller trimmed or grew it.
func sizeFor(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// SetParams loads the flat vector src into the parameters of m. It panics if
// the length does not match NumParams(m).
func SetParams(m Module, src []float64) {
	n := NumParams(m)
	if len(src) != n {
		panic(fmt.Sprintf("nn: SetParams length %d does not match model size %d", len(src), n))
	}
	off := 0
	for _, p := range m.Params() {
		off += copy(p.Value.Data(), src[off:off+p.Value.Size()])
	}
}
