package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func numericalCheck(t *testing.T, m Module, x *tensor.Tensor, labels []int, samples int, tol float64) {
	t.Helper()
	r := rng.New(99)
	ZeroGrad(m)
	logits := m.Forward(x)
	_, d := CrossEntropy(logits, labels)
	dx := m.Backward(d)
	const eps = 1e-6
	loss := func() float64 {
		l, _ := CrossEntropy(m.Forward(x), labels)
		return l
	}
	for s := 0; s < samples; s++ {
		i := r.Intn(x.Size())
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := loss()
		x.Data()[i] = orig - eps
		lm := loss()
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad mismatch at %d: numeric %v analytic %v", i, num, dx.Data()[i])
		}
	}
}

func TestTanhForwardBackward(t *testing.T) {
	a := NewTanh()
	x := tensor.FromSlice([]float64{0, 1, -1}, 3)
	y := a.Forward(x)
	if y.Data()[0] != 0 || math.Abs(y.Data()[1]-math.Tanh(1)) > 1e-15 {
		t.Fatalf("tanh forward %v", y.Data())
	}
	dy := tensor.FromSlice([]float64{1, 1, 1}, 3)
	dx := a.Backward(dy)
	// At 0: derivative 1. At ±1: 1 − tanh(1)².
	if math.Abs(dx.Data()[0]-1) > 1e-15 {
		t.Fatalf("tanh backward at 0: %v", dx.Data()[0])
	}
	want := 1 - math.Tanh(1)*math.Tanh(1)
	if math.Abs(dx.Data()[1]-want) > 1e-15 {
		t.Fatalf("tanh backward at 1: %v want %v", dx.Data()[1], want)
	}
}

func TestSigmoidForwardBackward(t *testing.T) {
	a := NewSigmoid()
	x := tensor.FromSlice([]float64{0}, 1)
	y := a.Forward(x)
	if math.Abs(y.Data()[0]-0.5) > 1e-15 {
		t.Fatalf("sigmoid(0) = %v", y.Data()[0])
	}
	dx := a.Backward(tensor.FromSlice([]float64{1}, 1))
	if math.Abs(dx.Data()[0]-0.25) > 1e-15 {
		t.Fatalf("sigmoid'(0) = %v, want 0.25", dx.Data()[0])
	}
}

func TestTanhModelNumericalGradient(t *testing.T) {
	r := rng.New(1)
	m := NewSequential(NewFlatten(), NewLinear(8, 6, r), NewTanh(), NewLinear(6, 3, r))
	x := randT(r, 2, 8)
	numericalCheck(t, m, x, []int{0, 2}, 12, 1e-4)
}

func TestSigmoidModelNumericalGradient(t *testing.T) {
	r := rng.New(2)
	m := NewSequential(NewFlatten(), NewLinear(8, 6, r), NewSigmoid(), NewLinear(6, 3, r))
	x := randT(r, 2, 8)
	numericalCheck(t, m, x, []int{1, 0}, 12, 1e-4)
}

func TestDropoutTrainingStatistics(t *testing.T) {
	r := rng.New(3)
	d := NewDropout(0.4, r)
	x := tensor.New(10000)
	x.Fill(1)
	y := d.Forward(x)
	zeros, scaled := 0, 0
	scale := 1 / 0.6
	for _, v := range y.Data() {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-scale) < 1e-12:
			scaled++
		default:
			t.Fatalf("dropout produced unexpected value %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if math.Abs(frac-0.4) > 0.03 {
		t.Fatalf("dropout rate %v, want ~0.4", frac)
	}
	// E[output] ≈ E[input] thanks to inverted scaling.
	if mean := y.Sum() / 10000; math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ~1", mean)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.9, rng.New(4))
	d.Train = false
	x := tensor.FromSlice([]float64{1, 2, 3}, 3)
	y := d.Forward(x)
	if !y.EqualWithin(x, 0) {
		t.Fatal("eval-mode dropout is not identity")
	}
	dy := tensor.FromSlice([]float64{5, 5, 5}, 3)
	if !d.Backward(dy).EqualWithin(dy, 0) {
		t.Fatal("eval-mode dropout backward is not identity")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5, rng.New(5))
	x := tensor.New(1000)
	x.Fill(1)
	y := d.Forward(x)
	dy := tensor.New(1000)
	dy.Fill(1)
	dx := d.Backward(dy)
	for i := range dx.Data() {
		// Gradient flows exactly where activations survived.
		if (dx.Data()[i] == 0) != (y.Data()[i] == 0) {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on p=1")
		}
	}()
	NewDropout(1, rng.New(1))
}

func TestEvalTrainModeRecursion(t *testing.T) {
	r := rng.New(6)
	m := NewSequential(
		NewFlatten(),
		NewLinear(4, 4, r),
		NewDropout(0.5, r),
		NewSequential(NewDropout(0.3, r)),
	)
	EvalMode(m)
	d1 := m.Layers[2].(*Dropout)
	d2 := m.Layers[3].(*Sequential).Layers[0].(*Dropout)
	if d1.Train || d2.Train {
		t.Fatal("EvalMode did not reach all dropouts")
	}
	TrainMode(m)
	if !d1.Train || !d2.Train {
		t.Fatal("TrainMode did not reach all dropouts")
	}
}

func TestAvgPoolForward(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewAvgPool2D(2, 2)
	y := p.Forward(x)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("avgpool %v, want %v", y.Data(), want)
		}
	}
}

func TestAvgPoolBackwardConservesMass(t *testing.T) {
	r := rng.New(7)
	p := NewAvgPool2D(2, 2)
	x := randT(r, 1, 2, 4, 4)
	p.Forward(x)
	dy := randT(r, 1, 2, 2, 2)
	dx := p.Backward(dy)
	if math.Abs(dx.Sum()-dy.Sum()) > 1e-12 {
		t.Fatalf("avgpool backward mass %v, want %v", dx.Sum(), dy.Sum())
	}
}

func TestAvgPoolModelNumericalGradient(t *testing.T) {
	r := rng.New(8)
	m := NewSequential(
		NewConv2D(1, 2, 3, 1, 1, r),
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewLinear(2*3*3, 3, r),
	)
	x := randT(r, 2, 1, 6, 6)
	numericalCheck(t, m, x, []int{0, 1}, 12, 1e-3)
}
