package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Additional layers beyond the paper's CNN, so user-defined models (the
// framework's fourth plug-and-play component) have a useful vocabulary.

// Tanh is the elementwise hyperbolic tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
}

// NewTanh constructs a Tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (a *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data() {
		out.Data()[i] = math.Tanh(v)
	}
	a.lastOut = out
	return out
}

// Backward uses d tanh = 1 − tanh².
func (a *Tanh) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if a.lastOut == nil || a.lastOut.Size() != dy.Size() {
		panic("nn: Tanh.Backward without matching Forward")
	}
	dx := dy.Clone()
	for i, y := range a.lastOut.Data() {
		dx.Data()[i] *= 1 - y*y
	}
	return dx
}

// Params returns nil; Tanh has no parameters.
func (a *Tanh) Params() []*Parameter { return nil }

// Sigmoid is the elementwise logistic activation.
type Sigmoid struct {
	lastOut *tensor.Tensor
}

// NewSigmoid constructs a Sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies 1/(1+e^{-x}).
func (a *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data() {
		out.Data()[i] = 1 / (1 + math.Exp(-v))
	}
	a.lastOut = out
	return out
}

// Backward uses dσ = σ(1−σ).
func (a *Sigmoid) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if a.lastOut == nil || a.lastOut.Size() != dy.Size() {
		panic("nn: Sigmoid.Backward without matching Forward")
	}
	dx := dy.Clone()
	for i, y := range a.lastOut.Data() {
		dx.Data()[i] *= y * (1 - y)
	}
	return dx
}

// Params returns nil; Sigmoid has no parameters.
func (a *Sigmoid) Params() []*Parameter { return nil }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1−P) (inverted dropout); evaluation mode is the identity.
type Dropout struct {
	P     float64
	Train bool
	r     *rng.RNG

	mask []float64
}

// NewDropout constructs a dropout layer in training mode.
func NewDropout(p float64, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, Train: true, r: r}
}

// Forward applies the stochastic mask (training) or identity (eval).
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.Train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	if cap(d.mask) < x.Size() {
		d.mask = make([]float64, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	keep := 1 - d.P
	scale := 1 / keep
	for i := range out.Data() {
		if d.r.Float64() < keep {
			d.mask[i] = scale
			out.Data()[i] *= scale
		} else {
			d.mask[i] = 0
			out.Data()[i] = 0
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dy
	}
	if len(d.mask) != dy.Size() {
		panic("nn: Dropout.Backward without matching Forward")
	}
	dx := dy.Clone()
	for i := range dx.Data() {
		dx.Data()[i] *= d.mask[i]
	}
	return dx
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Parameter { return nil }

// AvgPool2D applies average pooling with a square kernel over [N,C,H,W].
type AvgPool2D struct {
	Kernel, Stride int

	inShape []int
}

// NewAvgPool2D constructs the pooling layer.
func NewAvgPool2D(kernel, stride int) *AvgPool2D {
	return &AvgPool2D{Kernel: kernel, Stride: stride}
}

// Forward pools the input by window means.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: AvgPool2D expects [N,C,H,W], got %v", x.Shape()))
	}
	p.inShape = append(p.inShape[:0], x.Shape()...)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOut(h, p.Kernel, p.Stride, 0)
	ow := tensor.ConvOut(w, p.Kernel, p.Stride, 0)
	out := tensor.New(n, c, oh, ow)
	inv := 1.0 / float64(p.Kernel*p.Kernel)
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < p.Kernel; ky++ {
						for kx := 0; kx < p.Kernel; kx++ {
							s += x.At(i, ci, oy*p.Stride+ky, ox*p.Stride+kx)
						}
					}
					out.Set(s*inv, i, ci, oy, ox)
				}
			}
		}
	}
	return out
}

// Backward distributes each output gradient uniformly over its window.
func (p *AvgPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) != 4 {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	dx := tensor.New(p.inShape...)
	n, c := p.inShape[0], p.inShape[1]
	oh, ow := dy.Dim(2), dy.Dim(3)
	inv := 1.0 / float64(p.Kernel*p.Kernel)
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At(i, ci, oy, ox) * inv
					for ky := 0; ky < p.Kernel; ky++ {
						for kx := 0; kx < p.Kernel; kx++ {
							iy, ix := oy*p.Stride+ky, ox*p.Stride+kx
							dx.Set(dx.At(i, ci, iy, ix)+g, i, ci, iy, ix)
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Parameter { return nil }

// EvalMode recursively switches every Dropout in m to evaluation mode;
// TrainMode re-enables training behavior. Call EvalMode before validation.
func EvalMode(m Module) { setTrain(m, false) }

// TrainMode switches every Dropout in m to training mode.
func TrainMode(m Module) { setTrain(m, true) }

func setTrain(m Module, train bool) {
	switch x := m.(type) {
	case *Dropout:
		x.Train = train
	case *Sequential:
		for _, l := range x.Layers {
			setTrain(l, train)
		}
	}
}
