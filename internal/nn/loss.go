package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes mean softmax cross-entropy loss over a batch of
// logits [N, K] with integer labels, and the gradient of the mean loss with
// respect to the logits. This matches torch.nn.CrossEntropyLoss.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dlogits *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropy expects [N,K] logits, got %v", logits.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	dlogits = tensor.New(n, k)
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		row := logits.Row(i).Data()
		// Numerically stable softmax: subtract the row max.
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		drow := dlogits.Row(i).Data()
		for j, v := range row {
			e := math.Exp(v - m)
			drow[j] = e
			sum += e
		}
		loss += -(row[y] - m - math.Log(sum))
		for j := range drow {
			drow[j] = drow[j] / sum * invN
		}
		drow[y] -= invN
	}
	return loss * invN, dlogits
}

// Softmax returns row-wise softmax probabilities for logits [N, K].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic("nn: Softmax expects [N,K]")
	}
	out := logits.Clone()
	n := out.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Row(i).Data()
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			row[j] = math.Exp(v - m)
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// Accuracy returns the fraction of rows in logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.Row(i).ArgMax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
