package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b for x [N, In].
type Linear struct {
	In, Out int
	Weight  *Parameter // [Out, In]
	Bias    *Parameter // [Out]

	lastInput *tensor.Tensor
}

// NewLinear constructs a Linear layer with Kaiming-uniform initialization.
func NewLinear(in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		Weight: &Parameter{
			Name:  fmt.Sprintf("linear%dx%d.weight", out, in),
			Value: tensor.New(out, in),
			Grad:  tensor.New(out, in),
		},
		Bias: &Parameter{
			Name:  fmt.Sprintf("linear%dx%d.bias", out, in),
			Value: tensor.New(out),
			Grad:  tensor.New(out),
		},
	}
	bound := math.Sqrt(6.0 / float64(in))
	r.FillUniform(l.Weight.Value.Data(), -bound, bound)
	bb := 1.0 / math.Sqrt(float64(in))
	r.FillUniform(l.Bias.Value.Data(), -bb, bb)
	return l
}

// Forward computes x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N,%d], got %v", l.In, x.Shape()))
	}
	l.lastInput = x
	y := tensor.MatMulTransB(x, l.Weight.Value) // [N, Out]
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := y.Row(i)
		row.AddInPlace(l.Bias.Value)
	}
	return y
}

// Backward accumulates dW = dyᵀ·x, db = Σ dy and returns dx = dy·W.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	l.Weight.Grad.AddInPlace(tensor.MatMulTransA(dy, l.lastInput))
	n := dy.Dim(0)
	for i := 0; i < n; i++ {
		l.Bias.Grad.AddInPlace(dy.Row(i))
	}
	return tensor.MatMul(dy, l.Weight.Value)
}

// Params returns the layer's weight and bias.
func (l *Linear) Params() []*Parameter { return []*Parameter{l.Weight, l.Bias} }

// Conv2D is a 2-D convolution over [N, Cin, H, W] inputs.
type Conv2D struct {
	InChannels, OutChannels int
	Kernel, Stride, Pad     int
	Weight                  *Parameter // [Cout, Cin, K, K]
	Bias                    *Parameter // [Cout]

	lastInput *tensor.Tensor
	lastCols  []*tensor.Tensor
}

// NewConv2D constructs a Conv2D layer with Kaiming-uniform initialization.
func NewConv2D(inC, outC, kernel, stride, pad int, r *rng.RNG) *Conv2D {
	c := &Conv2D{
		InChannels:  inC,
		OutChannels: outC,
		Kernel:      kernel,
		Stride:      stride,
		Pad:         pad,
		Weight: &Parameter{
			Name:  fmt.Sprintf("conv%dx%dk%d.weight", outC, inC, kernel),
			Value: tensor.New(outC, inC, kernel, kernel),
			Grad:  tensor.New(outC, inC, kernel, kernel),
		},
		Bias: &Parameter{
			Name:  fmt.Sprintf("conv%dx%dk%d.bias", outC, inC, kernel),
			Value: tensor.New(outC),
			Grad:  tensor.New(outC),
		},
	}
	fanIn := float64(inC * kernel * kernel)
	bound := math.Sqrt(6.0 / fanIn)
	r.FillUniform(c.Weight.Value.Data(), -bound, bound)
	bb := 1.0 / math.Sqrt(fanIn)
	r.FillUniform(c.Bias.Value.Data(), -bb, bb)
	return c
}

// Forward applies the convolution.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: Conv2D expects [N,%d,H,W], got %v", c.InChannels, x.Shape()))
	}
	c.lastInput = x
	y, cols := tensor.Conv2DForward(x, c.Weight.Value, c.Bias.Value, c.Stride, c.Pad)
	c.lastCols = cols
	return y
}

// Backward accumulates weight/bias gradients and returns dx.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.lastInput == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	dx, dw, db := tensor.Conv2DBackward(dy, c.lastInput, c.Weight.Value, c.lastCols, true, c.Stride, c.Pad)
	c.Weight.Grad.AddInPlace(dw)
	c.Bias.Grad.AddInPlace(db)
	return dx
}

// Params returns the layer's weight and bias.
func (c *Conv2D) Params() []*Parameter { return []*Parameter{c.Weight, c.Bias} }

// ReLU is the elementwise rectifier max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the rectifier.
func (a *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if cap(a.mask) < x.Size() {
		a.mask = make([]bool, x.Size())
	}
	a.mask = a.mask[:x.Size()]
	for i, v := range out.Data() {
		if v > 0 {
			a.mask[i] = true
		} else {
			a.mask[i] = false
			out.Data()[i] = 0
		}
	}
	return out
}

// Backward zeroes the gradient where the input was non-positive.
func (a *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if len(a.mask) != dy.Size() {
		panic("nn: ReLU.Backward size mismatch with last Forward")
	}
	dx := dy.Clone()
	for i := range dx.Data() {
		if !a.mask[i] {
			dx.Data()[i] = 0
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (a *ReLU) Params() []*Parameter { return nil }

// MaxPool2D applies max pooling with a square kernel.
type MaxPool2D struct {
	Kernel, Stride int

	argmax  []int
	inShape []int
}

// NewMaxPool2D constructs a pooling layer.
func NewMaxPool2D(kernel, stride int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride}
}

// Forward pools the input.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	y, argmax := tensor.MaxPool2DForward(x, p.Kernel, p.Stride)
	p.argmax = argmax
	p.inShape = append(p.inShape[:0], x.Shape()...)
	return y
}

// Backward routes gradients to the max positions.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	return tensor.MaxPool2DBackward(dy, p.argmax, p.inShape)
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Parameter { return nil }

// Flatten reshapes [N, ...] to [N, prod(...)].
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/max(n, 1))
}

// Backward restores the original shape.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params returns nil; flatten has no parameters.
func (f *Flatten) Params() []*Parameter { return nil }

// Sequential chains modules.
type Sequential struct {
	Layers []Module
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Module) *Sequential { return &Sequential{Layers: layers} }

// Forward applies the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward applies the layers' backward passes in reverse order.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params concatenates all layer parameters in order.
func (s *Sequential) Params() []*Parameter {
	var out []*Parameter
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
