package nn

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rng"
)

// FuzzLoadParams pins the robustness contract of the checkpoint loader:
// arbitrary bytes must either load cleanly or fail with the typed
// ErrCheckpoint — never panic, never allocate by a garbage header's claim,
// and never leave the model half-restored.
func FuzzLoadParams(f *testing.F) {
	src := NewMLP(4, []int{3}, 2, rng.New(20))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	torn := append([]byte{}, valid...)
	torn[9] ^= 0x40
	f.Add(torn)
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := NewMLP(4, []int{3}, 2, rng.New(21))
		before := FlattenParams(dst, nil)
		err := LoadParams(bytes.NewReader(data), dst)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("untyped load error: %v", err)
		}
		after := FlattenParams(dst, nil)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("failed load mutated weight %d", i)
			}
		}
	})
}
