package wire

import "fmt"

// Journal record operations. A JournalRecord is one entry of the server's
// write-ahead round journal (internal/journal): every state transition that
// matters for crash recovery is appended — and fsynced — *before* it takes
// effect in memory, so a rebooted server can replay checkpoint + tail and
// land in exactly the state the crashed process was in.
const (
	// JournalRoundStart opens a round (barrier) or records a dispatch
	// (buffered): the cohort the model went to, at which version.
	JournalRoundStart uint8 = 1
	// JournalAdmit records one admitted LocalUpdate with its dense decoded
	// primal — written before the fold, so an interrupted aggregation can
	// refold the batch bit-identically without re-asking the clients.
	JournalAdmit uint8 = 2
	// JournalLedger records one membership/obligation-ledger mutation
	// (strike, depart, report, rejoin); see the Ledger* constants.
	JournalLedger uint8 = 3
	// JournalCommit closes a round: the new global weights and version.
	JournalCommit uint8 = 4
)

// Ledger operations carried by JournalRecord.LedgerOp.
const (
	// LedgerStrike benches a timed-out client (Param = strike round).
	LedgerStrike uint8 = 1
	// LedgerDepart records a goodbye (Param = rejoin round, 0 = forever).
	LedgerDepart uint8 = 2
	// LedgerReport clears a client's strikes after a successful reply.
	LedgerReport uint8 = 3
	// LedgerRejoin re-admits a leased-out client whose lease fell due.
	LedgerRejoin uint8 = 4
)

// JournalRecord is one WAL entry. Which fields are meaningful depends on
// Op; unused fields are zero and omitted on the wire.
type JournalRecord struct {
	// Seq is the strictly increasing journal sequence number, assigned by
	// the journal on append.
	Seq uint64
	// Op discriminates the record; one of the Journal* constants.
	Op uint8
	// Round is the 1-based round (barrier) or release (buffered) index.
	Round uint32
	// Version is the model version: at RoundStart the version dispatched,
	// at Commit the version after the fold.
	Version uint64
	// Cohort lists the dispatched client IDs (RoundStart only).
	Cohort []uint32
	// ClientID identifies the client of an Admit or Ledger record.
	ClientID uint32
	// NumSamples and BaseVersion echo the admitted update's weighting
	// fields (Admit only).
	NumSamples  uint64
	BaseVersion uint64
	// Primal is the admitted update's dense decoded parameter vector
	// (Admit only) — post pipeline inverse, so a replayed fold needs no
	// client cooperation and reproduces the original bits.
	Primal []float64
	// Weights is the committed global model (Commit only).
	Weights []float64
	// LedgerOp and Param describe a Ledger mutation; Param is the strike
	// round (LedgerStrike) or the rejoin round (LedgerDepart).
	LedgerOp uint8
	Param    uint32
}

// Reset clears m for reuse, keeping the vector buffers' capacity.
func (m *JournalRecord) Reset() {
	*m = JournalRecord{
		Cohort:  m.Cohort[:0],
		Primal:  m.Primal[:0],
		Weights: m.Weights[:0],
	}
}

// Marshal encodes m.
func (m *JournalRecord) Marshal(e *Encoder) {
	e.Uint64(1, m.Seq)
	e.Uint64(2, uint64(m.Op))
	e.Uint64(3, uint64(m.Round))
	if m.Version > 0 {
		e.Uint64(4, m.Version)
	}
	if len(m.Cohort) > 0 {
		e.Uint32s(5, m.Cohort)
	}
	if m.ClientID > 0 {
		e.Uint64(6, uint64(m.ClientID))
	}
	if m.NumSamples > 0 {
		e.Uint64(7, m.NumSamples)
	}
	if m.BaseVersion > 0 {
		e.Uint64(8, m.BaseVersion)
	}
	if len(m.Primal) > 0 {
		e.Doubles(9, m.Primal)
	}
	if len(m.Weights) > 0 {
		e.Doubles(10, m.Weights)
	}
	if m.LedgerOp > 0 {
		e.Uint64(11, uint64(m.LedgerOp))
	}
	if m.Param > 0 {
		e.Uint64(12, uint64(m.Param))
	}
}

// Unmarshal decodes m, ignoring unknown fields. m is Reset first so reused
// structs reuse buffer capacity without leaking a previous record's fields.
// The Op and LedgerOp discriminators are validated; adversarial input
// errors, never panics.
func (m *JournalRecord) Unmarshal(d *Decoder) error {
	m.Reset()
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			if m.Seq, err = d.Uint64(); err != nil {
				return err
			}
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v < uint64(JournalRoundStart) || v > uint64(JournalCommit) {
				return fmt.Errorf("wire: journal op %d out of range", v)
			}
			m.Op = uint8(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Round = uint32(v)
		case 4:
			if m.Version, err = d.Uint64(); err != nil {
				return err
			}
		case 5:
			if m.Cohort, err = d.Uint32sInto(m.Cohort); err != nil {
				return err
			}
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.ClientID = uint32(v)
		case 7:
			if m.NumSamples, err = d.Uint64(); err != nil {
				return err
			}
		case 8:
			if m.BaseVersion, err = d.Uint64(); err != nil {
				return err
			}
		case 9:
			if m.Primal, err = d.DoublesInto(m.Primal); err != nil {
				return err
			}
		case 10:
			if m.Weights, err = d.DoublesInto(m.Weights); err != nil {
				return err
			}
		case 11:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v < uint64(LedgerStrike) || v > uint64(LedgerRejoin) {
				return fmt.Errorf("wire: journal ledger op %d out of range", v)
			}
			m.LedgerOp = uint8(v)
		case 12:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Param = uint32(v)
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	if m.Op == 0 {
		return fmt.Errorf("wire: journal record without an op")
	}
	return nil
}

// JournalCheckpoint is the compaction snapshot of the round journal: the
// full recovery-relevant server state as of journal sequence Seq. A
// checkpoint plus the WAL records after Seq reconstruct the server exactly.
// The membership arrays run parallel over client IDs; a DepartedUntil of
// ^uint32(0) means gone for good (core's math.MaxInt sentinel).
type JournalCheckpoint struct {
	// Seq is the highest journal sequence folded into this snapshot.
	Seq uint64
	// NextRound is the first round not yet committed when the snapshot was
	// taken.
	NextRound uint32
	// Version and Weights are the committed global model.
	Version uint64
	Weights []float64
	// Membership roster (see core's membership): per-client exclusion
	// rounds, strike counts, and pending-rejoin flags (0/1).
	DepartedUntil []uint32
	BenchedUntil  []uint32
	Strikes       []uint32
	AwaitRejoin   []uint32
	// Rejoined and TimedOut carry the run's fault counters across the
	// crash so Result accounting stays continuous.
	Rejoined uint64
	TimedOut uint64
	// Inflight counts the dispatch obligations open when the snapshot was
	// taken — buffered runs resume their outstanding-arrival accounting
	// from it (always 0 for barrier schedulers, which never checkpoint
	// mid-round).
	Inflight uint64
}

// Reset clears m for reuse, keeping buffer capacity.
func (m *JournalCheckpoint) Reset() {
	*m = JournalCheckpoint{
		Weights:       m.Weights[:0],
		DepartedUntil: m.DepartedUntil[:0],
		BenchedUntil:  m.BenchedUntil[:0],
		Strikes:       m.Strikes[:0],
		AwaitRejoin:   m.AwaitRejoin[:0],
	}
}

// Marshal encodes m.
func (m *JournalCheckpoint) Marshal(e *Encoder) {
	e.Uint64(1, m.Seq)
	e.Uint64(2, uint64(m.NextRound))
	if m.Version > 0 {
		e.Uint64(3, m.Version)
	}
	e.Doubles(4, m.Weights)
	if len(m.DepartedUntil) > 0 {
		e.Uint32s(5, m.DepartedUntil)
	}
	if len(m.BenchedUntil) > 0 {
		e.Uint32s(6, m.BenchedUntil)
	}
	if len(m.Strikes) > 0 {
		e.Uint32s(7, m.Strikes)
	}
	if len(m.AwaitRejoin) > 0 {
		e.Uint32s(8, m.AwaitRejoin)
	}
	if m.Rejoined > 0 {
		e.Uint64(9, m.Rejoined)
	}
	if m.TimedOut > 0 {
		e.Uint64(10, m.TimedOut)
	}
	if m.Inflight > 0 {
		e.Uint64(11, m.Inflight)
	}
}

// Unmarshal decodes m, ignoring unknown fields; m is Reset first. The
// membership arrays must agree in length — a checkpoint describing
// different-sized rosters is corrupt, not merely odd.
func (m *JournalCheckpoint) Unmarshal(d *Decoder) error {
	m.Reset()
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			if m.Seq, err = d.Uint64(); err != nil {
				return err
			}
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.NextRound = uint32(v)
		case 3:
			if m.Version, err = d.Uint64(); err != nil {
				return err
			}
		case 4:
			if m.Weights, err = d.DoublesInto(m.Weights); err != nil {
				return err
			}
		case 5:
			if m.DepartedUntil, err = d.Uint32sInto(m.DepartedUntil); err != nil {
				return err
			}
		case 6:
			if m.BenchedUntil, err = d.Uint32sInto(m.BenchedUntil); err != nil {
				return err
			}
		case 7:
			if m.Strikes, err = d.Uint32sInto(m.Strikes); err != nil {
				return err
			}
		case 8:
			if m.AwaitRejoin, err = d.Uint32sInto(m.AwaitRejoin); err != nil {
				return err
			}
		case 9:
			if m.Rejoined, err = d.Uint64(); err != nil {
				return err
			}
		case 10:
			if m.TimedOut, err = d.Uint64(); err != nil {
				return err
			}
		case 11:
			if m.Inflight, err = d.Uint64(); err != nil {
				return err
			}
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	n := len(m.DepartedUntil)
	if len(m.BenchedUntil) != n || len(m.Strikes) != n || len(m.AwaitRejoin) != n {
		return fmt.Errorf("wire: journal checkpoint membership arrays disagree: %d/%d/%d/%d",
			n, len(m.BenchedUntil), len(m.Strikes), len(m.AwaitRejoin))
	}
	return nil
}
