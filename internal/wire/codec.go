// Package wire implements a protocol-buffers-style binary codec and the
// message schema exchanged between the APPFL server and clients. It stands
// in for gRPC's protobuf layer: varint-encoded tags and lengths, zigzag
// signed integers, IEEE-754 fixed64 doubles, and packed repeated fields.
// Every model upload/download in the RPC transport passes through this
// codec, so serialization cost — one of the two causes the paper gives for
// gRPC's slowdown versus RDMA-enabled MPI — is real and measurable here.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire types, following the protobuf encoding.
const (
	typeVarint  = 0
	typeFixed64 = 1
	typeBytes   = 2
)

// Encoding/decoding errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrOverflow  = errors.New("wire: varint overflows 64 bits")
	ErrBadTag    = errors.New("wire: malformed field tag")
)

// Encoder appends encoded fields to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder, optionally reusing buf's storage.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder for reuse, keeping its capacity — the
// steady-state form of NewEncoder(e.Bytes()) without a new Encoder value.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// varintLen returns the encoded size of v, for length-prefix computation.
func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *Encoder) tag(field, wtype int) { e.varint(uint64(field)<<3 | uint64(wtype)) }

// Uint64 encodes field as a varint.
func (e *Encoder) Uint64(field int, v uint64) {
	e.tag(field, typeVarint)
	e.varint(v)
}

// Int64 encodes field as a zigzag varint.
func (e *Encoder) Int64(field int, v int64) {
	e.Uint64(field, uint64(v<<1)^uint64(v>>63))
}

// Bool encodes field as a 0/1 varint.
func (e *Encoder) Bool(field int, v bool) {
	b := uint64(0)
	if v {
		b = 1
	}
	e.Uint64(field, b)
}

// Float64 encodes field as fixed64.
func (e *Encoder) Float64(field int, v float64) {
	e.tag(field, typeFixed64)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	e.buf = append(e.buf, tmp[:]...)
}

// Bytes64 encodes field as a length-delimited byte string.
func (e *Encoder) BytesField(field int, v []byte) {
	e.tag(field, typeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String encodes field as a length-delimited UTF-8 string.
func (e *Encoder) String(field int, v string) {
	e.tag(field, typeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Doubles encodes field as a packed repeated double: a length-delimited
// block of little-endian fixed64 values. This is the dominant payload of
// every model exchange.
func (e *Encoder) Doubles(field int, v []float64) {
	e.tag(field, typeBytes)
	e.varint(uint64(8 * len(v)))
	var tmp [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		e.buf = append(e.buf, tmp[:]...)
	}
}

// Decoder consumes encoded fields from a buffer.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder wraps buf for reading.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset points the decoder at a new buffer, for callers that amortize the
// Decoder value itself across messages.
func (d *Decoder) Reset(buf []byte) { d.buf, d.pos = buf, 0 }

// More reports whether any bytes remain.
func (d *Decoder) More() bool { return d.pos < len(d.buf) }

func (d *Decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, ErrTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		if shift == 63 && b > 1 {
			return 0, ErrOverflow
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, ErrOverflow
		}
	}
}

// Tag reads the next field tag, returning field number and wire type.
func (d *Decoder) Tag() (field, wtype int, err error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field = int(t >> 3)
	wtype = int(t & 7)
	if field == 0 || wtype > typeBytes {
		return 0, 0, ErrBadTag
	}
	return field, wtype, nil
}

// Uint64 reads a varint payload.
func (d *Decoder) Uint64() (uint64, error) { return d.varint() }

// Int64 reads a zigzag varint payload.
func (d *Decoder) Int64() (int64, error) {
	u, err := d.varint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// Bool reads a varint payload as a bool.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.varint()
	return u != 0, err
}

// Float64 reads a fixed64 payload.
func (d *Decoder) Float64() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v, nil
}

// BytesField reads a length-delimited payload without copying.
func (d *Decoder) BytesField() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, ErrTruncated
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.BytesField()
	return string(b), err
}

// Doubles reads a packed repeated double payload into a fresh slice.
func (d *Decoder) Doubles() ([]float64, error) { return d.DoublesInto(nil) }

// DoublesInto reads a packed repeated double payload into dst, allocating
// only when dst's capacity is insufficient — the steady-state decode path
// of every model exchange reuses one buffer across rounds.
func (d *Decoder) DoublesInto(dst []float64) ([]float64, error) {
	b, err := d.BytesField()
	if err != nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("wire: packed doubles length %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if cap(dst) < n || dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst, nil
}

// Skip discards a payload of the given wire type, allowing decoders to
// ignore unknown fields (forward compatibility, as in protobuf).
func (d *Decoder) Skip(wtype int) error {
	switch wtype {
	case typeVarint:
		_, err := d.varint()
		return err
	case typeFixed64:
		if d.pos+8 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 8
		return nil
	case typeBytes:
		_, err := d.BytesField()
		return err
	default:
		return ErrBadTag
	}
}
